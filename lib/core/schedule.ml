module Vec = Tiles_util.Vec
module Polyhedron = Tiles_poly.Polyhedron

let step_range (plan : Plan.t) =
  (* min / max of Π·j^S over candidate tiles: a 1-variable FM projection of
     the tile polyhedron along the diagonal would do, but the candidate
     sets are small; fold over them. *)
  let tiles = Tile_space.candidates plan.Plan.tspace in
  match tiles with
  | [] -> invalid_arg "Schedule.step_range: empty tile space"
  | first :: rest ->
    List.fold_left
      (fun (lo, hi) s ->
        let v = Vec.sum s in
        (min lo v, max hi v))
      (Vec.sum first, Vec.sum first)
      rest

let first_step p = fst (step_range p)
let last_step p = snd (step_range p)
let steps p =
  let lo, hi = step_range p in
  hi - lo + 1

(* linear-schedule step of the lexicographic extreme point of J^n,
   [pick] selecting the lower or upper projection bound per variable *)
let extreme_point_step (plan : Plan.t) ~pick =
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let n = Polyhedron.dim space in
  let proj = Polyhedron.projection space in
  let j = Array.make n 0 in
  for k = 0 to n - 1 do
    match Tiles_poly.Fourier_motzkin.bounds proj ~var:k ~prefix:j with
    | Some (lo, hi) -> j.(k) <- pick lo hi
    | None -> invalid_arg "Schedule.extreme_point_step: empty space"
  done;
  Vec.sum (Tiling.tile_of plan.Plan.tiling j)

let last_point_step plan = extreme_point_step plan ~pick:(fun _ hi -> hi)
let first_point_step plan = extreme_point_step plan ~pick:(fun lo _ -> lo)

let effective_steps plan =
  last_point_step plan - first_point_step plan + 1

let predicted_time plan ~compute_per_point ~comm_per_step =
  let tile_points = float_of_int (Tiling.tile_size plan.Plan.tiling) in
  float_of_int (steps plan)
  *. ((tile_points *. compute_per_point) +. comm_per_step)
