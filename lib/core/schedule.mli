(** The linear time schedule [Π = (1, 1, …, 1)] over the tile space and
    the paper's analytic completion-time argument (§4.1).

    A tile [j^S] executes at step [Π·j^S]; the makespan in steps is
    [max Π·j^S − min Π·j^S + 1] over candidate tiles. The paper's
    rectangular-vs-non-rectangular analysis compares
    [t = Π·⌊H·j_max⌋]-style expressions; we compute the exact step count
    from the candidate tile set, which subsumes that argument without
    needing [j_max] in closed form. *)

val steps : Plan.t -> int
(** Exact number of wavefront steps of the plan's tile space. *)

val first_step : Plan.t -> int
val last_step : Plan.t -> int

val last_point_step : Plan.t -> int
(** The paper's §4 analytic quantity: [Π·⌊H·j_max⌋], the linear-schedule
    step of the lexicographically last iteration. The rectangular vs
    non-rectangular comparisons of §4.1–4.3 are differences of this value
    ([t_r − t_nr = M/z] for SOR, [(T+I)/2x] for Jacobi, [N/y + N/z] for
    ADI's nr3). Unlike {!steps} it is not inflated by nearly-empty corner
    tiles of oblique tilings. *)

val first_point_step : Plan.t -> int
(** [Π·⌊H·j_min⌋] for the lexicographically first iteration — the
    symmetric counterpart of {!last_point_step}. *)

val effective_steps : Plan.t -> int
(** [last_point_step − first_point_step + 1]: the schedule length between
    the first and last {e real} iterations. Unlike {!steps} it is not
    inflated by the nearly-empty corner tiles of oblique tilings
    (reproduction finding 4 in DESIGN.md), so the tuner's analytic
    predictor ranks mixed shape families sensibly. *)

val predicted_time :
  Plan.t -> compute_per_point:float -> comm_per_step:float -> float
(** Hodzic–Shang-style estimate: [steps × (tile_size · compute_per_point
    + comm_per_step)] — each wavefront step computes one (full) tile and
    pays one send/receive round. A coarse model: it ignores partial
    boundary tiles, but predicts the rectangular/non-rectangular ordering
    and is cross-checked against the simulator in the benches. *)
