(** Automatic tile-shape selection from the tiling cone — the direction
    the paper's conclusions point to (and refs [4, 10, 12, 15] prove
    optimal): take the tile-forming hyperplanes from the {e surface} of
    the tiling cone rather than the axes.

    [from_cone deps ~factors] picks [n] linearly independent extreme rays
    of the cone [{h | h·D >= 0}] (time-like ray first, then
    lexicographically), scales ray [i] by [1/factors_i] and builds the
    tiling. For ADI this reconstructs the paper's hand-written [H_nr3]
    exactly (see [examples/adi_tilecone.ml] and the tests). *)

val cone_rows : Tiles_loop.Dependence.t -> Tiles_util.Vec.t list
(** [n] linearly independent extreme rays, selection order as above.
    Raises [Failure] if the cone is not pointed or fewer than [n]
    independent rays exist. *)

val from_cone : Tiles_loop.Dependence.t -> factors:int list -> Tiling.t
(** Raises like {!Tiling.make} (e.g. stride divisibility) plus the
    {!cone_rows} failures. *)

val families : Tiles_loop.Dependence.t -> (string * Tiles_util.Vec.t list) list
(** The tuner's shape vocabulary: every mix of axis rows and
    {!cone_rows} rays (row [k] is either [e_k] or ray [k]), filtered to
    legal ([row·d >= 0] for every dependence — scaling rows by positive
    [1/f] preserves this) and linearly independent families, deduplicated.
    [("rect", axis rows)] appears first when legal; [("cone", …)] is the
    full-ray family; in-between families are named ["mix<ray indices>"].
    If the cone has no usable ray basis only the axis family is tried. *)
