module Cone = Tiles_poly.Cone
module Dependence = Tiles_loop.Dependence
module Vec = Tiles_util.Vec
module Rat = Tiles_rat.Rat
module Intmat = Tiles_linalg.Intmat

(* greedy selection of n linearly independent rays *)
let independent_subset n rays =
  let rec go chosen = function
    | [] -> List.rev chosen
    | r :: rest ->
      if List.length chosen = n then List.rev chosen
      else
        let candidate = Array.of_list (List.map Array.copy (r :: chosen)) in
        (* rank via fraction-free determinant of a maximal square minor is
           overkill; use rational row reduction through Cone's public
           interface indirectly: build a matrix and test rank by checking
           whether adding r keeps the rows of a square completion
           independent. Simplest exact check: Gram-style via Intmat.det on
           the square matrix once we have n rows, and incremental check by
           solving. We keep it simple: accept r if the (k+1)-row matrix has
           a non-zero (k+1)x(k+1) minor. *)
        let k = Array.length candidate in
        let dims = Array.length r in
        let has_nonzero_minor =
          (* enumerate column subsets of size k *)
          let rec cols start picked =
            if List.length picked = k then
              let m =
                Array.init k (fun i ->
                    Array.of_list
                      (List.map (fun c -> candidate.(i).(c)) (List.rev picked)))
              in
              Intmat.det m <> 0
            else if start >= dims then false
            else cols (start + 1) (start :: picked) || cols (start + 1) picked
          in
          cols 0 []
        in
        if has_nonzero_minor then go (r :: chosen) rest else go chosen rest
  in
  go [] rays

let cone_rows deps =
  let n = Dependence.dim deps in
  let cone = Cone.tiling_cone (Dependence.to_matrix deps) in
  let rays = Cone.extreme_rays cone in
  (* time-like first (largest first component), ties broken by descending
     lexicographic order so the selection tracks the axes: for ADI this
     yields (1,-1,-1), (0,1,0), (0,0,1) — the paper's H_nr3 row order *)
  let ordered =
    List.sort
      (fun a b ->
        let c = compare b.(0) a.(0) in
        if c <> 0 then c else Vec.compare_lex b a)
      rays
  in
  let chosen = independent_subset n ordered in
  if List.length chosen <> n then
    failwith "Shape.cone_rows: fewer than n independent extreme rays";
  chosen

let families deps =
  let n = Dependence.dim deps in
  let axis = List.init n (fun k -> Vec.basis n k) in
  let cone = match cone_rows deps with
    | rows -> Some (Array.of_list rows)
    | exception Failure _ -> None
  in
  let legal rows =
    List.for_all
      (fun r ->
        List.for_all (fun d -> Vec.dot r d >= 0) (Dependence.vectors deps))
      rows
  in
  let independent rows =
    Intmat.det (Array.of_list (List.map Array.copy rows)) <> 0
  in
  let name_of mask =
    if mask = 0 then "rect"
    else if mask = (1 lsl n) - 1 then "cone"
    else
      "mix"
      ^ String.concat ""
          (List.filter_map
             (fun k -> if mask land (1 lsl k) <> 0 then Some (string_of_int k) else None)
             (List.init n Fun.id))
  in
  let masks = List.init (1 lsl n) Fun.id in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun mask ->
      let rows =
        List.init n (fun k ->
            if mask land (1 lsl k) <> 0 then
              match cone with Some c -> c.(k) | None -> List.nth axis k
            else List.nth axis k)
      in
      let key = List.map Array.to_list rows in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        if legal rows && independent rows then Some (name_of mask, rows)
        else None
      end)
    masks

let from_cone deps ~factors =
  let n = Dependence.dim deps in
  if List.length factors <> n then invalid_arg "Shape.from_cone: factors";
  let rows = cone_rows deps in
  let h =
    List.map2
      (fun ray f ->
        if f <= 0 then invalid_arg "Shape.from_cone: factor <= 0";
        List.init n (fun k -> Rat.make ray.(k) f))
      rows factors
  in
  Tiling.of_rows h
