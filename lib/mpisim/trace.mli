(** Post-mortem analysis of traced simulations. *)

type utilisation = {
  compute : float;  (** seconds spent computing *)
  pack : float;     (** seconds gathering slabs into send buffers *)
  send : float;     (** seconds in send overhead / wire occupancy *)
  wait : float;     (** seconds genuinely blocked in receives *)
  unpack : float;   (** seconds in receive overhead + halo scatter *)
  idle : float;     (** completion − all of the above for this rank *)
}

val utilisation : Sim.stats -> utilisation array
(** Per-rank breakdown over the whole run (requires a trace; raises
    [Invalid_argument] otherwise). The idle component is the time between
    a rank's own finish and the global completion, plus any unaccounted
    gaps. *)

val efficiency : Sim.stats -> float
(** Mean compute fraction across ranks: [Σ compute / (nprocs ·
    completion)] — 1.0 means a perfectly busy machine. *)

val critical_rank : Sim.stats -> int
(** The rank that finished last. *)

val aggregate : Sim.stats -> Tiles_obs.Stats.t
(** The backend-neutral aggregate record (busy fractions, comm/compute
    ratio, message counters) for a simulated run — directly comparable
    with the one reported by {!Tiles_runtime.Shm_executor}. *)
