module Span = Tiles_obs.Span

type utilisation = {
  compute : float;
  pack : float;
  send : float;
  wait : float;
  unpack : float;
  idle : float;
}

let utilisation (stats : Sim.stats) =
  if stats.Sim.trace = [] then invalid_arg "Trace.utilisation: no trace";
  let nprocs = Array.length stats.Sim.rank_clocks in
  let compute = Array.make nprocs 0. in
  let pack = Array.make nprocs 0. in
  let send = Array.make nprocs 0. in
  let wait = Array.make nprocs 0. in
  let unpack = Array.make nprocs 0. in
  List.iter
    (fun { Sim.rank; t0; t1; kind } ->
      let d = t1 -. t0 in
      match kind with
      | Span.Compute -> compute.(rank) <- compute.(rank) +. d
      | Span.Pack -> pack.(rank) <- pack.(rank) +. d
      | Span.Send -> send.(rank) <- send.(rank) +. d
      | Span.Wait -> wait.(rank) <- wait.(rank) +. d
      | Span.Unpack -> unpack.(rank) <- unpack.(rank) +. d)
    stats.Sim.trace;
  Array.init nprocs (fun r ->
      {
        compute = compute.(r);
        pack = pack.(r);
        send = send.(r);
        wait = wait.(r);
        unpack = unpack.(r);
        idle =
          Float.max 0.
            (stats.Sim.completion -. compute.(r) -. pack.(r) -. send.(r)
           -. wait.(r) -. unpack.(r));
      })

let efficiency stats =
  let u = utilisation stats in
  let total = Array.fold_left (fun acc x -> acc +. x.compute) 0. u in
  total
  /. (float_of_int (Array.length u) *. stats.Sim.completion)

let critical_rank (stats : Sim.stats) =
  let best = ref 0 in
  Array.iteri
    (fun r t -> if t > stats.Sim.rank_clocks.(!best) then best := r)
    stats.Sim.rank_clocks;
  !best

let aggregate (stats : Sim.stats) =
  let nprocs = Array.length stats.Sim.rank_clocks in
  (* with message edges available, the causal critical path through the
     event DAG replaces the busy-time proxy *)
  let critical_path =
    if stats.Sim.edges = [] || stats.Sim.trace = [] then 0.
    else
      let report =
        Tiles_obs.Critpath.analyze ~completion:stats.Sim.completion ~nprocs
          ~edges:stats.Sim.edges stats.Sim.trace
      in
      report.Tiles_obs.Critpath.path_length
  in
  Tiles_obs.Stats.make ~completion:stats.Sim.completion ~nprocs
    ~messages:stats.Sim.messages ~bytes:stats.Sim.bytes
    ~max_inflight_bytes:stats.Sim.max_inflight_bytes
    ~rank_messages:stats.Sim.rank_messages ~rank_bytes:stats.Sim.rank_bytes
    ~critical_path ~queue_seconds:stats.Sim.queue_seconds stats.Sim.trace
