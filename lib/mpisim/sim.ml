open Effect
open Effect.Deep
module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Fbuf = Tiles_util.Fbuf

type span = Span.t = {
  rank : int;
  t0 : float;
  t1 : float;
  kind : Span.kind;
}

type stats = {
  completion : float;
  rank_clocks : float array;
  messages : int;
  bytes : int;
  rank_messages : int array;
  rank_bytes : int array;
  max_inflight_bytes : int;
  trace : span list;
  edges : Recorder.edge list;
}

exception Deadlock of string

type _ Effect.t +=
  | E_rank : int Effect.t
  | E_nprocs : int Effect.t
  | E_work : (Span.kind * float) -> unit Effect.t
  | E_now : float Effect.t
  | E_send : (int * int * Fbuf.t) -> unit Effect.t
  | E_isend : (int * int * Fbuf.t) -> unit Effect.t
  | E_recv : (int * int) -> Fbuf.t Effect.t
  | E_barrier : unit Effect.t

module Api = struct
  let rank () = perform E_rank
  let nprocs () = perform E_nprocs
  let compute dt = perform (E_work (Span.Compute, dt))
  let pack dt = perform (E_work (Span.Pack, dt))
  let unpack dt = perform (E_work (Span.Unpack, dt))
  let now () = perform E_now
  let send ~dst ~tag data = perform (E_send (dst, tag, data))
  let isend ~dst ~tag data = perform (E_isend (dst, tag, data))
  let recv ~src ~tag = perform (E_recv (src, tag))
  let barrier () = perform E_barrier
end

type channel_key = int * int * int (* src, dst, tag *)

type state = {
  nprocs : int;
  net : Netmodel.t;
  clocks : float array;
  channels : (channel_key, (float * Fbuf.t) Queue.t) Hashtbl.t;
  (* a parked receiver: wake it with the (arrival, payload) pair *)
  parked : (channel_key, (float * Fbuf.t) -> unit) Hashtbl.t;
  runq : (unit -> unit) Queue.t;
  mutable finished : int;
  mutable at_barrier : (int * (unit -> unit)) list;
  (* all counters, spans and message identity live in the shared
     recorder; the simulator feeds it explicit virtual timestamps *)
  logs : Recorder.log array;
}

let queue_of st key =
  match Hashtbl.find_opt st.channels key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add st.channels key q;
    q

let pop_message st key =
  match Hashtbl.find_opt st.channels key with
  | None -> None
  | Some q -> if Queue.is_empty q then None else Some (Queue.pop q)

(* [sent] is the sender-side causal stamp: the end of the send action on
   the sender's clock (the wire and latency run after it) *)
let deposit st key ~sent arrival data =
  let src, dst, tag = key in
  let nbytes = 8 * Fbuf.length data in
  Recorder.message_sent st.logs.(src) ~t:sent ~dst ~tag ~bytes:nbytes ();
  Queue.push (arrival, data) (queue_of st key);
  (* wake a receiver parked on this channel *)
  match Hashtbl.find_opt st.parked key with
  | None -> ()
  | Some wake ->
    Hashtbl.remove st.parked key;
    Queue.push
      (fun () ->
        match pop_message st key with
        | Some msg -> wake msg
        | None -> assert false)
      st.runq

let record st rank t0 t1 kind = Recorder.span st.logs.(rank) ~t0 ~t1 kind

(* Advance the receiver past one message. [t0] is when the rank entered
   the receive (for a parked receiver: its park time, NOT the virtual
   time at which the simulator happened to resume the fiber). Only the
   genuinely blocked interval — from [t0] until the message's arrival —
   counts as [Wait]; the per-message receive overhead is its own
   [Unpack] span, so a message that was already waiting in the channel
   contributes no wait time at all. *)
let receive_clock st key r ~t0 (arrival, data) =
  let src, _, tag = key in
  let ready = Float.max t0 arrival in
  record st r t0 ready Span.Wait;
  Recorder.message_received st.logs.(r) ~t:ready ~posted:t0 ~src ~tag
    ~bytes:(8 * Fbuf.length data) ();
  let t1 = ready +. st.net.Netmodel.recv_overhead in
  st.clocks.(r) <- t1;
  record st r ready t1 Span.Unpack;
  data

let release_barrier st =
  let t =
    List.fold_left (fun acc (r, _) -> Float.max acc st.clocks.(r)) 0. st.at_barrier
    +. st.net.Netmodel.latency
  in
  let waiting = st.at_barrier in
  st.at_barrier <- [];
  List.iter
    (fun (r, resume) ->
      st.clocks.(r) <- t;
      Queue.push resume st.runq)
    waiting

let handler st (r : int) =
  {
    retc = (fun () -> st.finished <- st.finished + 1);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_rank -> Some (fun (k : (a, unit) continuation) -> continue k r)
        | E_nprocs -> Some (fun k -> continue k st.nprocs)
        | E_now -> Some (fun k -> continue k st.clocks.(r))
        | E_work (kind, dt) ->
          Some
            (fun k ->
              let t0 = st.clocks.(r) in
              st.clocks.(r) <- st.clocks.(r) +. dt;
              record st r t0 st.clocks.(r) kind;
              continue k ())
        | E_send (dst, tag, data) ->
          Some
            (fun k ->
              if dst < 0 || dst >= st.nprocs then
                invalid_arg "Sim.send: bad destination rank";
              let nbytes = 8 * Fbuf.length data in
              let t0 = st.clocks.(r) in
              st.clocks.(r) <-
                st.clocks.(r)
                +. st.net.Netmodel.send_overhead
                +. Netmodel.transfer_time st.net ~bytes:nbytes;
              record st r t0 st.clocks.(r) Span.Send;
              let arrival = st.clocks.(r) +. st.net.Netmodel.latency in
              deposit st (r, dst, tag) ~sent:st.clocks.(r) arrival
                (Fbuf.copy data);
              continue k ())
        | E_isend (dst, tag, data) ->
          Some
            (fun k ->
              if dst < 0 || dst >= st.nprocs then
                invalid_arg "Sim.isend: bad destination rank";
              let nbytes = 8 * Fbuf.length data in
              (* sender only pays the CPU overhead; the wire runs in
                 parallel with subsequent computation *)
              let t0 = st.clocks.(r) in
              st.clocks.(r) <- st.clocks.(r) +. st.net.Netmodel.send_overhead;
              record st r t0 st.clocks.(r) Span.Send;
              let arrival =
                st.clocks.(r)
                +. Netmodel.transfer_time st.net ~bytes:nbytes
                +. st.net.Netmodel.latency
              in
              deposit st (r, dst, tag) ~sent:st.clocks.(r) arrival
                (Fbuf.copy data);
              continue k ())
        | E_recv (src, tag) ->
          Some
            (fun k ->
              let key = (src, r, tag) in
              match pop_message st key with
              | Some msg ->
                continue k (receive_clock st key r ~t0:st.clocks.(r) msg)
              | None ->
                if Hashtbl.mem st.parked key then
                  failwith
                    "Sim.recv: two simultaneous receives on one channel";
                let t_park = st.clocks.(r) in
                Hashtbl.replace st.parked key (fun msg ->
                    continue k (receive_clock st key r ~t0:t_park msg)))
        | E_barrier ->
          Some
            (fun k ->
              st.at_barrier <- (r, fun () -> continue k ()) :: st.at_barrier;
              if List.length st.at_barrier = st.nprocs then release_barrier st)
        | _ -> None);
  }

let run ?(trace = false) ?recorder ~nprocs ~net program =
  if nprocs <= 0 then invalid_arg "Sim.run: nprocs";
  let rc =
    match recorder with
    | Some rc ->
      if Recorder.nprocs rc <> nprocs then
        invalid_arg "Sim.run: recorder nprocs mismatch";
      rc
    | None ->
      (* a zero clock: the simulator stamps everything explicitly in
         virtual time, so the recorder's own clock must never move *)
      Recorder.create ~trace ~clock:(fun () -> 0.) ~nprocs ()
  in
  let st =
    {
      nprocs;
      net;
      clocks = Array.make nprocs 0.;
      channels = Hashtbl.create 64;
      parked = Hashtbl.create 16;
      runq = Queue.create ();
      finished = 0;
      at_barrier = [];
      logs = Array.init nprocs (fun r -> Recorder.log rc ~rank:r);
    }
  in
  for r = 0 to nprocs - 1 do
    Queue.push (fun () -> match_with (fun () -> program r) () (handler st r)) st.runq
  done;
  while not (Queue.is_empty st.runq) do
    let thunk = Queue.pop st.runq in
    thunk ()
  done;
  if st.finished < nprocs then begin
    let blocked_recv =
      Hashtbl.fold
        (fun (src, dst, tag) _ acc ->
          Printf.sprintf "rank %d waiting on (src=%d, tag=%d)" dst src tag :: acc)
        st.parked []
    in
    let blocked_barrier =
      List.map (fun (r, _) -> Printf.sprintf "rank %d at barrier" r) st.at_barrier
    in
    raise
      (Deadlock
         (String.concat "; " (List.sort compare (blocked_recv @ blocked_barrier))))
  end;
  {
    completion = Array.fold_left Float.max 0. st.clocks;
    rank_clocks = Array.copy st.clocks;
    messages = Recorder.messages rc;
    bytes = Recorder.bytes rc;
    rank_messages = Recorder.rank_messages rc;
    rank_bytes = Recorder.rank_bytes rc;
    max_inflight_bytes = Recorder.max_inflight_bytes rc;
    (* Recorder.spans merges the per-rank logs time-ordered, like the
       wall-clock recorder produces ([] in streaming mode) *)
    trace = Recorder.spans rc;
    edges = Recorder.edges rc;
  }
