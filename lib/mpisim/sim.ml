open Effect
open Effect.Deep
module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Fbuf = Tiles_util.Fbuf

type span = Span.t = {
  rank : int;
  t0 : float;
  t1 : float;
  kind : Span.kind;
}

type stats = {
  completion : float;
  rank_clocks : float array;
  messages : int;
  bytes : int;
  rank_messages : int array;
  rank_bytes : int array;
  max_inflight_bytes : int;
  queue_seconds : float;
  rank_queue_seconds : float array;
  trace : span list;
  edges : Recorder.edge list;
}

exception Deadlock of string

type _ Effect.t +=
  | E_rank : int Effect.t
  | E_nprocs : int Effect.t
  | E_work : (Span.kind * float) -> unit Effect.t
  | E_now : float Effect.t
  | E_send : (int * int * Fbuf.t) -> unit Effect.t
  | E_isend : (int * int * Fbuf.t) -> unit Effect.t
  | E_recv : (int * int) -> Fbuf.t Effect.t
  | E_barrier : unit Effect.t

module Api = struct
  let rank () = perform E_rank
  let nprocs () = perform E_nprocs
  let compute dt = perform (E_work (Span.Compute, dt))
  let pack dt = perform (E_work (Span.Pack, dt))
  let unpack dt = perform (E_work (Span.Unpack, dt))
  let now () = perform E_now
  let send ~dst ~tag data = perform (E_send (dst, tag, data))
  let isend ~dst ~tag data = perform (E_isend (dst, tag, data))
  let recv ~src ~tag = perform (E_recv (src, tag))
  let barrier () = perform E_barrier
end

type channel_key = int * int * int (* src, dst, tag *)

(* Contended-model network state: per-rank NIC lanes (busy-until stamps)
   and the optional shared uplink. Reservations happen in simulator
   execution order, which is fixed by the programs' control flow alone —
   never by the timing parameters — so every stamp is a monotone (max/+)
   function of the model's costs. That is what makes the contended model
   deterministic and completion monotone in bandwidth and lane count. *)
type nics = {
  snd_free : float array array;  (* [rank][lane] send-NIC busy-until *)
  rcv_free : float array array;  (* [rank][lane] recv-NIC busy-until *)
  mutable uplink_free : float;
  uplink : float option;  (* shared egress bytes/s, None = uncapped *)
}

type state = {
  nprocs : int;
  net : Netmodel.t;
  nics : nics option;  (* Some iff net.model is Contended *)
  clocks : float array;
  (* queued messages carry (ready, nic-queueing seconds, payload) *)
  channels : (channel_key, (float * float * Fbuf.t) Queue.t) Hashtbl.t;
  (* a parked receiver: wake it with the (ready, queued, payload) triple *)
  parked : (channel_key, (float * float * Fbuf.t) -> unit) Hashtbl.t;
  runq : (unit -> unit) Queue.t;
  mutable finished : int;
  mutable at_barrier : (int * (unit -> unit)) list;
  (* all counters, spans and message identity live in the shared
     recorder; the simulator feeds it explicit virtual timestamps *)
  logs : Recorder.log array;
}

let queue_of st key =
  match Hashtbl.find_opt st.channels key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add st.channels key q;
    q

let pop_message st key =
  match Hashtbl.find_opt st.channels key with
  | None -> None
  | Some q -> if Queue.is_empty q then None else Some (Queue.pop q)

(* Reserve the earliest-free lane for a transfer of [dur] seconds not
   starting before [at]; returns the transfer's start time. FIFO per
   NIC: reservations are granted in simulator order. *)
let reserve_lane lanes ~at ~dur =
  let best = ref 0 in
  for i = 1 to Array.length lanes - 1 do
    if lanes.(i) < lanes.(!best) then best := i
  done;
  let start = Float.max at lanes.(!best) in
  lanes.(!best) <- start +. dur;
  start

(* Pass a message leaving its send NIC at [w0] (wire done at [wire_end])
   through the shared uplink, if one is modelled: the uplink is a single
   FIFO pipe, cut-through, so an uncontended message that fits is not
   delayed. Returns (egress time, extra delay charged as queueing). *)
let uplink_pass nics ~w0 ~wire_end ~nbytes =
  match nics.uplink with
  | None -> (wire_end, 0.)
  | Some bw ->
    let tau = float_of_int nbytes /. bw in
    let u0 = Float.max w0 nics.uplink_free in
    nics.uplink_free <- u0 +. tau;
    let egress = Float.max wire_end (u0 +. tau) in
    (egress, egress -. wire_end)

(* [sent] is the sender-side causal stamp: the end of the send action on
   the sender's clock (the wire and latency run after it). [queued] is
   the NIC/uplink queueing already accumulated on the sender side; the
   receive NIC may add more before the message is ready. *)
let deposit st key ~sent ~queued arrival data =
  let src, dst, tag = key in
  let nbytes = 8 * Fbuf.length data in
  Recorder.message_sent st.logs.(src) ~t:sent ~dst ~tag ~bytes:nbytes ();
  let arrival, queued =
    match st.nics with
    | None -> (arrival, queued)
    | Some nics ->
      (* receive-side NIC: cut-through, so a free lane absorbs the
         message concurrently with the wire and [ready = arrival]; a
         busy lane serialises the transfer after its current work *)
      let transfer = Netmodel.transfer_time st.net ~bytes:nbytes in
      let lanes = nics.rcv_free.(dst) in
      let best = ref 0 in
      for i = 1 to Array.length lanes - 1 do
        if lanes.(i) < lanes.(!best) then best := i
      done;
      let ready = Float.max arrival (lanes.(!best) +. transfer) in
      lanes.(!best) <- ready;
      let recv_q = ready -. arrival in
      Recorder.nic_queue st.logs.(dst) recv_q;
      (ready, queued +. recv_q)
  in
  Queue.push (arrival, queued, data) (queue_of st key);
  (* wake a receiver parked on this channel *)
  match Hashtbl.find_opt st.parked key with
  | None -> ()
  | Some wake ->
    Hashtbl.remove st.parked key;
    Queue.push
      (fun () ->
        match pop_message st key with
        | Some msg -> wake msg
        | None -> assert false)
      st.runq

let record st rank t0 t1 kind = Recorder.span st.logs.(rank) ~t0 ~t1 kind

(* Advance the receiver past one message. [t0] is when the rank entered
   the receive (for a parked receiver: its park time, NOT the virtual
   time at which the simulator happened to resume the fiber). Only the
   genuinely blocked interval — from [t0] until the message's arrival —
   counts as [Wait]; the per-message receive overhead is its own
   [Unpack] span, so a message that was already waiting in the channel
   contributes no wait time at all. *)
let receive_clock st key r ~t0 (arrival, queued, data) =
  let src, _, tag = key in
  let ready = Float.max t0 arrival in
  record st r t0 ready Span.Wait;
  Recorder.message_received st.logs.(r) ~t:ready ~posted:t0 ~queued ~src ~tag
    ~bytes:(8 * Fbuf.length data) ();
  let t1 = ready +. st.net.Netmodel.recv_overhead in
  st.clocks.(r) <- t1;
  record st r ready t1 Span.Unpack;
  data

let release_barrier st =
  let t =
    List.fold_left (fun acc (r, _) -> Float.max acc st.clocks.(r)) 0. st.at_barrier
    +. st.net.Netmodel.latency
  in
  let waiting = st.at_barrier in
  st.at_barrier <- [];
  List.iter
    (fun (r, resume) ->
      st.clocks.(r) <- t;
      Queue.push resume st.runq)
    waiting

let handler st (r : int) =
  {
    retc = (fun () -> st.finished <- st.finished + 1);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_rank -> Some (fun (k : (a, unit) continuation) -> continue k r)
        | E_nprocs -> Some (fun k -> continue k st.nprocs)
        | E_now -> Some (fun k -> continue k st.clocks.(r))
        | E_work (kind, dt) ->
          Some
            (fun k ->
              let t0 = st.clocks.(r) in
              st.clocks.(r) <- st.clocks.(r) +. dt;
              record st r t0 st.clocks.(r) kind;
              continue k ())
        | E_send (dst, tag, data) ->
          Some
            (fun k ->
              if dst < 0 || dst >= st.nprocs then
                invalid_arg "Sim.send: bad destination rank";
              let nbytes = 8 * Fbuf.length data in
              let t0 = st.clocks.(r) in
              (match st.nics with
              | None ->
                st.clocks.(r) <-
                  st.clocks.(r)
                  +. st.net.Netmodel.send_overhead
                  +. Netmodel.transfer_time st.net ~bytes:nbytes;
                record st r t0 st.clocks.(r) Span.Send;
                let arrival = st.clocks.(r) +. st.net.Netmodel.latency in
                deposit st (r, dst, tag) ~sent:st.clocks.(r) ~queued:0.
                  arrival (Fbuf.copy data)
              | Some nics ->
                (* blocking eager send: the CPU prepares the message
                   (overhead), waits for a free send-NIC lane, and is
                   occupied until the wire finishes *)
                let transfer = Netmodel.transfer_time st.net ~bytes:nbytes in
                let cpu_ready = t0 +. st.net.Netmodel.send_overhead in
                let w0 =
                  reserve_lane nics.snd_free.(r) ~at:cpu_ready ~dur:transfer
                in
                let wire_end = w0 +. transfer in
                if w0 > cpu_ready then begin
                  (* the NIC-queue stall is the sender's own blocked
                     time, so it surfaces as a Wait span on its timeline
                     (and in the queue counter), not as flight time *)
                  record st r t0 cpu_ready Span.Send;
                  record st r cpu_ready w0 Span.Wait;
                  record st r w0 wire_end Span.Send;
                  Recorder.nic_queue st.logs.(r) (w0 -. cpu_ready)
                end
                else record st r t0 wire_end Span.Send;
                st.clocks.(r) <- wire_end;
                let egress, up_q =
                  uplink_pass nics ~w0 ~wire_end ~nbytes
                in
                Recorder.nic_queue st.logs.(r) up_q;
                let arrival = egress +. st.net.Netmodel.latency in
                deposit st (r, dst, tag) ~sent:wire_end ~queued:up_q arrival
                  (Fbuf.copy data));
              continue k ())
        | E_isend (dst, tag, data) ->
          Some
            (fun k ->
              if dst < 0 || dst >= st.nprocs then
                invalid_arg "Sim.isend: bad destination rank";
              let nbytes = 8 * Fbuf.length data in
              (* sender only pays the CPU overhead; the wire runs in
                 parallel with subsequent computation *)
              let t0 = st.clocks.(r) in
              st.clocks.(r) <- st.clocks.(r) +. st.net.Netmodel.send_overhead;
              record st r t0 st.clocks.(r) Span.Send;
              (match st.nics with
              | None ->
                let arrival =
                  st.clocks.(r)
                  +. Netmodel.transfer_time st.net ~bytes:nbytes
                  +. st.net.Netmodel.latency
                in
                deposit st (r, dst, tag) ~sent:st.clocks.(r) ~queued:0.
                  arrival (Fbuf.copy data)
              | Some nics ->
                (* the CPU detaches after the overhead; the DMA transfer
                   queues for a send-NIC lane, so its queueing rides the
                   flight (attributed on the edge), not the CPU *)
                let transfer = Netmodel.transfer_time st.net ~bytes:nbytes in
                let cpu_ready = st.clocks.(r) in
                let w0 =
                  reserve_lane nics.snd_free.(r) ~at:cpu_ready ~dur:transfer
                in
                let send_q = w0 -. cpu_ready in
                let wire_end = w0 +. transfer in
                let egress, up_q =
                  uplink_pass nics ~w0 ~wire_end ~nbytes
                in
                Recorder.nic_queue st.logs.(r) (send_q +. up_q);
                let arrival = egress +. st.net.Netmodel.latency in
                deposit st (r, dst, tag) ~sent:cpu_ready
                  ~queued:(send_q +. up_q) arrival (Fbuf.copy data));
              continue k ())
        | E_recv (src, tag) ->
          Some
            (fun k ->
              let key = (src, r, tag) in
              match pop_message st key with
              | Some msg ->
                continue k (receive_clock st key r ~t0:st.clocks.(r) msg)
              | None ->
                if Hashtbl.mem st.parked key then
                  failwith
                    "Sim.recv: two simultaneous receives on one channel";
                let t_park = st.clocks.(r) in
                Hashtbl.replace st.parked key (fun msg ->
                    continue k (receive_clock st key r ~t0:t_park msg)))
        | E_barrier ->
          Some
            (fun k ->
              st.at_barrier <- (r, fun () -> continue k ()) :: st.at_barrier;
              if List.length st.at_barrier = st.nprocs then release_barrier st)
        | _ -> None);
  }

let run ?(trace = false) ?recorder ~nprocs ~net program =
  if nprocs <= 0 then invalid_arg "Sim.run: nprocs";
  let rc =
    match recorder with
    | Some rc ->
      if Recorder.nprocs rc <> nprocs then
        invalid_arg "Sim.run: recorder nprocs mismatch";
      rc
    | None ->
      (* a zero clock: the simulator stamps everything explicitly in
         virtual time, so the recorder's own clock must never move *)
      Recorder.create ~trace ~clock:(fun () -> 0.) ~nprocs ()
  in
  let nics =
    match net.Netmodel.model with
    | Netmodel.Alpha_beta -> None
    | Netmodel.Contended { snd_lanes; rcv_lanes; uplink } ->
      Some
        {
          snd_free = Array.init nprocs (fun _ -> Array.make snd_lanes 0.);
          rcv_free = Array.init nprocs (fun _ -> Array.make rcv_lanes 0.);
          uplink_free = 0.;
          uplink;
        }
  in
  let st =
    {
      nprocs;
      net;
      nics;
      clocks = Array.make nprocs 0.;
      channels = Hashtbl.create 64;
      parked = Hashtbl.create 16;
      runq = Queue.create ();
      finished = 0;
      at_barrier = [];
      logs = Array.init nprocs (fun r -> Recorder.log rc ~rank:r);
    }
  in
  for r = 0 to nprocs - 1 do
    Queue.push (fun () -> match_with (fun () -> program r) () (handler st r)) st.runq
  done;
  while not (Queue.is_empty st.runq) do
    let thunk = Queue.pop st.runq in
    thunk ()
  done;
  if st.finished < nprocs then begin
    let blocked_recv =
      Hashtbl.fold
        (fun (src, dst, tag) _ acc ->
          Printf.sprintf "rank %d waiting on (src=%d, tag=%d)" dst src tag :: acc)
        st.parked []
    in
    let blocked_barrier =
      List.map (fun (r, _) -> Printf.sprintf "rank %d at barrier" r) st.at_barrier
    in
    raise
      (Deadlock
         (String.concat "; " (List.sort compare (blocked_recv @ blocked_barrier))))
  end;
  {
    completion = Array.fold_left Float.max 0. st.clocks;
    rank_clocks = Array.copy st.clocks;
    messages = Recorder.messages rc;
    bytes = Recorder.bytes rc;
    rank_messages = Recorder.rank_messages rc;
    rank_bytes = Recorder.rank_bytes rc;
    max_inflight_bytes = Recorder.max_inflight_bytes rc;
    queue_seconds = Recorder.queue_seconds rc;
    rank_queue_seconds = Recorder.rank_queue_seconds rc;
    (* Recorder.spans merges the per-rank logs time-ordered, like the
       wall-clock recorder produces ([] in streaming mode) *)
    trace = Recorder.spans rc;
    edges = Recorder.edges rc;
  }
