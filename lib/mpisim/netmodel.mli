(** Cost model of the simulated cluster.

    The paper's testbed was 16 Pentium III 500 MHz nodes on switched
    FastEthernet under MPICH; we model it with the usual
    latency/bandwidth/overhead (α-β) point-to-point model plus a per-point
    computation cost and a per-element packing cost. The absolute numbers
    only set the computation-to-communication ratio; the experiments'
    qualitative shape (which tiling wins, where speedup peaks) is what the
    reproduction checks.

    The α-β model gives every concurrent transfer the full link
    bandwidth — an infinite-capacity NIC. At thousand-rank scale that
    flatters dense communication patterns, so a second, contention-aware
    model serialises transfers through per-rank send- and receive-side
    NIC lanes (FIFO, earliest-free lane first) and optionally through a
    single shared uplink (a crude bisection-bandwidth cap). The queueing
    delay the lanes introduce is charged explicitly and surfaces as
    "nic-queue" time in the critical-path decomposition. *)

type contention = {
  snd_lanes : int;  (** concurrent outgoing transfers per rank *)
  rcv_lanes : int;  (** concurrent incoming transfers per rank *)
  uplink : float option;
      (** shared egress capacity in bytes/s: every message also passes
          through one global FIFO pipe of this bandwidth ([None] = no
          shared cap) *)
}

type model =
  | Alpha_beta  (** infinite NIC capacity: the historical default *)
  | Contended of contention

type t = {
  latency : float;  (** one-way message latency, seconds *)
  bandwidth : float;  (** bytes per second on the wire *)
  send_overhead : float;  (** CPU time consumed by the sender per message *)
  recv_overhead : float;  (** CPU time consumed by the receiver per message *)
  flop_time : float;  (** seconds of CPU per iteration point *)
  pack_time : float;  (** seconds of CPU per packed/unpacked element *)
  model : model;  (** how concurrent transfers share the network *)
}

val fast_ethernet_cluster : t
(** Defaults calibrated to the paper's testbed class: 100 Mbit/s wire,
    ~70 µs latency, ~100 ns per stencil point on a 500 MHz PIII.
    [model] is [Alpha_beta]. *)

val ideal : t
(** Zero-cost network, for ablations (pure scheduling effect). *)

val contended : ?snd_lanes:int -> ?rcv_lanes:int -> ?uplink:float -> t -> t
(** Switch a model to contention-aware NICs (lanes default to 1, no
    uplink cap). Raises [Invalid_argument] on lanes < 1 or a
    non-positive uplink. *)

val transfer_time : t -> bytes:int -> float
(** Wire time of one message: [bytes / bandwidth]. *)

val with_ratio : t -> float -> t
(** Scale [flop_time] so the computation-to-communication ratio changes by
    the given factor (> 1 = more compute-bound); used by the ablation
    bench. *)

val model_id : t -> string
(** Stable identifier recorded in run metadata and baseline file names:
    ["fast_ethernet_cluster"] for [Alpha_beta] (the historical name every
    committed artifact uses), ["contended:snd=…,rcv=…"] plus any
    non-default uplink/bandwidth/latency otherwise — so perf baselines
    recorded under different models can never be compared. *)

val of_spec : string -> (t, string) result
(** Parse a [--net] command-line spec:
    ["alpha-beta"] or ["contended[:key=value,…]"] with keys [snd], [rcv],
    [lanes] (sets both), [uplink] (bytes/s), [bw] (wire bytes/s), [lat]
    (seconds). [Error] carries a usage message. *)
