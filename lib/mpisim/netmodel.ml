type contention = {
  snd_lanes : int;
  rcv_lanes : int;
  uplink : float option;
}

type model = Alpha_beta | Contended of contention

type t = {
  latency : float;
  bandwidth : float;
  send_overhead : float;
  recv_overhead : float;
  flop_time : float;
  pack_time : float;
  model : model;
}

let fast_ethernet_cluster =
  {
    latency = 70e-6;
    bandwidth = 12.5e6;
    send_overhead = 30e-6;
    recv_overhead = 30e-6;
    flop_time = 100e-9;
    pack_time = 20e-9;
    model = Alpha_beta;
  }

let ideal =
  {
    latency = 0.;
    bandwidth = infinity;
    send_overhead = 0.;
    recv_overhead = 0.;
    flop_time = 100e-9;
    pack_time = 0.;
    model = Alpha_beta;
  }

let contended ?(snd_lanes = 1) ?(rcv_lanes = 1) ?uplink base =
  if snd_lanes < 1 || rcv_lanes < 1 then
    invalid_arg "Netmodel.contended: lanes must be >= 1";
  (match uplink with
  | Some u when not (u > 0.) ->
    invalid_arg "Netmodel.contended: uplink must be > 0"
  | _ -> ());
  { base with model = Contended { snd_lanes; rcv_lanes; uplink } }

let transfer_time t ~bytes = float_of_int bytes /. t.bandwidth
let with_ratio t f = { t with flop_time = t.flop_time *. f }

(* The id is what lands in Runmeta's "netmodel" field and in baseline
   file names, so runs under different models never get compared. The
   alpha-beta default keeps its historical name — every committed
   artifact already says "fast_ethernet_cluster". *)
let model_id t =
  match t.model with
  | Alpha_beta -> "fast_ethernet_cluster"
  | Contended c ->
    let buf = Buffer.create 32 in
    Buffer.add_string buf
      (Printf.sprintf "contended:snd=%d,rcv=%d" c.snd_lanes c.rcv_lanes);
    (match c.uplink with
    | Some u -> Buffer.add_string buf (Printf.sprintf ",uplink=%g" u)
    | None -> ());
    if t.bandwidth <> fast_ethernet_cluster.bandwidth then
      Buffer.add_string buf (Printf.sprintf ",bw=%g" t.bandwidth);
    if t.latency <> fast_ethernet_cluster.latency then
      Buffer.add_string buf (Printf.sprintf ",lat=%g" t.latency);
    Buffer.contents buf

let of_spec spec =
  let ( let* ) = Result.bind in
  let pos_int key s =
    match int_of_string_opt s with
    | Some i when i >= 1 -> Ok i
    | _ -> Error (Printf.sprintf "net: %s must be a positive integer" key)
  in
  let pos_float key s =
    match float_of_string_opt s with
    | Some f when f > 0. && Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "net: %s must be a positive number" key)
  in
  let name, params =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  match name with
  | "alpha-beta" | "alphabeta" | "default" ->
    if params = "" then Ok fast_ethernet_cluster
    else Error "net: alpha-beta takes no parameters"
  | "contended" ->
    let kvs = if params = "" then [] else String.split_on_char ',' params in
    let rec fold acc = function
      | [] -> Ok acc
      | kv :: rest ->
        let* key, value =
          match String.index_opt kv '=' with
          | Some i ->
            Ok
              ( String.sub kv 0 i,
                String.sub kv (i + 1) (String.length kv - i - 1) )
          | None -> Error (Printf.sprintf "net: expected key=value, got %S" kv)
        in
        let snd_lanes, rcv_lanes, uplink, base = acc in
        let* acc =
          match key with
          | "snd" ->
            let* n = pos_int key value in
            Ok (n, rcv_lanes, uplink, base)
          | "rcv" ->
            let* n = pos_int key value in
            Ok (snd_lanes, n, uplink, base)
          | "lanes" ->
            let* n = pos_int key value in
            Ok (n, n, uplink, base)
          | "uplink" ->
            let* u = pos_float key value in
            Ok (snd_lanes, rcv_lanes, Some u, base)
          | "bw" ->
            let* b = pos_float key value in
            Ok (snd_lanes, rcv_lanes, uplink, { base with bandwidth = b })
          | "lat" ->
            let* l = pos_float key value in
            Ok (snd_lanes, rcv_lanes, uplink, { base with latency = l })
          | _ ->
            Error
              (Printf.sprintf
                 "net: unknown parameter %S (snd, rcv, lanes, uplink, bw, \
                  lat)"
                 key)
        in
        fold acc rest
    in
    let* snd_lanes, rcv_lanes, uplink, base =
      fold (1, 1, None, fast_ethernet_cluster) kvs
    in
    Ok (contended ~snd_lanes ~rcv_lanes ?uplink base)
  | other ->
    Error
      (Printf.sprintf "net: unknown model %S (alpha-beta | contended[:params])"
         other)
