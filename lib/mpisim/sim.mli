(** Discrete-event simulated message-passing cluster.

    Each rank runs as an effect-handler fiber with its own virtual clock.
    Ranks interact only through messages, so the simulation needs no
    preemption: a fiber runs until it blocks on a receive whose message has
    not been produced yet, sends wake blocked receivers, and the virtual
    completion time is the maximum clock at exit. Matching is FIFO per
    (source, destination, tag) channel — the semantics of a blocking
    MPI_Recv with an eager, buffered MPI_Send, which is how the paper's
    generated code communicates.

    The simulation is deterministic: rank programs are pure functions of
    their inputs and message contents, and queue order is fixed.

    Network contention: under {!Netmodel.Alpha_beta} every concurrent
    transfer gets the full wire bandwidth (infinite-capacity NICs).
    Under {!Netmodel.Contended} each rank owns a bounded set of
    send-side and receive-side NIC lanes with busy-until stamps —
    transfers serialise FIFO through the earliest-free lane, optionally
    through a single shared uplink — and every second of queueing is
    charged explicitly: to the sender's timeline (a [Wait] span) when a
    blocking send stalls for a lane, and to the message's flight
    ([edge.e_queued], plus the per-rank queue counters) when an
    overlapped send's DMA, the uplink, or the receive NIC delays
    delivery. Lane reservations happen in simulator execution order,
    which depends only on program control flow — never on the timing
    parameters — so the contended schedule is deterministic and
    completion is monotone under bandwidth drops or lane removal, and
    with enough lanes and no uplink cap it is bit-identical to
    [Alpha_beta].

    Traced spans use the observability layer's shared vocabulary
    ({!Tiles_obs.Span}), so a simulated timeline and a real
    {!Tiles_runtime.Shm_executor} timeline feed the same exporters. *)

(** One traced activity interval on a rank's virtual timeline (an alias
    of {!Tiles_obs.Span.t}; times are virtual seconds). *)
type span = Tiles_obs.Span.t = {
  rank : int;
  t0 : float;
  t1 : float;
  kind : Tiles_obs.Span.kind;
}

type stats = {
  completion : float;  (** virtual time at which the last rank finished *)
  rank_clocks : float array;
  messages : int;
  bytes : int;
  rank_messages : int array;  (** messages sent, per sender rank *)
  rank_bytes : int array;  (** bytes sent, per sender rank *)
  max_inflight_bytes : int;  (** peak total bytes buffered in channels *)
  queue_seconds : float;
      (** total NIC/uplink queueing under a contended {!Netmodel.model}
          (0 under [Alpha_beta]); maintained even untraced/streaming *)
  rank_queue_seconds : float array;
      (** queueing charged per rank: send-side stalls and uplink delay
          to the sender, receive-NIC serialisation to the receiver *)
  trace : span list;  (** per-event spans; empty unless [run] was called
                          with [~trace:true] *)
  edges : Tiles_obs.Recorder.edge list;
      (** matched send→recv causal dependencies (empty when untraced or
          when the recorder runs in streaming mode) *)
}

exception Deadlock of string
(** Raised when every unfinished rank is blocked on a receive that can
    never be satisfied. The message lists the blocked ranks. *)

(** Operations available inside a rank program. *)
module Api : sig
  val rank : unit -> int
  val nprocs : unit -> int

  val compute : float -> unit
  (** Advance this rank's clock by [dt] seconds of local work. *)

  val pack : float -> unit
  (** Like {!compute}, but the traced span is tagged [Pack] (gathering a
      slab into a message buffer). *)

  val unpack : float -> unit
  (** Like {!compute}, but tagged [Unpack] (scattering a received buffer
      into the LDS). *)

  val now : unit -> float
  (** Current virtual time on this rank. *)

  val send : dst:int -> tag:int -> Tiles_util.Fbuf.t -> unit
  (** Eager buffered send: charges the sender overhead + wire time, then
      returns; the message becomes available to [dst] one latency later.
      The array is copied, so the sender may reuse its buffer. *)

  val isend : dst:int -> tag:int -> Tiles_util.Fbuf.t -> unit
  (** Overlapped (non-blocking) send: the sender pays only the CPU
      overhead; wire time runs concurrently with whatever the sender does
      next, so the message arrives at [now + overhead + wire + latency].
      Models the communication/computation-overlap schedule of the
      paper's future-work reference [8] (DMA/NIC-driven transfers). *)

  val recv : src:int -> tag:int -> Tiles_util.Fbuf.t
  (** Block until the matching message arrives; the clock advances to
      [max own-clock arrival + recv_overhead]. Only the genuinely
      blocked interval (own clock → arrival) is traced as [Wait]; the
      receive overhead is traced as [Unpack], so a message that was
      already buffered records no wait time. *)

  val barrier : unit -> unit
  (** All ranks synchronise; everyone leaves at the common maximum clock
      plus one latency. *)
end

val run :
  ?trace:bool ->
  ?recorder:Tiles_obs.Recorder.t ->
  nprocs:int ->
  net:Netmodel.t ->
  (int -> unit) ->
  stats
(** [run ~nprocs ~net program] executes [program rank] on every rank and
    returns the virtual-time statistics. Raises [Deadlock] on a stuck
    communication pattern, and re-raises any exception escaping a rank
    program. With [~trace:true], every compute / pack / send / wait /
    unpack interval is recorded in [stats.trace] (for Gantt rendering
    and the {!Tiles_obs} exporters) together with the message dependency
    edges in [stats.edges].

    [recorder] supplies a caller-created recorder instead (it must have
    been created with a clock that always reads 0 — the simulator stamps
    in virtual time — and matching [nprocs]; [trace] is then taken from
    the recorder). A [~mode:Streaming] recorder keeps a traced run at
    O(nprocs) memory: [stats.trace]/[stats.edges] come back empty and
    the aggregates live in the recorder. *)
