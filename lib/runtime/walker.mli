(** The compiled tile-execution engine (§2.3, Tables 1–2).

    A walker is built once per (plan, kernel, rank, chain length) and
    precomputes everything the per-point protocol body used to re-derive
    at every iteration: the TTIS→LDS linear-index strides, the
    tile-relative LDS base shift, the integer numerator [Q/den] of [P'],
    the per-innermost-step global-coordinate delta, and — per row — a
    flat [int array] of linear read-offset deltas for each stencil tap.
    The hot loop is then pure unsafe indexing on the local array
    (an unboxed {!Tiles_util.Fbuf.t}) with index increments: no [Vec]
    allocation, no [Lds.map], no bounds re-derivation.

    Enumeration happens row-wise: the space constraints are pulled back
    onto TTIS coordinates (tile-dependent constants only), projected
    with Fourier–Motzkin, and walked with residue-aligned strides
    exactly like {!Tiles_core.Tile_space.count_clipped} — the innermost
    level of the projection chain is the original system, so every
    aligned point of a row is a member and rows need no per-point
    membership test. The enumeration order is lexicographic ascending,
    identical to the reference walker's, so pack buffers are filled in
    the same order and results are bit-for-bit equal. *)

type variant =
  | Reference
      (** the original per-point walker ([Lds.map] + bounds-checked
          indexing per tap); always validates against NaN reads.
          Kept as the correctness oracle. *)
  | Strength_reduced
      (** row enumeration + precomputed linear indices, scalar loops *)
  | Fastpath
      (** [Strength_reduced] plus: contiguous-row blit pack/unpack, and
          the kernel's unrolled [row] body on interior rows (width-1
          kernels). The default. *)
  | Native
      (** [Fastpath] whose per-row work runs in a C-compiled,
          [dlopen]'d kernel built at plan time from the kernel's
          [ckernel] body ({!Native_kernel}). Falls back to [Fastpath]
          behaviour — recording the reason — when no C compiler is
          available, the kernel carries no C body, or [check] is set
          (NaN validation needs the OCaml read path). *)

val variant_to_string : variant -> string

val variant_of_string : string -> variant option
(** Accepts ["reference"], ["strength"], ["fast"], ["native"]. *)

val all_variants : variant list

val compiled_member : Tiles_poly.Polyhedron.t -> int array -> bool
(** Closure-free membership test compiled from the space's constraints
    (no per-call allocation). *)

type t

val make :
  ?inner:int array ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  rank:int ->
  ntiles:int ->
  variant:variant ->
  check:bool ->
  unit ->
  t
(** [check] makes the fast variants validate every LDS read against NaN
    (uninitialised-cell poisoning) like the reference walker does; the
    fast variants skip the check — and become eligible for the unrolled
    row bodies — when it is false. [Reference] validates regardless.
    [Native] compiles (or loads from cache) its row kernel here.

    [inner] is an optional subtile shape in TTIS local coordinates
    (one extent per dimension, clamped to the tile box [0, v-1]): the
    fast variants then walk each tile as a lexicographic sequence of
    cache-resident rectangular subtiles instead of one long row sweep.
    Because a legal tiling has componentwise-nonnegative TTIS
    dependences (H' = diag(v)·H), any rectangular subtile schedule in
    lex order is a topological order, so the computed values — and the
    pack/unpack/write-back traversals, which stay on the plain slab
    order — are bit-identical to the unblocked walk. [Reference]
    ignores [inner] (it is the unblocked oracle). Raises
    [Invalid_argument] on a shape with the wrong dimension, a
    non-positive extent, or a kernel whose TTIS read offsets would make
    the blocked order illegal. *)

val variant : t -> variant

val inner : t -> int array option
(** The subtile shape the walker was built with, clamped to the tile
    box; [None] when walking unblocked. *)

val memo_entries : unit -> int
(** Number of process-wide compiled walk plans currently memoised. The
    memo key covers the pulled-back constraint system, the tile box
    AND the inner subtile shape — exposed so tests can assert that
    differently-blocked walkers never share a plan. *)

val fallback_reason : t -> string option
(** [Some reason] when [Native] was requested but the walker is running
    the OCaml fast path instead (no compiler, no C body, check mode,
    compile/dlopen failure); [None] otherwise. *)

val lds_total : t -> int
(** Cells of the rank's local array ([Lds.shape] total); the backing
    buffer must have [lds_total * width] slots. *)

val compute_tile :
  t -> trel:int -> tile:Tiles_util.Vec.t -> la:Tiles_util.Fbuf.t -> int
(** Execute the kernel over the tile's clipped TTIS, reading/writing the
    local array. Returns the number of iteration points computed. *)

val pack_slab :
  t ->
  trel:int ->
  tile:Tiles_util.Vec.t ->
  lo:int array ->
  la:Tiles_util.Fbuf.t ->
  buf:Tiles_util.Fbuf.t ->
  int
(** Gather the clipped slab [j' >= lo] of the tile into [buf] in
    lexicographic TTIS order. Returns the number of cells packed. *)

val unpack_slab :
  t ->
  trel:int ->
  pred_tile:Tiles_util.Vec.t ->
  ds:Tiles_util.Vec.t ->
  lo:int array ->
  la:Tiles_util.Fbuf.t ->
  buf:Tiles_util.Fbuf.t ->
  int
(** Scatter a received slab (packed by the predecessor tile
    [pred_tile], arriving over tile dependence [ds]) into this rank's
    local array. Returns the number of cells scattered. *)

val write_back :
  t ->
  trel:int ->
  tile:Tiles_util.Vec.t ->
  la:Tiles_util.Fbuf.t ->
  Grid.t ->
  unit
(** Copy the tile's computed points from the local array into the
    global grid (LDS → DS). *)
