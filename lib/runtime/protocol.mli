(** The per-rank §3.2 execution protocol, factored out of any particular
    transport: RECEIVE (minsucc pairing, halo unpack) → compute the tile's
    clipped TTIS → SEND (aggregated clipped slabs). Both the
    discrete-event simulator backend ({!Executor}) and the real
    shared-memory backend ({!Shm_executor}) drive this same code, so the
    protocol logic is verified once and executed everywhere. *)

(** Transport + cost hooks supplied by a backend.

    The three cost hooks are called {e after} the real work of the
    corresponding section, with the section's modelled cost: the
    simulator charges virtual time (and records a span of that kind);
    the shared-memory backend ignores the modelled cost and instead
    closes the wall-clock interval since its previous event under the
    same tag — so both backends partition every rank's timeline into the
    same compute / pack / send / wait / unpack vocabulary.

    Causal identity contract: [rank_program] issues sends and receives
    in a deterministic per-channel order that is identical in the
    blocking and overlapped schedules, and every transport used here
    delivers FIFO per (src, dst, tag). {!Tiles_obs.Recorder} therefore
    assigns per-channel sequence numbers independently on each side and
    the two numberings agree — this is what lets both backends record
    matched send→recv dependency edges (and {!Tiles_obs.Critpath}
    replay them) without the transports carrying explicit message
    ids. A transport that reorders messages within one (src, dst, tag)
    channel would break this contract. *)
type comms = {
  send : dst:int -> tag:int -> Tiles_util.Fbuf.t -> unit;
  recv : src:int -> tag:int -> Tiles_util.Fbuf.t;
  compute : float -> unit;  (** tile-point arithmetic for one tile *)
  pack : float -> unit;  (** gathering one outgoing slab *)
  unpack : float -> unit;  (** scattering one received slab *)
}

type mode = Full | Timing

type slab_mismatch = {
  mm_rank : int;
  mm_stage : [ `Pack | `Unpack ];
  mm_dm : Tiles_util.Vec.t;  (** processor direction of the slab *)
  mm_ts : int;  (** [t^S] of the tile being packed/unpacked *)
  mm_expected : int;  (** cells the analytic slab count promised *)
  mm_actual : int;  (** cells the walker actually visited *)
}
(** A pack/unpack walked a different number of cells than the analytic
    slab count (or the received buffer) promised — a protocol bug or a
    corrupted message, never a user error. *)

exception Slab_mismatch of slab_mismatch

val slab_mismatch_to_string : slab_mismatch -> string

type shared = {
  plan : Tiles_core.Plan.t;
  kernel : Kernel.t;
  mode : mode;
  walker : Walker.variant;
  check : bool;
  inner : int array option;  (** subtile shape for every rank's walker *)
  flop_time : float;
  pack_time : float;
  grid : Grid.t option;  (** shared result mirror (disjoint writes) *)
  points_per_rank : int array;
  tiles_per_rank : int array;
}

val prepare :
  ?walker:Walker.variant ->
  ?check:bool ->
  ?inner:int array ->
  mode:mode ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  flop_time:float ->
  pack_time:float ->
  unit ->
  shared
(** Validates the kernel against the plan and allocates the shared
    state. Raises [Invalid_argument] on mismatch.

    [?walker] (default {!Walker.Fastpath}) selects the tile-execution
    engine; [?check] (default false) makes the fast walkers validate
    every LDS read against NaN poisoning like the reference walker
    does. [?inner] is the optional subtile shape handed to every
    rank's {!Walker.make}: the compute loop walks cache-resident
    subtiles while pack/unpack/write-back stay on the plain slab
    order, so the message set, tags and byte counts are identical to
    the unblocked run in both schedules. *)

val rank_program : ?overlap:bool -> shared -> comms -> int -> unit
(** Execute one rank's whole tile chain (including the untimed LDS→DS
    write-back in [Full] mode). Thread-safe across ranks: all shared
    writes are rank-disjoint.

    With [~overlap:true] the rank runs the paper's §5 overlapped
    schedule: every receive a tile expects (per the minsucc pairing) is
    pre-posted before any slab is scattered into the LDS, and outgoing
    slabs are packed and handed to [comms.send] immediately after the
    tile's computation — a backend whose [send] is asynchronous (the
    simulator's [isend], the shared-memory backend's bounded send stage)
    then overlaps the transfer with the next tile's computation. The
    message set, tags and per-channel order are identical in both
    schedules, so counters agree exactly with the blocking run. *)
