module Mapping = Tiles_core.Mapping
module Plan = Tiles_core.Plan
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel

type mode = Full | Timing

type result = {
  stats : Sim.stats;
  seq_modelled : float;
  speedup : float;
  grid : Grid.t option;
  points_computed : int;
  tiles_executed : int;
}

let run ?walker ?check ?inner ?(mode = Full) ?(overlap = false)
    ?(trace = false) ?recorder ~plan ~kernel ~net () =
  let pmode = match mode with Full -> Protocol.Full | Timing -> Protocol.Timing in
  let shared =
    Protocol.prepare ?walker ?check ?inner ~mode:pmode ~plan ~kernel
      ~flop_time:net.Netmodel.flop_time ~pack_time:net.Netmodel.pack_time ()
  in
  let comms =
    {
      Protocol.send =
        (fun ~dst ~tag data ->
          if overlap then Sim.Api.isend ~dst ~tag data
          else Sim.Api.send ~dst ~tag data);
      recv = (fun ~src ~tag -> Sim.Api.recv ~src ~tag);
      compute = Sim.Api.compute;
      pack = Sim.Api.pack;
      unpack = Sim.Api.unpack;
    }
  in
  let stats =
    Sim.run ~trace ?recorder
      ~nprocs:(Mapping.nprocs plan.Plan.mapping)
      ~net
      (Protocol.rank_program ~overlap shared comms)
  in
  let seq_modelled =
    Seq_exec.modelled_time ~space:plan.Plan.nest.Tiles_loop.Nest.space ~net
  in
  {
    stats;
    seq_modelled;
    speedup = seq_modelled /. stats.Sim.completion;
    grid = shared.Protocol.grid;
    points_computed = Array.fold_left ( + ) 0 shared.Protocol.points_per_rank;
    tiles_executed = Array.fold_left ( + ) 0 shared.Protocol.tiles_per_rank;
  }
