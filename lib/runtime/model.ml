module Netmodel = Tiles_mpisim.Netmodel
module Polyhedron = Tiles_poly.Polyhedron
module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Ttis = Tiles_core.Ttis
module Comm = Tiles_core.Comm
module Schedule = Tiles_core.Schedule

type estimate = {
  steps : int;
  tile_compute : float;
  comm_per_step : float;
  total : float;
  predicted_speedup : float;
}

let slab_cells (plan : Tiles_core.Plan.t) =
  let tiling = plan.Plan.tiling and comm = plan.Plan.comm in
  let n = tiling.Tiling.n and m = comm.Comm.m in
  List.fold_left
    (fun acc (dm, _) ->
      let lo =
        Array.init n (fun k ->
            if k = m then 0
            else
              let kk = if k < m then k else k - 1 in
              dm.(kk) * comm.Comm.cc.(k))
      in
      acc + Ttis.count_from tiling ~lo)
    0 comm.Comm.dm

let predict (plan : Tiles_core.Plan.t) ~net =
  let tile_points = float_of_int (Tiling.tile_size plan.Plan.tiling) in
  let tile_compute = tile_points *. net.Netmodel.flop_time in
  let cells = float_of_int (slab_cells plan) in
  let width =
    (* kernels may carry several fields; the model is used for ranking so
       a single field is assumed — callers with width > 1 can scale *)
    1.
  in
  let bytes = cells *. width *. 8. in
  let nmsg = float_of_int (List.length plan.Plan.comm.Comm.dm) in
  let comm_per_step =
    (* pack + unpack CPU, plus per-message overheads, plus wire *)
    (2. *. cells *. width *. net.Netmodel.pack_time)
    +. (nmsg
        *. (net.Netmodel.send_overhead +. net.Netmodel.recv_overhead
          +. net.Netmodel.latency))
    +. (bytes /. net.Netmodel.bandwidth)
  in
  let steps = Schedule.steps plan in
  let total = float_of_int steps *. (tile_compute +. comm_per_step) in
  let seq =
    float_of_int (Polyhedron.count_points plan.Plan.nest.Tiles_loop.Nest.space)
    *. net.Netmodel.flop_time
  in
  {
    steps;
    tile_compute;
    comm_per_step;
    total;
    predicted_speedup = seq /. total;
  }

let fields e =
  [ ("completion_s", e.total); ("speedup", e.predicted_speedup) ]

let best_factor mk ~factors ~net =
  let candidates =
    List.filter_map
      (fun f ->
        match mk f with
        | plan -> Some (f, predict plan ~net)
        | exception (Invalid_argument _ | Failure _) -> None)
      factors
  in
  match candidates with
  | [] -> failwith "Model.best_factor: no feasible factor"
  | first :: rest ->
    List.fold_left
      (fun ((_, eb) as best) ((_, e) as cand) ->
        if e.total < eb.total then cand else best)
      first rest
