module Vec = Tiles_util.Vec
module Intmat = Tiles_linalg.Intmat
module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Mapping = Tiles_core.Mapping
module Comm = Tiles_core.Comm
module Lds = Tiles_core.Lds
module Plan = Tiles_core.Plan

type comms = {
  send : dst:int -> tag:int -> float array -> unit;
  recv : src:int -> tag:int -> float array;
  compute : float -> unit;
  pack : float -> unit;
  unpack : float -> unit;
}

type mode = Full | Timing

type shared = {
  plan : Plan.t;
  kernel : Kernel.t;
  mode : mode;
  flop_time : float;
  pack_time : float;
  grid : Grid.t option;
  points_per_rank : int array;
  tiles_per_rank : int array;
}

(* Closure-free membership test compiled from the space's constraints. *)
let fast_member space =
  let cs =
    Array.of_list
      (List.map
         (fun c -> (Array.init (Constr.dim c) (Constr.coeff c), Constr.const c))
         (Polyhedron.constraints space))
  in
  fun (j : int array) ->
    let ok = ref true in
    Array.iter
      (fun (coeffs, const) ->
        if !ok then begin
          let acc = ref const in
          for k = 0 to Array.length coeffs - 1 do
            acc := !acc + (coeffs.(k) * j.(k))
          done;
          if !acc < 0 then ok := false
        end)
      cs;
    !ok

type direction = {
  dm : Vec.t;
  dss : Vec.t list;  (* descending d^S_m, so receives match channel order *)
  slab_lo : int array;
}

let build_directions (plan : Plan.t) =
  let comm = plan.Plan.comm in
  let m = comm.Comm.m in
  List.map
    (fun (dm, dss) ->
      {
        dm;
        dss = List.sort (fun a b -> compare b.(m) a.(m)) dss;
        slab_lo = Comm.slab_lo comm ~dm;
      })
    (comm.Comm.dm : (Vec.t * Vec.t list) list)

(* minsucc: successors of a predecessor tile in one processor direction
   share its pid, so the lexicographically minimum valid successor has
   the smallest valid ts. *)
let minsucc_ts mapping ~pid ~pred_ts dss =
  let m = mapping.Mapping.m in
  let cands =
    List.filter_map
      (fun dS ->
        let ts = pred_ts + dS.(m) in
        if Mapping.valid mapping ~pid ~ts then Some ts else None)
      dss
  in
  match cands with
  | [] -> None
  | first :: rest -> Some (List.fold_left min first rest)

let prepare ~mode ~plan ~kernel ~flop_time ~pack_time () =
  let n = Tiling.dim plan.Plan.tiling in
  if kernel.Kernel.dim <> n then invalid_arg "Protocol.prepare: kernel dimension";
  if
    not
      (Tiles_loop.Dependence.to_matrix (Kernel.deps kernel)
      = Tiles_loop.Dependence.to_matrix plan.Plan.nest.Tiles_loop.Nest.deps)
  then invalid_arg "Protocol.prepare: kernel dependencies differ from the plan's";
  let nprocs = Mapping.nprocs plan.Plan.mapping in
  let grid =
    if mode = Full then
      Some
        (Grid.create plan.Plan.nest.Tiles_loop.Nest.space
           ~width:kernel.Kernel.width)
    else None
  in
  {
    plan;
    kernel;
    mode;
    flop_time;
    pack_time;
    grid;
    points_per_rank = Array.make nprocs 0;
    tiles_per_rank = Array.make nprocs 0;
  }

let rank_program ?(overlap = false) shared comms rank =
  let plan = shared.plan and kernel = shared.kernel in
  let tiling = plan.Plan.tiling in
  let comm = plan.Plan.comm in
  let mapping = plan.Plan.mapping in
  let tspace = plan.Plan.tspace in
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let n = tiling.Tiling.n in
  let m = comm.Comm.m in
  let width = kernel.Kernel.width in
  let directions = build_directions plan in
  let reads = Array.of_list kernel.Kernel.reads in
  let reads' = Array.map (Intmat.apply tiling.Tiling.h') reads in
  let member = fast_member space in
  let vpt k = tiling.Tiling.v.(k) / tiling.Tiling.c.(k) in
  let pid = Mapping.pid_of_rank mapping rank in
  let tlo, thi = Mapping.chain mapping rank in
  let ntiles = thi - tlo + 1 in
  let shape = Lds.shape tiling comm ~ntiles in
  let la =
    match shared.mode with
    | Full -> Array.make (shape.Lds.total * width) Float.nan
    | Timing -> [||]
  in
  let zero_lo = Array.make n 0 in
  let scratch_src = Array.make n 0 in
  let scratch_j' = Array.make n 0 in
  let out = Array.make width 0. in
  let tile_buf = Array.make n 0 in
  let cell_of_map j'' = Lds.map_index shape j'' in
  let rank_of pid =
    match Mapping.rank_of_pid mapping pid with
    | Some r -> r
    | None -> failwith "Protocol: neighbour pid has no rank"
  in
  for ts = tlo to thi do
    let trel = ts - tlo in
    let tile = Mapping.join mapping ~pid ~ts in
    Array.blit tile 0 tile_buf 0 n;
    (* ---------------- RECEIVE ---------------- *)
    (* the channels this tile must receive on (minsucc pairing), in
       deterministic channel order shared by both schedules *)
    let expected =
      List.concat_map
        (fun dir ->
          let pred_pid = Vec.sub pid dir.dm in
          List.filter_map
            (fun dS ->
              let pred_ts = ts - dS.(m) in
              if
                Mapping.valid mapping ~pid:pred_pid ~ts:pred_ts
                && minsucc_ts mapping ~pid ~pred_ts dir.dss = Some ts
              then Some (dir, dS, pred_pid, pred_ts)
              else None)
            dir.dss)
        directions
    in
    let recv_one (_, _, pred_pid, pred_ts) =
      comms.recv ~src:(rank_of pred_pid) ~tag:pred_ts
    in
    let unpack_one (dir, dS, pred_pid, pred_ts) buf =
      let pred_tile = Mapping.join mapping ~pid:pred_pid ~ts:pred_ts in
      if shared.mode = Full then begin
        let count = ref 0 in
        Tile_space.iter_slab_points tspace ~tile:pred_tile ~lo:dir.slab_lo
          (fun ~local:jp' ~global:_ ->
            let j'' = Lds.map tiling comm ~t:trel jp' in
            for k = 0 to n - 1 do
              j''.(k) <- j''.(k) - (dS.(k) * vpt k)
            done;
            let cell = cell_of_map j'' in
            for f = 0 to width - 1 do
              la.((cell * width) + f) <- buf.((!count * width) + f)
            done;
            incr count);
        if !count * width <> Array.length buf then
          failwith "Protocol: pack/unpack cell count mismatch"
      end;
      comms.unpack (float_of_int (Array.length buf) *. shared.pack_time)
    in
    if overlap then
      (* §5 overlapped schedule: pre-post every receive of this tile and
         drain the channels before scattering any slab, so a backend with
         asynchronous delivery keeps all incoming transfers in flight at
         once instead of serialising wait → unpack per channel *)
      List.iter
        (fun (ch, buf) -> unpack_one ch buf)
        (List.map (fun ch -> (ch, recv_one ch)) expected)
    else
      List.iter (fun ch -> unpack_one ch (recv_one ch)) expected;
    (* ---------------- COMPUTE ---------------- *)
    let points = ref 0 in
    (match shared.mode with
    | Timing ->
      points := Tile_space.slab_points tspace ~tile:tile_buf ~lo:zero_lo
    | Full ->
      Tile_space.iter_tile_points tspace ~tile:tile_buf
        (fun ~local:j' ~global:j ->
          incr points;
          let read i field =
            let d = reads.(i) in
            for k = 0 to n - 1 do
              scratch_src.(k) <- j.(k) - d.(k)
            done;
            if member scratch_src then begin
              let d' = reads'.(i) in
              for k = 0 to n - 1 do
                scratch_j'.(k) <- j'.(k) - d'.(k)
              done;
              let j'' = Lds.map tiling comm ~t:trel scratch_j' in
              let v = la.((cell_of_map j'' * width) + field) in
              if Float.is_nan v then
                failwith
                  (Printf.sprintf
                     "Protocol: rank %d read uninitialised LDS cell for \
                      iteration %s read %d"
                     rank (Vec.to_string j) i);
              v
            end
            else kernel.Kernel.boundary scratch_src field
          in
          kernel.Kernel.compute ~read ~j ~out;
          let j'' = Lds.map tiling comm ~t:trel j' in
          let cell = cell_of_map j'' in
          for f = 0 to width - 1 do
            la.((cell * width) + f) <- out.(f)
          done));
    comms.compute (float_of_int !points *. shared.flop_time);
    shared.points_per_rank.(rank) <- shared.points_per_rank.(rank) + !points;
    shared.tiles_per_rank.(rank) <- shared.tiles_per_rank.(rank) + 1;
    (* ---------------- SEND ---------------- *)
    List.iter
      (fun dir ->
        let succ_exists =
          List.exists
            (fun dS ->
              Mapping.valid mapping ~pid:(Vec.add pid dir.dm) ~ts:(ts + dS.(m)))
            dir.dss
        in
        if succ_exists then begin
          let cells =
            Tile_space.slab_points tspace ~tile:tile_buf ~lo:dir.slab_lo
          in
          let buf = Array.make (cells * width) 0. in
          if shared.mode = Full then begin
            let count = ref 0 in
            Tile_space.iter_slab_points tspace ~tile:tile_buf ~lo:dir.slab_lo
              (fun ~local:j' ~global:_ ->
                let j'' = Lds.map tiling comm ~t:trel j' in
                let cell = cell_of_map j'' in
                for f = 0 to width - 1 do
                  buf.((!count * width) + f) <- la.((cell * width) + f)
                done;
                incr count)
          end;
          comms.pack (float_of_int (cells * width) *. shared.pack_time);
          comms.send ~dst:(rank_of (Vec.add pid dir.dm)) ~tag:ts buf
        end)
      directions
  done;
  (* ---------------- write-back (LDS -> DS) ---------------- *)
  match shared.grid with
  | None -> ()
  | Some grid ->
    for ts = tlo to thi do
      let trel = ts - tlo in
      let tile = Mapping.join mapping ~pid ~ts in
      Tile_space.iter_tile_points tspace ~tile (fun ~local:j' ~global:j ->
          let j'' = Lds.map tiling comm ~t:trel j' in
          let cell = cell_of_map j'' in
          for f = 0 to width - 1 do
            Grid.set grid j f la.((cell * width) + f)
          done)
    done;
    (* a zero-cost charge so span-recording backends close the write-back
       interval as compute instead of leaving it unattributed *)
    comms.compute 0.
