module Vec = Tiles_util.Vec
module Fbuf = Tiles_util.Fbuf
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Mapping = Tiles_core.Mapping
module Comm = Tiles_core.Comm
module Plan = Tiles_core.Plan

type comms = {
  send : dst:int -> tag:int -> Fbuf.t -> unit;
  recv : src:int -> tag:int -> Fbuf.t;
  compute : float -> unit;
  pack : float -> unit;
  unpack : float -> unit;
}

type mode = Full | Timing

type slab_mismatch = {
  mm_rank : int;
  mm_stage : [ `Pack | `Unpack ];
  mm_dm : Vec.t;
  mm_ts : int;
  mm_expected : int;
  mm_actual : int;
}

exception Slab_mismatch of slab_mismatch

let slab_mismatch_to_string m =
  Printf.sprintf
    "Protocol: rank %d %s cell count mismatch for direction %s at tile \
     t^S=%d: expected %d cells, walked %d"
    m.mm_rank
    (match m.mm_stage with `Pack -> "pack" | `Unpack -> "unpack")
    (Vec.to_string m.mm_dm) m.mm_ts m.mm_expected m.mm_actual

let () =
  Printexc.register_printer (function
    | Slab_mismatch m -> Some (slab_mismatch_to_string m)
    | _ -> None)

type shared = {
  plan : Plan.t;
  kernel : Kernel.t;
  mode : mode;
  walker : Walker.variant;
  check : bool;
  inner : int array option;  (* subtile shape for every rank's walker *)
  flop_time : float;
  pack_time : float;
  grid : Grid.t option;
  points_per_rank : int array;
  tiles_per_rank : int array;
}

type direction = {
  dm : Vec.t;
  dss : Vec.t list;  (* descending d^S_m, so receives match channel order *)
  slab_lo : int array;
}

let build_directions (plan : Plan.t) =
  let comm = plan.Plan.comm in
  let m = comm.Comm.m in
  List.map
    (fun (dm, dss) ->
      {
        dm;
        dss = List.sort (fun a b -> compare b.(m) a.(m)) dss;
        slab_lo = Comm.slab_lo comm ~dm;
      })
    (comm.Comm.dm : (Vec.t * Vec.t list) list)

(* minsucc: successors of a predecessor tile in one processor direction
   share its pid, so the lexicographically minimum valid successor has
   the smallest valid ts. *)
let minsucc_ts mapping ~pid ~pred_ts dss =
  let m = mapping.Mapping.m in
  let cands =
    List.filter_map
      (fun dS ->
        let ts = pred_ts + dS.(m) in
        if Mapping.valid mapping ~pid ~ts then Some ts else None)
      dss
  in
  match cands with
  | [] -> None
  | first :: rest -> Some (List.fold_left min first rest)

let prepare ?(walker = Walker.Fastpath) ?(check = false) ?inner ~mode ~plan
    ~kernel ~flop_time ~pack_time () =
  let n = Tiling.dim plan.Plan.tiling in
  if kernel.Kernel.dim <> n then invalid_arg "Protocol.prepare: kernel dimension";
  if
    not
      (Tiles_loop.Dependence.to_matrix (Kernel.deps kernel)
      = Tiles_loop.Dependence.to_matrix plan.Plan.nest.Tiles_loop.Nest.deps)
  then invalid_arg "Protocol.prepare: kernel dependencies differ from the plan's";
  let nprocs = Mapping.nprocs plan.Plan.mapping in
  let grid =
    if mode = Full then
      Some
        (Grid.create plan.Plan.nest.Tiles_loop.Nest.space
           ~width:kernel.Kernel.width)
    else None
  in
  {
    plan;
    kernel;
    mode;
    walker;
    check;
    inner;
    flop_time;
    pack_time;
    grid;
    points_per_rank = Array.make nprocs 0;
    tiles_per_rank = Array.make nprocs 0;
  }

let rank_program ?(overlap = false) shared comms rank =
  let plan = shared.plan and kernel = shared.kernel in
  let comm = plan.Plan.comm in
  let mapping = plan.Plan.mapping in
  let tspace = plan.Plan.tspace in
  let n = plan.Plan.tiling.Tiling.n in
  let m = comm.Comm.m in
  let width = kernel.Kernel.width in
  let directions = build_directions plan in
  let pid = Mapping.pid_of_rank mapping rank in
  let tlo, thi = Mapping.chain mapping rank in
  let ntiles = thi - tlo + 1 in
  let walker =
    match shared.mode with
    | Full ->
      Some
        (Walker.make ?inner:shared.inner ~plan ~kernel ~rank ~ntiles
           ~variant:shared.walker ~check:shared.check ())
    | Timing -> None
  in
  let la =
    match walker with
    | Some w -> Fbuf.make (Walker.lds_total w * width) Float.nan
    | None -> Fbuf.create 0
  in
  let zero_lo = Array.make n 0 in
  let tile_buf = Array.make n 0 in
  let rank_of pid =
    match Mapping.rank_of_pid mapping pid with
    | Some r -> r
    | None -> failwith "Protocol: neighbour pid has no rank"
  in
  for ts = tlo to thi do
    let trel = ts - tlo in
    let tile = Mapping.join mapping ~pid ~ts in
    Array.blit tile 0 tile_buf 0 n;
    (* ---------------- RECEIVE ---------------- *)
    (* the channels this tile must receive on (minsucc pairing), in
       deterministic channel order shared by both schedules *)
    let expected =
      List.concat_map
        (fun dir ->
          let pred_pid = Vec.sub pid dir.dm in
          List.filter_map
            (fun dS ->
              let pred_ts = ts - dS.(m) in
              if
                Mapping.valid mapping ~pid:pred_pid ~ts:pred_ts
                && minsucc_ts mapping ~pid ~pred_ts dir.dss = Some ts
              then Some (dir, dS, pred_pid, pred_ts)
              else None)
            dir.dss)
        directions
    in
    let recv_one (_, _, pred_pid, pred_ts) =
      comms.recv ~src:(rank_of pred_pid) ~tag:pred_ts
    in
    let unpack_one (dir, dS, pred_pid, pred_ts) buf =
      (match walker with
      | None -> ()
      | Some w ->
        let pred_tile = Mapping.join mapping ~pid:pred_pid ~ts:pred_ts in
        let count =
          Walker.unpack_slab w ~trel ~pred_tile ~ds:dS ~lo:dir.slab_lo ~la
            ~buf
        in
        if count * width <> Fbuf.length buf then
          raise
            (Slab_mismatch
               {
                 mm_rank = rank;
                 mm_stage = `Unpack;
                 mm_dm = dir.dm;
                 mm_ts = ts;
                 mm_expected = Fbuf.length buf / width;
                 mm_actual = count;
               }));
      comms.unpack (float_of_int (Fbuf.length buf) *. shared.pack_time)
    in
    if overlap then
      (* §5 overlapped schedule: pre-post every receive of this tile and
         drain the channels before scattering any slab, so a backend with
         asynchronous delivery keeps all incoming transfers in flight at
         once instead of serialising wait → unpack per channel *)
      List.iter
        (fun (ch, buf) -> unpack_one ch buf)
        (List.map (fun ch -> (ch, recv_one ch)) expected)
    else
      List.iter (fun ch -> unpack_one ch (recv_one ch)) expected;
    (* ---------------- COMPUTE ---------------- *)
    let points = ref 0 in
    (match walker with
    | None ->
      points := Tile_space.slab_points tspace ~tile:tile_buf ~lo:zero_lo
    | Some w -> points := Walker.compute_tile w ~trel ~tile:tile_buf ~la);
    comms.compute (float_of_int !points *. shared.flop_time);
    shared.points_per_rank.(rank) <- shared.points_per_rank.(rank) + !points;
    shared.tiles_per_rank.(rank) <- shared.tiles_per_rank.(rank) + 1;
    (* ---------------- SEND ---------------- *)
    List.iter
      (fun dir ->
        let succ_exists =
          List.exists
            (fun dS ->
              Mapping.valid mapping ~pid:(Vec.add pid dir.dm) ~ts:(ts + dS.(m)))
            dir.dss
        in
        if succ_exists then begin
          let cells =
            Tile_space.slab_points tspace ~tile:tile_buf ~lo:dir.slab_lo
          in
          let buf = Fbuf.make (cells * width) 0. in
          (match walker with
          | None -> ()
          | Some w ->
            let count =
              Walker.pack_slab w ~trel ~tile:tile_buf ~lo:dir.slab_lo ~la
                ~buf
            in
            if count <> cells then
              raise
                (Slab_mismatch
                   {
                     mm_rank = rank;
                     mm_stage = `Pack;
                     mm_dm = dir.dm;
                     mm_ts = ts;
                     mm_expected = cells;
                     mm_actual = count;
                   }));
          comms.pack (float_of_int (cells * width) *. shared.pack_time);
          comms.send ~dst:(rank_of (Vec.add pid dir.dm)) ~tag:ts buf
        end)
      directions
  done;
  (* ---------------- write-back (LDS -> DS) ---------------- *)
  match (shared.grid, walker) with
  | Some grid, Some w ->
    for ts = tlo to thi do
      let trel = ts - tlo in
      let tile = Mapping.join mapping ~pid ~ts in
      Walker.write_back w ~trel ~tile ~la grid
    done;
    (* a zero-cost charge so span-recording backends close the write-back
       interval as compute instead of leaving it unattributed *)
    comms.compute 0.
  | _ -> ()
