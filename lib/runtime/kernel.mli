(** The semantics of one loop body: what the compiler's input program
    actually computes. [reads] lists the uniform dependence offsets in the
    order the [compute] function indexes them (unlike
    [Tiles_loop.Dependence], which canonicalises order). A kernel may
    carry several scalar fields per iteration point ([width] — ADI updates
    both [X] and [B]). *)

type row_body =
  la:Tiles_util.Fbuf.t -> dst:int -> taps:int array -> len:int -> unit
(** An optional strength-reduced body for width-1 kernels, used by the
    walker's innermost-contiguous fast path. [row ~la ~dst ~taps ~len]
    must write [la.{dst + i} <- f (la.{dst + i + taps.(0)}, ...)] for
    [i = 0 .. len-1], where [taps.(r)] is the (negative) slot delta of
    read [r] relative to the destination cell. The float operations must
    match [compute]'s exactly (same order, same constants) so results are
    bit-identical to the reference walker. All reads are guaranteed
    in-bounds and interior (no boundary lookups) when a row body runs. *)

type t = {
  name : string;
  dim : int;
  width : int;
  uses_j : bool;
      (** whether [compute] reads its [j] argument. Stencils whose body is
          coordinate-free (SOR, Jacobi) set this false, letting [skewed]
          and the walkers skip maintaining/unskewing global coordinates on
          the hot path. *)
  reads : Tiles_util.Vec.t list;
      (** read offsets: read [i] sees the value at [j − reads.(i)] *)
  boundary : Tiles_util.Vec.t -> int -> float;
      (** [boundary j field] — value of points outside the iteration space
          (initial data and spatial boundary conditions) *)
  compute : read:(int -> int -> float) -> j:Tiles_util.Vec.t -> out:float array -> unit;
      (** [compute ~read ~j ~out] evaluates the body at iteration [j];
          [read i f] is field [f] at [j − reads.(i)]; results go into
          [out.(0 .. width-1)]. *)
  row : row_body option;
      (** optional unrolled row body; requires [width = 1]. *)
  ckernel : Tiles_codegen.Ckernel.t option;
      (** the same body and boundary data as C source. Required for the
          [native] walker variant: the row emitter splices it into the
          per-plan compiled kernel. Float constants and operation order
          must match [compute] exactly so native results are bit-identical. *)
  skew : Tiles_linalg.Intmat.t;
      (** cumulative skew applied via {!skewed} (identity when unskewed);
          the native emitter inverts it to recover original coordinates
          for [J(k)] and boundary lookups. *)
}

val deps : t -> Tiles_loop.Dependence.t
(** The canonical dependence set of the kernel. *)

val make :
  name:string ->
  dim:int ->
  ?width:int ->
  ?uses_j:bool ->
  ?row:row_body ->
  ?ckernel:Tiles_codegen.Ckernel.t ->
  reads:Tiles_util.Vec.t list ->
  boundary:(Tiles_util.Vec.t -> int -> float) ->
  compute:(read:(int -> int -> float) -> j:Tiles_util.Vec.t -> out:float array -> unit) ->
  unit ->
  t
(** [ckernel], when given, must agree with the kernel on [width] and the
    number of reads. *)

val skewed : t -> Tiles_linalg.Intmat.t -> t
(** [skewed k t] — the same computation over the skewed space [T·J^n]:
    read offsets become [T·d], and boundary lookups un-skew their argument
    before consulting the original boundary function. [uses_j], [row] and
    [ckernel] are preserved ([skew] accumulates [t]); when [uses_j] is
    false the compute wrapper that un-skews [j] per point is skipped
    entirely. *)
