module Vec = Tiles_util.Vec
module Fbuf = Tiles_util.Fbuf
module Ints = Tiles_util.Ints
module Intmat = Tiles_linalg.Intmat
module Lattice = Tiles_linalg.Lattice
module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module FM = Tiles_poly.Fourier_motzkin
module Rat = Tiles_rat.Rat
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Comm = Tiles_core.Comm
module Lds = Tiles_core.Lds
module Plan = Tiles_core.Plan
module A1 = Bigarray.Array1

type variant = Reference | Strength_reduced | Fastpath | Native

let variant_to_string = function
  | Reference -> "reference"
  | Strength_reduced -> "strength"
  | Fastpath -> "fast"
  | Native -> "native"

let variant_of_string = function
  | "reference" -> Some Reference
  | "strength" -> Some Strength_reduced
  | "fast" -> Some Fastpath
  | "native" -> Some Native
  | _ -> None

let all_variants = [ Reference; Strength_reduced; Fastpath; Native ]

let compiled_member space =
  let cs =
    Array.of_list
      (List.map
         (fun c -> (Array.init (Constr.dim c) (Constr.coeff c), Constr.const c))
         (Polyhedron.constraints space))
  in
  fun (j : int array) ->
    let ok = ref true in
    Array.iter
      (fun (coeffs, const) ->
        if !ok then begin
          let acc = ref const in
          for k = 0 to Array.length coeffs - 1 do
            acc := !acc + (coeffs.(k) * j.(k))
          done;
          if !acc < 0 then ok := false
        end)
      cs;
    !ok

(* one FM chain level, flattened: constraint i bounds the level's
   variable with coefficient ca.(i), constant cc.(i) and prefix
   coefficients cp.(i*var .. i*var+var-1) *)
type clevel = { ca : int array; cc : int array; cp : int array }

let compile_level cs ~var =
  let cs = Array.of_list cs in
  let nc = Array.length cs in
  let ca = Array.make nc 0 in
  let cc = Array.make nc 0 in
  let cp = Array.make (max 1 (nc * var)) 0 in
  Array.iteri
    (fun i c ->
      ca.(i) <- Constr.coeff c var;
      cc.(i) <- Constr.const c;
      for j = 0 to var - 1 do
        cp.((i * var) + j) <- Constr.coeff c j
      done)
    cs;
  { ca; cc; cp }

(* A compiled walk plan: the slab projection chain plus the subtile
   schedule. The projection is the pulled-back space constraints over
   the symbolic prefix [vs | j'] intersected with the tile box
   [0, v-1], eliminated level by level. The tile corner enters through
   the prefix at bounds time and the slab/subtile clips are
   axis-aligned, so they clamp each level's range at evaluation time —
   one projection serves every tile AND every slab AND every subtile.
   [origins] is the lex-ordered sequence of subtile boxes (lo, hi)
   covering the local box: a single full-box entry when no inner shape
   was requested, one entry per cache-resident subtile otherwise. *)
type cplan = { chain : clevel array; origins : (int array * int array) array }

(* Subtile corners in lexicographic order, upper corners clamped to the
   tile box. Innermost index varies fastest, so the schedule visits
   subtiles in the same lex order the rows inside them use. *)
let subtile_origins ~n ~v ~inner =
  match inner with
  | None -> [| (Array.make n 0, Array.map (fun vk -> vk - 1) v) |]
  | Some b ->
    let counts = Array.init n (fun k -> (v.(k) + b.(k) - 1) / b.(k)) in
    let total = Array.fold_left ( * ) 1 counts in
    Array.init total (fun idx ->
        let lo = Array.make n 0 and hi = Array.make n 0 in
        let r = ref idx in
        for k = n - 1 downto 0 do
          let ok = !r mod counts.(k) in
          r := !r / counts.(k);
          lo.(k) <- ok * b.(k);
          hi.(k) <- min (((ok + 1) * b.(k)) - 1) (v.(k) - 1)
        done;
        (lo, hi))

(* The compiled plan depends on (pull_w, pull_bden, v) — which every
   rank of a plan shares — AND on the inner subtile shape: two walkers
   blocked differently walk different schedules and must never share a
   memo entry ([] encodes "no inner"). Memoised process-wide (guarded:
   shm ranks build walkers from their own domains). *)
let plan_memo :
    (int array array * int array * int array * int array, cplan) Hashtbl.t =
  Hashtbl.create 8

let plan_memo_mu = Mutex.create ()

let memo_entries () =
  Mutex.lock plan_memo_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock plan_memo_mu)
    (fun () -> Hashtbl.length plan_memo)

let shared_plan ~n ~pull_w ~pull_bden ~v ~inner =
  let inner_key = match inner with None -> [||] | Some b -> b in
  let key = (pull_w, pull_bden, v, inner_key) in
  Mutex.lock plan_memo_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock plan_memo_mu)
    (fun () ->
      match Hashtbl.find_opt plan_memo key with
      | Some p -> p
      | None ->
        let nn = 2 * n in
        let pulled =
          Array.to_list
            (Array.mapi
               (fun i w ->
                 Constr.make ~coeffs:(Array.append w w) ~const:pull_bden.(i))
               pull_w)
        in
        let box =
          List.concat
            (List.init n (fun k ->
                 [
                   Constr.lower_bound_var nn (n + k) 0;
                   Constr.upper_bound_var nn (n + k) (v.(k) - 1);
                 ]))
        in
        let p = FM.project (pulled @ box) ~dim:nn in
        let chain =
          Array.init n (fun k ->
              compile_level (FM.system p ~var:(n + k)) ~var:(n + k))
        in
        let compiled = { chain; origins = subtile_origins ~n ~v ~inner } in
        Hashtbl.add plan_memo key compiled;
        compiled)

type t = {
  variant : variant;
  check : bool;
  rank : int;
  kernel : Kernel.t;
  tiling : Tiling.t;
  comm : Comm.t;
  tspace : Tile_space.t;
  n : int;
  width : int;
  shape : Lds.shape;
  lstr : int array;  (* LDS strides, cells *)
  vpt : int array;  (* v_k / c_k *)
  tshift : int;  (* LDS cell delta per unit of trel *)
  den : int;
  q : int array array;  (* P' = Q/den *)
  jstep : int array;  (* global delta per innermost lattice step *)
  member : int array -> bool;
  reads : Vec.t array;
  reads' : Vec.t array;  (* H'·reads *)
  (* per-tap LDS cell delta tables: the delta for tap i decomposes as
     sum_k fdiv(r_k - d'_k, c_k)·lstr_k with r_k = j'_k mod c_k, so one
     lookup per dimension replaces two floored divisions. dtab.(i) is
     flat over (k, r) with per-dimension offsets [coff]. *)
  dtab : int array array;
  coff : int array;
  (* pullback of each space constraint onto TTIS coordinates: coeff rows
     are tile-independent, only the constant varies per tile *)
  pull_w : int array array;
  pull_bden : int array;
  (* per-constraint interiority data (see [tile_interior] and
     [row_interior_span]): the largest tap shift den·(a_i·d_r) over all
     read offsets d_r, the minimum of pull_w_i·j' over the local box
     [0, v-1], and the change of pull_w_i·j' per innermost lattice step *)
  maxshift : int array;
  boxmin : int array;
  cslope : int array;
  (* the compiled row entry when [variant = Native] built successfully;
     [fallback] records why it didn't (the walker then runs [Fastpath]) *)
  native : Native_kernel.fn option;
  fallback : string option;
  (* the shared slab projection (see [shared_plan]), compiled to flat
     coefficient arrays — [FM.bounds] walks a boxed constraint list
     with per-coefficient calls, far too slow for a per-row operation *)
  proj : clevel array;
  (* the inner subtile shape (clamped to the tile box) and the derived
     lex-ordered subtile schedule; a single full-box entry when
     unblocked, so the compute loop has one shape either way *)
  inner : int array option;
  origins : (int array * int array) array;
  box_lo : int array;  (* all zeros: the unclipped slab corner *)
  box_hi : int array;  (* v - 1: the unclipped upper clamp *)
  (* scratch (one walker per rank; never shared across domains) *)
  vs : int array;  (* V·tile *)
  jpre : int array;  (* FM prefix: [vs | j'] (2n entries) *)
  jp : int array;  (* TTIS row cursor *)
  jrow : int array;  (* global row start *)
  jcur : int array;  (* global point cursor *)
  src : int array;  (* tap source point *)
  rres : int array;  (* per-dim residue table index for the current row *)
  act : int array;  (* indices of the tile's active constraints *)
  doffs : int array;  (* per-tap LDS cell deltas for the current row *)
  out : float array;
}

let make ?inner ~plan ~kernel ~rank ~ntiles ~variant ~check () =
  let tiling = plan.Plan.tiling in
  let comm = plan.Plan.comm in
  let tspace = plan.Plan.tspace in
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let n = tiling.Tiling.n in
  let m = comm.Comm.m in
  let width = kernel.Kernel.width in
  let shape = Lds.shape tiling comm ~ntiles in
  let lstr = shape.Lds.strides in
  let vpt = Array.init n (fun k -> tiling.Tiling.v.(k) / tiling.Tiling.c.(k)) in
  let den =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc x -> Ints.lcm acc (Rat.den x)) acc row)
      1 tiling.Tiling.p'
  in
  let q =
    Array.map
      (Array.map (fun x -> Rat.num x * (den / Rat.den x)))
      tiling.Tiling.p'
  in
  (* c_{n-1}·e_{n-1} is the last column of the HNF basis, hence a lattice
     vector; its image under P' = Q/den is therefore integral. *)
  let jstep =
    Array.init n (fun i ->
        let num = tiling.Tiling.c.(n - 1) * q.(i).(n - 1) in
        if num mod den <> 0 then
          invalid_arg "Walker.make: non-integral innermost global step";
        num / den)
  in
  let reads = Array.of_list kernel.Kernel.reads in
  let reads' = Array.map (Intmat.apply tiling.Tiling.h') reads in
  (* Inner subtile shape: clamp to the tile box so [b] and [min b v]
     key the same plan. Legality is structural — H' = diag(v)·H, so a
     legal tiling (H·d >= 0) gives componentwise-nonnegative TTIS
     dependences and any rectangular subtile schedule in lex order is a
     topological order — but we verify the consequence directly per
     kernel rather than trust the caller's plan. *)
  let inner =
    match inner with
    | None -> None
    | Some b ->
      if Array.length b <> n then
        invalid_arg "Walker.make: inner shape dimension mismatch";
      Array.iter
        (fun bk -> if bk < 1 then invalid_arg "Walker.make: inner size < 1")
        b;
      let b = Array.mapi (fun k bk -> min bk tiling.Tiling.v.(k)) b in
      if
        Array.exists2 (fun bk vk -> bk < vk) b tiling.Tiling.v
        && Array.exists (Array.exists (fun x -> x < 0)) reads'
      then
        invalid_arg
          "Walker.make: inner blocking needs componentwise-nonnegative \
           TTIS read offsets (illegal tiling for this kernel)";
      Some b
  in
  let coff = Array.make n 0 in
  for k = 1 to n - 1 do
    coff.(k) <- coff.(k - 1) + tiling.Tiling.c.(k - 1)
  done;
  let csum = coff.(n - 1) + tiling.Tiling.c.(n - 1) in
  let dtab =
    Array.map
      (fun d' ->
        let tab = Array.make csum 0 in
        for k = 0 to n - 1 do
          for r = 0 to tiling.Tiling.c.(k) - 1 do
            tab.(coff.(k) + r) <-
              Ints.fdiv (r - d'.(k)) tiling.Tiling.c.(k) * lstr.(k)
          done
        done;
        tab)
      reads'
  in
  let cs = Polyhedron.constraints space in
  let amat =
    Array.of_list (List.map (fun c -> Array.init n (Constr.coeff c)) cs)
  in
  let pull_w =
    Array.map
      (fun a ->
        Array.init n (fun k ->
            let acc = ref 0 in
            for i = 0 to n - 1 do
              acc := !acc + (a.(i) * q.(i).(k))
            done;
            !acc))
      amat
  in
  let pull_bden =
    Array.of_list (List.map (fun c -> Constr.const c * den) cs)
  in
  (* constraint i holds at tap r of the point with local coordinate j'
     iff pull_w_i·(vs + j') + pull_bden_i - den·(a_i·d_r) >= 0; only the
     largest shift den·(a_i·d_r) ever binds, so one number per
     constraint covers every tap *)
  let maxshift =
    Array.map
      (fun a ->
        List.fold_left
          (fun acc d ->
            let dot = ref 0 in
            for k = 0 to n - 1 do
              dot := !dot + (a.(k) * d.(k))
            done;
            max acc (den * !dot))
          min_int kernel.Kernel.reads)
      amat
  in
  let boxmin =
    Array.map
      (fun w ->
        let acc = ref 0 in
        for k = 0 to n - 1 do
          acc := !acc + min 0 (w.(k) * (tiling.Tiling.v.(k) - 1))
        done;
        !acc)
      pull_w
  in
  let cslope =
    Array.map (fun w -> w.(n - 1) * tiling.Tiling.c.(n - 1)) pull_w
  in
  let native, fallback =
    match variant with
    | Native when check ->
      (None, Some "check mode validates LDS reads in OCaml")
    | Native -> (
      match Native_kernel.build ?inner ~plan ~kernel () with
      | Ok fn -> (Some fn, None)
      | Error reason -> (None, Some reason))
    | Reference | Strength_reduced | Fastpath -> (None, None)
  in
  let cplan =
    shared_plan ~n ~pull_w ~pull_bden ~v:tiling.Tiling.v ~inner
  in
  {
    variant;
    check;
    rank;
    kernel;
    tiling;
    comm;
    tspace;
    n;
    width;
    shape;
    lstr;
    vpt;
    tshift = vpt.(m) * lstr.(m);
    den;
    q;
    jstep;
    member = compiled_member space;
    reads;
    reads';
    dtab;
    coff;
    pull_w;
    pull_bden;
    maxshift;
    boxmin;
    cslope;
    native;
    fallback;
    proj = cplan.chain;
    inner;
    origins = cplan.origins;
    box_lo = Array.make n 0;
    box_hi = Array.map (fun vk -> vk - 1) tiling.Tiling.v;
    vs = Array.make n 0;
    jpre = Array.make (2 * n) 0;
    jp = Array.make n 0;
    jrow = Array.make n 0;
    jcur = Array.make n 0;
    src = Array.make n 0;
    rres = Array.make n 0;
    act = Array.make (Array.length pull_w) 0;
    doffs = Array.make (Array.length reads) 0;
    out = Array.make width 0.;
  }

let variant t = t.variant
let lds_total t = t.shape.Lds.total
let fallback_reason t = t.fallback
let inner t = t.inner

(* fast variants whose pack/unpack/write-back may use contiguous blits *)
let blits t = match t.variant with Fastpath | Native -> true | _ -> false

(* LDS cell index of TTIS point [j'] at trel = 0 (Table 1 with the
   tile-relative shift split off: adding [trel * t.tshift] gives the
   cell at chain position trel). *)
let cell0 t (j' : int array) =
  let comm = t.comm and c = t.tiling.Tiling.c in
  let acc = ref 0 in
  for k = 0 to t.n - 1 do
    (* j' >= 0 inside the local box, so truncating division is floored *)
    acc := !acc + (((j'.(k) / c.(k)) + comm.Comm.off.(k)) * t.lstr.(k))
  done;
  !acc

(* Per-tap LDS cell delta for the row containing [j']: constant along the
   row because the innermost coordinate moves in multiples of c_{n-1}.
   Looked up from the residue tables ([j'] is always >= 0 inside the
   local box, so plain [mod] is the residue). *)
let set_row_doffs t (j' : int array) =
  let c = t.tiling.Tiling.c in
  for k = 0 to t.n - 1 do
    t.rres.(k) <- t.coff.(k) + (j'.(k) mod c.(k))
  done;
  for i = 0 to Array.length t.dtab - 1 do
    let tab = t.dtab.(i) in
    let acc = ref 0 in
    for k = 0 to t.n - 1 do
      acc := !acc + Array.unsafe_get tab (Array.unsafe_get t.rres k)
    done;
    t.doffs.(i) <- !acc
  done

(* Global point of TTIS row start: j = Q·(V·tile + j') / den. *)
let set_global t (j' : int array) (dst : int array) =
  let den = t.den in
  for i = 0 to t.n - 1 do
    let acc = ref 0 in
    for k = 0 to t.n - 1 do
      acc := !acc + (t.q.(i).(k) * (t.vs.(k) + j'.(k)))
    done;
    dst.(i) <- (if den = 1 then !acc else !acc / den)
  done

(* [FM.bounds] specialised to a compiled level: flat arrays, unsafe
   reads, results through [blo]/[bhi] instead of an allocated option.
   The box constraints added by [shared_projection] guarantee both
   bounds exist, so the min_int/max_int sentinels can never survive a
   non-empty range. *)
let clevel_bounds (lv : clevel) (pre : int array) ~var ~blo ~bhi =
  let nc = Array.length lv.ca in
  let lo = ref min_int and hi = ref max_int in
  let ok = ref true in
  for i = 0 to nc - 1 do
    let rest = ref (Array.unsafe_get lv.cc i) in
    let off = i * var in
    for j = 0 to var - 1 do
      rest :=
        !rest
        + (Array.unsafe_get lv.cp (off + j) * Array.unsafe_get pre j)
    done;
    let a = Array.unsafe_get lv.ca i in
    if a > 0 then begin
      let v = Ints.cdiv (- !rest) a in
      if v > !lo then lo := v
    end
    else if a < 0 then begin
      let v = Ints.fdiv !rest (-a) in
      if v < !hi then hi := v
    end
    else if !rest < 0 then ok := false
  done;
  if !ok && !lo <= !hi then begin
    blo := !lo;
    bhi := !hi;
    true
  end
  else false

(* Row-wise enumeration of the box clip [lo <= j' <= hi] of [tile], in
   lexicographic TTIS order. Mirrors Tile_space.count_clipped: the
   Fourier–Motzkin chain's innermost level is the original system, so
   every residue-aligned point of [start, bhi] is a slab member — rows
   need no per-point membership test. Slab callers pass [hi = box_hi]
   (a no-op clamp: the chain already carries the tile box); the subtile
   schedule passes each subtile's corners. *)
let iter_rows t ~tile ~lo ~hi f =
  let n = t.n in
  let tiling = t.tiling in
  let c = tiling.Tiling.c in
  for k = 0 to n - 1 do
    t.vs.(k) <- tiling.Tiling.v.(k) * tile.(k);
    t.jpre.(k) <- t.vs.(k)
  done;
  let proj = t.proj in
  let j' = t.jp in
  let pre = t.jpre in
  let blo = ref 0 and bhi = ref 0 in
  let rec go k =
    if clevel_bounds proj.(k) pre ~var:(n + k) ~blo ~bhi then begin
      (* the chain was projected against the full tile box; the slab
         and subtile clips are axis-aligned, so they clamp the level's
         range here (a level emptied by the clamps is skipped by
         [start <= bhi]) *)
      if !bhi > hi.(k) then bhi := hi.(k);
      let bhi = !bhi in
      if !blo < lo.(k) then blo := lo.(k);
      let start =
        (* c_k = 1 admits every integer: skip the residue computation
           (it allocates and divides) on unit-step levels *)
        if c.(k) = 1 then !blo
        else begin
          let residue = Lattice.first_in_residue tiling.Tiling.lattice k j' in
          residue + (c.(k) * Ints.cdiv (!blo - residue) c.(k))
        end
      in
      if start <= bhi then
        if k = n - 1 then begin
          j'.(k) <- start;
          f ~j' ~len:(((bhi - start) / c.(k)) + 1)
        end
        else begin
          let x = ref start in
          while !x <= bhi do
            j'.(k) <- !x;
            pre.(n + k) <- !x;
            go (k + 1);
            x := !x + c.(k)
          done
        end
    end
  in
  go 0

(* ---------------- reference paths (the original per-point code) ------- *)

let reference_compute t ~trel ~tile ~(la : Fbuf.t) =
  let n = t.n and width = t.width in
  let tiling = t.tiling and comm = t.comm in
  let points = ref 0 in
  Tile_space.iter_tile_points t.tspace ~tile (fun ~local:j' ~global:j ->
      incr points;
      let read i field =
        let d = t.reads.(i) in
        for k = 0 to n - 1 do
          t.src.(k) <- j.(k) - d.(k)
        done;
        if t.member t.src then begin
          let d' = t.reads'.(i) in
          for k = 0 to n - 1 do
            t.jcur.(k) <- j'.(k) - d'.(k)
          done;
          let j'' = Lds.map tiling comm ~t:trel t.jcur in
          let v = la.{(Lds.map_index t.shape j'' * width) + field} in
          if Float.is_nan v then
            failwith
              (Printf.sprintf
                 "Protocol: rank %d read uninitialised LDS cell for \
                  iteration %s read %d"
                 t.rank (Vec.to_string j) i);
          v
        end
        else t.kernel.Kernel.boundary t.src field
      in
      t.kernel.Kernel.compute ~read ~j ~out:t.out;
      let j'' = Lds.map tiling comm ~t:trel j' in
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        la.{(cell * width) + f} <- t.out.(f)
      done);
  !points

let reference_pack t ~trel ~tile ~lo ~(la : Fbuf.t) ~(buf : Fbuf.t) =
  let width = t.width in
  let count = ref 0 in
  Tile_space.iter_slab_points t.tspace ~tile ~lo (fun ~local:j' ~global:_ ->
      let j'' = Lds.map t.tiling t.comm ~t:trel j' in
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        buf.{(!count * width) + f} <- la.{(cell * width) + f}
      done;
      incr count);
  !count

let reference_unpack t ~trel ~pred_tile ~ds ~lo ~(la : Fbuf.t) ~(buf : Fbuf.t) =
  let n = t.n and width = t.width in
  let count = ref 0 in
  Tile_space.iter_slab_points t.tspace ~tile:pred_tile ~lo
    (fun ~local:jp' ~global:_ ->
      let j'' = Lds.map t.tiling t.comm ~t:trel jp' in
      for k = 0 to n - 1 do
        j''.(k) <- j''.(k) - (ds.(k) * t.vpt.(k))
      done;
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        la.{(cell * width) + f} <- buf.{(!count * width) + f}
      done;
      incr count);
  !count

let reference_write_back t ~trel ~tile ~(la : Fbuf.t) grid =
  let width = t.width in
  Tile_space.iter_tile_points t.tspace ~tile (fun ~local:j' ~global:j ->
      let j'' = Lds.map t.tiling t.comm ~t:trel j' in
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        Grid.set grid j f la.{(cell * width) + f}
      done)

(* ---------------- strength-reduced paths ------------------------------ *)

(* Which pulled constraints can go negative at some tap somewhere in
   [tile]'s bounding box? Exact integer minimisation over the local box
   [0, v-1]: the returned count is 0 exactly when every tap of every
   box point stays inside the space (the tile is interior), and
   [row_interior_span] only needs to test the survivors — usually the
   one or two faces a boundary tile actually touches. Requires [t.vs]
   to be set for the tile. *)
let tile_active t =
  let nc = Array.length t.pull_w in
  let na = ref 0 in
  for i = 0 to nc - 1 do
    let w = t.pull_w.(i) in
    let acc = ref (t.pull_bden.(i) + t.boxmin.(i) - t.maxshift.(i)) in
    for k = 0 to t.n - 1 do
      acc := !acc + (w.(k) * t.vs.(k))
    done;
    if !acc < 0 then begin
      t.act.(!na) <- i;
      incr na
    end
  done;
  !na

(* Interior sub-segment [s0, s1] (inclusive step indices, empty when
   s0 > s1) of the [len]-point row starting at TTIS point [j']: the s
   for which every tap of the s-th row point stays inside the space.
   Each pulled constraint is linear in s with slope [cslope], so the
   range falls out of one integer division per active constraint — no
   per-point membership tests, and the interior majority of a boundary
   row can still take the unrolled row body. *)
let row_interior_span t (j' : int array) len ~na =
  let n = t.n in
  let s0 = ref 0 and s1 = ref (len - 1) in
  let i = ref 0 in
  while !s0 <= !s1 && !i < na do
    let ci = t.act.(!i) in
    let w = t.pull_w.(ci) in
    let base = ref (t.pull_bden.(ci) - t.maxshift.(ci)) in
    for k = 0 to n - 1 do
      base := !base + (w.(k) * (t.vs.(k) + j'.(k)))
    done;
    let slope = t.cslope.(ci) in
    if slope > 0 then s0 := max !s0 (Ints.cdiv (- !base) slope)
    else if slope < 0 then s1 := min !s1 (Ints.fdiv !base (- slope))
    else if !base < 0 then s0 := len;
    incr i
  done;
  (!s0, !s1)

let nan_error t j i =
  failwith
    (Printf.sprintf
       "Protocol: rank %d read uninitialised LDS cell for iteration %s \
        read %d"
       t.rank (Vec.to_string j) i)

let fast_compute t ~trel ~tile ~(la : Fbuf.t) =
  let n = t.n and width = t.width in
  let kernel = t.kernel in
  let uses_j = kernel.Kernel.uses_j in
  let points = ref 0 in
  for k = 0 to n - 1 do
    t.vs.(k) <- t.tiling.Tiling.v.(k) * tile.(k)
  done;
  let na = tile_active t in
  let tile_int = na = 0 in
  let rowfn =
    if blits t && not t.check then kernel.Kernel.row else None
  in
  (* guarded segment [a, b] of the row at LDS cell [base]: per-tap
     membership, boundary values outside the space. Defined outside the
     row callback so the closures are allocated once per tile. *)
  let boundary_seg base a b =
    if a <= b then begin
      let cur = ref (base + a) in
      for k = 0 to n - 1 do
        t.jcur.(k) <- t.jrow.(k) + (a * t.jstep.(k))
      done;
      let read i field =
        let d = t.reads.(i) in
        for k = 0 to n - 1 do
          t.src.(k) <- t.jcur.(k) - d.(k)
        done;
        if t.member t.src then begin
          let v = la.{((!cur + t.doffs.(i)) * width) + field} in
          if t.check && Float.is_nan v then nan_error t t.jcur i;
          v
        end
        else kernel.Kernel.boundary t.src field
      in
      for _s = a to b do
        kernel.Kernel.compute ~read ~j:t.jcur ~out:t.out;
        let slot = !cur * width in
        for f = 0 to width - 1 do
          la.{slot + f} <- t.out.(f)
        done;
        incr cur;
        for k = 0 to n - 1 do
          t.jcur.(k) <- t.jcur.(k) + t.jstep.(k)
        done
      done
    end
  in
  (* interior segment [a, b]: unguarded reads off precomputed cell
     deltas, through the unrolled row body when available *)
  let interior_seg base a b =
    if a <= b then
      match rowfn with
      | Some rb ->
        (* width = 1 (enforced by Kernel.make), so slots = cells *)
        rb ~la ~dst:(base + a) ~taps:t.doffs ~len:(b - a + 1)
      | None -> begin
        let cur = ref (base + a) in
        for k = 0 to n - 1 do
          t.jcur.(k) <- t.jrow.(k) + (a * t.jstep.(k))
        done;
        let read i field =
          let v = A1.unsafe_get la ((!cur + t.doffs.(i)) * width + field) in
          if t.check && Float.is_nan v then nan_error t t.jcur i;
          v
        in
        for _s = a to b do
          kernel.Kernel.compute ~read ~j:t.jcur ~out:t.out;
          let slot = !cur * width in
          for f = 0 to width - 1 do
            A1.unsafe_set la (slot + f) (Array.unsafe_get t.out f)
          done;
          incr cur;
          if uses_j || t.check then
            for k = 0 to n - 1 do
              t.jcur.(k) <- t.jcur.(k) + t.jstep.(k)
            done
        done
      end
  in
  let row ~j' ~len =
    points := !points + len;
    let base = cell0 t j' + (trel * t.tshift) in
    set_global t j' t.jrow;
    set_row_doffs t j';
    let s0, s1 =
      if tile_int then (0, len - 1) else row_interior_span t j' len ~na
    in
    match t.native with
    | Some fn ->
      (* native rows cover interior and boundary alike: the compiled
         body guards taps itself on boundary rows *)
      Native_kernel.row fn ~la ~cur:base ~taps:t.doffs ~jrow:t.jrow ~len
        ~interior:(s0 = 0 && s1 = len - 1)
    | None ->
      if s0 > s1 then boundary_seg base 0 (len - 1)
      else begin
        boundary_seg base 0 (s0 - 1);
        interior_seg base s0 s1;
        boundary_seg base (s1 + 1) (len - 1)
      end
  in
  (* Walk the subtile schedule (a single full-box entry when
     unblocked): rectangular subtiles in lex order, rows in lex order
     within each — a topological order of the TTIS dependences, so the
     per-point work is identical to the unblocked walk and results are
     bit-for-bit equal. Pack/unpack/write-back stay on the plain slab
     order, so message contents never see the blocking. *)
  Array.iter (fun (slo, shi) -> iter_rows t ~tile ~lo:slo ~hi:shi row)
    t.origins;
  !points

let fast_pack t ~trel ~tile ~lo ~(la : Fbuf.t) ~(buf : Fbuf.t) =
  let width = t.width in
  let count = ref 0 in
  iter_rows t ~tile ~lo ~hi:t.box_hi (fun ~j' ~len ->
      let cell = cell0 t j' + (trel * t.tshift) in
      if blits t then
        Fbuf.blit ~src:la ~src_pos:(cell * width) ~dst:buf
          ~dst_pos:(!count * width) ~len:(len * width)
      else begin
        let src = ref (cell * width) and dst = ref (!count * width) in
        for _s = 0 to (len * width) - 1 do
          buf.{!dst} <- la.{!src};
          incr src;
          incr dst
        done
      end;
      count := !count + len);
  !count

let fast_unpack t ~trel ~pred_tile ~ds ~lo ~(la : Fbuf.t) ~(buf : Fbuf.t) =
  let width = t.width in
  (* the received slab lands shifted by -d^S tiles: a constant cell
     delta, precomputed once per slab *)
  let dshift = ref 0 in
  for k = 0 to t.n - 1 do
    dshift := !dshift + (ds.(k) * t.vpt.(k) * t.lstr.(k))
  done;
  let shift = (trel * t.tshift) - !dshift in
  let count = ref 0 in
  iter_rows t ~tile:pred_tile ~lo ~hi:t.box_hi (fun ~j' ~len ->
      let cell = cell0 t j' + shift in
      if blits t then
        Fbuf.blit ~src:buf ~src_pos:(!count * width) ~dst:la
          ~dst_pos:(cell * width) ~len:(len * width)
      else begin
        let src = ref (!count * width) and dst = ref (cell * width) in
        for _s = 0 to (len * width) - 1 do
          la.{!dst} <- buf.{!src};
          incr src;
          incr dst
        done
      end;
      count := !count + len);
  !count

let fast_write_back t ~trel ~tile ~(la : Fbuf.t) grid =
  let n = t.n and width = t.width in
  let gstr = Grid.strides grid in
  let gdata = Grid.data grid in
  let gstep = ref 0 in
  for k = 0 to n - 1 do
    gstep := !gstep + (gstr.(k) * t.jstep.(k))
  done;
  let gstep = !gstep in
  iter_rows t ~tile ~lo:t.box_lo ~hi:t.box_hi (fun ~j' ~len ->
      let cell = cell0 t j' + (trel * t.tshift) in
      set_global t j' t.jrow;
      let g = ref (Grid.index grid t.jrow 0) in
      if blits t && gstep = width then
        Fbuf.blit ~src:la ~src_pos:(cell * width) ~dst:gdata ~dst_pos:!g
          ~len:(len * width)
      else begin
        let src = ref (cell * width) in
        for _s = 0 to len - 1 do
          for f = 0 to width - 1 do
            gdata.{!g + f} <- la.{!src + f}
          done;
          src := !src + width;
          g := !g + gstep
        done
      end)

(* ---------------- dispatch ------------------------------------------- *)

let compute_tile t ~trel ~tile ~la =
  match t.variant with
  | Reference -> reference_compute t ~trel ~tile ~la
  | Strength_reduced | Fastpath | Native -> fast_compute t ~trel ~tile ~la

let pack_slab t ~trel ~tile ~lo ~la ~buf =
  match t.variant with
  | Reference -> reference_pack t ~trel ~tile ~lo ~la ~buf
  | Strength_reduced | Fastpath | Native -> fast_pack t ~trel ~tile ~lo ~la ~buf

let unpack_slab t ~trel ~pred_tile ~ds ~lo ~la ~buf =
  match t.variant with
  | Reference -> reference_unpack t ~trel ~pred_tile ~ds ~lo ~la ~buf
  | Strength_reduced | Fastpath | Native ->
    fast_unpack t ~trel ~pred_tile ~ds ~lo ~la ~buf

let write_back t ~trel ~tile ~la grid =
  match t.variant with
  | Reference -> reference_write_back t ~trel ~tile ~la grid
  | Strength_reduced | Fastpath | Native -> fast_write_back t ~trel ~tile ~la grid
