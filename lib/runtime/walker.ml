module Vec = Tiles_util.Vec
module Ints = Tiles_util.Ints
module Intmat = Tiles_linalg.Intmat
module Lattice = Tiles_linalg.Lattice
module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module FM = Tiles_poly.Fourier_motzkin
module Rat = Tiles_rat.Rat
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Comm = Tiles_core.Comm
module Lds = Tiles_core.Lds
module Plan = Tiles_core.Plan

type variant = Reference | Strength_reduced | Fastpath

let variant_to_string = function
  | Reference -> "reference"
  | Strength_reduced -> "strength"
  | Fastpath -> "fast"

let variant_of_string = function
  | "reference" -> Some Reference
  | "strength" -> Some Strength_reduced
  | "fast" -> Some Fastpath
  | _ -> None

let all_variants = [ Reference; Strength_reduced; Fastpath ]

let compiled_member space =
  let cs =
    Array.of_list
      (List.map
         (fun c -> (Array.init (Constr.dim c) (Constr.coeff c), Constr.const c))
         (Polyhedron.constraints space))
  in
  fun (j : int array) ->
    let ok = ref true in
    Array.iter
      (fun (coeffs, const) ->
        if !ok then begin
          let acc = ref const in
          for k = 0 to Array.length coeffs - 1 do
            acc := !acc + (coeffs.(k) * j.(k))
          done;
          if !acc < 0 then ok := false
        end)
      cs;
    !ok

type t = {
  variant : variant;
  check : bool;
  rank : int;
  kernel : Kernel.t;
  tiling : Tiling.t;
  comm : Comm.t;
  tspace : Tile_space.t;
  n : int;
  width : int;
  shape : Lds.shape;
  lstr : int array;  (* LDS strides, cells *)
  vpt : int array;  (* v_k / c_k *)
  tshift : int;  (* LDS cell delta per unit of trel *)
  den : int;
  q : int array array;  (* P' = Q/den *)
  jstep : int array;  (* global delta per innermost lattice step *)
  member : int array -> bool;
  reads : Vec.t array;
  reads' : Vec.t array;  (* H'·reads *)
  (* pullback of each space constraint onto TTIS coordinates: coeff rows
     are tile-independent, only the constant varies per tile *)
  pull_w : int array array;
  pull_bden : int array;
  (* scratch (one walker per rank; never shared across domains) *)
  vs : int array;  (* V·tile *)
  jp : int array;  (* TTIS row cursor *)
  jrow : int array;  (* global row start *)
  jend : int array;  (* global row end *)
  jcur : int array;  (* global point cursor *)
  src : int array;  (* tap source point *)
  doffs : int array;  (* per-tap LDS cell deltas for the current row *)
  out : float array;
}

let make ~plan ~kernel ~rank ~ntiles ~variant ~check =
  let tiling = plan.Plan.tiling in
  let comm = plan.Plan.comm in
  let tspace = plan.Plan.tspace in
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let n = tiling.Tiling.n in
  let m = comm.Comm.m in
  let width = kernel.Kernel.width in
  let shape = Lds.shape tiling comm ~ntiles in
  let lstr = shape.Lds.strides in
  let vpt = Array.init n (fun k -> tiling.Tiling.v.(k) / tiling.Tiling.c.(k)) in
  let den =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc x -> Ints.lcm acc (Rat.den x)) acc row)
      1 tiling.Tiling.p'
  in
  let q =
    Array.map
      (Array.map (fun x -> Rat.num x * (den / Rat.den x)))
      tiling.Tiling.p'
  in
  (* c_{n-1}·e_{n-1} is the last column of the HNF basis, hence a lattice
     vector; its image under P' = Q/den is therefore integral. *)
  let jstep =
    Array.init n (fun i ->
        let num = tiling.Tiling.c.(n - 1) * q.(i).(n - 1) in
        if num mod den <> 0 then
          invalid_arg "Walker.make: non-integral innermost global step";
        num / den)
  in
  let reads = Array.of_list kernel.Kernel.reads in
  let reads' = Array.map (Intmat.apply tiling.Tiling.h') reads in
  let cs = Polyhedron.constraints space in
  let pull_w =
    Array.of_list
      (List.map
         (fun c ->
           let a = Array.init n (Constr.coeff c) in
           Array.init n (fun k ->
               let acc = ref 0 in
               for i = 0 to n - 1 do
                 acc := !acc + (a.(i) * q.(i).(k))
               done;
               !acc))
         cs)
  in
  let pull_bden =
    Array.of_list (List.map (fun c -> Constr.const c * den) cs)
  in
  {
    variant;
    check;
    rank;
    kernel;
    tiling;
    comm;
    tspace;
    n;
    width;
    shape;
    lstr;
    vpt;
    tshift = vpt.(m) * lstr.(m);
    den;
    q;
    jstep;
    member = compiled_member space;
    reads;
    reads';
    pull_w;
    pull_bden;
    vs = Array.make n 0;
    jp = Array.make n 0;
    jrow = Array.make n 0;
    jend = Array.make n 0;
    jcur = Array.make n 0;
    src = Array.make n 0;
    doffs = Array.make (Array.length reads) 0;
    out = Array.make width 0.;
  }

let variant t = t.variant
let lds_total t = t.shape.Lds.total

(* LDS cell index of TTIS point [j'] at trel = 0 (Table 1 with the
   tile-relative shift split off: adding [trel * t.tshift] gives the
   cell at chain position trel). *)
let cell0 t (j' : int array) =
  let comm = t.comm and c = t.tiling.Tiling.c in
  let acc = ref 0 in
  for k = 0 to t.n - 1 do
    acc := !acc + ((Ints.fdiv j'.(k) c.(k) + comm.Comm.off.(k)) * t.lstr.(k))
  done;
  !acc

(* Per-tap LDS cell delta for the row containing [j']: constant along the
   row because the innermost coordinate moves in multiples of c_{n-1}. *)
let set_row_doffs t (j' : int array) =
  let c = t.tiling.Tiling.c in
  for i = 0 to Array.length t.reads' - 1 do
    let d' = t.reads'.(i) in
    let acc = ref 0 in
    for k = 0 to t.n - 1 do
      acc :=
        !acc
        + ((Ints.fdiv (j'.(k) - d'.(k)) c.(k) - Ints.fdiv j'.(k) c.(k))
          * t.lstr.(k))
    done;
    t.doffs.(i) <- !acc
  done

(* Global point of TTIS row start: j = Q·(V·tile + j') / den. *)
let set_global t (j' : int array) (dst : int array) =
  for i = 0 to t.n - 1 do
    let acc = ref 0 in
    for k = 0 to t.n - 1 do
      acc := !acc + (t.q.(i).(k) * (t.vs.(k) + j'.(k)))
    done;
    dst.(i) <- !acc / t.den
  done

(* Row-wise enumeration of the clipped slab [j' >= lo] of [tile], in
   lexicographic TTIS order. Mirrors Tile_space.count_clipped: the space
   constraints pull back to TTIS coordinates with tile-dependent
   constants only; the Fourier–Motzkin chain's innermost level is the
   original system, so every residue-aligned point of [start, bhi] is a
   slab member — rows need no per-point membership test. *)
let iter_rows t ~tile ~lo f =
  let n = t.n in
  let tiling = t.tiling in
  let c = tiling.Tiling.c in
  for k = 0 to n - 1 do
    t.vs.(k) <- tiling.Tiling.v.(k) * tile.(k)
  done;
  let pulled =
    Array.to_list
      (Array.mapi
         (fun i w ->
           Constr.make ~coeffs:(Array.copy w)
             ~const:(Vec.dot w t.vs + t.pull_bden.(i)))
         t.pull_w)
  in
  let box =
    List.concat
      (List.init n (fun k ->
           [
             Constr.lower_bound_var n k (max 0 lo.(k));
             Constr.upper_bound_var n k (tiling.Tiling.v.(k) - 1);
           ]))
  in
  let proj = FM.project (pulled @ box) ~dim:n in
  let j' = t.jp in
  let rec go k =
    match FM.bounds proj ~var:k ~prefix:j' with
    | None -> ()
    | Some (blo, bhi) ->
      let residue = Lattice.first_in_residue tiling.Tiling.lattice k j' in
      let start = residue + (c.(k) * Ints.cdiv (blo - residue) c.(k)) in
      if start <= bhi then
        if k = n - 1 then begin
          j'.(k) <- start;
          f ~j' ~len:(((bhi - start) / c.(k)) + 1)
        end
        else begin
          let x = ref start in
          while !x <= bhi do
            j'.(k) <- !x;
            go (k + 1);
            x := !x + c.(k)
          done
        end
  in
  go 0

(* ---------------- reference paths (the original per-point code) ------- *)

let reference_compute t ~trel ~tile ~la =
  let n = t.n and width = t.width in
  let tiling = t.tiling and comm = t.comm in
  let points = ref 0 in
  Tile_space.iter_tile_points t.tspace ~tile (fun ~local:j' ~global:j ->
      incr points;
      let read i field =
        let d = t.reads.(i) in
        for k = 0 to n - 1 do
          t.src.(k) <- j.(k) - d.(k)
        done;
        if t.member t.src then begin
          let d' = t.reads'.(i) in
          for k = 0 to n - 1 do
            t.jcur.(k) <- j'.(k) - d'.(k)
          done;
          let j'' = Lds.map tiling comm ~t:trel t.jcur in
          let v = la.((Lds.map_index t.shape j'' * width) + field) in
          if Float.is_nan v then
            failwith
              (Printf.sprintf
                 "Protocol: rank %d read uninitialised LDS cell for \
                  iteration %s read %d"
                 t.rank (Vec.to_string j) i);
          v
        end
        else t.kernel.Kernel.boundary t.src field
      in
      t.kernel.Kernel.compute ~read ~j ~out:t.out;
      let j'' = Lds.map tiling comm ~t:trel j' in
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        la.((cell * width) + f) <- t.out.(f)
      done);
  !points

let reference_pack t ~trel ~tile ~lo ~la ~buf =
  let width = t.width in
  let count = ref 0 in
  Tile_space.iter_slab_points t.tspace ~tile ~lo (fun ~local:j' ~global:_ ->
      let j'' = Lds.map t.tiling t.comm ~t:trel j' in
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        buf.((!count * width) + f) <- la.((cell * width) + f)
      done;
      incr count);
  !count

let reference_unpack t ~trel ~pred_tile ~ds ~lo ~la ~buf =
  let n = t.n and width = t.width in
  let count = ref 0 in
  Tile_space.iter_slab_points t.tspace ~tile:pred_tile ~lo
    (fun ~local:jp' ~global:_ ->
      let j'' = Lds.map t.tiling t.comm ~t:trel jp' in
      for k = 0 to n - 1 do
        j''.(k) <- j''.(k) - (ds.(k) * t.vpt.(k))
      done;
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        la.((cell * width) + f) <- buf.((!count * width) + f)
      done;
      incr count);
  !count

let reference_write_back t ~trel ~tile ~la grid =
  let width = t.width in
  Tile_space.iter_tile_points t.tspace ~tile (fun ~local:j' ~global:j ->
      let j'' = Lds.map t.tiling t.comm ~t:trel j' in
      let cell = Lds.map_index t.shape j'' in
      for f = 0 to width - 1 do
        Grid.set grid j f la.((cell * width) + f)
      done)

(* ---------------- strength-reduced paths ------------------------------ *)

(* Are all taps of the whole row interior? Row points lie on the segment
   [jrow, jend]; the space is convex, so checking both ends per tap
   covers every point in between. *)
let row_interior t len =
  let n = t.n in
  for k = 0 to n - 1 do
    t.jend.(k) <- t.jrow.(k) + ((len - 1) * t.jstep.(k))
  done;
  let ok = ref true in
  let nrd = Array.length t.reads in
  let i = ref 0 in
  while !ok && !i < nrd do
    let d = t.reads.(!i) in
    for k = 0 to n - 1 do
      t.src.(k) <- t.jrow.(k) - d.(k)
    done;
    if not (t.member t.src) then ok := false
    else begin
      for k = 0 to n - 1 do
        t.src.(k) <- t.jend.(k) - d.(k)
      done;
      if not (t.member t.src) then ok := false
    end;
    incr i
  done;
  !ok

let nan_error t j i =
  failwith
    (Printf.sprintf
       "Protocol: rank %d read uninitialised LDS cell for iteration %s \
        read %d"
       t.rank (Vec.to_string j) i)

let fast_compute t ~trel ~tile ~la =
  let n = t.n and width = t.width in
  let kernel = t.kernel in
  let uses_j = kernel.Kernel.uses_j in
  let points = ref 0 in
  let zero_lo = Array.make n 0 in
  iter_rows t ~tile ~lo:zero_lo (fun ~j' ~len ->
      points := !points + len;
      let base = cell0 t j' + (trel * t.tshift) in
      set_global t j' t.jrow;
      set_row_doffs t j';
      let interior = row_interior t len in
      if
        interior && t.variant = Fastpath && (not t.check)
        && kernel.Kernel.row <> None
      then
        (* width = 1 (enforced by Kernel.make), so slots = cells *)
        (Option.get kernel.Kernel.row) ~la ~dst:base ~taps:t.doffs ~len
      else if interior then begin
        (* interior row: unguarded reads off precomputed cell deltas *)
        let cur = ref base in
        Array.blit t.jrow 0 t.jcur 0 n;
        let read i field =
          let v = Array.unsafe_get la ((!cur + t.doffs.(i)) * width + field) in
          if t.check && Float.is_nan v then nan_error t t.jcur i;
          v
        in
        for _s = 0 to len - 1 do
          kernel.Kernel.compute ~read ~j:t.jcur ~out:t.out;
          let slot = !cur * width in
          for f = 0 to width - 1 do
            Array.unsafe_set la (slot + f) t.out.(f)
          done;
          incr cur;
          if uses_j || t.check then
            for k = 0 to n - 1 do
              t.jcur.(k) <- t.jcur.(k) + t.jstep.(k)
            done
        done
      end
      else begin
        (* boundary row: per-tap membership, boundary values outside *)
        let cur = ref base in
        Array.blit t.jrow 0 t.jcur 0 n;
        let read i field =
          let d = t.reads.(i) in
          for k = 0 to n - 1 do
            t.src.(k) <- t.jcur.(k) - d.(k)
          done;
          if t.member t.src then begin
            let v = la.(((!cur + t.doffs.(i)) * width) + field) in
            if t.check && Float.is_nan v then nan_error t t.jcur i;
            v
          end
          else kernel.Kernel.boundary t.src field
        in
        for _s = 0 to len - 1 do
          kernel.Kernel.compute ~read ~j:t.jcur ~out:t.out;
          let slot = !cur * width in
          for f = 0 to width - 1 do
            la.(slot + f) <- t.out.(f)
          done;
          incr cur;
          for k = 0 to n - 1 do
            t.jcur.(k) <- t.jcur.(k) + t.jstep.(k)
          done
        done
      end);
  !points

let fast_pack t ~trel ~tile ~lo ~la ~buf =
  let width = t.width in
  let count = ref 0 in
  iter_rows t ~tile ~lo (fun ~j' ~len ->
      let cell = cell0 t j' + (trel * t.tshift) in
      if t.variant = Fastpath then
        Array.blit la (cell * width) buf (!count * width) (len * width)
      else begin
        let src = ref (cell * width) and dst = ref (!count * width) in
        for _s = 0 to (len * width) - 1 do
          buf.(!dst) <- la.(!src);
          incr src;
          incr dst
        done
      end;
      count := !count + len);
  !count

let fast_unpack t ~trel ~pred_tile ~ds ~lo ~la ~buf =
  let width = t.width in
  (* the received slab lands shifted by -d^S tiles: a constant cell
     delta, precomputed once per slab *)
  let dshift = ref 0 in
  for k = 0 to t.n - 1 do
    dshift := !dshift + (ds.(k) * t.vpt.(k) * t.lstr.(k))
  done;
  let shift = (trel * t.tshift) - !dshift in
  let count = ref 0 in
  iter_rows t ~tile:pred_tile ~lo (fun ~j' ~len ->
      let cell = cell0 t j' + shift in
      if t.variant = Fastpath then
        Array.blit buf (!count * width) la (cell * width) (len * width)
      else begin
        let src = ref (!count * width) and dst = ref (cell * width) in
        for _s = 0 to (len * width) - 1 do
          la.(!dst) <- buf.(!src);
          incr src;
          incr dst
        done
      end;
      count := !count + len);
  !count

let fast_write_back t ~trel ~tile ~la grid =
  let n = t.n and width = t.width in
  let gstr = Grid.strides grid in
  let gdata = Grid.data grid in
  let gstep = ref 0 in
  for k = 0 to n - 1 do
    gstep := !gstep + (gstr.(k) * t.jstep.(k))
  done;
  let gstep = !gstep in
  let zero_lo = Array.make n 0 in
  iter_rows t ~tile ~lo:zero_lo (fun ~j' ~len ->
      let cell = cell0 t j' + (trel * t.tshift) in
      set_global t j' t.jrow;
      let g = ref (Grid.index grid t.jrow 0) in
      if t.variant = Fastpath && gstep = width then
        Array.blit la (cell * width) gdata !g (len * width)
      else begin
        let src = ref (cell * width) in
        for _s = 0 to len - 1 do
          for f = 0 to width - 1 do
            gdata.(!g + f) <- la.(!src + f)
          done;
          src := !src + width;
          g := !g + gstep
        done
      end)

(* ---------------- dispatch ------------------------------------------- *)

let compute_tile t ~trel ~tile ~la =
  match t.variant with
  | Reference -> reference_compute t ~trel ~tile ~la
  | Strength_reduced | Fastpath -> fast_compute t ~trel ~tile ~la

let pack_slab t ~trel ~tile ~lo ~la ~buf =
  match t.variant with
  | Reference -> reference_pack t ~trel ~tile ~lo ~la ~buf
  | Strength_reduced | Fastpath -> fast_pack t ~trel ~tile ~lo ~la ~buf

let unpack_slab t ~trel ~pred_tile ~ds ~lo ~la ~buf =
  match t.variant with
  | Reference -> reference_unpack t ~trel ~pred_tile ~ds ~lo ~la ~buf
  | Strength_reduced | Fastpath ->
    fast_unpack t ~trel ~pred_tile ~ds ~lo ~la ~buf

let write_back t ~trel ~tile ~la grid =
  match t.variant with
  | Reference -> reference_write_back t ~trel ~tile ~la grid
  | Strength_reduced | Fastpath -> fast_write_back t ~trel ~tile ~la grid
