/* dlopen/dlsym glue for the native walker's compiled row kernels.
 *
 * The compiled plan exports
 *   void tilec_row(double *la, long cur, const long *taps,
 *                  const long *j0, long len, long interior);
 * We hand it the Bigarray data pointer directly; taps and j0 are OCaml
 * int arrays (tagged words), so they are untagged into small C stack
 * buffers per call — both are bounded by the stencil's read count and
 * the space dimension, far below the limits here.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/bigarray.h>
#include <dlfcn.h>
#include <string.h>

#define TILEC_MAX_WORDS 64

typedef void (*tilec_row_fn)(double *, long, const long *, const long *,
                             long, long);

CAMLprim value tilec_native_load(value vpath, value vsym)
{
  void *handle, *fn;
  char path[4096];
  char sym[256];
  size_t plen = caml_string_length(vpath);
  size_t slen = caml_string_length(vsym);
  if (plen >= sizeof(path) || slen >= sizeof(sym))
    caml_failwith("tilec_native_load: path too long");
  memcpy(path, String_val(vpath), plen); path[plen] = 0;
  memcpy(sym, String_val(vsym), slen); sym[slen] = 0;
  /* may release no lock: dlopen does not call back into OCaml */
  handle = dlopen(path, RTLD_NOW | RTLD_LOCAL);
  if (!handle) caml_failwith(dlerror());
  fn = dlsym(handle, sym);
  if (!fn) {
    dlclose(handle);
    caml_failwith("tilec_native_load: entry symbol not found");
  }
  /* the handle is deliberately leaked: compiled plans stay mapped for
     the life of the process (they are cached and tiny) */
  return caml_copy_nativeint((intnat)fn);
}

CAMLprim value tilec_native_row(value vfn, value vla, value vcur,
                                value vtaps, value vj0, value vlen,
                                value vinterior)
{
  tilec_row_fn fn = (tilec_row_fn)Nativeint_val(vfn);
  double *la = (double *)Caml_ba_data_val(vla);
  long taps[TILEC_MAX_WORDS], j0[TILEC_MAX_WORDS];
  mlsize_t i, nt = Wosize_val(vtaps), nj = Wosize_val(vj0);
  if (nt > TILEC_MAX_WORDS || nj > TILEC_MAX_WORDS)
    caml_failwith("tilec_native_row: argument arrays too large");
  for (i = 0; i < nt; i++) taps[i] = Long_val(Field(vtaps, i));
  for (i = 0; i < nj; i++) j0[i] = Long_val(Field(vj0, i));
  fn(la, Long_val(vcur), taps, j0, Long_val(vlen), Long_val(vinterior));
  return Val_unit;
}

CAMLprim value tilec_native_row_bc(value *argv, int argn)
{
  (void)argn;
  return tilec_native_row(argv[0], argv[1], argv[2], argv[3], argv[4],
                          argv[5], argv[6]);
}
