(** A dense global value store over the bounding box of an iteration
    space — the Data Space [DS] stand-in ([f_w] is the identity in all the
    paper's benchmarks). Cells start as NaN so that any protocol bug that
    reads a never-written cell poisons the results visibly.

    Storage is a flat unboxed {!Tiles_util.Fbuf.t} (1-D [float64]
    Bigarray): no per-element boxing, no GC write barrier, and the data
    pointer can be passed straight to native compiled kernels. *)

type t

val create : Tiles_poly.Polyhedron.t -> width:int -> t
val width : t -> int
val get : t -> Tiles_util.Vec.t -> int -> float
val set : t -> Tiles_util.Vec.t -> int -> float -> unit

val mem : t -> Tiles_util.Vec.t -> bool
(** Is the point inside the backing bounding box? Raises
    [Invalid_argument] when the point's rank differs from the grid's —
    a silent [true] (short point) or an index error escaping from array
    access (long point) would hide a protocol bug. *)

val index : t -> Tiles_util.Vec.t -> int -> int
(** [index t j field] — flat index of [field] at point [j] into [data].
    Bounds-checked per dimension (and rank-checked like {!mem}); raises
    [Invalid_argument] outside the bounding box. Because storage is a
    dense row-major box, the flat index is affine in [j]: walkers exploit
    this by computing [index] once per row and incrementing by a
    precomputed step. *)

val strides : t -> int array
(** Per-dimension flat-index strides, in slot units (field width folded
    in: moving by 1 in the last dimension moves [width t] slots). *)

val data : t -> Tiles_util.Fbuf.t
(** The raw backing store. Raw access is for strength-reduced walkers
    that have validated their index arithmetic against [index]; everyone
    else should go through [get]/[set]. *)

val slots : t -> int
(** Total slots of the backing store ([cells * width]). *)

val boxed : t -> float array
(** Copy of the backing store as a boxed [float array] — the
    compatibility shim for code (the reference oracle) that still
    computes on boxed arrays. *)

val load_boxed : t -> float array -> unit
(** Overwrite the backing store from a boxed array of exactly [slots t]
    elements (the inverse shim of {!boxed}). *)

val max_abs_diff : t -> t -> Tiles_poly.Polyhedron.t -> float
(** Maximum absolute difference over the points of the given space (all
    fields). NaN in either operand at a space point yields [infinity]. *)

val checksum : t -> Tiles_poly.Polyhedron.t -> float
(** Sum of all field values over the space, using Neumaier compensated
    summation. Guarantee: the result is faithful to the exact sum (one
    final rounding), so it does not depend on the order in which walker
    variants happened to write — or this function happens to visit — the
    cells; checksums of bit-identical grids compare equal across
    variants and traversal orders. *)
