(** A dense global value store over the bounding box of an iteration
    space — the Data Space [DS] stand-in ([f_w] is the identity in all the
    paper's benchmarks). Cells start as NaN so that any protocol bug that
    reads a never-written cell poisons the results visibly. *)

type t

val create : Tiles_poly.Polyhedron.t -> width:int -> t
val width : t -> int
val get : t -> Tiles_util.Vec.t -> int -> float
val set : t -> Tiles_util.Vec.t -> int -> float -> unit
val mem : t -> Tiles_util.Vec.t -> bool
(** Is the point inside the backing bounding box? *)

val index : t -> Tiles_util.Vec.t -> int -> int
(** [index t j field] — flat index of [field] at point [j] into [data].
    Bounds-checked per dimension; raises [Invalid_argument] outside the
    bounding box. Because storage is a dense row-major box, the flat index
    is affine in [j]: walkers exploit this by computing [index] once per
    row and incrementing by a precomputed step. *)

val strides : t -> int array
(** Per-dimension flat-index strides, in slot units (field width folded
    in: moving by 1 in the last dimension moves [width t] slots). *)

val data : t -> float array
(** The raw backing store. Raw access is for strength-reduced walkers
    that have validated their index arithmetic against [index]; everyone
    else should go through [get]/[set]. *)

val max_abs_diff : t -> t -> Tiles_poly.Polyhedron.t -> float
(** Maximum absolute difference over the points of the given space (all
    fields). NaN in either operand at a space point yields [infinity]. *)

val checksum : t -> Tiles_poly.Polyhedron.t -> float
(** Sum of all field values over the space (order-independent up to float
    association; used for smoke checks). *)
