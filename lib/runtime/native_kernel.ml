(* Compile-at-plan-time row kernels for the native walker.
 *
 * The per-(plan, kernel) C source from [Rowgen] is compiled once with
 * the system C compiler into a shared object, cached content-addressed
 * (digest of the source) like the tune cache, and dlopen'd; the walker
 * then calls the row entry through a small stub passing the local
 * array's Bigarray data pointer. Everything degrades gracefully: no C
 * compiler, no C body on the kernel, or a failed compile all surface as
 * [Error reason] and the walker falls back to the fast OCaml path.
 *
 * Environment knobs:
 *   TILEC_CC            compiler to use (default: cc)
 *   TILEC_NO_CC         non-empty: pretend no compiler exists
 *   TILEC_NATIVE_CACHE  cache directory (default: $XDG_CACHE_HOME/tilec
 *                       /native or ~/.cache/tilec/native, else a
 *                       tilec-native dir under the temp dir)
 *)

module Fbuf = Tiles_util.Fbuf
module Rowgen = Tiles_codegen.Rowgen

type fn = nativeint

external load_stub : string -> string -> nativeint = "tilec_native_load"

external row_stub :
  nativeint -> Fbuf.t -> int -> int array -> int array -> int -> int -> unit
  = "tilec_native_row_bc" "tilec_native_row" [@@noalloc]

let getenv_nonempty v =
  match Sys.getenv_opt v with Some "" | None -> None | Some s -> Some s

let cc_command () =
  match getenv_nonempty "TILEC_CC" with Some cc -> cc | None -> "cc"

(* the PATH lookup is memoized (walkers are built per rank and must not
   shell out to `command -v` every time); NOT a [lazy] — shm ranks build
   walkers concurrently and forcing a lazy from two domains raises
   [CamlinternalLazy.Undefined]. A racing duplicate probe is benign: both
   compute the same answer. The TILEC_NO_CC override is re-read per call
   so tests can toggle it within one process. *)
let cc_found_memo : bool option Atomic.t = Atomic.make None

let cc_found () =
  match Atomic.get cc_found_memo with
  | Some b -> b
  | None ->
    let cc = Filename.quote (cc_command ()) in
    let b =
      Sys.command (Printf.sprintf "command -v %s >/dev/null 2>&1" cc) = 0
    in
    Atomic.set cc_found_memo (Some b);
    b

let available () = getenv_nonempty "TILEC_NO_CC" = None && cc_found ()

let default_cache_dir () =
  match getenv_nonempty "TILEC_NATIVE_CACHE" with
  | Some d -> d
  | None ->
    let base =
      match getenv_nonempty "XDG_CACHE_HOME" with
      | Some d -> Filename.concat d "tilec"
      | None -> (
        match getenv_nonempty "HOME" with
        | Some h -> Filename.concat (Filename.concat h ".cache") "tilec"
        | None -> Filename.concat (Filename.get_temp_dir_name ()) "tilec")
    in
    Filename.concat base "native"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* distinguishes concurrent writers within one process: domains share a
   pid, so the temp name needs a per-process unique component too *)
let build_seq = Atomic.make 0

(* loaded entry points by .so path; dlopen'ing the same object from two
   domains is safe but the table keeps lookups cheap and single *)
let loaded : (string, nativeint) Hashtbl.t = Hashtbl.create 8
let loaded_mu = Mutex.create ()

(* one place defines how sources are compiled, because the cache key
   must cover it: a cached .so built with different flags is a
   different artifact *)
let compile_flags = "-O3 -march=native -ffp-contract=off -fPIC -shared"

let compile_to src so =
  let dir = Filename.dirname so in
  let tag =
    Printf.sprintf "%d.%d" (Unix.getpid ()) (Atomic.fetch_and_add build_seq 1)
  in
  let tmp_c = Filename.concat dir (Printf.sprintf ".tilec.%s.c" tag) in
  let tmp_so = Filename.concat dir (Printf.sprintf ".tilec.%s.so" tag) in
  let cleanup () =
    List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ tmp_c; tmp_so ]
  in
  let oc = open_out tmp_c in
  output_string oc src;
  close_out oc;
  let cmd =
    (* no -ffast-math, and contraction off explicitly: results must stay
       bit-identical to the OCaml walkers, which evaluate strict IEEE
       double in program order — -march=native alone would let the
       compiler fuse a*b+c into FMA and change the last bit *)
    Printf.sprintf "%s %s -o %s %s -lm 2>/dev/null" (cc_command ())
      compile_flags (Filename.quote tmp_so) (Filename.quote tmp_c)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then begin
    cleanup ();
    Error (Printf.sprintf "C compiler exited with status %d" rc)
  end
  else begin
    (* atomic publish: concurrent builders race benignly, last rename
       wins with identical content *)
    Sys.rename tmp_so so;
    (try Sys.remove tmp_c with Sys_error _ -> ());
    Ok ()
  end

let load_path so =
  Mutex.lock loaded_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock loaded_mu)
    (fun () ->
      match Hashtbl.find_opt loaded so with
      | Some fn -> Ok fn
      | None -> (
        match load_stub so Rowgen.entry_symbol with
        | fn ->
          Hashtbl.replace loaded so fn;
          Ok fn
        | exception Failure msg -> Error ("dlopen: " ^ msg)))

(* Render the source and its content address. The digest covers source
   (which bakes in the inner subtile shape — see Rowgen), compiler and
   flags: any of them changing must miss the cache, not load a stale
   object. *)
let source_and_path ?inner ~plan ~kernel () =
  match kernel.Kernel.ckernel with
  | None ->
    Error (Printf.sprintf "kernel %s has no C body" kernel.Kernel.name)
  | Some ck ->
    let src =
      Rowgen.generate ?inner ~plan ~kernel:ck ~skew:kernel.Kernel.skew
        ~reads:kernel.Kernel.reads ~uses_j:kernel.Kernel.uses_j ()
    in
    let so =
      Filename.concat (default_cache_dir ())
        (Digest.to_hex
           (Digest.string (cc_command () ^ "\x00" ^ compile_flags
                           ^ "\x00" ^ src))
        ^ ".so")
    in
    Ok (src, so)

let object_path ?inner ~plan ~kernel () =
  Result.map snd (source_and_path ?inner ~plan ~kernel ())

let build ?inner ~plan ~kernel () =
  match source_and_path ?inner ~plan ~kernel () with
  | Error e -> Error e
  | Ok (src, so) ->
    if not (available ()) then Error "no C compiler available"
    else begin
      match mkdir_p (Filename.dirname so) with
      | exception Unix.Unix_error (e, _, _) ->
        Error ("cache dir: " ^ Unix.error_message e)
      | () ->
        let compiled =
          if Sys.file_exists so then Ok () else compile_to src so
        in
        (match compiled with
        | Error _ as e -> e
        | Ok () -> load_path so)
    end

let row fn ~la ~cur ~taps ~jrow ~len ~interior =
  row_stub fn la cur taps jrow len (if interior then 1 else 0)
