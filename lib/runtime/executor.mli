(** Distributed execution of a {!Plan} on the simulated cluster.

    Each MPI rank owns one processor id and executes its tile chain with
    the per-tile protocol of §3.2:

    {v RECEIVE (halo unpack)  →  compute TTIS points  →  SEND (pack) v}

    Receives pair with sends through the paper's rules: a tile receives
    from a predecessor tile iff it is that predecessor's lexicographically
    minimum valid successor in the processor direction; a tile sends one
    aggregated message per processor direction iff some valid successor
    exists. Message tags carry the sender's tile index, making the
    matching explicit.

    Two modes:
    - [Full]: allocates the LDS, runs the real stencil arithmetic, and
      writes results back to the global grid through the LDS→DS
      transition, so the output can be compared bit-for-bit against
      {!Seq_exec}. Never-written LDS cells are NaN and reads assert
      non-NaN, so protocol bugs surface immediately.
    - [Timing]: skips data movement and arithmetic but charges the exact
      same virtual-time costs (interior tiles short-circuit to the full
      tile point count). Used by the benchmark harness; a test checks the
      two modes report identical virtual completion times. *)

type mode = Full | Timing

type result = {
  stats : Tiles_mpisim.Sim.stats;
  seq_modelled : float;  (** modelled sequential time of the original loop *)
  speedup : float;       (** [seq_modelled / stats.completion] *)
  grid : Grid.t option;  (** populated in [Full] mode *)
  points_computed : int; (** total iterations executed across ranks *)
  tiles_executed : int;
}

val run :
  ?walker:Walker.variant ->
  ?check:bool ->
  ?inner:int array ->
  ?mode:mode ->
  ?overlap:bool ->
  ?trace:bool ->
  ?recorder:Tiles_obs.Recorder.t ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  net:Tiles_mpisim.Netmodel.t ->
  unit ->
  result
(** Raises [Invalid_argument] if the kernel's dependencies don't match the
    plan's nest.

    [walker]/[check] (defaults {!Walker.Fastpath}, [false]) select the
    tile-execution engine and its NaN-read validation, and [inner] the
    optional cache-resident subtile shape; see {!Protocol.prepare}.
    [Timing] mode never touches data, so they only matter in [Full]
    mode (in particular the simulator charges per-point flop time, so
    [inner] changes wall-clock walker throughput, never the simulated
    completion).

    [overlap] (default false) runs {!Protocol.rank_program} in its
    overlapped §5 schedule (receives pre-posted per tile) and switches
    sends to the non-blocking, NIC-driven model of
    {!Tiles_mpisim.Sim.Api.isend}: the paper's §5 future-work scheme
    (ref [8]) where a tile's outgoing communication overlaps the next
    tile's computation.

    [trace] (default false) records per-rank activity spans in
    [result.stats.trace] for Gantt rendering, plus the message dependency
    edges in [result.stats.edges]. [recorder] passes a caller-created
    recorder through to {!Tiles_mpisim.Sim.run} (it must read virtual
    time, i.e. be created with a clock that always returns 0) — e.g. a
    [~mode:Streaming] one so a thousand-rank traced sim stays at
    O(nprocs) memory. *)
