(** Compile, cache and call native (C-compiled) row kernels for the
    [native] walker variant.

    [build] renders the per-(plan, kernel) row source with
    {!Tiles_codegen.Rowgen}, compiles it with the system C compiler
    ([TILEC_CC], default [cc]; compiled without [-ffast-math] so results
    stay bit-identical to the OCaml walkers), caches the shared object
    content-addressed by source digest under [TILEC_NATIVE_CACHE]
    (default [~/.cache/tilec/native]), and [dlopen]s it. All failure
    modes — missing compiler ([TILEC_NO_CC] forces this), kernel
    without a C body, compile or dlopen errors — return [Error reason]
    so the walker can fall back and record why. *)

type fn
(** A loaded row entry point. *)

val available : unit -> bool
(** Is a C compiler usable? False when [TILEC_NO_CC] is set or the
    compiler is not on [PATH] (resolved once per process). *)

val build :
  ?inner:int array ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  unit ->
  (fn, string) result
(** [inner] is the walker's inner subtile shape; it is baked into the
    generated source, so differently-blocked schedules content-address
    to distinct shared objects and never collide in the cache. *)

val object_path :
  ?inner:int array ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  unit ->
  (string, string) result
(** The content-addressed [.so] path [build] would use (no compiler
    required, nothing is compiled): the digest covers compiler, flags
    and the rendered source including the inner shape. [Error] when
    the kernel has no C body. Exposed so tests can assert two inner
    shapes key distinct objects. *)

val row :
  fn ->
  la:Tiles_util.Fbuf.t ->
  cur:int ->
  taps:int array ->
  jrow:int array ->
  len:int ->
  interior:bool ->
  unit
(** Run the compiled row: [cur] is the LDS cell of the first point,
    [taps] the per-read LDS cell deltas for this row, [jrow] the global
    (skewed) coordinates of the first point. Boundary rows
    ([interior = false]) guard every tap; interior rows read unguarded. *)
