(** Compile, cache and call native (C-compiled) row kernels for the
    [native] walker variant.

    [build] renders the per-(plan, kernel) row source with
    {!Tiles_codegen.Rowgen}, compiles it with the system C compiler
    ([TILEC_CC], default [cc]; compiled without [-ffast-math] so results
    stay bit-identical to the OCaml walkers), caches the shared object
    content-addressed by source digest under [TILEC_NATIVE_CACHE]
    (default [~/.cache/tilec/native]), and [dlopen]s it. All failure
    modes — missing compiler ([TILEC_NO_CC] forces this), kernel
    without a C body, compile or dlopen errors — return [Error reason]
    so the walker can fall back and record why. *)

type fn
(** A loaded row entry point. *)

val available : unit -> bool
(** Is a C compiler usable? False when [TILEC_NO_CC] is set or the
    compiler is not on [PATH] (resolved once per process). *)

val build : plan:Tiles_core.Plan.t -> kernel:Kernel.t -> (fn, string) result

val row :
  fn ->
  la:Tiles_util.Fbuf.t ->
  cur:int ->
  taps:int array ->
  jrow:int array ->
  len:int ->
  interior:bool ->
  unit
(** Run the compiled row: [cur] is the LDS cell of the first point,
    [taps] the per-read LDS cell deltas for this row, [jrow] the global
    (skewed) coordinates of the first point. Boundary rows
    ([interior = false]) guard every tap; interior rows read unguarded. *)
