module Polyhedron = Tiles_poly.Polyhedron
module Fbuf = Tiles_util.Fbuf

type t = {
  width : int;
  lo : int array;
  dims : int array;
  strides : int array;
  data : Fbuf.t;
}

let create space ~width =
  if width <= 0 then invalid_arg "Grid.create: width";
  let bbox = Polyhedron.bounding_box space in
  let n = Array.length bbox in
  let lo = Array.map fst bbox in
  let dims = Array.map (fun (l, h) -> h - l + 1) bbox in
  let strides = Array.make n width in
  for k = n - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  let total = strides.(0) * dims.(0) in
  { width; lo; dims; strides; data = Fbuf.make total Float.nan }

let width t = t.width

let check_rank fn t j =
  if Array.length j <> Array.length t.lo then
    invalid_arg
      (Printf.sprintf "Grid.%s: point rank %d differs from grid rank %d" fn
         (Array.length j) (Array.length t.lo))

let index t j field =
  check_rank "index" t j;
  let idx = ref field in
  for k = 0 to Array.length t.lo - 1 do
    let x = j.(k) - t.lo.(k) in
    if x < 0 || x >= t.dims.(k) then invalid_arg "Grid: out of bounding box";
    idx := !idx + (t.strides.(k) * x)
  done;
  !idx

let get t j field = Fbuf.get t.data (index t j field)
let set t j field v = Fbuf.set t.data (index t j field) v
let strides t = t.strides
let data t = t.data
let slots t = Fbuf.length t.data

let mem t j =
  check_rank "mem" t j;
  let ok = ref true in
  for k = 0 to Array.length t.lo - 1 do
    let rel = j.(k) - t.lo.(k) in
    if rel < 0 || rel >= t.dims.(k) then ok := false
  done;
  !ok

let boxed t = Fbuf.to_array t.data

let load_boxed t a =
  if Array.length a <> Fbuf.length t.data then
    invalid_arg
      (Printf.sprintf "Grid.load_boxed: %d slots given, grid has %d"
         (Array.length a) (Fbuf.length t.data));
  Array.iteri (fun i v -> Fbuf.set t.data i v) a

let max_abs_diff a b space =
  if a.width <> b.width then invalid_arg "Grid.max_abs_diff: widths differ";
  let worst = ref 0. in
  Polyhedron.iter_points space (fun j ->
      for f = 0 to a.width - 1 do
        let x = get a j f and y = get b j f in
        let d =
          if Float.is_nan x || Float.is_nan y then infinity
          else Float.abs (x -. y)
        in
        if d > !worst then worst := d
      done);
  !worst

(* Neumaier compensated summation: the running error term absorbs the
   low-order bits ordinary left-to-right addition drops, so the result is
   faithful to the exact sum well past double rounding noise and — the
   property walkers rely on — stable under any traversal order of the
   same multiset of values. *)
let checksum t space =
  let sum = ref 0. and comp = ref 0. in
  Polyhedron.iter_points space (fun j ->
      for f = 0 to t.width - 1 do
        let x = get t j f in
        let s = !sum +. x in
        if Float.abs !sum >= Float.abs x then
          comp := !comp +. ((!sum -. s) +. x)
        else comp := !comp +. ((x -. s) +. !sum);
        sum := s
      done);
  !sum +. !comp
