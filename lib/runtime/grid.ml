module Polyhedron = Tiles_poly.Polyhedron

type t = {
  width : int;
  lo : int array;
  dims : int array;
  strides : int array;
  data : float array;
}

let create space ~width =
  if width <= 0 then invalid_arg "Grid.create: width";
  let bbox = Polyhedron.bounding_box space in
  let n = Array.length bbox in
  let lo = Array.map fst bbox in
  let dims = Array.map (fun (l, h) -> h - l + 1) bbox in
  let strides = Array.make n width in
  for k = n - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  let total = strides.(0) * dims.(0) in
  { width; lo; dims; strides; data = Array.make total Float.nan }

let width t = t.width

let index t j field =
  let idx = ref field in
  for k = 0 to Array.length t.lo - 1 do
    let x = j.(k) - t.lo.(k) in
    if x < 0 || x >= t.dims.(k) then invalid_arg "Grid: out of bounding box";
    idx := !idx + (t.strides.(k) * x)
  done;
  !idx

let get t j field = t.data.(index t j field)
let set t j field v = t.data.(index t j field) <- v
let strides t = t.strides
let data t = t.data

let mem t j =
  let ok = ref true in
  Array.iteri
    (fun k x ->
      let rel = x - t.lo.(k) in
      if rel < 0 || rel >= t.dims.(k) then ok := false)
    j;
  !ok

let max_abs_diff a b space =
  if a.width <> b.width then invalid_arg "Grid.max_abs_diff: widths differ";
  let worst = ref 0. in
  Polyhedron.iter_points space (fun j ->
      for f = 0 to a.width - 1 do
        let x = get a j f and y = get b j f in
        let d =
          if Float.is_nan x || Float.is_nan y then infinity
          else Float.abs (x -. y)
        in
        if d > !worst then worst := d
      done);
  !worst

let checksum t space =
  let acc = ref 0. in
  Polyhedron.iter_points space (fun j ->
      for f = 0 to t.width - 1 do
        acc := !acc +. get t j f
      done);
  !acc
