module Mapping = Tiles_core.Mapping
module Plan = Tiles_core.Plan
module Polyhedron = Tiles_poly.Polyhedron
module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Clock = Tiles_obs.Clock

exception Recv_timeout of string

type result = {
  wall_seconds : float;
  seq_wall_seconds : float;
  wall_speedup : float;
  grid : Grid.t;
  max_abs_err : float;
  nprocs : int;
  messages : int;
  bytes : int;
  trace : Span.t list;
  stats : Tiles_obs.Stats.t;
}

(* A blocking mailbox per (src, dst) channel, tag-matched. *)
module Mailbox = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    messages : (int, float array Queue.t) Hashtbl.t;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create ();
      messages = Hashtbl.create 8 }

  let send t ~tag data =
    Mutex.lock t.mutex;
    let q =
      match Hashtbl.find_opt t.messages tag with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.messages tag q;
        q
    in
    Queue.push data q;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let recv ?(timeout = infinity) ?(diag = fun () -> "Mailbox.recv: timed out")
      t ~tag =
    let deadline =
      if timeout > 0. && timeout < infinity then Clock.monotonic () +. timeout
      else infinity
    in
    Mutex.lock t.mutex;
    let rec wait () =
      match Hashtbl.find_opt t.messages tag with
      | Some q when not (Queue.is_empty q) ->
        let data = Queue.pop q in
        (* a drained per-tag queue must go, or a long-running channel
           leaks one empty Queue.t per tag it has ever carried *)
        if Queue.is_empty q then Hashtbl.remove t.messages tag;
        data
      | _ ->
        if Clock.monotonic () > deadline then begin
          Mutex.unlock t.mutex;
          raise (Recv_timeout (diag ()))
        end;
        (* the run's watchdog broadcasts periodically, so this wait
           rechecks the deadline even if no message ever arrives *)
        Condition.wait t.cond t.mutex;
        wait ()
    in
    let data = wait () in
    Mutex.unlock t.mutex;
    data

  let tag_count t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.messages in
    Mutex.unlock t.mutex;
    n

  let nudge t =
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
end

let watchdog_period = 0.02

let run ?(trace = false) ?(recv_timeout = 30.) ~plan ~kernel () =
  let nprocs = Mapping.nprocs plan.Plan.mapping in
  let shared =
    Protocol.prepare ~mode:Protocol.Full ~plan ~kernel ~flop_time:0.
      ~pack_time:0. ()
  in
  let boxes =
    Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Mailbox.create ()))
  in
  let recorder = Recorder.create ~trace ~nprocs () in
  let comms_for rank =
    let log = Recorder.log recorder ~rank in
    {
      Protocol.send =
        (fun ~dst ~tag data ->
          let t0 = Recorder.now recorder in
          Mailbox.send boxes.(rank).(dst) ~tag data;
          Recorder.message_sent log ~bytes:(8 * Array.length data);
          Recorder.span log ~t0 ~t1:(Recorder.now recorder) Span.Send;
          Recorder.mark log);
      recv =
        (fun ~src ~tag ->
          let t0 = Recorder.now recorder in
          let diag () =
            Printf.sprintf
              "Shm_executor: rank %d blocked > %gs in recv (src=%d, tag=%d) \
               — mis-generated schedule?"
              rank recv_timeout src tag
          in
          let data =
            Mailbox.recv ~timeout:recv_timeout ~diag boxes.(src).(rank) ~tag
          in
          Recorder.message_received log ~bytes:(8 * Array.length data);
          Recorder.span log ~t0 ~t1:(Recorder.now recorder) Span.Wait;
          Recorder.mark log;
          data);
      compute = (fun _ -> Recorder.close log Span.Compute);
      pack = (fun _ -> Recorder.close log Span.Pack);
      unpack = (fun _ -> Recorder.close log Span.Unpack);
    }
  in
  let failure = Atomic.make None in
  let stop_watchdog = Atomic.make false in
  (* Condition.wait has no timed variant; a watchdog domain periodically
     wakes every mailbox so blocked receivers can notice their deadline. *)
  let watchdog =
    if recv_timeout > 0. && recv_timeout < infinity then
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_watchdog) do
               Unix.sleepf watchdog_period;
               Array.iter (Array.iter Mailbox.nudge) boxes
             done))
    else None
  in
  let t0 = Clock.monotonic () in
  let domains =
    List.init nprocs (fun rank ->
        Domain.spawn (fun () ->
            let log = Recorder.log recorder ~rank in
            Recorder.mark log;
            (try Protocol.rank_program shared (comms_for rank) rank
             with e -> ignore (Atomic.compare_and_set failure None (Some e)));
            Recorder.finish log))
  in
  List.iter Domain.join domains;
  let wall = Clock.monotonic () -. t0 in
  Atomic.set stop_watchdog true;
  Option.iter Domain.join watchdog;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let t1 = Clock.monotonic () in
  let oracle = Seq_exec.run ~space ~kernel in
  let seq_wall = Clock.monotonic () -. t1 in
  let grid =
    match shared.Protocol.grid with
    | Some g -> g
    | None -> assert false
  in
  let completion =
    Array.fold_left Float.max 0. (Recorder.rank_finish recorder)
  in
  let stats =
    Tiles_obs.Stats.make ~completion ~nprocs
      ~messages:(Recorder.messages recorder)
      ~bytes:(Recorder.bytes recorder)
      ~max_inflight_bytes:(Recorder.max_inflight_bytes recorder)
      ~rank_messages:(Recorder.rank_messages recorder)
      ~rank_bytes:(Recorder.rank_bytes recorder)
      (Recorder.spans recorder)
  in
  {
    wall_seconds = wall;
    seq_wall_seconds = seq_wall;
    wall_speedup = seq_wall /. wall;
    grid;
    max_abs_err = Grid.max_abs_diff grid oracle space;
    nprocs;
    messages = Recorder.messages recorder;
    bytes = Recorder.bytes recorder;
    trace = Recorder.spans recorder;
    stats;
  }
