module Fbuf = Tiles_util.Fbuf
module Mapping = Tiles_core.Mapping
module Plan = Tiles_core.Plan
module Polyhedron = Tiles_poly.Polyhedron
module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Clock = Tiles_obs.Clock

exception Recv_timeout of string
exception Send_timeout of string

type result = {
  wall_seconds : float;
  seq_wall_seconds : float;
  wall_speedup : float;
  grid : Grid.t;
  max_abs_err : float;
  nprocs : int;
  messages : int;
  bytes : int;
  points_computed : int;
  tiles_executed : int;
  trace : Span.t list;
  edges : Recorder.edge list;
  stats : Tiles_obs.Stats.t;
}

(* A blocking mailbox per (src, dst) channel, tag-matched. *)
module Mailbox = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    messages : (int, Fbuf.t Queue.t) Hashtbl.t;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create ();
      messages = Hashtbl.create 8 }

  let send t ~tag data =
    Mutex.lock t.mutex;
    let q =
      match Hashtbl.find_opt t.messages tag with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.messages tag q;
        q
    in
    Queue.push data q;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let recv ?(timeout = infinity) ?(diag = fun () -> "Mailbox.recv: timed out")
      t ~tag =
    (* [not (timeout > 0.)] also catches NaN; a zero or negative timeout
       used to silently mean "wait forever", hiding watchdog misuse *)
    if not (timeout > 0.) then
      invalid_arg
        "Mailbox.recv: timeout must be positive (use infinity to wait forever)";
    let deadline =
      if timeout < infinity then Clock.monotonic () +. timeout else infinity
    in
    Mutex.lock t.mutex;
    let rec wait () =
      match Hashtbl.find_opt t.messages tag with
      | Some q when not (Queue.is_empty q) ->
        let data = Queue.pop q in
        (* a drained per-tag queue must go, or a long-running channel
           leaks one empty Queue.t per tag it has ever carried *)
        if Queue.is_empty q then Hashtbl.remove t.messages tag;
        data
      | _ ->
        if Clock.monotonic () > deadline then begin
          Mutex.unlock t.mutex;
          raise (Recv_timeout (diag ()))
        end;
        (* the run's watchdog broadcasts periodically, so this wait
           rechecks the deadline even if no message ever arrives *)
        Condition.wait t.cond t.mutex;
        wait ()
    in
    let data = wait () in
    Mutex.unlock t.mutex;
    data

  let tag_count t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.messages in
    Mutex.unlock t.mutex;
    n

  let nudge t =
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
end

(* The per-rank asynchronous send stage of the overlapped schedule: a
   bounded queue of delivery thunks drained by a dedicated domain, so
   the rank hands a packed slab off and computes the next tile while the
   transfer completes. The bound makes backpressure real — a producer
   outrunning the drainer blocks in [submit], and the blocked interval
   is returned so the caller can charge it as communication wait. *)
module Send_stage = struct
  type t = {
    mutex : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    jobs : (unit -> unit) Queue.t;
    capacity : int;
    mutable closed : bool;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Send_stage.create: capacity must be >= 1";
    { mutex = Mutex.create (); not_full = Condition.create ();
      not_empty = Condition.create (); jobs = Queue.create ();
      capacity; closed = false }

  let capacity t = t.capacity

  let submit ?(timeout = infinity)
      ?(diag = fun () -> "Send_stage.submit: timed out") t job =
    if not (timeout > 0.) then
      invalid_arg
        "Send_stage.submit: timeout must be positive (use infinity to wait \
         forever)";
    let deadline =
      if timeout < infinity then Clock.monotonic () +. timeout else infinity
    in
    Mutex.lock t.mutex;
    let rec wait_room blocked =
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Send_stage.submit: stage is closed"
      end;
      if Queue.length t.jobs < t.capacity then blocked
      else begin
        if Clock.monotonic () > deadline then begin
          Mutex.unlock t.mutex;
          raise (Send_timeout (diag ()))
        end;
        (* like Mailbox.recv, relies on a periodic nudge to re-check the
           deadline when the drainer never makes room *)
        let t0 = Clock.monotonic () in
        Condition.wait t.not_full t.mutex;
        wait_room (blocked +. (Clock.monotonic () -. t0))
      end
    in
    let blocked = wait_room 0. in
    Queue.push job t.jobs;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    blocked

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.mutex

  let pending t =
    Mutex.lock t.mutex;
    let n = Queue.length t.jobs in
    Mutex.unlock t.mutex;
    n

  let nudge t =
    Mutex.lock t.mutex;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex

  let drain t =
    let rec loop () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.jobs && not t.closed do
        Condition.wait t.not_empty t.mutex
      done;
      if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* closed + empty *)
      else begin
        let job = Queue.pop t.jobs in
        Condition.signal t.not_full;
        Mutex.unlock t.mutex;
        job ();
        loop ()
      end
    in
    loop ()
end

let watchdog_period = 0.02

let run ?walker ?check ?inner ?(trace = false) ?recorder ?(overlap = false)
    ?(send_queue = 4) ?(recv_timeout = 30.) ~plan ~kernel () =
  if not (recv_timeout > 0.) then
    invalid_arg
      "Shm_executor.run: recv_timeout must be positive (use infinity to \
       disable the watchdog)";
  let nprocs = Mapping.nprocs plan.Plan.mapping in
  let shared =
    Protocol.prepare ?walker ?check ?inner ~mode:Protocol.Full ~plan ~kernel
      ~flop_time:0. ~pack_time:0. ()
  in
  let boxes =
    Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Mailbox.create ()))
  in
  let stages =
    if overlap then
      Some (Array.init nprocs (fun _ -> Send_stage.create ~capacity:send_queue))
    else None
  in
  let recorder =
    match recorder with
    | Some rc ->
      if Recorder.nprocs rc <> nprocs then
        invalid_arg "Shm_executor.run: recorder nprocs mismatch";
      rc
    | None -> Recorder.create ~trace ~nprocs ()
  in
  let comms_for rank =
    let log = Recorder.log recorder ~rank in
    let send =
      match stages with
      | None ->
        (* blocking schedule: the "send" of this transport is the local
           mailbox enqueue itself, so its Send span is just that enqueue *)
        fun ~dst ~tag data ->
          let t0 = Recorder.now recorder in
          Mailbox.send boxes.(rank).(dst) ~tag data;
          (* the causal stamp and the Send span's end must be the same
             reading, so critical-path hops land exactly on span ends *)
          let t1 = Recorder.now recorder in
          Recorder.message_sent log ~t:t1 ~dst ~tag
            ~bytes:(8 * Fbuf.length data) ();
          Recorder.span log ~t0 ~t1 Span.Send;
          Recorder.mark log
      | Some stages ->
        let stage = stages.(rank) in
        fun ~dst ~tag data ->
          let t0 = Recorder.now recorder in
          let bytes = 8 * Fbuf.length data in
          let diag () =
            Printf.sprintf
              "Shm_executor: rank %d blocked > %gs handing a %d-byte slab \
               to its send stage (dst=%d, tag=%d) — stalled drainer?"
              rank recv_timeout bytes dst tag
          in
          let box = boxes.(rank).(dst) in
          let blocked =
            Send_stage.submit ~timeout:recv_timeout ~diag stage (fun () ->
                Mailbox.send box ~tag data)
          in
          let t1 = Recorder.now recorder in
          (* causally the message leaves this rank at the hand-off: the
             stage's queueing + mailbox delivery shows up as flight *)
          Recorder.message_sent log ~t:t1 ~dst ~tag ~bytes ();
          (* backpressure from the bounded queue is communication wait,
             not compute: the blocked interval is charged as Wait, only
             the hand-off itself as Send *)
          if blocked > 0. then begin
            Recorder.span log ~t0 ~t1:(t0 +. blocked) Span.Wait;
            Recorder.span log ~t0:(t0 +. blocked) ~t1 Span.Send
          end
          else Recorder.span log ~t0 ~t1 Span.Send;
          Recorder.mark log
    in
    {
      Protocol.send;
      recv =
        (fun ~src ~tag ->
          let t0 = Recorder.now recorder in
          let diag () =
            Printf.sprintf
              "Shm_executor: rank %d blocked > %gs in recv (src=%d, tag=%d) \
               — mis-generated schedule?"
              rank recv_timeout src tag
          in
          let data =
            Mailbox.recv ~timeout:recv_timeout ~diag boxes.(src).(rank) ~tag
          in
          let t1 = Recorder.now recorder in
          Recorder.message_received log ~t:t1 ~posted:t0 ~src ~tag
            ~bytes:(8 * Fbuf.length data) ();
          Recorder.span log ~t0 ~t1 Span.Wait;
          Recorder.mark log;
          data);
      compute = (fun _ -> Recorder.close log Span.Compute);
      pack = (fun _ -> Recorder.close log Span.Pack);
      unpack = (fun _ -> Recorder.close log Span.Unpack);
    }
  in
  let failure = Atomic.make None in
  let stop_watchdog = Atomic.make false in
  (* Condition.wait has no timed variant; a watchdog domain periodically
     wakes every mailbox (and send stage) so blocked receivers and
     senders can notice their deadlines. *)
  let watchdog =
    if recv_timeout < infinity then
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_watchdog) do
               Unix.sleepf watchdog_period;
               Array.iter (Array.iter Mailbox.nudge) boxes;
               Option.iter (Array.iter Send_stage.nudge) stages
             done))
    else None
  in
  let t0 = Clock.monotonic () in
  let domains =
    List.init nprocs (fun rank ->
        Domain.spawn (fun () ->
            let log = Recorder.log recorder ~rank in
            Recorder.mark log;
            (try
               match stages with
               | None -> Protocol.rank_program shared (comms_for rank) rank
               | Some stages ->
                 let stage = stages.(rank) in
                 let sender = Domain.spawn (fun () -> Send_stage.drain stage) in
                 Fun.protect
                   ~finally:(fun () ->
                     Send_stage.close stage;
                     Domain.join sender;
                     (* flushing the stage after the last tile is the
                        tail of the rank's communication *)
                     Recorder.close log Span.Send)
                   (fun () ->
                     Protocol.rank_program ~overlap:true shared
                       (comms_for rank) rank)
             with e -> ignore (Atomic.compare_and_set failure None (Some e)));
            Recorder.finish log))
  in
  List.iter Domain.join domains;
  let wall = Clock.monotonic () -. t0 in
  Atomic.set stop_watchdog true;
  Option.iter Domain.join watchdog;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let t1 = Clock.monotonic () in
  let oracle = Seq_exec.run ~space ~kernel () in
  let seq_wall = Clock.monotonic () -. t1 in
  let grid =
    match shared.Protocol.grid with
    | Some g -> g
    | None -> assert false
  in
  let completion =
    Array.fold_left Float.max 0. (Recorder.rank_finish recorder)
  in
  let spans = Recorder.spans recorder in
  let edges = Recorder.edges recorder in
  let critical_path =
    if edges = [] || spans = [] then 0.
    else
      let report =
        Tiles_obs.Critpath.analyze ~completion ~nprocs ~edges spans
      in
      report.Tiles_obs.Critpath.path_length
  in
  let stats =
    Tiles_obs.Stats.make ~completion ~nprocs
      ~messages:(Recorder.messages recorder)
      ~bytes:(Recorder.bytes recorder)
      ~max_inflight_bytes:(Recorder.max_inflight_bytes recorder)
      ~rank_messages:(Recorder.rank_messages recorder)
      ~rank_bytes:(Recorder.rank_bytes recorder)
      ~critical_path spans
  in
  {
    wall_seconds = wall;
    seq_wall_seconds = seq_wall;
    wall_speedup = seq_wall /. wall;
    grid;
    max_abs_err = Grid.max_abs_diff grid oracle space;
    nprocs;
    messages = Recorder.messages recorder;
    bytes = Recorder.bytes recorder;
    points_computed = Array.fold_left ( + ) 0 shared.Protocol.points_per_rank;
    tiles_executed = Array.fold_left ( + ) 0 shared.Protocol.tiles_per_rank;
    trace = spans;
    edges;
    stats;
  }
