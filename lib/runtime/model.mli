(** Analytic completion-time model in the style of Hodzic–Shang (the
    paper's refs [9, 10]): under the linear schedule [Π = (1,…,1)] the
    program finishes after

      [steps(H) × (tile compute + per-step communication)]

    where the step count comes from the schedule and the per-step
    communication charges pack + send + wire + latency + unpack for the
    aggregated slab messages of one tile. The model ignores boundary-tile
    shrinkage and self-timed slack, so it over-estimates absolute times
    for oblique tilings; its value is ranking tilings and predicting
    where the speedup peaks — the benches compare it against the
    simulator. *)

type estimate = {
  steps : int;             (** wavefront steps, from {!Schedule.steps} *)
  tile_compute : float;    (** seconds per full tile *)
  comm_per_step : float;   (** seconds of communication per step *)
  total : float;           (** predicted completion, seconds *)
  predicted_speedup : float;
}

val slab_cells : Tiles_core.Plan.t -> int
(** Geometric (unclipped) per-tile communication cells, summed over the
    plan's processor directions — the per-step traffic the α-β terms
    charge. Exposed for {!Tiles_tune}'s predictor. *)

val predict : Tiles_core.Plan.t -> net:Tiles_mpisim.Netmodel.t -> estimate

val fields : estimate -> (string * float) list
(** The estimate's externally comparable quantities ([completion_s],
    [speedup]) for the {!Tiles_obs.Residual} report, keyed like
    {!Tiles_obs.Stats.timed_fields}. *)

val best_factor :
  (int -> Tiles_core.Plan.t) -> factors:int list -> net:Tiles_mpisim.Netmodel.t -> int * estimate
(** Scan a factor sweep and return the predicted-optimal factor (plans
    that fail to construct are skipped; raises [Failure] if none
    succeeds). *)
