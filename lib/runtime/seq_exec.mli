(** Reference sequential execution of a kernel over its iteration space in
    lexicographic order — the paper's "original program", both the
    correctness oracle for the distributed executor and the baseline of
    the speedup measurements.

    Three walkers mirror {!Walker.variant}: [Reference] is the original
    per-point loop ([Polyhedron.iter_points] + bounds-checked [Grid]
    accesses), the fast variants enumerate contiguous rows through the
    Fourier–Motzkin projection chain and read taps through precomputed
    flat-index deltas. All variants visit the space in the same
    lexicographic order, so results are bit-for-bit identical. *)

val run :
  ?variant:Walker.variant ->
  ?check:bool ->
  ?inner:int array ->
  space:Tiles_poly.Polyhedron.t ->
  kernel:Kernel.t ->
  unit ->
  Grid.t
(** [variant] defaults to {!Walker.Fastpath}; [check] (default false)
    makes the fast variants validate reads against NaN poisoning (and
    disables the unrolled row bodies so every read is inspected).

    [inner] blocks the fast sequential walk into axis-aligned subtiles
    of the given shape when the kernel's read offsets are componentwise
    nonnegative in the walk's (skewed) coordinates — the condition a
    rectangular schedule needs here, unlike the distributed walker's
    TTIS walk where legality is structural. When the offsets don't
    allow it the walk silently stays unblocked; results are
    bit-identical either way. [Reference] always walks unblocked (it is
    the oracle). *)

val modelled_time :
  space:Tiles_poly.Polyhedron.t -> net:Tiles_mpisim.Netmodel.t -> float
(** Virtual sequential execution time under the cluster's cost model:
    [|J^n| · flop_time]. *)
