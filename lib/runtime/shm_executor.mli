(** Real shared-memory execution of a plan on OCaml 5 domains.

    The paper's abstract machine is message passing over NUMA; this
    backend instantiates the {e same} per-tile protocol ({!Protocol}) with
    one domain per processor and blocking in-memory mailboxes instead of
    the simulator — so the compiled schedule actually runs in parallel on
    the host's cores and its output is compared against the sequential
    oracle like everything else. Wall-clock speedup is measured but
    depends on the host; correctness is the point.

    Two schedules are available. The default is the paper's blocking
    receive → compute → send loop. With [~overlap:true] each rank also
    gets a {!Send_stage}: a bounded queue drained by a dedicated sender
    domain, so packed slabs are handed off and the transfer completes
    while the rank computes its next tile — the real counterpart of the
    simulator's §5 non-blocking [isend] schedule. The message set and
    per-channel order are identical either way, so both schedules (and
    both backends) report the same message/byte counters.

    Every run also drives a {!Tiles_obs.Recorder}: message/byte counters
    are always on, and with [~trace:true] each rank additionally records
    wall-clock {!Tiles_obs.Span.t} values using the same
    compute/pack/send/wait/unpack vocabulary as the simulator, so the two
    backends' traces are directly comparable.

    Use modest process counts (≲ number of cores); each rank is a real
    domain, and the overlapped schedule adds one sender domain per
    rank. *)

exception Recv_timeout of string
(** Raised (with a diagnostic naming the blocked rank, source and tag)
    when a receive blocks longer than [recv_timeout] — the symptom of a
    mis-generated schedule, which would otherwise hang forever. *)

exception Send_timeout of string
(** Raised when handing a slab to a full {!Send_stage} blocks longer than
    the timeout — the symptom of a stalled drainer. *)

type result = {
  wall_seconds : float;       (** parallel wall-clock time *)
  seq_wall_seconds : float;   (** sequential oracle wall-clock time *)
  wall_speedup : float;
  grid : Grid.t;              (** the parallel result *)
  max_abs_err : float;        (** vs the sequential oracle *)
  nprocs : int;
  messages : int;
  bytes : int;                (** total payload bytes sent *)
  points_computed : int;      (** total iterations executed across ranks *)
  tiles_executed : int;
  trace : Tiles_obs.Span.t list;
      (** wall-clock spans, all ranks, time-sorted; [[]] unless [trace] *)
  edges : Tiles_obs.Recorder.edge list;
      (** matched send→recv causal dependencies with wall-clock stamps;
          [[]] unless traced in Retain mode *)
  stats : Tiles_obs.Stats.t;
      (** aggregate per-rank/backend statistics; [critical_path] is the
          causal value when edges were recorded *)
}

(** The blocking tag-matched channel used between each (src, dst) rank
    pair. Exposed for tests. *)
module Mailbox : sig
  type t

  val create : unit -> t

  val send : t -> tag:int -> Tiles_util.Fbuf.t -> unit

  val recv :
    ?timeout:float ->
    ?diag:(unit -> string) ->
    t ->
    tag:int ->
    Tiles_util.Fbuf.t
  (** Blocks until a message with [tag] is available. A drained per-tag
      queue is removed from the table, so the table stays bounded by the
      number of {e pending} tags rather than growing with every tag ever
      seen. [timeout] (seconds) defaults to [infinity] — wait forever;
      with a finite timeout, raises {!Recv_timeout} with [diag ()] once
      the deadline passes — provided something (e.g. the run's watchdog)
      wakes the condition periodically. A non-positive (or NaN) timeout
      raises [Invalid_argument]: [0.] used to silently mean "wait
      forever", disabling the watchdog exactly when the caller asked for
      the tightest deadline. *)

  val tag_count : t -> int
  (** Number of per-tag queues currently in the table (for leak tests). *)

  val nudge : t -> unit
  (** Wake all waiters so they can re-check their deadlines. *)
end

(** The per-rank asynchronous send stage of the overlapped schedule: a
    bounded queue of delivery thunks drained by a dedicated domain.
    Exposed for tests. *)
module Send_stage : sig
  type t

  val create : capacity:int -> t
  (** Raises [Invalid_argument] unless [capacity >= 1]. *)

  val capacity : t -> int

  val submit : ?timeout:float -> ?diag:(unit -> string) -> t -> (unit -> unit) -> float
  (** Enqueue a delivery thunk, blocking while the queue is at capacity;
      returns the seconds spent blocked so the caller can charge
      backpressure as communication wait. [timeout] follows the
      {!Mailbox.recv} contract: default [infinity], finite deadlines
      raise {!Send_timeout} with [diag ()] (a periodic {!nudge} is needed
      for the deadline to be noticed), non-positive raises
      [Invalid_argument]. Raises [Invalid_argument] if the stage is
      {!close}d. *)

  val drain : t -> unit
  (** The drainer loop: runs submitted thunks in FIFO order until the
      stage is {!close}d {e and} empty. Run this in the sender domain. *)

  val close : t -> unit
  (** No further submits; {!drain} returns once the queue empties. *)

  val pending : t -> int
  (** Thunks currently queued (for tests). *)

  val nudge : t -> unit
  (** Wake blocked submitters so they can re-check their deadlines. *)
end

val run :
  ?walker:Walker.variant ->
  ?check:bool ->
  ?inner:int array ->
  ?trace:bool ->
  ?recorder:Tiles_obs.Recorder.t ->
  ?overlap:bool ->
  ?send_queue:int ->
  ?recv_timeout:float ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  unit ->
  result
(** Always Full mode (the whole point is the real data flow).
    [walker]/[check]/[inner] select the tile-execution engine, its
    NaN-read validation and the optional cache-resident subtile shape
    exactly as in {!Protocol.prepare} (the sequential oracle always
    runs unblocked, so the comparison crosses schedules). [trace]
    (default false) records per-rank wall-clock spans. [recorder]
    supplies a caller-created recorder instead (matching [nprocs]
    required; [trace] is then the recorder's flag) — e.g. a
    [~mode:Streaming] one to keep long traced runs at O(nprocs) memory,
    or a labelled one so a serve job's trace is attributable. [overlap] (default
    false) runs the §5 overlapped schedule: receives pre-posted per tile
    ({!Protocol.rank_program}), sends handed to a per-rank bounded
    {!Send_stage} of [send_queue] slots (default 4) and completed by a
    sender domain while the rank computes on. Enqueue time blocked on a
    full stage is traced as [Wait], the hand-off as [Send].
    [recv_timeout] (default 30 seconds) bounds how long any receive — or,
    overlapped, any hand-off to a full send stage — may block before
    {!Recv_timeout} (resp. {!Send_timeout}) is raised; pass [infinity] to
    wait forever (this also disables the watchdog domain). Raises
    [Invalid_argument] on a non-positive [recv_timeout] or [send_queue],
    and like {!Protocol.prepare}. *)
