(** Real shared-memory execution of a plan on OCaml 5 domains.

    The paper's abstract machine is message passing over NUMA; this
    backend instantiates the {e same} per-tile protocol ({!Protocol}) with
    one domain per processor and blocking in-memory mailboxes instead of
    the simulator — so the compiled schedule actually runs in parallel on
    the host's cores and its output is compared against the sequential
    oracle like everything else. Wall-clock speedup is measured but
    depends on the host; correctness is the point.

    Every run also drives a {!Tiles_obs.Recorder}: message/byte counters
    are always on, and with [~trace:true] each rank additionally records
    wall-clock {!Tiles_obs.Span.t} values using the same
    compute/pack/send/wait/unpack vocabulary as the simulator, so the two
    backends' traces are directly comparable.

    Use modest process counts (≲ number of cores); each rank is a real
    domain. *)

exception Recv_timeout of string
(** Raised (with a diagnostic naming the blocked rank, source and tag)
    when a receive blocks longer than [recv_timeout] — the symptom of a
    mis-generated schedule, which would otherwise hang forever. *)

type result = {
  wall_seconds : float;       (** parallel wall-clock time *)
  seq_wall_seconds : float;   (** sequential oracle wall-clock time *)
  wall_speedup : float;
  grid : Grid.t;              (** the parallel result *)
  max_abs_err : float;        (** vs the sequential oracle *)
  nprocs : int;
  messages : int;
  bytes : int;                (** total payload bytes sent *)
  trace : Tiles_obs.Span.t list;
      (** wall-clock spans, all ranks, time-sorted; [[]] unless [trace] *)
  stats : Tiles_obs.Stats.t;  (** aggregate per-rank/backend statistics *)
}

(** The blocking tag-matched channel used between each (src, dst) rank
    pair. Exposed for tests. *)
module Mailbox : sig
  type t

  val create : unit -> t

  val send : t -> tag:int -> float array -> unit

  val recv :
    ?timeout:float -> ?diag:(unit -> string) -> t -> tag:int -> float array
  (** Blocks until a message with [tag] is available. A drained per-tag
      queue is removed from the table, so the table stays bounded by the
      number of {e pending} tags rather than growing with every tag ever
      seen. With a finite positive [timeout] (seconds), raises
      {!Recv_timeout} with [diag ()] once the deadline passes — provided
      something (e.g. the run's watchdog) wakes the condition
      periodically. *)

  val tag_count : t -> int
  (** Number of per-tag queues currently in the table (for leak tests). *)

  val nudge : t -> unit
  (** Wake all waiters so they can re-check their deadlines. *)
end

val run :
  ?trace:bool ->
  ?recv_timeout:float ->
  plan:Tiles_core.Plan.t ->
  kernel:Kernel.t ->
  unit ->
  result
(** Always Full mode (the whole point is the real data flow). [trace]
    (default false) records per-rank wall-clock spans. [recv_timeout]
    (default 30 seconds) bounds how long any receive may block before
    {!Recv_timeout} is raised; pass [0.] or [infinity] to wait forever.
    Raises like {!Protocol.prepare}. *)
