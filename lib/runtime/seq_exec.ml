module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module FM = Tiles_poly.Fourier_motzkin
module Vec = Tiles_util.Vec
module A1 = Bigarray.Array1

(* The oracle deliberately computes on a boxed [float array] (addressed
   through [Grid.index]) and publishes the result via [Grid.load_boxed]:
   it shares no storage code with the fast paths, so a bug in the
   Bigarray migration cannot cancel out of a reference comparison. *)
let reference_run ~space ~kernel =
  let n = Polyhedron.dim space in
  let grid = Grid.create space ~width:kernel.Kernel.width in
  let data = Array.make (Grid.slots grid) Float.nan in
  let reads = Array.of_list kernel.Kernel.reads in
  let src = Array.make n 0 in
  let out = Array.make kernel.Kernel.width 0. in
  Polyhedron.iter_points space (fun j ->
      let read i field =
        let d = reads.(i) in
        for k = 0 to n - 1 do
          src.(k) <- j.(k) - d.(k)
        done;
        if Polyhedron.member space src then data.(Grid.index grid src field)
        else kernel.Kernel.boundary src field
      in
      kernel.Kernel.compute ~read ~j ~out;
      for f = 0 to kernel.Kernel.width - 1 do
        data.(Grid.index grid j f) <- out.(f)
      done);
  Grid.load_boxed grid data;
  grid

(* Absolute [min, max] of each coordinate over the space: project the
   constraint system with coordinate k rotated to the front, whose
   level-0 bounds then need no prefix. Drives the subtile grid of the
   blocked sequential walk. *)
let bounding_box ~space =
  let n = Polyhedron.dim space in
  let cs = Polyhedron.constraints space in
  Array.init n (fun k ->
      let rotate c =
        let coeffs =
          Array.init n (fun i ->
              Constr.coeff c (if i = 0 then k else if i <= k then i - 1 else i))
        in
        Constr.make ~coeffs ~const:(Constr.const c)
      in
      let proj = FM.project (List.map rotate cs) ~dim:n in
      match FM.bounds proj ~var:0 ~prefix:(Array.make n 0) with
      | Some (lo, hi) -> (lo, hi)
      | None -> invalid_arg "Seq_exec: empty iteration space")

(* The sequential walk runs in the kernel's (skewed) coordinates, where
   dependences are lexicographic-positive but not necessarily
   componentwise nonnegative — the condition a rectangular subtile
   schedule needs. Blocking is therefore applied only when every read
   offset is componentwise >= 0; otherwise the walk silently stays
   unblocked (results are bit-identical either way — blocking is purely
   a schedule choice). *)
let blockable ~kernel =
  List.for_all
    (fun d -> Array.for_all (fun x -> x >= 0) d)
    kernel.Kernel.reads

(* Strength-reduced sequential walk: rows of the iteration space are
   enumerated through the Fourier–Motzkin projection chain (the innermost
   level is the original system, so whole rows are members); the grid's
   dense row-major box makes each tap's flat-index delta a global
   constant, so interior rows read with pure index arithmetic. With
   [inner] the walk visits axis-aligned subtiles of the bounding box in
   lexicographic order, clipping each level's range to the subtile —
   exact for an axis-aligned clip, like the distributed walker's. *)
let fast_run ~variant ~check ~inner ~space ~kernel =
  let n = Polyhedron.dim space in
  let width = kernel.Kernel.width in
  let grid = Grid.create space ~width in
  let gdata = Grid.data grid in
  let gstr = Grid.strides grid in
  let reads = Array.of_list kernel.Kernel.reads in
  let nrd = Array.length reads in
  let member = Walker.compiled_member space in
  (* flat-index (slot) delta of tap i: constant over the whole box *)
  let deltas =
    Array.map
      (fun d ->
        let acc = ref 0 in
        for k = 0 to n - 1 do
          acc := !acc - (gstr.(k) * d.(k))
        done;
        !acc)
      reads
  in
  let proj = FM.project (Polyhedron.constraints space) ~dim:n in
  let j = Array.make n 0 in
  let jend = Array.make n 0 in
  let src = Array.make n 0 in
  let out = Array.make width 0. in
  (* the sequential walk has no LDS, so taps are *slot* deltas with the
     field folded in — a different ABI from the walker's cell deltas;
     the native row kernels therefore don't apply here and [Native]
     runs the same row bodies as [Fastpath] *)
  let row_body =
    if
      (variant = Walker.Fastpath || variant = Walker.Native) && not check
    then kernel.Kernel.row
    else None
  in
  let uses_j = kernel.Kernel.uses_j in
  let nan_error i =
    failwith
      (Printf.sprintf
         "Seq_exec: read of uninitialised grid cell at iteration %s read %d"
         (Vec.to_string j) i)
  in
  let do_row len =
    let g0 = Grid.index grid j 0 in
    Array.blit j 0 jend 0 n;
    jend.(n - 1) <- j.(n - 1) + len - 1;
    let interior = ref true in
    let i = ref 0 in
    while !interior && !i < nrd do
      let d = reads.(!i) in
      for k = 0 to n - 1 do
        src.(k) <- j.(k) - d.(k)
      done;
      if not (member src) then interior := false
      else begin
        for k = 0 to n - 1 do
          src.(k) <- jend.(k) - d.(k)
        done;
        if not (member src) then interior := false
      end;
      incr i
    done;
    if !interior && row_body <> None then
      (* width = 1 (enforced by Kernel.make), so slots = cells *)
      (Option.get row_body) ~la:gdata ~dst:g0 ~taps:deltas ~len
    else if !interior then begin
      let cur = ref g0 in
      let read i field =
        let v = A1.unsafe_get gdata (!cur + deltas.(i) + field) in
        if check && Float.is_nan v then nan_error i;
        v
      in
      for s = 0 to len - 1 do
        if uses_j || check then j.(n - 1) <- jend.(n - 1) - len + 1 + s;
        kernel.Kernel.compute ~read ~j ~out;
        for f = 0 to width - 1 do
          A1.unsafe_set gdata (!cur + f) (Array.unsafe_get out f)
        done;
        cur := !cur + width
      done;
      j.(n - 1) <- jend.(n - 1) - len + 1
    end
    else begin
      let cur = ref g0 in
      let read i field =
        let d = reads.(i) in
        for k = 0 to n - 1 do
          src.(k) <- j.(k) - d.(k)
        done;
        if member src then begin
          let v = gdata.{!cur + deltas.(i) + field} in
          if check && Float.is_nan v then nan_error i;
          v
        end
        else kernel.Kernel.boundary src field
      in
      let start = j.(n - 1) in
      for s = 0 to len - 1 do
        j.(n - 1) <- start + s;
        kernel.Kernel.compute ~read ~j ~out;
        for f = 0 to width - 1 do
          gdata.{!cur + f} <- out.(f)
        done;
        cur := !cur + width
      done;
      j.(n - 1) <- start
    end
  in
  let rec go clip k =
    match FM.bounds proj ~var:k ~prefix:j with
    | None -> ()
    | Some (blo, bhi) ->
      let blo, bhi =
        match clip with
        | None -> (blo, bhi)
        | Some (clo, chi) -> (max blo clo.(k), min bhi chi.(k))
      in
      if blo <= bhi then
        if k = n - 1 then begin
          j.(k) <- blo;
          do_row (bhi - blo + 1)
        end
        else
          for x = blo to bhi do
            j.(k) <- x;
            go clip (k + 1)
          done
  in
  (match inner with
  | Some b when blockable ~kernel ->
    let box = bounding_box ~space in
    let clo = Array.make n 0 and chi = Array.make n 0 in
    let rec blocks k =
      if k = n then go (Some (clo, chi)) 0
      else begin
        let lo0, hi0 = box.(k) in
        let bk = max 1 b.(k) in
        let x = ref lo0 in
        while !x <= hi0 do
          clo.(k) <- !x;
          chi.(k) <- min (!x + bk - 1) hi0;
          blocks (k + 1);
          x := !x + bk
        done
      end
    in
    blocks 0
  | _ -> go None 0);
  grid

let run ?(variant = Walker.Fastpath) ?(check = false) ?inner ~space ~kernel ()
    =
  if Polyhedron.dim space <> kernel.Kernel.dim then
    invalid_arg "Seq_exec.run: dimension";
  (match inner with
  | Some b when Array.length b <> Polyhedron.dim space ->
    invalid_arg "Seq_exec.run: inner shape dimension mismatch"
  | _ -> ());
  match variant with
  | Walker.Reference -> reference_run ~space ~kernel
  | Walker.Strength_reduced | Walker.Fastpath | Walker.Native ->
    fast_run ~variant ~check ~inner ~space ~kernel

let modelled_time ~space ~net =
  float_of_int (Polyhedron.count_points space)
  *. net.Tiles_mpisim.Netmodel.flop_time
