module Vec = Tiles_util.Vec
module Fbuf = Tiles_util.Fbuf
module Intmat = Tiles_linalg.Intmat
module Ratmat = Tiles_linalg.Ratmat
module Ckernel = Tiles_codegen.Ckernel

type row_body = la:Fbuf.t -> dst:int -> taps:int array -> len:int -> unit

type t = {
  name : string;
  dim : int;
  width : int;
  uses_j : bool;
  reads : Vec.t list;
  boundary : Vec.t -> int -> float;
  compute : read:(int -> int -> float) -> j:Vec.t -> out:float array -> unit;
  row : row_body option;
  ckernel : Ckernel.t option;
  (* cumulative skew applied via [skewed]; identity for unskewed kernels.
     The native emitter needs it to recover original coordinates. *)
  skew : Intmat.t;
}

let deps t = Tiles_loop.Dependence.of_vectors t.reads

let make ~name ~dim ?(width = 1) ?(uses_j = true) ?row ?ckernel ~reads
    ~boundary ~compute () =
  if width <= 0 then invalid_arg "Kernel.make: width";
  if reads = [] then invalid_arg "Kernel.make: no reads";
  if List.exists (fun r -> Vec.dim r <> dim) reads then
    invalid_arg "Kernel.make: read offset dimension mismatch";
  if row <> None && width <> 1 then
    invalid_arg "Kernel.make: row bodies require width = 1";
  (match ckernel with
  | Some ck ->
    if ck.Ckernel.width <> width then
      invalid_arg "Kernel.make: C kernel width mismatch";
    if ck.Ckernel.nreads <> List.length reads then
      invalid_arg "Kernel.make: C kernel nreads mismatch"
  | None -> ());
  {
    name; dim; width; uses_j; reads; boundary; compute; row; ckernel;
    skew = Intmat.identity dim;
  }

let skewed k t =
  if not (Intmat.is_unimodular t) then invalid_arg "Kernel.skewed: not unimodular";
  let tinv = Ratmat.to_intmat_exn (Ratmat.inverse (Ratmat.of_intmat t)) in
  {
    k with
    name = k.name ^ "-skewed";
    reads = List.map (Intmat.apply t) k.reads;
    boundary = (fun j field -> k.boundary (Intmat.apply tinv j) field);
    skew = Intmat.mul t k.skew;
    (* compute receives the skewed j; kernels that need original
       coordinates (e.g. ADI's coefficient array A[i,j]) must be built via
       [skewed] from a kernel that uses original coordinates — so unskew
       here too. Kernels that declare [uses_j = false] never look at j, so
       the per-point unskew (an Intmat.apply allocation) is skipped. *)
    compute =
      (if k.uses_j then fun ~read ~j ~out ->
         k.compute ~read ~j:(Intmat.apply tinv j) ~out
       else k.compute);
  }
