(** Self-describing run metadata embedded in exported artifacts.

    CI uploads Chrome traces, [BENCH_*.json] files and perf baselines;
    once downloaded they lose their provenance unless they carry it.
    Every exporter therefore embeds one of these records under a
    [metadata] key: tool version, app, tiling variant, grid/tile
    parameters, process count, backend and network-model name. *)

val version : string
(** The tilec / bench tool version (single source of truth; the CLI's
    [--version] reports the same string). *)

type t = {
  app : string;        (** sor | jacobi | adi | … *)
  variant : string;    (** tiling variant (rect, nonrect, nr1…) *)
  size1 : int;         (** time-like extent (M or T) *)
  size2 : int;         (** spatial extent (N) *)
  tile : int * int * int;  (** tile factors x, y, z *)
  nprocs : int;
  backend : string;    (** sim | shm *)
  overlap : bool;      (** §5 overlapped schedule *)
  netmodel : string;   (** network-model name, "-" for wall-clock runs *)
  walker : string;     (** walker variant used (reference | strength |
                           fast | native); "fast" for pre-1.3 files *)
  walker_fallback : string option;
      (** when a native walker was requested but could not be used
          (no C compiler, no C kernel body, check mode), the reason it
          fell back to the fast path; [None] otherwise *)
  inner : int array option;
      (** the walker's cache-resident inner subtile shape; [None] = the
          unblocked walk (and for pre-1.4 files, which had no inner
          blocking) *)
  job_id : string option;
      (** the serve-daemon job this run belongs to; [None] for
          standalone runs *)
  queued_s : float;
      (** seconds the job waited for admission before running; [0.] for
          standalone runs *)
}

val make :
  app:string ->
  variant:string ->
  size1:int ->
  size2:int ->
  tile:int * int * int ->
  nprocs:int ->
  backend:string ->
  ?overlap:bool ->
  netmodel:string ->
  ?walker:string ->
  ?walker_fallback:string ->
  ?inner:int array ->
  ?job_id:string ->
  ?queued_s:float ->
  unit ->
  t
(** [overlap] defaults to false; files written before the field existed
    parse as blocking runs. [walker] defaults to ["fast"] and is omitted
    from {!to_json} at that default; [walker_fallback] / [inner] /
    [job_id] / [queued_s] likewise default to [None] / [None] / [None] /
    [0.] when absent, so walker-, inner- and serve-unaware artifacts
    stay byte-identical. *)

val to_json : t -> Tiles_util.Json.t
(** Flat object including a [tilec_version] field. *)

val of_json : Tiles_util.Json.t -> (t, string) result
