(** The unified activity-span vocabulary shared by every execution
    backend. A span is one half-open interval [t0, t1) on one rank's
    timeline, tagged with what the rank was doing. The discrete-event
    simulator produces spans in virtual seconds; the shared-memory
    executor produces them in monotonic wall-clock seconds — both feed
    the same exporters ({!Chrome}, {!Stats}) and the same timeline
    renderer, which is what makes simulated and real runs directly
    comparable. *)

type kind =
  | Compute  (** tile-point arithmetic *)
  | Pack     (** gathering a slab into a send buffer *)
  | Send
      (** send overhead / wire occupancy on the sender. On the shm
          backend's blocking schedule the mailbox enqueue is the send for
          that transport; on its overlapped schedule this is the hand-off
          to the bounded send stage. *)
  | Wait
      (** blocked on communication: in a receive before the message is
          available, or (overlapped shm) on a full send stage before a
          slot frees — backpressure is charged here, not hidden. *)
  | Unpack   (** receive overhead + scattering a buffer into the LDS *)

type t = {
  rank : int;
  t0 : float;
  t1 : float;
  kind : kind;
}

val kind_name : kind -> string
(** Lower-case tag used in exported traces ("compute", "pack", …). *)

val all_kinds : kind list
(** In display order: compute, pack, send, wait, unpack. *)

val duration : t -> float

val compare_time : t -> t -> int
(** Order by [t0], then rank, then [t1] — chronological merge order. *)

val sort : t list -> t list
(** Sort a trace with {!compare_time}. *)

val by_rank : nprocs:int -> t list -> t list array
(** Split a trace into per-rank chronological timelines. Raises
    [Invalid_argument] if a span's rank is outside [0, nprocs). *)
