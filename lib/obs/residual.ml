module Json = Tiles_util.Json

type entry = {
  label : string;
  source : string;
  field : string;
  predicted : float;
  observed : float;
}

let rel_error e =
  if e.observed <> 0. then (e.predicted -. e.observed) /. e.observed
  else if e.predicted = 0. then 0.
  else if e.predicted > 0. then infinity
  else neg_infinity

type calibration = {
  source : string;
  count : int;
  mean_abs_rel : float;
  mean_rel : float;
  max_abs_rel : float;
}

let calibrate (entries : entry list) =
  let sources =
    List.fold_left
      (fun acc (e : entry) ->
        if List.mem e.source acc then acc else e.source :: acc)
      [] entries
    |> List.rev
  in
  List.map
    (fun source ->
      let es = List.filter (fun (e : entry) -> e.source = source) entries in
      let n = float_of_int (List.length es) in
      let sum (f : entry -> float) = List.fold_left (fun a e -> a +. f e) 0. es in
      {
        source;
        count = List.length es;
        mean_abs_rel = sum (fun e -> Float.abs (rel_error e)) /. n;
        mean_rel = sum rel_error /. n;
        max_abs_rel =
          List.fold_left (fun a e -> Float.max a (Float.abs (rel_error e))) 0. es;
      })
    sources

let entry_json e =
  Json.Obj
    [
      ("label", Json.Str e.label);
      ("source", Json.Str e.source);
      ("field", Json.Str e.field);
      ("predicted", Json.Float e.predicted);
      ("observed", Json.Float e.observed);
      ("rel_error", Json.Float (rel_error e));
    ]

let calibration_json c =
  Json.Obj
    [
      ("source", Json.Str c.source);
      ("count", Json.Int c.count);
      ("mean_abs_rel_error", Json.Float c.mean_abs_rel);
      ("mean_rel_error", Json.Float c.mean_rel);
      ("max_abs_rel_error", Json.Float c.max_abs_rel);
    ]

let to_json entries =
  Json.Obj
    [
      ("entries", Json.List (List.map entry_json entries));
      ("calibration", Json.List (List.map calibration_json (calibrate entries)));
    ]

let report entries =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%-28s %-18s %-18s %12s %12s %8s\n" "config" "source" "field" "predicted"
    "observed" "err";
  List.iter
    (fun e ->
      pf "%-28s %-18s %-18s %12.6g %12.6g %+7.1f%%\n" e.label e.source e.field
        e.predicted e.observed
        (100. *. rel_error e))
    entries;
  pf "calibration (per source):\n";
  List.iter
    (fun c ->
      pf "  %-18s n=%-3d mean |err| %6.1f%%  bias %+6.1f%%  max |err| %6.1f%%\n"
        c.source c.count
        (100. *. c.mean_abs_rel)
        (100. *. c.mean_rel)
        (100. *. c.max_abs_rel))
    (calibrate entries);
  Buffer.contents buf
