(** Streaming summaries of repeated measurements.

    One {!t} accumulates samples of a single non-negative quantity
    (seconds, ratios, counts) in O(1) space: Welford mean/variance,
    min/max, and a small fixed-bucket geometric histogram from which
    p50/p90/p99 are estimated. The bench harness and [tilec perf] fold
    every timed field of N repeated runs into one of these, so the perf
    trajectory records distributions instead of point samples.

    Histogram resolution: buckets grow geometrically by ~5% per step
    from 1 ns up, so a percentile estimate is within ±2.5% of the true
    sample value — far below the run-to-run noise it is meant to
    bound. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Fold one sample. NaN is rejected (tallied in {!nans}, never folded —
    one NaN would otherwise poison the mean and freeze min/max).
    Negative and infinite samples are counted in mean/stddev/min/max but
    clamped to the lowest / highest bucket for the percentile
    histogram. *)

val count : t -> int
(** Samples folded in — excludes rejected NaNs. *)

val nans : t -> int
(** NaN samples rejected by {!add}; a nonzero value flags a measurement
    bug upstream. *)

(** Immutable snapshot of a metric — the value stored in baselines. *)
type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (0 when count < 2) *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : t -> summary
(** All-zero summary when no samples were added (percentiles included:
    an empty metric summarises to 0, never to the empty min/max
    sentinels). Finite samples always produce a finite summary. *)

val of_values : float list -> summary

val summary_to_json : summary -> Tiles_util.Json.t

val summary_of_json : Tiles_util.Json.t -> (summary, string) result
(** Inverse of {!summary_to_json}; [Error] names the missing or
    ill-typed field. *)
