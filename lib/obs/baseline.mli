(** Persistent performance baselines with a noise-aware regression gate.

    A baseline freezes one run configuration's observed behaviour: the
    run metadata ({!Runmeta.t}), the deterministic protocol counters
    (messages, bytes, max in-flight bytes) and the distribution of every
    timed field over N repeats ({!Stats.dist}). Baselines are committed
    to the repository ([perf/baselines/*.json]) and compared in CI by
    [tilec perf --check]: the build fails when a timed field regresses
    beyond both a relative threshold {e and} k·stddev of the recorded
    noise, or when any exact counter changes at all (the simulator is
    deterministic, so a counter drift is a protocol change, not noise). *)

val schema_version : int
(** Current schema = 1. {!load} refuses newer schemas with an error
    rather than misreading them. *)

type counters = {
  messages : int;
  bytes : int;
  max_inflight_bytes : int;
}

type t = {
  schema : int;
  meta : Runmeta.t;
  counters : counters;
  timings : Stats.dist;
}

val make : meta:Runmeta.t -> stats:Stats.t -> timings:Stats.dist -> t
(** Counters are taken from [stats]; [timings] from
    {!Stats.distributions} over the repeated runs. *)

val to_json : t -> Tiles_util.Json.t

val of_json : Tiles_util.Json.t -> (t, string) result

val save : t -> path:string -> unit

val load : path:string -> (t, string) result
(** Parse + decode; parse errors carry the file's line/column. *)

val default_path : dir:string -> meta:Runmeta.t -> string
(** [dir/<app>-<variant>-<backend>.json], with an [-overlap] suffix after
    the backend for overlapped runs — the layout the CI gate and the
    README document. A blocked walker adds an [-inner-BxBxB] suffix and a
    non-default network model id is appended too (sanitised to
    [[-a-zA-Z0-9]]), so e.g. a [--net contended:snd=2] or [--inner 4,8,8]
    baseline lives in its own file and [perf --check] never compares
    timings across network models or across blocked/unblocked walks
    (the metadata comparison rejects the pairing as well). *)

(** {2 Comparison} *)

type delta = {
  field : string;
  base_mean : float;
  cur_mean : float;
  rel : float;    (** (cur − base) / base *)
  noise : float;  (** k·max(base.stddev, cur.stddev) — the tolerance *)
}

type verdict = {
  meta_mismatch : string list;
      (** differing metadata fields — comparing apples to oranges fails *)
  counter_mismatch : (string * int * int) list;  (** field, base, cur *)
  regressions : delta list;   (** slower beyond threshold and noise *)
  improvements : delta list;  (** faster beyond threshold and noise *)
  checked : int;              (** timed fields compared *)
  ok : bool;  (** no meta/counter mismatch and no regression *)
}

val compare :
  ?rel_threshold:float ->
  ?k_sigma:float ->
  ?exact:string list ->
  baseline:t ->
  t ->
  verdict
(** A timed field regresses when [cur.mean > base.mean] by more than
    [rel_threshold] (default 0.05) relatively {e and} by more than
    [k_sigma] (default 3) × the larger stddev absolutely — so
    deterministic runs gate on the threshold alone while noisy runs
    get slack proportional to their recorded spread. [exact] names the
    counters that must match with zero tolerance (default all three;
    pass [["messages"; "bytes"]] for wall-clock backends whose
    in-flight high-water mark depends on thread interleaving). *)

val report : verdict -> string
(** One line per finding, then PASS/FAIL. *)

val verdict_to_json : verdict -> Tiles_util.Json.t
