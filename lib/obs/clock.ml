let monotonic () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
