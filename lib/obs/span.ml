type kind = Compute | Pack | Send | Wait | Unpack

type t = {
  rank : int;
  t0 : float;
  t1 : float;
  kind : kind;
}

let kind_name = function
  | Compute -> "compute"
  | Pack -> "pack"
  | Send -> "send"
  | Wait -> "wait"
  | Unpack -> "unpack"

let all_kinds = [ Compute; Pack; Send; Wait; Unpack ]

let duration s = s.t1 -. s.t0

let compare_time a b =
  match Float.compare a.t0 b.t0 with
  | 0 -> (match compare a.rank b.rank with 0 -> Float.compare a.t1 b.t1 | c -> c)
  | c -> c

let sort spans = List.sort compare_time spans

let by_rank ~nprocs spans =
  let buckets = Array.make nprocs [] in
  List.iter
    (fun s ->
      if s.rank < 0 || s.rank >= nprocs then
        invalid_arg "Span.by_rank: rank out of range";
      buckets.(s.rank) <- s :: buckets.(s.rank))
    spans;
  Array.map (fun l -> List.sort compare_time (List.rev l)) buckets
