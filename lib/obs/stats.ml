module Json = Tiles_util.Json

type rank = {
  rank : int;
  compute : float;
  pack : float;
  send : float;
  wait : float;
  unpack : float;
  busy : float;
  busy_fraction : float;
  messages : int;
  bytes : int;
}

type t = {
  nprocs : int;
  completion : float;
  ranks : rank array;
  messages : int;
  bytes : int;
  max_inflight_bytes : int;
  total_compute : float;
  total_comm : float;
  comm_compute_ratio : float;
  mean_busy_fraction : float;
  max_rank_busy : float;
      (* the old "critical path": max per-rank busy time, a causality-
         blind lower bound *)
  critical_path : float;
      (* the true causal critical path (Critpath over message edges);
         0 when no edges were available to compute it *)
  queue_seconds : float;
      (* total NIC/uplink queueing charged by a contended network model;
         0 under alpha-beta and on real (shm) runs *)
}

let of_sums ~completion ~nprocs ~messages ~bytes ~max_inflight_bytes
    ~rank_messages ~rank_bytes ~critical_path ~queue_seconds sums =
  let per_rank arr r =
    match arr with
    | Some a when Array.length a = nprocs -> a.(r)
    | Some _ -> invalid_arg "Stats: per-rank counter length"
    | None -> 0
  in
  let ranks =
    Array.init nprocs (fun r ->
        let compute = sums.(r).(0) and pack = sums.(r).(1) in
        let send = sums.(r).(2) and wait = sums.(r).(3) in
        let unpack = sums.(r).(4) in
        let busy = compute +. pack +. send +. unpack in
        {
          rank = r;
          compute;
          pack;
          send;
          wait;
          unpack;
          busy;
          busy_fraction = (if completion > 0. then busy /. completion else 0.);
          messages = per_rank rank_messages r;
          bytes = per_rank rank_bytes r;
        })
  in
  let total f = Array.fold_left (fun acc r -> acc +. f r) 0. ranks in
  let total_compute = total (fun r -> r.compute) in
  let total_comm = total (fun r -> r.pack +. r.send +. r.wait +. r.unpack) in
  {
    nprocs;
    completion;
    ranks;
    messages;
    bytes;
    max_inflight_bytes;
    total_compute;
    total_comm;
    comm_compute_ratio =
      (if total_compute > 0. then total_comm /. total_compute else 0.);
    mean_busy_fraction =
      total (fun r -> r.busy_fraction) /. float_of_int nprocs;
    max_rank_busy =
      Array.fold_left (fun acc r -> Float.max acc r.busy) 0. ranks;
    critical_path;
    queue_seconds;
  }

let make ~completion ~nprocs ~messages ~bytes ~max_inflight_bytes
    ?rank_messages ?rank_bytes ?(critical_path = 0.) ?(queue_seconds = 0.)
    spans =
  if nprocs <= 0 then invalid_arg "Stats.make: nprocs";
  let sums = Array.make_matrix nprocs 5 0. in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.rank < 0 || s.Span.rank >= nprocs then
        invalid_arg "Stats.make: span rank out of range";
      let slot =
        match s.Span.kind with
        | Span.Compute -> 0
        | Span.Pack -> 1
        | Span.Send -> 2
        | Span.Wait -> 3
        | Span.Unpack -> 4
      in
      sums.(s.Span.rank).(slot) <-
        sums.(s.Span.rank).(slot) +. Span.duration s)
    spans;
  of_sums ~completion ~nprocs ~messages ~bytes ~max_inflight_bytes
    ~rank_messages ~rank_bytes ~critical_path ~queue_seconds sums

let of_kind_seconds ~completion ~nprocs ~messages ~bytes ~max_inflight_bytes
    ?rank_messages ?rank_bytes ?(critical_path = 0.) ?(queue_seconds = 0.)
    kind_seconds =
  if nprocs <= 0 then invalid_arg "Stats.of_kind_seconds: nprocs";
  if Array.length kind_seconds <> nprocs then
    invalid_arg "Stats.of_kind_seconds: kind_seconds length";
  Array.iter
    (fun row ->
      if Array.length row <> 5 then
        invalid_arg "Stats.of_kind_seconds: kind row length")
    kind_seconds;
  of_sums ~completion ~nprocs ~messages ~bytes ~max_inflight_bytes
    ~rank_messages ~rank_bytes ~critical_path ~queue_seconds kind_seconds

let rank_json r =
  Json.Obj
    [
      ("rank", Json.Int r.rank);
      ("compute_s", Json.Float r.compute);
      ("pack_s", Json.Float r.pack);
      ("send_s", Json.Float r.send);
      ("wait_s", Json.Float r.wait);
      ("unpack_s", Json.Float r.unpack);
      ("busy_s", Json.Float r.busy);
      ("busy_fraction", Json.Float r.busy_fraction);
      ("messages", Json.Int r.messages);
      ("bytes", Json.Int r.bytes);
    ]

let to_json t =
  Json.Obj
    ([
      ("nprocs", Json.Int t.nprocs);
      ("completion_s", Json.Float t.completion);
      ("messages", Json.Int t.messages);
      ("bytes", Json.Int t.bytes);
      ("max_inflight_bytes", Json.Int t.max_inflight_bytes);
      ("total_compute_s", Json.Float t.total_compute);
      ("total_comm_s", Json.Float t.total_comm);
      ("comm_compute_ratio", Json.Float t.comm_compute_ratio);
      ("mean_busy_fraction", Json.Float t.mean_busy_fraction);
      ("max_rank_busy_s", Json.Float t.max_rank_busy);
      ("critical_path_s", Json.Float t.critical_path);
    ]
    (* only written when a contended model charged queueing, so
       alpha-beta artifacts keep the pre-contention schema *)
    @ (if t.queue_seconds > 0. then
         [ ("nic_queue_s", Json.Float t.queue_seconds) ]
       else [])
    @ [ ("ranks", Json.List (Array.to_list (Array.map rank_json t.ranks))) ])

(* ---------------- distributions over repeated runs ---------------- *)

let timed_fields t =
  [
    ("completion_s", t.completion);
    ("total_compute_s", t.total_compute);
    ("total_comm_s", t.total_comm);
    ("comm_compute_ratio", t.comm_compute_ratio);
    ("mean_busy_fraction", t.mean_busy_fraction);
    ("max_rank_busy_s", t.max_rank_busy);
    ("critical_path_s", t.critical_path);
  ]
  (* a distribution key only when the model can produce it, so
     alpha-beta baselines keep their seven historical fields *)
  @ (if t.queue_seconds > 0. then [ ("nic_queue_s", t.queue_seconds) ]
     else [])

type dist = (string * Metric.summary) list

let distributions ?(warmup = 0) runs =
  if warmup < 0 then invalid_arg "Stats.distributions: warmup";
  let rec drop n = function
    | xs when n <= 0 -> xs
    | [] -> []
    | _ :: rest -> drop (n - 1) rest
  in
  let measured = drop warmup runs in
  if measured = [] then
    invalid_arg "Stats.distributions: warmup leaves no measured runs";
  let metrics =
    List.map (fun (k, _) -> (k, Metric.create ())) (timed_fields (List.hd measured))
  in
  List.iter
    (fun r ->
      List.iter
        (fun (k, v) -> Metric.add (List.assoc k metrics) v)
        (timed_fields r))
    measured;
  List.map (fun (k, m) -> (k, Metric.summarize m)) metrics

let dist_to_json d =
  Json.Obj (List.map (fun (k, s) -> (k, Metric.summary_to_json s)) d)

let dist_of_json = function
  | Json.Obj kvs ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, j) :: rest ->
        (match Metric.summary_of_json j with
        | Ok s -> go ((k, s) :: acc) rest
        | Error e -> Error (Printf.sprintf "field %S: %s" k e))
    in
    go [] kvs
  | _ -> Error "distributions: expected an object of metric summaries"

let summary ?dist t =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "completion %.6f s, %d messages, %d bytes, max in-flight %d bytes\n"
    t.completion t.messages t.bytes t.max_inflight_bytes;
  pf "comm/compute ratio %.3f, mean busy %.0f%%, max rank busy %.6f s"
    t.comm_compute_ratio
    (100. *. t.mean_busy_fraction)
    t.max_rank_busy;
  if t.critical_path > 0. then
    pf ", causal critical path %.6f s\n" t.critical_path
  else pf "\n";
  if t.queue_seconds > 0. then
    pf "nic/uplink queueing %.6f s total (%.1f%% of completion x ranks)\n"
      t.queue_seconds
      (if t.completion > 0. then
         100. *. t.queue_seconds
         /. (t.completion *. float_of_int t.nprocs)
       else 0.);
  (match dist with
  | None -> ()
  | Some d ->
    let n = match d with (_, s) :: _ -> s.Metric.count | [] -> 0 in
    pf "distributions over %d measured run%s:\n" n (if n = 1 then "" else "s");
    pf "  %-20s %12s %12s %12s %12s\n" "field" "mean" "stddev" "p50" "p99";
    List.iter
      (fun (k, (s : Metric.summary)) ->
        pf "  %-20s %12.6g %12.6g %12.6g %12.6g\n" k s.Metric.mean
          s.Metric.stddev s.Metric.p50 s.Metric.p99)
      d);
  Array.iter
    (fun r ->
      pf
        "  rank %-3d compute %8.3fms  pack %7.3fms  send %7.3fms  wait \
         %7.3fms  unpack %7.3fms  busy %3.0f%%  %d msgs\n"
        r.rank (1e3 *. r.compute) (1e3 *. r.pack) (1e3 *. r.send)
        (1e3 *. r.wait) (1e3 *. r.unpack)
        (100. *. r.busy_fraction)
        r.messages)
    t.ranks;
  Buffer.contents buf
