(** Residuals of the analytic cost models against observed runs.

    The tuner's two-pass predictor and the Hodzic–Shang model exist to
    {e rank} configurations without running them; this module measures
    how far their absolute estimates drift from what the backends
    actually report, so model rot is visible in every bench artifact
    instead of surfacing as a silently mistuned shortlist.

    The module is deliberately generic — an {!entry} is just (label,
    source, field, predicted, observed) — because the observability
    layer sits below the model layers in the build: the glue that knows
    about [Tiles_tune.Predictor] and [Tiles_runtime.Model] lives in the
    bench harness and the CLI, which turn estimates into entries via
    those modules' [fields] accessors. *)

type entry = {
  label : string;   (** run configuration, e.g. ["sor/nonrect z=8 p=16"] *)
  source : string;  (** which estimator, e.g. ["predictor.refine"] *)
  field : string;   (** compared quantity, e.g. ["completion_s"] *)
  predicted : float;
  observed : float;
}

val rel_error : entry -> float
(** [(predicted − observed) / observed]; 0 when both are 0, ±inf when
    only the observation is 0. Positive = over-estimate. *)

(** Per-source aggregate over a suite of entries — the calibration
    table. *)
type calibration = {
  source : string;
  count : int;
  mean_abs_rel : float;  (** average magnitude of the relative error *)
  mean_rel : float;      (** signed bias (+ = systematic over-estimate) *)
  max_abs_rel : float;
}

val calibrate : entry list -> calibration list
(** Grouped by [source], input order preserved. *)

val to_json : entry list -> Tiles_util.Json.t
(** Machine-readable report: every entry with its relative error plus
    the calibration table. *)

val report : entry list -> string
(** Human-readable rendering of the same. *)
