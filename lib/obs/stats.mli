(** Aggregate statistics of one run, computed from the span trace plus
    the recorder's counters — the machine-readable summary embedded in
    [bench --json] and printed by [tilec trace]. The same record is
    produced from simulated (virtual-time) and real (wall-time) runs, so
    the two backends can be compared field by field. *)

type rank = {
  rank : int;
  compute : float;
  pack : float;
  send : float;
  wait : float;
  unpack : float;
  busy : float;  (** compute + pack + send + unpack *)
  busy_fraction : float;  (** busy / completion (0 when untraced) *)
  messages : int;  (** messages sent by this rank (0 when the per-rank
                       split was not supplied to {!make}) *)
  bytes : int;  (** bytes sent by this rank (0 likewise) *)
}

type t = {
  nprocs : int;
  completion : float;  (** makespan, seconds (virtual or wall) *)
  ranks : rank array;
  messages : int;
  bytes : int;
  max_inflight_bytes : int;
  total_compute : float;
  total_comm : float;  (** pack + send + wait + unpack over all ranks *)
  comm_compute_ratio : float;  (** total_comm / total_compute (0 if none) *)
  mean_busy_fraction : float;
  max_rank_busy : float;
      (** lower bound on any schedule's makespan: the largest per-rank
          busy time (no reordering can finish before its busiest rank).
          This was misleadingly called [critical_path] before message
          edges existed. *)
  critical_path : float;
      (** the true causal critical path through the message-dependency
          DAG (see {!Critpath}); 0 when the run carried no edges to
          compute it from *)
  queue_seconds : float;
      (** total seconds of NIC-lane / shared-uplink queueing charged by
          a contended network model (see {!Tiles_mpisim.Netmodel});
          always 0 under alpha-beta and on real (shm) runs *)
}

val make :
  completion:float ->
  nprocs:int ->
  messages:int ->
  bytes:int ->
  max_inflight_bytes:int ->
  ?rank_messages:int array ->
  ?rank_bytes:int array ->
  ?critical_path:float ->
  ?queue_seconds:float ->
  Span.t list ->
  t
(** Aggregate a trace. With an empty span list (untraced run) all time
    components are zero but the counters are still meaningful.
    [critical_path] (default 0) is the causal value from {!Critpath}
    when the caller has message edges; [queue_seconds] (default 0) is
    the contended-model queueing total from the simulator. *)

val of_kind_seconds :
  completion:float ->
  nprocs:int ->
  messages:int ->
  bytes:int ->
  max_inflight_bytes:int ->
  ?rank_messages:int array ->
  ?rank_bytes:int array ->
  ?critical_path:float ->
  ?queue_seconds:float ->
  float array array ->
  t
(** Aggregate from pre-folded [nprocs × 5] per-rank per-kind second
    sums (the shape {!Recorder.kind_seconds} returns) — the streaming-
    mode path, where no span list exists. Produces the same record as
    {!make} over the spans the sums were folded from. *)

val to_json : t -> Tiles_util.Json.t

(** {2 Distributions over repeated runs}

    A single run yields scalars; the perf observatory re-runs a config
    N times (after a warmup) and folds every timed field into a
    {!Metric}, so baselines and bench artifacts carry noise bounds. *)

val timed_fields : t -> (string * float) list
(** The run's timed scalar fields, keyed as in {!to_json}
    ([completion_s], [total_compute_s], [total_comm_s],
    [comm_compute_ratio], [mean_busy_fraction], [max_rank_busy_s],
    [critical_path_s], plus [nic_queue_s] only when a contended model
    charged queueing — alpha-beta runs keep the historical seven). *)

type dist = (string * Metric.summary) list
(** Per-field distributions, same keys as {!timed_fields}. *)

val distributions : ?warmup:int -> t list -> dist
(** Fold the timed fields of the runs after dropping the first [warmup]
    (default 0). Raises [Invalid_argument] if nothing remains. *)

val dist_to_json : dist -> Tiles_util.Json.t

val dist_of_json : Tiles_util.Json.t -> (dist, string) result

val summary : ?dist:dist -> t -> string
(** Multi-line human-readable rendering (per-rank table + totals).
    With [dist], a mean/stddev/p50/p99 table of the repeated-run
    distributions is included; single-run output is unchanged. *)
