(** Aggregate statistics of one run, computed from the span trace plus
    the recorder's counters — the machine-readable summary embedded in
    [bench --json] and printed by [tilec trace]. The same record is
    produced from simulated (virtual-time) and real (wall-time) runs, so
    the two backends can be compared field by field. *)

type rank = {
  rank : int;
  compute : float;
  pack : float;
  send : float;
  wait : float;
  unpack : float;
  busy : float;  (** compute + pack + send + unpack *)
  busy_fraction : float;  (** busy / completion (0 when untraced) *)
  messages : int;  (** messages sent by this rank (0 when the per-rank
                       split was not supplied to {!make}) *)
  bytes : int;  (** bytes sent by this rank (0 likewise) *)
}

type t = {
  nprocs : int;
  completion : float;  (** makespan, seconds (virtual or wall) *)
  ranks : rank array;
  messages : int;
  bytes : int;
  max_inflight_bytes : int;
  total_compute : float;
  total_comm : float;  (** pack + send + wait + unpack over all ranks *)
  comm_compute_ratio : float;  (** total_comm / total_compute (0 if none) *)
  mean_busy_fraction : float;
  critical_path : float;
      (** lower bound on any schedule's makespan: the largest per-rank
          busy time (no reordering can finish before its busiest rank) *)
}

val make :
  completion:float ->
  nprocs:int ->
  messages:int ->
  bytes:int ->
  max_inflight_bytes:int ->
  ?rank_messages:int array ->
  ?rank_bytes:int array ->
  Span.t list ->
  t
(** Aggregate a trace. With an empty span list (untraced run) all time
    components are zero but the counters are still meaningful. *)

val to_json : t -> Tiles_util.Json.t

val summary : t -> string
(** Multi-line human-readable rendering (per-rank table + totals). *)
