(** Causal critical-path extraction over a traced run.

    Replays the event DAG formed by per-rank program order (spans) and
    cross-rank message dependencies ({!Recorder.edge}) and walks the
    true critical path backward from the completion instant. The
    returned segments tile [0, completion] in time while hopping
    between ranks, so on a well-formed trace their durations sum to the
    makespan — unlike [max_rank_busy], which ignores causality. *)

type seg_kind =
  | Activity of Span.kind  (** on-path span time on some rank *)
  | Flight  (** a message in transit between two ranks (wire + latency) *)
  | Queue
      (** the part of a flight spent queued in NIC lanes or the shared
          uplink under a contended {!Tiles_mpisim}-style network model
          (taken from [edge.e_queued]; never emitted when it is 0) *)
  | Idle  (** on-path gap: the critical rank had nothing recorded *)

type segment = {
  sg_rank : int;  (** for [Flight], the receiving rank *)
  sg_t0 : float;
  sg_t1 : float;
  sg_kind : seg_kind;
  sg_phase : int option;
      (** tag (time-step phase) of the last message edge crossed at or
          after this segment; [None] before any edge is crossed *)
}

type report = {
  nprocs : int;
  completion : float;
  segments : segment list;  (** chronological *)
  path_length : float;  (** sum of segment durations *)
  coverage : float;  (** [path_length / completion]; 1.0 on clean traces *)
  kind_seconds : (string * float) list;
      (** on-path seconds per segment kind: the five span kinds plus
          ["flight"], ["nic-queue"] and ["idle"] *)
  rank_on_path : float array;  (** per-rank on-path occupancy (no flight) *)
  phase_seconds : (int option * float) list;
  phase_queue_seconds : (int option * float) list;
      (** the ["nic-queue"] share of each phase's on-path seconds —
          where network contention actually lands on the critical path *)
  edges_crossed : int;
  max_rank_busy : float;  (** the old busy-time lower bound, for compare *)
  imbalance : float;
      (** [(max_busy - mean_busy) / max_busy]; 0 = perfectly balanced *)
  slack : float array;
      (** per-rank CPM slack: how much the rank could slow without
          moving the makespan *)
}

val seg_kind_name : seg_kind -> string
val seg_duration : segment -> float

val analyze :
  ?eps:float ->
  ?completion:float ->
  nprocs:int ->
  edges:Recorder.edge list ->
  Span.t list ->
  report
(** [eps] (default 1e-9) is the stamp-matching tolerance; virtual-time
    traces match exactly, wall-clock traces reuse the recorder's span
    stamps so they also match exactly. [completion] defaults to the
    latest span end / edge ready stamp. *)

val laggards : ?k:int -> report -> (int * float) list
(** Top-[k] (default 5) ranks by on-path occupancy, largest first;
    ranks with zero on-path time are omitted. *)

val to_json : ?segments:bool -> ?per_rank:bool -> report -> Tiles_util.Json.t
(** [segments] (default true) controls whether the full segment list is
    embedded; [per_rank] (default true) the O(nprocs) [rank_on_path_s]
    and [slack_s] arrays — the bench artifact drops both so committed
    reports stay table-sized at thousands of ranks (the top-k
    [laggards] summary is always present). *)

val summary : ?top:int -> report -> string
(** Human-readable breakdown: path vs completion, per-kind table,
    top-[top] laggards with their slack. *)
