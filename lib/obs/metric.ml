module Json = Tiles_util.Json

(* geometric histogram: bucket 0 collects everything <= v0; bucket i
   (1 <= i < nbuckets) covers (v0·γ^(i-1), v0·γ^i]; the last bucket is
   open-ended.  v0 = 1 ns and γ = 1.05 span ~1 ns … ~1 h in 600
   buckets, i.e. one int per 5% of dynamic range. *)
let nbuckets = 600
let v0 = 1e-9
let log_gamma = Float.log 1.05

let bucket_of v =
  if not (Float.is_finite v) then if v > 0. then nbuckets - 1 else 0
  else if v <= v0 then 0
  else
    let i = 1 + int_of_float (Float.log (v /. v0) /. log_gamma) in
    if i >= nbuckets then nbuckets - 1 else i

(* geometric midpoint of the bucket, used as the percentile estimate *)
let bucket_value i =
  if i = 0 then v0
  else v0 *. Float.exp ((float_of_int i -. 0.5) *. log_gamma)

type t = {
  mutable count : int;
  mutable nans : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  hist : int array;
}

let create () =
  {
    count = 0;
    nans = 0;
    mean = 0.;
    m2 = 0.;
    min = infinity;
    max = neg_infinity;
    hist = Array.make nbuckets 0;
  }

let add t v =
  (* a NaN folded into Welford state would poison mean/stddev for every
     later sample, and min/max would silently keep their old values
     (every NaN comparison is false) — so reject it here, visibly *)
  if Float.is_nan v then t.nans <- t.nans + 1
  else begin
    t.count <- t.count + 1;
    let d = v -. t.mean in
    t.mean <- t.mean +. (d /. float_of_int t.count);
    t.m2 <- t.m2 +. (d *. (v -. t.mean));
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    let b = bucket_of v in
    t.hist.(b) <- t.hist.(b) + 1
  end

let count t = t.count
let nans t = t.nans

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile (t : t) q =
  (* an empty metric has min = +inf and max = -inf, so the clamp below
     would turn any answer into -inf; 0 is the only sane empty value *)
  if t.count = 0 then 0.
  else begin
  (* smallest bucket at which the cumulative count reaches q·total,
     clamped into [min, max] so exact repeats summarise exactly *)
  let target = q *. float_of_int t.count in
  let rec go i acc =
    if i >= nbuckets then t.max
    else
      let acc = acc + t.hist.(i) in
      if float_of_int acc >= target then bucket_value i else go (i + 1) acc
  in
  let v = go 0 0 in
  Float.min t.max (Float.max t.min v)
  end

let summarize (t : t) =
  if t.count = 0 then
    { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.;
      p50 = 0.; p90 = 0.; p99 = 0. }
  else
    {
      count = t.count;
      mean = t.mean;
      stddev =
        (if t.count < 2 then 0.
         else Float.sqrt (t.m2 /. float_of_int (t.count - 1)));
      min = t.min;
      max = t.max;
      p50 = percentile t 0.50;
      p90 = percentile t 0.90;
      p99 = percentile t 0.99;
    }

let of_values vs =
  let t = create () in
  List.iter (add t) vs;
  summarize t

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("stddev", Json.Float s.stddev);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]

let summary_of_json j =
  let ( let* ) = Result.bind in
  let num key =
    match Option.bind (Json.member key j) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "metric summary: missing number %S" key)
  in
  let* count =
    match Option.bind (Json.member "count" j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error "metric summary: missing int \"count\""
  in
  let* mean = num "mean" in
  let* stddev = num "stddev" in
  let* min = num "min" in
  let* max = num "max" in
  let* p50 = num "p50" in
  let* p90 = num "p90" in
  let* p99 = num "p99" in
  Ok { count; mean; stddev; min; max; p50; p90; p99 }
