(** Monotonic time source for real (wall-clock) span recording. *)

val monotonic : unit -> float
(** Seconds on the host's monotonic clock (CLOCK_MONOTONIC via the
    bechamel stub). Differences are meaningful; the absolute origin is
    arbitrary, so recorders rebase to their creation time. *)
