(* How much the recorder retains is the product of two switches: [trace]
   (record spans at all) and [mode] (retain them or fold them down).

     trace=false            counters only (messages, bytes, in-flight)
     trace, mode=Retain     full span list + message dependency edges
     trace, mode=Streaming  per-rank per-kind sums and Metric histograms
                            plus a bounded reservoir of the longest Wait
                            spans — O(nprocs) memory however long the run

   Message identity: every send/receive carries its channel (src, dst,
   tag) and the recorder assigns a per-channel sequence number on each
   side independently. All transports are FIFO per channel (the
   simulator's queues, the shm mailbox's per-tag queues, the overlapped
   send stage drained in order by one domain), so sender seq i and
   receiver seq i name the same message and the two half-records join
   into a dependency edge without any cross-rank synchronisation. *)

type mode = Retain | Streaming

type edge = {
  e_src : int;
  e_dst : int;
  e_tag : int;
  e_seq : int;
  e_bytes : int;
  e_sent : float;
  e_posted : float;
  e_ready : float;
  e_queued : float;
}

let nkinds = 5

let kind_slot = function
  | Span.Compute -> 0
  | Span.Pack -> 1
  | Span.Send -> 2
  | Span.Wait -> 3
  | Span.Unpack -> 4

(* longest-Wait reservoir size per rank; total memory is nprocs·this *)
let waits_keep = 8

type shared = {
  trace : bool;
  mode : mode;
  label : string option;
  clock : unit -> float;
  origin : float;
  inflight : int Atomic.t;
  max_inflight : int Atomic.t;
}

(* one half of a message, recorded on the side that observed it *)
type sent_rec = { s_dst : int; s_tag : int; s_seq : int; s_t : float }
type recv_rec = { r_src : int; r_tag : int; r_seq : int; r_bytes : int;
                  r_posted : float; r_ready : float; r_queued : float }

type log = {
  rank : int;
  shared : shared;
  mutable spans : Span.t list;  (* newest first; Retain mode only *)
  mutable cursor : float;
  mutable messages : int;
  mutable bytes : int;
  mutable queue_sum : float;  (* NIC queueing seconds charged to this rank *)
  mutable finished_at : float;
  kind_sum : float array;  (* seconds per Span.kind, always when tracing *)
  kind_hist : Metric.t option array;  (* Streaming mode, lazily allocated *)
  waits : Span.t array;  (* reservoir of longest Wait spans *)
  mutable nwaits : int;
  send_seq : (int * int, int ref) Hashtbl.t;  (* (dst, tag) -> next seq *)
  recv_seq : (int * int, int ref) Hashtbl.t;  (* (src, tag) -> next seq *)
  mutable sent : sent_rec list;  (* Retain mode only *)
  mutable recvd : recv_rec list;  (* Retain mode only *)
}

type t = {
  nprocs : int;
  s : shared;
  logs : log array;
}

let dummy_span = { Span.rank = -1; t0 = 0.; t1 = 0.; kind = Span.Wait }

let create ?(mode = Retain) ?(trace = false) ?(clock = Clock.monotonic)
    ?label ~nprocs () =
  if nprocs <= 0 then invalid_arg "Recorder.create: nprocs";
  let s =
    {
      trace;
      mode;
      label;
      clock;
      origin = clock ();
      inflight = Atomic.make 0;
      max_inflight = Atomic.make 0;
    }
  in
  {
    nprocs;
    s;
    logs =
      Array.init nprocs (fun rank ->
          {
            rank;
            shared = s;
            spans = [];
            cursor = 0.;
            messages = 0;
            bytes = 0;
            queue_sum = 0.;
            finished_at = 0.;
            kind_sum = Array.make nkinds 0.;
            kind_hist = Array.make nkinds None;
            waits = Array.make waits_keep dummy_span;
            nwaits = 0;
            send_seq = Hashtbl.create 4;
            recv_seq = Hashtbl.create 4;
            sent = [];
            recvd = [];
          });
  }

let tracing t = t.s.trace
let mode t = t.s.mode
let label t = t.s.label
let nprocs t = t.nprocs
let now t = t.s.clock () -. t.s.origin
let log t ~rank = t.logs.(rank)

let log_now l = l.shared.clock () -. l.shared.origin

(* message edges are only joinable when the full per-message records are
   kept; streaming mode deliberately drops them to stay O(nprocs) *)
let keep_edges s = s.trace && s.mode = Retain

let reservoir_note l (sp : Span.t) =
  if l.nwaits < waits_keep then begin
    l.waits.(l.nwaits) <- sp;
    l.nwaits <- l.nwaits + 1
  end
  else begin
    (* replace the shortest retained wait if this one is longer *)
    let mini = ref 0 in
    for i = 1 to waits_keep - 1 do
      if Span.duration l.waits.(i) < Span.duration l.waits.(!mini) then
        mini := i
    done;
    if Span.duration sp > Span.duration l.waits.(!mini) then
      l.waits.(!mini) <- sp
  end

let span l ~t0 ~t1 kind =
  if l.shared.trace && t1 > t0 then begin
    let sp = { Span.rank = l.rank; t0; t1; kind } in
    let slot = kind_slot kind in
    l.kind_sum.(slot) <- l.kind_sum.(slot) +. (t1 -. t0);
    if kind = Span.Wait then reservoir_note l sp;
    match l.shared.mode with
    | Retain -> l.spans <- sp :: l.spans
    | Streaming ->
      let m =
        match l.kind_hist.(slot) with
        | Some m -> m
        | None ->
          let m = Metric.create () in
          l.kind_hist.(slot) <- Some m;
          m
      in
      Metric.add m (t1 -. t0)
  end

let mark l = l.cursor <- log_now l

let close l kind =
  let t = log_now l in
  span l ~t0:l.cursor ~t1:t kind;
  l.cursor <- t

let rec raise_high_water m v =
  let cur = Atomic.get m in
  if v > cur && not (Atomic.compare_and_set m cur v) then raise_high_water m v

let next_seq table key =
  match Hashtbl.find_opt table key with
  | Some r ->
    let s = !r in
    incr r;
    s
  | None ->
    Hashtbl.add table key (ref 1);
    0

let message_sent l ?t ~dst ~tag ~bytes () =
  l.messages <- l.messages + 1;
  l.bytes <- l.bytes + bytes;
  let level = Atomic.fetch_and_add l.shared.inflight bytes + bytes in
  raise_high_water l.shared.max_inflight level;
  if keep_edges l.shared then begin
    let s_seq = next_seq l.send_seq (dst, tag) in
    let s_t = match t with Some t -> t | None -> log_now l in
    l.sent <- { s_dst = dst; s_tag = tag; s_seq; s_t } :: l.sent
  end

let message_received l ?t ?posted ?(queued = 0.) ~src ~tag ~bytes () =
  ignore (Atomic.fetch_and_add l.shared.inflight (-bytes));
  if keep_edges l.shared then begin
    let r_seq = next_seq l.recv_seq (src, tag) in
    let r_ready = match t with Some t -> t | None -> log_now l in
    let r_posted = match posted with Some p -> p | None -> r_ready in
    l.recvd <-
      { r_src = src; r_tag = tag; r_seq; r_bytes = bytes; r_posted; r_ready;
        r_queued = queued }
      :: l.recvd
  end

(* NIC queueing is a counter, not a span: it is maintained in every mode
   (like messages/bytes) so thousand-rank streaming runs still report
   how much time the contended network model spent queueing *)
let nic_queue l dt = if dt > 0. then l.queue_sum <- l.queue_sum +. dt

let finish l = l.finished_at <- log_now l

let spans t =
  Span.sort
    (Array.fold_left (fun acc l -> List.rev_append l.spans acc) [] t.logs)

let edges t =
  (* join the sender and receiver half-records on (src, dst, tag, seq) —
     FIFO per channel makes the independently assigned seqs agree *)
  let sends = Hashtbl.create 256 in
  Array.iter
    (fun l ->
      List.iter
        (fun s ->
          Hashtbl.replace sends (l.rank, s.s_dst, s.s_tag, s.s_seq) s.s_t)
        l.sent)
    t.logs;
  let out =
    Array.fold_left
      (fun acc l ->
        List.fold_left
          (fun acc r ->
            match
              Hashtbl.find_opt sends (r.r_src, l.rank, r.r_tag, r.r_seq)
            with
            | None -> acc  (* receive without a recorded send: dropped *)
            | Some s_t ->
              {
                e_src = r.r_src;
                e_dst = l.rank;
                e_tag = r.r_tag;
                e_seq = r.r_seq;
                e_bytes = r.r_bytes;
                e_sent = s_t;
                e_posted = r.r_posted;
                e_ready = r.r_ready;
                e_queued = r.r_queued;
              }
              :: acc)
          acc l.recvd)
      [] t.logs
  in
  List.sort
    (fun a b ->
      match Float.compare a.e_ready b.e_ready with
      | 0 -> compare (a.e_dst, a.e_src, a.e_tag, a.e_seq)
               (b.e_dst, b.e_src, b.e_tag, b.e_seq)
      | c -> c)
    out

let kind_seconds t =
  Array.map (fun l -> Array.copy l.kind_sum) t.logs

let kind_summary t ~rank kind =
  let l = t.logs.(rank) in
  match l.kind_hist.(kind_slot kind) with
  | Some m -> Metric.summarize m
  | None -> Metric.summarize (Metric.create ())

let longest_waits ?(k = waits_keep) t =
  let all =
    Array.fold_left
      (fun acc l ->
        let rec take i acc =
          if i >= l.nwaits then acc else take (i + 1) (l.waits.(i) :: acc)
        in
        take 0 acc)
      [] t.logs
  in
  let sorted =
    List.sort (fun a b -> Float.compare (Span.duration b) (Span.duration a))
      all
  in
  List.filteri (fun i _ -> i < k) sorted

let messages t = Array.fold_left (fun acc l -> acc + l.messages) 0 t.logs
let bytes t = Array.fold_left (fun acc l -> acc + l.bytes) 0 t.logs
let queue_seconds t = Array.fold_left (fun acc l -> acc +. l.queue_sum) 0. t.logs
let rank_queue_seconds t = Array.map (fun l -> l.queue_sum) t.logs
let max_inflight_bytes t = Atomic.get t.s.max_inflight
let rank_messages t = Array.map (fun l -> l.messages) t.logs
let rank_bytes t = Array.map (fun l -> l.bytes) t.logs
let rank_finish t = Array.map (fun l -> l.finished_at) t.logs
