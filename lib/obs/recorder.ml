type shared = {
  trace : bool;
  clock : unit -> float;
  origin : float;
  inflight : int Atomic.t;
  max_inflight : int Atomic.t;
}

type log = {
  rank : int;
  shared : shared;
  mutable spans : Span.t list;  (* newest first *)
  mutable cursor : float;
  mutable messages : int;
  mutable bytes : int;
  mutable finished_at : float;
}

type t = {
  nprocs : int;
  s : shared;
  logs : log array;
}

let create ?(trace = false) ?(clock = Clock.monotonic) ~nprocs () =
  if nprocs <= 0 then invalid_arg "Recorder.create: nprocs";
  let s =
    {
      trace;
      clock;
      origin = clock ();
      inflight = Atomic.make 0;
      max_inflight = Atomic.make 0;
    }
  in
  {
    nprocs;
    s;
    logs =
      Array.init nprocs (fun rank ->
          {
            rank;
            shared = s;
            spans = [];
            cursor = 0.;
            messages = 0;
            bytes = 0;
            finished_at = 0.;
          });
  }

let tracing t = t.s.trace
let nprocs t = t.nprocs
let now t = t.s.clock () -. t.s.origin
let log t ~rank = t.logs.(rank)

let log_now l = l.shared.clock () -. l.shared.origin

let span l ~t0 ~t1 kind =
  if l.shared.trace && t1 > t0 then
    l.spans <- { Span.rank = l.rank; t0; t1; kind } :: l.spans

let mark l = l.cursor <- log_now l

let close l kind =
  let t = log_now l in
  span l ~t0:l.cursor ~t1:t kind;
  l.cursor <- t

let rec raise_high_water m v =
  let cur = Atomic.get m in
  if v > cur && not (Atomic.compare_and_set m cur v) then raise_high_water m v

let message_sent l ~bytes =
  l.messages <- l.messages + 1;
  l.bytes <- l.bytes + bytes;
  let level = Atomic.fetch_and_add l.shared.inflight bytes + bytes in
  raise_high_water l.shared.max_inflight level

let message_received l ~bytes =
  ignore (Atomic.fetch_and_add l.shared.inflight (-bytes))

let finish l = l.finished_at <- log_now l

let spans t =
  Span.sort
    (Array.fold_left (fun acc l -> List.rev_append l.spans acc) [] t.logs)

let messages t = Array.fold_left (fun acc l -> acc + l.messages) 0 t.logs
let bytes t = Array.fold_left (fun acc l -> acc + l.bytes) 0 t.logs
let max_inflight_bytes t = Atomic.get t.s.max_inflight
let rank_messages t = Array.map (fun l -> l.messages) t.logs
let rank_bytes t = Array.map (fun l -> l.bytes) t.logs
let rank_finish t = Array.map (fun l -> l.finished_at) t.logs
