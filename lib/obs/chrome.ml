module Json = Tiles_util.Json

let colour = function
  (* Catapult reserved colour names, so the five kinds are visually
     stable across viewers *)
  | Span.Compute -> "thread_state_running"
  | Span.Pack -> "thread_state_iowait"
  | Span.Send -> "rail_animation"
  | Span.Wait -> "grey"
  | Span.Unpack -> "rail_response"

let event ~time_scale (s : Span.t) =
  Json.Obj
    [
      ("name", Json.Str (Span.kind_name s.Span.kind));
      ("cat", Json.Str "tiles");
      ("ph", Json.Str "X");
      ("ts", Json.Float (s.Span.t0 *. time_scale));
      ("dur", Json.Float (Span.duration s *. time_scale));
      ("pid", Json.Int 0);
      ("tid", Json.Int s.Span.rank);
      ("cname", Json.Str (colour s.Span.kind));
    ]

(* one message dependency as a Catapult flow: a start arrow on the
   sender at the send stamp, bound ("bp":"e") to a finish arrow on the
   receiver at the ready stamp. The start event carries the full edge
   record in its args so a trace file round-trips through [of_json]
   without re-joining the two halves. *)
let flow_events ~time_scale i (e : Recorder.edge) =
  let open Recorder in
  let common ph t tid extra =
    Json.Obj
      ([
         ("name", Json.Str (Printf.sprintf "msg %d->%d" e.e_src e.e_dst));
         ("cat", Json.Str "tiles-flow");
         ("ph", Json.Str ph);
         ("id", Json.Int i);
         ("ts", Json.Float (t *. time_scale));
         ("pid", Json.Int 0);
         ("tid", Json.Int tid);
       ]
      @ extra)
  in
  [
    common "s" e.e_sent e.e_src
      [
        ( "args",
          Json.Obj
            ([
               ("src", Json.Int e.e_src);
               ("dst", Json.Int e.e_dst);
               ("tag", Json.Int e.e_tag);
               ("seq", Json.Int e.e_seq);
               ("bytes", Json.Int e.e_bytes);
               ("sent_s", Json.Float e.e_sent);
               ("posted_s", Json.Float e.e_posted);
               ("ready_s", Json.Float e.e_ready);
             ]
            (* only written when nonzero so alpha-beta artifacts stay
               byte-identical to the pre-contention schema *)
            @
            if e.e_queued <> 0. then [ ("queued_s", Json.Float e.e_queued) ]
            else []) );
      ];
    common "f" e.e_ready e.e_dst [ ("bp", Json.Str "e") ];
  ]

let metadata ~name ~tid ~value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let to_json ?(process_name = "tiles") ?(time_scale = 1e6) ?meta
    ?(edges = []) ~nprocs spans =
  let threads =
    List.init nprocs (fun r ->
        metadata ~name:"thread_name" ~tid:r ~value:(Printf.sprintf "rank %d" r))
  in
  let flows = List.concat (List.mapi (flow_events ~time_scale) edges) in
  let events =
    metadata ~name:"process_name" ~tid:0 ~value:process_name
    :: threads
    @ List.map (event ~time_scale) (Span.sort spans)
    @ flows
  in
  Json.Obj
    ([
       ("traceEvents", Json.List events);
       ("displayTimeUnit", Json.Str "ms");
     ]
    @
    match meta with
    | None -> []
    | Some m -> [ ("metadata", Runmeta.to_json m) ])

let write ?process_name ?time_scale ?meta ?edges ~nprocs ~path spans =
  let json = to_json ?process_name ?time_scale ?meta ?edges ~nprocs spans in
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:1 json);
  output_char oc '\n';
  close_out oc

(* ------------------------- reading back ------------------------- *)

type archive = {
  nprocs : int;
  spans : Span.t list;
  edges : Recorder.edge list;
}

let kind_of_name n =
  List.find_opt (fun k -> Span.kind_name k = n) Span.all_kinds

let of_json ?(time_scale = 1e6) j =
  match Json.member "traceEvents" j with
  | Some (Json.List events) ->
    let spans = ref [] and edges = ref [] and nprocs = ref 0 in
    let err = ref None in
    let note_rank r = if r + 1 > !nprocs then nprocs := r + 1 in
    List.iter
      (fun ev ->
        let str k = Option.bind (Json.member k ev) Json.to_str_opt in
        let num k = Option.bind (Json.member k ev) Json.to_float_opt in
        let int k = Option.bind (Json.member k ev) Json.to_int_opt in
        match str "ph" with
        | Some "X" -> (
          match (str "name", int "tid", num "ts", num "dur") with
          | Some name, Some tid, Some ts, Some dur -> (
            match kind_of_name name with
            | Some kind ->
              note_rank tid;
              let t0 = ts /. time_scale in
              spans :=
                { Span.rank = tid; t0; t1 = t0 +. (dur /. time_scale); kind }
                :: !spans
            | None -> () (* foreign complete event: ignore *))
          | _ ->
            if !err = None then
              err := Some "trace: malformed \"X\" event")
        | Some "s" when str "cat" = Some "tiles-flow" -> (
          match Json.member "args" ev with
          | Some args ->
            let aint k = Option.bind (Json.member k args) Json.to_int_opt in
            let anum k =
              Option.bind (Json.member k args) Json.to_float_opt
            in
            (match
               ( aint "src", aint "dst", aint "tag", aint "seq",
                 aint "bytes", anum "sent_s", anum "posted_s",
                 anum "ready_s" )
             with
            | ( Some e_src, Some e_dst, Some e_tag, Some e_seq,
                Some e_bytes, Some e_sent, Some e_posted, Some e_ready ) ->
              note_rank e_src;
              note_rank e_dst;
              (* absent in artifacts written before the contended
                 network model existed: those flights had no queueing *)
              let e_queued =
                Option.value ~default:0. (anum "queued_s")
              in
              edges :=
                {
                  Recorder.e_src; e_dst; e_tag; e_seq; e_bytes; e_sent;
                  e_posted; e_ready; e_queued;
                }
                :: !edges
            | _ ->
              if !err = None then
                err := Some "trace: flow event with incomplete args")
          | None ->
            if !err = None then err := Some "trace: flow event without args")
        | Some "M" -> (
          (* thread_name events widen nprocs to cover idle ranks *)
          match (str "name", int "tid") with
          | Some "thread_name", Some tid -> note_rank tid
          | _ -> ())
        | _ -> ())
      events;
    (match !err with
    | Some e -> Error e
    | None ->
      if !nprocs = 0 then Error "trace: no events with a rank"
      else
        Ok
          {
            nprocs = !nprocs;
            spans = Span.sort !spans;
            edges =
              List.sort
                (fun (a : Recorder.edge) b ->
                  Float.compare a.Recorder.e_ready b.Recorder.e_ready)
                !edges;
          })
  | Some _ -> Error "trace: \"traceEvents\" is not a list"
  | None -> Error "trace: missing \"traceEvents\""

let read ~path =
  match
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | s ->
    (match Json.parse s with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j ->
      (match of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok a -> Ok a))
