module Json = Tiles_util.Json

let colour = function
  (* Catapult reserved colour names, so the five kinds are visually
     stable across viewers *)
  | Span.Compute -> "thread_state_running"
  | Span.Pack -> "thread_state_iowait"
  | Span.Send -> "rail_animation"
  | Span.Wait -> "grey"
  | Span.Unpack -> "rail_response"

let event ~time_scale (s : Span.t) =
  Json.Obj
    [
      ("name", Json.Str (Span.kind_name s.Span.kind));
      ("cat", Json.Str "tiles");
      ("ph", Json.Str "X");
      ("ts", Json.Float (s.Span.t0 *. time_scale));
      ("dur", Json.Float (Span.duration s *. time_scale));
      ("pid", Json.Int 0);
      ("tid", Json.Int s.Span.rank);
      ("cname", Json.Str (colour s.Span.kind));
    ]

let metadata ~name ~tid ~value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let to_json ?(process_name = "tiles") ?(time_scale = 1e6) ?meta ~nprocs spans =
  let threads =
    List.init nprocs (fun r ->
        metadata ~name:"thread_name" ~tid:r ~value:(Printf.sprintf "rank %d" r))
  in
  let events =
    metadata ~name:"process_name" ~tid:0 ~value:process_name
    :: threads
    @ List.map (event ~time_scale) (Span.sort spans)
  in
  Json.Obj
    ([
       ("traceEvents", Json.List events);
       ("displayTimeUnit", Json.Str "ms");
     ]
    @
    match meta with
    | None -> []
    | Some m -> [ ("metadata", Runmeta.to_json m) ])

let write ?process_name ?time_scale ?meta ~nprocs ~path spans =
  let json = to_json ?process_name ?time_scale ?meta ~nprocs spans in
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:1 json);
  output_char oc '\n';
  close_out oc
