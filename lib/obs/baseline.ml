module Json = Tiles_util.Json

let schema_version = 1

type counters = {
  messages : int;
  bytes : int;
  max_inflight_bytes : int;
}

type t = {
  schema : int;
  meta : Runmeta.t;
  counters : counters;
  timings : Stats.dist;
}

let make ~meta ~stats ~timings =
  {
    schema = schema_version;
    meta;
    counters =
      {
        messages = stats.Stats.messages;
        bytes = stats.Stats.bytes;
        max_inflight_bytes = stats.Stats.max_inflight_bytes;
      };
    timings;
  }

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int t.schema);
      ("metadata", Runmeta.to_json t.meta);
      ( "counters",
        Json.Obj
          [
            ("messages", Json.Int t.counters.messages);
            ("bytes", Json.Int t.counters.bytes);
            ("max_inflight_bytes", Json.Int t.counters.max_inflight_bytes);
          ] );
      ("timings", Stats.dist_to_json t.timings);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let* schema =
    match Option.bind (Json.member "schema_version" j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error "baseline: missing int \"schema_version\""
  in
  let* () =
    if schema > schema_version then
      Error
        (Printf.sprintf
           "baseline: schema version %d is newer than this tool's %d — \
            refresh the tool or re-record the baseline"
           schema schema_version)
    else Ok ()
  in
  let* meta =
    match Json.member "metadata" j with
    | Some m -> Runmeta.of_json m
    | None -> Error "baseline: missing \"metadata\""
  in
  let* counters =
    match Json.member "counters" j with
    | Some c ->
      let int key =
        match Option.bind (Json.member key c) Json.to_int_opt with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "baseline counters: missing %S" key)
      in
      let* messages = int "messages" in
      let* bytes = int "bytes" in
      let* max_inflight_bytes = int "max_inflight_bytes" in
      Ok { messages; bytes; max_inflight_bytes }
    | None -> Error "baseline: missing \"counters\""
  in
  let* timings =
    match Json.member "timings" j with
    | Some d -> Stats.dist_of_json d
    | None -> Error "baseline: missing \"timings\""
  in
  Ok { schema; meta; counters; timings }

let save t ~path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load ~path =
  match
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | s ->
    (match Json.parse s with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j ->
      (match of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok t -> Ok t))

(* a non-default network model lands in the file name, so contended
   baselines never collide with (or get compared against) the alpha-beta
   ones recorded before contention existed *)
let netmodel_suffix (meta : Runmeta.t) =
  match meta.Runmeta.netmodel with
  | "" | "-" | "fast_ethernet_cluster" -> ""
  | id ->
    let b = Buffer.create (String.length id + 1) in
    Buffer.add_char b '-';
    let last_dash = ref false in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' ->
          Buffer.add_char b c;
          last_dash := false
        | _ ->
          if not !last_dash then Buffer.add_char b '-';
          last_dash := true)
      id;
    Buffer.contents b

(* a blocked walk lands in the file name too: blocked wall-clock
   baselines must never be compared against unblocked ones (or vice
   versa), and perf --check enforces the same through meta_diff below *)
let inner_suffix (meta : Runmeta.t) =
  match meta.Runmeta.inner with
  | None -> ""
  | Some b ->
    "-inner-"
    ^ String.concat "x" (List.map string_of_int (Array.to_list b))

let default_path ~dir ~(meta : Runmeta.t) =
  Filename.concat dir
    (Printf.sprintf "%s-%s-%s%s%s%s.json" meta.Runmeta.app meta.Runmeta.variant
       meta.Runmeta.backend
       (if meta.Runmeta.overlap then "-overlap" else "")
       (inner_suffix meta) (netmodel_suffix meta))

(* ---------------- comparison ---------------- *)

type delta = {
  field : string;
  base_mean : float;
  cur_mean : float;
  rel : float;
  noise : float;
}

type verdict = {
  meta_mismatch : string list;
  counter_mismatch : (string * int * int) list;
  regressions : delta list;
  improvements : delta list;
  checked : int;
  ok : bool;
}

let meta_diff (a : Runmeta.t) (b : Runmeta.t) =
  let d name get = if get a = get b then [] else [ name ] in
  List.concat
    [
      d "app" (fun m -> m.Runmeta.app);
      d "variant" (fun m -> m.Runmeta.variant);
      d "size1" (fun m -> string_of_int m.Runmeta.size1);
      d "size2" (fun m -> string_of_int m.Runmeta.size2);
      d "tile"
        (fun m ->
          let x, y, z = m.Runmeta.tile in
          Printf.sprintf "%d,%d,%d" x y z);
      d "nprocs" (fun m -> string_of_int m.Runmeta.nprocs);
      d "backend" (fun m -> m.Runmeta.backend);
      d "netmodel" (fun m -> m.Runmeta.netmodel);
      d "inner"
        (fun m ->
          match m.Runmeta.inner with
          | None -> "-"
          | Some b ->
            String.concat "x" (List.map string_of_int (Array.to_list b)));
    ]

let compare ?(rel_threshold = 0.05) ?(k_sigma = 3.)
    ?(exact = [ "messages"; "bytes"; "max_inflight_bytes" ]) ~baseline
    current =
  let meta_mismatch = meta_diff baseline.meta current.meta in
  let counter_mismatch =
    List.filter_map
      (fun (name, get) ->
        if List.mem name exact then
          let b = get baseline.counters and c = get current.counters in
          if b <> c then Some (name, b, c) else None
        else None)
      [
        ("messages", fun c -> c.messages);
        ("bytes", fun c -> c.bytes);
        ("max_inflight_bytes", fun c -> c.max_inflight_bytes);
      ]
  in
  let deltas =
    List.filter_map
      (fun (field, (b : Metric.summary)) ->
        match List.assoc_opt field current.timings with
        | None -> None
        | Some (c : Metric.summary) ->
          let noise = k_sigma *. Float.max b.Metric.stddev c.Metric.stddev in
          let rel =
            if b.Metric.mean <> 0. then
              (c.Metric.mean -. b.Metric.mean) /. b.Metric.mean
            else if c.Metric.mean = 0. then 0.
            else infinity
          in
          Some
            {
              field;
              base_mean = b.Metric.mean;
              cur_mean = c.Metric.mean;
              rel;
              noise;
            })
      baseline.timings
  in
  let significant d =
    Float.abs d.rel > rel_threshold
    && Float.abs (d.cur_mean -. d.base_mean) > d.noise
  in
  let regressions = List.filter (fun d -> d.rel > 0. && significant d) deltas in
  let improvements =
    List.filter (fun d -> d.rel < 0. && significant d) deltas
  in
  {
    meta_mismatch;
    counter_mismatch;
    regressions;
    improvements;
    checked = List.length deltas;
    ok = meta_mismatch = [] && counter_mismatch = [] && regressions = [];
  }

let report v =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter (fun f -> pf "META MISMATCH  %s differs from the baseline\n" f)
    v.meta_mismatch;
  List.iter
    (fun (f, b, c) -> pf "COUNTER        %s: baseline %d, current %d\n" f b c)
    v.counter_mismatch;
  List.iter
    (fun d ->
      pf "REGRESSION     %s: %.6g -> %.6g (%+.1f%%, tolerance %.3g)\n" d.field
        d.base_mean d.cur_mean (100. *. d.rel) d.noise)
    v.regressions;
  List.iter
    (fun d ->
      pf "improvement    %s: %.6g -> %.6g (%+.1f%%)\n" d.field d.base_mean
        d.cur_mean (100. *. d.rel))
    v.improvements;
  pf "%s (%d timed field%s checked)\n"
    (if v.ok then "PASS" else "FAIL")
    v.checked
    (if v.checked = 1 then "" else "s");
  Buffer.contents buf

let delta_json d =
  Json.Obj
    [
      ("field", Json.Str d.field);
      ("baseline_mean", Json.Float d.base_mean);
      ("current_mean", Json.Float d.cur_mean);
      ("rel", Json.Float d.rel);
      ("noise_tolerance", Json.Float d.noise);
    ]

let verdict_to_json v =
  Json.Obj
    [
      ("ok", Json.Bool v.ok);
      ("checked", Json.Int v.checked);
      ("meta_mismatch", Json.List (List.map (fun f -> Json.Str f) v.meta_mismatch));
      ( "counter_mismatch",
        Json.List
          (List.map
             (fun (f, b, c) ->
               Json.Obj
                 [
                   ("field", Json.Str f);
                   ("baseline", Json.Int b);
                   ("current", Json.Int c);
                 ])
             v.counter_mismatch) );
      ("regressions", Json.List (List.map delta_json v.regressions));
      ("improvements", Json.List (List.map delta_json v.improvements));
    ]
