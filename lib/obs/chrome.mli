(** Chrome [trace_event] exporter.

    Produces the JSON object-format trace understood by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: one
    complete ("ph":"X") event per span, one virtual process, one thread
    per rank, timestamps in microseconds. Span times are seconds
    (virtual or wall) and are scaled by [time_scale] (default 1e6, i.e.
    seconds → µs). *)

val to_json :
  ?process_name:string ->
  ?time_scale:float ->
  ?meta:Runmeta.t ->
  ?edges:Recorder.edge list ->
  nprocs:int ->
  Span.t list ->
  Tiles_util.Json.t
(** The complete [{"traceEvents": [...], ...}] document, including
    thread-name metadata events for every rank in [0, nprocs). With
    [meta], the run's provenance is embedded under the top-level
    [metadata] key (the object format's free-form metadata slot), so a
    trace downloaded from CI is self-describing. With [edges], every
    message dependency is emitted as a flow-event pair ("ph":"s" on the
    sender carrying the full edge record in its args, "ph":"f" with
    "bp":"e" on the receiver), so viewers draw the send→recv arrows and
    {!of_json} recovers the edges without re-joining. *)

val write :
  ?process_name:string ->
  ?time_scale:float ->
  ?meta:Runmeta.t ->
  ?edges:Recorder.edge list ->
  nprocs:int ->
  path:string ->
  Span.t list ->
  unit
(** {!to_json} rendered to [path] with a trailing newline. *)

(** {2 Reading traces back}

    [tilec analyze --from] re-analyzes a previously written artifact, so
    the exporter is paired with a reader for its own output. *)

type archive = {
  nprocs : int;  (** highest tid seen + 1 (thread-name events count) *)
  spans : Span.t list;  (** time-ordered *)
  edges : Recorder.edge list;  (** from "tiles-flow" start events *)
}

val of_json : ?time_scale:float -> Tiles_util.Json.t -> (archive, string) result
(** Parse a trace-event document produced by {!to_json} (foreign "X"
    events whose name is not a span kind are ignored). [time_scale] must
    match the one used to write (default 1e6). *)

val read : path:string -> (archive, string) result
