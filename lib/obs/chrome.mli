(** Chrome [trace_event] exporter.

    Produces the JSON object-format trace understood by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: one
    complete ("ph":"X") event per span, one virtual process, one thread
    per rank, timestamps in microseconds. Span times are seconds
    (virtual or wall) and are scaled by [time_scale] (default 1e6, i.e.
    seconds → µs). *)

val to_json :
  ?process_name:string ->
  ?time_scale:float ->
  ?meta:Runmeta.t ->
  nprocs:int ->
  Span.t list ->
  Tiles_util.Json.t
(** The complete [{"traceEvents": [...], ...}] document, including
    thread-name metadata events for every rank in [0, nprocs). With
    [meta], the run's provenance is embedded under the top-level
    [metadata] key (the object format's free-form metadata slot), so a
    trace downloaded from CI is self-describing. *)

val write :
  ?process_name:string ->
  ?time_scale:float ->
  ?meta:Runmeta.t ->
  nprocs:int ->
  path:string ->
  Span.t list ->
  unit
(** {!to_json} rendered to [path] with a trailing newline. *)
