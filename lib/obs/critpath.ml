(* Causal critical path over the traced event DAG.

   Nodes are spans in per-rank program order; cross-rank arcs are the
   matched send->recv edges from the recorder. The path is extracted by
   a backward walk from the completion instant: follow the rank that
   finished last backwards through its spans; whenever the walk reaches
   the end of a Wait span that was released by a message, hop along that
   edge onto the sending rank at the moment the message left it. The
   resulting segments tile the interval [0, completion] in time while
   hopping between ranks, so their durations sum to the makespan — the
   "where did the time go" decomposition the busy-time proxy cannot
   give.

   A second, forward-looking pass runs classic CPM slack: processing
   spans in decreasing end time, each span's latest harmless end time is
   pulled back from its successors (the next span on its rank, plus —
   for spans that feed a message — the latest time the receiver could
   tolerate the message arriving). A rank's slack is the minimum over
   its spans: how much it could slow down without moving the makespan.

   Wall-clock (shm) traces race on the shared clock, so a sender's stamp
   may exceed the matched receiver's ready stamp by scheduling jitter;
   all hops clamp to keep time monotonically decreasing, and an
   iteration budget bounds the walk in adversarial inputs. *)

type seg_kind = Activity of Span.kind | Flight | Queue | Idle

type segment = {
  sg_rank : int;
  sg_t0 : float;
  sg_t1 : float;
  sg_kind : seg_kind;
  sg_phase : int option;
}

type report = {
  nprocs : int;
  completion : float;
  segments : segment list;
  path_length : float;
  coverage : float;
  kind_seconds : (string * float) list;
  rank_on_path : float array;
  phase_seconds : (int option * float) list;
  phase_queue_seconds : (int option * float) list;
  edges_crossed : int;
  max_rank_busy : float;
  imbalance : float;
  slack : float array;
}

let seg_kind_name = function
  | Activity k -> Span.kind_name k
  | Flight -> "flight"
  | Queue -> "nic-queue"
  | Idle -> "idle"

let seg_duration s = s.sg_t1 -. s.sg_t0

(* per-rank spans sorted by start, with a prefix argmax-by-end table so
   "latest-ending span starting before t" is a binary search *)
type rank_spans = {
  t0s : float array;
  t1s : float array;
  kinds : Span.kind array;
  best : int array;  (* best.(i) = argmax t1 over indices 0..i *)
}

let index_spans ~nprocs spans =
  let per = Array.make nprocs [] in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.rank < 0 || s.Span.rank >= nprocs then
        invalid_arg "Critpath.analyze: span rank out of range";
      per.(s.Span.rank) <- s :: per.(s.Span.rank))
    spans;
  Array.map
    (fun ss ->
      let a = Array.of_list ss in
      Array.sort
        (fun (x : Span.t) (y : Span.t) -> Float.compare x.Span.t0 y.Span.t0)
        a;
      let n = Array.length a in
      let t0s = Array.map (fun (s : Span.t) -> s.Span.t0) a in
      let t1s = Array.map (fun (s : Span.t) -> s.Span.t1) a in
      let kinds = Array.map (fun (s : Span.t) -> s.Span.kind) a in
      let best = Array.make n 0 in
      for i = 1 to n - 1 do
        best.(i) <- (if t1s.(i) >= t1s.(best.(i - 1)) then i else best.(i - 1))
      done;
      { t0s; t1s; kinds; best })
    per

(* latest-ending span on [rs] starting strictly before [t] (minus eps) *)
let find_before rs ~eps t =
  let n = Array.length rs.t0s in
  if n = 0 || rs.t0s.(0) >= t -. eps then None
  else begin
    (* largest i with t0s.(i) < t - eps *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if rs.t0s.(mid) < t -. eps then lo := mid else hi := mid - 1
    done;
    let j = rs.best.(!lo) in
    Some (rs.t0s.(j), rs.t1s.(j), rs.kinds.(j))
  end

(* per-destination edge index for binding a Wait span to the message
   that released it: ready stamp matches the wait's end; prefer an edge
   whose posted stamp also matches the wait's start, then the one that
   left its sender last (the binding dependency) *)
let index_edges ~nprocs edges =
  let per = Array.make nprocs [] in
  List.iter
    (fun (e : Recorder.edge) ->
      if e.Recorder.e_dst >= 0 && e.Recorder.e_dst < nprocs then
        per.(e.Recorder.e_dst) <- e :: per.(e.Recorder.e_dst))
    edges;
  per

let bind_edge per_dst ~eps ~rank ~t0 ~t1 =
  if rank < 0 || rank >= Array.length per_dst then None
  else begin
    let open Recorder in
    let ready_match =
      List.filter
        (fun e ->
          Float.abs (e.e_ready -. t1) <= eps && e.e_ready > e.e_posted +. eps)
        per_dst.(rank)
    in
    let candidates =
      match
        List.filter (fun e -> Float.abs (e.e_posted -. t0) <= eps) ready_match
      with
      | [] -> ready_match
      | posted_match -> posted_match
    in
    List.fold_left
      (fun acc e ->
        match acc with
        | Some b when b.e_sent >= e.e_sent -> acc
        | _ -> Some e)
      None candidates
  end

let busy_per_rank ~nprocs spans =
  let busy = Array.make nprocs 0. in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.kind <> Span.Wait then
        busy.(s.Span.rank) <- busy.(s.Span.rank) +. Span.duration s)
    spans;
  busy

(* ---------------------------- slack (CPM) ---------------------------- *)

let compute_slack ~nprocs ~eps ~completion ~per_dst spans =
  let all = Array.of_list spans in
  (* decreasing end time; at an exact tie a Wait goes first, because a
     zero-flight message (possible after shm clock clamping) ends the
     receiver's Wait at the very stamp the sender's Send span ends — the
     Wait must push its deadline point before the sender consumes it *)
  let order (s : Span.t) = if s.Span.kind = Span.Wait then 0 else 1 in
  Array.sort
    (fun (a : Span.t) (b : Span.t) ->
      let c = Float.compare b.Span.t1 a.Span.t1 in
      if c <> 0 then c else compare (order a) (order b))
    all;
  let next_late = Array.make nprocs completion in
  let slack = Array.make nprocs completion in
  (* deadline points (p, deadline) owed to each rank by receivers whose
     wait was released by a message this rank sent at time p *)
  let pending = Array.make nprocs [] in
  Array.iter
    (fun (s : Span.t) ->
      let r = s.Span.rank in
      let keep = ref [] and le = ref next_late.(r) in
      List.iter
        (fun ((p, dl) as pt) ->
          if p <= s.Span.t0 +. eps then keep := pt :: !keep
          else if p <= s.Span.t1 +. eps then
            (* the send leaves mid-span: sliding the span by d slides the
               send point by d, so late end = deadline + (t1 - p) *)
            le := Float.min !le (dl +. (s.Span.t1 -. p)))
            (* points beyond the span's end landed in an idle gap: the
               gap absorbs them, no constraint on this span *)
        pending.(r);
      pending.(r) <- !keep;
      let bound =
        if s.Span.kind = Span.Wait then
          bind_edge per_dst ~eps ~rank:r ~t0:s.Span.t0 ~t1:s.Span.t1
        else None
      in
      let s_slack = Float.max 0. (!le -. s.Span.t1) in
      (match bound with
      | Some e ->
        let open Recorder in
        let flight = Float.max 0. (e.e_ready -. e.e_sent) in
        pending.(e.e_src) <- (e.e_sent, !le -. flight) :: pending.(e.e_src);
        (* a released wait is elastic: its predecessor may run right up
           to the message's latest tolerable arrival *)
        next_late.(r) <- !le
      | None -> next_late.(r) <- s.Span.t0 +. s_slack);
      slack.(r) <- Float.min slack.(r) s_slack)
    all;
  Array.map (fun s -> Float.max 0. (Float.min s completion)) slack

(* --------------------------- backward walk --------------------------- *)

let analyze ?(eps = 1e-9) ?completion ~nprocs ~edges spans =
  if nprocs <= 0 then invalid_arg "Critpath.analyze: nprocs";
  let completion =
    match completion with
    | Some c -> c
    | None ->
      let c =
        List.fold_left
          (fun acc (s : Span.t) -> Float.max acc s.Span.t1)
          0. spans
      in
      List.fold_left
        (fun acc (e : Recorder.edge) -> Float.max acc e.Recorder.e_ready)
        c edges
  in
  let per_rank = index_spans ~nprocs spans in
  let per_dst = index_edges ~nprocs edges in
  let busy = busy_per_rank ~nprocs spans in
  let max_rank_busy = Array.fold_left Float.max 0. busy in
  let mean_busy =
    Array.fold_left ( +. ) 0. busy /. float_of_int nprocs
  in
  let imbalance =
    if max_rank_busy > 0. then (max_rank_busy -. mean_busy) /. max_rank_busy
    else 0.
  in
  (* start on the rank whose trace ends last *)
  let start_rank = ref 0 and start_end = ref neg_infinity in
  Array.iteri
    (fun r rs ->
      let n = Array.length rs.t0s in
      if n > 0 then begin
        let e = rs.t1s.(rs.best.(n - 1)) in
        if e > !start_end then begin
          start_end := e;
          start_rank := r
        end
      end)
    per_rank;
  let segments = ref [] in
  let edges_crossed = ref 0 in
  let nspans = List.length spans and nedges = List.length edges in
  let fuel = ref ((10 * (nspans + nedges)) + nprocs + 16) in
  let cur_r = ref !start_rank in
  let cur_t = ref completion in
  let phase = ref None in
  let emit rank t0 t1 kind =
    if t1 -. t0 > 0. then
      segments :=
        { sg_rank = rank; sg_t0 = t0; sg_t1 = t1; sg_kind = kind;
          sg_phase = !phase }
        :: !segments
  in
  if !start_end > neg_infinity then
    while !cur_t > eps && !fuel > 0 do
      decr fuel;
      match find_before per_rank.(!cur_r) ~eps !cur_t with
      | None ->
        (* nothing earlier on this rank: idle back to time zero *)
        emit !cur_r 0. !cur_t Idle;
        cur_t := 0.
      | Some (t0, t1, kind) ->
        if t1 < !cur_t -. eps then begin
          emit !cur_r t1 !cur_t Idle;
          cur_t := t1
        end
        else begin
          let hop =
            if kind = Span.Wait && Float.abs (t1 -. !cur_t) <= eps then
              bind_edge per_dst ~eps ~rank:!cur_r ~t0 ~t1
            else None
          in
          match hop with
          | Some e ->
            let open Recorder in
            let jump = Float.max 0. (Float.min e.e_sent !cur_t) in
            incr edges_crossed;
            (* the flight and everything earlier belong to the phase
               (tile step) the crossed edge carries as its tag *)
            phase := Some e.e_tag;
            (* a contended flight decomposes into the NIC/uplink
               queueing the edge carries plus the pure wire+latency
               remainder (the walk emits later segments first) *)
            let q =
              Float.max 0. (Float.min e.e_queued (!cur_t -. jump))
            in
            emit !cur_r (jump +. q) !cur_t Flight;
            emit !cur_r jump (jump +. q) Queue;
            cur_r := e.e_src;
            cur_t := jump
          | None ->
            emit !cur_r t0 (Float.min t1 !cur_t) (Activity kind);
            cur_t := t0
        end
    done;
  let segments = !segments in
  (* the walk pushed newest-first; it is already chronological *)
  let path_length =
    List.fold_left (fun acc s -> acc +. seg_duration s) 0. segments
  in
  let coverage = if completion > 0. then path_length /. completion else 0. in
  let kind_seconds =
    let names =
      List.map Span.kind_name Span.all_kinds @ [ "flight"; "nic-queue"; "idle" ]
    in
    let sums = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let k = seg_kind_name s.sg_kind in
        let cur = Option.value ~default:0. (Hashtbl.find_opt sums k) in
        Hashtbl.replace sums k (cur +. seg_duration s))
      segments;
    List.map
      (fun n -> (n, Option.value ~default:0. (Hashtbl.find_opt sums n)))
      names
  in
  let rank_on_path = Array.make nprocs 0. in
  List.iter
    (fun s ->
      match s.sg_kind with
      | Activity _ | Idle ->
        rank_on_path.(s.sg_rank) <- rank_on_path.(s.sg_rank) +. seg_duration s
      | Flight | Queue -> ())
    segments;
  let phase_order (a, _) (b, _) =
    match (a, b) with
    | Some x, Some y -> compare x y
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  let phase_sums keep =
    let sums = Hashtbl.create 16 in
    List.iter
      (fun s ->
        if keep s then begin
          let cur =
            Option.value ~default:0. (Hashtbl.find_opt sums s.sg_phase)
          in
          Hashtbl.replace sums s.sg_phase (cur +. seg_duration s)
        end)
      segments;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) sums []
    |> List.sort phase_order
  in
  let phase_seconds = phase_sums (fun _ -> true) in
  let phase_queue_seconds = phase_sums (fun s -> s.sg_kind = Queue) in
  let slack = compute_slack ~nprocs ~eps ~completion ~per_dst spans in
  {
    nprocs;
    completion;
    segments;
    path_length;
    coverage;
    kind_seconds;
    rank_on_path;
    phase_seconds;
    phase_queue_seconds;
    edges_crossed = !edges_crossed;
    max_rank_busy;
    imbalance;
    slack;
  }

let laggards ?(k = 5) t =
  let ranked =
    Array.to_list (Array.mapi (fun r s -> (r, s)) t.rank_on_path)
  in
  let sorted =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) ranked
  in
  List.filteri (fun i (_, s) -> i < k && s > 0.) sorted

(* ------------------------------- output ------------------------------- *)

module Json = Tiles_util.Json

let segment_json s =
  Json.Obj
    ([
       ("rank", Json.Int s.sg_rank);
       ("t0_s", Json.Float s.sg_t0);
       ("t1_s", Json.Float s.sg_t1);
       ("kind", Json.Str (seg_kind_name s.sg_kind));
     ]
    @ match s.sg_phase with
      | None -> []
      | Some p -> [ ("phase", Json.Int p) ])

let to_json ?(segments = true) ?(per_rank = true) t =
  Json.Obj
    ([
       ("nprocs", Json.Int t.nprocs);
       ("completion_s", Json.Float t.completion);
       ("path_length_s", Json.Float t.path_length);
       ("coverage", Json.Float t.coverage);
       ("edges_crossed", Json.Int t.edges_crossed);
       ("max_rank_busy_s", Json.Float t.max_rank_busy);
       ("imbalance", Json.Float t.imbalance);
       ( "kind_seconds",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.kind_seconds)
       );
       ( "phase_seconds",
         Json.List
           (List.map
              (fun (p, v) ->
                let queue =
                  Option.value ~default:0.
                    (List.assoc_opt p t.phase_queue_seconds)
                in
                Json.Obj
                  ([
                     ( "phase",
                       match p with Some p -> Json.Int p | None -> Json.Null );
                     ("seconds", Json.Float v);
                   ]
                  @
                  if queue > 0. then [ ("queue_s", Json.Float queue) ]
                  else []))
              t.phase_seconds) );
       ( "laggards",
         Json.List
           (List.map
              (fun (r, s) ->
                Json.Obj
                  [ ("rank", Json.Int r); ("on_path_s", Json.Float s) ])
              (laggards t)) );
     ]
    @ (if per_rank then
         [
           ( "rank_on_path_s",
             Json.List
               (Array.to_list
                  (Array.map (fun v -> Json.Float v) t.rank_on_path)) );
           ( "slack_s",
             Json.List
               (Array.to_list (Array.map (fun v -> Json.Float v) t.slack)) );
         ]
       else [])
    @
    if segments then
      [ ("segments", Json.List (List.map segment_json t.segments)) ]
    else [])

let summary ?(top = 5) t =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "causal critical path %.6f s over completion %.6f s (coverage %.1f%%)\n"
    t.path_length t.completion (100. *. t.coverage);
  pf "%d message edges on the path; max rank busy %.6f s; imbalance %.3f\n"
    t.edges_crossed t.max_rank_busy t.imbalance;
  pf "  %-10s %14s %9s\n" "kind" "on-path (s)" "share";
  List.iter
    (fun (k, v) ->
      let share = if t.path_length > 0. then v /. t.path_length else 0. in
      pf "  %-10s %14.6f %8.1f%%\n" k v (100. *. share))
    t.kind_seconds;
  (let queue_total =
     Option.value ~default:0. (List.assoc_opt "nic-queue" t.kind_seconds)
   in
   if queue_total > 0. then begin
     pf "nic queueing on path %.6f s by phase:" queue_total;
     List.iter
       (fun (p, v) ->
         if v > 0. then
           match p with
           | Some p -> pf " %d: %.6f s;" p v
           | None -> pf " (pre-phase): %.6f s;" v)
       t.phase_queue_seconds;
     pf "\n"
   end);
  (match laggards ~k:top t with
  | [] -> ()
  | ls ->
    pf "top laggards (rank: on-path seconds, slack):\n";
    List.iter
      (fun (r, s) -> pf "  rank %-4d %10.6f s  slack %10.6f s\n" r s
          t.slack.(r))
      ls);
  Buffer.contents buf
