module Json = Tiles_util.Json

let version = "1.4"

type t = {
  app : string;
  variant : string;
  size1 : int;
  size2 : int;
  tile : int * int * int;
  nprocs : int;
  backend : string;
  overlap : bool;
  netmodel : string;
  walker : string;
  walker_fallback : string option;
  inner : int array option;
  job_id : string option;
  queued_s : float;
}

let make ~app ~variant ~size1 ~size2 ~tile ~nprocs ~backend ?(overlap = false)
    ~netmodel ?(walker = "fast") ?walker_fallback ?inner ?job_id
    ?(queued_s = 0.) () =
  {
    app; variant; size1; size2; tile; nprocs; backend; overlap; netmodel;
    walker; walker_fallback; inner; job_id; queued_s;
  }

let to_json t =
  let x, y, z = t.tile in
  Json.Obj
    ([
       ("tilec_version", Json.Str version);
       ("app", Json.Str t.app);
       ("variant", Json.Str t.variant);
       ("size1", Json.Int t.size1);
       ("size2", Json.Int t.size2);
       ("tile", Json.List [ Json.Int x; Json.Int y; Json.Int z ]);
       ("nprocs", Json.Int t.nprocs);
       ("backend", Json.Str t.backend);
       ("overlap", Json.Bool t.overlap);
       ("netmodel", Json.Str t.netmodel);
     ]
    (* job attribution is only meaningful for runs owned by a serve
       daemon; standalone artifacts stay byte-identical to the previous
       schema by omitting the fields at their defaults *)
    (* the walker only appears when it differs from the default fast
       path, so artifacts from walker-unaware producers stay identical *)
    @ (if t.walker <> "fast" then [ ("walker", Json.Str t.walker) ] else [])
    @ (match t.walker_fallback with
      | Some reason -> [ ("walker_fallback", Json.Str reason) ]
      | None -> [])
    (* the inner subtile shape only appears when blocked, so unblocked
       artifacts keep the pre-1.4 byte layout *)
    @ (match t.inner with
      | Some b ->
        [ ( "inner",
            Json.List (List.map (fun x -> Json.Int x) (Array.to_list b)) )
        ]
      | None -> [])
    @ (match t.job_id with
      | Some id -> [ ("job_id", Json.Str id) ]
      | None -> [])
    @ (if t.queued_s <> 0. then [ ("queued_s", Json.Float t.queued_s) ]
       else []))

let of_json j =
  let ( let* ) = Result.bind in
  let str key =
    match Option.bind (Json.member key j) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "run metadata: missing string %S" key)
  in
  let int key =
    match Option.bind (Json.member key j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "run metadata: missing int %S" key)
  in
  let* app = str "app" in
  let* variant = str "variant" in
  let* size1 = int "size1" in
  let* size2 = int "size2" in
  let* tile =
    match Json.member "tile" j with
    | Some (Json.List [ Json.Int x; Json.Int y; Json.Int z ]) -> Ok (x, y, z)
    | _ -> Error "run metadata: missing [x, y, z] \"tile\""
  in
  let* nprocs = int "nprocs" in
  let* backend = str "backend" in
  (* absent in files written before the overlap flag existed: those runs
     were all blocking *)
  let overlap =
    match Json.member "overlap" j with Some (Json.Bool b) -> b | _ -> false
  in
  let* netmodel = str "netmodel" in
  (* absent before schema 1.3: all earlier runs used the fast walker and
     never fell back *)
  let walker =
    match Option.bind (Json.member "walker" j) Json.to_str_opt with
    | Some w -> w
    | None -> "fast"
  in
  let walker_fallback =
    Option.bind (Json.member "walker_fallback" j) Json.to_str_opt
  in
  (* absent before schema 1.4: every earlier run walked unblocked *)
  let* inner =
    match Json.member "inner" j with
    | None -> Ok None
    | Some (Json.List xs) ->
      let rec ints acc = function
        | [] -> Ok (Some (Array.of_list (List.rev acc)))
        | Json.Int x :: rest -> ints (x :: acc) rest
        | _ -> Error "run metadata: \"inner\" must be a list of ints"
      in
      ints [] xs
    | Some _ -> Error "run metadata: \"inner\" must be a list of ints"
  in
  (* like [overlap]: files written before the serve daemon existed carry
     no job attribution — absent defaults to None / 0. *)
  let job_id = Option.bind (Json.member "job_id" j) Json.to_str_opt in
  let queued_s =
    match Option.bind (Json.member "queued_s" j) Json.to_float_opt with
    | Some q -> q
    | None -> 0.
  in
  Ok
    {
      app; variant; size1; size2; tile; nprocs; backend; overlap; netmodel;
      walker; walker_fallback; inner; job_id; queued_s;
    }
