module Json = Tiles_util.Json

let version = "1.2"

type t = {
  app : string;
  variant : string;
  size1 : int;
  size2 : int;
  tile : int * int * int;
  nprocs : int;
  backend : string;
  overlap : bool;
  netmodel : string;
}

let make ~app ~variant ~size1 ~size2 ~tile ~nprocs ~backend ?(overlap = false)
    ~netmodel () =
  { app; variant; size1; size2; tile; nprocs; backend; overlap; netmodel }

let to_json t =
  let x, y, z = t.tile in
  Json.Obj
    [
      ("tilec_version", Json.Str version);
      ("app", Json.Str t.app);
      ("variant", Json.Str t.variant);
      ("size1", Json.Int t.size1);
      ("size2", Json.Int t.size2);
      ("tile", Json.List [ Json.Int x; Json.Int y; Json.Int z ]);
      ("nprocs", Json.Int t.nprocs);
      ("backend", Json.Str t.backend);
      ("overlap", Json.Bool t.overlap);
      ("netmodel", Json.Str t.netmodel);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let str key =
    match Option.bind (Json.member key j) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "run metadata: missing string %S" key)
  in
  let int key =
    match Option.bind (Json.member key j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "run metadata: missing int %S" key)
  in
  let* app = str "app" in
  let* variant = str "variant" in
  let* size1 = int "size1" in
  let* size2 = int "size2" in
  let* tile =
    match Json.member "tile" j with
    | Some (Json.List [ Json.Int x; Json.Int y; Json.Int z ]) -> Ok (x, y, z)
    | _ -> Error "run metadata: missing [x, y, z] \"tile\""
  in
  let* nprocs = int "nprocs" in
  let* backend = str "backend" in
  (* absent in files written before the overlap flag existed: those runs
     were all blocking *)
  let overlap =
    match Json.member "overlap" j with Some (Json.Bool b) -> b | _ -> false
  in
  let* netmodel = str "netmodel" in
  Ok { app; variant; size1; size2; tile; nprocs; backend; overlap; netmodel }
