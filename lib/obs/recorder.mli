(** Per-rank span recorder with message counters and causal identity.

    Designed for concurrent backends: each rank obtains its own {!log}
    and only ever appends to it, so span recording is lock-free (no
    shared mutable state between ranks); the only cross-rank state is a
    pair of atomic in-flight byte counters. The simulator uses the same
    recorder API with explicit virtual timestamps.

    Counters (messages, bytes, in-flight) are always maintained; what
    else is retained depends on [trace] and [mode]:

    - [trace:false] — counters only.
    - [trace:true, mode:Retain] — the full span list, plus per-message
      send/receive records that {!edges} joins into causal send→recv
      dependency edges.
    - [trace:true, mode:Streaming] — spans are folded into per-rank
      per-kind totals and {!Metric} histograms plus a bounded reservoir
      of the longest Wait spans; memory stays O(nprocs) no matter how
      many spans the run produces. {!spans} and {!edges} return [[]].

    Causal identity: {!message_sent} and {!message_received} each assign
    a per-channel ((peer, tag)) sequence number on their own side. Every
    transport in this codebase delivers FIFO per (src, dst, tag), so the
    two sides' numbering agrees and the half-records join without any
    cross-rank coordination. *)

type t
type log

type mode = Retain | Streaming

type edge = {
  e_src : int;  (** sending rank *)
  e_dst : int;  (** receiving rank *)
  e_tag : int;  (** channel tag (the time-step phase for halo traffic) *)
  e_seq : int;  (** per-(src,dst,tag) sequence number, from 0 *)
  e_bytes : int;
  e_sent : float;  (** sender-side stamp: end of the send action *)
  e_posted : float;  (** receiver entered its wait *)
  e_ready : float;  (** receiver's wait ended; the message was available *)
  e_queued : float;
      (** seconds of the [e_sent → e_ready] flight spent queued behind
          other transfers in NIC lanes or the shared uplink (0 under the
          α-β model) *)
}
(** One matched send→recv dependency, with stamps from both sides. On the
    shm backend the two sides read the same monotonic clock but race on
    it, so [e_sent] may exceed [e_ready] by a scheduling jitter;
    consumers must clamp. *)

val create :
  ?mode:mode ->
  ?trace:bool ->
  ?clock:(unit -> float) ->
  ?label:string ->
  nprocs:int ->
  unit ->
  t
(** [clock] defaults to {!Clock.monotonic}; readings are rebased so time
    0 is the recorder's creation. [trace] defaults to [false], [mode] to
    [Retain]. [label] is carried verbatim (e.g. a serve job id) for
    attribution in downstream artifacts. *)

val tracing : t -> bool
val mode : t -> mode
val label : t -> string option
val nprocs : t -> int

val now : t -> float
(** Current (rebased) clock reading. *)

val log : t -> rank:int -> log
(** The rank's private log. Each log must only be used from the domain
    running that rank. *)

val span : log -> t0:float -> t1:float -> Span.kind -> unit
(** Record one span with explicit endpoints (no-op when not tracing or
    when [t1 <= t0]). *)

val mark : log -> unit
(** Set the rank's cursor to [now] — the start of the next {!close}d
    section. Call once when the rank starts running. *)

val close : log -> Span.kind -> unit
(** Record the interval from the cursor to [now] under the given kind
    and advance the cursor. This lets straight-line backend code
    partition its timeline by closing each section as it finishes. *)

val message_sent :
  log -> ?t:float -> dst:int -> tag:int -> bytes:int -> unit -> unit
(** Count one outgoing message on this rank; raises the in-flight byte
    level (and the high-water mark). When tracing in Retain mode, also
    records the sender half of the dependency edge: [t] is the stamp at
    which the message left this rank (defaults to the log's clock now)
    and should equal the end of the corresponding Send span. *)

val message_received :
  log ->
  ?t:float ->
  ?posted:float ->
  ?queued:float ->
  src:int ->
  tag:int ->
  bytes:int ->
  unit ->
  unit
(** Lower the in-flight byte level. When tracing in Retain mode, also
    records the receiver half of the dependency edge: [t] is when the
    message became available (wait end, defaults to now), [posted] when
    the receiver entered its wait (defaults to [t]) and [queued]
    (default 0) how much of the flight was NIC/uplink queueing. *)

val nic_queue : log -> float -> unit
(** Charge NIC/uplink queueing seconds to this rank. A counter like
    messages/bytes — maintained in every mode (including untraced and
    Streaming), summed by {!queue_seconds}. Non-positive charges are
    ignored. *)

val finish : log -> unit
(** Stamp the rank's completion time ([now]) for {!rank_finish}. *)

val spans : t -> Span.t list
(** All recorded spans, merged chronologically ([[]] in Streaming
    mode). *)

val edges : t -> edge list
(** Matched send→recv dependency edges, ordered by [e_ready] ([[]] in
    Streaming mode or when a send's record is missing). *)

val kind_seconds : t -> float array array
(** [nprocs × 5] summed span seconds, indexed by rank then by the order
    of {!Span.all_kinds}. Maintained in both modes whenever tracing —
    the streaming-mode replacement for folding {!spans}. *)

val kind_summary : t -> rank:int -> Span.kind -> Metric.summary
(** Streaming-mode histogram summary for one rank and kind (a zero
    summary when no such span was recorded or in Retain mode). *)

val longest_waits : ?k:int -> t -> Span.t list
(** The [k] (default 8) longest Wait spans observed, longest first —
    drawn from a bounded per-rank reservoir, so available in both modes
    at O(nprocs) cost. *)

val messages : t -> int
val bytes : t -> int
val max_inflight_bytes : t -> int
val rank_messages : t -> int array
val rank_bytes : t -> int array

val queue_seconds : t -> float
(** Total NIC/uplink queueing charged via {!nic_queue} (0 under the α-β
    model). *)

val rank_queue_seconds : t -> float array

val rank_finish : t -> float array
(** Per-rank completion stamps (0 for ranks that never called
    {!finish}). *)
