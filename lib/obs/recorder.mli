(** Per-rank span recorder with message counters.

    Designed for concurrent backends: each rank obtains its own {!log}
    and only ever appends to it, so span recording is lock-free (no
    shared mutable state between ranks); the only cross-rank state is a
    pair of atomic in-flight byte counters. The simulator uses the same
    recorder API with explicit virtual timestamps.

    Counters (messages, bytes, in-flight) are always maintained; spans
    are kept only when the recorder was created with [~trace:true], so an
    untraced run pays one branch per event. *)

type t
type log

val create : ?trace:bool -> ?clock:(unit -> float) -> nprocs:int -> unit -> t
(** [clock] defaults to {!Clock.monotonic}; readings are rebased so time
    0 is the recorder's creation. [trace] defaults to [false]. *)

val tracing : t -> bool
val nprocs : t -> int

val now : t -> float
(** Current (rebased) clock reading. *)

val log : t -> rank:int -> log
(** The rank's private log. Each log must only be used from the domain
    running that rank. *)

val span : log -> t0:float -> t1:float -> Span.kind -> unit
(** Record one span with explicit endpoints (no-op when not tracing or
    when [t1 <= t0]). *)

val mark : log -> unit
(** Set the rank's cursor to [now] — the start of the next {!close}d
    section. Call once when the rank starts running. *)

val close : log -> Span.kind -> unit
(** Record the interval from the cursor to [now] under the given kind
    and advance the cursor. This lets straight-line backend code
    partition its timeline by closing each section as it finishes. *)

val message_sent : log -> bytes:int -> unit
(** Count one outgoing message on this rank; raises the in-flight byte
    level (and the high-water mark). *)

val message_received : log -> bytes:int -> unit
(** Lower the in-flight byte level. *)

val finish : log -> unit
(** Stamp the rank's completion time ([now]) for {!rank_finish}. *)

val spans : t -> Span.t list
(** All recorded spans, merged chronologically. *)

val messages : t -> int
val bytes : t -> int
val max_inflight_bytes : t -> int
val rank_messages : t -> int array
val rank_bytes : t -> int array

val rank_finish : t -> float array
(** Per-rank completion stamps (0 for ranks that never called
    {!finish}). *)
