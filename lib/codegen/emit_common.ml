module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module Ratmat = Tiles_linalg.Ratmat
module Intmat = Tiles_linalg.Intmat
module Rat = Tiles_rat.Rat

let int_table1 name a =
  Printf.sprintf "static const int %s[%d] = { %s };" name (Array.length a)
    (String.concat ", " (Array.to_list (Array.map string_of_int a)))

let int_table2 name m =
  let rows =
    Array.to_list
      (Array.map
         (fun r ->
           Printf.sprintf "{ %s }"
             (String.concat ", " (Array.to_list (Array.map string_of_int r))))
         m)
  in
  Printf.sprintf "static const int %s[%d][%d] = { %s };" name (Array.length m)
    (Array.length m.(0))
    (String.concat ", " rows)

(* P' = Q / QDEN with integer Q *)
let pprime_numerator (tiling : Tiling.t) =
  let den =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc x -> Tiles_util.Ints.lcm acc (Rat.den x)) acc row)
      1 tiling.Tiling.p'
  in
  let q =
    Array.map (Array.map (fun x -> Rat.num x * (den / Rat.den x))) tiling.Tiling.p'
  in
  (q, den)

let constraint_tables prefix cs n =
  let a = Array.of_list (List.map (fun c -> Array.init n (Constr.coeff c)) cs) in
  let b = Array.of_list (List.map Constr.const cs) in
  [
    Printf.sprintf "#define %sNC %d" prefix (Array.length a);
    int_table2 (prefix ^ "A") a;
    int_table1 (prefix ^ "B") b;
  ]

let space_tables space =
  let n = Polyhedron.dim space in
  constraint_tables "SP" (Polyhedron.constraints space) n
  @ [
      {|/* is j inside the iteration space J^n? */
static int in_space(const int *j) {
  int c, k; long acc;
  for (c = 0; c < SPNC; c++) {
    acc = SPB[c];
    for (k = 0; k < NDIM; k++) acc += (long)SPA[c][k] * j[k];
    if (acc < 0) return 0;
  }
  return 1;
}|};
    ]

(* global-space step of one innermost TTIS increment: moving j' by
   c_{n-1}·e_{n-1} (a lattice vector, the last HNF basis column) moves j by
   c_{n-1}·Q[:,n-1]/QDEN, which is therefore integral *)
let jstep (tiling : Tiling.t) =
  let n = Tiling.dim tiling in
  let q, qden = pprime_numerator tiling in
  let c = tiling.Tiling.c.(n - 1) in
  Array.init n (fun i ->
      let num = c * q.(i).(n - 1) in
      if num mod qden <> 0 then
        invalid_arg "Emit_common.jstep: non-integral innermost global step";
      num / qden)

let core_tables ~tiling ~kernel ~skew ~reads =
  let n = Tiling.dim tiling in
  let q, qden = pprime_numerator tiling in
  let tinv = Ratmat.to_intmat_exn (Ratmat.inverse (Ratmat.of_intmat skew)) in
  let d = Array.of_list reads in
  let dp = Array.map (Intmat.apply tiling.Tiling.h') d in
  let defines =
    [
      Printf.sprintf "#define NDIM %d" n;
      Printf.sprintf "#define W %d" kernel.Ckernel.width;
      Printf.sprintf "#define NRD %d" kernel.Ckernel.nreads;
    ]
  in
  let tbls =
    [
      int_table1 "V" tiling.Tiling.v;
      int_table1 "CS" tiling.Tiling.c;
      int_table2 "HNF" tiling.Tiling.hnf;
      int_table2 "Q" q;
      Printf.sprintf "static const int QDEN = %d;" qden;
      int_table2 "D" d;
      int_table2 "DP" dp;
      int_table2 "TINV" tinv;
      int_table1 "JSTEP" (jstep tiling);
    ]
  in
  let helpers =
    [
      {|/* first admissible value of TTIS coordinate k given outer coords
   (incremental offsets of Fig. 2, as a triangular lattice solve) */
static int ttis_start(int k, const int *jp) {
  int t[NDIM]; int i, l; long acc;
  for (i = 0; i < k; i++) {
    acc = jp[i];
    for (l = 0; l < i; l++) acc -= (long)HNF[i][l] * t[l];
    t[i] = (int)(acc / HNF[i][i]);
  }
  acc = 0;
  for (l = 0; l < k; l++) acc += (long)HNF[k][l] * t[l];
  return imod((int)acc, HNF[k][k]);
}|};
      {|/* j = P'(V·tile + j')  (exact: QDEN divides the numerator on lattice points) */
static void global_of(const int *tile, const int *jp, int *j) {
  int i, l; long acc;
  for (i = 0; i < NDIM; i++) {
    acc = 0;
    for (l = 0; l < NDIM; l++) acc += (long)Q[i][l] * ((long)V[l] * tile[l] + jp[l]);
    j[i] = (int)(acc / QDEN);
  }
}|};
      {|/* original (un-skewed) coordinates */
static void orig(const int *j, int *o) {
  int i, l; long acc;
  for (i = 0; i < NDIM; i++) {
    acc = 0;
    for (l = 0; l < NDIM; l++) acc += (long)TINV[i][l] * j[l];
    o[i] = (int)acc;
  }
}|};
    ]
  in
  let boundary =
    [
      "/* initial / boundary data, in original coordinates */";
      "static double boundary_orig(const int *j, int f) {";
      "  (void)j; (void)f;";
    ]
    @ List.map (fun l -> "  " ^ l) kernel.Ckernel.boundary
    @ [
        "}";
        "static double boundary(const int *js, int f) {";
        "  int o[NDIM]; orig(js, o); return boundary_orig(o, f);";
        "}";
      ]
  in
  defines @ tbls @ helpers @ boundary

let tables ~plan ~kernel ~skew ~reads =
  core_tables ~tiling:plan.Plan.tiling ~kernel ~skew ~reads
  @ space_tables plan.Plan.nest.Tiles_loop.Nest.space

(* Strength-reduced global addressing for the sequential generators: the
   innermost loop keeps a running flat index [gi] into DATA (gidx is affine
   over the dense bounding box, so one innermost step always adds GSTEP) and
   each read tap is a constant flat offset DOFF[r].  Emitted after GDIMS and
   DATA are declared; GDIMS may only be known at runtime (pseqgen), so the
   derived strides are filled in by strength_init(). *)
let strength_helpers =
  [
    {|/* row-start gidx, then addition-only addressing (Tables 1-2 applied
   to the dense data box): GS = data strides, GSTEP = flat step of one
   innermost TTIS increment, DOFF[r] = flat offset of read tap r */
static long GS[NDIM], GSTEP, DOFF[NRD];
static void strength_init(void) {
  int k, r;
  GS[NDIM - 1] = 1;
  for (k = NDIM - 2; k >= 0; k--) GS[k] = GS[k + 1] * GDIMS[k + 1];
  GSTEP = 0;
  for (k = 0; k < NDIM; k++) GSTEP += GS[k] * JSTEP[k];
  for (r = 0; r < NRD; r++) {
    DOFF[r] = 0;
    for (k = 0; k < NDIM; k++) DOFF[r] -= GS[k] * (long)D[r][k];
  }
}|};
    {|/* boundary-aware tap read through the precomputed flat offset */
static double rd_sr(const int *j, long gi, int r, int f) {
  int src[NDIM], k;
  for (k = 0; k < NDIM; k++) src[k] = j[k] - D[r][k];
  return in_space(src) ? DATA[(gi + DOFF[r]) * W + f] : boundary(src, f);
}|};
  ]

let bbox_tables space =
  let bbox = Polyhedron.bounding_box space in
  let lo = Array.map fst bbox in
  let dims = Array.map (fun (l, h) -> h - l + 1) bbox in
  let total = Array.fold_left ( * ) 1 dims in
  [
    int_table1 "GLO" lo;
    int_table1 "GDIMS" dims;
    Printf.sprintf "#define GTOT %d" total;
    {|static int gidx(const int *j) {
  int k, idx = 0;
  for (k = 0; k < NDIM; k++) idx = idx * GDIMS[k] + (j[k] - GLO[k]);
  return idx;
}|};
  ]
