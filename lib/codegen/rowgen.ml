(* C source for the native walker: one compiled row function per
   (plan, kernel, skew). The OCaml walker keeps the row enumeration
   (Fourier–Motzkin + residue alignment) and hands each row to the
   compiled entry point, which does the per-point work: interior rows
   read through precomputed flat tap offsets with no guards; boundary
   rows guard each tap with [in_space] and fall back to the boundary
   function in original coordinates. Tap offsets arrive as LDS *cell*
   deltas exactly as the strength-reduced OCaml path uses them, so the
   two paths address identically and results are bit-for-bit equal. *)

module Plan = Tiles_core.Plan

let entry_symbol = "tilec_row"

let generate ?inner ~plan ~kernel ~skew ~reads ~uses_j () =
  let width = kernel.Ckernel.width in
  let body = List.map (fun l -> "  " ^ l) kernel.Ckernel.body in
  let store =
    if width = 1 then [ "  la[cur] = out[0];" ]
    else [ "  for (f = 0; f < W; f++) la[cur * W + f] = out[f];" ]
  in
  let advance_j = [ "  for (k = 0; k < NDIM; k++) j[k] += JSTEP[k];" ] in
  let per_point ~interior =
    (if uses_j then [ "  orig(j, jo);" ] else [])
    @ body @ store @ [ "  cur++;" ]
    @ (if uses_j || not interior then advance_j else [])
  in
  let scratch =
    [
      "  int jo[NDIM]; double out[W]; long s; int k, f;";
      "  (void)jo; (void)k; (void)f;";
    ]
  in
  let loop lines =
    [ "  for (s = 0; s < len; s++) {" ]
    @ List.map (fun l -> "  " ^ l) lines
    @ [ "  }" ]
  in
  let row_fn name ~interior =
    [
      Printf.sprintf
        "static void %s(double *la, long cur, const long *taps, int *j, \
         long len)"
        name;
      "{";
    ]
    @ scratch
    @ loop (per_point ~interior)
    @ [ "}" ]
  in
  (* The inner subtile shape is part of this object's identity: the
     walker drives the compiled row over subtile row segments, so an
     object built for one schedule must never be cache-hit by another.
     Baking the shape into the source extends the content address
     (Native_kernel digests the full text) without changing the row
     ABI. *)
  let inner_tag =
    match inner with
    | None -> [ "/* walk schedule: unblocked (no inner subtile) */" ]
    | Some b ->
      [
        Printf.sprintf "/* walk schedule: inner subtile shape [%s] */"
          (String.concat ", " (Array.to_list (Array.map string_of_int b)));
        Printf.sprintf "static const long tilec_inner[] = { %s };"
          (String.concat ", " (Array.to_list (Array.map string_of_int b)));
        "static const long *tilec_inner_ref "
        ^ "__attribute__((unused)) = tilec_inner;";
      ]
  in
  let prelude =
    inner_tag
    @ Emit_common.tables ~plan ~kernel ~skew ~reads
    @ [
        {|/* boundary-aware tap read: guard in skewed coordinates, boundary
   values in original coordinates (boundary() un-skews internally) */
static double rd_b(const double *la, long cur, const long *taps,
                   const int *j, int i, int f) {
  int src[NDIM], k;
  for (k = 0; k < NDIM; k++) src[k] = j[k] - D[i][k];
  return in_space(src) ? la[(cur + taps[i]) * W + f] : boundary(src, f);
}|};
        "#define WR(f) out[(f)]";
        "#define J(k) jo[(k)]";
        "";
        "#define RD(i, f) la[(cur + taps[(i)]) * W + (f)]";
      ]
    @ row_fn "row_interior" ~interior:true
    @ [ "#undef RD"; ""; "#define RD(i, f) rd_b(la, cur, taps, j, (i), (f))" ]
    @ row_fn "row_boundary" ~interior:false
    @ [ "#undef RD" ]
  in
  let entry =
    {
      C_ast.ret = "void";
      name = entry_symbol;
      params =
        [
          ("double *", "la");
          ("long", "cur");
          ("const long *", "taps");
          ("const long *", "j0");
          ("long", "len");
          ("long", "interior");
        ];
      body =
        [
          C_ast.RawStmt "int j[NDIM]; int k;";
          C_ast.RawStmt "for (k = 0; k < NDIM; k++) j[k] = (int)j0[k];";
          C_ast.RawStmt
            "if (interior) row_interior(la, cur, taps, j, len);";
          C_ast.RawStmt "else row_boundary(la, cur, taps, j, len);";
        ];
    }
  in
  C_ast.program ~includes:[ "math.h" ] ~prelude [ entry ]
