(** Shared pieces of the sequential and MPI code generators: the static
    tables (tiling matrices, dependence offsets, space constraints) and
    the runtime helper functions (lattice start offsets, space membership,
    global-coordinate reconstruction) that both emitted programs need. *)

val int_table1 : string -> int array -> string
val int_table2 : string -> int array array -> string

val constraint_tables : string -> Tiles_poly.Constr.t list -> int -> string list
(** [[prefix]NC] count define plus [[prefix]A]/[[prefix]B] coefficient and
    constant tables for a constraint system over [n] variables. *)

val jstep : Tiles_core.Tiling.t -> int array
(** Global-space delta of one innermost TTIS increment, i.e.
    [c_{n-1} * Q[:,n-1] / QDEN].  Integral because [c_{n-1} * e_{n-1}] is
    the last HNF basis column; raises [Invalid_argument] otherwise. *)

val core_tables :
  tiling:Tiles_core.Tiling.t ->
  kernel:Ckernel.t ->
  skew:Tiles_linalg.Intmat.t ->
  reads:Tiles_util.Vec.t list ->
  string list
(** Space-independent prelude: NDIM/W/NRD defines, V/C/HNF/Q/QDEN/D/DP/
    TINV tables, [ttis_start], [global_of], [orig] and [boundary] (from
    the kernel's C body). [boundary] calls [in_space]-independent code;
    the space-membership test itself comes from {!space_tables} or a
    parametric equivalent. *)

val space_tables : Tiles_poly.Polyhedron.t -> string list
(** Concrete-space constraint tables plus the [in_space] helper. *)

val tables :
  plan:Tiles_core.Plan.t ->
  kernel:Ckernel.t ->
  skew:Tiles_linalg.Intmat.t ->
  reads:Tiles_util.Vec.t list ->
  string list
(** [space_tables] + [core_tables] for a concrete plan. *)

val strength_helpers : string list
(** Strength-reduced DATA addressing for the sequential generators:
    GS/GSTEP/DOFF tables with a runtime [strength_init()] (GDIMS may be
    parametric) and the flat-offset tap reader [rd_sr].  Must be emitted
    after GDIMS, the JSTEP table (from {!core_tables}) and [DATA]. *)

val bbox_tables : Tiles_poly.Polyhedron.t -> string list
(** GLO/GDIMS/GTOT tables and [gidx] for a dense bounding-box data array
    (sequential generator / verification path). *)
