module Pspace = Tiles_poly.Pspace
module Constr = Tiles_poly.Constr
module FM = Tiles_poly.Fourier_motzkin
module Tiling = Tiles_core.Tiling
module Intmat = Tiles_linalg.Intmat
open C_ast

(* C identifier for a parameter *)
let cname p = "P_" ^ p

(* Constraints over (params, j^S, j): the parametric analogue of
   Tile_space.combined_system. Variable layout: p parameters, then n tile
   coordinates, then n iteration coordinates. *)
let combined_system (pspace : Pspace.t) (tiling : Tiling.t) =
  let p = Pspace.nparams pspace in
  let n = tiling.Tiling.n in
  let lift c =
    (* pspace constraints are over (params, j); insert the j^S block *)
    let coeffs = Array.make (p + (2 * n)) 0 in
    for i = 0 to p - 1 do
      coeffs.(i) <- Constr.coeff c i
    done;
    for i = 0 to n - 1 do
      coeffs.(p + n + i) <- Constr.coeff c (p + i)
    done;
    Constr.make ~coeffs ~const:(Constr.const c)
  in
  let band k =
    let lo = Array.make (p + (2 * n)) 0 and hi = Array.make (p + (2 * n)) 0 in
    for i = 0 to n - 1 do
      lo.(p + n + i) <- tiling.Tiling.h'.(k).(i);
      hi.(p + n + i) <- -tiling.Tiling.h'.(k).(i)
    done;
    lo.(p + k) <- -tiling.Tiling.v.(k);
    hi.(p + k) <- tiling.Tiling.v.(k);
    [ Constr.make ~coeffs:lo ~const:0;
      Constr.make ~coeffs:hi ~const:(tiling.Tiling.v.(k) - 1) ]
  in
  List.map lift pspace.Pspace.cs @ List.concat (List.init n band)

let generate ~pspace ~tiling ~kernel ~reads ?skew () =
  let n = Tiling.dim tiling in
  let p = Pspace.nparams pspace in
  if pspace.Pspace.dim <> n then invalid_arg "Pseqgen.generate: dimension";
  if List.length reads <> kernel.Ckernel.nreads then
    invalid_arg "Pseqgen.generate: reads count differs from kernel.nreads";
  let skew = match skew with Some s -> s | None -> Intmat.identity n in
  (* name resolution for expressions over (params, j^S): indices < p are
     parameters, the rest are tile-loop variables *)
  let sname idx =
    if idx < p then cname pspace.Pspace.params.(idx)
    else Printf.sprintf "s[%d]" (idx - p)
  in
  (* tile-space projection: eliminate the n iteration variables *)
  let tile_sys =
    FM.eliminate_all_but
      (combined_system pspace tiling)
      ~dim:(p + (2 * n))
      ~keep:(List.init (p + n) (fun i -> i))
  in
  let restrict c =
    Constr.make
      ~coeffs:(Array.init (p + n) (Constr.coeff c))
      ~const:(Constr.const c)
  in
  let tile_proj = FM.project (List.map restrict tile_sys) ~dim:(p + n) in
  (* parametric in_space over (params, j) *)
  let pn = p + n in
  let space_tables =
    Emit_common.constraint_tables "SP" pspace.Pspace.cs pn
    @ [
        Printf.sprintf "#define NPAR %d" p;
        "static int PAR[NPAR > 0 ? NPAR : 1];";
        {|/* is j inside the parameterized iteration space? */
static int in_space(const int *j) {
  int c, k; long acc;
  for (c = 0; c < SPNC; c++) {
    acc = SPB[c];
    for (k = 0; k < NPAR; k++) acc += (long)SPA[c][k] * PAR[k];
    for (k = 0; k < NDIM; k++) acc += (long)SPA[c][NPAR + k] * j[k];
    if (acc < 0) return 0;
  }
  return 1;
}|};
      ]
  in
  (* parameter name aliases so printed bound expressions compile *)
  let param_aliases =
    List.init p (fun i ->
        Printf.sprintf "#define %s (PAR[%d])" (cname pspace.Pspace.params.(i)) i)
  in
  let prelude =
    Emit_common.core_tables ~tiling ~kernel ~skew ~reads
    @ space_tables @ param_aliases
    @ [
        "/* data-space extents, computed at runtime from the parameters */";
        "static int GLO[NDIM], GDIMS[NDIM];";
        "static long GTOT;";
        {|static long gidx(const int *j) {
  int k; long idx = 0;
  for (k = 0; k < NDIM; k++) idx = idx * GDIMS[k] + (j[k] - GLO[k]);
  return idx;
}|};
        "static double *DATA;";
      ]
    @ Emit_common.strength_helpers
    @ [
        "#define RD(i, f) rd_sr(j, gi, (i), (f))";
        "#define WR(f) out[(f)]";
        "#define J(k) jo[(k)]";
      ]
  in
  (* runtime extent computation per dimension *)
  let extent_stmts =
    List.concat
      (List.init n (fun k ->
           let cs = Pspace.var_bounds_system pspace ~var:k in
           let name idx =
             if idx < p then cname pspace.Pspace.params.(idx)
             else "GLO_unreachable"
           in
           let lo = Bounds.lower cs ~var:(p + k) ~name in
           let hi = Bounds.upper cs ~var:(p + k) ~name in
           [
             Assign (Raw (Printf.sprintf "GLO[%d]" k), lo);
             Assign
               ( Raw (Printf.sprintf "GDIMS[%d]" k),
                 Sub (Add (hi, Int 1), Raw (Printf.sprintf "GLO[%d]" k)) );
           ]))
  in
  let body_store =
    List.init kernel.Ckernel.width (fun f ->
        Assign
          ( Idx ("DATA", [ Add (Mul (Var "gi", Int kernel.Ckernel.width), Int f) ]),
            Idx ("out", [ Int f ]) ))
  in
  let kernel_body = List.map (fun l -> RawStmt l) kernel.Ckernel.body in
  let point_body =
    [
      If
        ( Call ("in_space", [ Var "j" ]),
          [ Expr (Call ("orig", [ Var "j"; Var "jo" ])); Comment "loop body" ]
          @ kernel_body @ body_store
          @ [ RawStmt "npoints++;" ],
          [] );
      Comment "strength-reduced step: addition-only j / flat-index update";
      RawStmt "for (k = 0; k < NDIM; k++) j[k] += JSTEP[k];";
      RawStmt "gi += GSTEP;";
    ]
  in
  (* innermost TTIS loop as a row: hoist global_of/gidx to the row start,
     then advance by constant deltas per point *)
  let last = n - 1 in
  let row_block =
    [
      RawStmt (Printf.sprintf "jp[%d] = ttis_start(%d, jp);" last last);
      If
        ( Cmp ("<=", Raw (Printf.sprintf "jp[%d]" last),
               Int (tiling.Tiling.v.(last) - 1)),
          [
            Expr (Call ("global_of", [ Var "s"; Var "jp"; Var "j" ]));
            RawStmt "gi = gidx(j);";
            For
              {
                var = Printf.sprintf "jp[%d]" last;
                lo = Raw (Printf.sprintf "jp[%d]" last);
                hi = Int (tiling.Tiling.v.(last) - 1);
                step = Int tiling.Tiling.c.(last);
                body = point_body;
              };
          ],
          [] );
    ]
  in
  let rec inner k body =
    if k < 0 then body
    else
      inner (k - 1)
        [
          For
            {
              var = Printf.sprintf "jp[%d]" k;
              lo = Call ("ttis_start", [ Int k; Var "jp" ]);
              hi = Int (tiling.Tiling.v.(k) - 1);
              step = Int tiling.Tiling.c.(k);
              body;
            };
        ]
  in
  let rec outer k body =
    if k < 0 then body
    else
      let cs = FM.system tile_proj ~var:(p + k) in
      outer (k - 1)
        [
          For
            {
              var = Printf.sprintf "s[%d]" k;
              lo = Bounds.lower cs ~var:(p + k) ~name:sname;
              hi = Bounds.upper cs ~var:(p + k) ~name:sname;
              step = Int 1;
              body;
            };
        ]
  in
  let checksum_loops =
    let rec go k body =
      if k < 0 then body
      else
        go (k - 1)
          [
            For
              {
                var = Printf.sprintf "jj[%d]" k;
                lo = Raw (Printf.sprintf "GLO[%d]" k);
                hi = Raw (Printf.sprintf "GLO[%d] + GDIMS[%d] - 1" k k);
                step = Int 1;
                body;
              };
          ]
    in
    go (n - 1)
      [
        If
          ( Call ("in_space", [ Var "jj" ]),
            [
              RawStmt
                "{ int f; for (f = 0; f < W; f++) sum += DATA[gidx(jj) * W + f]; }";
            ],
            [] );
      ]
  in
  let main =
    {
      ret = "int";
      name = "main";
      params = [ ("int", "argc"); ("char **", "argv") ];
      body =
        [
          Decl ("int", "s[NDIM]", None);
          Decl ("int", "jp[NDIM]", None);
          Decl ("int", "j[NDIM]", None);
          Decl ("int", "jo[NDIM]", None);
          Decl ("int", "jj[NDIM]", None);
          Decl ("int", "k", None);
          Decl ("long", "gi", None);
          Decl ("double", "out[W]", None);
          Decl ("long", "npoints", Some (Int 0));
          Decl ("double", "sum", Some (Flt 0.));
          RawStmt
            (Printf.sprintf
               "if (argc != 1 + NPAR) { fprintf(stderr, \"usage: %%s%s\\n\", \
                argv[0]); return 2; }"
               (String.concat ""
                  (List.init p (fun i ->
                       " <" ^ pspace.Pspace.params.(i) ^ ">"))));
          RawStmt "for (k = 0; k < NPAR; k++) PAR[k] = atoi(argv[1 + k]);";
          Comment "data-space extents from the parameters";
        ]
        @ extent_stmts
        @ [
            RawStmt "GTOT = 1;";
            RawStmt "for (k = 0; k < NDIM; k++) GTOT *= GDIMS[k];";
            RawStmt
              "DATA = (double *)malloc((size_t)GTOT * W * sizeof(double));";
            RawStmt "strength_init();";
            Comment "tile loops (parametric Fourier-Motzkin bounds), then TTIS";
          ]
        @ outer (n - 1) (inner (n - 2) row_block)
        @ [ Comment "verification output" ]
        @ checksum_loops
        @ [
            RawStmt "printf(\"points %ld\\n\", npoints);";
            RawStmt "printf(\"checksum %.10e\\n\", sum);";
            RawStmt "free(DATA);";
            Return (Some (Int 0));
          ];
    }
  in
  program ~includes:[ "stdio.h"; "stdlib.h"; "math.h" ] ~prelude [ main ]
