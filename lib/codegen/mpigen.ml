module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Mapping = Tiles_core.Mapping
module Comm = Tiles_core.Comm
module Polyhedron = Tiles_poly.Polyhedron
module Intmat = Tiles_linalg.Intmat
module Vec = Tiles_util.Vec

let direction_tables (plan : Plan.t) =
  let comm = plan.Plan.comm in
  let n = Tiling.dim plan.Plan.tiling in
  let m = comm.Comm.m in
  let dirs = comm.Comm.dm in
  let nd = List.length dirs in
  let max_ds =
    List.fold_left (fun acc (_, dss) -> max acc (List.length dss)) 1 dirs
  in
  let dmv = Array.make_matrix nd (max 1 (n - 1)) 0 in
  let dirnds = Array.make nd 0 in
  let dirds = Array.init nd (fun _ -> Array.make_matrix max_ds n 0) in
  let slablo = Array.make_matrix nd n 0 in
  List.iteri
    (fun d (dm, dss) ->
      Array.blit dm 0 dmv.(d) 0 (n - 1);
      (* descending d^S_m so receives match channel order *)
      let dss = List.sort (fun a b -> compare b.(m) a.(m)) dss in
      dirnds.(d) <- List.length dss;
      List.iteri (fun s dS -> Array.blit dS 0 dirds.(d).(s) 0 n) dss;
      for k = 0 to n - 1 do
        slablo.(d).(k) <-
          (if k = m then 0
           else
             let kk = if k < m then k else k - 1 in
             dm.(kk) * comm.Comm.cc.(k))
      done)
    dirs;
  (nd, max_ds, dmv, dirnds, dirds, slablo)

let generate ~plan ~kernel ~reads ?skew () =
  let tiling = plan.Plan.tiling in
  let n = Tiling.dim tiling in
  let skew = match skew with Some s -> s | None -> Intmat.identity n in
  if List.length reads <> kernel.Ckernel.nreads then
    invalid_arg "Mpigen.generate: reads count differs from kernel.nreads";
  let mapping = plan.Plan.mapping in
  let comm = plan.Plan.comm in
  let m = comm.Comm.m in
  let np = Mapping.nprocs mapping in
  let pids = Array.init np (fun r -> Mapping.pid_of_rank mapping r) in
  let chlo = Array.init np (fun r -> fst (Mapping.chain mapping r)) in
  let chhi = Array.init np (fun r -> snd (Mapping.chain mapping r)) in
  let tsmin = Array.fold_left min max_int chlo in
  let nd, max_ds, dmv, dirnds, dirds, slablo = direction_tables plan in
  let flat_dirds =
    (* 3-D table flattened to [ND][MAXDS][NDIM] initialiser *)
    let row v = "{ " ^ String.concat ", " (Array.to_list (Array.map string_of_int v)) ^ " }" in
    let block d =
      "{ " ^ String.concat ", " (Array.to_list (Array.map row dirds.(d))) ^ " }"
    in
    Printf.sprintf "static const int DIRDS[%d][%d][%d] = { %s };" (max 1 nd)
      max_ds n
      (String.concat ", " (List.init nd block))
  in
  let ts_tables =
    Emit_common.constraint_tables "TS"
      (Polyhedron.constraints plan.Plan.tspace.Tile_space.poly)
      n
  in
  let tables =
    Emit_common.tables ~plan ~kernel ~skew ~reads
    @ ts_tables
    @ [
        Printf.sprintf "#define MDIM %d" m;
        Printf.sprintf "#define NP %d" np;
        Printf.sprintf "#define ND %d" nd;
        Printf.sprintf "#define TSMIN %d" tsmin;
        Emit_common.int_table2 "PIDS"
          (Array.map (fun p -> if n = 1 then [| 0 |] else p) pids);
        Emit_common.int_table1 "CHLO" chlo;
        Emit_common.int_table1 "CHHI" chhi;
        Emit_common.int_table1 "CCV" comm.Comm.cc;
        Emit_common.int_table1 "OFF" comm.Comm.off;
        Emit_common.int_table2 "DMV" dmv;
        Emit_common.int_table1 "DIRNDS" dirnds;
        flat_dirds;
      ]
  in
  let runtime =
    [
      {|/* ------------------------------------------------------------------ */
/* tile-space / mapping helpers                                         */
static int LDIMS[NDIM];
static long LSTR[NDIM]; /* row-major LDS strides (innermost = 1) */
static double *LA;

static void join_tile(const int *pid, int ts, int *s) {
  int k, kk = 0;
  for (k = 0; k < NDIM; k++) s[k] = (k == MDIM) ? ts : pid[kk++];
}

/* the paper's valid(): is (pid, ts) a candidate tile? */
static int valid(const int *pid, int ts) {
  int s[NDIM], c, k; long acc;
  join_tile(pid, ts, s);
  for (c = 0; c < TSNC; c++) {
    acc = TSB[c];
    for (k = 0; k < NDIM; k++) acc += (long)TSA[c][k] * s[k];
    if (acc < 0) return 0;
  }
  return 1;
}

static int rank_of(const int *pid) {
  int r, k, ok;
  for (r = 0; r < NP; r++) {
    ok = 1;
    for (k = 0; k < NDIM - 1; k++)
      if (PIDS[r][k] != pid[k]) { ok = 0; break; }
    if (ok) return r;
  }
  return -1;
}

/* lexicographically minimum valid successor of (pid_pred, pred_ts) in
   direction d; successors share the pid, so this is the least ts */
static int minsucc_ts(const int *succ_pid, int pred_ts, int d) {
  int s, best = 1 << 30;
  for (s = 0; s < DIRNDS[d]; s++) {
    int ts = pred_ts + DIRDS[d][s][MDIM];
    if (valid(succ_pid, ts) && ts < best) best = ts;
  }
  return best;
}|};
      {|/* LDS addressing (Tables 1-2): condensed coordinates + halo offsets */
static void lds_coords(const int *jp, int trel, int *q) {
  int k;
  for (k = 0; k < NDIM; k++)
    q[k] = (k == MDIM ? floord(trel * V[k] + jp[k], CS[k])
                      : floord(jp[k], CS[k])) + OFF[k];
}
static long lds_lin(const int *q) {
  int k; long idx = 0;
  for (k = 0; k < NDIM; k++) idx = idx * LDIMS[k] + q[k];
  return idx;
}
/* constant LDS cell shift of an unpack placement d^S (the lds_coords
   offset is affine in q, so the shift is row-independent) */
static long lds_shift(const int *ds) {
  int k; long sh = 0;
  for (k = 0; k < NDIM; k++) sh += (long)ds[k] * (V[k] / CS[k]) * LSTR[k];
  return sh;
}|};
      {|/* visitor-driven sweep of one tile's TTIS slab [lo, V), clipped to J^n */
typedef struct {
  double *buf;       /* pack/unpack staging */
  long cnt;
  int trel;
  const int *tile;
  long dshift;       /* unpack placement shift, in LDS cells */
  long rowoff[NRD];  /* per-row tap cell offsets (want_taps only) */
  int want_taps;
  double sum;
} vctx;
typedef void (*visit_fn)(const int *jp, const int *j, long cell, vctx *cx);

static void slab_rec(int k, int *jp, const int *lo, visit_fn fn, vctx *cx) {
  int r = ttis_start(k, jp);
  int lb = lo[k] > 0 ? lo[k] : 0;
  int start = r + CS[k] * ceild(lb - r, CS[k]);
  if (k == NDIM - 1) {
    /* innermost row: hoist global/LDS addressing to the row start, then
       advance by constant deltas -- consecutive TTIS points occupy
       consecutive LDS cells, so the cell stride is 1 */
    int j[NDIM], q[NDIM], i;
    long cell;
    if (start >= V[k]) return;
    jp[k] = start;
    global_of(cx->tile, jp, j);
    lds_coords(jp, cx->trel, q);
    cell = lds_lin(q);
    if (cx->want_taps) {
      int sp[NDIM], qq[NDIM], rd;
      for (rd = 0; rd < NRD; rd++) {
        for (i = 0; i < NDIM; i++) sp[i] = jp[i] - DP[rd][i];
        lds_coords(sp, cx->trel, qq);
        cx->rowoff[rd] = lds_lin(qq) - cell;
      }
    }
    for (; jp[k] < V[k]; jp[k] += CS[k]) {
      if (in_space(j)) fn(jp, j, cell, cx);
      for (i = 0; i < NDIM; i++) j[i] += JSTEP[i];
      cell += 1;
    }
    return;
  }
  for (jp[k] = start; jp[k] < V[k]; jp[k] += CS[k])
    slab_rec(k + 1, jp, lo, fn, cx);
}
static void sweep(const int *lo, visit_fn fn, vctx *cx) {
  int jp[NDIM];
  slab_rec(0, jp, lo, fn, cx);
}

static void v_count(const int *jp, const int *j, long cell, vctx *cx) {
  (void)jp; (void)j; (void)cell; cx->cnt++;
}
static void v_pack(const int *jp, const int *j, long cell, vctx *cx) {
  int f;
  (void)jp; (void)j;
  for (f = 0; f < W; f++) cx->buf[cx->cnt * W + f] = LA[cell * W + f];
  cx->cnt++;
}
static void v_unpack(const int *jp, const int *j, long cell, vctx *cx) {
  int f;
  (void)jp; (void)j;
  for (f = 0; f < W; f++)
    LA[(cell - cx->dshift) * W + f] = cx->buf[cx->cnt * W + f];
  cx->cnt++;
}
static void v_sum(const int *jp, const int *j, long cell, vctx *cx) {
  int f;
  (void)jp; (void)j;
  for (f = 0; f < W; f++) cx->sum += LA[cell * W + f];
  cx->cnt++;
}|};
      {|/* LDS read for the loop body: halo-aware via the per-row constant tap
   offsets, boundary-aware via the space test on the source point */
static double rd_mpi(const vctx *cx, const int *j, long cell, int r, int f) {
  int src[NDIM], k;
  for (k = 0; k < NDIM; k++) src[k] = j[k] - D[r][k];
  if (!in_space(src)) return boundary(src, f);
  return LA[(cell + cx->rowoff[r]) * W + f];
}
#define RD(i, f) rd_mpi(cx, j, cell, (i), (f))
#define WR(f) out[(f)]
#define J(k) jo[(k)]|};
    ]
  in
  let compute_visitor =
    [
      "static void v_compute(const int *jp, const int *j, long cell, vctx *cx) {";
      "  double out[W]; int jo[NDIM], f;";
      "  (void)jp;";
      "  orig(j, jo);";
      "  /* ---- loop body ---- */";
    ]
    @ List.map (fun l -> "  " ^ l) kernel.Ckernel.body
    @ [
        "  /* ---- store ---- */";
        "  for (f = 0; f < W; f++) LA[cell * W + f] = out[f];";
        "  cx->cnt++;";
        "}";
      ]
  in
  let main =
    {|int main(int argc, char **argv) {
  int rank, nprocs, k, ts, d, s;
  const int *pid;
  int chlo, chhi, ntiles;
  long tot, npoints = 0;
  int zero_lo[NDIM] = { 0 };
  double local[2], global[2];

  MPI_Init(&argc, &argv);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &nprocs);
  if (nprocs != NP) {
    if (rank == 0) fprintf(stderr, "this program requires exactly %d ranks\n", NP);
    MPI_Finalize();
    return 1;
  }
  pid = PIDS[rank];
  chlo = CHLO[rank];
  chhi = CHHI[rank];
  ntiles = chhi - chlo + 1;
  tot = 1;
  for (k = 0; k < NDIM; k++) {
    LDIMS[k] = OFF[k] + (k == MDIM ? ntiles : 1) * (V[k] / CS[k]);
    tot *= LDIMS[k];
  }
  LSTR[NDIM - 1] = 1;
  for (k = NDIM - 2; k >= 0; k--) LSTR[k] = LSTR[k + 1] * LDIMS[k + 1];
  LA = (double *)calloc((size_t)tot * W, sizeof(double));

  for (ts = chlo; ts <= chhi; ts++) {
    int trel = ts - chlo;
    int tile[NDIM];
    join_tile(pid, ts, tile);

    /* ---------------- RECEIVE ---------------- */
    for (d = 0; d < ND; d++) {
      int ppid[NDIM > 1 ? NDIM - 1 : 1];
      for (k = 0; k < NDIM - 1; k++) ppid[k] = pid[k] - DMV[d][k];
      for (s = 0; s < DIRNDS[d]; s++) {
        int pred_ts = ts - DIRDS[d][s][MDIM];
        if (valid(ppid, pred_ts) && minsucc_ts(pid, pred_ts, d) == ts) {
          int ptile[NDIM];
          vctx cx;
          double *buf;
          join_tile(ppid, pred_ts, ptile);
          memset(&cx, 0, sizeof cx);
          cx.tile = ptile;
          sweep(SLABLO[d], v_count, &cx);
          buf = (double *)malloc((size_t)(cx.cnt * W + 1) * sizeof(double));
          MPI_Recv(buf, (int)(cx.cnt * W), MPI_DOUBLE, rank_of(ppid),
                   pred_ts - TSMIN, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
          cx.buf = buf;
          cx.cnt = 0;
          cx.trel = trel;
          cx.dshift = lds_shift(DIRDS[d][s]);
          sweep(SLABLO[d], v_unpack, &cx);
          free(buf);
        }
      }
    }

    /* ---------------- COMPUTE ---------------- */
    {
      vctx cx;
      memset(&cx, 0, sizeof cx);
      cx.tile = tile;
      cx.trel = trel;
      cx.want_taps = 1;
      sweep(zero_lo, v_compute, &cx);
      npoints += cx.cnt;
    }

    /* ---------------- SEND ---------------- */
    for (d = 0; d < ND; d++) {
      int spid[NDIM > 1 ? NDIM - 1 : 1], succ = 0;
      for (k = 0; k < NDIM - 1; k++) spid[k] = pid[k] + DMV[d][k];
      for (s = 0; s < DIRNDS[d]; s++)
        if (valid(spid, ts + DIRDS[d][s][MDIM])) succ = 1;
      if (succ) {
        vctx cx;
        double *buf;
        memset(&cx, 0, sizeof cx);
        cx.tile = tile;
        cx.trel = trel;
        sweep(SLABLO[d], v_count, &cx);
        buf = (double *)malloc((size_t)(cx.cnt * W + 1) * sizeof(double));
        cx.buf = buf;
        cx.cnt = 0;
        sweep(SLABLO[d], v_pack, &cx);
        MPI_Send(buf, (int)(cx.cnt * W), MPI_DOUBLE, rank_of(spid),
                 ts - TSMIN, MPI_COMM_WORLD);
        free(buf);
      }
    }
  }

  /* ---------------- verification output ---------------- */
  {
    vctx cx;
    double lsum = 0.0;
    for (ts = chlo; ts <= chhi; ts++) {
      int tile[NDIM];
      join_tile(pid, ts, tile);
      memset(&cx, 0, sizeof cx);
      cx.tile = tile;
      cx.trel = ts - chlo;
      sweep(zero_lo, v_sum, &cx);
      lsum += cx.sum;
    }
    local[0] = lsum;
    local[1] = (double)npoints;
    MPI_Reduce(local, global, 2, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
      printf("points %ld\n", (long)global[1]);
      printf("checksum %.10e\n", global[0]);
    }
  }
  free(LA);
  MPI_Finalize();
  return 0;
}|}
  in
  let buf = Buffer.create 8192 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    ([ "#include <stdio.h>"; "#include <stdlib.h>"; "#include <string.h>";
       "#include <math.h>"; "#include \"mpi.h\""; "" ]
    @ [ C_ast.helpers; "" ]
    @ tables
    @ [ Emit_common.int_table2 "SLABLO" slablo ]
    @ runtime @ compute_visitor
    @ [ ""; main ]);
  Buffer.contents buf
