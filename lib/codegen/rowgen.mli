(** Per-plan C source for the native walker's compiled row functions.

    The generated translation unit exports a single symbol,
    {!entry_symbol}:

    {v
    void tilec_row(double *la, long cur, const long *taps,
                   const long *j0, long len, long interior);
    v}

    [la] is the rank's local array (the Bigarray data pointer), [cur]
    the LDS cell of the row's first point, [taps] the per-read LDS cell
    deltas for this row (the walker's [doffs]), [j0] the global (skewed)
    coordinates of the first point, [len] the number of points, and
    [interior] non-zero when every tap of every row point is inside the
    iteration space (the walker's convexity check) — interior rows read
    unguarded, boundary rows guard each tap with [in_space] and fall
    back to the kernel's boundary function. Addressing matches the
    strength-reduced OCaml path slot for slot, and the float operations
    are the kernel's C body verbatim, so results are bit-identical. *)

val entry_symbol : string

val generate :
  ?inner:int array ->
  plan:Tiles_core.Plan.t ->
  kernel:Ckernel.t ->
  skew:Tiles_linalg.Intmat.t ->
  reads:Tiles_util.Vec.t list ->
  uses_j:bool ->
  unit ->
  string
(** [reads] are the kernel's (skewed) read offsets in compute order;
    [skew] the cumulative skew matrix (identity if unskewed) used to
    recover original coordinates for [J(k)] and boundary lookups.
    [inner] is the walker's inner subtile shape, baked into the source
    text so that differently-blocked walk schedules content-address to
    distinct objects (the row ABI itself is shape-independent: the
    walker passes subtile row segments). *)
