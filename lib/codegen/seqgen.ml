module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Polyhedron = Tiles_poly.Polyhedron
module FM = Tiles_poly.Fourier_motzkin
module Intmat = Tiles_linalg.Intmat
open C_ast

let generate ~plan ~kernel ~reads ?skew () =
  let tiling = plan.Plan.tiling in
  let n = Tiling.dim tiling in
  let skew = match skew with Some s -> s | None -> Intmat.identity n in
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let tpoly = plan.Plan.tspace.Tile_space.poly in
  let proj = Polyhedron.projection tpoly in
  let sname k = Printf.sprintf "s[%d]" k in
  if List.length reads <> kernel.Ckernel.nreads then
    invalid_arg "Seqgen.generate: reads count differs from kernel.nreads";
  let prelude =
    Emit_common.tables ~plan ~kernel ~skew ~reads
    @ Emit_common.bbox_tables space
    @ [ "static double *DATA;" ]
    @ Emit_common.strength_helpers
    @ [
        "#define RD(i, f) rd_sr(j, gi, (i), (f))";
        "#define WR(f) out[(f)]";
        "#define J(k) jo[(k)]";
      ]
  in
  (* innermost body: guard, run the kernel, store through the running gi *)
  let body_store =
    List.init kernel.Ckernel.width (fun f ->
        Assign
          ( Idx ("DATA", [ Add (Mul (Var "gi", Int kernel.Ckernel.width), Int f) ]),
            Idx ("out", [ Int f ]) ))
  in
  let kernel_body = List.map (fun l -> RawStmt l) kernel.Ckernel.body in
  let point_body =
    [
      If
        ( Call ("in_space", [ Var "j" ]),
          [ Expr (Call ("orig", [ Var "j"; Var "jo" ])); Comment "loop body" ]
          @ kernel_body @ body_store
          @ [ RawStmt "npoints++;" ],
          [] );
      Comment "strength-reduced step: addition-only j / flat-index update";
      RawStmt "for (k = 0; k < NDIM; k++) j[k] += JSTEP[k];";
      RawStmt "gi += GSTEP;";
    ]
  in
  (* innermost TTIS loop as a row: hoist global_of/gidx to the row start,
     then advance by constant deltas per point *)
  let last = n - 1 in
  let row_block =
    [
      RawStmt
        (Printf.sprintf "jp[%d] = ttis_start(%d, jp);" last last);
      If
        ( Cmp ("<=", Raw (Printf.sprintf "jp[%d]" last),
               Int (tiling.Tiling.v.(last) - 1)),
          [
            Expr (Call ("global_of", [ Var "s"; Var "jp"; Var "j" ]));
            RawStmt "gi = gidx(j);";
            For
              {
                var = Printf.sprintf "jp[%d]" last;
                lo = Raw (Printf.sprintf "jp[%d]" last);
                hi = Int (tiling.Tiling.v.(last) - 1);
                step = Int tiling.Tiling.c.(last);
                body = point_body;
              };
          ],
          [] );
    ]
  in
  (* remaining inner TTIS loops: stride c_k, start offset from the HNF
     lattice *)
  let rec inner k body =
    if k < 0 then body
    else
      inner (k - 1)
        [
          For
            {
              var = Printf.sprintf "jp[%d]" k;
              lo = Call ("ttis_start", [ Int k; Var "jp" ]);
              hi = Int (tiling.Tiling.v.(k) - 1);
              step = Int tiling.Tiling.c.(k);
              body;
            };
        ]
  in
  (* n outer tile loops with Fourier–Motzkin bounds *)
  let rec outer k body =
    if k < 0 then body
    else
      let cs = FM.system proj ~var:k in
      outer (k - 1)
        [
          For
            {
              var = sname k;
              lo = Bounds.lower cs ~var:k ~name:sname;
              hi = Bounds.upper cs ~var:k ~name:sname;
              step = Int 1;
              body;
            };
        ]
  in
  let checksum_loops =
    let rec go k body =
      if k < 0 then body
      else
        go (k - 1)
          [
            For
              {
                var = Printf.sprintf "jj[%d]" k;
                lo = Raw (Printf.sprintf "GLO[%d]" k);
                hi = Raw (Printf.sprintf "GLO[%d] + GDIMS[%d] - 1" k k);
                step = Int 1;
                body;
              };
          ]
    in
    go (n - 1)
      [
        If
          ( Call ("in_space", [ Var "jj" ]),
            [
              RawStmt
                "{ int f; for (f = 0; f < W; f++) sum += DATA[gidx(jj) * W + f]; }";
            ],
            [] );
      ]
  in
  let main =
    {
      ret = "int";
      name = "main";
      params = [];
      body =
        [
          Decl ("int", "s[NDIM]", None);
          Decl ("int", "jp[NDIM]", None);
          Decl ("int", "j[NDIM]", None);
          Decl ("int", "jo[NDIM]", None);
          Decl ("int", "jj[NDIM]", None);
          Decl ("int", "k", None);
          Decl ("long", "gi", None);
          Decl ("double", "out[W]", None);
          Decl ("long", "npoints", Some (Int 0));
          Decl ("double", "sum", Some (Flt 0.));
          RawStmt "DATA = (double *)malloc((size_t)GTOT * W * sizeof(double));";
          RawStmt "strength_init();";
          Comment "tile loops (Fourier-Motzkin bounds), then TTIS loops";
        ]
        @ outer (n - 1) (inner (n - 2) row_block)
        @ [ Comment "verification output" ]
        @ checksum_loops
        @ [
            RawStmt "printf(\"points %ld\\n\", npoints);";
            RawStmt "printf(\"checksum %.10e\\n\", sum);";
            RawStmt "free(DATA);";
            Return (Some (Int 0));
          ];
    }
  in
  program ~includes:[ "stdio.h"; "stdlib.h"; "math.h" ] ~prelude [ main ]
