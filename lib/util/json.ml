type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

(* ---------------- parser ----------------

   Recursive descent over the RFC 8259 grammar. The type was emit-only
   by design (the sealed environment has no JSON library); the perf
   observatory made read-back necessary — baselines and bench artifacts
   written by one run are loaded and compared by the next. Errors carry
   the 1-based line and column of the offending byte. *)

type parse_state = {
  src : string;
  mutable pos : int;
}

exception Parse_error of int * string
(* byte position, message — converted to line/col at the boundary *)

let err st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> err st (Printf.sprintf "expected '%c', found '%c'" c d)
  | None -> err st (Printf.sprintf "expected '%c', found end of input" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else err st (Printf.sprintf "expected %s" word)

(* add a Unicode scalar value to the buffer as UTF-8 *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> err st "invalid \\u escape (expected 4 hex digits)"
      in
      v := (!v * 16) + d
    | None -> err st "unterminated \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> err st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> err st "unterminated escape"
      | Some c ->
        (match c with
        | '"' -> advance st; Buffer.add_char buf '"'
        | '\\' -> advance st; Buffer.add_char buf '\\'
        | '/' -> advance st; Buffer.add_char buf '/'
        | 'b' -> advance st; Buffer.add_char buf '\b'
        | 'f' -> advance st; Buffer.add_char buf '\012'
        | 'n' -> advance st; Buffer.add_char buf '\n'
        | 'r' -> advance st; Buffer.add_char buf '\r'
        | 't' -> advance st; Buffer.add_char buf '\t'
        | 'u' ->
          advance st;
          let u = hex4 st in
          (* combine surrogate pairs; lone surrogates become U+FFFD *)
          if u >= 0xd800 && u <= 0xdbff then begin
            if
              st.pos + 1 < String.length st.src
              && st.src.[st.pos] = '\\'
              && st.src.[st.pos + 1] = 'u'
            then begin
              advance st;
              advance st;
              let lo = hex4 st in
              if lo >= 0xdc00 && lo <= 0xdfff then
                add_utf8 buf
                  (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
              else begin
                add_utf8 buf 0xfffd;
                add_utf8 buf lo
              end
            end
            else add_utf8 buf 0xfffd
          end
          else if u >= 0xdc00 && u <= 0xdfff then add_utf8 buf 0xfffd
          else add_utf8 buf u
        | c -> err st (Printf.sprintf "invalid escape '\\%c'" c)));
      go ()
    | Some c when Char.code c < 0x20 ->
      err st "unescaped control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let n0 = st.pos in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if st.pos = n0 then err st "expected digit"
  in
  digits ();
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    digits ()
  | _ -> ());
  let lexeme = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string lexeme)
  else
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> Float (float_of_string lexeme) (* out of native int range *)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> err st "expected a JSON value, found end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | Some c -> err st (Printf.sprintf "expected ',' or ']', found '%c'" c)
        | None -> err st "unterminated array"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let member () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | Some c -> err st (Printf.sprintf "expected ',' or '}', found '%c'" c)
        | None -> err st "unterminated object"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> err st (Printf.sprintf "unexpected character '%c'" c)

let line_col src pos =
  let line = ref 1 and col = ref 1 in
  let stop = min pos (String.length src) in
  for i = 0 to stop - 1 do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let parse s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    (match peek st with
    | Some c -> err st (Printf.sprintf "trailing garbage '%c' after value" c)
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
    let line, col = line_col s pos in
    Error (Printf.sprintf "line %d, column %d: %s" line col msg)

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None

(* single-line rendering for line-delimited protocols: one JSON document
   per '\n'-terminated line, so the value itself must not contain raw
   newlines (escape already protects strings) *)
let to_line v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go item)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad d = Buffer.add_string buf (String.make (d * indent) ' ') in
  let rec go d = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (d + 1);
          go (d + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad d;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (d + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (d + 1) item)
        fields;
      Buffer.add_char buf '\n';
      pad d;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf
