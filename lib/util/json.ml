type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad d = Buffer.add_string buf (String.make (d * indent) ' ') in
  let rec go d = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (d + 1);
          go (d + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad d;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (d + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (d + 1) item)
        fields;
      Buffer.add_char buf '\n';
      pad d;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf
