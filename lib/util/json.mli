(** A minimal JSON value type and printer — the sealed environment has no
    JSON library, and the tuner / bench harness only need to {e emit}
    machine-readable results, never parse them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with the given indentation step (default 2). Strings are
    escaped per RFC 8259; non-finite floats render as [null]; finite
    floats round-trip ([%.17g], trailing [.0] added to integral values so
    consumers see a JSON number that parses back to the same double). *)
