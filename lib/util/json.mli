(** A minimal JSON value type, printer and parser — the sealed
    environment has no JSON library. Originally emit-only (the tuner and
    bench harness only wrote machine-readable results); the perf
    observatory added {!parse} so committed baselines and bench
    artifacts can be read back and compared. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_line : t -> string
(** Compact single-line rendering (no newlines, no indentation) — the
    framing used by line-delimited JSON protocols such as [tilec serve].
    Same escaping and float formatting as {!to_string}, so
    [parse (to_line j) = Ok j] under the same caveats. *)

val to_string : ?indent:int -> t -> string
(** Render with the given indentation step (default 2). Strings are
    escaped per RFC 8259; non-finite floats render as [null]; finite
    floats round-trip ([%.17g], trailing [.0] added to integral values so
    consumers see a JSON number that parses back to the same double). *)

val parse : string -> (t, string) result
(** Parse one RFC 8259 document. Numbers without a fraction or exponent
    become [Int] (falling back to [Float] beyond native-int range);
    [\u] escapes decode to UTF-8 (surrogate pairs combined, lone
    surrogates replaced by U+FFFD). Trailing non-whitespace is an
    error. The error string carries the 1-based line and column of the
    offending byte, e.g. ["line 3, column 7: expected ',' or '}', …"].
    [parse (to_string j) = Ok j] for every [j] free of non-finite
    floats (those print as [null]). *)

(** {2 Accessors} — small helpers for decoding parsed documents. *)

val member : string -> t -> t option
(** Field of an object ([None] on a missing key or a non-object). *)

val to_float_opt : t -> float option
(** [Float] or [Int] (widened); [None] otherwise. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
