type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  let n = List.length t.header in
  let len = List.length row in
  if len > n then invalid_arg "Table.add_row: row longer than header";
  let row = if len < n then row @ List.init (n - len) (fun _ -> "") else row in
  t.rows <- row :: t.rows

let header t = t.header
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let drop_trailing_spaces s =
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    String.sub s 0 !len
  in
  let line row =
    drop_trailing_spaces (String.concat "  " (List.map2 pad row widths))
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line t.header :: rule :: List.map line rows)

let print t = print_endline (render t)
