(** Plain-text aligned tables for benchmark / experiment output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val header : t -> string list

val rows : t -> string list list
(** Rows in insertion order (padded to header width). *)

val render : t -> string
(** Render with a header rule, columns left-aligned and padded. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
