module A1 = Bigarray.Array1

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let create n : t = A1.create Bigarray.float64 Bigarray.c_layout n

let make n v =
  let a = create n in
  A1.fill a v;
  a

let length (a : t) = A1.dim a
let get (a : t) i = A1.get a i
let set (a : t) i v = A1.set a i v
let fill (a : t) v = A1.fill a v
let sub (a : t) pos len = A1.sub a pos len

let blit ~(src : t) ~src_pos ~(dst : t) ~dst_pos ~len =
  if
    len < 0 || src_pos < 0 || dst_pos < 0
    || src_pos + len > A1.dim src
    || dst_pos + len > A1.dim dst
  then invalid_arg "Fbuf.blit";
  (* [A1.sub] allocates a custom block per call; for the short rows the
     walkers move, a direct loop beats two allocations plus a C call *)
  if len < 32 then
    for i = 0 to len - 1 do
      A1.unsafe_set dst (dst_pos + i) (A1.unsafe_get src (src_pos + i))
    done
  else A1.blit (A1.sub src src_pos len) (A1.sub dst dst_pos len)

let copy (a : t) =
  let b = create (length a) in
  A1.blit a b;
  b

let append (a : t) (b : t) =
  let la = length a and lb = length b in
  let c = create (la + lb) in
  if la > 0 then A1.blit a (A1.sub c 0 la);
  if lb > 0 then A1.blit b (A1.sub c la lb);
  c

let of_array arr =
  let a = create (Array.length arr) in
  Array.iteri (fun i v -> A1.unsafe_set a i v) arr;
  a

let to_array (a : t) = Array.init (length a) (fun i -> A1.unsafe_get a i)

let init n f =
  let a = create n in
  for i = 0 to n - 1 do
    A1.unsafe_set a i (f i)
  done;
  a
