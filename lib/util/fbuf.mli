(** Flat unboxed [float64] storage: a 1-D C-layout {!Bigarray.Array1}.

    This is the backing store for grids, walker local arrays and message
    slabs: reads and writes never box, stores skip the GC write barrier,
    and the data pointer can be handed to native (dlopen'd) kernels
    unchanged. Hot loops should index with [Bigarray.Array1.unsafe_get]/
    [unsafe_set] (or the bounds-checked [a.{i}] sugar) directly — those
    compile to intrinsics; the helpers here are for cold code. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Uninitialised buffer of the given length. *)

val make : int -> float -> t
(** Buffer of the given length, every slot set to the value. *)

val length : t -> int
val get : t -> int -> float
val set : t -> int -> float -> unit
val fill : t -> float -> unit

val sub : t -> int -> int -> t
(** [sub a pos len] — a zero-copy view sharing [a]'s storage. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Zero-allocation copy of [len] slots ([Array1.sub] + [Array1.blit]). *)

val copy : t -> t
val append : t -> t -> t
val of_array : float array -> t
val to_array : t -> float array
val init : int -> (int -> float) -> t
