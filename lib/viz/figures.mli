(** Reproductions of the paper's conceptual diagrams as SVG.

    - {!tiled_space}: a 2-D iteration space partitioned by a tiling —
      iteration points coloured by owning tile, the two hyperplane
      families drawn through it (the geometry behind Fig. 1's left side).
    - {!ttis}: the Transformed Tile Iteration Space — the [v_11 × v_22]
      box with lattice points (dots) and holes, strides annotated
      (Fig. 1 right / Fig. 2).
    - {!lds}: one processor's Local Data Space — computation cells vs
      communication (halo) storage (Fig. 3).
    - {!timeline}: per-rank activity timeline from any span list
      (simulated or wall-clock) — not in the paper, but the picture its
      schedule analysis is about. {!gantt} is the simulator shorthand. *)

val tiled_space : Tiles_poly.Polyhedron.t -> Tiles_core.Tiling.t -> Svg.t
(** 2-D spaces only; raises [Invalid_argument] otherwise. *)

val ttis : Tiles_core.Tiling.t -> Svg.t
(** 2-D tilings only. *)

val lds :
  Tiles_core.Tiling.t -> Tiles_core.Comm.t -> ntiles:int -> Svg.t
(** 2-D tilings only: halo cells shaded, computation cells white, one
    column group per chain tile. *)

val timeline :
  ?title:string ->
  ?path:Tiles_obs.Critpath.segment list ->
  nprocs:int ->
  completion:float ->
  Tiles_obs.Span.t list ->
  Svg.t
(** One row per rank, spans coloured by kind (compute green, pack
    purple, send orange, wait grey, unpack blue) with a legend. Works
    for both simulator and shared-memory traces; raises
    [Invalid_argument] on an empty span list or non-positive
    [completion].

    [path] (default none) overlays a causal critical path
    ({!Tiles_obs.Critpath.analyze}): on-rank segments are outlined in
    red on their rank's row, message flights drawn as dashed diagonal
    hops from the sender's row to the receiver's, and a legend entry is
    added. *)

val gantt : Tiles_mpisim.Sim.stats -> Svg.t
(** {!timeline} applied to a traced simulation ([Sim.run ~trace:true]);
    raises [Invalid_argument] on an empty trace. *)
