module Polyhedron = Tiles_poly.Polyhedron
module Tiling = Tiles_core.Tiling
module Ttis = Tiles_core.Ttis
module Comm = Tiles_core.Comm
module Lds = Tiles_core.Lds
module Sim = Tiles_mpisim.Sim
module Span = Tiles_obs.Span
module Critpath = Tiles_obs.Critpath
module Rat = Tiles_rat.Rat

let cell = 18.
let margin = 30.

let palette =
  [| "#7fc97f"; "#beaed4"; "#fdc086"; "#ffff99"; "#386cb0"; "#f0027f";
     "#bf5b17"; "#80b1d3"; "#fb8072"; "#b3de69" |]

let tiled_space space tiling =
  if Polyhedron.dim space <> 2 || Tiling.dim tiling <> 2 then
    invalid_arg "Figures.tiled_space: 2-D only";
  let bbox = Polyhedron.bounding_box space in
  let (x0, x1) = bbox.(0) and (y0, y1) = bbox.(1) in
  let w = float_of_int (x1 - x0 + 1) and h = float_of_int (y1 - y0 + 1) in
  let svg =
    Svg.create
      ~width:((w *. cell) +. (2. *. margin))
      ~height:((h *. cell) +. (2. *. margin))
  in
  (* screen position of iteration (i, j): i down, j right *)
  let px j = margin +. ((float_of_int (j - y0) +. 0.5) *. cell) in
  let py i = margin +. ((float_of_int (i - x0) +. 0.5) *. cell) in
  Polyhedron.iter_points space (fun p ->
      let tile = Tiling.tile_of tiling p in
      let colour_idx =
        Tiles_util.Ints.fmod ((tile.(0) * 5) + (tile.(1) * 3)) (Array.length palette)
      in
      Svg.circle svg ~cx:(px p.(1)) ~cy:(py p.(0)) ~r:(cell /. 4.)
        ~fill:palette.(colour_idx) ~stroke:"#333" ());
  (* hyperplane families: h_k·x = c for integer c over the bbox *)
  let draw_family k =
    let hk = tiling.Tiling.h.(k) in
    let a = hk.(0) and b = hk.(1) in
    (* range of c = h_k·x over the bbox corners *)
    let corners =
      [ (x0, y0); (x0, y1); (x1, y0); (x1, y1) ]
      |> List.map (fun (i, j) ->
             Rat.add
               (Rat.mul a (Rat.of_int i))
               (Rat.mul b (Rat.of_int j)))
    in
    let cmin = List.fold_left Rat.min (List.hd corners) corners in
    let cmax = List.fold_left Rat.max (List.hd corners) corners in
    for c = Rat.ceil cmin to Rat.floor cmax do
      (* the line a·i + b·j = c clipped to the bbox: parameterise by
         whichever coordinate has the non-zero coefficient *)
      let fc = Rat.of_int c in
      if Rat.sign b <> 0 then begin
        let j_of i = Rat.div (Rat.sub fc (Rat.mul a (Rat.of_int i))) b in
        let p1 = (float_of_int x0 -. 0.5, Rat.to_float (j_of x0) -. 0.0) in
        let p2 = (float_of_int x1 +. 0.5, Rat.to_float (j_of x1)) in
        Svg.line svg
          ~x1:(margin +. ((snd p1 -. float_of_int y0 +. 0.5) *. cell))
          ~y1:(margin +. ((fst p1 -. float_of_int x0 +. 0.5) *. cell))
          ~x2:(margin +. ((snd p2 -. float_of_int y0 +. 0.5) *. cell))
          ~y2:(margin +. ((fst p2 -. float_of_int x0 +. 0.5) *. cell))
          ~stroke:"#999" ~stroke_width:0.8 ~dash:"4 2" ()
      end
      else begin
        let i = Rat.to_float (Rat.div fc a) in
        Svg.line svg
          ~x1:margin
          ~y1:(margin +. ((i -. float_of_int x0 +. 0.5) *. cell))
          ~x2:(margin +. (w *. cell))
          ~y2:(margin +. ((i -. float_of_int x0 +. 0.5) *. cell))
          ~stroke:"#999" ~stroke_width:0.8 ~dash:"4 2" ()
      end
    done
  in
  draw_family 0;
  draw_family 1;
  Svg.text svg ~x:margin ~y:(margin /. 2.)
    "iteration space coloured by tile; dashed lines = tiling hyperplanes";
  svg

let ttis tiling =
  if Tiling.dim tiling <> 2 then invalid_arg "Figures.ttis: 2-D only";
  let v0 = tiling.Tiling.v.(0) and v1 = tiling.Tiling.v.(1) in
  let svg =
    Svg.create
      ~width:((float_of_int v1 *. cell) +. (2. *. margin))
      ~height:((float_of_int v0 *. cell) +. (2. *. margin))
  in
  Svg.rect svg ~x:margin ~y:margin
    ~w:(float_of_int v1 *. cell)
    ~h:(float_of_int v0 *. cell)
    ~stroke:"#333" ();
  (* holes as small grey dots, lattice points as filled circles *)
  for i = 0 to v0 - 1 do
    for j = 0 to v1 - 1 do
      let cx = margin +. ((float_of_int j +. 0.5) *. cell) in
      let cy = margin +. ((float_of_int i +. 0.5) *. cell) in
      if Ttis.mem tiling [| i; j |] then
        Svg.circle svg ~cx ~cy ~r:(cell /. 4.) ~fill:"#386cb0" ()
      else Svg.circle svg ~cx ~cy ~r:(cell /. 10.) ~fill:"#ccc" ()
    done
  done;
  Svg.text svg ~x:margin ~y:(margin /. 2.)
    (Printf.sprintf "TTIS: %d lattice points in a %d x %d box, strides (%d, %d)"
       (Tiling.tile_size tiling) v0 v1 tiling.Tiling.c.(0) tiling.Tiling.c.(1));
  svg

let lds tiling comm ~ntiles =
  if Tiling.dim tiling <> 2 then invalid_arg "Figures.lds: 2-D only";
  let shape = Lds.shape tiling comm ~ntiles in
  let d0 = shape.Lds.dims.(0) and d1 = shape.Lds.dims.(1) in
  let svg =
    Svg.create
      ~width:((float_of_int d1 *. cell) +. (2. *. margin))
      ~height:((float_of_int d0 *. cell) +. (2. *. margin))
  in
  let m = comm.Comm.m in
  for i = 0 to d0 - 1 do
    for j = 0 to d1 - 1 do
      let halo =
        i < comm.Comm.off.(0) || j < comm.Comm.off.(1)
      in
      let fill = if halo then "#fdc086" else "#ffffff" in
      Svg.rect svg
        ~x:(margin +. (float_of_int j *. cell))
        ~y:(margin +. (float_of_int i *. cell))
        ~w:cell ~h:cell ~fill ~stroke:"#888" ()
    done
  done;
  (* chain-tile separators along the mapping dimension *)
  let per_tile = tiling.Tiling.v.(m) / tiling.Tiling.c.(m) in
  for t = 0 to ntiles do
    let pos = comm.Comm.off.(m) + (t * per_tile) in
    if m = 0 then
      Svg.line svg ~x1:margin
        ~y1:(margin +. (float_of_int pos *. cell))
        ~x2:(margin +. (float_of_int d1 *. cell))
        ~y2:(margin +. (float_of_int pos *. cell))
        ~stroke:"#333" ~stroke_width:1.6 ()
    else
      Svg.line svg
        ~x1:(margin +. (float_of_int pos *. cell))
        ~y1:margin
        ~x2:(margin +. (float_of_int pos *. cell))
        ~y2:(margin +. (float_of_int d0 *. cell))
        ~stroke:"#333" ~stroke_width:1.6 ()
  done;
  Svg.text svg ~x:margin ~y:(margin /. 2.)
    (Printf.sprintf
       "LDS of one processor: %d tiles chained along dim %d; shaded = \
        communication storage"
       ntiles m);
  svg

let span_colour = function
  | Span.Compute -> "#7fc97f"
  | Span.Pack -> "#beaed4"
  | Span.Send -> "#fdc086"
  | Span.Wait -> "#d9d9d9"
  | Span.Unpack -> "#80b1d3"

let path_colour = "#e31a1c"

let timeline ?(title = "execution timeline") ?(path = []) ~nprocs ~completion
    spans =
  if spans = [] then invalid_arg "Figures.timeline: no spans";
  if completion <= 0. then invalid_arg "Figures.timeline: completion <= 0";
  let row_h = 22. and left = 60. in
  let time_w = 720. in
  let legend_y = (2. *. margin) +. (float_of_int nprocs *. row_h) in
  let svg =
    Svg.create
      ~width:(left +. time_w +. margin)
      ~height:(legend_y +. row_h)
  in
  let scale = time_w /. completion in
  List.iter
    (fun { Span.rank; t0; t1; kind } ->
      Svg.rect svg
        ~x:(left +. (t0 *. scale))
        ~y:(margin +. (float_of_int rank *. row_h) +. 2.)
        ~w:(Float.max 0.5 ((t1 -. t0) *. scale))
        ~h:(row_h -. 4.) ~fill:(span_colour kind) ())
    spans;
  (* critical-path overlay: outlined rects on the critical rank's row,
     message flights as diagonal lines hopping from the sender's row
     (wherever the previous on-path segment sat) to the receiver's *)
  let row_mid r = margin +. (float_of_int r *. row_h) +. (row_h /. 2.) in
  let prev_rank = ref None in
  List.iter
    (fun (sg : Critpath.segment) ->
      (match sg.Critpath.sg_kind with
      | Critpath.Flight ->
        let src = match !prev_rank with Some r -> r | None -> sg.sg_rank in
        Svg.line svg
          ~x1:(left +. (sg.Critpath.sg_t0 *. scale))
          ~y1:(row_mid src)
          ~x2:(left +. (sg.Critpath.sg_t1 *. scale))
          ~y2:(row_mid sg.Critpath.sg_rank)
          ~stroke:path_colour ~stroke_width:1.4 ~dash:"3 2" ()
      | Critpath.Queue ->
        (* NIC/uplink queueing: the message sits still before its hop,
           drawn flat on the sender's row where it queued *)
        let src = match !prev_rank with Some r -> r | None -> sg.sg_rank in
        Svg.line svg
          ~x1:(left +. (sg.Critpath.sg_t0 *. scale))
          ~y1:(row_mid src)
          ~x2:(left +. (sg.Critpath.sg_t1 *. scale))
          ~y2:(row_mid src)
          ~stroke:path_colour ~stroke_width:1.4 ~dash:"1 2" ()
      | Critpath.Activity _ | Critpath.Idle ->
        Svg.rect svg
          ~x:(left +. (sg.Critpath.sg_t0 *. scale))
          ~y:(margin +. (float_of_int sg.Critpath.sg_rank *. row_h) +. 1.)
          ~w:(Float.max 0.5 (Critpath.seg_duration sg *. scale))
          ~h:row_h ~stroke:path_colour ~opacity:0.9 ());
      (* a Queue segment keeps the pen on the sender's row so the
         following Flight still hops from there *)
      match sg.Critpath.sg_kind with
      | Critpath.Queue -> ()
      | _ -> prev_rank := Some sg.Critpath.sg_rank)
    path;
  for r = 0 to nprocs - 1 do
    Svg.text svg ~x:8.
      ~y:(margin +. (float_of_int r *. row_h) +. (row_h /. 2.) +. 4.)
      (Printf.sprintf "rank %d" r)
  done;
  List.iteri
    (fun i kind ->
      let x = left +. (float_of_int i *. 110.) in
      Svg.rect svg ~x ~y:(legend_y -. 10.) ~w:12. ~h:12.
        ~fill:(span_colour kind) ~stroke:"#666" ();
      Svg.text svg ~x:(x +. 16.) ~y:(legend_y +. 1.) (Span.kind_name kind))
    Span.all_kinds;
  if path <> [] then begin
    let x = left +. (float_of_int (List.length Span.all_kinds) *. 110.) in
    Svg.rect svg ~x ~y:(legend_y -. 10.) ~w:12. ~h:12. ~stroke:path_colour ();
    Svg.text svg ~x:(x +. 16.) ~y:(legend_y +. 1.) "critical path"
  end;
  Svg.text svg ~x:left ~y:(margin /. 2.)
    (Printf.sprintf "%s, %.4g s total" title completion);
  svg

let gantt (stats : Sim.stats) =
  if stats.Sim.trace = [] then invalid_arg "Figures.gantt: no trace recorded";
  timeline ~title:"simulated execution timeline"
    ~nprocs:(Array.length stats.Sim.rank_clocks)
    ~completion:stats.Sim.completion stats.Sim.trace
