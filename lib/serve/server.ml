module Json = Tiles_util.Json
module Clock = Tiles_obs.Clock
module Runmeta = Tiles_obs.Runmeta
module Recorder = Tiles_obs.Recorder
module Plan = Tiles_core.Plan
module Schedule = Tiles_core.Schedule
module Tiling = Tiles_core.Tiling
module Nest = Tiles_loop.Nest
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor
module Seq_exec = Tiles_runtime.Seq_exec
module Grid = Tiles_runtime.Grid
module Walker = Tiles_runtime.Walker
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel
module Tune = Tiles_tune.Tune
module TCache = Tiles_tune.Cache

type config = {
  capacity : int;
  workers : int;
  plan_cache_capacity : int;
  tune_cache_dir : string option;
  net : Netmodel.t;
}

let default_config =
  {
    capacity = 64;
    workers = max 1 (min 4 (Domain.recommended_domain_count () / 2));
    plan_cache_capacity = 128;
    tune_cache_dir = None;
    net = Netmodel.fast_ethernet_cluster;
  }

type follower = {
  f_id : string;
  f_submitted : float;
  f_respond : Json.t -> unit;
}

type ticket = {
  job : Job.t;
  resolved : Registry.resolved;
  ckey : string;  (* coalesce identity: op + configuration + parameters *)
  pkey : string;  (* plan-cache identity *)
  submitted : float;
  respond : Json.t -> unit;
  mutable followers : follower list;
}

type t = {
  config : config;
  queue : ticket Admission.t;
  cache : Plan_cache.t;
  metrics : Metrics.t;
  (* leaders currently queued or executing, by coalesce key *)
  inflight : (string, ticket) Hashtbl.t;
  lock : Mutex.t;  (* guards inflight, pending, coalesced, seq *)
  drained : Condition.t;
  (* real shm executions are serialized: each spawns one domain per
     rank, so running two at once would oversubscribe the cores being
     measured (the same discipline Tune applies to its shm backend) *)
  shm_gate : Mutex.t;
  mutable pending : int;  (* admitted but not yet completed *)
  mutable coalesced : int;
  mutable seq : int;
  mutable pool : Pool.t option;
  mutable stopped : bool;
}

let make_server ?(config = default_config) () =
  let t =
    {
      config;
      queue = Admission.create ~capacity:config.capacity;
      cache = Plan_cache.create ~capacity:config.plan_cache_capacity;
      metrics = Metrics.create ();
      inflight = Hashtbl.create 64;
      lock = Mutex.create ();
      drained = Condition.create ();
      shm_gate = Mutex.create ();
      pending = 0;
      coalesced = 0;
      seq = 0;
      pool = None;
      stopped = false;
    }
  in
  t

(* every [t.lock] critical section runs under [Fun.protect]: several of
   them call out to code that may raise (queue submission, hash-table
   growth), and an exception escaping with the server lock held would
   deadlock every subsequent submit/complete *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---------------- responses ---------------- *)

let error_json ~id msg =
  Json.Obj
    [ ("id", Json.Str id); ("status", Json.Str "error");
      ("error", Json.Str msg) ]

let rejected_json ~id (r : Admission.reject) =
  Json.Obj
    [
      ("id", Json.Str id);
      ("status", Json.Str "rejected");
      ("reason", Json.Str r.Admission.reason);
      ("capacity", Json.Int r.Admission.capacity);
      ("depth", Json.Int r.Admission.depth);
    ]

(* what a worker computes once per leader; responses to the leader and
   every follower share it bit-for-bit *)
type outcome = {
  payload : (string * Json.t) list;
  mk_meta : (job_id:string -> queued_s:float -> Json.t) option;
  cache_status : [ `Hit | `Miss ];
}

let ok_json ~(job : Job.t) ~id ~cache_label ~queued_s ~service_s outcome =
  Json.Obj
    ([
       ("id", Json.Str id);
       ("status", Json.Str "ok");
       ("op", Json.Str (Job.op_to_string job.Job.op));
       ("cache", Json.Str cache_label);
       ("queued_s", Json.Float queued_s);
       ("service_s", Json.Float service_s);
     ]
    @ outcome.payload
    @
    match outcome.mk_meta with
    | Some mk -> [ ("metadata", mk ~job_id:id ~queued_s) ]
    | None -> [])

(* ---------------- job execution ---------------- *)

let run_meta ~(job : Job.t) ~net ~nprocs ~job_id ~queued_s =
  Runmeta.to_json
    (Runmeta.make ~app:job.Job.app ~variant:job.Job.variant
       ~size1:job.Job.size1 ~size2:job.Job.size2 ~tile:job.Job.tile ~nprocs
       ~backend:job.Job.backend ~overlap:job.Job.overlap
       ~netmodel:
         (match job.Job.backend with
         | "sim" -> Netmodel.model_id net
         | _ -> "-")
       ~walker:(Walker.variant_to_string job.Job.walker)
       ?inner:job.Job.inner ~job_id ~queued_s ())

let sim_payload (r : Executor.result) =
  [
    ("completion_s", Json.Float r.Executor.stats.Sim.completion);
    ("speedup", Json.Float r.Executor.speedup);
    ("messages", Json.Int r.Executor.stats.Sim.messages);
    ("bytes", Json.Int r.Executor.stats.Sim.bytes);
    ("points", Json.Int r.Executor.points_computed);
    ("tiles", Json.Int r.Executor.tiles_executed);
  ]

let run_job t (ticket : ticket) : outcome =
  let job = ticket.job in
  let r = ticket.resolved in
  let plan, cache_status =
    Plan_cache.find_or_compile t.cache ~key:ticket.pkey (fun () ->
        Plan.make ~m:r.Registry.m r.Registry.nest r.Registry.tiling)
  in
  let nprocs = Plan.nprocs plan in
  let kernel = r.Registry.kernel in
  (* every execute/simulate run drives a streaming recorder labelled with
     the job id: O(nprocs) memory per job, and the job's longest waits
     land in the service-wide metrics reservoir attributed to it *)
  let streaming_recorder ~sim =
    if sim then
      Recorder.create ~mode:Recorder.Streaming ~trace:true
        ~clock:(fun () -> 0.)
        ~label:job.Job.id ~nprocs ()
    else
      Recorder.create ~mode:Recorder.Streaming ~trace:true ~label:job.Job.id
        ~nprocs ()
  in
  let fold_waits rc =
    Metrics.observe_waits t.metrics ~job_id:job.Job.id
      (Recorder.longest_waits rc)
  in
  match job.Job.op with
  | Job.Plan ->
    {
      payload =
        [
          ("nprocs", Json.Int nprocs);
          ("steps", Json.Int (Schedule.steps plan));
          ("last_step", Json.Int (Schedule.last_point_step plan));
          ("tile_size", Json.Int (Tiling.tile_size plan.Plan.tiling));
        ];
      mk_meta = None;
      cache_status;
    }
  | Job.Simulate ->
    let rc = streaming_recorder ~sim:true in
    let res =
      Executor.run ?inner:job.Job.inner ~mode:Executor.Timing
        ~overlap:job.Job.overlap ~recorder:rc ~plan ~kernel
        ~net:t.config.net ()
    in
    fold_waits rc;
    {
      payload = ("nprocs", Json.Int nprocs) :: sim_payload res;
      mk_meta = Some (run_meta ~job ~net:t.config.net ~nprocs);
      cache_status;
    }
  | Job.Execute when job.Job.backend = "shm" ->
    let rc = streaming_recorder ~sim:false in
    let res =
      Mutex.lock t.shm_gate;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.shm_gate)
        (fun () ->
          Shm_executor.run ?inner:job.Job.inner ~walker:job.Job.walker
            ~overlap:job.Job.overlap ~recorder:rc ~plan ~kernel ())
    in
    fold_waits rc;
    {
      payload =
        [
          ("nprocs", Json.Int nprocs);
          ("completion_s", Json.Float res.Shm_executor.wall_seconds);
          ("speedup", Json.Float res.Shm_executor.wall_speedup);
          ("messages", Json.Int res.Shm_executor.messages);
          ("bytes", Json.Int res.Shm_executor.bytes);
          ("points", Json.Int res.Shm_executor.points_computed);
          ("tiles", Json.Int res.Shm_executor.tiles_executed);
          ("max_abs_err", Json.Float res.Shm_executor.max_abs_err);
        ];
      mk_meta = Some (run_meta ~job ~net:t.config.net ~nprocs);
      cache_status;
    }
  | Job.Execute ->
    let rc = streaming_recorder ~sim:true in
    let res =
      Executor.run ?inner:job.Job.inner ~walker:job.Job.walker
        ~mode:Executor.Full ~overlap:job.Job.overlap ~recorder:rc ~plan
        ~kernel ~net:t.config.net ()
    in
    fold_waits rc;
    let err =
      match res.Executor.grid with
      | Some g ->
        let seq =
          Seq_exec.run ~space:r.Registry.nest.Nest.space ~kernel ()
        in
        Grid.max_abs_diff g seq r.Registry.nest.Nest.space
      | None -> infinity
    in
    {
      payload =
        ("nprocs", Json.Int nprocs)
        :: sim_payload res
        @ [ ("max_abs_err", Json.Float err) ];
      mk_meta = Some (run_meta ~job ~net:t.config.net ~nprocs);
      cache_status;
    }
  | Job.Tune ->
    let options =
      {
        Tune.default_options with
        Tune.procs = job.Job.procs;
        factors = job.Job.factors;
        top_k = 3;
        workers = 1;  (* the pool is the only source of parallelism *)
        cache_dir = t.config.tune_cache_dir;
        overlap = job.Job.overlap;
        inner =
          (match job.Job.inner with
          | Some b -> Tune.Inner_fixed (Some b)
          | None -> Tune.Inner_search);
        backend = Tune.Sim;
      }
    in
    let res =
      Tune.search ~options ~nest:r.Registry.nest ~kernel ~net:t.config.net ()
    in
    let best = res.Tune.best in
    let best_score =
      match best.Tune.score with
      | Some s ->
        [
          ("completion_s", Json.Float s.TCache.completion);
          ("speedup", Json.Float s.TCache.speedup);
        ]
      | None -> []
    in
    {
      payload =
        [
          ("generated", Json.Int res.Tune.generated);
          ("feasible", Json.Int res.Tune.feasible);
          ("tune_cache_hits", Json.Int res.Tune.cache_hits);
          ( "best",
            Json.Obj
              ([
                 ("label", Json.Str (Tiles_tune.Candidate.label best.Tune.cand));
                 ("nprocs", Json.Int best.Tune.nprocs);
                 ("tile_size", Json.Int best.Tune.tile_size);
               ]
              @ best_score) );
        ];
      mk_meta = None;
      cache_status;
    }

(* complete a leader: deliver to it and every follower, fold latencies *)
let complete t (ticket : ticket) ~started ~finished result =
  let followers =
    locked t (fun () ->
        Hashtbl.remove t.inflight ticket.ckey;
        ticket.followers)
  in
  let deliver ~id ~submitted ~cache_label respond =
    let queued_s = Float.max 0. (started -. submitted) in
    let service_s = finished -. started in
    (match result with
    | Ok outcome ->
      respond
        (ok_json ~job:ticket.job ~id ~cache_label ~queued_s ~service_s outcome);
      Metrics.observe t.metrics ~cls:(Job.op_to_string ticket.job.Job.op)
        ~queued_s ~service_s
    | Error msg ->
      respond (error_json ~id msg);
      Metrics.error t.metrics)
  in
  let leader_label =
    match result with
    | Ok { cache_status = `Hit; _ } -> "hit"
    | _ -> "miss"
  in
  deliver ~id:ticket.job.Job.id ~submitted:ticket.submitted
    ~cache_label:leader_label ticket.respond;
  List.iter
    (fun f ->
      deliver ~id:f.f_id ~submitted:f.f_submitted ~cache_label:"coalesced"
        f.f_respond)
    (List.rev followers);
  locked t (fun () ->
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.drained)

let exec t (ticket : ticket) =
  let started = Clock.monotonic () in
  let result =
    match run_job t ticket with
    | outcome -> Ok outcome
    | exception e ->
      let msg =
        match e with
        | Invalid_argument m | Failure m | Sys_error m -> m
        | Shm_executor.Recv_timeout m | Shm_executor.Send_timeout m -> m
        | Tiles_runtime.Protocol.Slab_mismatch m ->
          Tiles_runtime.Protocol.slab_mismatch_to_string m
        | Division_by_zero -> "singular tiling (zero tile factor)"
        | e -> Printexc.to_string e
      in
      Error msg
  in
  let finished = Clock.monotonic () in
  complete t ticket ~started ~finished result

(* ---------------- submission ---------------- *)

let coalesce_key (job : Job.t) ~pkey =
  (* the plan key covers (nest, tiling, m, kernel, net, overlap,
     backend, walker); the operation and its parameters complete the
     identity of "the same request" *)
  match job.Job.op with
  | Job.Tune ->
    Printf.sprintf "%s|%s|procs=%d|factors=%s" (Job.op_to_string job.Job.op)
      pkey job.Job.procs
      (String.concat "," (List.map string_of_int job.Job.factors))
  | _ -> Printf.sprintf "%s|%s" (Job.op_to_string job.Job.op) pkey

let submit t ~respond (job : Job.t) =
  let now = Clock.monotonic () in
  let job =
    if job.Job.id <> "" then job
    else begin
      let id =
        locked t (fun () ->
            t.seq <- t.seq + 1;
            Printf.sprintf "job-%d" t.seq)
      in
      { job with Job.id }
    end
  in
  match
    Registry.resolve ~app:job.Job.app ~size1:job.Job.size1
      ~size2:job.Job.size2 ~variant:job.Job.variant ~tile:job.Job.tile
  with
  | Error msg ->
    respond (error_json ~id:job.Job.id msg);
    Metrics.error t.metrics
  | Ok resolved -> (
    let pkey =
      Plan_cache.key ~resolved ~net:t.config.net ~overlap:job.Job.overlap
        ~backend:job.Job.backend
        ~walker:(Walker.variant_to_string job.Job.walker)
        ~inner:job.Job.inner
    in
    let ckey = coalesce_key job ~pkey in
    let verdict =
      locked t (fun () ->
          match Hashtbl.find_opt t.inflight ckey with
          | Some leader ->
            leader.followers <-
              { f_id = job.Job.id; f_submitted = now; f_respond = respond }
              :: leader.followers;
            t.coalesced <- t.coalesced + 1;
            `Coalesced
          | None -> (
            let ticket =
              {
                job;
                resolved;
                ckey;
                pkey;
                submitted = now;
                respond;
                followers = [];
              }
            in
            (* admission under the server lock: the inflight entry and
               the queue slot must appear atomically, or a racing
               duplicate could miss the coalesce window *)
            match
              Admission.submit t.queue ~priority:job.Job.priority ticket
            with
            | Ok () ->
              Hashtbl.add t.inflight ckey ticket;
              t.pending <- t.pending + 1;
              `Admitted
            | Error reject -> `Rejected reject))
    in
    match verdict with
    | `Coalesced | `Admitted -> ()
    | `Rejected reject -> respond (rejected_json ~id:job.Job.id reject))

(* ---------------- pool / stepping ---------------- *)

let step t =
  match Admission.try_pop t.queue with
  | None -> false
  | Some ticket ->
    exec t ticket;
    true

let start_pool t =
  if t.config.workers > 0 then
    t.pool <-
      Some
        (Pool.start ~shards:t.config.workers
           ~pull:(fun () -> Admission.pop t.queue)
           ~exec:(fun ~shard ticket ->
             ignore shard;
             exec t ticket))

let create ?config () =
  let t = make_server ?config () in
  start_pool t;
  t

let drain t =
  locked t (fun () ->
      while t.pending > 0 do
        Condition.wait t.drained t.lock
      done)

let shutdown t =
  let already =
    locked t (fun () ->
        let already = t.stopped in
        t.stopped <- true;
        already)
  in
  if not already then begin
    Admission.close t.queue;
    match t.pool with
    | Some pool -> Pool.join pool
    | None -> while step t do () done
  end

(* ---------------- metrics ---------------- *)

let metrics_json t =
  let coalesced, in_flight =
    locked t (fun () -> (t.coalesced, Hashtbl.length t.inflight))
  in
  let pool_json =
    match t.pool with
    | Some pool -> Pool.stats_json (Pool.stats pool)
    | None ->
      Pool.stats_json { Pool.shards = 0; executed = []; busy = 0 }
  in
  Json.Obj
    [
      ("queue", Admission.stats_json (Admission.stats t.queue));
      ("plan_cache", Plan_cache.stats_json (Plan_cache.stats t.cache));
      ("pool", pool_json);
      ( "coalesce",
        Json.Obj
          [ ("batched", Json.Int coalesced); ("in_flight", Json.Int in_flight) ]
      );
      ("jobs", Metrics.snapshot_json t.metrics);
    ]

(* ---------------- protocol front-ends ---------------- *)

let handle_line t ~respond line =
  match Json.parse line with
  | Error e ->
    respond (error_json ~id:"" ("parse: " ^ e));
    `Handled
  | Ok doc -> (
    match Option.bind (Json.member "op" doc) Json.to_str_opt with
    | Some "metrics" ->
      let id =
        match Option.bind (Json.member "id" doc) Json.to_str_opt with
        | Some id -> id
        | None -> ""
      in
      respond
        (Json.Obj
           [
             ("id", Json.Str id);
             ("status", Json.Str "ok");
             ("op", Json.Str "metrics");
             ("metrics", metrics_json t);
           ]);
      `Handled
    | Some "shutdown" -> `Shutdown
    | _ -> (
      match Job.of_json doc with
      | Ok job ->
        submit t ~respond job;
        `Handled
      | Error msg ->
        let id =
          match Option.bind (Json.member "id" doc) Json.to_str_opt with
          | Some id -> id
          | None -> ""
        in
        respond (error_json ~id msg);
        `Handled))

let write_metrics_file path metrics =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 metrics);
  output_char oc '\n';
  close_out oc

let final_line t =
  Json.Obj
    [
      ("status", Json.Str "ok");
      ("op", Json.Str "shutdown");
      ("metrics", metrics_json t);
    ]

(* a tenant that disconnects mid-response turns the server's next write
   into a SIGPIPE, whose default disposition kills the whole daemon —
   every other tenant's queued work with it. Ignored, the write raises
   [Sys_error] (EPIPE) instead, which each connection handler absorbs
   locally. Signal dispositions are process-global and unavailable on
   some runtimes (e.g. Windows), hence the defensive catch. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let serve_channels ?config ?metrics_out ic oc =
  ignore_sigpipe ();
  let out_lock = Mutex.create () in
  let respond j =
    Mutex.lock out_lock;
    (* [Fun.protect]: a broken pipe raising out of [flush] must not
       leave the output lock held for the other workers *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_lock)
      (fun () ->
        try
          output_string oc (Json.to_line j);
          output_char oc '\n';
          flush oc
        with Sys_error _ -> ())
  in
  let t = create ?config () in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      if String.trim line = "" then loop ()
      else begin
        match handle_line t ~respond line with
        | `Shutdown -> ()
        | `Handled -> loop ()
      end
  in
  loop ();
  drain t;
  shutdown t;
  let final = final_line t in
  respond final;
  match metrics_out with
  | Some path -> write_metrics_file path (metrics_json t)
  | None -> ()

let serve_socket ?config ?metrics_out ~path () =
  ignore_sigpipe ();
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> raise (Sys_error (path ^ ": exists and is not a socket"))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 16;
  let t = create ?config () in
  let stop = Atomic.make false in
  let handlers = ref [] in
  let handlers_lock = Mutex.create () in
  let handle_conn fd () =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let out_lock = Mutex.create () in
    let respond j =
      Mutex.lock out_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock out_lock)
        (fun () ->
          try
            output_string oc (Json.to_line j);
            output_char oc '\n';
            flush oc
          with Sys_error _ | Unix.Unix_error _ -> ())
    in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | line ->
        if String.trim line = "" then loop ()
        else begin
          match handle_line t ~respond line with
          | `Shutdown ->
            (* this tenant ends the whole daemon: finish the backlog,
               answer with the final snapshot, stop accepting *)
            drain t;
            respond (final_line t);
            Atomic.set stop true;
            (try Unix.shutdown listener Unix.SHUTDOWN_RECEIVE
             with Unix.Unix_error _ -> ());
            (try Unix.close listener with Unix.Unix_error _ -> ())
          | `Handled -> loop ()
        end
    in
    loop ();
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      match Unix.accept listener with
      | fd, _ ->
        let d = Domain.spawn (handle_conn fd) in
        Mutex.lock handlers_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock handlers_lock)
          (fun () -> handlers := d :: !handlers);
        accept_loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed: stop *)
    end
  in
  accept_loop ();
  let hs =
    Mutex.lock handlers_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock handlers_lock)
      (fun () -> !handlers)
  in
  List.iter Domain.join hs;
  drain t;
  shutdown t;
  (match metrics_out with
  | Some p -> write_metrics_file p (metrics_json t)
  | None -> ());
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
