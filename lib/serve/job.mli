(** One request of the daemon's line-delimited JSON protocol.

    A request line is a JSON object naming an operation and a
    configuration:

    {v
{"id":"j1","op":"simulate","app":"sor","size1":12,"size2":16,
 "variant":"nonrect","tile":[3,4,4],"priority":5}
    v}

    Operations: [plan] (compile and summarize the plan), [simulate]
    (timing-mode discrete-event run; deterministic), [execute] (full
    data movement, verified against the sequential oracle; [backend]
    may be ["sim"] or ["shm"]), [tune] (a small autotuning search).
    The control operations [metrics] and [shutdown] are handled by the
    server before {!of_json} and carry no configuration.

    Defaults match the CLI: sizes 24/32, variant [nonrect], tile
    [(6,8,8)], walker [fast], blocking sends, priority 10 ({e lower} is
    served sooner). *)

type op = Plan | Simulate | Execute | Tune

val op_to_string : op -> string
val op_of_string : string -> op option

type t = {
  id : string;  (** echoed in the response; "" until the server assigns *)
  op : op;
  app : string;
  size1 : int;
  size2 : int;
  variant : string;
  tile : int * int * int;
  backend : string;  (** ["sim"] or ["shm"]; [execute] only *)
  overlap : bool;
  walker : Tiles_runtime.Walker.variant;
  inner : int array option;
      (** walker subtile shape ([simulate]/[execute]/[tune]); [None]
          walks each rank tile unblocked *)
  priority : float;
  procs : int;  (** tune: processor budget *)
  factors : int list;  (** tune: mapped-dimension factor sweep *)
}

val of_json : Tiles_util.Json.t -> (t, string) result
(** Validates operation, backend and walker names and field types;
    [Error] is a one-line reason suitable for a rejection response.
    Cross-field validity (unknown app/variant, illegal tiling) is the
    {!Registry}'s job. *)

val to_json : t -> Tiles_util.Json.t
(** Request rendering (the load generator uses it); parses back to an
    equal record. *)
