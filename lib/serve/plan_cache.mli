(** Content-addressed in-memory cache of compiled plans.

    Mapple's thesis made concrete: a mapping decision — here the full
    {!Tiles_core.Plan.t}, with its Hermite-normal-form factorization,
    tile-space bounds and processor assignment — is a first-class,
    reusable artifact, not something recomputed per request. The daemon
    keys plans exactly like [Tune.Cache] v4 keys scores (nest, tiling,
    mapping dimension, kernel, network model, overlap, backend, inner
    subtile shape) plus the walker variant, so a million small queries
    against the same configuration amortize one compile.

    Bounded LRU: at most [capacity] plans are retained; inserting into a
    full cache evicts the least-recently-used entry. Hits, misses,
    evictions and compiles are counted for the metrics snapshot.

    Thread-safety: lookups and insertions are mutex-protected; the
    compile itself runs {e outside} the lock so distinct keys compile
    concurrently. Two jobs racing on the same key can both compile —
    the server's request coalescing makes that impossible for identical
    requests, and harmless (plan compilation is deterministic)
    otherwise. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] unless [capacity >= 1]. *)

val key :
  resolved:Registry.resolved ->
  net:Tiles_mpisim.Netmodel.t ->
  overlap:bool ->
  backend:string ->
  walker:string ->
  inner:int array option ->
  string
(** The [Tune.Cache] v4 digest of the resolved configuration, extended
    with the walker variant. [inner] is the walker's subtile shape —
    part of the configuration a job names (blocked native kernels are
    compiled per shape). *)

val find_or_compile :
  t -> key:string -> (unit -> Tiles_core.Plan.t) ->
  Tiles_core.Plan.t * [ `Hit | `Miss ]
(** On [`Miss] the thunk ran (outside the lock) and the result was
    inserted, evicting the LRU entry if the cache was full. Eviction is
    deterministic: the victim is the minimum (last-use, key) pair, with
    the key breaking age ties — never hash-table iteration order. *)

val set_last_use_for_testing : t -> key:string -> age:int -> unit
(** Overwrite an entry's last-use tick. Production ticks are unique, so
    this exists only for tests that manufacture equal-age entries to
    exercise the eviction tie-break. Raises [Invalid_argument] on an
    unknown key. *)

type stats = {
  capacity : int;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
  compiles : int;  (** thunk executions; equals misses unless two
                       distinct-op jobs raced on one key *)
}

val stats : t -> stats

val stats_json : stats -> Tiles_util.Json.t
