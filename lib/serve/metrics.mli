(** Per-class latency distributions and job counters for the daemon.

    Every completed job is folded into its class's (the operation
    name's) streaming {!Tiles_obs.Metric}s — queued seconds, service
    seconds and total seconds — so the snapshot reports p50/p99 latency
    per job class in O(1) space regardless of traffic volume, exactly
    like the perf observatory's run distributions.

    Thread-safe; workers observe concurrently. *)

type t

val create : unit -> t

val observe : t -> cls:string -> queued_s:float -> service_s:float -> unit
(** Fold one completed job into class [cls]. *)

val observe_waits : t -> job_id:string -> Tiles_obs.Span.t list -> unit
(** Fold a job's longest Wait spans (as reported by
    {!Tiles_obs.Recorder.longest_waits}) into the service-wide bounded
    reservoir, attributed to [job_id]. Only the longest 16 across all
    jobs are retained, so memory stays O(1) under any traffic. *)

val longest_waits : t -> (string * int * float) list
(** The retained [(job_id, rank, seconds)] triples, longest first. *)

val error : t -> unit
(** Count a job that failed (its latency is not folded). *)

val completed : t -> int

val errors : t -> int

val snapshot_json : t -> Tiles_util.Json.t
(** [{"completed": …, "errors": …, "classes": {cls: {"count": …,
    "queued_s": summary, "service_s": summary, "total_s": summary}},
    "longest_waits": [{"job_id": …, "rank": …, "seconds": …}, …]}]
    where each summary is a {!Tiles_obs.Metric.summary} (count, mean,
    stddev, min, max, p50, p90, p99). *)
