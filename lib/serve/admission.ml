module Heap = Tiles_util.Heap
module Json = Tiles_util.Json

type reject = { reason : string; capacity : int; depth : int }

type 'a t = {
  heap : 'a Heap.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  mutable closed : bool;
  mutable accepted : int;
  mutable rejected_full : int;
  mutable rejected_closed : int;
  mutable high_water : int;
}

(* critical sections run under [Fun.protect]: an exception escaping with
   the lock held (e.g. from a comparator raising inside [Heap.push])
   would deadlock every other worker blocked on this queue *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Admission.create: capacity must be >= 1";
  {
    heap = Heap.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    capacity;
    closed = false;
    accepted = 0;
    rejected_full = 0;
    rejected_closed = 0;
    high_water = 0;
  }

let submit t ~priority v =
  locked t (fun () ->
      if t.closed then begin
        t.rejected_closed <- t.rejected_closed + 1;
        Error
          { reason = "shutting_down"; capacity = t.capacity;
            depth = Heap.size t.heap }
      end
      else if Heap.size t.heap >= t.capacity then begin
        t.rejected_full <- t.rejected_full + 1;
        Error
          { reason = "queue_full"; capacity = t.capacity;
            depth = Heap.size t.heap }
      end
      else begin
        Heap.push t.heap ~priority v;
        t.accepted <- t.accepted + 1;
        if Heap.size t.heap > t.high_water then
          t.high_water <- Heap.size t.heap;
        Condition.signal t.nonempty;
        Ok ()
      end)

let pop t =
  locked t (fun () ->
      (* [Condition.wait] reacquires the lock before returning, so the
         whole wait loop stays inside the protected section *)
      let rec wait () =
        match Heap.pop t.heap with
        | Some (_, v) -> Some v
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.lock;
            wait ()
          end
      in
      wait ())

let try_pop t = locked t (fun () -> Option.map snd (Heap.pop t.heap))

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

type stats = {
  capacity : int;
  depth : int;
  high_water : int;
  accepted : int;
  rejected_full : int;
  rejected_closed : int;
  closed : bool;
}

let stats t =
  locked t (fun () ->
      {
        capacity = t.capacity;
        depth = Heap.size t.heap;
        high_water = t.high_water;
        accepted = t.accepted;
        rejected_full = t.rejected_full;
        rejected_closed = t.rejected_closed;
        closed = t.closed;
      })

let stats_json (s : stats) =
  Json.Obj
    [
      ("capacity", Json.Int s.capacity);
      ("depth", Json.Int s.depth);
      ("high_water", Json.Int s.high_water);
      ("accepted", Json.Int s.accepted);
      ("rejected_full", Json.Int s.rejected_full);
      ("rejected_closed", Json.Int s.rejected_closed);
      ("closed", Json.Bool s.closed);
    ]
