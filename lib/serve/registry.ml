module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Kernel = Tiles_runtime.Kernel

type resolved = {
  app : string;
  variant : string;
  nest : Nest.t;
  kernel : Kernel.t;
  m : int;
  tiling : Tiling.t;
}

let apps = [ "sor"; "jacobi"; "adi" ]

type instance = {
  nest : Nest.t;
  kernel : Kernel.t;
  m : int;
  variants : (string * (x:int -> y:int -> z:int -> Tiling.t)) list;
}

let instance app ~size1 ~size2 =
  match app with
  | "sor" ->
    let p = Tiles_apps.Sor.make ~m_steps:size1 ~size:size2 in
    Ok
      {
        nest = Tiles_apps.Sor.nest p;
        kernel = Tiles_apps.Sor.kernel p;
        m = Tiles_apps.Sor.mapping_dim;
        variants = Tiles_apps.Sor.variants;
      }
  | "jacobi" ->
    let p = Tiles_apps.Jacobi.make ~t_steps:size1 ~size:size2 in
    Ok
      {
        nest = Tiles_apps.Jacobi.nest p;
        kernel = Tiles_apps.Jacobi.kernel p;
        m = Tiles_apps.Jacobi.mapping_dim;
        variants = Tiles_apps.Jacobi.variants;
      }
  | "adi" ->
    let p = Tiles_apps.Adi.make ~t_steps:size1 ~size:size2 in
    Ok
      {
        nest = Tiles_apps.Adi.nest p;
        kernel = Tiles_apps.Adi.kernel p;
        m = Tiles_apps.Adi.mapping_dim;
        variants = Tiles_apps.Adi.variants;
      }
  | other ->
    Error
      (Printf.sprintf "unknown app %S (expected %s)" other
         (String.concat " | " apps))

let resolve ~app ~size1 ~size2 ~variant ~tile:(x, y, z) =
  if size1 < 1 || size2 < 1 then
    Error (Printf.sprintf "sizes must be >= 1 (got %d, %d)" size1 size2)
  else
    match instance app ~size1 ~size2 with
    | Error _ as e -> e
    | Ok inst -> (
      match List.assoc_opt variant inst.variants with
      | None ->
        Error
          (Printf.sprintf "unknown %s variant %S (expected %s)" app variant
             (String.concat " | " (List.map fst inst.variants)))
      | Some mk -> (
        (* an illegal or singular tiling surfaces here, as a structured
           rejection rather than a worker-side crash *)
        match mk ~x ~y ~z with
        | tiling ->
          Ok
            {
              app;
              variant;
              nest = inst.nest;
              kernel = inst.kernel;
              m = inst.m;
              tiling;
            }
        | exception (Invalid_argument msg | Failure msg) -> Error msg
        | exception Division_by_zero ->
          Error "singular tiling (zero tile factor)"))
