module Json = Tiles_util.Json
module Plan = Tiles_core.Plan

type entry = { plan : Plan.t; mutable last_use : int }

type t = {
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable compiles : int;
}

(* critical sections run under [Fun.protect] so an exception (from the
   compile callback, or anything the table calls) can never escape with
   the lock held and wedge the server *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    compiles = 0;
  }

let key ~(resolved : Registry.resolved) ~net ~overlap ~backend ~walker ~inner =
  (* same content addressing as the tune score cache, plus the walker:
     the plan itself is walker-independent, but the cache identifies the
     full compiled configuration a job names — including the walker's
     inner subtile shape, which is baked into native kernels *)
  Tiles_tune.Cache.key ~inner ~nest:resolved.Registry.nest
    ~tiling:resolved.Registry.tiling ~m:resolved.Registry.m
    ~kernel:resolved.Registry.kernel ~net ~overlap ~backend
  ^ "-" ^ walker

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let evict_lru t =
  (* linear scan: the cache is small (hundreds of plans), eviction rare.
     The victim is the minimum (last_use, key) pair — the key breaks
     age ties, so the choice never depends on [Hashtbl.iter] order
     (which varies with the table's random hash seed and its resize
     history, and previously made equal-age eviction nondeterministic) *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      let better =
        match !victim with
        | None -> true
        | Some (vk, age) ->
          e.last_use < age || (e.last_use = age && k < vk)
      in
      if better then victim := Some (k, e.last_use))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

(* ticks are unique in production ([touch] always increments), so equal
   ages only arise when a test manufactures them to pin down the
   tie-break above *)
let set_last_use_for_testing t ~key ~age =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e -> e.last_use <- age
      | None ->
        invalid_arg "Plan_cache.set_last_use_for_testing: unknown key")

let find_or_compile t ~key compile =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          t.hits <- t.hits + 1;
          touch t e;
          Some e.plan
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some plan -> (plan, `Hit)
  | None ->
    (* compile outside the lock: it is slow and may raise *)
    let plan = compile () in
    locked t (fun () ->
        t.compiles <- t.compiles + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some e -> touch t e (* a racing compile of the same key won *)
        | None ->
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          let e = { plan; last_use = 0 } in
          touch t e;
          Hashtbl.add t.tbl key e);
    (plan, `Miss)

type stats = {
  capacity : int;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
  compiles : int;
}

let stats t =
  locked t (fun () ->
      {
        capacity = t.capacity;
        size = Hashtbl.length t.tbl;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        compiles = t.compiles;
      })

let stats_json (s : stats) =
  Json.Obj
    [
      ("capacity", Json.Int s.capacity);
      ("size", Json.Int s.size);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
      ("compiles", Json.Int s.compiles);
    ]
