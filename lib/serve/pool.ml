module Json = Tiles_util.Json

type t = {
  shards : int;
  executed : int Atomic.t array;
  busy : bool Atomic.t array;
  domains : unit Domain.t array;
  mutable joined : bool;
  join_lock : Mutex.t;
}

let start ~shards ~pull ~exec =
  if shards < 1 then invalid_arg "Pool.start: shards must be >= 1";
  let executed = Array.init shards (fun _ -> Atomic.make 0) in
  let busy = Array.init shards (fun _ -> Atomic.make false) in
  let worker shard () =
    let rec loop () =
      match pull () with
      | None -> ()
      | Some job ->
        Atomic.set busy.(shard) true;
        (try exec ~shard job with _ -> ());
        Atomic.set busy.(shard) false;
        Atomic.incr executed.(shard);
        loop ()
    in
    loop ()
  in
  let domains = Array.init shards (fun i -> Domain.spawn (worker i)) in
  { shards; executed; busy; domains; joined = false; join_lock = Mutex.create () }

let join t =
  Mutex.lock t.join_lock;
  (* [Fun.protect]: [Domain.join] re-raises a worker's uncaught
     exception; escaping with the lock held would wedge later joiners *)
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.join_lock)
    (fun () ->
      if not t.joined then begin
        Array.iter Domain.join t.domains;
        t.joined <- true
      end)

type stats = { shards : int; executed : int list; busy : int }

let stats (t : t) =
  {
    shards = t.shards;
    executed = Array.to_list (Array.map Atomic.get t.executed);
    busy =
      Array.fold_left (fun n b -> if Atomic.get b then n + 1 else n) 0 t.busy;
  }

let stats_json (s : stats) =
  Json.Obj
    [
      ("shards", Json.Int s.shards);
      ("executed", Json.List (List.map (fun n -> Json.Int n) s.executed));
      ("busy", Json.Int s.busy);
    ]
