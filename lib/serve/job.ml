module Json = Tiles_util.Json
module Walker = Tiles_runtime.Walker

type op = Plan | Simulate | Execute | Tune

let op_to_string = function
  | Plan -> "plan"
  | Simulate -> "simulate"
  | Execute -> "execute"
  | Tune -> "tune"

let op_of_string = function
  | "plan" -> Some Plan
  | "simulate" -> Some Simulate
  | "execute" -> Some Execute
  | "tune" -> Some Tune
  | _ -> None

type t = {
  id : string;
  op : op;
  app : string;
  size1 : int;
  size2 : int;
  variant : string;
  tile : int * int * int;
  backend : string;
  overlap : bool;
  walker : Walker.variant;
  inner : int array option;
  priority : float;
  procs : int;
  factors : int list;
}

let of_json j =
  let ( let* ) = Result.bind in
  let str ?default key =
    match Option.bind (Json.member key j) Json.to_str_opt with
    | Some s -> Ok s
    | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing string field %S" key))
  in
  let int ~default key =
    match Json.member key j with
    | None -> Ok default
    | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" key))
  in
  let* id = str ~default:"" "id" in
  let* opname = str "op" in
  let* op =
    match op_of_string opname with
    | Some op -> Ok op
    | None ->
      Error
        (Printf.sprintf
           "unknown op %S (expected plan | simulate | execute | tune)" opname)
  in
  let* app = str "app" in
  let* size1 = int ~default:24 "size1" in
  let* size2 = int ~default:32 "size2" in
  let* variant = str ~default:"nonrect" "variant" in
  let* tile =
    match Json.member "tile" j with
    | None -> Ok (6, 8, 8)
    | Some (Json.List [ Json.Int x; Json.Int y; Json.Int z ]) -> Ok (x, y, z)
    | Some _ -> Error "field \"tile\" must be [x, y, z]"
  in
  let* backend = str ~default:"sim" "backend" in
  let* () =
    match backend with
    | "sim" -> Ok ()
    | "shm" ->
      if op = Execute then Ok ()
      else
        Error
          (Printf.sprintf "backend \"shm\" only applies to op \"execute\" \
                           (got %S)" opname)
    | other -> Error (Printf.sprintf "unknown backend %S (sim | shm)" other)
  in
  let* overlap =
    match Json.member "overlap" j with
    | None -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "field \"overlap\" must be a boolean"
  in
  let* walker =
    match Json.member "walker" j with
    | None -> Ok Walker.Fastpath
    | Some (Json.Str s) -> (
      match Walker.variant_of_string s with
      | Some w -> Ok w
      | None ->
        Error
          (Printf.sprintf
             "unknown walker %S (reference | strength | fast | native)" s))
    | Some _ -> Error "field \"walker\" must be a string"
  in
  let* inner =
    match Json.member "inner" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.List items) ->
      let rec ints acc = function
        | [] ->
          let b = Array.of_list (List.rev acc) in
          if Array.length b = 0 then
            Error "field \"inner\" must be a non-empty list of integers"
          else if Array.exists (fun x -> x < 1) b then
            Error "field \"inner\" extents must be >= 1"
          else Ok (Some b)
        | Json.Int i :: rest -> ints (i :: acc) rest
        | _ -> Error "field \"inner\" must be a list of integers"
      in
      ints [] items
    | Some _ -> Error "field \"inner\" must be a list of integers"
  in
  let* priority =
    match Json.member "priority" j with
    | None -> Ok 10.
    | Some v -> (
      match Json.to_float_opt v with
      | Some p when Float.is_finite p -> Ok p
      | _ -> Error "field \"priority\" must be a finite number")
  in
  let* procs = int ~default:4 "procs" in
  let* factors =
    match Json.member "factors" j with
    | None -> Ok [ 2; 3; 4 ]
    | Some (Json.List items) ->
      let rec ints acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int i :: rest -> ints (i :: acc) rest
        | _ -> Error "field \"factors\" must be a list of integers"
      in
      ints [] items
    | Some _ -> Error "field \"factors\" must be a list of integers"
  in
  Ok
    {
      id; op; app; size1; size2; variant; tile; backend; overlap; walker;
      inner; priority; procs; factors;
    }

let to_json t =
  let x, y, z = t.tile in
  Json.Obj
    [
      ("id", Json.Str t.id);
      ("op", Json.Str (op_to_string t.op));
      ("app", Json.Str t.app);
      ("size1", Json.Int t.size1);
      ("size2", Json.Int t.size2);
      ("variant", Json.Str t.variant);
      ("tile", Json.List [ Json.Int x; Json.Int y; Json.Int z ]);
      ("backend", Json.Str t.backend);
      ("overlap", Json.Bool t.overlap);
      ("walker", Json.Str (Walker.variant_to_string t.walker));
      ( "inner",
        match t.inner with
        | None -> Json.Null
        | Some b ->
          Json.List (List.map (fun x -> Json.Int x) (Array.to_list b)) );
      ("priority", Json.Float t.priority);
      ("procs", Json.Int t.procs);
      ("factors", Json.List (List.map (fun f -> Json.Int f) t.factors));
    ]
