(** The daemon's app registry: resolve a request's (app, sizes, variant,
    tile) naming into the concrete nest, kernel and tiling the compiler
    works on.

    The CLI performs the same resolution inline per invocation; the
    daemon does it once per request, {e before} admission, so malformed
    requests are rejected with a structured error instead of occupying a
    queue slot and failing later inside a worker. Resolution is cheap
    (building the nest and the tiling matrix); the expensive step —
    {!Tiles_core.Plan.make} — is deferred to the workers and memoized in
    the {!Plan_cache}. *)

type resolved = {
  app : string;
  variant : string;
  nest : Tiles_loop.Nest.t;
  kernel : Tiles_runtime.Kernel.t;
  m : int;  (** mapping dimension *)
  tiling : Tiles_core.Tiling.t;
}

val apps : string list
(** The algorithms the daemon accepts (["sor"; "jacobi"; "adi"]). *)

val resolve :
  app:string ->
  size1:int ->
  size2:int ->
  variant:string ->
  tile:int * int * int ->
  (resolved, string) result
(** [Error] names the unknown app / unknown variant / illegal tiling —
    every failure mode of instantiation, never an exception. *)
