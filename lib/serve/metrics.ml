module Json = Tiles_util.Json
module Metric = Tiles_obs.Metric

type cls = {
  queued : Metric.t;
  service : Metric.t;
  total : Metric.t;
  mutable count : int;
}

type wait = { w_job : string; w_rank : int; w_seconds : float }

(* how many of the longest observed waits the snapshot retains *)
let waits_keep = 16

type t = {
  lock : Mutex.t;
  classes : (string, cls) Hashtbl.t;
  mutable completed : int;
  mutable errors : int;
  mutable waits : wait list;  (** longest first, at most [waits_keep] *)
}

(* every critical section runs under [Fun.protect]: user-influenced code
   (e.g. [Metric.summarize] in [snapshot_json]) may raise, and an
   exception escaping with the lock held would deadlock the server *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create () =
  {
    lock = Mutex.create ();
    classes = Hashtbl.create 8;
    completed = 0;
    errors = 0;
    waits = [];
  }

let class_of t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> c
  | None ->
    let c =
      {
        queued = Metric.create ();
        service = Metric.create ();
        total = Metric.create ();
        count = 0;
      }
    in
    Hashtbl.add t.classes name c;
    c

let observe t ~cls ~queued_s ~service_s =
  locked t (fun () ->
      let c = class_of t cls in
      Metric.add c.queued queued_s;
      Metric.add c.service service_s;
      Metric.add c.total (queued_s +. service_s);
      c.count <- c.count + 1;
      t.completed <- t.completed + 1)

let observe_waits t ~job_id spans =
  if spans <> [] then
    locked t (fun () ->
        let fresh =
          List.map
            (fun (s : Tiles_obs.Span.t) ->
              {
                w_job = job_id;
                w_rank = s.Tiles_obs.Span.rank;
                w_seconds = Tiles_obs.Span.duration s;
              })
            spans
        in
        let merged =
          List.sort
            (fun a b -> compare b.w_seconds a.w_seconds)
            (fresh @ t.waits)
        in
        t.waits <- List.filteri (fun i _ -> i < waits_keep) merged)

let longest_waits t =
  locked t (fun () -> List.map (fun w -> (w.w_job, w.w_rank, w.w_seconds)) t.waits)

let error t = locked t (fun () -> t.errors <- t.errors + 1)

let completed t = locked t (fun () -> t.completed)

let errors t = locked t (fun () -> t.errors)

let snapshot_json t =
  locked t (fun () ->
      let classes =
        Hashtbl.fold
          (fun name c acc ->
            ( name,
              Json.Obj
                [
                  ("count", Json.Int c.count);
                  ( "queued_s",
                    Metric.summary_to_json (Metric.summarize c.queued) );
                  ( "service_s",
                    Metric.summary_to_json (Metric.summarize c.service) );
                  ( "total_s",
                    Metric.summary_to_json (Metric.summarize c.total) );
                ] )
            :: acc)
          t.classes []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let waits =
        List.map
          (fun w ->
            Json.Obj
              [
                ("job_id", Json.Str w.w_job);
                ("rank", Json.Int w.w_rank);
                ("seconds", Json.Float w.w_seconds);
              ])
          t.waits
      in
      Json.Obj
        [
          ("completed", Json.Int t.completed);
          ("errors", Json.Int t.errors);
          ("classes", Json.Obj classes);
          ("longest_waits", Json.List waits);
        ])
