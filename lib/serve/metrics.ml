module Json = Tiles_util.Json
module Metric = Tiles_obs.Metric

type cls = {
  queued : Metric.t;
  service : Metric.t;
  total : Metric.t;
  mutable count : int;
}

type t = {
  lock : Mutex.t;
  classes : (string, cls) Hashtbl.t;
  mutable completed : int;
  mutable errors : int;
}

let create () =
  {
    lock = Mutex.create ();
    classes = Hashtbl.create 8;
    completed = 0;
    errors = 0;
  }

let class_of t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> c
  | None ->
    let c =
      {
        queued = Metric.create ();
        service = Metric.create ();
        total = Metric.create ();
        count = 0;
      }
    in
    Hashtbl.add t.classes name c;
    c

let observe t ~cls ~queued_s ~service_s =
  Mutex.lock t.lock;
  let c = class_of t cls in
  Metric.add c.queued queued_s;
  Metric.add c.service service_s;
  Metric.add c.total (queued_s +. service_s);
  c.count <- c.count + 1;
  t.completed <- t.completed + 1;
  Mutex.unlock t.lock

let error t =
  Mutex.lock t.lock;
  t.errors <- t.errors + 1;
  Mutex.unlock t.lock

let completed t =
  Mutex.lock t.lock;
  let n = t.completed in
  Mutex.unlock t.lock;
  n

let errors t =
  Mutex.lock t.lock;
  let n = t.errors in
  Mutex.unlock t.lock;
  n

let snapshot_json t =
  Mutex.lock t.lock;
  let classes =
    Hashtbl.fold
      (fun name c acc ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int c.count);
              ("queued_s", Metric.summary_to_json (Metric.summarize c.queued));
              ( "service_s",
                Metric.summary_to_json (Metric.summarize c.service) );
              ("total_s", Metric.summary_to_json (Metric.summarize c.total));
            ] )
        :: acc)
      t.classes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let j =
    Json.Obj
      [
        ("completed", Json.Int t.completed);
        ("errors", Json.Int t.errors);
        ("classes", Json.Obj classes);
      ]
  in
  Mutex.unlock t.lock;
  j
