(** The daemon's bounded priority job queue with admission control.

    Generalizes the bounded [Send_stage] discipline of the shm executor:
    a producer facing a full queue is never blocked silently — here it
    is not blocked at all. {!submit} either enqueues or returns a
    structured {!reject} naming the reason and the capacity, so the
    protocol layer can answer the client immediately (backpressure as a
    reply, not a hang).

    Ordering: a min-heap on the request's priority — {e lower} value is
    served sooner — with FIFO tie-breaking inherited from
    {!Tiles_util.Heap}, so equal-priority jobs complete in arrival
    order.

    Thread-safety: one mutex around the heap; {!pop} blocks workers on a
    condition until a job arrives or the queue is closed and drained.
    Safe across OCaml 5 domains. *)

type reject = {
  reason : string;  (** ["queue_full"] or ["shutting_down"] *)
  capacity : int;
  depth : int;  (** queued jobs at the instant of rejection *)
}

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] unless [capacity >= 1]. *)

val submit : 'a t -> priority:float -> 'a -> (unit, reject) result
(** Never blocks. [Error] when the queue holds [capacity] jobs
    (["queue_full"]) or {!close} was called (["shutting_down"]); both
    are counted. *)

val pop : 'a t -> 'a option
(** Block until a job is available and remove the minimum-priority one;
    [None] once the queue is closed {e and} drained (the worker's exit
    signal). Remaining jobs are still handed out after {!close}. *)

val try_pop : 'a t -> 'a option
(** Non-blocking {!pop} — [None] when the queue is momentarily empty.
    Deterministic single-threaded draining for tests and step mode. *)

val close : 'a t -> unit
(** Reject further submissions and wake every blocked {!pop}er. *)

type stats = {
  capacity : int;
  depth : int;
  high_water : int;  (** largest depth ever observed *)
  accepted : int;
  rejected_full : int;
  rejected_closed : int;
  closed : bool;
}

val stats : 'a t -> stats

val stats_json : stats -> Tiles_util.Json.t
