(** The daemon's shared worker pool: a fixed shard of OCaml 5 domains
    executing admitted jobs.

    Concurrency discipline: the pool is the {e only} source of job
    parallelism, so total domain count stays bounded regardless of how
    many requests are in flight — concurrent simulate/tune jobs cannot
    oversubscribe the host's cores the way per-request spawning would.
    Each shard pulls from the shared admission queue (work-conserving:
    an idle shard takes the next job regardless of which shard served
    that configuration before) and counts the jobs it executed, so the
    metrics snapshot shows the load spread across shards. *)

type t

val start :
  shards:int -> pull:(unit -> 'a option) -> exec:(shard:int -> 'a -> unit) -> t
(** Spawn [shards] domains; each loops [pull () -> exec] until [pull]
    returns [None]. [exec] exceptions are swallowed (the server's
    executor converts job failures into error responses before they
    reach the pool). Raises [Invalid_argument] unless [shards >= 1]. *)

val join : t -> unit
(** Wait for every shard to exit (i.e. for [pull] to return [None] in
    each — close the queue first). Idempotent. *)

type stats = {
  shards : int;
  executed : int list;  (** jobs completed, per shard *)
  busy : int;  (** shards currently inside [exec] *)
}

val stats : t -> stats

val stats_json : stats -> Tiles_util.Json.t
