(** The tilec compile service: admission, coalescing, caching,
    execution, metrics — behind a line-delimited JSON protocol.

    One {!t} is a persistent multi-tenant daemon. Requests ({!Job})
    flow through:

    + {b resolution} — the {!Registry} validates the configuration up
      front; malformed requests get an [error] response without
      touching the queue;
    + {b coalescing} — a request identical (same content-addressed key,
      same operation and parameters) to one already queued or executing
      becomes a {e follower} of that in-flight job: no queue slot, no
      second compile; when the leader completes, the result fans out to
      every follower (bit-identical payload, per-follower id and
      latency);
    + {b admission} — the bounded priority {!Admission} queue either
      accepts or answers [rejected] with a structured reason
      (backpressure as a reply, never a hang);
    + {b execution} — the sharded {!Pool} of worker domains runs jobs
      against the {!Plan_cache} (one plan compile amortized over every
      request naming the same configuration) and the deterministic
      simulator / real shm backend;
    + {b observation} — every response carries [queued_s] / [service_s]
      and embedded {!Tiles_obs.Runmeta} (with [job_id] and [queued_s])
      where a run happened; {!metrics_json} aggregates queue depth,
      admission rejects, cache hit/miss/evictions, coalesce counts,
      per-shard load and per-class p50/p99 latency.

    Responses are JSON objects: [{"id", "status": "ok" | "error" |
    "rejected", …}]. The protocol front-ends ({!serve_channels} for
    stdin/stdout, {!serve_socket} for a Unix socket) frame one request
    and one response per line ({!Tiles_util.Json.to_line}). *)

type config = {
  capacity : int;  (** admission queue slots *)
  workers : int;  (** pool shards; [0] = no pool, drive with {!step} *)
  plan_cache_capacity : int;  (** compiled plans retained (LRU) *)
  tune_cache_dir : string option;  (** shared on-disk tune score memo *)
  net : Tiles_mpisim.Netmodel.t;
}

val default_config : config
(** Capacity 64, half the recommended domains as workers (min 1, max
    4), 128 cached plans, no tune cache, the paper's fast-Ethernet
    model. *)

type t

val create : ?config:config -> unit -> t
(** Starts the worker pool unless [config.workers = 0]. *)

val submit : t -> respond:(Tiles_util.Json.t -> unit) -> Job.t -> unit
(** Programmatic entry (the load generator and tests). Exactly one
    response is eventually delivered to [respond]: [rejected]
    immediately on admission failure, [error] on resolution or
    execution failure, [ok] with the result otherwise. [respond] is
    called from a worker domain; it must be thread-safe. An empty
    [job.id] is replaced with a fresh ["job-N"]. *)

val handle_line :
  t -> respond:(Tiles_util.Json.t -> unit) -> string -> [ `Handled | `Shutdown ]
(** One protocol line: a parse failure or control op is answered
    synchronously ([metrics] snapshots, [shutdown] acknowledges and
    returns [`Shutdown] — the caller is expected to drain and stop);
    anything else is {!submit}ted. *)

val step : t -> bool
(** Pop one admitted job and execute it on the calling domain; [false]
    when the queue is empty. With [workers = 0] this is the only
    executor — deterministic, single-threaded serving for tests. *)

val drain : t -> unit
(** Block until every admitted job has completed (responses
    delivered). *)

val shutdown : t -> unit
(** Close admission (new submissions answered ["shutting_down"]),
    finish the already-admitted backlog — on the pool, or inline when
    [workers = 0] — and join the workers. Idempotent. *)

val metrics_json : t -> Tiles_util.Json.t
(** The aggregate snapshot: [queue] ({!Admission.stats}), [plan_cache]
    ({!Plan_cache.stats}), [pool], [coalesce] ([batched] total and
    current [in_flight] leaders), [jobs] and per-class [latency]
    ({!Metrics.snapshot_json}). *)

val serve_channels :
  ?config:config -> ?metrics_out:string -> in_channel -> out_channel -> unit
(** Serve line-delimited JSON until EOF or a [shutdown] request, then
    drain, stop, and emit a final [{"status":"ok","op":"shutdown",
    "metrics":…}] line. [metrics_out] additionally writes the final
    snapshot, indented, to a file. *)

val serve_socket :
  ?config:config -> ?metrics_out:string -> path:string -> unit -> unit
(** Like {!serve_channels} over a Unix domain socket at [path]
    (unlinked first if stale): every connection gets its own reader
    domain and response ordering, all sharing one server — the
    multi-tenant deployment. A [shutdown] from any connection stops
    accepting, drains and returns.

    Both front-ends set [SIGPIPE] to ignore on entry: a tenant that
    disconnects mid-response turns the dead write into a per-connection
    [EPIPE]/[Sys_error] (swallowed, ending only that session) instead
    of the signal's default disposition killing the whole daemon. *)
