module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Kernel = Tiles_runtime.Kernel
module Tiling = Tiles_core.Tiling
module Rat = Tiles_rat.Rat

type t = { size : int }

let make ~size =
  if size < 2 then invalid_arg "Triband.make";
  { size }

let reads = [ [| 1; 0 |]; [| 1; 1 |]; [| 0; 1 |] ]

let source i j =
  0.01 *. float_of_int (((i * 13) + (j * 7)) mod 17)

let boundary j _ =
  0.1 +. (0.05 *. float_of_int ((j.(0) - j.(1)) mod 5))

let compute ~read ~j ~out =
  out.(0) <-
    (0.45 *. read 0 0) +. (0.25 *. read 1 0) +. (0.30 *. read 2 0)
    +. source j.(0) j.(1)

let ckernel =
  Tiles_codegen.Ckernel.make ~name:"triband" ~nreads:3
    ~body:
      [
        "{ double src = 0.01 * (double)(((J(0) * 13) + (J(1) * 7)) % 17);";
        "  WR(0) = 0.45 * RD(0,0) + 0.25 * RD(1,0) + 0.30 * RD(2,0) + src; }";
      ]
    ~boundary:
      [ "return 0.1 + 0.05 * (double)((j[0] - j[1]) % 5);" ]
    ()

let kernel _p =
  Kernel.make ~name:"triband" ~dim:2 ~ckernel ~reads ~boundary ~compute ()

let nest p =
  let n = p.size in
  let space =
    Polyhedron.make ~dim:2
      [
        Constr.lower_bound_var 2 0 0;
        Constr.upper_bound_var 2 0 (n - 1);
        Constr.lower_bound_var 2 1 0;
        (* j <= i *)
        Constr.ge [| 1; -1 |] 0;
      ]
  in
  Nest.make ~name:"triband" ~space ~deps:(Dependence.of_vectors reads)

let rect ~x ~y = Tiling.rectangular [ x; y ]

let oblique ~x ~y =
  Tiling.of_rows
    [ [ Rat.make 1 x; Rat.zero ]; [ Rat.make 1 y; Rat.make 1 y ] ]

let variants = [ ("rect", rect); ("oblique", oblique) ]

let creads = reads
