module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Skew = Tiles_loop.Skew
module Dependence = Tiles_loop.Dependence
module Kernel = Tiles_runtime.Kernel
module Tiling = Tiles_core.Tiling
module Rat = Tiles_rat.Rat

type t = { m_steps : int; size : int }

let make ~m_steps ~size =
  if m_steps < 1 || size < 1 then invalid_arg "Sor.make";
  { m_steps; size }

(* read offsets in the order the body uses them:
   A[t,i-1,j], A[t,i,j-1], A[t-1,i+1,j], A[t-1,i,j+1], A[t-1,i,j] *)
let reads =
  [ [| 0; 1; 0 |]; [| 0; 0; 1 |]; [| 1; -1; 0 |]; [| 1; 0; -1 |]; [| 1; 0; 0 |] ]

let omega = 1.2

let boundary j _field =
  (* smooth deterministic boundary/initial data (pure function of the
     original coordinates) *)
  let i = float_of_int j.(1) and jj = float_of_int j.(2) in
  1.0 +. (0.25 *. sin ((0.7 *. i) +. (1.3 *. jj)))

let compute ~read ~j:_ ~out =
  out.(0) <-
    (omega /. 4.
     *. (read 0 0 +. read 1 0 +. read 2 0 +. read 3 0))
    +. ((1. -. omega) *. read 4 0)

(* unrolled interior-row body for the fast walker; float-operation order
   matches [compute] exactly so results are bit-identical. The [la]
   annotation is load-bearing: left polymorphic in kind/layout, every
   access compiles to a generic C call instead of an inline load. *)
let row ~(la : Tiles_util.Fbuf.t) ~dst ~taps ~len =
  let t0 = taps.(0) and t1 = taps.(1) and t2 = taps.(2) in
  let t3 = taps.(3) and t4 = taps.(4) in
  for i = dst to dst + len - 1 do
    Bigarray.Array1.unsafe_set la i
      ((omega /. 4.
        *. (Bigarray.Array1.unsafe_get la (i + t0)
            +. Bigarray.Array1.unsafe_get la (i + t1)
            +. Bigarray.Array1.unsafe_get la (i + t2)
            +. Bigarray.Array1.unsafe_get la (i + t3)))
      +. ((1. -. omega) *. Bigarray.Array1.unsafe_get la (i + t4)))
  done

(* the same loop body and boundary data as C source, for the code
   generators; numeric constants match the OCaml kernel exactly *)
let ckernel =
  Tiles_codegen.Ckernel.make ~name:"sor" ~nreads:5
    ~body:
      [
        "WR(0) = 1.2 / 4.0 * (RD(0,0) + RD(1,0) + RD(2,0) + RD(3,0))";
        "      + (1.0 - 1.2) * RD(4,0);";
      ]
    ~boundary:
      [
        "{ double i = (double)j[1], jj = (double)j[2];";
        "  return 1.0 + 0.25 * sin(0.7 * i + 1.3 * jj); }";
      ]
    ()

let original_kernel =
  Kernel.make ~name:"sor" ~dim:3 ~uses_j:false ~row ~ckernel ~reads ~boundary
    ~compute ()

(* 0-based iteration space (the paper writes 1..M; a constant shift of the
   space is immaterial and makes tile blocks align with the origin, so a
   factor equal to the extent gives exactly one tile along that axis) *)
let original_nest p =
  Nest.make ~name:"sor"
    ~space:
      (Polyhedron.box [ (0, p.m_steps - 1); (0, p.size - 1); (0, p.size - 1) ])
    ~deps:(Dependence.of_vectors reads)

let skew_matrix = Skew.of_factors 3 [ (1, 0, 1); (2, 0, 2) ]
let nest p = Skew.apply (original_nest p) skew_matrix
let kernel _p = Kernel.skewed original_kernel skew_matrix
let mapping_dim = 2

let r = Rat.make
let i0 = Rat.zero

let rect ~x ~y ~z = Tiling.rectangular [ x; y; z ]

let nonrect ~x ~y ~z =
  Tiling.of_rows
    [ [ r 1 x; i0; i0 ]; [ i0; r 1 y; i0 ]; [ r (-1) z; i0; r 1 z ] ]

let variants = [ ("rect", rect); ("nonrect", nonrect) ]

let skewed_reads = List.map (Tiles_linalg.Intmat.apply skew_matrix) reads

(* the same iteration space with symbolic extents M and N, skewed like
   [nest]; one generated binary then serves every problem size *)
let pspace () =
  let b = ([], 0) in
  Tiles_poly.Pspace.transform_unimodular skew_matrix
    (Tiles_poly.Pspace.box ~params:[ "M"; "N" ]
       [
         (b, ([ ("M", 1) ], -1));
         (b, ([ ("N", 1) ], -1));
         (b, ([ ("N", 1) ], -1));
       ])
