module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Skew = Tiles_loop.Skew
module Dependence = Tiles_loop.Dependence
module Kernel = Tiles_runtime.Kernel
module Tiling = Tiles_core.Tiling
module Rat = Tiles_rat.Rat

type t = { t_steps : int; size : int }

let make ~t_steps ~size =
  if t_steps < 1 || size < 1 then invalid_arg "Jacobi.make";
  { t_steps; size }

let reads =
  [
    [| 1; 0; 0 |]; [| 1; 1; 0 |]; [| 1; -1; 0 |]; [| 1; 0; 1 |]; [| 1; 0; -1 |];
  ]

let boundary j _field =
  let i = float_of_int j.(1) and jj = float_of_int j.(2) in
  2.0 +. (0.5 *. cos ((0.4 *. i) -. (0.9 *. jj)))

let compute ~read ~j:_ ~out =
  out.(0) <- (read 0 0 +. read 1 0 +. read 2 0 +. read 3 0 +. read 4 0) /. 5.

(* unrolled interior-row body; float-operation order matches [compute]
   exactly so results are bit-identical. The [la] annotation is
   load-bearing: left polymorphic in kind/layout, every access compiles
   to a generic C call instead of an inline load. *)
let row ~(la : Tiles_util.Fbuf.t) ~dst ~taps ~len =
  let t0 = taps.(0) and t1 = taps.(1) and t2 = taps.(2) in
  let t3 = taps.(3) and t4 = taps.(4) in
  for i = dst to dst + len - 1 do
    Bigarray.Array1.unsafe_set la i
      ((Bigarray.Array1.unsafe_get la (i + t0)
        +. Bigarray.Array1.unsafe_get la (i + t1)
        +. Bigarray.Array1.unsafe_get la (i + t2)
        +. Bigarray.Array1.unsafe_get la (i + t3)
        +. Bigarray.Array1.unsafe_get la (i + t4))
      /. 5.)
  done

let ckernel =
  Tiles_codegen.Ckernel.make ~name:"jacobi" ~nreads:5
    ~body:
      [ "WR(0) = (RD(0,0) + RD(1,0) + RD(2,0) + RD(3,0) + RD(4,0)) / 5.0;" ]
    ~boundary:
      [
        "{ double i = (double)j[1], jj = (double)j[2];";
        "  return 2.0 + 0.5 * cos(0.4 * i - 0.9 * jj); }";
      ]
    ()

let original_kernel =
  Kernel.make ~name:"jacobi" ~dim:3 ~uses_j:false ~row ~ckernel ~reads
    ~boundary ~compute ()

(* 0-based iteration space; see the note in sor.ml *)
let original_nest p =
  Nest.make ~name:"jacobi"
    ~space:
      (Polyhedron.box [ (0, p.t_steps - 1); (0, p.size - 1); (0, p.size - 1) ])
    ~deps:(Dependence.of_vectors reads)

let skew_matrix = Skew.of_factors 3 [ (1, 0, 1); (2, 0, 1) ]
let nest p = Skew.apply (original_nest p) skew_matrix
let kernel _p = Kernel.skewed original_kernel skew_matrix
let mapping_dim = 0

let r = Rat.make
let i0 = Rat.zero

let rect ~x ~y ~z = Tiling.rectangular [ x; y; z ]

let nonrect ~x ~y ~z =
  Tiling.of_rows
    [
      [ r 1 x; r (-1) (2 * x); i0 ];
      [ i0; r 1 y; i0 ];
      [ i0; i0; r 1 z ];
    ]

let variants = [ ("rect", rect); ("nonrect", nonrect) ]

let skewed_reads = List.map (Tiles_linalg.Intmat.apply skew_matrix) reads

let pspace () =
  let b = ([], 0) in
  Tiles_poly.Pspace.transform_unimodular skew_matrix
    (Tiles_poly.Pspace.box ~params:[ "T"; "N" ]
       [
         (b, ([ ("T", 1) ], -1));
         (b, ([ ("N", 1) ], -1));
         (b, ([ ("N", 1) ], -1));
       ])
