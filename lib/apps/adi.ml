module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Kernel = Tiles_runtime.Kernel
module Tiling = Tiles_core.Tiling
module Rat = Tiles_rat.Rat

type t = { t_steps : int; size : int }

let make ~t_steps ~size =
  if t_steps < 1 || size < 1 then invalid_arg "Adi.make";
  { t_steps; size }

(* X[t-1,i,j] / B[t-1,i,j]; X/B[t-1,i,j-1]; X/B[t-1,i-1,j] *)
let reads = [ [| 1; 0; 0 |]; [| 1; 0; 1 |]; [| 1; 1; 0 |] ]

(* static coefficient; kept small so B stays well away from zero *)
let coeff i j =
  0.1 +. (0.05 *. sin ((0.3 *. float_of_int i) +. (0.7 *. float_of_int j)))

let boundary j field =
  let i = float_of_int j.(1) and jj = float_of_int j.(2) in
  match field with
  | 0 -> 1.0 +. (0.1 *. sin (0.5 *. i) *. cos (0.3 *. jj)) (* X *)
  | _ -> 4.0 +. (0.2 *. cos (0.2 *. (i +. jj))) (* B *)

let compute ~read ~j ~out =
  let a = coeff j.(1) j.(2) in
  let x_c = read 0 0 and b_c = read 0 1 in
  let x_w = read 1 0 and b_w = read 1 1 in
  let x_n = read 2 0 and b_n = read 2 1 in
  out.(0) <- x_c +. (x_w *. a /. b_w) -. (x_n *. a /. b_n);
  out.(1) <- b_c -. (a *. a /. b_w) -. (a *. a /. b_n)

let ckernel =
  Tiles_codegen.Ckernel.make ~name:"adi" ~width:2 ~nreads:3
    ~body:
      [
        "{ double a = 0.1 + 0.05 * sin(0.3 * (double)J(1) + 0.7 * (double)J(2));";
        "  WR(0) = RD(0,0) + RD(1,0) * a / RD(1,1) - RD(2,0) * a / RD(2,1);";
        "  WR(1) = RD(0,1) - a * a / RD(1,1) - a * a / RD(2,1); }";
      ]
    ~boundary:
      [
        "{ double i = (double)j[1], jj = (double)j[2];";
        "  if (f == 0) return 1.0 + 0.1 * sin(0.5 * i) * cos(0.3 * jj);";
        "  return 4.0 + 0.2 * cos(0.2 * (i + jj)); }";
      ]
    ()

let kernel _p =
  Kernel.make ~name:"adi" ~dim:3 ~width:2 ~ckernel ~reads ~boundary ~compute ()

(* 0-based iteration space; see the note in sor.ml *)
let nest p =
  Nest.make ~name:"adi"
    ~space:
      (Polyhedron.box [ (0, p.t_steps - 1); (0, p.size - 1); (0, p.size - 1) ])
    ~deps:(Dependence.of_vectors reads)

let mapping_dim = 0

let r = Rat.make
let i0 = Rat.zero

let rect ~x ~y ~z = Tiling.rectangular [ x; y; z ]

let nr1 ~x ~y ~z =
  Tiling.of_rows
    [ [ r 1 x; r (-1) x; i0 ]; [ i0; r 1 y; i0 ]; [ i0; i0; r 1 z ] ]

let nr2 ~x ~y ~z =
  Tiling.of_rows
    [ [ r 1 x; i0; r (-1) x ]; [ i0; r 1 y; i0 ]; [ i0; i0; r 1 z ] ]

let nr3 ~x ~y ~z =
  Tiling.of_rows
    [ [ r 1 x; r (-1) x; r (-1) x ]; [ i0; r 1 y; i0 ]; [ i0; i0; r 1 z ] ]

let variants = [ ("rect", rect); ("nr1", nr1); ("nr2", nr2); ("nr3", nr3) ]

let creads = reads

(* symbolic-extent iteration space for the parametric generator *)
let pspace () =
  let b = ([], 0) in
  Tiles_poly.Pspace.box ~params:[ "T"; "N" ]
    [
      (b, ([ ("T", 1) ], -1));
      (b, ([ ("N", 1) ], -1));
      (b, ([ ("N", 1) ], -1));
    ]
