(** Content-addressed on-disk memo of exact simulator scores.

    A score is keyed by everything that determines the (deterministic)
    discrete-event result: the nest (space constraints + dependencies),
    the tiling matrix [H], the mapping dimension, the kernel's identity
    (name, width, read offsets), the network model's exact parameters
    {e including its contention variant} (lane counts and uplink cap
    land in the digest, so [--net contended:...] scores never alias the
    alpha-beta ones), the overlap flag and the backend name. Shared-memory scores are
    wall-clock and therefore noisy, but caching them is still what the
    user asked for: a tune resumed in the same directory re-ranks the
    same measurements instead of paying for fresh ones. Keys are MD5 digests of a canonical rendering;
    values are [Marshal]ed {!score} records written atomically
    (temp-file + rename), so concurrent tunes sharing a directory are
    safe and a cache hit returns bit-identical floats. A corrupt or
    truncated entry reads as a miss. *)

type score = {
  completion : float;  (** simulated parallel time, seconds *)
  speedup : float;
  messages : int;
  bytes : int;
  points_computed : int;
  tiles_executed : int;
}

type t

val open_dir : string -> t
(** Create the directory if needed (tolerating a concurrent creator's
    EEXIST). Raises [Sys_error] if the path exists and is not a
    directory. *)

val dir : t -> string

val key :
  inner:int array option ->
  nest:Tiles_loop.Nest.t ->
  tiling:Tiles_core.Tiling.t ->
  m:int ->
  kernel:Tiles_runtime.Kernel.t ->
  net:Tiles_mpisim.Netmodel.t ->
  overlap:bool ->
  backend:string ->
  string
(** [inner] is the walker's cache-resident subtile shape; [None] keys
    the unblocked walk. Blocked and unblocked configurations score
    identically on the simulator (it charges uniform per-point flop
    time) but differently on the wall-clock shm backend, so the shape is
    part of the digest either way. *)

val find : t -> string -> score option
(** [None] on a missing, truncated, corrupt or stale-schema entry — a
    crashed or concurrent writer can never turn a lookup into an
    exception. *)

val store : t -> string -> score -> unit
(** Write-to-temp + atomic rename; the temp name is unique per writer
    ({e pid} + per-process counter), so concurrent stores from many
    domains or processes sharing the directory are safe — last writer
    wins with a complete entry. *)
