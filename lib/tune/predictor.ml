module Netmodel = Tiles_mpisim.Netmodel
module Polyhedron = Tiles_poly.Polyhedron
module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Comm = Tiles_core.Comm
module Mapping = Tiles_core.Mapping
module Schedule = Tiles_core.Schedule
module Model = Tiles_runtime.Model

type estimate = {
  steps : int;
  chain : int;
  fill : int;
  tile_compute : float;
  comm_cpu : float;
  comm_wire : float;
  total : float;
  predicted_speedup : float;
  inner_locality : float;
  refined : bool;
}

(* ---------------- inner-locality term ---------------- *)

(* The discrete-event simulator charges a uniform per-point flop time, so
   cache blocking never moves [total] — the locality term exists to RANK
   inner subtile shapes (and to be compared, as a residual, against the
   measured blocked/unblocked wall-clock ratio). The model is a crude
   stream argument: a tile whose working set spills L2 pays a DRAM factor
   on its sweeps; a cache-resident subtile recovers it, minus the
   surface-to-volume fraction of subtile boundary cells that get touched
   from memory again by the neighbouring subtile. *)

let l2_bytes = 1 lsl 20
let dram_gain = 1.6

let locality ?inner ~width (plan : Plan.t) =
  let v = plan.Plan.tiling.Tiling.v in
  let cell = 8. *. float_of_int (max 1 width) in
  let ws_tile = float_of_int (Tiling.tile_size plan.Plan.tiling) *. cell in
  if ws_tile <= float_of_int l2_bytes then 1.0
  else
    match inner with
    | None -> 1.0
    | Some b ->
      let b = Array.mapi (fun k bk -> max 1 (min bk v.(k))) b in
      let ws_sub =
        Array.fold_left (fun a x -> a *. float_of_int x) cell b
      in
      if ws_sub > float_of_int l2_bytes then 1.0
      else
        let surface =
          Array.fold_left (fun a x -> a +. (1. /. float_of_int x)) 0. b
        in
        Float.max 1.0 (dram_gain *. (1. -. surface))

(* schedule skeleton shared by both passes *)
let skeleton (plan : Plan.t) =
  let chain =
    Array.fold_left
      (fun acc (lo, hi) -> max acc (hi - lo + 1))
      0 plan.Plan.mapping.Mapping.chains
  in
  let steps = max (Schedule.effective_steps plan) chain in
  (steps, chain, steps - chain)

let points_of plan =
  float_of_int (Polyhedron.count_points plan.Plan.nest.Tiles_loop.Nest.space)

let ntiles_of plan =
  float_of_int
    (max 1 (Polyhedron.count_points plan.Plan.tspace.Tile_space.poly))

let predict ?(width = 1) ?inner (plan : Plan.t) ~net =
  let tile_points = float_of_int (Tiling.tile_size plan.Plan.tiling) in
  let tile_compute = tile_points *. net.Netmodel.flop_time in
  let w = float_of_int width in
  let cells = float_of_int (Model.slab_cells plan) *. w in
  let bytes = cells *. 8. in
  let nmsg = float_of_int (List.length plan.Plan.comm.Comm.dm) in
  (* the CPU stays busy for pack/unpack and the send/recv overheads on
     every step; wire latency and transfer time overlap with downstream
     compute in the self-timed steady state and only sit on the critical
     path while the pipeline fills and drains *)
  let comm_cpu =
    (2. *. cells *. net.Netmodel.pack_time)
    +. (nmsg *. (net.Netmodel.send_overhead +. net.Netmodel.recv_overhead))
  in
  let comm_wire =
    (nmsg *. net.Netmodel.latency) +. (bytes /. net.Netmodel.bandwidth)
  in
  let steps, chain, fill = skeleton plan in
  let total =
    (float_of_int steps *. (tile_compute +. comm_cpu))
    +. (float_of_int fill *. comm_wire)
  in
  let seq = points_of plan *. net.Netmodel.flop_time in
  {
    steps;
    chain;
    fill;
    tile_compute;
    comm_cpu;
    comm_wire;
    total;
    predicted_speedup = seq /. total;
    inner_locality = locality ?inner ~width plan;
    refined = false;
  }

let fields e =
  [ ("completion_s", e.total); ("speedup", e.predicted_speedup) ]

let source e = if e.refined then "predictor.refine" else "predictor.predict"

let refine ?(width = 1) ?inner (plan : Plan.t) ~net =
  let tile_points = float_of_int (Tiling.tile_size plan.Plan.tiling) in
  let w = float_of_int width in
  let steps, chain, fill = skeleton plan in
  let points = points_of plan in
  let ntiles = ntiles_of plan in
  (* exact protocol volume: one message per (tile, direction) with a
     valid successor, each carrying its boundary-clipped slab *)
  let messages, cells = Plan.comm_stats plan in
  let messages = float_of_int messages and cells = float_of_int cells *. w in
  let msgs_per_tile = messages /. ntiles in
  let cells_per_tile = cells /. ntiles in
  let bytes_per_msg = cells /. Float.max 1. messages *. 8. in
  let tile_compute = tile_points *. net.Netmodel.flop_time in
  (* CPU-side protocol work per steady-state step, at the protocol's own
     per-tile message count and clipped volume *)
  let comm_cpu =
    (2. *. cells_per_tile *. net.Netmodel.pack_time)
    +. (msgs_per_tile
       *. (net.Netmodel.send_overhead +. net.Netmodel.recv_overhead))
  in
  let comm_wire =
    net.Netmodel.latency +. (bytes_per_msg /. net.Netmodel.bandwidth)
  in
  (* an effectively one-dimensional processor grid is a pure software
     pipeline: once full, every rank's receives landed a whole hop ago
     and its send shadows the successor's compute, so the steady state
     hides communication completely (the simulator shows ~zero slack
     over [steps × tile_compute] for 1×16 grids).  With two or more
     active grid directions a rank serialises against two neighbours and
     the protocol work is paid on the critical path. *)
  let active_dims =
    let mapping = plan.Plan.mapping in
    let nprocs = Mapping.nprocs mapping in
    if nprocs = 0 then 0
    else begin
      let p0 = Mapping.pid_of_rank mapping 0 in
      let gdim = Array.length p0 in
      let lo = Array.copy p0 and hi = Array.copy p0 in
      for rank = 1 to nprocs - 1 do
        let pid = Mapping.pid_of_rank mapping rank in
        for k = 0 to gdim - 1 do
          if pid.(k) < lo.(k) then lo.(k) <- pid.(k);
          if pid.(k) > hi.(k) then hi.(k) <- pid.(k)
        done
      done;
      let active = ref 0 in
      for k = 0 to gdim - 1 do
        if hi.(k) > lo.(k) then incr active
      done;
      !active
    end
  in
  let paid = if active_dims >= 2 then 1.0 else 0.0 in
  let total =
    (float_of_int steps *. (tile_compute +. (paid *. comm_cpu)))
    +. (float_of_int fill *. paid *. comm_wire)
  in
  let seq = points *. net.Netmodel.flop_time in
  {
    steps;
    chain;
    fill;
    tile_compute;
    comm_cpu;
    comm_wire;
    total;
    predicted_speedup = seq /. total;
    inner_locality = locality ?inner ~width plan;
    refined = true;
  }
