module Constr = Tiles_poly.Constr
module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Tiling = Tiles_core.Tiling
module Ratmat = Tiles_linalg.Ratmat
module Kernel = Tiles_runtime.Kernel
module Netmodel = Tiles_mpisim.Netmodel

type score = {
  completion : float;
  speedup : float;
  messages : int;
  bytes : int;
  points_computed : int;
  tiles_executed : int;
}

type t = { dir : string }

(* bump when the score record or the key rendering changes *)
let version = 2

let open_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": not a directory"))
  end
  else Unix.mkdir dir 0o755;
  { dir }

let dir t = t.dir

let key ~nest ~tiling ~m ~kernel ~net ~overlap ~backend =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let addf x = add "%Lx;" (Int64.bits_of_float x) in
  add "v%d|" version;
  add "space:%d:" (Polyhedron.dim nest.Nest.space);
  List.iter
    (fun c ->
      for k = 0 to Constr.dim c - 1 do
        add "%d," (Constr.coeff c k)
      done;
      add "+%d;" (Constr.const c))
    (Polyhedron.constraints nest.Nest.space);
  add "|deps:";
  List.iter
    (fun d -> Array.iter (fun x -> add "%d," x) d; add ";")
    (Dependence.vectors nest.Nest.deps);
  add "|h:%s" (Ratmat.to_string tiling.Tiling.h);
  add "|m:%d" m;
  add "|kernel:%s:%d:" kernel.Kernel.name kernel.Kernel.width;
  List.iter
    (fun d -> Array.iter (fun x -> add "%d," x) d; add ";")
    kernel.Kernel.reads;
  add "|net:";
  addf net.Netmodel.latency;
  addf net.Netmodel.bandwidth;
  addf net.Netmodel.send_overhead;
  addf net.Netmodel.recv_overhead;
  addf net.Netmodel.flop_time;
  addf net.Netmodel.pack_time;
  add "|overlap:%b" overlap;
  add "|backend:%s" backend;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path t k = Filename.concat t.dir (k ^ ".score")

let find t k =
  match open_in_bin (path t k) with
  | exception Sys_error _ -> None
  | ic ->
    let r =
      match (Marshal.from_channel ic : int * score) with
      | v, s when v = version -> Some s
      | _ -> None
      | exception _ -> None
    in
    close_in_noerr ic;
    r

let store t k score =
  let final = path t k in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".%s.%d.tmp" k (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc ((version, score) : int * score) [];
  close_out oc;
  Sys.rename tmp final
