module Constr = Tiles_poly.Constr
module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Tiling = Tiles_core.Tiling
module Ratmat = Tiles_linalg.Ratmat
module Kernel = Tiles_runtime.Kernel
module Netmodel = Tiles_mpisim.Netmodel

type score = {
  completion : float;
  speedup : float;
  messages : int;
  bytes : int;
  points_computed : int;
  tiles_executed : int;
}

type t = { dir : string }

(* bump when the score record or the key rendering changes *)
let version = 4

let open_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": not a directory"))
  end
  else begin
    (* two processes (or domains) may race to create the directory; the
       loser's EEXIST is success, not an error *)
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) when Sys.is_directory dir -> ()
  end;
  { dir }

let dir t = t.dir

let key ~inner ~nest ~tiling ~m ~kernel ~net ~overlap ~backend =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let addf x = add "%Lx;" (Int64.bits_of_float x) in
  add "v%d|" version;
  add "space:%d:" (Polyhedron.dim nest.Nest.space);
  List.iter
    (fun c ->
      for k = 0 to Constr.dim c - 1 do
        add "%d," (Constr.coeff c k)
      done;
      add "+%d;" (Constr.const c))
    (Polyhedron.constraints nest.Nest.space);
  add "|deps:";
  List.iter
    (fun d -> Array.iter (fun x -> add "%d," x) d; add ";")
    (Dependence.vectors nest.Nest.deps);
  add "|h:%s" (Ratmat.to_string tiling.Tiling.h);
  add "|m:%d" m;
  add "|kernel:%s:%d:" kernel.Kernel.name kernel.Kernel.width;
  List.iter
    (fun d -> Array.iter (fun x -> add "%d," x) d; add ";")
    kernel.Kernel.reads;
  add "|net:";
  addf net.Netmodel.latency;
  addf net.Netmodel.bandwidth;
  addf net.Netmodel.send_overhead;
  addf net.Netmodel.recv_overhead;
  addf net.Netmodel.flop_time;
  addf net.Netmodel.pack_time;
  (* contention variants score differently, so they key differently —
     this is why version went to 3 *)
  add "|model:";
  (match net.Netmodel.model with
  | Netmodel.Alpha_beta -> add "ab"
  | Netmodel.Contended c ->
    add "c:%d:%d:" c.Netmodel.snd_lanes c.Netmodel.rcv_lanes;
    (match c.Netmodel.uplink with None -> add "-" | Some u -> addf u));
  add "|overlap:%b" overlap;
  add "|backend:%s" backend;
  (* the subtile shape changes the walked (and, on the shm backend,
     measured) configuration, so blocked scores never alias unblocked
     ones — this is why version went to 4 *)
  add "|inner:";
  (match inner with
  | None -> add "-"
  | Some b -> Array.iter (fun x -> add "%d," x) b);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path t k = Filename.concat t.dir (k ^ ".score")

let find t k =
  match open_in_bin (path t k) with
  | exception Sys_error _ -> None
  | ic ->
    (* a truncated or corrupt entry (killed writer, disk full, garbage)
       must read as a miss, never as an exception: Marshal raises
       Failure / End_of_file on bad input and the header version check
       rejects stale schemas *)
    let r =
      match (Marshal.from_channel ic : int * score) with
      | v, s when v = version -> Some s
      | _ -> None
      | exception _ -> None
    in
    close_in_noerr ic;
    r

(* distinguishes concurrent writers within one process: domains share a
   pid, so the temp name needs a per-process unique component too *)
let store_seq = Atomic.make 0

let store t k score =
  let final = path t k in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".%s.%d.%d.tmp" k (Unix.getpid ())
         (Atomic.fetch_and_add store_seq 1))
  in
  let oc = open_out_bin tmp in
  (match Marshal.to_channel oc ((version, score) : int * score) [] with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  close_out oc;
  (* atomic publish: readers see either the complete entry or nothing *)
  Sys.rename tmp final
