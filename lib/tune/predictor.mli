(** The tuner's two-pass analytic cost model.

    {!predict} is the cheap pass used to prune the whole candidate set: a
    refinement of {!Tiles_runtime.Model} whose schedule length is
    {!Tiles_core.Schedule.effective_steps} — the span between the first
    and last {e real} iterations — rather than the candidate-tile step
    count, which the nearly-empty corner tiles of oblique tilings inflate
    (DESIGN.md finding 4). Communication splits into a CPU-side charge
    (pack/unpack, send/recv overheads) paid on every step, and a wire
    charge (α latency + β transfer) paid only on the [fill] pipeline
    fill/drain hops — in the self-timed steady state the wire time of one
    processor's send overlaps with its successor's compute, so charging
    it per step would systematically punish long chains of small tiles
    that the simulator actually favours.

    {!refine} is the exact-volume pass run on the pruning shortlist: the
    critical rank's compute is its {e actual} iteration count (summing
    {!Tiles_core.Tile_space.tile_iterations} over the longest chain — an
    oblique chain ends in thin boundary tiles, so [chain × tile_size]
    overcharges exactly the shapes the simulator favours), and the
    message count / volume are the protocol's own ({!Tiles_core.Plan.comm_stats},
    boundary-clipped). Costlier — it enumerates boundary slabs — but still
    far cheaper than a simulation.

    The predictor exists to {e rank} candidates so the exact simulator
    only runs on a short shortlist; tests bound its error against the
    simulator on SOR / Jacobi / ADI. *)

type estimate = {
  steps : int;  (** effective wavefront steps (first → last iteration) *)
  chain : int;  (** longest per-processor tile chain *)
  fill : int;   (** [steps − chain], clamped at 0: pipeline fill + drain *)
  tile_compute : float;
      (** seconds of compute per tile on the critical path (full tile in
          {!predict}, the critical rank's average in {!refine}) *)
  comm_cpu : float;   (** pack + unpack + send/recv overhead, per step *)
  comm_wire : float;  (** α latency + β transfer, per fill hop *)
  total : float;  (** predicted completion, seconds *)
  predicted_speedup : float;
  inner_locality : float;
      (** predicted intra-tile speedup factor of walking the tile as
          cache-resident subtiles ([>= 1.0]; [1.0] = no benefit: walk
          unblocked, tile already cache-resident, or subtile still
          spilling). Deliberately {e not} folded into [total]: the
          simulator charges uniform per-point flop time, so blocking
          moves wall clock but never simulated completion — the term
          exists to rank inner shapes and to be compared against the
          measured blocked/unblocked ratio as a residual. *)
  refined : bool;  (** whether this came from {!refine} *)
}

val predict :
  ?width:int ->
  ?inner:int array ->
  Tiles_core.Plan.t ->
  net:Tiles_mpisim.Netmodel.t ->
  estimate
(** Cheap pass: [steps × (tile_compute + comm_cpu) + fill × comm_wire],
    with the slab volume over-approximated by the unclipped TTIS count.
    [width] is the kernel's fields-per-point (default 1); it scales the
    communicated bytes and the pack/unpack CPU charge. [inner] is the
    walker's subtile shape (clamped to the tile box); it only sets
    [inner_locality]. *)

val fields : estimate -> (string * float) list
(** The estimate's externally comparable quantities, keyed like
    {!Tiles_obs.Stats.timed_fields} ([completion_s], [speedup]) — the
    residual report ({!Tiles_obs.Residual}) pairs these with observed
    run statistics. *)

val source : estimate -> string
(** Residual-report source tag: ["predictor.predict"] or
    ["predictor.refine"] depending on {!estimate.refined}. *)

val refine :
  ?width:int ->
  ?inner:int array ->
  Tiles_core.Plan.t ->
  net:Tiles_mpisim.Netmodel.t ->
  estimate
(** Exact-volume pass:
    [crit_compute + chain × comm_cpu + fill × (avg_tile_compute + comm_wire)]
    where [crit_compute] counts the longest chain's real iterations and
    the communication terms use the protocol's exact per-tile message
    count and clipped volume. *)
