(** Candidate enumeration for the tuner: the cross product of

    - {e shape} — every legal mix of axis rows and tiling-cone rays
      ({!Tiles_core.Shape.families}), i.e. rectangular and
      dependence-skewed parallelepiped [H] families;
    - {e mapping dimension} [m] — which tile coordinate forms the
      processor chains;
    - {e processor grid} — ordered factorisations of the processor budget
      across the non-mapping dimensions, with the per-dimension tile
      factors locally adjusted until the measured process count hits the
      budget (the tile-space trip counts of oblique rows are not simple
      quotients, so the adjustment measures real {!Tiles_core.Mapping}
      process counts, like the experiment harness does);
    - {e tile size} — a sweep of the mapping-dimension factor.

    Everything here is a {e candidate}: construction of the actual
    {!Tiles_core.Tiling} / {!Tiles_core.Plan} may still fail (stride
    divisibility, tiles smaller than a dependence) and the search skips
    those. Shape legality against the dependence cone is checked here. *)

type t = {
  shape : string;  (** family name from {!Tiles_core.Shape.families} *)
  rows : Tiles_util.Vec.t list;  (** integer hyperplane rows *)
  factors : int array;  (** per-dimension divisor: row [k] of [H] is [rows_k / factors_k] *)
  m : int;  (** mapping dimension *)
}

val tiling : t -> Tiles_core.Tiling.t
(** Build the [H] matrix [rows_k / factors_k]. Raises like
    {!Tiles_core.Tiling.make}. *)

val label : t -> string
(** Short human-readable id, e.g. ["cone m=2 f=[50,7,6]"]. *)

val generate :
  nest:Tiles_loop.Nest.t ->
  procs:int ->
  factors:int list ->
  ?mapping_dims:int list ->
  unit ->
  t list
(** Enumerate candidates for [nest] under a processor budget of [procs],
    sweeping the mapping-dimension factor over [factors].
    [mapping_dims] restricts the searched mapping dimensions (default:
    all). Every returned candidate's measured process count is [<= procs];
    grids that cannot reach the budget keep their closest-from-below
    adjustment. Duplicates are removed. *)

val inner_candidates :
  ?budget_bytes:int ->
  ?max_candidates:int ->
  width:int ->
  int array ->
  int array option list
(** [inner_candidates ~width v] — pruned inner subtile shapes for a tile
    box [v] (the tiling's TTIS extents, {!Tiles_core.Tiling.t.v}):
    per-dimension divisors of the outer tile extent (a geometric spread,
    not every divisor), crossed and kept only while the subtile working
    set [∏ b_k × width × 8] bytes fits [budget_bytes] (default 256 KiB —
    comfortably cache-resident). The unblocked walk [None] always leads
    the list; when the whole tile already fits the budget it is the
    {e only} entry, since blocking cannot create locality the tile
    already has. At most [max_candidates] (default 8) blocked shapes are
    returned, largest working set first — the shapes with the least
    halo-revisiting overhead. *)
