module Vec = Tiles_util.Vec
module Ints = Tiles_util.Ints
module Rat = Tiles_rat.Rat
module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Shape = Tiles_core.Shape
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Mapping = Tiles_core.Mapping

type t = {
  shape : string;
  rows : Vec.t list;
  factors : int array;
  m : int;
}

let tiling c =
  Tiling.of_rows
    (List.mapi
       (fun k row ->
         let f = c.factors.(k) in
         if f <= 0 then invalid_arg "Candidate.tiling: factor <= 0";
         List.map (fun x -> Rat.make x f) (Array.to_list row))
       c.rows)

let label c =
  Printf.sprintf "%s m=%d f=[%s]" c.shape c.m
    (String.concat ","
       (List.map string_of_int (Array.to_list c.factors)))

(* extent of the space along hyperplane direction [row]: range of row·j
   over the bounding-box corners (an over-approximation for skewed spaces,
   which is all the grid seeding needs — the adjustment loop measures real
   process counts) *)
let direction_width bbox row =
  let n = Array.length row in
  let lo = ref 0 and hi = ref 0 in
  let rec corners k acc =
    if k = n then begin
      lo := min !lo acc;
      hi := max !hi acc
    end
    else begin
      let l, h = bbox.(k) in
      corners (k + 1) (acc + (row.(k) * l));
      corners (k + 1) (acc + (row.(k) * h))
    end
  in
  (lo := max_int);
  (hi := min_int);
  corners 0 0;
  !hi - !lo + 1

(* ordered factorisations of [budget] into [slots] positive factors *)
let rec splits budget slots =
  if slots = 0 then if budget = 1 then [ [] ] else []
  else if slots = 1 then [ [ budget ] ]
  else
    List.concat_map
      (fun d ->
        if budget mod d = 0 then
          List.map (fun rest -> d :: rest) (splits (budget / d) (slots - 1))
        else [])
      (List.init budget (fun i -> i + 1))

let generate ~nest ~procs ~factors ?mapping_dims () =
  if procs < 1 then invalid_arg "Candidate.generate: procs < 1";
  if factors = [] then invalid_arg "Candidate.generate: empty factor sweep";
  let n = Nest.dim nest in
  let deps = nest.Nest.deps in
  let bbox = Polyhedron.bounding_box nest.Nest.space in
  let families = Shape.families deps in
  let mapping_dims =
    match mapping_dims with
    | Some ds ->
      List.iter
        (fun m ->
          if m < 0 || m >= n then
            invalid_arg
              (Printf.sprintf
                 "mapping dimension %d out of range (nest has dimensions 0..%d)"
                 m (n - 1)))
        ds;
      ds
    | None -> List.init n Fun.id
  in
  (* measured process count of a full factor vector, trying the swept
     mapping factors in order until one constructs (the mapping factor does
     not change the non-mapping trip counts, hence not the count itself) *)
  let measure_tbl = Hashtbl.create 64 in
  let measure rows m grid =
    let key = (List.map Array.to_list rows, m, Array.to_list grid) in
    match Hashtbl.find_opt measure_tbl key with
    | Some r -> r
    | None ->
      let r =
        List.find_map
          (fun fm ->
            let c = { shape = ""; rows; factors = grid; m } in
            c.factors.(m) <- fm;
            match
              let t = tiling c in
              let ts = Tile_space.make nest.Nest.space t in
              Mapping.nprocs (Mapping.make ~m ts)
            with
            | p -> Some p
            | exception (Invalid_argument _ | Failure _) -> None)
          factors
      in
      Hashtbl.add measure_tbl key r;
      r
  in
  let grids = Hashtbl.create 64 in
  List.iter
    (fun (shape, rows) ->
      let rows_arr = Array.of_list rows in
      List.iter
        (fun m ->
          let non_m = List.filter (fun k -> k <> m) (List.init n Fun.id) in
          List.iter
            (fun split ->
              (* seed: per-dimension factor sized so dim k yields ~p_k
                 processes *)
              let grid = Array.make n (List.hd factors) in
              List.iter2
                (fun k p ->
                  grid.(k) <-
                    max 1 (Ints.cdiv (direction_width bbox rows_arr.(k)) p))
                non_m split;
              (* greedy local adjustment towards the exact budget, never
                 exceeding it *)
              let score g =
                match measure rows m (Array.copy g) with
                | Some p when p <= procs -> Some p
                | _ -> None
              in
              let best = ref (score grid) in
              let improved = ref true in
              while !improved && !best <> Some procs do
                improved := false;
                List.iter
                  (fun k ->
                    List.iter
                      (fun d ->
                        if !best <> Some procs then begin
                          let g = Array.copy grid in
                          g.(k) <- g.(k) + d;
                          if g.(k) >= 1 then
                            match (score g, !best) with
                            | Some p, Some b when p > b ->
                              grid.(k) <- g.(k);
                              best := Some p;
                              improved := true
                            | Some p, None ->
                              grid.(k) <- g.(k);
                              best := Some p;
                              improved := true
                            | _ -> ()
                        end)
                      [ -2; -1; 1; 2 ])
                  non_m
              done;
              match !best with
              | None -> ()
              | Some bestp ->
                (* several neighbouring grids can reach the same process
                   count with different load balance (e.g. SOR's 34 vs 35
                   split of the skewed dimension); among them keep the
                   tightest — smallest factor sum, i.e. least slack *)
                let pick = ref (Array.copy grid) in
                let sum g = Array.fold_left ( + ) 0 g in
                let rec neighbours g = function
                  | [] ->
                    if
                      sum g < sum !pick
                      && (Array.for_all2 ( = ) g !pick |> not)
                      && score g = Some bestp
                    then pick := Array.copy g
                  | k :: ks ->
                    List.iter
                      (fun d ->
                        let g' = Array.copy g in
                        g'.(k) <- g'.(k) + d;
                        if g'.(k) >= 1 then neighbours g' ks)
                      [ -2; -1; 0; 1; 2 ]
                in
                neighbours (Array.copy grid) non_m;
                let key =
                  (List.map Array.to_list rows, m, Array.to_list !pick)
                in
                if not (Hashtbl.mem grids key) then
                  Hashtbl.add grids key (shape, rows, m, !pick))
            (splits procs (List.length non_m)))
        mapping_dims)
    families;
  let out = ref [] in
  Hashtbl.iter
    (fun _ (shape, rows, m, grid) ->
      List.iter
        (fun fm ->
          let factors = Array.copy grid in
          factors.(m) <- fm;
          out := { shape; rows; factors; m } :: !out)
        (List.sort_uniq compare factors))
    grids;
  List.sort_uniq compare !out

(* ---------------- inner subtile candidates ---------------- *)

let default_inner_budget = 1 lsl 18 (* 256 KiB: comfortably inside L2 *)

(* all positive divisors of [x], ascending *)
let divisors x = List.filter (fun d -> x mod d = 0) (List.init x (fun i -> i + 1))

(* at most [cap] values from [ds] (ascending), keeping the extremes and a
   geometric spread in between — the search doesn't need every divisor of
   a large extent, just a logarithmic ladder of working-set sizes *)
let spread cap ds =
  let a = Array.of_list ds in
  let len = Array.length a in
  if len <= cap then ds
  else
    List.sort_uniq compare
      (List.init cap (fun i -> a.(i * (len - 1) / (cap - 1))))

let inner_candidates ?(budget_bytes = default_inner_budget)
    ?(max_candidates = 8) ~width (v : int array) =
  if Array.exists (fun x -> x < 1) v then
    invalid_arg "Candidate.inner_candidates: tile extent < 1";
  let cell = 8 * max 1 width in
  let tile_ws = Array.fold_left (fun a x -> a * x) cell v in
  (* a tile that already fits the cache budget can't gain from blocking *)
  if tile_ws <= budget_bytes then [ None ]
  else begin
    let per_dim = Array.map (fun x -> spread 6 (divisors x)) v in
    let n = Array.length v in
    let shapes = ref [] in
    let rec go k b =
      if k = n then begin
        let ws = Array.fold_left (fun a x -> a * x) cell b in
        let blocked = Array.exists2 (fun bk vk -> bk < vk) b v in
        if blocked && ws <= budget_bytes then
          shapes := (ws, Array.copy b) :: !shapes
      end
      else
        List.iter
          (fun d ->
            b.(k) <- d;
            go (k + 1) b)
          per_dim.(k)
    in
    go 0 (Array.make n 1);
    (* prefer the largest cache-resident subtiles (least per-subtile halo
       revisiting), tie-broken lexicographically for determinism *)
    let ranked =
      List.sort
        (fun (wa, ba) (wb, bb) ->
          match compare wb wa with 0 -> compare ba bb | c -> c)
        !shapes
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | (_, b) :: rest -> Some b :: take (k - 1) rest
    in
    None :: take (max 1 max_candidates) ranked
  end
