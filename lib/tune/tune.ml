module Json = Tiles_util.Json
module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Kernel = Tiles_runtime.Kernel
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel

type backend = Sim | Shm

let backend_label = function Sim -> "sim" | Shm -> "shm"

type options = {
  procs : int;
  factors : int list;
  top_k : int;
  workers : int;
  cache_dir : string option;
  overlap : bool;
  backend : backend;
  mapping_dims : int list option;
}

let default_options =
  {
    procs = 16;
    factors = [ 2; 4; 6; 8; 10; 16; 25 ];
    top_k = 12;
    workers = max 1 (min 8 (Domain.recommended_domain_count ()));
    cache_dir = None;
    overlap = false;
    backend = Sim;
    mapping_dims = None;
  }

type scored = {
  cand : Candidate.t;
  nprocs : int;
  tile_size : int;
  predicted : Predictor.estimate;
  score : Cache.score option;
  from_cache : bool;
}

type result = {
  best : scored;
  simulated : scored list;
  pruned : scored list;
  generated : int;
  feasible : int;
  cache_hits : int;
}

let plan_of ~nest cand = Plan.make ~m:cand.Candidate.m nest (Candidate.tiling cand)

let score_of_run (r : Executor.result) : Cache.score =
  {
    Cache.completion = r.Executor.stats.Sim.completion;
    speedup = r.Executor.speedup;
    messages = r.Executor.stats.Sim.messages;
    bytes = r.Executor.stats.Sim.bytes;
    points_computed = r.Executor.points_computed;
    tiles_executed = r.Executor.tiles_executed;
  }

let score_of_shm_run (r : Shm_executor.result) : Cache.score =
  {
    Cache.completion = r.Shm_executor.wall_seconds;
    speedup = r.Shm_executor.wall_speedup;
    messages = r.Shm_executor.messages;
    bytes = r.Shm_executor.bytes;
    points_computed = r.Shm_executor.points_computed;
    tiles_executed = r.Shm_executor.tiles_executed;
  }

(* evaluate [jobs] (plan per candidate) across [workers] domains; the
   simulator state is per-run and all cross-candidate shared structures
   (the nest-space projection memo) are forced before spawning. Shm
   evaluation spawns one domain per rank (plus senders when overlapped)
   inside each run, so it is serialized: parallel evals would
   oversubscribe the cores being measured. *)
let evaluate_parallel ~workers ~kernel ~net ~overlap ~backend jobs =
  let jobs = Array.of_list jobs in
  let out = Array.make (Array.length jobs) None in
  let eval i =
    let _, plan = jobs.(i) in
    let score =
      match backend with
      | Sim ->
        score_of_run
          (Executor.run ~mode:Executor.Timing ~overlap ~plan ~kernel ~net ())
      | Shm -> score_of_shm_run (Shm_executor.run ~overlap ~plan ~kernel ())
    in
    out.(i) <- Some score
  in
  let workers = match backend with Sim -> workers | Shm -> 1 in
  let nw = max 1 (min workers (Array.length jobs)) in
  if nw = 1 then Array.iteri (fun i _ -> eval i) jobs
  else begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length jobs && Atomic.get failure = None then begin
          (try eval i
           with e -> Atomic.compare_and_set failure None (Some e) |> ignore);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init nw (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end;
  Array.to_list
    (Array.mapi
       (fun i s ->
         match s with
         | Some s -> (fst jobs.(i), s)
         | None -> failwith "Tune.evaluate_parallel: job skipped")
       out)

let search ?(options = default_options) ~nest ~kernel ~net () =
  let cands =
    Candidate.generate ~nest ~procs:options.procs ~factors:options.factors
      ?mapping_dims:options.mapping_dims ()
  in
  let generated = List.length cands in
  let width = kernel.Kernel.width in
  let feasible =
    List.filter_map
      (fun cand ->
        match
          let plan = plan_of ~nest cand in
          let predicted = Predictor.predict ~width plan ~net in
          ( cand,
            plan,
            predicted,
            Plan.nprocs plan,
            Tiling.tile_size plan.Plan.tiling )
        with
        | x -> Some x
        | exception (Invalid_argument _ | Failure _ | Division_by_zero) -> None)
      cands
  in
  let ranked =
    List.sort
      (fun (_, _, a, _, _) (_, _, b, _, _) ->
        compare a.Predictor.total b.Predictor.total)
      feasible
  in
  let rec split k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (k - 1) (x :: acc) rest
  in
  (* second pruning pass: re-rank a shortlist with the exact-volume
     refinement before committing simulator time *)
  let shortlist, tail = split (max 1 (3 * options.top_k)) [] ranked in
  let shortlist =
    List.map
      (fun (cand, plan, _, nprocs, tile_size) ->
        (cand, plan, Predictor.refine ~width plan ~net, nprocs, tile_size))
      shortlist
    |> List.sort (fun (_, _, a, _, _) (_, _, b, _, _) ->
           compare a.Predictor.total b.Predictor.total)
  in
  let survivors, rest = split (max 1 options.top_k) [] shortlist in
  let pruned =
    List.map
      (fun (cand, _, predicted, nprocs, tile_size) ->
        { cand; nprocs; tile_size; predicted; score = None; from_cache = false })
      (rest @ tail)
  in
  (* force the shared nest-space projection memo before domains race on it *)
  ignore (Polyhedron.count_points nest.Nest.space);
  let cache = Option.map Cache.open_dir options.cache_dir in
  let keyed =
    List.map
      (fun ((cand, plan, _, _, _) as s) ->
        let key =
          Option.map
            (fun _ ->
              Cache.key ~nest ~tiling:plan.Plan.tiling ~m:cand.Candidate.m
                ~kernel ~net ~overlap:options.overlap
                ~backend:(backend_label options.backend))
            cache
        in
        (s, key))
      survivors
  in
  let hits, misses =
    List.partition_map
      (fun ((s, key) as entry) ->
        match (cache, key) with
        | Some c, Some k -> (
          match Cache.find c k with
          | Some score -> Left (s, score)
          | None -> Right entry)
        | _ -> Right entry)
      keyed
  in
  let cache_hits = List.length hits in
  let miss_scores =
    evaluate_parallel ~workers:options.workers ~kernel ~net
      ~overlap:options.overlap ~backend:options.backend
      (List.map (fun ((_, plan, _, _, _), key) -> (key, plan)) misses)
  in
  (match cache with
  | Some c ->
    List.iter
      (fun (key, score) ->
        match key with Some k -> Cache.store c k score | None -> ())
      miss_scores
  | None -> ());
  let scored_of (cand, _, predicted, nprocs, tile_size) score from_cache =
    { cand; nprocs; tile_size; predicted; score = Some score; from_cache }
  in
  let simulated =
    List.map2
      (fun ((s, _) : _ * string option) (_, score) -> scored_of s score false)
      misses miss_scores
    @ List.map (fun (s, score) -> scored_of s score true) hits
  in
  let simulated =
    List.sort
      (fun a b ->
        match (a.score, b.score) with
        | Some x, Some y -> compare x.Cache.completion y.Cache.completion
        | _ -> 0)
      simulated
  in
  match simulated with
  | [] -> failwith "Tune.search: no feasible candidate"
  | best :: _ ->
    { best; simulated; pruned; generated; feasible = List.length feasible; cache_hits }

(* ---------------- JSON rendering ---------------- *)

let estimate_json (e : Predictor.estimate) =
  Json.Obj
    [
      ("steps", Json.Int e.Predictor.steps);
      ("chain", Json.Int e.Predictor.chain);
      ("fill", Json.Int e.Predictor.fill);
      ("tile_compute_s", Json.Float e.Predictor.tile_compute);
      ("comm_cpu_s", Json.Float e.Predictor.comm_cpu);
      ("comm_wire_s", Json.Float e.Predictor.comm_wire);
      ("total_s", Json.Float e.Predictor.total);
      ("speedup", Json.Float e.Predictor.predicted_speedup);
    ]

let score_json (s : Cache.score) =
  Json.Obj
    [
      ("completion_s", Json.Float s.Cache.completion);
      ("speedup", Json.Float s.Cache.speedup);
      ("messages", Json.Int s.Cache.messages);
      ("bytes", Json.Int s.Cache.bytes);
      ("points", Json.Int s.Cache.points_computed);
      ("tiles", Json.Int s.Cache.tiles_executed);
    ]

let scored_json s =
  let c = s.cand in
  Json.Obj
    [
      ("label", Json.Str (Candidate.label c));
      ("shape", Json.Str c.Candidate.shape);
      ( "rows",
        Json.List
          (List.map
             (fun r -> Json.List (List.map (fun x -> Json.Int x) (Array.to_list r)))
             c.Candidate.rows) );
      ( "factors",
        Json.List
          (List.map (fun x -> Json.Int x) (Array.to_list c.Candidate.factors)) );
      ("m", Json.Int c.Candidate.m);
      ("nprocs", Json.Int s.nprocs);
      ("tile_size", Json.Int s.tile_size);
      ("predicted", estimate_json s.predicted);
      ( "simulated",
        match s.score with Some sc -> score_json sc | None -> Json.Null );
      ("from_cache", Json.Bool s.from_cache);
    ]

let result_json r =
  Json.Obj
    [
      ("best", scored_json r.best);
      ("simulated", Json.List (List.map scored_json r.simulated));
      ("pruned", Json.List (List.map scored_json r.pruned));
      ("generated", Json.Int r.generated);
      ("feasible", Json.Int r.feasible);
      ("cache_hits", Json.Int r.cache_hits);
    ]
