module Json = Tiles_util.Json
module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Kernel = Tiles_runtime.Kernel
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel
module Residual = Tiles_obs.Residual

type backend = Sim | Shm

let backend_label = function Sim -> "sim" | Shm -> "shm"

type inner_choice = Inner_search | Inner_fixed of int array option

type options = {
  procs : int;
  factors : int list;
  top_k : int;
  workers : int;
  cache_dir : string option;
  overlap : bool;
  backend : backend;
  mapping_dims : int list option;
  inner : inner_choice;
}

let default_options =
  {
    procs = 16;
    factors = [ 2; 4; 6; 8; 10; 16; 25 ];
    top_k = 12;
    workers = max 1 (min 8 (Domain.recommended_domain_count ()));
    cache_dir = None;
    overlap = false;
    backend = Sim;
    mapping_dims = None;
    inner = Inner_search;
  }

type scored = {
  cand : Candidate.t;
  nprocs : int;
  tile_size : int;
  inner : int array option;
  predicted : Predictor.estimate;
  score : Cache.score option;
  from_cache : bool;
}

type result = {
  best : scored;
  simulated : scored list;
  pruned : scored list;
  generated : int;
  feasible : int;
  cache_hits : int;
  inner_residual : Residual.entry option;
}

let plan_of ~nest cand = Plan.make ~m:cand.Candidate.m nest (Candidate.tiling cand)

let score_of_run (r : Executor.result) : Cache.score =
  {
    Cache.completion = r.Executor.stats.Sim.completion;
    speedup = r.Executor.speedup;
    messages = r.Executor.stats.Sim.messages;
    bytes = r.Executor.stats.Sim.bytes;
    points_computed = r.Executor.points_computed;
    tiles_executed = r.Executor.tiles_executed;
  }

let score_of_shm_run (r : Shm_executor.result) : Cache.score =
  {
    Cache.completion = r.Shm_executor.wall_seconds;
    speedup = r.Shm_executor.wall_speedup;
    messages = r.Shm_executor.messages;
    bytes = r.Shm_executor.bytes;
    points_computed = r.Shm_executor.points_computed;
    tiles_executed = r.Shm_executor.tiles_executed;
  }

(* evaluate [jobs] (plan per candidate) across [workers] domains; the
   simulator state is per-run and all cross-candidate shared structures
   (the nest-space projection memo) are forced before spawning. Shm
   evaluation spawns one domain per rank (plus senders when overlapped)
   inside each run, so it is serialized: parallel evals would
   oversubscribe the cores being measured. *)
let evaluate_parallel ~workers ~kernel ~net ~overlap ~backend jobs =
  let jobs = Array.of_list jobs in
  let out = Array.make (Array.length jobs) None in
  let eval i =
    let _, plan, inner = jobs.(i) in
    let score =
      match backend with
      | Sim ->
        score_of_run
          (Executor.run ?inner ~mode:Executor.Timing ~overlap ~plan ~kernel
             ~net ())
      | Shm ->
        score_of_shm_run (Shm_executor.run ?inner ~overlap ~plan ~kernel ())
    in
    out.(i) <- Some score
  in
  let workers = match backend with Sim -> workers | Shm -> 1 in
  let nw = max 1 (min workers (Array.length jobs)) in
  if nw = 1 then Array.iteri (fun i _ -> eval i) jobs
  else begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length jobs && Atomic.get failure = None then begin
          (try eval i
           with e -> Atomic.compare_and_set failure None (Some e) |> ignore);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init nw (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end;
  Array.to_list
    (Array.mapi
       (fun i s ->
         match s with
         | Some s ->
           let k, _, _ = jobs.(i) in
           (k, s)
         | None -> failwith "Tune.evaluate_parallel: job skipped")
       out)

let search ?(options = default_options) ~nest ~kernel ~net () =
  let cands =
    Candidate.generate ~nest ~procs:options.procs ~factors:options.factors
      ?mapping_dims:options.mapping_dims ()
  in
  let generated = List.length cands in
  let width = kernel.Kernel.width in
  let feasible =
    List.filter_map
      (fun cand ->
        match
          let plan = plan_of ~nest cand in
          let predicted = Predictor.predict ~width plan ~net in
          ( cand,
            plan,
            predicted,
            Plan.nprocs plan,
            Tiling.tile_size plan.Plan.tiling )
        with
        | x -> Some x
        | exception (Invalid_argument _ | Failure _ | Division_by_zero) -> None)
      cands
  in
  let ranked =
    List.sort
      (fun (_, _, a, _, _) (_, _, b, _, _) ->
        compare a.Predictor.total b.Predictor.total)
      feasible
  in
  let rec split k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (k - 1) (x :: acc) rest
  in
  (* second pruning pass: re-rank a shortlist with the exact-volume
     refinement before committing simulator time *)
  let shortlist, tail = split (max 1 (3 * options.top_k)) [] ranked in
  let shortlist =
    List.map
      (fun (cand, plan, _, nprocs, tile_size) ->
        (cand, plan, Predictor.refine ~width plan ~net, nprocs, tile_size))
      shortlist
    |> List.sort (fun (_, _, a, _, _) (_, _, b, _, _) ->
           compare a.Predictor.total b.Predictor.total)
  in
  let survivors, rest = split (max 1 options.top_k) [] shortlist in
  let pruned =
    List.map
      (fun (cand, _, predicted, nprocs, tile_size) ->
        {
          cand;
          nprocs;
          tile_size;
          inner = None;
          predicted;
          score = None;
          from_cache = false;
        })
      (rest @ tail)
  in
  (* ---------------- inner (subtile) dimension of the search -------- *)
  let inner_opts_of plan =
    match options.inner with
    | Inner_fixed i -> [ i ]
    | Inner_search ->
      Candidate.inner_candidates ~width plan.Plan.tiling.Tiling.v
  in
  (* the simulator charges uniform per-point flop time, so every inner
     shape completes identically there: rank analytically and simulate
     once. The shm backend measures real wall clock, so it pays for the
     full (outer × inner) product. The candidate list leads with [None]
     and the comparison is strict, so ties go to the unblocked walk. *)
  let choose_inner plan =
    List.fold_left
      (fun (bi, bl) i ->
        let l =
          (Predictor.predict ~width ?inner:i plan ~net)
            .Predictor.inner_locality
        in
        if l > bl then (i, l) else (bi, bl))
      (None, 1.0) (inner_opts_of plan)
    |> fst
  in
  let survivors = List.mapi (fun idx s -> (idx, s)) survivors in
  let jobs =
    List.concat_map
      (fun ((_, (_, plan, _, _, _)) as s) ->
        let inners =
          match options.backend with
          | Sim -> [ choose_inner plan ]
          | Shm -> inner_opts_of plan
        in
        List.map (fun i -> (s, i)) inners)
      survivors
  in
  (* force the shared nest-space projection memo before domains race on it *)
  ignore (Polyhedron.count_points nest.Nest.space);
  let cache = Option.map Cache.open_dir options.cache_dir in
  let keyed =
    List.map
      (fun (((_, (cand, plan, _, _, _)), i) as job) ->
        let key =
          Option.map
            (fun _ ->
              Cache.key ~inner:i ~nest ~tiling:plan.Plan.tiling
                ~m:cand.Candidate.m ~kernel ~net ~overlap:options.overlap
                ~backend:(backend_label options.backend))
            cache
        in
        (job, key))
      jobs
  in
  let hits, misses =
    List.partition_map
      (fun ((job, key) as entry) ->
        match (cache, key) with
        | Some c, Some k -> (
          match Cache.find c k with
          | Some score -> Left (job, score)
          | None -> Right entry)
        | _ -> Right entry)
      keyed
  in
  let cache_hits = List.length hits in
  let miss_scores =
    evaluate_parallel ~workers:options.workers ~kernel ~net
      ~overlap:options.overlap ~backend:options.backend
      (List.map
         (fun (((_, (_, plan, _, _, _)), i), key) -> (key, plan, i))
         misses)
  in
  (match cache with
  | Some c ->
    List.iter
      (fun (key, score) ->
        match key with Some k -> Cache.store c k score | None -> ())
      miss_scores
  | None -> ());
  let all_scored =
    List.map2
      (fun (job, _) (_, score) -> (job, score, false))
      misses miss_scores
    @ List.map (fun (job, score) -> (job, score, true)) hits
  in
  (* fold the per-(outer, inner) scores back to one scored per survivor:
     the best inner shape wins; remember the measured blocked/unblocked
     ratio when both walks were actually run (shm backend) *)
  let scored_of (cand, plan, _, nprocs, tile_size) inner score from_cache =
    {
      cand;
      nprocs;
      tile_size;
      inner;
      predicted = Predictor.refine ~width ?inner plan ~net;
      score = Some score;
      from_cache;
    }
  in
  let simulated_with_obs =
    List.filter_map
      (fun (idx, s) ->
        let mine =
          List.filter_map
            (fun (((idx', _), i), score, from_cache) ->
              if idx' = idx then Some (i, score, from_cache) else None)
            all_scored
        in
        match mine with
        | [] -> None
        | first :: rest ->
          let best =
            List.fold_left
              (fun ((_, bs, _) as b) ((_, s, _) as x) ->
                if s.Cache.completion < bs.Cache.completion then x else b)
              first rest
          in
          let bi, bscore, bcache = best in
          let observed =
            match bi with
            | None -> None
            | Some _ ->
              List.find_map
                (fun (i, s, _) ->
                  if i = None && bscore.Cache.completion > 0. then
                    Some (s.Cache.completion /. bscore.Cache.completion)
                  else None)
                mine
          in
          Some (scored_of s bi bscore bcache, observed))
      survivors
  in
  let simulated_with_obs =
    List.sort
      (fun (a, _) (b, _) ->
        match (a.score, b.score) with
        | Some x, Some y -> compare x.Cache.completion y.Cache.completion
        | _ -> 0)
      simulated_with_obs
  in
  let simulated = List.map fst simulated_with_obs in
  match simulated_with_obs with
  | [] -> failwith "Tune.search: no feasible candidate"
  | (best, best_obs) :: _ ->
    (* residual of the analytic inner-locality term against a measured
       ratio: the shm backend already measured both walks; on the
       simulator backend (completion is inner-invariant) probe the
       winning plan's real wall clock in Full mode, blocked vs not *)
    let inner_residual =
      match best.inner with
      | None -> None
      | Some b ->
        let observed =
          match (options.backend, best_obs) with
          | Shm, obs -> obs
          | Sim, _ ->
            let plan = plan_of ~nest best.cand in
            let time inner =
              let t0 = Unix.gettimeofday () in
              ignore
                (Executor.run ?inner ~mode:Executor.Full
                   ~overlap:options.overlap ~plan ~kernel ~net ());
              Unix.gettimeofday () -. t0
            in
            let t_blocked = time (Some b) in
            let t_unblocked = time None in
            if t_blocked > 0. && t_unblocked > 0. then
              Some (t_unblocked /. t_blocked)
            else None
        in
        Option.map
          (fun observed ->
            {
              Residual.label = Candidate.label best.cand;
              source = Predictor.source best.predicted;
              field = "inner_locality";
              predicted = best.predicted.Predictor.inner_locality;
              observed;
            })
          observed
    in
    {
      best;
      simulated;
      pruned;
      generated;
      feasible = List.length feasible;
      cache_hits;
      inner_residual;
    }

(* ---------------- JSON rendering ---------------- *)

let estimate_json (e : Predictor.estimate) =
  Json.Obj
    [
      ("steps", Json.Int e.Predictor.steps);
      ("chain", Json.Int e.Predictor.chain);
      ("fill", Json.Int e.Predictor.fill);
      ("tile_compute_s", Json.Float e.Predictor.tile_compute);
      ("comm_cpu_s", Json.Float e.Predictor.comm_cpu);
      ("comm_wire_s", Json.Float e.Predictor.comm_wire);
      ("total_s", Json.Float e.Predictor.total);
      ("speedup", Json.Float e.Predictor.predicted_speedup);
      ("inner_locality", Json.Float e.Predictor.inner_locality);
    ]

let score_json (s : Cache.score) =
  Json.Obj
    [
      ("completion_s", Json.Float s.Cache.completion);
      ("speedup", Json.Float s.Cache.speedup);
      ("messages", Json.Int s.Cache.messages);
      ("bytes", Json.Int s.Cache.bytes);
      ("points", Json.Int s.Cache.points_computed);
      ("tiles", Json.Int s.Cache.tiles_executed);
    ]

let scored_json s =
  let c = s.cand in
  Json.Obj
    [
      ("label", Json.Str (Candidate.label c));
      ("shape", Json.Str c.Candidate.shape);
      ( "rows",
        Json.List
          (List.map
             (fun r -> Json.List (List.map (fun x -> Json.Int x) (Array.to_list r)))
             c.Candidate.rows) );
      ( "factors",
        Json.List
          (List.map (fun x -> Json.Int x) (Array.to_list c.Candidate.factors)) );
      ("m", Json.Int c.Candidate.m);
      ("nprocs", Json.Int s.nprocs);
      ("tile_size", Json.Int s.tile_size);
      ( "inner",
        match s.inner with
        | None -> Json.Null
        | Some b ->
          Json.List (List.map (fun x -> Json.Int x) (Array.to_list b)) );
      ("predicted", estimate_json s.predicted);
      ( "simulated",
        match s.score with Some sc -> score_json sc | None -> Json.Null );
      ("from_cache", Json.Bool s.from_cache);
    ]

let residual_json (r : Residual.entry) =
  Json.Obj
    [
      ("label", Json.Str r.Residual.label);
      ("source", Json.Str r.Residual.source);
      ("field", Json.Str r.Residual.field);
      ("predicted", Json.Float r.Residual.predicted);
      ("observed", Json.Float r.Residual.observed);
      ("rel_error", Json.Float (Residual.rel_error r));
    ]

let result_json r =
  Json.Obj
    [
      ("best", scored_json r.best);
      ("simulated", Json.List (List.map scored_json r.simulated));
      ("pruned", Json.List (List.map scored_json r.pruned));
      ("generated", Json.Int r.generated);
      ("feasible", Json.Int r.feasible);
      ("cache_hits", Json.Int r.cache_hits);
      ( "inner_residual",
        match r.inner_residual with
        | None -> Json.Null
        | Some e -> residual_json e );
    ]
