(** The search loop: generate → predict → prune → simulate → pick.

    Given a loop nest, its kernel, a network model and a processor
    budget, {!search}:

    + enumerates legal candidate tilings ({!Candidate.generate}):
      rectangular and dependence-skewed shape families × mapping
      dimension × processor grid × tile-size sweep;
    + scores every constructible candidate with the fast analytic
      predictor ({!Predictor.predict}) and keeps the [top_k] cheapest;
    + scores the survivors exactly on the chosen backend — the
      discrete-event simulator ({!Tiles_runtime.Executor.run} in [Timing]
      mode), fanned out across OCaml domains, or the real shared-memory
      executor ({!Tiles_runtime.Shm_executor.run}), serialized because
      each measurement already uses one domain per rank — memoized in an
      optional on-disk {!Cache} so repeated tunes are incremental;
    + returns everything, best candidate first.

    The paper hand-picks each tiling and observes which wins (§4); this
    module closes that loop — the compiler chooses. *)

type backend = Sim | Shm
(** What scores the pruning survivors: the discrete-event simulator
    (virtual time, deterministic) or the real shared-memory executor
    (wall clock, noisy — keep [procs] within the host's cores). *)

val backend_label : backend -> string
(** ["sim"] / ["shm"] — the rendering used in cache keys and reports. *)

type inner_choice =
  | Inner_search
      (** search the walker's inner subtile shape too: the (outer ×
          inner) product, with the inner axis pruned by
          {!Candidate.inner_candidates}. On the [Sim] backend the
          simulator's completion is inner-invariant (uniform per-point
          flop time), so the inner shape is chosen analytically by
          {!Predictor}'s [inner_locality] term and the survivor is
          simulated once; the [Shm] backend measures every (outer,
          inner) pair's wall clock. *)
  | Inner_fixed of int array option
      (** pin the walker's subtile shape ([None] = always unblocked) *)

type options = {
  procs : int;  (** processor budget (the paper's 16-node cluster) *)
  factors : int list;  (** mapping-dimension tile-factor sweep *)
  top_k : int;  (** candidates surviving predictor pruning *)
  workers : int;  (** domains for parallel simulator evaluation;
                      forced to 1 on the [Shm] backend *)
  cache_dir : string option;  (** [None] disables the on-disk memo *)
  overlap : bool;  (** §5 overlapped schedule (both backends) *)
  backend : backend;  (** what scores the survivors *)
  mapping_dims : int list option;  (** restrict searched [m] (default all) *)
  inner : inner_choice;  (** inner subtile axis of the search *)
}

val default_options : options
(** 16 processors, factors [2,4,6,8,10,16,25], top 12, as many workers as
    recommended domains (capped at 8), no cache, blocking sends, [Sim]
    backend, all mapping dimensions, inner shape searched. *)

type scored = {
  cand : Candidate.t;
  nprocs : int;
  tile_size : int;
  inner : int array option;
      (** chosen walker subtile shape; [None] = unblocked walk (always
          the case for predictor-pruned entries) *)
  predicted : Predictor.estimate;
  score : Cache.score option;  (** [None] iff predictor-pruned *)
  from_cache : bool;
}

type result = {
  best : scored;
  simulated : scored list;  (** survivors, best completion first *)
  pruned : scored list;     (** predictor-only, cheapest first *)
  generated : int;  (** raw candidates *)
  feasible : int;   (** candidates whose plan constructed *)
  cache_hits : int;
  inner_residual : Tiles_obs.Residual.entry option;
      (** the predictor's [inner_locality] term for the winning
          configuration vs an observed blocked/unblocked ratio — the
          shm backend's measured completions, or (simulator backend) a
          Full-mode wall-clock probe of the winning plan. [None] when
          the winner walks unblocked. *)
}

val search :
  ?options:options ->
  nest:Tiles_loop.Nest.t ->
  kernel:Tiles_runtime.Kernel.t ->
  net:Tiles_mpisim.Netmodel.t ->
  unit ->
  result
(** Raises [Failure] if no candidate survives to simulation. *)

val plan_of : nest:Tiles_loop.Nest.t -> Candidate.t -> Tiles_core.Plan.t
(** Rebuild the winning plan (daily use: feed it to the code
    generators). *)

val result_json : result -> Tiles_util.Json.t
(** The full result as JSON — schema documented in the README under
    [tilec tune]. *)
