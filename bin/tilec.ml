(* tilec — the command-line face of the tiling compiler.

   Subcommands:
     plan       derive and print the parallelisation plan for an algorithm
     cone       print the algorithm's tiling cone (extreme rays)
     emit-mpi   generate the data-parallel MPI C program
     emit-seq   generate the sequential tiled C program
     emit-pseq  generate the parametric sequential program (sizes at runtime)
     simulate   run the plan on the simulated cluster and report speedup
                (--full verifies, --overlap uses non-blocking sends,
                 --utilisation prints the traced busy/wait breakdown,
                 --trace FILE writes a Chrome trace-event JSON)
     trace      run traced (simulator or shm domains), export the Chrome
                trace-event JSON / SVG timeline, print aggregate stats
     analyze    causal critical-path analysis of a traced run (fresh or
                --from a Chrome artifact): breakdown table, laggards and
                slack, --svg timeline with the path highlighted, --out
                Chrome JSON with message flow events; --stream swaps the
                exact trace for O(ranks) streaming aggregation
     tune       search tile shape, size and mapping for the best plan
     perf       repeated timed runs with distribution statistics;
                --record writes a baseline, --check gates against it
     serve      persistent multi-tenant compile service over line-delimited
                JSON (stdin/stdout or --socket), with admission control,
                plan caching and request coalescing

   Exit codes (documented in README "Exit codes"):
     0    success
     1    runtime failure (illegal/singular tiling, unknown app or
          variant, I/O error, …)
     2    perf --check found a regression, counter drift or metadata
          mismatch
     3    slab protocol mismatch between communicating ranks
          (Protocol.Slab_mismatch — a compiler bug, not a user error)
     4    shm rendezvous timeout (Recv_timeout/Send_timeout — a peer
          rank died or deadlocked)
     124  command-line usage error (Cmdliner's cli_error default) *)

open Cmdliner

module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Schedule = Tiles_core.Schedule
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor
module Seq_exec = Tiles_runtime.Seq_exec
module Grid = Tiles_runtime.Grid
module Protocol = Tiles_runtime.Protocol
module Walker = Tiles_runtime.Walker
module Chrome = Tiles_obs.Chrome
module Stats = Tiles_obs.Stats
module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Critpath = Tiles_obs.Critpath
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel
module Nest = Tiles_loop.Nest

type app_instance = {
  app_name : string;
  nest : Nest.t;
  kernel : Tiles_runtime.Kernel.t;
  ckernel : Tiles_codegen.Ckernel.t;
  creads : Tiles_util.Vec.t list;
  skew : Tiles_linalg.Intmat.t option;
  m : int;
  tiling_of : string -> x:int -> y:int -> z:int -> Tiles_core.Tiling.t;
  pspace : unit -> Tiles_poly.Pspace.t;
}

let instance app ~size1 ~size2 =
  match app with
  | "sor" ->
    let p = Tiles_apps.Sor.make ~m_steps:size1 ~size:size2 in
    {
      app_name = "sor";
      nest = Tiles_apps.Sor.nest p;
      kernel = Tiles_apps.Sor.kernel p;
      ckernel = Tiles_apps.Sor.ckernel;
      creads = Tiles_apps.Sor.skewed_reads;
      skew = Some Tiles_apps.Sor.skew_matrix;
      m = Tiles_apps.Sor.mapping_dim;
      tiling_of =
        (fun v ~x ~y ~z ->
          match List.assoc_opt v Tiles_apps.Sor.variants with
          | Some mk -> mk ~x ~y ~z
          | None -> failwith ("unknown SOR variant " ^ v));
      pspace = Tiles_apps.Sor.pspace;
    }
  | "jacobi" ->
    let p = Tiles_apps.Jacobi.make ~t_steps:size1 ~size:size2 in
    {
      app_name = "jacobi";
      nest = Tiles_apps.Jacobi.nest p;
      kernel = Tiles_apps.Jacobi.kernel p;
      ckernel = Tiles_apps.Jacobi.ckernel;
      creads = Tiles_apps.Jacobi.skewed_reads;
      skew = Some Tiles_apps.Jacobi.skew_matrix;
      m = Tiles_apps.Jacobi.mapping_dim;
      tiling_of =
        (fun v ~x ~y ~z ->
          match List.assoc_opt v Tiles_apps.Jacobi.variants with
          | Some mk -> mk ~x ~y ~z
          | None -> failwith ("unknown Jacobi variant " ^ v));
      pspace = Tiles_apps.Jacobi.pspace;
    }
  | "adi" ->
    let p = Tiles_apps.Adi.make ~t_steps:size1 ~size:size2 in
    {
      app_name = "adi";
      nest = Tiles_apps.Adi.nest p;
      kernel = Tiles_apps.Adi.kernel p;
      ckernel = Tiles_apps.Adi.ckernel;
      creads = Tiles_apps.Adi.creads;
      skew = None;
      m = Tiles_apps.Adi.mapping_dim;
      tiling_of =
        (fun v ~x ~y ~z ->
          match List.assoc_opt v Tiles_apps.Adi.variants with
          | Some mk -> mk ~x ~y ~z
          | None -> failwith ("unknown ADI variant " ^ v));
      pspace = Tiles_apps.Adi.pspace;
    }
  | other -> failwith ("unknown app " ^ other ^ " (sor | jacobi | adi)")

(* Exit codes: each failure class gets its own code (see the header
   comment) so scripts and CI can react without parsing stderr.
   Distinct from Cmdliner's own codes (124 usage, 125 internal). *)
let exit_runtime = 1
let exit_regression = 2
let exit_slab_mismatch = 3
let exit_rendezvous_timeout = 4

(* User errors (illegal or singular tiling matrices, infeasible factors,
   unknown variants…) surface as raised exceptions from the libraries;
   report them as a one-line message with the class's exit code, never a
   backtrace. *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "tilec: error: %s\n" msg;
    exit exit_runtime
  | Shm_executor.Recv_timeout msg | Shm_executor.Send_timeout msg ->
    Printf.eprintf "tilec: error: %s\n" msg;
    exit exit_rendezvous_timeout
  | Protocol.Slab_mismatch m ->
    Printf.eprintf "tilec: error: %s\n" (Protocol.slab_mismatch_to_string m);
    exit exit_slab_mismatch
  | Division_by_zero ->
    Printf.eprintf "tilec: error: singular tiling (zero tile factor)\n";
    exit exit_runtime

(* ---------------- common options ---------------- *)

let app_arg =
  Arg.(required & opt (some string) None & info [ "app" ] ~docv:"NAME"
         ~doc:"Algorithm: sor, jacobi or adi.")

let size1_arg =
  Arg.(value & opt int 24 & info [ "t"; "M" ] ~docv:"N"
         ~doc:"Time-like extent (M for SOR, T for Jacobi/ADI).")

let size2_arg =
  Arg.(value & opt int 32 & info [ "n"; "N" ] ~docv:"N"
         ~doc:"Spatial extent (N, or I=J).")

let variant_arg =
  Arg.(value & opt string "nonrect" & info [ "variant" ] ~docv:"V"
         ~doc:"Tiling variant (rect, nonrect; for ADI: rect, nr1, nr2, nr3).")

let xyz_args =
  let x = Arg.(value & opt int 6 & info [ "x" ] ~doc:"Tile factor x.") in
  let y = Arg.(value & opt int 8 & info [ "y" ] ~doc:"Tile factor y.") in
  let z = Arg.(value & opt int 8 & info [ "z" ] ~doc:"Tile factor z.") in
  Term.(const (fun x y z -> (x, y, z)) $ x $ y $ z)

let build_plan app size1 size2 variant (x, y, z) =
  let inst = instance app ~size1 ~size2 in
  let tiling = inst.tiling_of variant ~x ~y ~z in
  (inst, Plan.make ~m:inst.m inst.nest tiling)

(* an unknown --backend must be a Cmdliner usage error listing sim|shm,
   not a raw exception from deep inside the run *)
let backend_arg =
  Arg.(value
       & opt (enum [ ("sim", `Sim); ("shm", `Shm) ]) `Sim
       & info [ "backend" ] ~docv:"B"
           ~doc:"Execution backend: $(b,sim) (discrete-event simulator, \
                 virtual time) or $(b,shm) (real OCaml domains, wall time).")

let backend_name = function `Sim -> "sim" | `Shm -> "shm"

(* which network model the simulator charges communication under; parsed
   once by Cmdliner so a bad spec is a usage error, not a runtime one *)
let net_conv =
  let parse s =
    match Netmodel.of_spec s with Ok n -> Ok n | Error e -> Error (`Msg e)
  in
  let print ppf n = Format.pp_print_string ppf (Netmodel.model_id n) in
  Arg.conv ~docv:"MODEL" (parse, print)

let net_arg =
  Arg.(value
       & opt net_conv Netmodel.fast_ethernet_cluster
       & info [ "net" ] ~docv:"MODEL"
           ~doc:"Simulator network model: $(b,alpha-beta) (every concurrent \
                 transfer gets full bandwidth; the default) or \
                 $(b,contended[:key=value,…]) with per-rank NIC lanes and \
                 FIFO serialisation. Keys: $(b,snd)/$(b,rcv) (lane counts, \
                 default 1), $(b,lanes) (sets both), $(b,uplink) (shared \
                 egress cap, bytes/s), $(b,bw) (wire bytes/s), $(b,lat) \
                 (seconds). Sim backend only; queueing is charged \
                 explicitly and shows up as nic-queue time in \
                 $(b,analyze).")

(* which tile-execution engine runs the data movement and arithmetic;
   only meaningful where real data flows (simulate --full, trace, shm) *)
let walker_arg =
  Arg.(value
       & opt
           (enum
              [ ("reference", Walker.Reference);
                ("strength", Walker.Strength_reduced);
                ("fast", Walker.Fastpath);
                ("native", Walker.Native) ])
           Walker.Fastpath
       & info [ "walker" ] ~docv:"W"
           ~doc:"Tile-execution engine: $(b,reference) (per-point oracle), \
                 $(b,strength) (strength-reduced rows), $(b,fast) \
                 (strength-reduced + contiguous-row blits and unrolled row \
                 bodies; the default) or $(b,native) (row bodies compiled \
                 to machine code through the system C compiler at plan \
                 time; falls back to $(b,fast) with a notice when no \
                 compiler is available). All four produce bit-identical \
                 results.")

(* when the native walker cannot actually run natively, say so once on
   stderr (and record the reason in exported metadata) instead of
   silently timing the fast path *)
let native_fallback ?inner ~plan ~kernel ~check walker =
  match walker with
  | Walker.Native -> (
    if check then Some "check mode validates LDS reads in OCaml"
    else
      match Tiles_runtime.Native_kernel.build ?inner ~plan ~kernel () with
      | Ok _ -> None
      | Error reason -> Some reason)
  | _ -> None

let warn_native_fallback = function
  | Some reason ->
    Printf.eprintf
      "tilec: warning: native walker unavailable (%s); using the fast \
       walker\n%!"
      reason
  | None -> ()

let check_reads_arg =
  Arg.(value & flag & info [ "check-reads" ]
         ~doc:"Validate every LDS read against NaN poisoning even in the \
               fast walkers (the reference walker always validates).")

(* the walker's inner subtile shape, e.g. --inner 4,16,16; parsed by
   Cmdliner so a malformed shape is a usage error *)
let inner_conv =
  let parse s =
    match
      List.map
        (fun p -> int_of_string (String.trim p))
        (String.split_on_char ',' (String.trim s))
    with
    | exception _ ->
      Error (`Msg "expected comma-separated integers, e.g. 4,16,16")
    | [] -> Error (`Msg "empty inner subtile shape")
    | xs when List.exists (fun x -> x < 1) xs ->
      Error (`Msg "inner subtile extents must be >= 1")
    | xs -> Ok (Array.of_list xs)
  in
  let print ppf b =
    Format.pp_print_string ppf
      (String.concat "," (List.map string_of_int (Array.to_list b)))
  in
  Arg.conv ~docv:"B,B,…" (parse, print)

let inner_arg =
  Arg.(value & opt (some inner_conv) None & info [ "inner" ] ~docv:"B,B,…"
         ~doc:"Walk each rank tile as a lexicographic sequence of \
               cache-resident subtiles of this shape (TTIS extents, one \
               per dimension, clamped to the tile box). Results and \
               message sets are bit-identical to the unblocked walk — \
               only intra-tile locality changes, so only wall-clock \
               backends (shm, simulate --full wall time) speed up. The \
               reference walker ignores it.")

let run_meta inst ~variant ~xyz:(x, y, z) ~nprocs ~backend ~overlap
    ?(net = Netmodel.fast_ethernet_cluster) ?(walker = Walker.Fastpath)
    ?walker_fallback ?inner ~size1 ~size2 () =
  Tiles_obs.Runmeta.make ~app:inst.app_name ~variant ~size1 ~size2
    ~tile:(x, y, z) ~nprocs ~backend:(backend_name backend) ~overlap
    ~netmodel:(match backend with
      | `Sim -> Netmodel.model_id net
      | `Shm -> "-")
    ~walker:(Walker.variant_to_string walker) ?walker_fallback ?inner ()

(* ---------------- subcommands ---------------- *)

let plan_cmd =
  let run app size1 size2 variant xyz =
    guard @@ fun () ->
    let _, plan = build_plan app size1 size2 variant xyz in
    print_string (Plan.summary plan);
    Printf.printf "  wavefront steps   : %d\n" (Schedule.steps plan);
    Printf.printf "  t(j_max)          : %d\n" (Schedule.last_point_step plan)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Derive and print the parallelisation plan.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg $ variant_arg $ xyz_args)

let cone_cmd =
  let run app size1 size2 =
    guard @@ fun () ->
    let inst = instance app ~size1 ~size2 in
    let cone = Nest.tiling_cone inst.nest in
    Printf.printf "dependence columns: %s\n"
      (Format.asprintf "%a" Tiles_loop.Dependence.pp inst.nest.Nest.deps);
    Printf.printf "tiling cone extreme rays:\n";
    List.iter
      (fun r -> Printf.printf "  %s\n" (Tiles_util.Vec.to_string r))
      (Tiles_poly.Cone.extreme_rays cone)
  in
  Cmd.v (Cmd.info "cone" ~doc:"Print the algorithm's tiling cone.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg)

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output file (stdout if absent).")

let emit gen =
  fun app size1 size2 variant xyz output ->
    guard @@ fun () ->
    let inst, plan = build_plan app size1 size2 variant xyz in
    let src = gen inst plan in
    match output with
    | None -> print_string src
    | Some path ->
      let oc = open_out path in
      output_string oc src;
      close_out oc;
      Printf.eprintf "wrote %s\n" path

let emit_mpi_cmd =
  let run =
    emit (fun inst plan ->
        Tiles_codegen.Mpigen.generate ~plan ~kernel:inst.ckernel
          ~reads:inst.creads ?skew:inst.skew ())
  in
  Cmd.v
    (Cmd.info "emit-mpi" ~doc:"Generate the data-parallel MPI C program.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg $ variant_arg $ xyz_args
          $ output_arg)

let emit_pseq_cmd =
  let run app variant xyz output =
    guard @@ fun () ->
    (* sizes are irrelevant for the parametric generator; use small
       placeholders for the app instance *)
    let inst = instance app ~size1:8 ~size2:8 in
    let (x, y, z) = xyz in
    let tiling = inst.tiling_of variant ~x ~y ~z in
    let src =
      Tiles_codegen.Pseqgen.generate ~pspace:(inst.pspace ()) ~tiling
        ~kernel:inst.ckernel ~reads:inst.creads ?skew:inst.skew ()
    in
    match output with
    | None -> print_string src
    | Some path ->
      let oc = open_out path in
      output_string oc src;
      close_out oc;
      Printf.eprintf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "emit-pseq"
       ~doc:"Generate the parametric sequential tiled C program (problem \
             sizes become command-line arguments of the emitted binary).")
    Term.(const run $ app_arg $ variant_arg $ xyz_args $ output_arg)

let emit_seq_cmd =
  let run =
    emit (fun inst plan ->
        Tiles_codegen.Seqgen.generate ~plan ~kernel:inst.ckernel
          ~reads:inst.creads ?skew:inst.skew ())
  in
  Cmd.v
    (Cmd.info "emit-seq" ~doc:"Generate the sequential tiled C program.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg $ variant_arg $ xyz_args
          $ output_arg)

let simulate_cmd =
  let full_arg =
    Arg.(value & flag & info [ "full" ]
           ~doc:"Run the real arithmetic and verify against sequential \
                 execution (slower).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "utilisation" ]
           ~doc:"Trace the run and print the per-rank busy/wait breakdown.")
  in
  let overlap_arg =
    Arg.(value & flag & info [ "overlap" ]
           ~doc:"Use non-blocking (overlapped) sends (the paper's future-work \
                 schedule).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the traced run as Chrome trace-event JSON to $(docv) \
                 (open in chrome://tracing or Perfetto).")
  in
  let run app size1 size2 variant xyz full trace overlap trace_out walker
      check_reads inner net =
    guard @@ fun () ->
    let inst, plan = build_plan app size1 size2 variant xyz in
    let mode = if full then Executor.Full else Executor.Timing in
    let trace = trace || trace_out <> None in
    let fallback =
      native_fallback ?inner ~plan ~kernel:inst.kernel ~check:check_reads
        walker
    in
    warn_native_fallback fallback;
    let r =
      Executor.run ~walker ~check:check_reads ?inner ~mode ~overlap ~trace
        ~plan ~kernel:inst.kernel ~net ()
    in
    Printf.printf "app %s (%s), %d processes, %d tiles, %d points\n"
      inst.app_name variant (Plan.nprocs plan) r.Executor.tiles_executed
      r.Executor.points_computed;
    Printf.printf "simulated time %.6f s, modelled sequential %.6f s, \
                   speedup %.2f\n"
      r.Executor.stats.Sim.completion r.Executor.seq_modelled
      r.Executor.speedup;
    Printf.printf "%d messages, %d bytes\n" r.Executor.stats.Sim.messages
      r.Executor.stats.Sim.bytes;
    if r.Executor.stats.Sim.queue_seconds > 0. then
      Printf.printf "nic/uplink queueing %.6f s total across ranks\n"
        r.Executor.stats.Sim.queue_seconds;
    if full then begin
      let seq = Seq_exec.run ~space:inst.nest.Nest.space ~kernel:inst.kernel () in
      let err =
        match r.Executor.grid with
        | Some g -> Grid.max_abs_diff g seq inst.nest.Nest.space
        | None -> infinity
      in
      Printf.printf "max |parallel - sequential| = %g\n" err
    end;
    if trace then begin
      let u = Tiles_mpisim.Trace.utilisation r.Executor.stats in
      Printf.printf "machine efficiency %.0f%%\n"
        (100. *. Tiles_mpisim.Trace.efficiency r.Executor.stats);
      Array.iteri
        (fun rank x ->
          Printf.printf
            "  rank %-3d compute %6.2fms  send %6.2fms  wait %6.2fms  idle \
             %6.2fms\n"
            rank
            (1e3 *. x.Tiles_mpisim.Trace.compute)
            (1e3 *. x.Tiles_mpisim.Trace.send)
            (1e3 *. x.Tiles_mpisim.Trace.wait)
            (1e3 *. x.Tiles_mpisim.Trace.idle))
        u
    end;
    match trace_out with
    | None -> ()
    | Some path ->
      Chrome.write
        ~process_name:(Printf.sprintf "tilec %s (sim)" inst.app_name)
        ~meta:(run_meta inst ~variant ~xyz ~nprocs:(Plan.nprocs plan)
                 ~backend:`Sim ~overlap ~net ~walker
                 ?walker_fallback:fallback ?inner ~size1 ~size2 ())
        ~nprocs:(Plan.nprocs plan) ~path r.Executor.stats.Sim.trace;
      Printf.eprintf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Execute the plan on the simulated cluster.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg $ variant_arg $ xyz_args
          $ full_arg $ trace_arg $ overlap_arg $ trace_out_arg $ walker_arg
          $ check_reads_arg $ inner_arg $ net_arg)

let trace_cmd =
  let out_arg =
    Arg.(value & opt string "trace.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"Chrome trace-event JSON output path.")
  in
  let svg_arg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE"
           ~doc:"Also render the per-rank timeline as SVG to $(docv).")
  in
  let overlap_arg =
    Arg.(value & flag & info [ "overlap" ]
           ~doc:"Run the §5 overlapped schedule: pre-posted receives, \
                 non-blocking sends (sim) / a bounded per-rank send stage \
                 (shm).")
  in
  let run app size1 size2 variant xyz backend out svg overlap walker
      check_reads inner net =
    guard @@ fun () ->
    let inst, plan = build_plan app size1 size2 variant xyz in
    let nprocs = Plan.nprocs plan in
    let fallback =
      native_fallback ?inner ~plan ~kernel:inst.kernel ~check:check_reads
        walker
    in
    warn_native_fallback fallback;
    let spans, stats =
      match backend with
      | `Sim ->
        let r =
          Executor.run ~walker ~check:check_reads ?inner ~mode:Executor.Full
            ~overlap ~trace:true ~plan ~kernel:inst.kernel ~net ()
        in
        (r.Executor.stats.Sim.trace,
         Tiles_mpisim.Trace.aggregate r.Executor.stats)
      | `Shm ->
        let r =
          Shm_executor.run ~walker ~check:check_reads ?inner ~trace:true
            ~overlap ~plan ~kernel:inst.kernel ()
        in
        Printf.printf "max |parallel - sequential| = %g\n"
          r.Shm_executor.max_abs_err;
        (r.Shm_executor.trace, r.Shm_executor.stats)
    in
    let backend_str = backend_name backend in
    Chrome.write
      ~process_name:(Printf.sprintf "tilec %s (%s)" inst.app_name backend_str)
      ~meta:(run_meta inst ~variant ~xyz ~nprocs ~backend ~overlap ~net
               ~walker ?walker_fallback:fallback ?inner ~size1 ~size2 ())
      ~nprocs ~path:out spans;
    Printf.eprintf "wrote %s\n" out;
    (match svg with
    | None -> ()
    | Some path ->
      Tiles_viz.Svg.save
        (Tiles_viz.Figures.timeline
           ~title:(Printf.sprintf "%s on %s" inst.app_name backend_str)
           ~nprocs ~completion:stats.Stats.completion spans)
        path;
      Printf.eprintf "wrote %s\n" path);
    print_string (Stats.summary stats)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the plan traced and export Chrome trace-event JSON (plus \
             an optional SVG timeline) with aggregate statistics.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg $ variant_arg $ xyz_args
          $ backend_arg $ out_arg $ svg_arg $ overlap_arg $ walker_arg
          $ check_reads_arg $ inner_arg $ net_arg)

let analyze_cmd =
  let app_opt_arg =
    Arg.(value & opt (some string) None & info [ "app" ] ~docv:"NAME"
           ~doc:"Algorithm to run and analyze: sor, jacobi or adi \
                 (alternative to $(b,--from)).")
  in
  let from_arg =
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"FILE"
           ~doc:"Analyze a previously written Chrome trace-event artifact \
                 (as produced by $(b,tilec trace) or $(b,tilec analyze \
                 --out)) instead of running; message edges are recovered \
                 from its flow events.")
  in
  let stream_arg =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Trace with the bounded-memory streaming recorder: exact \
                 per-kind totals plus the longest waits, O(ranks) memory \
                 at any rank count — but no retained spans, so no exact \
                 critical path.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the analysis as JSON instead of text.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the trace as Chrome trace-event JSON including a \
                 flow-event pair for every message edge (viewers draw the \
                 send→recv arrows; $(b,--from) reads it back).")
  in
  let svg_arg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE"
           ~doc:"Render the per-rank timeline as SVG with the critical \
                 path highlighted.")
  in
  let top_arg =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K"
           ~doc:"Laggard ranks listed in the breakdown.")
  in
  let overlap_arg =
    Arg.(value & flag & info [ "overlap" ]
           ~doc:"Analyze the §5 overlapped schedule instead of the \
                 blocking one.")
  in
  let span_json (s : Span.t) =
    Tiles_util.Json.Obj
      [
        ("rank", Tiles_util.Json.Int s.Span.rank);
        ("t0_s", Tiles_util.Json.Float s.Span.t0);
        ("t1_s", Tiles_util.Json.Float s.Span.t1);
        ("seconds", Tiles_util.Json.Float (Span.duration s));
      ]
  in
  (* streaming analysis: exact totals + the bounded wait reservoir *)
  let report_streaming ~json stats rc =
    let waits = Recorder.longest_waits rc in
    if json then
      print_endline
        (Tiles_util.Json.to_string
           (Tiles_util.Json.Obj
              [
                ("stats", Stats.to_json stats);
                ("longest_waits", Tiles_util.Json.List (List.map span_json waits));
              ]))
    else begin
      print_string (Stats.summary stats);
      if waits <> [] then begin
        print_string "longest waits:\n";
        List.iter
          (fun (s : Span.t) ->
            Printf.printf "  rank %4d  [%10.6f, %10.6f]  %.6f s\n" s.Span.rank
              s.Span.t0 s.Span.t1 (Span.duration s))
          waits
      end
    end
  in
  (* exact analysis: replay the event DAG and walk the critical path *)
  let report_exact ~json ~top ~title ~nprocs ~completion ?meta ~out ~svg
      ~edges spans =
    if spans = [] then
      failwith "analyze: the run retained no spans (nothing to analyze)";
    let report = Critpath.analyze ~nprocs ~edges ?completion spans in
    if json then
      print_endline (Tiles_util.Json.to_string (Critpath.to_json report))
    else print_string (Critpath.summary ~top report);
    (match out with
    | None -> ()
    | Some path ->
      Chrome.write ~process_name:("tilec analyze " ^ title) ?meta ~edges
        ~nprocs ~path spans;
      Printf.eprintf "wrote %s\n" path);
    match svg with
    | None -> ()
    | Some path ->
      Tiles_viz.Svg.save
        (Tiles_viz.Figures.timeline ~title ~path:report.Critpath.segments
           ~nprocs ~completion:report.Critpath.completion spans)
        path;
      Printf.eprintf "wrote %s\n" path
  in
  let run app size1 size2 variant xyz backend overlap from stream json out svg
      top inner net =
    guard @@ fun () ->
    if stream && (out <> None || svg <> None || from <> None) then
      failwith
        "analyze: --stream retains no spans; --out/--svg/--from need the \
         exact (retained) trace";
    match from with
    | Some path -> (
      match Chrome.read ~path with
      | Error e -> failwith e
      | Ok a ->
        report_exact ~json ~top ~title:(Filename.basename path)
          ~nprocs:a.Chrome.nprocs ~completion:None ~out ~svg
          ~edges:a.Chrome.edges a.Chrome.spans)
    | None -> (
      let app =
        match app with
        | Some a -> a
        | None -> failwith "analyze: pass --app NAME or --from FILE"
      in
      let inst, plan = build_plan app size1 size2 variant xyz in
      let nprocs = Plan.nprocs plan in
      let backend_str = backend_name backend in
      let title = Printf.sprintf "%s on %s" inst.app_name backend_str in
      let meta =
        run_meta inst ~variant ~xyz ~nprocs ~backend ~overlap ~net ?inner
          ~size1 ~size2 ()
      in
      match backend with
      | `Sim ->
        let rc =
          Recorder.create
            ~mode:(if stream then Recorder.Streaming else Recorder.Retain)
            ~trace:true
            ~clock:(fun () -> 0.)
            ~nprocs ()
        in
        let r =
          Executor.run ?inner ~mode:Executor.Timing ~overlap ~recorder:rc
            ~plan ~kernel:inst.kernel ~net ()
        in
        let completion = r.Executor.stats.Sim.completion in
        if stream then
          let stats =
            Stats.of_kind_seconds ~completion ~nprocs
              ~messages:(Recorder.messages rc) ~bytes:(Recorder.bytes rc)
              ~max_inflight_bytes:(Recorder.max_inflight_bytes rc)
              ~rank_messages:(Recorder.rank_messages rc)
              ~rank_bytes:(Recorder.rank_bytes rc)
              ~queue_seconds:(Recorder.queue_seconds rc)
              (Recorder.kind_seconds rc)
          in
          report_streaming ~json stats rc
        else
          report_exact ~json ~top ~title ~nprocs ~completion:(Some completion)
            ~meta ~out ~svg ~edges:r.Executor.stats.Sim.edges
            r.Executor.stats.Sim.trace
      | `Shm ->
        let rc =
          Recorder.create
            ~mode:(if stream then Recorder.Streaming else Recorder.Retain)
            ~trace:true ~nprocs ()
        in
        let r =
          Shm_executor.run ?inner ~recorder:rc ~overlap ~plan
            ~kernel:inst.kernel ()
        in
        Printf.eprintf "max |parallel - sequential| = %g\n"
          r.Shm_executor.max_abs_err;
        if stream then
          let stats =
            Stats.of_kind_seconds ~completion:r.Shm_executor.wall_seconds
              ~nprocs ~messages:(Recorder.messages rc)
              ~bytes:(Recorder.bytes rc)
              ~max_inflight_bytes:(Recorder.max_inflight_bytes rc)
              ~rank_messages:(Recorder.rank_messages rc)
              ~rank_bytes:(Recorder.rank_bytes rc)
              (Recorder.kind_seconds rc)
          in
          report_streaming ~json stats rc
        else
          report_exact ~json ~top ~title ~nprocs ~completion:None ~meta ~out
            ~svg ~edges:r.Shm_executor.edges r.Shm_executor.trace)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Causal critical-path analysis of a traced run: the true \
             path through compute/pack/send/flight/wait/unpack with \
             per-kind and per-phase attribution, laggard ranks and CPM \
             slack. Reads a Chrome artifact with $(b,--from) or runs an \
             app fresh; $(b,--stream) trades the exact path for \
             O(ranks)-memory aggregation at thousand-rank scale.")
    Term.(const run $ app_opt_arg $ size1_arg $ size2_arg $ variant_arg
          $ xyz_args $ backend_arg $ overlap_arg $ from_arg $ stream_arg
          $ json_arg $ out_arg $ svg_arg $ top_arg $ inner_arg $ net_arg)

let tune_cmd =
  let module Tune = Tiles_tune.Tune in
  let module Predictor = Tiles_tune.Predictor in
  let module Cache = Tiles_tune.Cache in
  let procs_arg =
    Arg.(value & opt int 16 & info [ "procs" ] ~docv:"P"
           ~doc:"Processor budget (candidate plans use at most P processes).")
  in
  let factors_arg =
    Arg.(value & opt (list int) [ 2; 4; 6; 8; 10; 16; 25 ]
         & info [ "factors" ] ~docv:"F,F,…"
             ~doc:"Tile factors swept along the mapping dimension.")
  in
  let top_arg =
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"K"
           ~doc:"Candidates surviving predictor pruning into exact \
                 simulation.")
  in
  let workers_arg =
    Arg.(value & opt int Tune.default_options.Tune.workers
         & info [ "workers" ] ~docv:"W"
             ~doc:"Domains used for parallel candidate evaluation.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"Memoize exact scores in $(docv) so repeated tunes are \
                 incremental.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the result as JSON.")
  in
  let overlap_arg =
    Arg.(value & flag & info [ "overlap" ]
           ~doc:"Tune for the §5 overlapped schedule (either backend).")
  in
  let m_arg =
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"DIM"
           ~doc:"Restrict the mapping dimension (default: search all).")
  in
  let run app size1 size2 procs factors top workers cache json overlap backend
      m inner net =
    guard @@ fun () ->
    let inst = instance app ~size1 ~size2 in
    let options =
      {
        Tune.procs;
        factors;
        top_k = top;
        workers;
        cache_dir = cache;
        overlap;
        backend = (match backend with `Sim -> Tune.Sim | `Shm -> Tune.Shm);
        mapping_dims = Option.map (fun m -> [ m ]) m;
        inner =
          (match inner with
          | Some b -> Tune.Inner_fixed (Some b)
          | None -> Tune.Inner_search);
      }
    in
    let r =
      Tune.search ~options ~nest:inst.nest ~kernel:inst.kernel ~net ()
    in
    if json then
      print_endline (Tiles_util.Json.to_string (Tune.result_json r))
    else begin
      Printf.printf
        "tune %s (%s%s): %d candidates generated, %d feasible, %d measured \
         (%d cache hit%s)\n"
        inst.app_name (backend_name backend)
        (if overlap then ", overlapped" else "")
        r.Tune.generated r.Tune.feasible
        (List.length r.Tune.simulated) r.Tune.cache_hits
        (if r.Tune.cache_hits = 1 then "" else "s");
      let t =
        Tiles_util.Table.create
          ~header:
            [ "candidate"; "procs"; "tile"; "steps"; "predicted ms";
              "measured ms"; "speedup"; "cache" ]
      in
      List.iter
        (fun (s : Tune.scored) ->
          let sim, spd =
            match s.Tune.score with
            | Some sc ->
              ( Printf.sprintf "%.3f" (1e3 *. sc.Cache.completion),
                Printf.sprintf "%.2f" sc.Cache.speedup )
            | None -> ("-", "-")
          in
          Tiles_util.Table.add_row t
            [
              Tiles_tune.Candidate.label s.Tune.cand;
              string_of_int s.Tune.nprocs;
              string_of_int s.Tune.tile_size;
              string_of_int s.Tune.predicted.Predictor.steps;
              Printf.sprintf "%.3f" (1e3 *. s.Tune.predicted.Predictor.total);
              sim;
              spd;
              (if s.Tune.from_cache then "hit" else "");
            ])
        r.Tune.simulated;
      Tiles_util.Table.print t;
      let best = r.Tune.best in
      Printf.printf "\nbest: %s\n" (Tiles_tune.Candidate.label best.Tune.cand);
      (match best.Tune.inner with
      | Some b ->
        Printf.printf "inner subtile: %s (predicted locality %.2fx)\n"
          (String.concat "x" (List.map string_of_int (Array.to_list b)))
          best.Tune.predicted.Predictor.inner_locality
      | None -> Printf.printf "inner subtile: none (unblocked walk)\n");
      (match r.Tune.inner_residual with
      | Some e ->
        Printf.printf
          "inner locality residual: predicted %.2fx, observed %.2fx\n"
          e.Tiles_obs.Residual.predicted e.Tiles_obs.Residual.observed
      | None -> ());
      let plan = Tune.plan_of ~nest:inst.nest best.Tune.cand in
      print_string (Plan.summary plan)
    end
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Search tile shape, tile size, mapping dimension and the \
             walker's inner subtile shape for the fastest plan under a \
             processor budget.")
    Term.(const run $ app_arg $ size1_arg $ size2_arg $ procs_arg
          $ factors_arg $ top_arg $ workers_arg $ cache_arg $ json_arg
          $ overlap_arg $ backend_arg $ m_arg $ inner_arg $ net_arg)

let perf_cmd =
  let module Metric = Tiles_obs.Metric in
  let module Baseline = Tiles_obs.Baseline in
  let module Residual = Tiles_obs.Residual in
  let module Runmeta = Tiles_obs.Runmeta in
  let repeats_arg =
    Arg.(value & opt int 5 & info [ "repeats" ] ~docv:"N"
           ~doc:"Measured runs folded into each field's distribution.")
  in
  let warmup_arg =
    Arg.(value & opt int 1 & info [ "warmup" ] ~docv:"W"
           ~doc:"Runs executed and discarded before measuring.")
  in
  let record_arg =
    Arg.(value & flag & info [ "record" ]
           ~doc:"Write the measured distributions as the committed baseline \
                 for this configuration.")
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Compare against the recorded baseline and exit non-zero on \
                 a regression, counter drift or metadata mismatch.")
  in
  let dir_arg =
    Arg.(value & opt string "perf/baselines" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Baseline directory.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the result as JSON.")
  in
  let counters_arg =
    Arg.(value & flag & info [ "counters-only" ]
           ~doc:"Check only the deterministic message/byte counters, not \
                 timings — for the wall-clock shm backend whose times \
                 depend on the host.")
  in
  let inflate_arg =
    Arg.(value & opt float 1.0 & info [ "inflate" ] ~docv:"F"
           ~doc:"Scale the sim network model's latency and per-point \
                 compute cost by $(docv) — a synthetic slowdown for \
                 exercising the regression gate. Sim backend only.")
  in
  let overlap_arg =
    Arg.(value & flag & info [ "overlap" ]
           ~doc:"Measure the §5 overlapped schedule (either backend); \
                 baselines get an $(b,-overlap) file-name suffix.")
  in
  let run app size1 size2 variant xyz backend repeats warmup record check dir
      json counters_only inflate overlap walker inner net_base =
    (* --inflate scales the simulator's network model; the shm backend has
       no model to scale, so the combination is a usage error, not a
       silently ignored flag *)
    if backend = `Shm && inflate <> 1.0 then
      `Error
        ( true,
          "--inflate scales the sim network model and does not apply to the \
           shm backend" )
    else
      `Ok
        ( guard @@ fun () ->
    if repeats < 1 then failwith "perf: --repeats must be >= 1";
    if warmup < 0 then failwith "perf: --warmup must be >= 0";
    if record && check then failwith "perf: --record and --check conflict";
    let inst, plan = build_plan app size1 size2 variant xyz in
    let nprocs = Plan.nprocs plan in
    let fallback =
      native_fallback ?inner ~plan ~kernel:inst.kernel ~check:false walker
    in
    (* the sim backend times virtual events and never runs a walker, so
       a missing C compiler is only worth a warning where it changes
       what gets measured *)
    if backend = `Shm then warn_native_fallback fallback;
    let net =
      if inflate = 1.0 then net_base
      else
        { net_base with
          Netmodel.latency = net_base.Netmodel.latency *. inflate;
          flop_time = net_base.Netmodel.flop_time *. inflate }
    in
    let last_speedup = ref nan in
    let run_once () =
      match backend with
      | `Sim ->
        let r =
          Executor.run ~mode:Executor.Timing ~overlap ~trace:true ~plan
            ~kernel:inst.kernel ~net ()
        in
        last_speedup := r.Executor.speedup;
        Tiles_mpisim.Trace.aggregate r.Executor.stats
      | `Shm ->
        (* the sim backend measures in Timing mode (virtual time, no data
           movement), so [walker] only matters here *)
        let r =
          Shm_executor.run ~walker ?inner ~trace:true ~overlap ~plan
            ~kernel:inst.kernel ()
        in
        last_speedup := r.Shm_executor.wall_speedup;
        r.Shm_executor.stats
    in
    let runs = List.init (warmup + repeats) (fun _ -> run_once ()) in
    let stats = List.nth runs (List.length runs - 1) in
    let dist = Stats.distributions ~warmup runs in
    let meta =
      run_meta inst ~variant ~xyz ~nprocs ~backend ~overlap ~net ~walker
        ?walker_fallback:fallback ?inner ~size1 ~size2 ()
    in
    let current = Baseline.make ~meta ~stats ~timings:dist in
    let path = Baseline.default_path ~dir ~meta in
    (* the analytic models' drift from this observation (sim only: the
       models predict virtual time, not the host's wall clock) *)
    let residuals () =
      match backend with
      | `Shm -> []
      | `Sim ->
        let module Predictor = Tiles_tune.Predictor in
        let module Model = Tiles_runtime.Model in
        let width = inst.kernel.Tiles_runtime.Kernel.width in
        let observed =
          [
            ("completion_s", stats.Stats.completion);
            ("speedup", !last_speedup);
          ]
        in
        let label = Printf.sprintf "%s/%s" inst.app_name variant in
        let entries source fields =
          List.filter_map
            (fun (field, predicted) ->
              match List.assoc_opt field observed with
              | Some obs ->
                Some
                  { Residual.label; source; field; predicted; observed = obs }
              | None -> None)
            fields
        in
        let p = Predictor.predict ~width plan ~net in
        let r = Predictor.refine ~width plan ~net in
        let m = Model.predict plan ~net in
        entries (Predictor.source p) (Predictor.fields p)
        @ entries (Predictor.source r) (Predictor.fields r)
        @ entries "model" (Model.fields m)
    in
    if record then begin
      (if not (Sys.file_exists dir) then
         (* mkdir -p: create each missing prefix *)
         let rec mk d =
           if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
             mk (Filename.dirname d);
             Sys.mkdir d 0o755
           end
         in
         mk dir);
      Baseline.save current ~path;
      if json then
        print_endline (Tiles_util.Json.to_string (Baseline.to_json current))
      else Printf.printf "recorded %s (%d measured runs, %d warmup)\n" path
          repeats warmup
    end
    else if check then begin
      match Baseline.load ~path with
      | Error e -> failwith ("perf --check: " ^ e)
      | Ok baseline ->
        let verdict =
          if counters_only then
            Baseline.compare ~rel_threshold:infinity
              ~exact:[ "messages"; "bytes" ] ~baseline current
          else
            Baseline.compare
              ?exact:(match backend with
                | `Shm ->
                  (* the in-flight high-water mark depends on thread
                     interleaving, so it is not exact on shm *)
                  Some [ "messages"; "bytes" ]
                | `Sim -> None)
              ~baseline current
        in
        if json then
          print_endline
            (Tiles_util.Json.to_string (Baseline.verdict_to_json verdict))
        else begin
          Printf.printf "checking %s against %s\n"
            (Printf.sprintf "%s/%s (%s)" inst.app_name variant
               (backend_name backend))
            path;
          print_string (Baseline.report verdict)
        end;
        if not verdict.Baseline.ok then exit exit_regression
    end
    else begin
      let res = residuals () in
      if json then
        print_endline
          (Tiles_util.Json.to_string
             (Tiles_util.Json.Obj
                [
                  ("metadata", Runmeta.to_json meta);
                  ("baseline", Baseline.to_json current);
                  ("residuals", Residual.to_json res);
                ]))
      else begin
        Printf.printf "perf %s/%s (%s): %d measured run%s, %d warmup\n"
          inst.app_name variant (backend_name backend) repeats
          (if repeats = 1 then "" else "s")
          warmup;
        print_string (Stats.summary ~dist stats);
        if res <> [] then print_string (Residual.report res)
      end
    end )
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Run a configuration repeatedly, report distribution statistics \
             (mean, stddev, percentiles) of every timed field, and record or \
             check a persistent performance baseline.")
    Term.(ret
            (const run $ app_arg $ size1_arg $ size2_arg $ variant_arg
             $ xyz_args $ backend_arg $ repeats_arg $ warmup_arg $ record_arg
             $ check_arg $ dir_arg $ json_arg $ counters_arg $ inflate_arg
             $ overlap_arg $ walker_arg $ inner_arg $ net_arg))

let serve_cmd =
  let module Server = Tiles_serve.Server in
  let capacity_arg =
    Arg.(value & opt int Server.default_config.Server.capacity
         & info [ "capacity" ] ~docv:"K"
             ~doc:"Admission queue slots; request K+1 (with every worker \
                   busy) is rejected with a structured reason, never \
                   queued unboundedly.")
  in
  let workers_arg =
    Arg.(value & opt int Server.default_config.Server.workers
         & info [ "workers" ] ~docv:"W"
             ~doc:"Worker pool shards (domains). The pool is the only \
                   source of job parallelism; must be >= 1.")
  in
  let cache_capacity_arg =
    Arg.(value & opt int Server.default_config.Server.plan_cache_capacity
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Compiled plans retained in the content-addressed LRU \
                   cache.")
  in
  let tune_cache_arg =
    Arg.(value & opt (some string) None & info [ "tune-cache" ] ~docv:"DIR"
           ~doc:"Share an on-disk tune score memo between tune jobs (same \
                 format as $(b,tilec tune --cache)).")
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix domain socket at $(docv) instead of \
                 stdin/stdout; each connection is a tenant sharing the one \
                 queue, pool and cache.")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"On shutdown, also write the final metrics snapshot, \
                 indented, to $(docv).")
  in
  let run capacity workers cache_capacity tune_cache socket metrics_out net =
    guard @@ fun () ->
    if capacity < 1 then failwith "serve: --capacity must be >= 1";
    if workers < 1 then failwith "serve: --workers must be >= 1";
    if cache_capacity < 1 then failwith "serve: --cache-capacity must be >= 1";
    let config =
      {
        Server.capacity;
        workers;
        plan_cache_capacity = cache_capacity;
        tune_cache_dir = tune_cache;
        net;
      }
    in
    match socket with
    | Some path -> Server.serve_socket ~config ?metrics_out ~path ()
    | None -> Server.serve_channels ~config ?metrics_out stdin stdout
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent multi-tenant compile service: line-delimited \
             JSON requests on stdin (or $(b,--socket)), one JSON response \
             per job, with admission control, request coalescing, a shared \
             compiled-plan cache and aggregate metrics ($(b,{\"op\":\
             \"metrics\"}) snapshots, $(b,{\"op\":\"shutdown\"}) stops).")
    Term.(const run $ capacity_arg $ workers_arg $ cache_capacity_arg
          $ tune_cache_arg $ socket_arg $ metrics_out_arg $ net_arg)

let () =
  let doc = "compiler for tiled iteration spaces on clusters" in
  let info = Cmd.info "tilec" ~version:Tiles_obs.Runmeta.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ plan_cmd; cone_cmd; emit_mpi_cmd; emit_seq_cmd; emit_pseq_cmd;
            simulate_cmd; trace_cmd; analyze_cmd; tune_cmd; perf_cmd;
            serve_cmd ]))
