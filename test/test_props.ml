(* Randomised cross-layer property tests: random tiling transformations,
   iteration spaces, dependence sets and kernels, checking the global
   invariants the framework's correctness rests on. *)

module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Tiling = Tiles_core.Tiling
module Ttis = Tiles_core.Ttis
module Tile_space = Tiles_core.Tile_space
module Plan = Tiles_core.Plan
module Kernel = Tiles_runtime.Kernel
module Grid = Tiles_runtime.Grid
module Seq_exec = Tiles_runtime.Seq_exec
module Executor = Tiles_runtime.Executor
module Netmodel = Tiles_mpisim.Netmodel
module Rat = Tiles_rat.Rat
module Vec = Tiles_util.Vec

let net = Netmodel.fast_ethernet_cluster

(* ---------- random tiling generator ---------- *)

(* A tiling is H = diag(1/v)·H' for a random non-singular integer H' and
   random extents v; construction may fail (singular, stride
   divisibility), in which case we retry. *)
let gen_tiling n =
  QCheck.Gen.(
    let entry = int_range (-2) 3 in
    let rec go attempts =
      if attempts = 0 then return None
      else
        let* rows = list_repeat n (list_repeat n entry) in
        let* v = list_repeat n (int_range 2 6) in
        match
          Tiling.of_rows
            (List.map2
               (fun row vk -> List.map (fun e -> Rat.make e vk) row)
               rows v)
        with
        | t -> return (Some t)
        | exception Invalid_argument _ -> go (attempts - 1)
    in
    go 50)

let arb_tiling n =
  QCheck.make
    ~print:(fun t ->
      match t with
      | Some t -> Tiles_linalg.Ratmat.to_string t.Tiling.h
      | None -> "<none>")
    (gen_tiling n)

let prop_count n =
  QCheck.Test.make ~name:(Printf.sprintf "TTIS count = tile size (n=%d)" n)
    ~count:100 (arb_tiling n) (fun t ->
      match t with
      | None -> QCheck.assume_fail ()
      | Some t -> Ttis.count t = Tiling.tile_size t)

let prop_enumerations_agree n =
  QCheck.Test.make
    ~name:(Printf.sprintf "iter = incremental = bruteforce (n=%d)" n)
    ~count:60 (arb_tiling n) (fun t ->
      match t with
      | None -> QCheck.assume_fail ()
      | Some t ->
        let collect iter =
          let acc = ref [] in
          iter t (fun j' -> acc := Vec.copy j' :: !acc);
          List.rev !acc
        in
        let a = collect Ttis.iter in
        a = collect Ttis.iter_incremental && a = collect Ttis.iter_bruteforce)

let prop_roundtrips n =
  QCheck.Test.make
    ~name:(Printf.sprintf "tile/local/global roundtrips (n=%d)" n)
    ~count:60
    (QCheck.pair (arb_tiling n)
       (QCheck.make QCheck.Gen.(array_size (return n) (int_range (-15) 15))))
    (fun (t, j) ->
      match t with
      | None -> QCheck.assume_fail ()
      | Some t ->
        let tile = Tiling.tile_of t j in
        let j' = Tiling.local_of t ~tile j in
        Ttis.mem t j'
        && Vec.equal j (Tiling.global_of t ~tile j'))

let prop_partition n =
  QCheck.Test.make ~name:(Printf.sprintf "tiles partition J^n (n=%d)" n)
    ~count:25
    (QCheck.pair (arb_tiling n)
       (QCheck.make QCheck.Gen.(list_repeat n (int_range 3 9))))
    (fun (t, extents) ->
      match t with
      | None -> QCheck.assume_fail ()
      | Some t ->
        let space = Polyhedron.box (List.map (fun e -> (0, e)) extents) in
        let ts = Tile_space.make space t in
        let total =
          List.fold_left
            (fun acc s -> acc + Tile_space.tile_iterations ts s)
            0 (Tile_space.candidates ts)
        in
        total = Polyhedron.count_points space)

let prop_slab_count_fast n =
  QCheck.Test.make
    ~name:(Printf.sprintf "fast slab count = enumeration (n=%d)" n)
    ~count:25
    (QCheck.pair (arb_tiling n)
       (QCheck.make QCheck.Gen.(list_repeat n (int_range 3 9))))
    (fun (t, extents) ->
      match t with
      | None -> QCheck.assume_fail ()
      | Some t ->
        let space = Polyhedron.box (List.map (fun e -> (0, e)) extents) in
        let ts = Tile_space.make space t in
        List.for_all
          (fun s ->
            let lo =
              Array.init (Tiling.dim t) (fun k -> t.Tiling.v.(k) / 2)
            in
            let brute = ref 0 in
            Tile_space.iter_slab_points ts ~tile:s ~lo
              (fun ~local:_ ~global:_ -> incr brute);
            !brute = Tile_space.slab_points ts ~tile:s ~lo)
          (Tile_space.candidates ts))

(* ---------- random dependence sets + loc roundtrip ---------- *)

let gen_deps n =
  QCheck.Gen.(
    let* q = int_range 1 3 in
    let* vecs =
      list_repeat q
        (let* v = list_repeat n (int_range 0 1) in
         return (Array.of_list v))
    in
    let vecs = List.filter (fun v -> not (Vec.is_zero v)) vecs in
    if vecs = [] then return None
    else
      match Dependence.of_vectors vecs with
      | d -> return (Some d)
      | exception Invalid_argument _ -> return None)

let prop_loc_roundtrip n =
  QCheck.Test.make ~name:(Printf.sprintf "loc/loc_inv roundtrip (n=%d)" n)
    ~count:30
    (QCheck.pair (arb_tiling n) (QCheck.make (gen_deps n)))
    (fun (t, deps) ->
      match (t, deps) with
      | Some t, Some deps when Tiling.legal_for t deps -> (
        let space = Polyhedron.box (List.init n (fun _ -> (0, 7))) in
        match Nest.make ~name:"rand" ~space ~deps with
        | nest -> (
          match Plan.make nest t with
          | plan ->
            Polyhedron.fold_points space ~init:true ~f:(fun acc j ->
                acc
                &&
                let pid, j'' = Plan.loc plan j in
                Vec.equal j (Plan.loc_inv plan ~pid j''))
          | exception (Invalid_argument _ | Failure _) ->
            QCheck.assume_fail () (* tile too small for the deps *))
        | exception Invalid_argument _ -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

(* ---------- random kernels: parallel = sequential ---------- *)

let gen_kernel_2d =
  QCheck.Gen.(
    let* coeffs = list_repeat 3 (float_bound_inclusive 0.3) in
    let coeffs = Array.of_list coeffs in
    let reads = [ [| 1; 0 |]; [| 0; 1 |]; [| 1; 1 |] ] in
    return
      (Kernel.make ~name:"rand" ~dim:2 ~reads
         ~boundary:(fun j _ ->
           0.5 +. (0.1 *. float_of_int (((j.(0) * 7) + (j.(1) * 3)) mod 11)))
         ~compute:(fun ~read ~j:_ ~out ->
           out.(0) <-
             0.1
             +. (coeffs.(0) *. read 0 0)
             +. (coeffs.(1) *. read 1 0)
             +. (coeffs.(2) *. read 2 0))
         ()))

let prop_executor_equivalence =
  QCheck.Test.make ~name:"random kernel: parallel = sequential" ~count:25
    (QCheck.pair
       (QCheck.make gen_kernel_2d)
       (QCheck.pair (arb_tiling 2)
          (QCheck.make QCheck.Gen.(pair (int_range 6 14) (int_range 6 14)))))
    (fun (kernel, (tiling, (w, h))) ->
      match tiling with
      | Some tiling when Tiling.legal_for tiling (Kernel.deps kernel) -> (
        let space = Polyhedron.box [ (0, w); (0, h) ] in
        let nest = Nest.make ~name:"rand" ~space ~deps:(Kernel.deps kernel) in
        match Plan.make nest tiling with
        | plan ->
          let r = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
          let seq = Seq_exec.run ~space ~kernel () in
          (match r.Executor.grid with
          | Some g -> Grid.max_abs_diff g seq space < 1e-9
          | None -> false)
        | exception (Invalid_argument _ | Failure _) -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

let prop_executor_overlap_equivalence =
  QCheck.Test.make ~name:"random kernel: overlapped = sequential" ~count:15
    (QCheck.pair (QCheck.make gen_kernel_2d) (arb_tiling 2))
    (fun (kernel, tiling) ->
      match tiling with
      | Some tiling when Tiling.legal_for tiling (Kernel.deps kernel) -> (
        let space = Polyhedron.box [ (0, 11); (0, 9) ] in
        let nest = Nest.make ~name:"rand" ~space ~deps:(Kernel.deps kernel) in
        match Plan.make nest tiling with
        | plan ->
          let r =
            Executor.run ~mode:Executor.Full ~overlap:true ~plan ~kernel ~net ()
          in
          let seq = Seq_exec.run ~space ~kernel () in
          (match r.Executor.grid with
          | Some g -> Grid.max_abs_diff g seq space < 1e-9
          | None -> false)
        | exception (Invalid_argument _ | Failure _) -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

(* real domains: the overlapped shm schedule is the same computation as
   the blocking one — bit-identical grids, identical counters (few cases:
   each run spawns one domain per rank, plus senders when overlapped) *)
let prop_shm_overlap_equals_blocking =
  let module Shm = Tiles_runtime.Shm_executor in
  QCheck.Test.make ~name:"random kernel: shm overlapped = shm blocking"
    ~count:8
    (QCheck.pair (QCheck.make gen_kernel_2d) (arb_tiling 2))
    (fun (kernel, tiling) ->
      match tiling with
      | Some tiling when Tiling.legal_for tiling (Kernel.deps kernel) -> (
        let space = Polyhedron.box [ (0, 11); (0, 9) ] in
        let nest = Nest.make ~name:"rand" ~space ~deps:(Kernel.deps kernel) in
        match Plan.make nest tiling with
        | plan ->
          let b = Shm.run ~plan ~kernel () in
          let o = Shm.run ~overlap:true ~plan ~kernel () in
          Grid.max_abs_diff b.Shm.grid o.Shm.grid space = 0.
          && b.Shm.messages = o.Shm.messages
          && b.Shm.bytes = o.Shm.bytes
          && b.Shm.max_abs_err = 0.
          && o.Shm.max_abs_err = 0.
        | exception (Invalid_argument _ | Failure _) -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

let prop_timing_equals_full =
  QCheck.Test.make ~name:"timing mode = full mode virtual times" ~count:20
    (QCheck.pair (QCheck.make gen_kernel_2d) (arb_tiling 2))
    (fun (kernel, tiling) ->
      match tiling with
      | Some tiling when Tiling.legal_for tiling (Kernel.deps kernel) -> (
        let space = Polyhedron.box [ (0, 12); (0, 10) ] in
        let nest = Nest.make ~name:"rand" ~space ~deps:(Kernel.deps kernel) in
        match Plan.make nest tiling with
        | plan ->
          let a = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
          let b = Executor.run ~mode:Executor.Timing ~plan ~kernel ~net () in
          a.Executor.stats.Tiles_mpisim.Sim.completion
          = b.Executor.stats.Tiles_mpisim.Sim.completion
          && a.Executor.points_computed = b.Executor.points_computed
        | exception (Invalid_argument _ | Failure _) -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_props"
    [
      ( "tiling",
        [
          q (prop_count 2); q (prop_count 3);
          q (prop_enumerations_agree 2); q (prop_enumerations_agree 3);
          q (prop_roundtrips 2); q (prop_roundtrips 3);
        ] );
      ( "tile-space",
        [
          q (prop_partition 2); q (prop_partition 3);
          q (prop_slab_count_fast 2); q (prop_slab_count_fast 3);
        ] );
      ("plan", [ q (prop_loc_roundtrip 2); q (prop_loc_roundtrip 3) ]);
      ( "executor",
        [
          q prop_executor_equivalence;
          q prop_executor_overlap_equivalence;
          q prop_shm_overlap_equals_blocking;
          q prop_timing_equals_full;
        ] );
    ]
