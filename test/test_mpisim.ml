module Fbuf = Tiles_util.Fbuf
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel

let net = Netmodel.fast_ethernet_cluster

let eps = 1e-12
let close a b = Float.abs (a -. b) < eps

let test_single_rank_compute () =
  let stats = Sim.run ~nprocs:1 ~net (fun _ -> Sim.Api.compute 1.5) in
  Alcotest.(check bool) "completion" true (close stats.Sim.completion 1.5);
  Alcotest.(check int) "no messages" 0 stats.Sim.messages

let test_ping () =
  (* rank 0 sends 100 floats to rank 1 *)
  let payload_bytes = 8 * 100 in
  let stats =
    Sim.run ~nprocs:2 ~net (fun r ->
        if r = 0 then Sim.Api.send ~dst:1 ~tag:0 (Fbuf.make 100 3.14)
        else begin
          let buf = Sim.Api.recv ~src:0 ~tag:0 in
          Alcotest.(check int) "length" 100 (Fbuf.length buf);
          Alcotest.(check (float 0.)) "value" 3.14 buf.{0}
        end)
  in
  let send_done =
    net.Netmodel.send_overhead +. Netmodel.transfer_time net ~bytes:payload_bytes
  in
  let expect = send_done +. net.Netmodel.latency +. net.Netmodel.recv_overhead in
  Alcotest.(check bool) "timing" true (close stats.Sim.completion expect);
  Alcotest.(check int) "one message" 1 stats.Sim.messages;
  Alcotest.(check int) "bytes" payload_bytes stats.Sim.bytes

let test_recv_before_send () =
  (* receiver arrives first and must park *)
  let stats =
    Sim.run ~nprocs:2 ~net (fun r ->
        if r = 1 then ignore (Sim.Api.recv ~src:0 ~tag:7)
        else begin
          Sim.Api.compute 1.0;
          Sim.Api.send ~dst:1 ~tag:7 (Fbuf.of_array [| 42. |])
        end)
  in
  Alcotest.(check bool) "receiver waited" true (stats.Sim.completion > 1.0)

let test_fifo_per_channel () =
  let got = ref [] in
  ignore
    (Sim.run ~nprocs:2 ~net (fun r ->
         if r = 0 then
           for i = 1 to 5 do
             Sim.Api.send ~dst:1 ~tag:0 (Fbuf.of_array [| float_of_int i |])
           done
         else
           for _ = 1 to 5 do
             let b = Sim.Api.recv ~src:0 ~tag:0 in
             got := b.{0} :: !got
           done));
  Alcotest.(check (list (float 0.))) "fifo order" [ 1.; 2.; 3.; 4.; 5. ]
    (List.rev !got)

let test_tag_matching () =
  (* out-of-order tags are matched by tag, not arrival order *)
  let got = ref [] in
  ignore
    (Sim.run ~nprocs:2 ~net (fun r ->
         if r = 0 then begin
           Sim.Api.send ~dst:1 ~tag:2 (Fbuf.of_array [| 2. |]);
           Sim.Api.send ~dst:1 ~tag:1 (Fbuf.of_array [| 1. |])
         end
         else begin
           got := (Sim.Api.recv ~src:0 ~tag:1).{0} :: !got;
           got := (Sim.Api.recv ~src:0 ~tag:2).{0} :: !got
         end));
  Alcotest.(check (list (float 0.))) "by tag" [ 1.; 2. ] (List.rev !got)

let test_isend_overlap () =
  (* the sender pays only the overhead; a following compute overlaps the
     wire time, so sender finishes earlier than with a blocking send *)
  let payload = Fbuf.make 10000 1.0 in
  let run send =
    Sim.run ~nprocs:2 ~net (fun r ->
        if r = 0 then begin
          send ~dst:1 ~tag:0 payload;
          Sim.Api.compute 0.001
        end
        else ignore (Sim.Api.recv ~src:0 ~tag:0))
  in
  let blocking = run Sim.Api.send in
  let overlapped = run Sim.Api.isend in
  Alcotest.(check bool) "sender rank finishes earlier" true
    (overlapped.Sim.rank_clocks.(0) < blocking.Sim.rank_clocks.(0));
  (* receiver still gets the data after the wire time *)
  Alcotest.(check bool) "receiver waits for the wire" true
    (overlapped.Sim.rank_clocks.(1)
    >= Netmodel.transfer_time net ~bytes:80000)

let test_deadlock () =
  Alcotest.(check bool) "deadlock raised" true
    (try
       ignore
         (Sim.run ~nprocs:2 ~net (fun r ->
              ignore (Sim.Api.recv ~src:(1 - r) ~tag:0)));
       false
     with Sim.Deadlock _ -> true)

let test_barrier () =
  let stats =
    Sim.run ~nprocs:4 ~net (fun r ->
        Sim.Api.compute (float_of_int r);
        Sim.Api.barrier ();
        let t = Sim.Api.now () in
        (* everyone leaves at max clock + latency *)
        Alcotest.(check bool) "left together" true
          (close t (3.0 +. net.Netmodel.latency)))
  in
  Alcotest.(check bool) "completion" true
    (close stats.Sim.completion (3.0 +. net.Netmodel.latency))

let test_pipeline_timing () =
  (* 1 -> 2 -> 3: completion accumulates compute along the chain *)
  let stats =
    Sim.run ~nprocs:3 ~net (fun r ->
        if r > 0 then ignore (Sim.Api.recv ~src:(r - 1) ~tag:0);
        Sim.Api.compute 1.0;
        if r < 2 then Sim.Api.send ~dst:(r + 1) ~tag:0 (Fbuf.of_array [| 1. |]))
  in
  Alcotest.(check bool) "at least 3s" true (stats.Sim.completion >= 3.0);
  Alcotest.(check bool) "plus comm" true (stats.Sim.completion < 3.01)

let test_determinism () =
  let run () =
    Sim.run ~nprocs:4 ~net (fun r ->
        (* a little all-to-neighbour exchange *)
        let next = (r + 1) mod 4 and prev = (r + 3) mod 4 in
        Sim.Api.compute (0.1 *. float_of_int (r + 1));
        Sim.Api.send ~dst:next ~tag:0 (Fbuf.of_array [| float_of_int r |]);
        let b = Sim.Api.recv ~src:prev ~tag:0 in
        Sim.Api.compute (0.01 *. b.{0}))
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.)) "same completion" a.Sim.completion b.Sim.completion;
  Alcotest.(check int) "same messages" a.Sim.messages b.Sim.messages

let test_rank_api () =
  ignore
    (Sim.run ~nprocs:3 ~net (fun r ->
         Alcotest.(check int) "rank" r (Sim.Api.rank ());
         Alcotest.(check int) "nprocs" 3 (Sim.Api.nprocs ())))

let test_exception_propagates () =
  Alcotest.check_raises "escapes" (Failure "boom") (fun () ->
      ignore (Sim.run ~nprocs:2 ~net (fun r -> if r = 1 then failwith "boom")))

let test_send_copies () =
  (* mutating the buffer after send must not affect the message *)
  ignore
    (Sim.run ~nprocs:2 ~net (fun r ->
         if r = 0 then begin
           let buf = Fbuf.of_array [| 1.0 |] in
           Sim.Api.send ~dst:1 ~tag:0 buf;
           buf.{0} <- 99.
         end
         else
           Alcotest.(check (float 0.)) "copied" 1.0
             (Sim.Api.recv ~src:0 ~tag:0).{0}))

let test_zero_nprocs () =
  Alcotest.check_raises "invalid" (Invalid_argument "Sim.run: nprocs")
    (fun () -> ignore (Sim.run ~nprocs:0 ~net (fun _ -> ())))

let test_trace_and_utilisation () =
  let module Trace = Tiles_mpisim.Trace in
  let stats =
    Sim.run ~trace:true ~nprocs:2 ~net (fun r ->
        if r = 0 then begin
          Sim.Api.compute 1.0;
          Sim.Api.send ~dst:1 ~tag:0 (Fbuf.of_array [| 1. |])
        end
        else begin
          ignore (Sim.Api.recv ~src:0 ~tag:0);
          Sim.Api.compute 0.5
        end)
  in
  Alcotest.(check bool) "trace recorded" true (stats.Sim.trace <> []);
  let u = Trace.utilisation stats in
  Alcotest.(check (float 1e-9)) "rank0 compute" 1.0 u.(0).Trace.compute;
  Alcotest.(check (float 1e-9)) "rank1 compute" 0.5 u.(1).Trace.compute;
  Alcotest.(check bool) "rank1 waited" true (u.(1).Trace.wait > 0.9);
  Alcotest.(check bool) "efficiency in (0,1]" true
    (let e = Trace.efficiency stats in
     e > 0. && e <= 1.);
  Alcotest.(check int) "critical rank" 1 (Trace.critical_rank stats)

(* on a real traced run (SOR through the executor), every rank's
   utilisation components must account for the whole schedule *)
let test_traced_sor_utilisation () =
  let module Trace = Tiles_mpisim.Trace in
  let module Plan = Tiles_core.Plan in
  let module Executor = Tiles_runtime.Executor in
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:16 in
  let plan =
    Plan.make ~m:2 (Tiles_apps.Sor.nest p)
      (Tiles_apps.Sor.nonrect ~x:6 ~y:7 ~z:4)
  in
  let r =
    Executor.run ~mode:Executor.Timing ~trace:true ~plan
      ~kernel:(Tiles_apps.Sor.kernel p) ~net ()
  in
  let stats = r.Executor.stats in
  let u = Trace.utilisation stats in
  Alcotest.(check bool) "several ranks" true (Array.length u > 1);
  Array.iteri
    (fun rank c ->
      let sum =
        c.Trace.compute +. c.Trace.pack +. c.Trace.send +. c.Trace.wait
        +. c.Trace.unpack +. c.Trace.idle
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "rank %d components sum to completion" rank)
        stats.Sim.completion sum;
      List.iter
        (fun (part, v) ->
          if v < -.1e-12 then
            Alcotest.failf "rank %d: negative %s time %.3e" rank part v)
        [
          ("compute", c.Trace.compute);
          ("pack", c.Trace.pack);
          ("send", c.Trace.send);
          ("wait", c.Trace.wait);
          ("unpack", c.Trace.unpack);
          ("idle", c.Trace.idle);
        ])
    u;
  let e = Trace.efficiency stats in
  Alcotest.(check bool) "efficiency in [0,1]" true (e >= 0. && e <= 1.)

let test_trace_off_by_default () =
  let stats = Sim.run ~nprocs:1 ~net (fun _ -> Sim.Api.compute 1.0) in
  Alcotest.(check bool) "no trace" true (stats.Sim.trace = [])

let spans_of stats rank kind =
  List.filter
    (fun s -> s.Sim.rank = rank && s.Sim.kind = kind)
    stats.Sim.trace

let span_total spans = List.fold_left (fun a s -> a +. (s.Sim.t1 -. s.Sim.t0)) 0. spans

(* receiver arrives long after the message: no Wait span may be recorded
   (the old recorder logged the [t0, t0 + overhead] interval as Wait even
   when nothing was waited for) *)
let test_recv_no_wait_when_ready () =
  let module Span = Tiles_obs.Span in
  let stats =
    Sim.run ~trace:true ~nprocs:2 ~net (fun r ->
        if r = 0 then Sim.Api.send ~dst:1 ~tag:0 (Fbuf.of_array [| 1. |])
        else begin
          Sim.Api.compute 10.0;
          ignore (Sim.Api.recv ~src:0 ~tag:0)
        end)
  in
  Alcotest.(check (list (float 0.))) "no wait spans" []
    (List.map (fun s -> s.Sim.t1 -. s.Sim.t0) (spans_of stats 1 Span.Wait));
  Alcotest.(check bool) "unpack = recv overhead" true
    (close (span_total (spans_of stats 1 Span.Unpack))
       net.Netmodel.recv_overhead);
  Alcotest.(check bool) "clock = compute + overhead" true
    (close stats.Sim.rank_clocks.(1) (10.0 +. net.Netmodel.recv_overhead))

(* parked receiver: the Wait span covers exactly the blocked interval
   (from the park time to the arrival), and the per-message receive
   overhead is a separate Unpack span *)
let test_recv_wait_covers_blocked_interval () =
  let module Span = Tiles_obs.Span in
  let stats =
    Sim.run ~trace:true ~nprocs:2 ~net (fun r ->
        if r = 0 then begin
          Sim.Api.compute 1.0;
          Sim.Api.send ~dst:1 ~tag:0 (Fbuf.of_array [| 1. |])
        end
        else begin
          Sim.Api.compute 0.25;
          ignore (Sim.Api.recv ~src:0 ~tag:0)
        end)
  in
  match spans_of stats 1 Span.Wait with
  | [ w ] ->
    Alcotest.(check bool) "wait starts at park time" true (close w.Sim.t0 0.25);
    Alcotest.(check bool) "wait ends at arrival" true
      (close w.Sim.t1
         (stats.Sim.rank_clocks.(1) -. net.Netmodel.recv_overhead));
    Alcotest.(check bool) "arrival after sender compute" true (w.Sim.t1 > 1.0);
    Alcotest.(check bool) "unpack = recv overhead" true
      (close (span_total (spans_of stats 1 Span.Unpack))
         net.Netmodel.recv_overhead)
  | spans -> Alcotest.failf "expected one wait span, got %d" (List.length spans)

(* pack/unpack charges appear as their own span kinds *)
let test_pack_unpack_spans () =
  let module Span = Tiles_obs.Span in
  let stats =
    Sim.run ~trace:true ~nprocs:1 ~net (fun _ ->
        Sim.Api.pack 0.25;
        Sim.Api.compute 1.0;
        Sim.Api.unpack 0.5)
  in
  Alcotest.(check bool) "pack total" true
    (close (span_total (spans_of stats 0 Span.Pack)) 0.25);
  Alcotest.(check bool) "unpack total" true
    (close (span_total (spans_of stats 0 Span.Unpack)) 0.5);
  Alcotest.(check bool) "completion" true (close stats.Sim.completion 1.75)

(* per-rank counters split the totals by sender *)
let test_per_rank_counters () =
  let stats =
    Sim.run ~nprocs:3 ~net (fun r ->
        if r = 0 then begin
          Sim.Api.send ~dst:1 ~tag:0 (Fbuf.of_array [| 1.; 2. |]);
          Sim.Api.send ~dst:2 ~tag:0 (Fbuf.of_array [| 3. |])
        end
        else ignore (Sim.Api.recv ~src:0 ~tag:0))
  in
  Alcotest.(check (list int)) "rank messages" [ 2; 0; 0 ]
    (Array.to_list stats.Sim.rank_messages);
  Alcotest.(check (list int)) "rank bytes" [ 24; 0; 0 ]
    (Array.to_list stats.Sim.rank_bytes);
  Alcotest.(check int) "total messages" 2 stats.Sim.messages;
  Alcotest.(check int) "total bytes" 24 stats.Sim.bytes

let test_netmodel () =
  Alcotest.(check (float 1e-9)) "transfer" 8e-5
    (Netmodel.transfer_time { net with Netmodel.bandwidth = 1e6 } ~bytes:80);
  let scaled = Netmodel.with_ratio net 2.0 in
  Alcotest.(check (float 1e-12)) "ratio"
    (2.0 *. net.Netmodel.flop_time)
    scaled.Netmodel.flop_time

(* ---------------- contended network model ---------------- *)

let test_net_spec () =
  (match Netmodel.of_spec "alpha-beta" with
  | Ok n -> Alcotest.(check string) "ab id" "fast_ethernet_cluster"
              (Netmodel.model_id n)
  | Error e -> Alcotest.fail e);
  (match Netmodel.of_spec "contended:snd=2,rcv=3,uplink=1e9" with
  | Ok n ->
    (match n.Netmodel.model with
    | Netmodel.Contended c ->
      Alcotest.(check int) "snd" 2 c.Netmodel.snd_lanes;
      Alcotest.(check int) "rcv" 3 c.Netmodel.rcv_lanes;
      Alcotest.(check (option (float 0.))) "uplink" (Some 1e9)
        c.Netmodel.uplink
    | Netmodel.Alpha_beta -> Alcotest.fail "expected contended")
  | Error e -> Alcotest.fail e);
  (* distinct parameters must never alias in metadata or cache keys *)
  let id s =
    match Netmodel.of_spec s with
    | Ok n -> Netmodel.model_id n
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "ids distinct" true
    (id "contended" <> id "contended:lanes=2"
    && id "contended" <> id "contended:uplink=1e9");
  match Netmodel.of_spec "contended:snd=0" with
  | Ok _ -> Alcotest.fail "snd=0 must be rejected"
  | Error _ -> ()

(* a random timing-independent program: every rank sends [degree]
   messages to its right neighbours then receives the mirror image, so
   control flow never depends on the cost parameters — the precondition
   for the monotonicity guarantees the contended model makes *)
let random_program ~nprocs ~degree ~sizes ~isend r =
  for k = 1 to degree do
    let dst = (r + k) mod nprocs in
    let n = sizes.((r * degree + k - 1) mod Array.length sizes) in
    let buf = Fbuf.make n 1.0 in
    if isend then Sim.Api.isend ~dst ~tag:k buf
    else Sim.Api.send ~dst ~tag:k buf
  done;
  Sim.Api.compute 1e-4;
  for k = 1 to degree do
    let src = (r - k + nprocs) mod nprocs in
    ignore (Sim.Api.recv ~src ~tag:k)
  done

let gen_case =
  QCheck.Gen.(
    int_range 2 8 >>= fun nprocs ->
    int_range 1 (min 3 (nprocs - 1)) >>= fun degree ->
    bool >>= fun isend ->
    array_size (return (nprocs * degree)) (int_range 1 4096) >>= fun sizes ->
    return (nprocs, degree, isend, sizes))

let arb_case =
  QCheck.make
    ~print:(fun (nprocs, degree, isend, sizes) ->
      Printf.sprintf "nprocs=%d degree=%d isend=%b sizes=[%s]" nprocs degree
        isend
        (String.concat ";" (Array.to_list (Array.map string_of_int sizes))))
    gen_case

let run_case ~net' (nprocs, degree, isend, sizes) =
  Sim.run ~nprocs ~net:net' (random_program ~nprocs ~degree ~sizes ~isend)

let contended ?uplink lanes =
  Netmodel.contended ~snd_lanes:lanes ~rcv_lanes:lanes ?uplink net

(* with a lane per possible concurrent transfer and no uplink cap the
   contended path must reproduce alpha-beta bit for bit — same float
   operations in the same order, not merely close *)
let prop_free_lanes_alpha_beta =
  QCheck.Test.make ~name:"contended with free lanes = alpha-beta (exact)"
    ~count:60 arb_case (fun case ->
      let (nprocs, degree, _, _) = case in
      let a = run_case ~net':net case in
      let c = run_case ~net':(contended (nprocs * degree + 1)) case in
      a.Sim.completion = c.Sim.completion
      && a.Sim.rank_clocks = c.Sim.rank_clocks
      && c.Sim.queue_seconds = 0.)

let prop_monotone_bandwidth =
  QCheck.Test.make ~name:"contended completion monotone as bandwidth drops"
    ~count:60 arb_case (fun case ->
      let full = run_case ~net':(contended 1) case in
      let half =
        run_case
          ~net':{ (contended 1) with
                  Netmodel.bandwidth = net.Netmodel.bandwidth /. 2. }
          case
      in
      half.Sim.completion >= full.Sim.completion -. 1e-12)

let prop_monotone_lanes =
  QCheck.Test.make ~name:"contended completion monotone as lanes shrink"
    ~count:60 arb_case (fun case ->
      let one = run_case ~net':(contended 1) case in
      let two = run_case ~net':(contended 2) case in
      let capped = run_case ~net':(contended ~uplink:1e6 1) case in
      one.Sim.completion >= two.Sim.completion -. 1e-12
      && capped.Sim.completion >= one.Sim.completion -. 1e-12)

let prop_queue_accounting =
  QCheck.Test.make ~name:"queueing nonnegative and consistent" ~count:60
    arb_case (fun case ->
      let s = run_case ~net':(contended ~uplink:5e6 1) case in
      let per_rank =
        Array.fold_left ( +. ) 0. s.Sim.rank_queue_seconds
      in
      s.Sim.queue_seconds >= 0.
      && Array.for_all (fun q -> q >= 0.) s.Sim.rank_queue_seconds
      && Float.abs (per_rank -. s.Sim.queue_seconds) <= 1e-9
      (* and alpha-beta charges none *)
      && (run_case ~net':net case).Sim.queue_seconds = 0.)

let prop_critpath_tiles_completion =
  QCheck.Test.make
    ~name:"contended critpath segments sum to completion (queue attributed)"
    ~count:40 arb_case (fun case ->
      let (nprocs, degree, isend, sizes) = case in
      let s =
        Sim.run ~trace:true ~nprocs ~net:(contended 1)
          (random_program ~nprocs ~degree ~sizes ~isend)
      in
      let report =
        Tiles_obs.Critpath.analyze ~completion:s.Sim.completion ~nprocs
          ~edges:s.Sim.edges s.Sim.trace
      in
      let open Tiles_obs in
      let sum =
        List.fold_left
          (fun acc sg -> acc +. Critpath.seg_duration sg)
          0. report.Critpath.segments
      in
      Float.abs (sum -. s.Sim.completion) <= 1e-9
      && Float.abs (report.Critpath.path_length -. s.Sim.completion) <= 1e-9
      && List.for_all
           (fun sg ->
             sg.Critpath.sg_kind <> Critpath.Queue
             || Critpath.seg_duration sg >= 0.)
           report.Critpath.segments)

(* flight queueing must be visible on the matched edges of a traced
   contended run, and absent under alpha-beta *)
let test_edge_queueing () =
  let program r =
    (* both senders contend for rank 2's single receive lane *)
    if r < 2 then Sim.Api.isend ~dst:2 ~tag:r (Fbuf.make 4096 1.0)
    else begin
      ignore (Sim.Api.recv ~src:0 ~tag:0);
      ignore (Sim.Api.recv ~src:1 ~tag:1)
    end
  in
  let ab = Sim.run ~trace:true ~nprocs:3 ~net program in
  List.iter
    (fun (e : Tiles_obs.Recorder.edge) ->
      Alcotest.(check (float 0.)) "alpha-beta edge queueing" 0.
        e.Tiles_obs.Recorder.e_queued)
    ab.Sim.edges;
  Alcotest.(check (float 0.)) "alpha-beta total queueing" 0.
    ab.Sim.queue_seconds;
  let c = Sim.run ~trace:true ~nprocs:3 ~net:(contended 1) program in
  Alcotest.(check bool) "contended run queued" true (c.Sim.queue_seconds > 0.);
  let max_edge_q =
    List.fold_left
      (fun acc (e : Tiles_obs.Recorder.edge) ->
        Float.max acc e.Tiles_obs.Recorder.e_queued)
      0. c.Sim.edges
  in
  Alcotest.(check bool) "some edge carries queueing" true (max_edge_q > 0.)

let () =
  Alcotest.run "tiles_mpisim"
    [
      ( "sim",
        [
          Alcotest.test_case "single rank" `Quick test_single_rank_compute;
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "recv before send" `Quick test_recv_before_send;
          Alcotest.test_case "fifo" `Quick test_fifo_per_channel;
          Alcotest.test_case "tag matching" `Quick test_tag_matching;
          Alcotest.test_case "isend overlap" `Quick test_isend_overlap;
          Alcotest.test_case "deadlock" `Quick test_deadlock;
          Alcotest.test_case "barrier" `Quick test_barrier;
          Alcotest.test_case "pipeline timing" `Quick test_pipeline_timing;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "rank api" `Quick test_rank_api;
          Alcotest.test_case "exception" `Quick test_exception_propagates;
          Alcotest.test_case "send copies" `Quick test_send_copies;
          Alcotest.test_case "zero nprocs" `Quick test_zero_nprocs;
          Alcotest.test_case "trace + utilisation" `Quick test_trace_and_utilisation;
          Alcotest.test_case "traced sor utilisation" `Quick
            test_traced_sor_utilisation;
          Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "recv no spurious wait" `Quick
            test_recv_no_wait_when_ready;
          Alcotest.test_case "recv wait = blocked interval" `Quick
            test_recv_wait_covers_blocked_interval;
          Alcotest.test_case "pack/unpack spans" `Quick test_pack_unpack_spans;
          Alcotest.test_case "per-rank counters" `Quick test_per_rank_counters;
          Alcotest.test_case "netmodel" `Quick test_netmodel;
        ] );
      ( "contended",
        [
          Alcotest.test_case "net spec parsing" `Quick test_net_spec;
          Alcotest.test_case "edge queueing" `Quick test_edge_queueing;
          QCheck_alcotest.to_alcotest prop_free_lanes_alpha_beta;
          QCheck_alcotest.to_alcotest prop_monotone_bandwidth;
          QCheck_alcotest.to_alcotest prop_monotone_lanes;
          QCheck_alcotest.to_alcotest prop_queue_accounting;
          QCheck_alcotest.to_alcotest prop_critpath_tiles_completion;
        ] );
    ]
