(* Integration tests of the tilec command-line tool: drive the built
   binary end-to-end and check its output. *)

let tilec =
  lazy
    (let candidates =
       [ "../bin/tilec.exe"; "_build/default/bin/tilec.exe"; "bin/tilec.exe" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some p -> p
     | None -> Alcotest.fail "tilec.exe not found (build it first)")

let run args =
  let cmd = Printf.sprintf "%s %s 2>&1" (Lazy.force tilec) args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains s needle = Astring.String.is_infix ~affix:needle s

let check_ok args needles =
  let status, out = run args in
  if status <> Unix.WEXITED 0 then
    Alcotest.failf "tilec %s failed:\n%s" args out;
  List.iter
    (fun n ->
      if not (contains out n) then
        Alcotest.failf "tilec %s: %S not in output:\n%s" args n out)
    needles

let test_plan () =
  check_ok "plan --app sor -M 12 -N 16 --variant nonrect -x 6 -y 7 -z 4"
    [ "plan for sor"; "tile size"; "CC vector"; "D^S"; "processors" ]

let test_cone () =
  check_ok "cone --app adi" [ "tiling cone extreme rays"; "(1, -1, -1)" ]

let test_simulate () =
  check_ok "simulate --app adi -t 12 -n 16 --variant nr3 -x 3 -y 4 -z 4 --full"
    [ "speedup"; "max |parallel - sequential| = 0" ]

let test_emit () =
  let tmp = Filename.temp_file "tilec" ".c" in
  check_ok
    (Printf.sprintf
       "emit-mpi --app jacobi -t 8 -n 10 --variant nonrect -x 2 -y 4 -z 4 -o %s"
       (Filename.quote tmp))
    [];
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  List.iter
    (fun n ->
      if not (contains src n) then Alcotest.failf "emitted C lacks %S" n)
    [ "MPI_Init"; "MPI_Send"; "ttis_start"; "static const int HNF" ]

let test_bad_app () =
  let status, _ = run "plan --app nope" in
  Alcotest.(check bool) "non-zero exit" true (status <> Unix.WEXITED 0)

(* illegal or singular tilings must exit non-zero with a one-line
   diagnostic, not an OCaml backtrace *)
let check_err args =
  let status, out = run args in
  if status = Unix.WEXITED 0 then
    Alcotest.failf "tilec %s unexpectedly succeeded:\n%s" args out;
  if not (contains out "tilec: error:") then
    Alcotest.failf "tilec %s: missing error prefix:\n%s" args out;
  List.iter
    (fun marker ->
      if contains out marker then
        Alcotest.failf "tilec %s: leaked a backtrace:\n%s" args out)
    [ "Raised at"; "Called from"; "Fatal error: exception" ];
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  if List.length lines <> 1 then
    Alcotest.failf "tilec %s: expected a one-line error, got %d lines:\n%s"
      args (List.length lines) out

let test_singular_tiling () =
  check_err "plan --app sor -M 12 -N 16 --variant nonrect -x 6 -y 7 -z 0"

let test_illegal_tiling () =
  check_err "plan --app sor -M 12 -N 16 --variant rect -x 0 -y 7 -z 4";
  check_err "simulate --app adi -t 12 -n 16 --variant nr3 -x 3 -y 0 -z 4"

(* tilec trace: both backends must produce a loadable Chrome trace with
   the same message/byte counters in the printed summary *)
let test_trace () =
  let counters_of backend =
    let json = Filename.temp_file "tilec_trace" ".json" in
    let svg = Filename.temp_file "tilec_trace" ".svg" in
    let status, out =
      run
        (Printf.sprintf
           "trace --app sor -M 12 -N 16 -x 3 -y 4 -z 4 --backend %s --out %s \
            --svg %s"
           backend (Filename.quote json) (Filename.quote svg))
    in
    if status <> Unix.WEXITED 0 then
      Alcotest.failf "trace --backend %s failed:\n%s" backend out;
    let slurp path =
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      s
    in
    let doc = slurp json and drawing = slurp svg in
    List.iter
      (fun n ->
        if not (contains doc n) then
          Alcotest.failf "%s trace JSON lacks %S" backend n)
      [ {|"traceEvents"|}; {|"ph": "X"|}; {|"thread_name"|}; {|"ts"|} ];
    if not (contains drawing "<svg") then
      Alcotest.failf "%s timeline is not SVG" backend;
    (* "... N messages, M bytes ..." from the aggregate summary *)
    match
      List.find_opt (fun l -> contains l "messages") (String.split_on_char '\n' out)
    with
    | Some line -> line
    | None -> Alcotest.failf "%s summary lacks counters:\n%s" backend out
  in
  let sim = counters_of "sim" and shm = counters_of "shm" in
  let counters l =
    (* keep only "N messages, M bytes": completion differs by clock, and
       the in-flight high-water mark by interleaving *)
    let tail =
      match Astring.String.cut ~sep:" s, " l with
      | Some (_, t) -> t
      | None -> l
    in
    match Astring.String.cut ~sep:", max in-flight" tail with
    | Some (counts, _) -> counts
    | None -> tail
  in
  Alcotest.(check string) "backends agree on counters" (counters sim)
    (counters shm)

let test_simulate_trace_out () =
  let json = Filename.temp_file "tilec_sim" ".json" in
  check_ok
    (Printf.sprintf
       "simulate --app sor -M 12 -N 16 -x 3 -y 4 --trace %s"
       (Filename.quote json))
    [ "speedup" ];
  let ic = open_in json in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  if not (contains doc {|"traceEvents"|}) then
    Alcotest.fail "simulate --trace did not write a Chrome trace"

(* --backend is a Cmdliner enum: an unknown value must be rejected up
   front with a diagnostic that lists the valid backends *)
let test_trace_bad_backend () =
  let status, out = run "trace --app sor --backend lan" in
  Alcotest.(check bool) "non-zero exit" true (status <> Unix.WEXITED 0);
  if not (contains out "invalid value 'lan'") then
    Alcotest.failf "missing diagnostic:\n%s" out;
  if not (contains out "'sim'" && contains out "'shm'") then
    Alcotest.failf "diagnostic does not list sim and shm:\n%s" out

(* the overlapped schedule runs on the shm backend too: exact vs the
   oracle, and its counters agree with an overlapped sim run *)
let test_trace_overlap_shm () =
  let counters_of backend =
    let json = Filename.temp_file "tilec_trace_ovl" ".json" in
    let status, out =
      run
        (Printf.sprintf
           "trace --app sor -M 12 -N 16 -x 3 -y 4 -z 4 --backend %s --overlap \
            --out %s"
           backend (Filename.quote json))
    in
    Sys.remove json;
    if status <> Unix.WEXITED 0 then
      Alcotest.failf "trace --backend %s --overlap failed:\n%s" backend out;
    if backend = "shm" && not (contains out "max |parallel - sequential| = 0")
    then Alcotest.failf "overlapped shm run is not exact:\n%s" out;
    match
      List.find_opt
        (fun l -> contains l "messages")
        (String.split_on_char '\n' out)
    with
    | Some line -> line
    | None -> Alcotest.failf "%s summary lacks counters:\n%s" backend out
  in
  let sim = counters_of "sim" and shm = counters_of "shm" in
  let counters l =
    let tail =
      match Astring.String.cut ~sep:" s, " l with
      | Some (_, t) -> t
      | None -> l
    in
    match Astring.String.cut ~sep:", max in-flight" tail with
    | Some (counts, _) -> counts
    | None -> tail
  in
  Alcotest.(check string) "overlapped backends agree on counters"
    (counters sim) (counters shm)

(* a genuinely unsupported flag/backend combination is a Cmdliner usage
   error (usage line, exit 124), not a "tilec: error:" failwith *)
let test_perf_inflate_shm_usage_error () =
  let status, out = run "perf --app sor --backend shm --inflate 2.0" in
  Alcotest.(check bool) "non-zero exit" true (status <> Unix.WEXITED 0);
  if not (contains out "Usage: tilec perf") then
    Alcotest.failf "expected a usage error:\n%s" out;
  if contains out "tilec: error:" then
    Alcotest.failf "surfaced as a runtime failure, not a usage error:\n%s" out

(* tilec perf: record a baseline, a clean re-run passes the gate, and a
   synthetically slowed run (inflated net model) trips it *)
let test_perf_record_check () =
  let dir = Filename.temp_file "tilec_perf" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let base =
    Printf.sprintf
      "--app sor -M 12 -N 16 --variant nonrect -x 3 -y 4 -z 4 --repeats 2 \
       --warmup 1 --dir %s"
      (Filename.quote dir)
  in
  check_ok ("perf " ^ base ^ " --record") [ "recorded" ];
  check_ok ("perf " ^ base ^ " --check") [ "PASS" ];
  let status, out = run ("perf " ^ base ^ " --check --inflate 3.0") in
  Alcotest.(check bool) "regression exits non-zero" true
    (status <> Unix.WEXITED 0);
  if not (contains out "REGRESSION") then
    Alcotest.failf "slowed run did not report a regression:\n%s" out;
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

(* ---------------- exit codes ----------------
   Every failure class has its own documented code so CI and scripts can
   react without parsing stderr: 1 runtime, 2 perf regression,
   3 slab mismatch, 4 rendezvous timeout, 124 usage. *)

let check_exit args code =
  let status, out = run args in
  match status with
  | Unix.WEXITED c ->
    if c <> code then
      Alcotest.failf "tilec %s: expected exit %d, got %d:\n%s" args code c out
  | _ -> Alcotest.failf "tilec %s: killed by signal:\n%s" args out

let test_exit_codes () =
  (* runtime failure: a singular tiling *)
  check_exit "plan --app sor -M 12 -N 16 --variant nonrect -x 6 -y 7 -z 0" 1;
  (* runtime failure: unknown app *)
  check_exit "plan --app nope" 1;
  (* usage errors: Cmdliner's cli_error *)
  check_exit "trace --app sor --backend lan" 124;
  check_exit "perf --app sor --backend shm --inflate 2.0" 124;
  check_exit "serve --workers 0" 1

let test_exit_code_regression () =
  (* perf --check regressions exit 2, distinct from generic failures *)
  let dir = Filename.temp_file "tilec_exit2" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let base =
    Printf.sprintf
      "--app sor -M 12 -N 16 --variant nonrect -x 3 -y 4 -z 4 --repeats 1 \
       --warmup 0 --dir %s"
      (Filename.quote dir)
  in
  check_ok ("perf " ^ base ^ " --record") [ "recorded" ];
  check_exit ("perf " ^ base ^ " --check --inflate 3.0") 2;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* ---------------- the serve daemon over a pipe ---------------- *)

module Json = Tiles_util.Json

(* One worker, a deliberately slow tune job first: while the worker
   chews on it, the three identical plan requests behind it are read,
   submitted and coalesced — deterministically, because reading a pipe
   line is microseconds and the tune is hundreds of milliseconds. *)
let test_serve_pipe () =
  let requests =
    String.concat "\n"
      [
        {|{"id":"warm","op":"tune","app":"adi","variant":"nr1","size1":10,"size2":12,"procs":4,"factors":[2,3]}|};
        {|{"id":"p1","op":"plan","app":"sor","size1":12,"size2":16,"tile":[3,4,4]}|};
        {|{"id":"p2","op":"plan","app":"sor","size1":12,"size2":16,"tile":[3,4,4]}|};
        {|{"id":"p3","op":"plan","app":"sor","size1":12,"size2":16,"tile":[3,4,4]}|};
        {|{"id":"bad","op":"plan","app":"fft"}|};
        {|not even json|};
        {|{"op":"metrics"}|};
        {|{"op":"shutdown"}|};
      ]
    ^ "\n"
  in
  let reqfile = Filename.temp_file "tilec_serve_req" ".jsonl" in
  let oc = open_out reqfile in
  output_string oc requests;
  close_out oc;
  let status, out =
    run
      (Printf.sprintf "serve --workers 1 --capacity 8 < %s"
         (Filename.quote reqfile))
  in
  Sys.remove reqfile;
  if status <> Unix.WEXITED 0 then Alcotest.failf "serve failed:\n%s" out;
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok j -> j
        | Error e -> Alcotest.failf "unparseable response %S: %s" l e)
      lines
  in
  let by_id id =
    match
      List.find_opt (fun j -> Json.member "id" j = Some (Json.Str id)) parsed
    with
    | Some j -> j
    | None -> Alcotest.failf "no response for %S in:\n%s" id out
  in
  let str_field name j =
    match Json.member name j with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.failf "missing %S" name
  in
  (* every job answered exactly once *)
  List.iter
    (fun id -> Alcotest.(check string) (id ^ " ok") "ok" (str_field "status" (by_id id)))
    [ "warm"; "p1"; "p2"; "p3" ];
  Alcotest.(check string) "unknown app errors" "error"
    (str_field "status" (by_id "bad"));
  (* the garbage line got an error response, not a crash *)
  Alcotest.(check bool) "parse error answered" true
    (List.exists
       (fun j ->
         Json.member "status" j = Some (Json.Str "error")
         && Json.member "id" j = Some (Json.Str ""))
       parsed);
  (* identical requests coalesced: one miss, two batched followers with
     bit-identical payloads *)
  let labels = List.map (fun id -> str_field "cache" (by_id id)) [ "p1"; "p2"; "p3" ] in
  Alcotest.(check int) "one miss" 1
    (List.length (List.filter (( = ) "miss") labels));
  Alcotest.(check int) "two coalesced" 2
    (List.length (List.filter (( = ) "coalesced") labels));
  let payload id =
    match by_id id with
    | Json.Obj fields ->
      Json.to_line
        (Json.Obj
           (List.filter
              (fun (k, _) ->
                not (List.mem k [ "id"; "cache"; "queued_s"; "service_s" ]))
              fields))
    | _ -> Alcotest.fail "response not an object"
  in
  Alcotest.(check string) "p2 = p1" (payload "p1") (payload "p2");
  Alcotest.(check string) "p3 = p1" (payload "p1") (payload "p3");
  (* the shutdown line carries the final metrics snapshot *)
  let final =
    match
      List.find_opt (fun j -> Json.member "op" j = Some (Json.Str "shutdown")) parsed
    with
    | Some j -> j
    | None -> Alcotest.failf "no shutdown ack:\n%s" out
  in
  (match Json.member "metrics" final with
  | Some m -> (
    match Option.bind (Json.member "coalesce" m) (Json.member "batched") with
    | Some (Json.Int n) -> Alcotest.(check int) "batched counter" 2 n
    | _ -> Alcotest.fail "metrics lack coalesce.batched")
  | None -> Alcotest.fail "shutdown ack lacks metrics");
  (* and a metrics snapshot was served mid-stream *)
  Alcotest.(check bool) "metrics op answered" true
    (List.exists
       (fun j -> Json.member "op" j = Some (Json.Str "metrics"))
       parsed)

(* tilec analyze: causal critical path on a fresh sim run, artifact
   roundtrip via --from, streaming mode, and the flag conflicts *)
let test_analyze () =
  let json = Filename.temp_file "tilec_analyze" ".json" in
  let svg = Filename.temp_file "tilec_analyze" ".svg" in
  check_ok
    (Printf.sprintf
       "analyze --app sor -M 12 -N 16 -x 3 -y 4 -z 4 --backend sim --out %s \
        --svg %s"
       (Filename.quote json) (Filename.quote svg))
    [ "causal critical path"; "coverage 100.0%"; "top laggards"; "flight" ];
  let slurp path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let doc = slurp json and drawing = slurp svg in
  (* the exported trace carries flow events and the SVG marks the path *)
  List.iter
    (fun n ->
      if not (contains doc n) then Alcotest.failf "trace JSON lacks %S" n)
    [ {|"tiles-flow"|}; {|"ph": "s"|}; {|"ph": "f"|}; {|"seq"|} ];
  if not (contains drawing "critical path") then
    Alcotest.fail "SVG lacks the critical-path legend";
  (* re-analyzing the artifact reproduces the same headline *)
  check_ok
    (Printf.sprintf "analyze --from %s" (Filename.quote json))
    [ "causal critical path"; "coverage 100.0%" ];
  Sys.remove json;
  Sys.remove svg

let test_analyze_stream () =
  check_ok
    "analyze --app jacobi -t 8 -n 16 -x 3 -y 4 -z 4 --backend sim --stream"
    [ "longest waits"; "completion"; "mean busy" ]

let test_analyze_json () =
  let status, out =
    run "analyze --app sor -M 12 -N 16 -x 3 -y 4 -z 4 --json"
  in
  if status <> Unix.WEXITED 0 then
    Alcotest.failf "analyze --json failed:\n%s" out;
  List.iter
    (fun n ->
      if not (contains out n) then
        Alcotest.failf "analyze --json: %S not in output:\n%s" n out)
    [
      {|"path_length_s"|}; {|"coverage"|}; {|"kind_seconds"|};
      {|"slack_s"|}; {|"segments"|}; {|"laggards"|};
    ]

let test_analyze_usage_errors () =
  (* neither --app nor --from; and --stream excludes the span consumers *)
  check_exit "analyze" 1;
  check_exit "analyze --app sor --stream --svg /tmp/x.svg" 1;
  check_exit "analyze --from /nonexistent/trace.json" 1

let test_tune () =
  check_ok
    "tune --app adi -t 10 -n 12 --procs 4 --factors 2,3 --top 3 --workers 2"
    [ "tune adi"; "measured ms"; "best:"; "plan for adi" ]

let test_tune_json () =
  let status, out =
    run "tune --app adi -t 10 -n 12 --procs 4 --factors 2,3 --top 2 --json"
  in
  if status <> Unix.WEXITED 0 then Alcotest.failf "tune --json failed:\n%s" out;
  List.iter
    (fun n ->
      if not (contains out n) then
        Alcotest.failf "tune --json: %S not in output:\n%s" n out)
    [
      {|"best"|}; {|"simulated"|}; {|"pruned"|}; {|"generated"|};
      {|"label"|}; {|"completion_s"|}; {|"predicted"|};
    ]

let () =
  Alcotest.run "tilec_cli"
    [
      ( "cli",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "cone" `Quick test_cone;
          Alcotest.test_case "simulate --full" `Quick test_simulate;
          Alcotest.test_case "emit-mpi" `Quick test_emit;
          Alcotest.test_case "bad app" `Quick test_bad_app;
          Alcotest.test_case "singular tiling error" `Quick test_singular_tiling;
          Alcotest.test_case "illegal tiling error" `Quick test_illegal_tiling;
          Alcotest.test_case "trace both backends" `Quick test_trace;
          Alcotest.test_case "simulate --trace" `Quick test_simulate_trace_out;
          Alcotest.test_case "trace bad backend" `Quick test_trace_bad_backend;
          Alcotest.test_case "trace overlap shm" `Quick test_trace_overlap_shm;
          Alcotest.test_case "perf inflate+shm usage error" `Quick
            test_perf_inflate_shm_usage_error;
          Alcotest.test_case "perf record/check" `Quick test_perf_record_check;
          Alcotest.test_case "analyze roundtrip" `Quick test_analyze;
          Alcotest.test_case "analyze --stream" `Quick test_analyze_stream;
          Alcotest.test_case "analyze --json" `Quick test_analyze_json;
          Alcotest.test_case "analyze usage errors" `Quick
            test_analyze_usage_errors;
          Alcotest.test_case "tune" `Quick test_tune;
          Alcotest.test_case "tune --json" `Quick test_tune_json;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "regression exit 2" `Quick
            test_exit_code_regression;
          Alcotest.test_case "serve pipe e2e" `Quick test_serve_pipe;
        ] );
    ]
