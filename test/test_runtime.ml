module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Tiling = Tiles_core.Tiling
module Plan = Tiles_core.Plan
module Kernel = Tiles_runtime.Kernel
module Grid = Tiles_runtime.Grid
module Seq_exec = Tiles_runtime.Seq_exec
module Executor = Tiles_runtime.Executor
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel
module Rat = Tiles_rat.Rat

let net = Netmodel.fast_ethernet_cluster

(* a simple 2-point recurrence in 2D: u[i,j] = u[i-1,j] + u[i,j-1] *)
let pascal_kernel =
  Kernel.make ~name:"pascal" ~dim:2
    ~reads:[ [| 1; 0 |]; [| 0; 1 |] ]
    ~boundary:(fun j _ -> if j.(0) = -1 && j.(1) = -1 then 0. else 1.)
    ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0 +. read 1 0)
    ()

let pascal_nest w h =
  Nest.make ~name:"pascal"
    ~space:(Polyhedron.box [ (0, w - 1); (0, h - 1) ])
    ~deps:(Kernel.deps pascal_kernel)

(* ---------- Grid ---------- *)

let test_grid_basic () =
  let space = Polyhedron.box [ (0, 3); (0, 3) ] in
  let g = Grid.create space ~width:2 in
  Grid.set g [| 1; 2 |] 0 5.;
  Grid.set g [| 1; 2 |] 1 7.;
  Alcotest.(check (float 0.)) "get 0" 5. (Grid.get g [| 1; 2 |] 0);
  Alcotest.(check (float 0.)) "get 1" 7. (Grid.get g [| 1; 2 |] 1);
  Alcotest.(check bool) "unset is nan" true (Float.is_nan (Grid.get g [| 0; 0 |] 0));
  Alcotest.(check bool) "mem" true (Grid.mem g [| 3; 3 |]);
  Alcotest.(check bool) "not mem" false (Grid.mem g [| 4; 0 |])

let test_grid_rank_mismatch () =
  let space = Polyhedron.box [ (0, 3); (0, 3) ] in
  let g = Grid.create space ~width:1 in
  let raises f =
    match f () with
    | (_ : bool) -> false
    | exception Invalid_argument msg ->
      (* the message must name both ranks, not be a generic bounds error *)
      Astring.String.is_infix ~affix:"rank 3" msg
      && Astring.String.is_infix ~affix:"rank 2" msg
  in
  Alcotest.(check bool) "mem rejects long point" true
    (raises (fun () -> Grid.mem g [| 0; 0; 0 |]));
  Alcotest.(check bool) "mem rejects short point" true
    (match Grid.mem g [| 0 |] with
    | (_ : bool) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "index rejects mismatched point" true
    (match Grid.index g [| 0; 0; 0 |] 0 with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true);
  (* matching rank still answers instead of raising *)
  Alcotest.(check bool) "mem still works" true (Grid.mem g [| 2; 2 |])

let test_grid_checksum_compensated () =
  (* Neumaier summation: 1e16 + lots of 1s + (-1e16) loses every 1 under
     naive left-to-right addition but must survive compensation; and the
     checksum must not depend on traversal/write order *)
  let space = Polyhedron.box [ (0, 9); (0, 9) ] in
  let g = Grid.create space ~width:1 in
  Polyhedron.iter_points space (fun j -> Grid.set g j 0 1.);
  Grid.set g [| 0; 0 |] 0 1e16;
  Grid.set g [| 9; 9 |] 0 (-1e16);
  (* exact sum: 98 ones + 1e16 - 1e16 = 98; naive summation returns 0 *)
  Alcotest.(check (float 0.)) "compensated" 98. (Grid.checksum g space);
  let h = Grid.create space ~width:1 in
  Polyhedron.iter_points space (fun j -> Grid.set h j 0 1.);
  Grid.set h [| 9; 9 |] 0 1e16;
  Grid.set h [| 0; 0 |] 0 (-1e16);
  (* same multiset placed in opposite corners: same checksum *)
  Alcotest.(check (float 0.)) "order independent" 98. (Grid.checksum h space)

let test_grid_diff () =
  let space = Polyhedron.box [ (0, 1); (0, 1) ] in
  let a = Grid.create space ~width:1 and b = Grid.create space ~width:1 in
  Polyhedron.iter_points space (fun j ->
      Grid.set a j 0 1.;
      Grid.set b j 0 1.);
  Alcotest.(check (float 0.)) "equal" 0. (Grid.max_abs_diff a b space);
  Grid.set b [| 1; 1 |] 0 1.5;
  Alcotest.(check (float 1e-12)) "diff" 0.5 (Grid.max_abs_diff a b space)

(* ---------- Seq_exec ---------- *)

let test_seq_pascal () =
  (* with boundary ≡ 1, u[i,j] on the diagonal grows like binomials *)
  let space = Polyhedron.box [ (0, 3); (0, 3) ] in
  let g = Seq_exec.run ~space ~kernel:pascal_kernel () in
  Alcotest.(check (float 0.)) "corner" 2. (Grid.get g [| 0; 0 |] 0);
  (* u[1,0] = u[0,0] + boundary = 2 + 1 = 3 *)
  Alcotest.(check (float 0.)) "u10" 3. (Grid.get g [| 1; 0 |] 0);
  Alcotest.(check (float 0.)) "u11" 6. (Grid.get g [| 1; 1 |] 0)

(* ---------- Kernel.skewed ---------- *)

let test_kernel_skewed_equivalence () =
  (* running the skewed kernel over the skewed space gives the same values
     at corresponding points *)
  let w, h = (5, 6) in
  let nest = pascal_nest w h in
  let t = Tiles_loop.Skew.of_factors 2 [ (1, 0, 1) ] in
  let skewed_nest = Tiles_loop.Skew.apply nest t in
  let sk = Kernel.skewed pascal_kernel t in
  let g0 = Seq_exec.run ~space:nest.Nest.space ~kernel:pascal_kernel () in
  let g1 = Seq_exec.run ~space:skewed_nest.Nest.space ~kernel:sk () in
  Polyhedron.iter_points nest.Nest.space (fun j ->
      let js = Tiles_linalg.Intmat.apply t j in
      Alcotest.(check (float 0.)) "same value" (Grid.get g0 j 0) (Grid.get g1 js 0))

(* ---------- Executor: parallel ≡ sequential ---------- *)

let check_equiv ?m name nest kernel tiling =
  let plan = Plan.make ?m nest tiling in
  let seq = Seq_exec.run ~space:nest.Nest.space ~kernel () in
  let r = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
  (match r.Executor.grid with
  | None -> Alcotest.fail "no grid"
  | Some g ->
    Alcotest.(check (float 1e-9))
      (name ^ " parallel = sequential")
      0.
      (Grid.max_abs_diff g seq nest.Nest.space));
  Alcotest.(check int)
    (name ^ " all points computed")
    (Polyhedron.count_points nest.Nest.space)
    r.Executor.points_computed;
  r

let test_pascal_rect () =
  let nest = pascal_nest 12 9 in
  ignore (check_equiv "pascal-rect" nest pascal_kernel (Tiling.rectangular [ 3; 4 ]))

let test_pascal_oblique () =
  (* non-trivial strides in 2D: H = [[1/2,1/4],[0,1/4]] gives H' = [[2,1],[0,1]]
     with TTIS strides (1,2); legal for the (1,0),(0,1) dependencies *)
  let nest = pascal_nest 12 12 in
  let tiling =
    Tiling.of_rows
      [ [ Rat.make 1 2; Rat.make 1 4 ]; [ Rat.zero; Rat.make 1 4 ] ]
  in
  ignore (check_equiv "pascal-oblique" nest pascal_kernel tiling)

let test_pascal_speedup_sane () =
  let nest = pascal_nest 40 40 in
  let r = check_equiv "pascal-speedup" nest pascal_kernel (Tiling.rectangular [ 5; 5 ]) in
  Alcotest.(check bool) "speedup positive" true (r.Executor.speedup > 0.);
  Alcotest.(check bool) "speedup below procs" true
    (r.Executor.speedup <= 8.01)

let test_timing_full_agree () =
  (* the two executor modes must report identical virtual times *)
  let nest = pascal_nest 20 17 in
  let plan = Plan.make nest (Tiling.rectangular [ 4; 3 ]) in
  let a = Executor.run ~mode:Executor.Full ~plan ~kernel:pascal_kernel ~net () in
  let b = Executor.run ~mode:Executor.Timing ~plan ~kernel:pascal_kernel ~net () in
  Alcotest.(check (float 0.)) "same completion"
    a.Executor.stats.Sim.completion b.Executor.stats.Sim.completion;
  Alcotest.(check int) "same messages" a.Executor.stats.Sim.messages
    b.Executor.stats.Sim.messages;
  Alcotest.(check int) "same bytes" a.Executor.stats.Sim.bytes
    b.Executor.stats.Sim.bytes;
  Alcotest.(check int) "same points" a.Executor.points_computed
    b.Executor.points_computed

let test_executor_rejects_mismatched_kernel () =
  let nest = pascal_nest 6 6 in
  let plan = Plan.make nest (Tiling.rectangular [ 2; 2 ]) in
  let other =
    Kernel.make ~name:"other" ~dim:2
      ~reads:[ [| 1; 0 |] ]
      ~boundary:(fun _ _ -> 0.)
      ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0)
      ()
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Executor.run ~plan ~kernel:other ~net ());
       false
     with Invalid_argument _ -> true)

let test_overlap_correct_and_not_slower () =
  (* §5 future-work schedule: results identical, completion no worse *)
  let nest = pascal_nest 40 40 in
  let plan = Plan.make nest (Tiling.rectangular [ 5; 5 ]) in
  let seq = Seq_exec.run ~space:nest.Nest.space ~kernel:pascal_kernel () in
  let blocking = Executor.run ~mode:Executor.Full ~plan ~kernel:pascal_kernel ~net () in
  let overlapped =
    Executor.run ~mode:Executor.Full ~overlap:true ~plan ~kernel:pascal_kernel
      ~net ()
  in
  (match overlapped.Executor.grid with
  | Some g ->
    Alcotest.(check (float 0.)) "still exact" 0.
      (Grid.max_abs_diff g seq nest.Nest.space)
  | None -> Alcotest.fail "no grid");
  Alcotest.(check bool) "not slower" true
    (overlapped.Executor.stats.Sim.completion
    <= blocking.Executor.stats.Sim.completion +. 1e-12)

let test_executor_ideal_net_faster () =
  let nest = pascal_nest 30 30 in
  let plan = Plan.make nest (Tiling.rectangular [ 5; 5 ]) in
  let slow = Executor.run ~mode:Executor.Timing ~plan ~kernel:pascal_kernel ~net () in
  let fast =
    Executor.run ~mode:Executor.Timing ~plan ~kernel:pascal_kernel
      ~net:Netmodel.ideal ()
  in
  Alcotest.(check bool) "ideal faster" true
    (fast.Executor.stats.Sim.completion < slow.Executor.stats.Sim.completion)

(* ---------- Shm_executor: real domains ---------- *)

let test_shm_pascal () =
  let nest = pascal_nest 30 30 in
  let plan = Plan.make nest (Tiling.rectangular [ 6; 10 ]) in
  let r = Tiles_runtime.Shm_executor.run ~plan ~kernel:pascal_kernel () in
  Alcotest.(check (float 0.)) "exact vs oracle" 0. r.Tiles_runtime.Shm_executor.max_abs_err;
  Alcotest.(check int) "procs" (Plan.nprocs plan) r.Tiles_runtime.Shm_executor.nprocs;
  Alcotest.(check bool) "messages sent" true (r.Tiles_runtime.Shm_executor.messages > 0);
  Alcotest.(check bool) "bytes counted" true (r.Tiles_runtime.Shm_executor.bytes > 0);
  (* counters live in the stats record too; spans only with ~trace:true *)
  Alcotest.(check int) "stats messages" r.Tiles_runtime.Shm_executor.messages
    r.Tiles_runtime.Shm_executor.stats.Tiles_obs.Stats.messages;
  Alcotest.(check bool) "untraced: no spans" true
    (r.Tiles_runtime.Shm_executor.trace = [])

let test_shm_sor () =
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:8 ~size:12 in
  let nest = Sor.nest p in
  let plan = Plan.make ~m:Sor.mapping_dim nest (Sor.nonrect ~x:4 ~y:7 ~z:4) in
  let r = Tiles_runtime.Shm_executor.run ~plan ~kernel:(Sor.kernel p) () in
  Alcotest.(check (float 0.)) "exact" 0. r.Tiles_runtime.Shm_executor.max_abs_err

let test_shm_matches_sim_messages () =
  (* the domain backend exchanges exactly the same number of messages as
     the simulator backend — same protocol, different transport *)
  let nest = pascal_nest 24 24 in
  let plan = Plan.make nest (Tiling.rectangular [ 6; 6 ]) in
  let sim = Executor.run ~mode:Executor.Timing ~plan ~kernel:pascal_kernel ~net () in
  let shm = Tiles_runtime.Shm_executor.run ~plan ~kernel:pascal_kernel () in
  Alcotest.(check int) "same messages" sim.Executor.stats.Sim.messages
    shm.Tiles_runtime.Shm_executor.messages;
  Alcotest.(check int) "same bytes" sim.Executor.stats.Sim.bytes
    shm.Tiles_runtime.Shm_executor.bytes

(* the overlapped schedule is the same computation: blocking and
   overlapped shm runs must produce bit-identical grids and identical
   message/byte counters — which must also match the simulator's counters
   in overlap mode (same protocol, different transport) *)
let test_shm_overlap_matches_blocking () =
  let module Shm = Tiles_runtime.Shm_executor in
  let check name ~space ~plan ~kernel =
    let b = Shm.run ~plan ~kernel () in
    let o = Shm.run ~overlap:true ~plan ~kernel () in
    Alcotest.(check (float 0.)) (name ^ ": blocking exact") 0.
      b.Shm.max_abs_err;
    Alcotest.(check (float 0.)) (name ^ ": overlapped exact") 0.
      o.Shm.max_abs_err;
    Alcotest.(check (float 0.)) (name ^ ": grids bit-identical") 0.
      (Grid.max_abs_diff b.Shm.grid o.Shm.grid space);
    Alcotest.(check int) (name ^ ": same messages") b.Shm.messages
      o.Shm.messages;
    Alcotest.(check int) (name ^ ": same bytes") b.Shm.bytes o.Shm.bytes;
    Alcotest.(check int) (name ^ ": same points") b.Shm.points_computed
      o.Shm.points_computed;
    let sim =
      Executor.run ~mode:Executor.Timing ~overlap:true ~plan ~kernel ~net ()
    in
    Alcotest.(check int) (name ^ ": sim overlap messages agree")
      sim.Executor.stats.Sim.messages o.Shm.messages;
    Alcotest.(check int) (name ^ ": sim overlap bytes agree")
      sim.Executor.stats.Sim.bytes o.Shm.bytes
  in
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:8 ~size:12 in
  check "sor" ~space:(Sor.nest p).Nest.space
    ~plan:
      (Plan.make ~m:Sor.mapping_dim (Sor.nest p) (Sor.nonrect ~x:4 ~y:7 ~z:4))
    ~kernel:(Sor.kernel p);
  let module Jacobi = Tiles_apps.Jacobi in
  let p = Jacobi.make ~t_steps:6 ~size:10 in
  check "jacobi" ~space:(Jacobi.nest p).Nest.space
    ~plan:
      (Plan.make ~m:Jacobi.mapping_dim (Jacobi.nest p)
         (Jacobi.nonrect ~x:2 ~y:6 ~z:6))
    ~kernel:(Jacobi.kernel p);
  let module Adi = Tiles_apps.Adi in
  let p = Adi.make ~t_steps:6 ~size:10 in
  check "adi" ~space:(Adi.nest p).Nest.space
    ~plan:
      (Plan.make ~m:Adi.mapping_dim (Adi.nest p) (Adi.nr3 ~x:3 ~y:5 ~z:5))
    ~kernel:(Adi.kernel p)

(* recv_timeout = 0 used to silently mean "wait forever"; it must now
   fail fast instead of disabling the watchdog *)
let test_shm_rejects_nonpositive_recv_timeout () =
  let nest = pascal_nest 8 8 in
  let plan = Plan.make nest (Tiling.rectangular [ 4; 4 ]) in
  let expect t =
    Alcotest.check_raises
      (Printf.sprintf "recv_timeout %g rejected" t)
      (Invalid_argument
         "Shm_executor.run: recv_timeout must be positive (use infinity to \
          disable the watchdog)")
      (fun () ->
        ignore
          (Tiles_runtime.Shm_executor.run ~recv_timeout:t ~plan
             ~kernel:pascal_kernel ()))
  in
  expect 0.;
  expect (-1.)

(* ---------- Model ---------- *)

let test_model_predicts () =
  let nest = pascal_nest 40 40 in
  let plan = Plan.make nest (Tiling.rectangular [ 5; 5 ]) in
  let est = Tiles_runtime.Model.predict plan ~net in
  Alcotest.(check bool) "total positive" true (est.Tiles_runtime.Model.total > 0.);
  Alcotest.(check bool) "steps positive" true (est.Tiles_runtime.Model.steps > 0);
  Alcotest.(check bool) "speedup positive" true
    (est.Tiles_runtime.Model.predicted_speedup > 0.)

let test_model_ranks_sor_tilings () =
  (* the model must reproduce the paper's ordering: nonrect < rect in
     predicted completion time (same factors) *)
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:48 ~size:48 in
  let nest = Sor.nest p in
  let predict tiling =
    (Tiles_runtime.Model.predict (Plan.make ~m:2 nest tiling) ~net)
      .Tiles_runtime.Model.total
  in
  Alcotest.(check bool) "nonrect predicted faster" true
    (predict (Sor.nonrect ~x:24 ~y:16 ~z:8) < predict (Sor.rect ~x:24 ~y:16 ~z:8))

let test_model_best_factor () =
  let nest = pascal_nest 60 60 in
  let mk f = Plan.make nest (Tiling.rectangular [ f; f ]) in
  let f, est = Tiles_runtime.Model.best_factor mk ~factors:[ 2; 5; 10; 20 ] ~net in
  Alcotest.(check bool) "feasible factor" true (List.mem f [ 2; 5; 10; 20 ]);
  Alcotest.(check bool) "estimate sane" true (est.Tiles_runtime.Model.total > 0.);
  Alcotest.check_raises "none feasible"
    (Failure "Model.best_factor: no feasible factor") (fun () ->
      ignore
        (Tiles_runtime.Model.best_factor
           (fun _ -> failwith "nope")
           ~factors:[ 1 ] ~net))

let () =
  Alcotest.run "tiles_runtime"
    [
      ( "grid",
        [
          Alcotest.test_case "basic" `Quick test_grid_basic;
          Alcotest.test_case "rank mismatch" `Quick test_grid_rank_mismatch;
          Alcotest.test_case "checksum compensated" `Quick
            test_grid_checksum_compensated;
          Alcotest.test_case "diff" `Quick test_grid_diff;
        ] );
      ("seq", [ Alcotest.test_case "pascal" `Quick test_seq_pascal ]);
      ( "kernel",
        [ Alcotest.test_case "skewed equivalence" `Quick test_kernel_skewed_equivalence ] );
      ( "executor",
        [
          Alcotest.test_case "pascal rect" `Quick test_pascal_rect;
          Alcotest.test_case "pascal oblique" `Quick test_pascal_oblique;
          Alcotest.test_case "speedup sane" `Quick test_pascal_speedup_sane;
          Alcotest.test_case "timing = full" `Quick test_timing_full_agree;
          Alcotest.test_case "kernel mismatch" `Quick test_executor_rejects_mismatched_kernel;
          Alcotest.test_case "ideal net faster" `Quick test_executor_ideal_net_faster;
          Alcotest.test_case "overlap correct" `Quick test_overlap_correct_and_not_slower;
        ] );
      ( "shm",
        [
          Alcotest.test_case "pascal on domains" `Quick test_shm_pascal;
          Alcotest.test_case "sor on domains" `Quick test_shm_sor;
          Alcotest.test_case "same messages as sim" `Quick test_shm_matches_sim_messages;
          Alcotest.test_case "overlap = blocking (all apps)" `Quick
            test_shm_overlap_matches_blocking;
          Alcotest.test_case "recv_timeout contract" `Quick
            test_shm_rejects_nonpositive_recv_timeout;
        ] );
      ( "model",
        [
          Alcotest.test_case "predicts" `Quick test_model_predicts;
          Alcotest.test_case "ranks tilings" `Quick test_model_ranks_sor_tilings;
          Alcotest.test_case "best factor" `Quick test_model_best_factor;
        ] );
    ]
