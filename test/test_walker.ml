(* Tests for the compiled tile-execution engine ({!Walker}): walker
   variants are bit-for-bit equivalent, the NaN-read validation knob
   behaves as documented, and corrupted slab messages surface as the
   structured {!Protocol.Slab_mismatch} error. *)

module Fbuf = Tiles_util.Fbuf
module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Plan = Tiles_core.Plan
module Mapping = Tiles_core.Mapping
module Kernel = Tiles_runtime.Kernel
module Grid = Tiles_runtime.Grid
module Walker = Tiles_runtime.Walker
module Protocol = Tiles_runtime.Protocol
module Seq_exec = Tiles_runtime.Seq_exec
module Executor = Tiles_runtime.Executor
module Shm = Tiles_runtime.Shm_executor
module Netmodel = Tiles_mpisim.Netmodel
module Sim = Tiles_mpisim.Sim

let net = Netmodel.fast_ethernet_cluster

(* the 2-point recurrence from test_runtime: u[i,j] = u[i-1,j] + u[i,j-1] *)
let pascal_kernel =
  Kernel.make ~name:"pascal" ~dim:2
    ~reads:[ [| 1; 0 |]; [| 0; 1 |] ]
    ~boundary:(fun _ _ -> 1.)
    ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0 +. read 1 0)
    ()

let pascal_nest w h =
  Nest.make ~name:"pascal"
    ~space:(Polyhedron.box [ (0, w - 1); (0, h - 1) ])
    ~deps:(Kernel.deps pascal_kernel)

(* ---------- variant naming ---------- *)

let test_variant_strings () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Walker.variant_to_string v ^ " roundtrips")
        true
        (Walker.variant_of_string (Walker.variant_to_string v) = Some v))
    Walker.all_variants;
  Alcotest.(check bool) "unknown rejected" true
    (Walker.variant_of_string "turbo" = None)

(* ---------- sequential walkers: bit-for-bit identical ---------- *)

let test_seq_variants_identical () =
  let check_app name space kernel =
    let reference =
      Seq_exec.run ~variant:Walker.Reference ~space ~kernel ()
    in
    List.iter
      (fun v ->
        let g = Seq_exec.run ~variant:v ~space ~kernel () in
        Alcotest.(check (float 0.))
          (name ^ ": " ^ Walker.variant_to_string v ^ " = reference")
          0.
          (Grid.max_abs_diff g reference space))
      Walker.all_variants;
    (* check mode must not change results, only add validation *)
    let checked =
      Seq_exec.run ~variant:Walker.Fastpath ~check:true ~space ~kernel ()
    in
    Alcotest.(check (float 0.))
      (name ^ ": fast+check = reference")
      0.
      (Grid.max_abs_diff checked reference space)
  in
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:6 ~size:10 in
  check_app "sor" (Sor.nest p).Nest.space (Sor.kernel p);
  let module Jacobi = Tiles_apps.Jacobi in
  let p = Jacobi.make ~t_steps:5 ~size:9 in
  check_app "jacobi" (Jacobi.nest p).Nest.space (Jacobi.kernel p);
  let module Adi = Tiles_apps.Adi in
  let p = Adi.make ~t_steps:5 ~size:9 in
  check_app "adi" (Adi.nest p).Nest.space (Adi.kernel p)

(* ---------- NaN-read validation modes ---------- *)

(* Build a walker for a rank whose first tile needs halo data, give it a
   freshly NaN-poisoned LDS and no received slabs: the reference walker
   and the fast walkers under ~check:true must refuse the uninitialised
   read; the fast walker without check must sail through (the whole point
   of the knob is skipping that per-read branch). *)
let test_check_modes () =
  let nest = pascal_nest 12 9 in
  let plan = Plan.make nest (Tiling.rectangular [ 3; 4 ]) in
  let mapping = plan.Plan.mapping in
  let nprocs = Mapping.nprocs mapping in
  Alcotest.(check bool) "plan is multi-rank" true (nprocs > 1);
  let rank = nprocs - 1 in
  let tlo, thi = Mapping.chain mapping rank in
  let ntiles = thi - tlo + 1 in
  let pid = Mapping.pid_of_rank mapping rank in
  let tile = Mapping.join mapping ~pid ~ts:tlo in
  let width = pascal_kernel.Kernel.width in
  let fires ~variant ~check =
    let w =
      Walker.make ~plan ~kernel:pascal_kernel ~rank ~ntiles ~variant ~check ()
    in
    let la = Fbuf.make (Walker.lds_total w * width) Float.nan in
    match Walker.compute_tile w ~trel:0 ~tile ~la with
    | (_ : int) -> false
    | exception Failure _ -> true
  in
  Alcotest.(check bool) "reference always validates" true
    (fires ~variant:Walker.Reference ~check:false);
  Alcotest.(check bool) "strength + check validates" true
    (fires ~variant:Walker.Strength_reduced ~check:true);
  Alcotest.(check bool) "fast + check validates" true
    (fires ~variant:Walker.Fastpath ~check:true);
  Alcotest.(check bool) "fast without check skips validation" false
    (fires ~variant:Walker.Fastpath ~check:false)

(* ---------- native walker: build, fallback, recording ---------- *)

let test_native_modes () =
  let mk ~plan ~kernel ~check =
    let tlo, thi = Mapping.chain plan.Plan.mapping 0 in
    Walker.make ~plan ~kernel ~rank:0 ~ntiles:(thi - tlo + 1)
      ~variant:Walker.Native ~check ()
  in
  (* a kernel without a C body must fall back and record why *)
  let nest = pascal_nest 12 9 in
  let plan = Plan.make nest (Tiling.rectangular [ 3; 4 ]) in
  (match
     Walker.fallback_reason (mk ~plan ~kernel:pascal_kernel ~check:false)
   with
  | Some reason ->
    Alcotest.(check bool) "reason mentions the C body" true
      (Astring.String.is_infix ~affix:"C body" reason)
  | None -> Alcotest.fail "kernel without C body must fall back");
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:6 ~size:9 in
  let plan2 =
    Plan.make ~m:Sor.mapping_dim (Sor.nest p) (Sor.rect ~x:3 ~y:9 ~z:9)
  in
  let kernel2 = Sor.kernel p in
  (* compiler disabled: the fallback is taken and the reason recorded *)
  Unix.putenv "TILEC_NO_CC" "1";
  let w_nocc =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "TILEC_NO_CC" "")
      (fun () -> mk ~plan:plan2 ~kernel:kernel2 ~check:false)
  in
  (match Walker.fallback_reason w_nocc with
  | Some reason ->
    Alcotest.(check bool) "reason mentions the compiler" true
      (Astring.String.is_infix ~affix:"compiler" reason)
  | None -> Alcotest.fail "TILEC_NO_CC must force the fallback");
  (* check mode validates reads in OCaml, so native must defer *)
  (match Walker.fallback_reason (mk ~plan:plan2 ~kernel:kernel2 ~check:true) with
  | Some _ -> ()
  | None -> Alcotest.fail "check mode must fall back to the OCaml path");
  (* with a real compiler the native walker builds (no fallback) and a
     full parallel run matches the boxed sequential oracle exactly *)
  if Tiles_runtime.Native_kernel.available () then begin
    let w = mk ~plan:plan2 ~kernel:kernel2 ~check:false in
    Alcotest.(check bool) "native built" true
      (Walker.fallback_reason w = None);
    let space = (Sor.nest p).Nest.space in
    let reference =
      Seq_exec.run ~variant:Walker.Reference ~space ~kernel:kernel2 ()
    in
    let r = Shm.run ~walker:Walker.Native ~plan:plan2 ~kernel:kernel2 () in
    Alcotest.(check (float 0.)) "native run = boxed oracle" 0.
      (Grid.max_abs_diff r.Shm.grid reference space)
  end

(* ---------- structured slab mismatch ---------- *)

(* Run the protocol over an in-memory mailbox and corrupt the first
   delivered message by appending one spurious cell: the receiving rank
   must raise Slab_mismatch naming the rank, stage, direction, tile
   timestamp and both cell counts — not a bare failwith. *)
let test_slab_mismatch () =
  let nest = pascal_nest 12 9 in
  let plan = Plan.make nest (Tiling.rectangular [ 3; 4 ]) in
  let kernel = pascal_kernel in
  let width = kernel.Kernel.width in
  let shared =
    Protocol.prepare ~mode:Protocol.Full ~plan ~kernel ~flop_time:0.
      ~pack_time:0. ()
  in
  let nprocs = Mapping.nprocs plan.Plan.mapping in
  let mail : (int * int * int, Fbuf.t Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let tampered = ref false in
  let comms_for rank =
    {
      Protocol.send =
        (fun ~dst ~tag buf ->
          let key = (rank, dst, tag) in
          let q =
            match Hashtbl.find_opt mail key with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.add mail key q;
              q
          in
          Queue.add buf q);
      recv =
        (fun ~src ~tag ->
          let buf = Queue.pop (Hashtbl.find mail (src, rank, tag)) in
          if !tampered then buf
          else begin
            tampered := true;
            Fbuf.append buf (Fbuf.make width 0.)
          end);
      compute = ignore;
      pack = ignore;
      unpack = ignore;
    }
  in
  (* every communication direction of this plan points towards higher
     ranks, so running the rank programs in rank order means each receive
     finds its message already enqueued *)
  let outcome =
    try
      for r = 0 to nprocs - 1 do
        Protocol.rank_program shared (comms_for r) r
      done;
      None
    with Protocol.Slab_mismatch m -> Some m
  in
  match outcome with
  | None -> Alcotest.fail "corrupted slab message was not detected"
  | Some m ->
    Alcotest.(check bool) "tampering happened first" true !tampered;
    Alcotest.(check bool) "unpack stage" true (m.Protocol.mm_stage = `Unpack);
    Alcotest.(check bool) "rank in range" true
      (m.Protocol.mm_rank >= 0 && m.Protocol.mm_rank < nprocs);
    Alcotest.(check int) "exactly one extra cell" (m.Protocol.mm_actual + 1)
      m.Protocol.mm_expected;
    let s = Protocol.slab_mismatch_to_string m in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          ("message mentions " ^ needle)
          true
          (Astring.String.is_infix ~affix:needle s))
      [ "rank"; "unpack"; "direction"; "t^S"; "expected" ]

(* ---------- property: fast = reference on every backend ---------- *)

type backend = Sim_backend | Shm_backend

let backend_name = function Sim_backend -> "sim" | Shm_backend -> "shm"

(* (space, plan, kernel) for a random app / tiling-variant / factor
   combination; None when the combination is infeasible (illegal tiling,
   tile too small for the dependencies, ...) *)
let build_case app vi (x, y, z) =
  let build nest mapping_dim variants kernel =
    let _, f = List.nth variants (vi mod List.length variants) in
    match Plan.make ~m:mapping_dim nest (f ~x ~y ~z) with
    | plan -> Some (nest.Nest.space, plan, kernel)
    | exception (Invalid_argument _ | Failure _) -> None
  in
  match app with
  | `Sor ->
    let module A = Tiles_apps.Sor in
    let p = A.make ~m_steps:6 ~size:9 in
    build (A.nest p) A.mapping_dim A.variants (A.kernel p)
  | `Jacobi ->
    let module A = Tiles_apps.Jacobi in
    let p = A.make ~t_steps:5 ~size:9 in
    build (A.nest p) A.mapping_dim A.variants (A.kernel p)
  | `Adi ->
    let module A = Tiles_apps.Adi in
    let p = A.make ~t_steps:5 ~size:9 in
    build (A.nest p) A.mapping_dim A.variants (A.kernel p)

let run_with ?inner backend ~overlap ~walker (plan, kernel) =
  match backend with
  | Sim_backend ->
    let r =
      Executor.run ?inner ~walker ~mode:Executor.Full ~overlap ~plan ~kernel
        ~net ()
    in
    ( Option.get r.Executor.grid,
      r.Executor.stats.Sim.messages,
      r.Executor.stats.Sim.bytes,
      r.Executor.points_computed )
  | Shm_backend ->
    let r = Shm.run ?inner ~walker ~overlap ~plan ~kernel () in
    (r.Shm.grid, r.Shm.messages, r.Shm.bytes, r.Shm.points_computed)

let gen_case =
  QCheck.Gen.(
    let* app = oneofl [ `Sor; `Jacobi; `Adi ] in
    let* vi = int_range 0 3 in
    let* x = int_range 3 6 in
    let* y = int_range 6 9 in
    let* z = int_range 6 9 in
    let* overlap = bool in
    let* backend = oneofl [ Sim_backend; Shm_backend ] in
    return (app, vi, (x, y, z), overlap, backend))

let print_case (app, vi, (x, y, z), overlap, backend) =
  Printf.sprintf "%s variant#%d %dx%dx%d overlap:%b backend:%s"
    (match app with `Sor -> "sor" | `Jacobi -> "jacobi" | `Adi -> "adi")
    vi x y z overlap (backend_name backend)

(* ---------- inner subtile blocking ---------- *)

module Native_kernel = Tiles_runtime.Native_kernel

(* Two inner shapes must content-address distinct native shared objects
   and memoise distinct compiled walk plans: the subtile shape is baked
   into the generated C and into the walker's process-wide plan memo
   key, so a blocked schedule can never be served a kernel (or a strength
   table) compiled for a different blocking. *)
let test_inner_distinct_keys () =
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:6 ~size:9 in
  let plan =
    Plan.make ~m:Sor.mapping_dim (Sor.nest p) (Sor.rect ~x:3 ~y:9 ~z:9)
  in
  let kernel = Sor.kernel p in
  let path inner =
    match Native_kernel.object_path ?inner ~plan ~kernel () with
    | Ok p -> p
    | Error e -> Alcotest.fail ("object_path: " ^ e)
  in
  let unblocked = path None in
  let b1 = path (Some [| 2; 4; 4 |]) in
  let b2 = path (Some [| 2; 4; 2 |]) in
  Alcotest.(check bool) "blocked .so differs from unblocked" true
    (b1 <> unblocked && b2 <> unblocked);
  Alcotest.(check bool) "the two blockings differ" true (b1 <> b2);
  (* plan memoisation: a nest/tiling used nowhere else in this process,
     so the entry-count delta is exactly the number of distinct
     (plan, inner) configurations built — repeats add nothing *)
  let nest = pascal_nest 15 10 in
  let plan = Plan.make nest (Tiling.rectangular [ 3; 5 ]) in
  let tlo, thi = Mapping.chain plan.Plan.mapping 0 in
  let mk ?inner () =
    ignore
      (Walker.make ?inner ~plan ~kernel:pascal_kernel ~rank:0
         ~ntiles:(thi - tlo + 1) ~variant:Walker.Fastpath ~check:false ())
  in
  let before = Walker.memo_entries () in
  mk ();
  mk ~inner:[| 2; 3 |] ();
  mk ~inner:[| 3; 2 |] ();
  Alcotest.(check int) "three configurations, three plans" (before + 3)
    (Walker.memo_entries ());
  mk ~inner:[| 2; 3 |] ();
  mk ();
  Alcotest.(check int) "repeats are memo hits" (before + 3)
    (Walker.memo_entries ())

(* a subtile shape per dimension: width-1 slivers, half extents, the
   degenerate inner == outer (must behave exactly like unblocked) and a
   small fixed block all appear *)
let inner_of_sel v sel =
  Array.mapi
    (fun k vk ->
      match sel.(k mod Array.length sel) mod 4 with
      | 0 -> 1
      | 1 -> max 1 (vk / 2)
      | 2 -> vk
      | _ -> min vk 3)
    v

let gen_inner_case =
  QCheck.Gen.(
    let* app = oneofl [ `Sor; `Jacobi; `Adi ] in
    let* vi = int_range 0 3 in
    let* x = int_range 3 6 in
    let* y = int_range 6 9 in
    let* z = int_range 6 9 in
    let* overlap = bool in
    let* backend = oneofl [ Sim_backend; Shm_backend ] in
    let* s0 = int_range 0 3 in
    let* s1 = int_range 0 3 in
    let* s2 = int_range 0 3 in
    return (app, vi, (x, y, z), overlap, backend, [| s0; s1; s2 |]))

let print_inner_case (app, vi, (x, y, z), overlap, backend, sel) =
  Printf.sprintf "%s variant#%d %dx%dx%d overlap:%b backend:%s sel:%d,%d,%d"
    (match app with `Sor -> "sor" | `Jacobi -> "jacobi" | `Adi -> "adi")
    vi x y z overlap (backend_name backend) sel.(0) sel.(1) sel.(2)

(* the tentpole's correctness property: a subtiled fast or native walk is
   bit-identical — grids AND protocol counters — to the unblocked
   reference oracle, for random apps x tilings x legal inner shapes *)
let prop_inner_bit_identical =
  QCheck.Test.make
    ~name:"subtiled fast/native = unblocked reference (grids + counters)"
    ~count:10
    (QCheck.make ~print:print_inner_case gen_inner_case)
    (fun (app, vi, factors, overlap, backend, sel) ->
      match build_case app vi factors with
      | None -> QCheck.assume_fail ()
      | Some (space, plan, kernel) ->
        let inner = inner_of_sel plan.Plan.tiling.Tiling.v sel in
        let gr, mr, br, pr =
          run_with backend ~overlap ~walker:Walker.Reference (plan, kernel)
        in
        List.for_all
          (fun walker ->
            let g, m, b, p =
              run_with ~inner backend ~overlap ~walker (plan, kernel)
            in
            Grid.max_abs_diff g gr space = 0.
            && m = mr && b = br && p = pr)
          [ Walker.Fastpath; Walker.Native ])

(* deterministic spot check on all three apps: sequential subtiled walk
   equals the reference oracle, including width-1 slivers and the
   degenerate inner == outer shape *)
let test_inner_seq_identical () =
  let check_app name space kernel dim =
    let reference = Seq_exec.run ~variant:Walker.Reference ~space ~kernel () in
    List.iter
      (fun inner ->
        let g =
          Seq_exec.run ~inner ~variant:Walker.Fastpath ~space ~kernel ()
        in
        Alcotest.(check (float 0.))
          (Printf.sprintf "%s: inner %s = reference" name
             (String.concat "x"
                (List.map string_of_int (Array.to_list inner))))
          0.
          (Grid.max_abs_diff g reference space))
      [ Array.make dim 1; Array.make dim 3; Array.make dim 1000 ]
  in
  let module Sor = Tiles_apps.Sor in
  let p = Sor.make ~m_steps:6 ~size:10 in
  check_app "sor" (Sor.nest p).Nest.space (Sor.kernel p) 3;
  let module Jacobi = Tiles_apps.Jacobi in
  let p = Jacobi.make ~t_steps:5 ~size:9 in
  check_app "jacobi" (Jacobi.nest p).Nest.space (Jacobi.kernel p) 3;
  let module Adi = Tiles_apps.Adi in
  let p = Adi.make ~t_steps:5 ~size:9 in
  check_app "adi" (Adi.nest p).Nest.space (Adi.kernel p) 3

let prop_walkers_bit_identical =
  QCheck.Test.make ~name:"fast/strength/native = reference (grids + counters)"
    ~count:10
    (QCheck.make ~print:print_case gen_case)
    (fun (app, vi, factors, overlap, backend) ->
      match build_case app vi factors with
      | None -> QCheck.assume_fail ()
      | Some (space, plan, kernel) ->
        let gr, mr, br, pr =
          run_with backend ~overlap ~walker:Walker.Reference (plan, kernel)
        in
        List.for_all
          (fun walker ->
            let g, m, b, p =
              run_with backend ~overlap ~walker (plan, kernel)
            in
            Grid.max_abs_diff g gr space = 0.
            && m = mr && b = br && p = pr)
          [ Walker.Strength_reduced; Walker.Fastpath; Walker.Native ])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_walker"
    [
      ("variant", [ Alcotest.test_case "strings" `Quick test_variant_strings ]);
      ( "equivalence",
        [
          Alcotest.test_case "sequential walkers identical" `Quick
            test_seq_variants_identical;
          q prop_walkers_bit_identical;
        ] );
      ( "inner",
        [
          Alcotest.test_case "distinct cache keys and plans" `Quick
            test_inner_distinct_keys;
          Alcotest.test_case "sequential subtiled = reference" `Quick
            test_inner_seq_identical;
          q prop_inner_bit_identical;
        ] );
      ( "validation",
        [ Alcotest.test_case "check modes" `Quick test_check_modes ] );
      ( "native",
        [ Alcotest.test_case "build and fallback modes" `Quick
            test_native_modes ] );
      ( "mismatch",
        [ Alcotest.test_case "structured error" `Quick test_slab_mismatch ] );
    ]
