module Svg = Tiles_viz.Svg
module Figures = Tiles_viz.Figures
module Polyhedron = Tiles_poly.Polyhedron
module Tiling = Tiles_core.Tiling
module Comm = Tiles_core.Comm
module Plan = Tiles_core.Plan
module Kernel = Tiles_runtime.Kernel
module Executor = Tiles_runtime.Executor
module Sim = Tiles_mpisim.Sim
module Rat = Tiles_rat.Rat

let net = Tiles_mpisim.Netmodel.fast_ethernet_cluster

let count_occurrences needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let well_formed svg =
  let s = Svg.render svg in
  Alcotest.(check int) "one svg open" 1 (count_occurrences "<svg" s);
  Alcotest.(check int) "one svg close" 1 (count_occurrences "</svg>" s);
  Alcotest.(check bool) "has viewBox" true (count_occurrences "viewBox" s = 1);
  s

let oblique =
  Tiling.of_rows [ [ Rat.make 1 4; Rat.make 1 8 ]; [ Rat.zero; Rat.make 1 8 ] ]

let test_svg_builder () =
  let svg = Svg.create ~width:100. ~height:50. in
  Svg.line svg ~x1:0. ~y1:0. ~x2:10. ~y2:10. ();
  Svg.rect svg ~x:1. ~y:1. ~w:5. ~h:5. ~fill:"#fff" ();
  Svg.circle svg ~cx:3. ~cy:3. ~r:1. ();
  Svg.text svg ~x:0. ~y:10. "a < b & c";
  Alcotest.(check int) "elements" 4 (Svg.element_count svg);
  let s = well_formed svg in
  Alcotest.(check bool) "escaped" true
    (count_occurrences "a &lt; b &amp; c" s = 1)

let test_tiled_space_figure () =
  let space = Polyhedron.box [ (0, 11); (0, 15) ] in
  let svg = Figures.tiled_space space oblique in
  let s = well_formed svg in
  (* one circle per iteration point *)
  Alcotest.(check int) "circles" (12 * 16) (count_occurrences "<circle" s)

let test_ttis_figure () =
  let svg = Figures.ttis oblique in
  let s = well_formed svg in
  (* one dot per box cell (lattice point or hole) *)
  Alcotest.(check int) "cells"
    (oblique.Tiling.v.(0) * oblique.Tiling.v.(1))
    (count_occurrences "<circle" s)

let test_lds_figure () =
  let deps =
    Tiles_loop.Dependence.of_vectors [ [| 1; 0 |]; [| 0; 1 |]; [| 1; 1 |] ]
  in
  let comm = Comm.make oblique deps ~m:0 in
  let svg = Figures.lds oblique comm ~ntiles:3 in
  ignore (well_formed svg)

let test_gantt_figure () =
  let kernel =
    Kernel.make ~name:"pascal" ~dim:2
      ~reads:[ [| 1; 0 |]; [| 0; 1 |] ]
      ~boundary:(fun _ _ -> 1.)
      ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0 +. read 1 0)
      ()
  in
  let nest =
    Tiles_loop.Nest.make ~name:"pascal"
      ~space:(Polyhedron.box [ (0, 19); (0, 19) ])
      ~deps:(Kernel.deps kernel)
  in
  let plan = Plan.make nest (Tiling.rectangular [ 5; 5 ]) in
  let r = Executor.run ~mode:Executor.Timing ~trace:true ~plan ~kernel ~net () in
  Alcotest.(check bool) "trace nonempty" true (r.Executor.stats.Sim.trace <> []);
  (* spans are within [0, completion] and per-rank non-overlapping *)
  let by_rank = Hashtbl.create 8 in
  List.iter
    (fun ({ Sim.rank; t0; t1; _ } as s) ->
      Alcotest.(check bool) "ordered" true (t0 <= t1);
      Alcotest.(check bool) "within run" true
        (t0 >= 0. && t1 <= r.Executor.stats.Sim.completion +. 1e-12);
      let prev = try Hashtbl.find by_rank rank with Not_found -> 0. in
      Alcotest.(check bool) "no overlap" true (t0 >= prev -. 1e-12);
      Hashtbl.replace by_rank rank s.Sim.t1)
    r.Executor.stats.Sim.trace;
  ignore (well_formed (Figures.gantt r.Executor.stats))

let test_gantt_requires_trace () =
  let stats =
    Sim.run ~nprocs:1 ~net (fun _ -> Sim.Api.compute 0.0)
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Figures.gantt stats);
       false
     with Invalid_argument _ -> true)

let test_timeline_figure () =
  let module Span = Tiles_obs.Span in
  (* hand-built spans covering all five kinds across two ranks *)
  let spans =
    [
      { Span.rank = 0; t0 = 0.; t1 = 1.; kind = Span.Compute };
      { Span.rank = 0; t0 = 1.; t1 = 1.2; kind = Span.Pack };
      { Span.rank = 0; t0 = 1.2; t1 = 1.5; kind = Span.Send };
      { Span.rank = 1; t0 = 0.; t1 = 1.4; kind = Span.Wait };
      { Span.rank = 1; t0 = 1.4; t1 = 1.6; kind = Span.Unpack };
    ]
  in
  let svg = Figures.timeline ~nprocs:2 ~completion:2. spans in
  (* 5 span rects + 5 legend swatches at least *)
  Alcotest.(check bool) "enough elements" true (Svg.element_count svg >= 10);
  ignore (well_formed svg)

let test_timeline_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Figures.timeline ~nprocs:1 ~completion:1. []);
       false
     with Invalid_argument _ -> true)

let test_save () =
  let svg = Figures.ttis oblique in
  let path = Filename.temp_file "tiles_viz" ".svg" in
  Svg.save svg path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "nonempty file" true (len > 100)

let () =
  Alcotest.run "tiles_viz"
    [
      ( "svg",
        [
          Alcotest.test_case "builder" `Quick test_svg_builder;
          Alcotest.test_case "save" `Quick test_save;
        ] );
      ( "figures",
        [
          Alcotest.test_case "tiled space" `Quick test_tiled_space_figure;
          Alcotest.test_case "ttis" `Quick test_ttis_figure;
          Alcotest.test_case "lds" `Quick test_lds_figure;
          Alcotest.test_case "gantt" `Quick test_gantt_figure;
          Alcotest.test_case "gantt needs trace" `Quick test_gantt_requires_trace;
          Alcotest.test_case "timeline" `Quick test_timeline_figure;
          Alcotest.test_case "timeline needs spans" `Quick
            test_timeline_rejects_empty;
        ] );
    ]
