open Tiles_util

let check_int = Alcotest.(check int)

(* ---------- Ints ---------- *)

let test_fdiv_basic () =
  check_int "7/2" 3 (Ints.fdiv 7 2);
  check_int "-7/2" (-4) (Ints.fdiv (-7) 2);
  check_int "7/-2" (-4) (Ints.fdiv 7 (-2));
  check_int "-7/-2" 3 (Ints.fdiv (-7) (-2));
  check_int "0/5" 0 (Ints.fdiv 0 5);
  check_int "-1/3" (-1) (Ints.fdiv (-1) 3)

let test_fmod_basic () =
  check_int "7 mod 2" 1 (Ints.fmod 7 2);
  check_int "-7 mod 2" 1 (Ints.fmod (-7) 2);
  check_int "-6 mod 3" 0 (Ints.fmod (-6) 3);
  check_int "5 mod -3" (-1) (Ints.fmod 5 (-3))

let test_cdiv_basic () =
  check_int "7 cdiv 2" 4 (Ints.cdiv 7 2);
  check_int "-7 cdiv 2" (-3) (Ints.cdiv (-7) 2);
  check_int "6 cdiv 3" 2 (Ints.cdiv 6 3)

let test_fdiv_zero () =
  Alcotest.check_raises "div by zero" (Invalid_argument "Ints.fdiv: division by zero")
    (fun () -> ignore (Ints.fdiv 1 0))

let test_gcd_lcm () =
  check_int "gcd 12 18" 6 (Ints.gcd 12 18);
  check_int "gcd -12 18" 6 (Ints.gcd (-12) 18);
  check_int "gcd 0 5" 5 (Ints.gcd 0 5);
  check_int "gcd 0 0" 0 (Ints.gcd 0 0);
  check_int "lcm 4 6" 12 (Ints.lcm 4 6);
  check_int "lcm 0 5" 0 (Ints.lcm 0 5)

let test_overflow () =
  Alcotest.check_raises "mul overflow" Ints.Overflow (fun () ->
      ignore (Ints.mul_exn max_int 2));
  Alcotest.check_raises "add overflow" Ints.Overflow (fun () ->
      ignore (Ints.add_exn max_int 1));
  check_int "mul ok" 6 (Ints.mul_exn 2 3);
  check_int "mul neg" (-6) (Ints.mul_exn 2 (-3))

let test_pow () =
  check_int "2^10" 1024 (Ints.pow 2 10);
  check_int "5^0" 1 (Ints.pow 5 0);
  check_int "0^0" 1 (Ints.pow 0 0);
  check_int "(-2)^3" (-8) (Ints.pow (-2) 3)

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Ints.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Ints.divisors 1);
  Alcotest.(check (list int)) "divisors 9" [ 1; 3; 9 ] (Ints.divisors 9)

let prop_fdiv_fmod =
  QCheck.Test.make ~name:"fdiv/fmod euclidean identity" ~count:1000
    QCheck.(pair (int_range (-10000) 10000) (int_range (-100) 100))
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q = Ints.fdiv a b and r = Ints.fmod a b in
      a = (b * q) + r && if b > 0 then r >= 0 && r < b else r <= 0 && r > b)

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:1000
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let g = Ints.gcd a b in
      if a = 0 && b = 0 then g = 0
      else g > 0 && a mod g = 0 && b mod g = 0)

(* ---------- Vec ---------- *)

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

let test_vec_ops () =
  Alcotest.check vec "add" [| 4; 6 |] (Vec.add [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check vec "sub" [| -2; -2 |] (Vec.sub [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check vec "scale" [| 3; 6 |] (Vec.scale 3 [| 1; 2 |]);
  check_int "dot" 11 (Vec.dot [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check vec "basis" [| 0; 1; 0 |] (Vec.basis 3 1)

let test_vec_lex () =
  Alcotest.(check bool) "lex pos" true (Vec.is_lex_positive [| 0; 1; -5 |]);
  Alcotest.(check bool) "lex neg" false (Vec.is_lex_positive [| 0; -1; 5 |]);
  Alcotest.(check bool) "zero not pos" false (Vec.is_lex_positive [| 0; 0 |]);
  check_int "cmp" (-1) (Vec.compare_lex [| 1; 2 |] [| 1; 3 |]);
  check_int "cmp eq" 0 (Vec.compare_lex [| 1; 2 |] [| 1; 2 |])

let test_vec_insert_remove () =
  Alcotest.check vec "insert mid" [| 1; 9; 2 |] (Vec.insert [| 1; 2 |] 1 9);
  Alcotest.check vec "insert end" [| 1; 2; 9 |] (Vec.insert [| 1; 2 |] 2 9);
  Alcotest.check vec "remove" [| 1; 3 |] (Vec.remove [| 1; 2; 3 |] 1);
  Alcotest.check vec "permute last" [| 1; 3; 2 |]
    (Vec.permute_to_last [| 1; 2; 3 |] 1);
  Alcotest.check vec "permute last idempotent on last" [| 1; 2; 3 |]
    (Vec.permute_to_last [| 1; 2; 3 |] 2)

let prop_insert_remove =
  QCheck.Test.make ~name:"remove (insert v k x) k = v" ~count:500
    QCheck.(triple (array_of_size (Gen.int_range 1 6) small_int) (int_range 0 5) small_int)
    (fun (v, k, x) ->
      QCheck.assume (k <= Array.length v);
      Vec.remove (Vec.insert v k x) k = v)

(* ---------- Json ---------- *)

let json = Alcotest.testable (Fmt.of_to_string (Json.to_string ~indent:0)) ( = )

let test_json_parse_scalars () =
  Alcotest.(check (result json string)) "null" (Ok Json.Null) (Json.parse "null");
  Alcotest.(check (result json string)) "true" (Ok (Json.Bool true))
    (Json.parse " true ");
  Alcotest.(check (result json string)) "int" (Ok (Json.Int (-42)))
    (Json.parse "-42");
  Alcotest.(check (result json string)) "float" (Ok (Json.Float 2.5))
    (Json.parse "2.5");
  Alcotest.(check (result json string)) "exponent is float"
    (Ok (Json.Float 1e3)) (Json.parse "1e3");
  Alcotest.(check (result json string)) "string escapes"
    (Ok (Json.Str "a\"b\\c\nd"))
    (Json.parse {|"a\"b\\c\nd"|});
  (* \u escapes decode to UTF-8, including surrogate pairs *)
  Alcotest.(check (result json string)) "bmp escape"
    (Ok (Json.Str "\xce\xbb"))
    (Json.parse {|"λ"|});
  Alcotest.(check (result json string)) "surrogate pair"
    (Ok (Json.Str "\xf0\x9f\x98\x80"))
    (Json.parse {|"😀"|})

let test_json_parse_nested () =
  Alcotest.(check (result json string)) "nested"
    (Ok
       (Json.Obj
          [
            ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
            ("o", Json.Obj [ ("k", Json.Null) ]);
            ("empty", Json.List []);
          ]))
    (Json.parse {|{ "xs": [1, 2], "o": {"k": null}, "empty": [] }|})

(* errors carry the 1-based line and column of the offending byte *)
let check_parse_error src expected_loc =
  match Json.parse src with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" src
  | Error msg ->
    if not (Astring.String.is_infix ~affix:expected_loc msg) then
      Alcotest.failf "parse %S: expected %S in error %S" src expected_loc msg

let test_json_parse_errors () =
  check_parse_error "" "line 1, column 1";
  check_parse_error "[1, 2" "line 1, column 6";
  check_parse_error {|{"a": 1,}|} "line 1, column 9";
  check_parse_error "{\n  \"a\": tru\n}" "line 2, column 8";
  check_parse_error "1 2" "trailing garbage";
  check_parse_error {|"unterminated|} "unterminated string";
  check_parse_error {|{"a" 1}|} "expected ':'"

let test_json_accessors () =
  let j = Json.Obj [ ("n", Json.Int 3); ("f", Json.Float 0.5); ("s", Json.Str "x") ] in
  Alcotest.(check (option int)) "int" (Some 3)
    (Option.bind (Json.member "n" j) Json.to_int_opt);
  (* to_float_opt widens ints: a baseline field written as 3 reads as 3.0 *)
  Alcotest.(check (option (float 0.))) "widen" (Some 3.)
    (Option.bind (Json.member "n" j) Json.to_float_opt);
  Alcotest.(check (option (float 0.))) "float" (Some 0.5)
    (Option.bind (Json.member "f" j) Json.to_float_opt);
  Alcotest.(check (option string)) "str" (Some "x")
    (Option.bind (Json.member "s" j) Json.to_str_opt);
  Alcotest.(check (option int)) "missing" None
    (Option.bind (Json.member "zz" j) Json.to_int_opt);
  Alcotest.(check (option int)) "non-obj" None
    (Option.bind (Json.member "n" (Json.List [])) Json.to_int_opt)

(* emit → parse is the identity on finite values (non-finite floats emit
   as null by design, so the generator stays finite) *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  let key = string_size ~gen:printable (int_range 0 5) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4) (pair key (self (depth - 1)))) );
          ])
    3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"parse (to_string j) = Ok j" ~count:500
    (QCheck.make ~print:(Json.to_string ~indent:1) json_gen)
    (fun j -> Json.parse (Json.to_string j) = Ok j)

let prop_json_roundtrip_compact =
  QCheck.Test.make ~name:"roundtrip at indent 0" ~count:200
    (QCheck.make ~print:(Json.to_string ~indent:1) json_gen)
    (fun j -> Json.parse (Json.to_string ~indent:0 j) = Ok j)

(* to_line frames the serve protocol: one value per physical line, so a
   newline anywhere in the rendering would split a response in two *)
let prop_json_to_line =
  QCheck.Test.make ~name:"to_line is one parseable line" ~count:200
    (QCheck.make ~print:(Json.to_string ~indent:1) json_gen)
    (fun j ->
      let s = Json.to_line j in
      (not (String.contains s '\n')) && Json.parse s = Ok j)

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (1.5, "ab") ];
  let drain () =
    let rec go acc =
      match Heap.pop h with None -> List.rev acc | Some (_, v) -> go (v :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "ab"; "b"; "c" ] (drain ())

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:1.0 v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (drain [])

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Heap.push h ~priority:1.0 42;
  Alcotest.(check bool) "nonempty" false (Heap.is_empty h);
  check_int "size" 1 (Heap.size h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p ()) prios;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

(* the heap is the admission queue's spine now, not just the simulator's
   event queue: pops must be a permutation of the pushes (no job lost or
   duplicated), FIFO among equal priorities must hold for arbitrary
   interleavings, and size/peek must stay consistent mid-stream *)
let prop_heap_permutation =
  QCheck.Test.make ~name:"heap pops a permutation of pushes" ~count:200
    QCheck.(list (pair (float_range 0. 10.) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h ~priority:p v) items;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (p, v) -> drain ((p, v) :: acc)
      in
      let out = drain [] in
      List.sort compare out = List.sort compare items
      && Heap.is_empty h && Heap.size h = 0)

let prop_heap_fifo_random =
  QCheck.Test.make ~name:"heap FIFO among duplicate priorities" ~count:200
    (* few distinct priorities over many values forces ties *)
    QCheck.(list_of_size Gen.(int_range 0 40) (int_range 0 3))
    (fun prios ->
      let h = Heap.create () in
      List.iteri
        (fun seq p -> Heap.push h ~priority:(float_of_int p) (p, seq))
        prios;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let out = drain [] in
      (* stable sort by priority preserves push order within each tie
         class — exactly the heap's contract *)
      out = List.stable_sort (fun (a, _) (b, _) -> compare a b) out)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap size/peek under interleaved push-pop"
    ~count:200
    QCheck.(list (pair bool (float_range 0. 100.)))
    (fun ops ->
      let h = Heap.create () in
      let n = ref 0 in
      List.for_all
        (fun (is_push, p) ->
          let ok =
            if is_push then begin
              Heap.push h ~priority:p ();
              incr n;
              true
            end
            else
              match (Heap.peek h, Heap.pop h) with
              | None, None -> !n = 0
              | Some (pk, ()), Some (pp, ()) ->
                decr n;
                pk = pp
              | _ -> false
          in
          ok && Heap.size h = !n && Heap.is_empty h = (!n = 0))
        ops)

(* ---------- Table ---------- *)

let test_table_rejects_long_row () =
  let t = Table.create ~header:[ "a" ] in
  Alcotest.check_raises "too long"
    (Invalid_argument "Table.add_row: row longer than header") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_vec_dim_mismatch () =
  Alcotest.(check bool) "add raises" true
    (try
       ignore (Vec.add [| 1 |] [| 1; 2 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dot raises" true
    (try
       ignore (Vec.dot [| 1 |] [| 1; 2 |]);
       false
     with Invalid_argument _ -> true)

let test_divisors_rejects_nonpositive () =
  Alcotest.check_raises "zero" (Invalid_argument "Ints.divisors: need n > 0")
    (fun () -> ignore (Ints.divisors 0))

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  Alcotest.(check int) "line count" 4
    (List.length (String.split_on_char '\n' s))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_util"
    [
      ( "ints",
        [
          Alcotest.test_case "fdiv" `Quick test_fdiv_basic;
          Alcotest.test_case "fmod" `Quick test_fmod_basic;
          Alcotest.test_case "cdiv" `Quick test_cdiv_basic;
          Alcotest.test_case "fdiv zero" `Quick test_fdiv_zero;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "overflow" `Quick test_overflow;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "divisors" `Quick test_divisors;
          q prop_fdiv_fmod;
          q prop_gcd_divides;
        ] );
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "lex" `Quick test_vec_lex;
          Alcotest.test_case "insert/remove" `Quick test_vec_insert_remove;
          q prop_insert_remove;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_parse_scalars;
          Alcotest.test_case "nested" `Quick test_json_parse_nested;
          Alcotest.test_case "error positions" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          q prop_json_roundtrip;
          q prop_json_roundtrip_compact;
          q prop_json_to_line;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          q prop_heap_sorted;
          q prop_heap_permutation;
          q prop_heap_fifo_random;
          q prop_heap_interleaved;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "long row" `Quick test_table_rejects_long_row;
        ] );
      ( "edges",
        [
          Alcotest.test_case "vec dim mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "divisors nonpositive" `Quick
            test_divisors_rejects_nonpositive;
        ] );
    ]
