(* Tests for the autotuning subsystem (lib/tune): candidate generation
   legality, predictor accuracy bounds, the search loop's acceptance
   criteria on the fig6 SOR configuration, and the on-disk cache. *)

module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Plan = Tiles_core.Plan
module Netmodel = Tiles_mpisim.Netmodel
module Sim = Tiles_mpisim.Sim
module Executor = Tiles_runtime.Executor
module Kernel = Tiles_runtime.Kernel
module Candidate = Tiles_tune.Candidate
module Predictor = Tiles_tune.Predictor
module Cache = Tiles_tune.Cache
module Tune = Tiles_tune.Tune

let net = Netmodel.fast_ethernet_cluster

(* ---------------- candidate generation ---------------- *)

(* some swept factor combinations do not construct (non-integer P);
   the search loop filters those — but every candidate that does
   construct must be legal for the nest's dependences *)
let check_all_legal name nest ~procs ~factors =
  let cands = Candidate.generate ~nest ~procs ~factors () in
  Alcotest.(check bool) (name ^ ": generates candidates") true (cands <> []);
  let constructed = ref 0 in
  List.iter
    (fun c ->
      match Candidate.tiling c with
      | tiling ->
        incr constructed;
        if not (Tiling.legal_for tiling nest.Nest.deps) then
          Alcotest.failf "%s: illegal candidate %s" name (Candidate.label c)
      | exception (Invalid_argument _ | Failure _) -> ())
    cands;
  Alcotest.(check bool)
    (name ^ ": some candidate constructs")
    true (!constructed > 0)

let test_candidates_legal_sor () =
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:24 in
  check_all_legal "sor" (Tiles_apps.Sor.nest p) ~procs:4 ~factors:[ 2; 3 ]

let test_candidates_legal_jacobi () =
  let p = Tiles_apps.Jacobi.make ~t_steps:8 ~size:12 in
  check_all_legal "jacobi" (Tiles_apps.Jacobi.nest p) ~procs:4 ~factors:[ 2; 3 ]

let test_candidates_legal_adi () =
  let p = Tiles_apps.Adi.make ~t_steps:8 ~size:12 in
  check_all_legal "adi" (Tiles_apps.Adi.nest p) ~procs:4 ~factors:[ 2; 3 ]

let test_candidates_respect_budget () =
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:24 in
  let nest = Tiles_apps.Sor.nest p in
  List.iter
    (fun c ->
      match Plan.make ~m:c.Candidate.m nest (Candidate.tiling c) with
      | plan ->
        let np = Plan.nprocs plan in
        if np > 4 then
          Alcotest.failf "candidate %s uses %d > 4 processors"
            (Candidate.label c) np
      | exception (Invalid_argument _ | Failure _) -> ())
    (Candidate.generate ~nest ~procs:4 ~factors:[ 2; 3 ] ())

(* ---------------- inner subtile candidates ---------------- *)

let test_inner_candidates () =
  let ws width b = 8 * max 1 width * Array.fold_left ( * ) 1 b in
  (* a tile that already fits the budget searches nothing: the unblocked
     walk is the only candidate, so small configurations pay zero extra
     measurement cost *)
  (match Candidate.inner_candidates ~width:1 [| 4; 8; 8 |] with
  | [ None ] -> ()
  | l -> Alcotest.failf "cache-resident tile generated %d candidates"
           (List.length l));
  (* a big tile: None leads, every blocked shape divides the tile, fits
     the budget and is distinct *)
  let v = [| 8; 256; 512 |] in
  let budget_bytes = 1 lsl 18 in
  (match Candidate.inner_candidates ~budget_bytes ~width:2 v with
  | None :: (_ :: _ as blocked) ->
    let seen = Hashtbl.create 8 in
    List.iter
      (function
        | None -> Alcotest.fail "None must appear only once, leading"
        | Some b ->
          Alcotest.(check int) "dimension" (Array.length v) (Array.length b);
          Array.iteri
            (fun k bk ->
              Alcotest.(check bool) "divides the tile" true
                (bk >= 1 && v.(k) mod bk = 0))
            b;
          Alcotest.(check bool) "fits the budget" true
            (ws 2 b <= budget_bytes);
          let key = String.concat "," (List.map string_of_int (Array.to_list b)) in
          Alcotest.(check bool) "distinct" false (Hashtbl.mem seen key);
          Hashtbl.add seen key ())
      blocked;
    Alcotest.(check bool) "bounded" true (List.length blocked <= 8)
  | _ -> Alcotest.fail "large tile must offer blocked candidates after None");
  (* the predictor prefers the largest cache-fitting subtile and never
     rewards a spilling one *)
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:24 in
  let nest = Tiles_apps.Sor.nest p in
  let plan =
    Plan.make ~m:Tiles_apps.Sor.mapping_dim nest
      (Tiles_apps.Sor.rect ~x:8 ~y:24 ~z:24)
  in
  let loc inner = (Predictor.predict ~width:1 ?inner plan ~net).Predictor.inner_locality in
  Alcotest.(check (float 0.)) "unblocked locality is neutral" 1.0 (loc None)

(* ---------------- predictor vs simulator ---------------- *)

(* both passes exist to rank candidates, not to hit the clock exactly;
   bound their error by a generous constant factor *)
let check_bounded name plan ~kernel =
  let r = Executor.run ~mode:Executor.Timing ~plan ~kernel ~net () in
  let sim = r.Executor.stats.Sim.completion in
  List.iter
    (fun (pass, est) ->
      let ratio = est.Predictor.total /. sim in
      if ratio < 0.2 || ratio > 5.0 then
        Alcotest.failf "%s/%s: predictor off by %.2fx (%.5fs vs %.5fs)" name
          pass ratio est.Predictor.total sim)
    [
      ("predict", Predictor.predict ~width:kernel.Kernel.width plan ~net);
      ("refine", Predictor.refine ~width:kernel.Kernel.width plan ~net);
    ]

let test_predictor_bounded_sor () =
  let p = Tiles_apps.Sor.make ~m_steps:40 ~size:60 in
  let nest = Tiles_apps.Sor.nest p in
  let kernel = Tiles_apps.Sor.kernel p in
  check_bounded "sor-rect"
    (Plan.make ~m:2 nest (Tiles_apps.Sor.rect ~x:20 ~y:15 ~z:4))
    ~kernel;
  check_bounded "sor-nonrect"
    (Plan.make ~m:2 nest (Tiles_apps.Sor.nonrect ~x:20 ~y:15 ~z:4))
    ~kernel

let test_predictor_bounded_jacobi () =
  let p = Tiles_apps.Jacobi.make ~t_steps:16 ~size:24 in
  let nest = Tiles_apps.Jacobi.nest p in
  let kernel = Tiles_apps.Jacobi.kernel p in
  check_bounded "jacobi-rect"
    (Plan.make ~m:0 nest (Tiles_apps.Jacobi.rect ~x:4 ~y:10 ~z:10))
    ~kernel;
  check_bounded "jacobi-nonrect"
    (Plan.make ~m:0 nest (Tiles_apps.Jacobi.nonrect ~x:4 ~y:10 ~z:10))
    ~kernel

let test_predictor_bounded_adi () =
  let p = Tiles_apps.Adi.make ~t_steps:16 ~size:24 in
  let nest = Tiles_apps.Adi.nest p in
  let kernel = Tiles_apps.Adi.kernel p in
  check_bounded "adi-rect"
    (Plan.make ~m:0 nest (Tiles_apps.Adi.rect ~x:4 ~y:8 ~z:8))
    ~kernel;
  check_bounded "adi-nr3"
    (Plan.make ~m:0 nest (Tiles_apps.Adi.nr3 ~x:4 ~y:8 ~z:8))
    ~kernel

(* ---------------- the search on the fig6 SOR configuration ---------------- *)

let fig6 =
  lazy
    (let p = Tiles_apps.Sor.make ~m_steps:100 ~size:200 in
     let nest = Tiles_apps.Sor.nest p in
     let kernel = Tiles_apps.Sor.kernel p in
     let options =
       {
         Tune.default_options with
         Tune.procs = 16;
         factors = [ 2; 3; 4; 6; 8 ];
         top_k = 8;
       }
     in
     let result = Tune.search ~options ~nest ~kernel ~net () in
     (nest, kernel, result))

let completion_of (s : Tune.scored) =
  match s.Tune.score with
  | Some sc -> sc.Cache.completion
  | None -> Alcotest.fail "scored candidate has no simulator score"

let test_tuner_best_is_legal () =
  let nest, _, r = Lazy.force fig6 in
  let best = r.Tune.best in
  let tiling = Candidate.tiling best.Tune.cand in
  Alcotest.(check bool) "legal" true (Tiling.legal_for tiling nest.Nest.deps);
  let plan = Tune.plan_of ~nest best.Tune.cand in
  Alcotest.(check bool) "within budget" true (Plan.nprocs plan <= 16)

(* acceptance: the tuner must match or beat the best hand-picked fig6
   tiling (nonrect z=4 on the 50×34 grid) under the same nest, net and
   processor budget *)
let test_tuner_beats_hand_picked () =
  let nest, kernel, r = Lazy.force fig6 in
  let hand =
    let plan = Plan.make ~m:2 nest (Tiles_apps.Sor.nonrect ~x:50 ~y:34 ~z:4) in
    Executor.run ~mode:Executor.Timing ~plan ~kernel ~net ()
  in
  let tuned = completion_of r.Tune.best in
  let hand = hand.Executor.stats.Sim.completion in
  if tuned > hand +. 1e-12 then
    Alcotest.failf "tuned %.6fs worse than hand-picked %.6fs" tuned hand

(* acceptance: the predictor must rank the simulator's best candidate
   within its own top 3 *)
let test_sim_best_in_predictor_top3 () =
  let _, _, r = Lazy.force fig6 in
  let by_pred =
    List.sort
      (fun (a : Tune.scored) b ->
        compare a.Tune.predicted.Predictor.total
          b.Tune.predicted.Predictor.total)
      r.Tune.simulated
  in
  let sim_best = List.hd r.Tune.simulated in
  let rank =
    let rec find i = function
      | [] -> Alcotest.fail "simulator best missing from predictor ranking"
      | (x : Tune.scored) :: rest ->
        if x.Tune.cand = sim_best.Tune.cand then i else find (i + 1) rest
    in
    find 1 by_pred
  in
  if rank > 3 then
    Alcotest.failf "simulator best %s has predictor rank %d (> 3)"
      (Candidate.label sim_best.Tune.cand)
      rank

let test_simulated_sorted_and_scored () =
  let _, _, r = Lazy.force fig6 in
  Alcotest.(check bool) "nonempty" true (r.Tune.simulated <> []);
  let completions = List.map completion_of r.Tune.simulated in
  Alcotest.(check bool) "sorted by completion" true
    (List.sort compare completions = completions);
  Alcotest.(check bool) "pruned unscored" true
    (List.for_all (fun s -> s.Tune.score = None) r.Tune.pruned);
  Alcotest.(check bool) "counts consistent" true
    (r.Tune.feasible <= r.Tune.generated
    && List.length r.Tune.simulated + List.length r.Tune.pruned
       = r.Tune.feasible)

(* ---------------- on-disk cache ---------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tilec-tune-test-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let test_cache_hits_identical () =
  with_temp_dir @@ fun dir ->
  let p = Tiles_apps.Adi.make ~t_steps:10 ~size:12 in
  let nest = Tiles_apps.Adi.nest p in
  let kernel = Tiles_apps.Adi.kernel p in
  let options =
    {
      Tune.default_options with
      Tune.procs = 4;
      factors = [ 2; 3 ];
      top_k = 4;
      cache_dir = Some dir;
    }
  in
  let r1 = Tune.search ~options ~nest ~kernel ~net () in
  let r2 = Tune.search ~options ~nest ~kernel ~net () in
  Alcotest.(check int) "first run all misses" 0 r1.Tune.cache_hits;
  Alcotest.(check int) "second run all hits"
    (List.length r2.Tune.simulated)
    r2.Tune.cache_hits;
  Alcotest.(check bool) "second run served from cache" true
    (List.for_all (fun s -> s.Tune.from_cache) r2.Tune.simulated);
  (* bit-identical scores, not merely close *)
  List.iter2
    (fun (a : Tune.scored) (b : Tune.scored) ->
      Alcotest.(check bool)
        (Candidate.label a.Tune.cand ^ ": identical score")
        true
        (a.Tune.cand = b.Tune.cand && a.Tune.score = b.Tune.score))
    r1.Tune.simulated r2.Tune.simulated

(* the shm backend scores survivors on real domains: every surviving
   candidate must come back with a positive wall-clock measurement and
   the same deterministic counters a sim-backed search would report *)
let test_shm_backend_search () =
  let p = Tiles_apps.Sor.make ~m_steps:8 ~size:10 in
  let nest = Tiles_apps.Sor.nest p in
  let kernel = Tiles_apps.Sor.kernel p in
  let options =
    {
      Tune.default_options with
      Tune.procs = 2;
      factors = [ 2; 4 ];
      top_k = 2;
      backend = Tune.Shm;
      overlap = true;
    }
  in
  let r = Tune.search ~options ~nest ~kernel ~net () in
  Alcotest.(check bool) "simulated non-empty" true (r.Tune.simulated <> []);
  List.iter
    (fun (s : Tune.scored) ->
      match s.Tune.score with
      | Some sc ->
        Alcotest.(check bool) "wall time positive" true
          (sc.Cache.completion > 0.);
        Alcotest.(check bool) "messages non-negative" true
          (sc.Cache.messages >= 0);
        Alcotest.(check bool) "points counted" true
          (sc.Cache.points_computed > 0)
      | None -> Alcotest.fail "surviving candidate lacks a score")
    r.Tune.simulated

let test_cache_key_sensitivity () =
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:24 in
  let nest = Tiles_apps.Sor.nest p in
  let kernel = Tiles_apps.Sor.kernel p in
  let tiling = Tiles_apps.Sor.nonrect ~x:6 ~y:9 ~z:3 in
  let key = Cache.key ~inner:None ~nest ~tiling ~m:2 ~kernel ~net
      ~overlap:false ~backend:"sim" in
  let variants =
    [
      Cache.key ~inner:None ~nest ~tiling ~m:1 ~kernel ~net ~overlap:false
        ~backend:"sim";
      Cache.key ~inner:None ~nest ~tiling ~m:2 ~kernel ~net ~overlap:true
        ~backend:"sim";
      Cache.key ~inner:None ~nest ~tiling ~m:2 ~kernel ~net ~overlap:false
        ~backend:"shm";
      Cache.key ~inner:None ~nest ~tiling ~m:2 ~kernel
        ~net:{ net with Netmodel.latency = net.Netmodel.latency *. 2. }
        ~overlap:false ~backend:"sim";
      Cache.key ~inner:None ~nest
        ~tiling:(Tiles_apps.Sor.nonrect ~x:6 ~y:9 ~z:4)
        ~m:2 ~kernel ~net ~overlap:false ~backend:"sim";
      (* the walker's subtile shape is part of the configuration *)
      Cache.key ~inner:(Some [| 2; 4; 4 |]) ~nest ~tiling ~m:2 ~kernel ~net
        ~overlap:false ~backend:"sim";
      Cache.key ~inner:(Some [| 2; 4; 2 |]) ~nest ~tiling ~m:2 ~kernel ~net
        ~overlap:false ~backend:"sim";
    ]
  in
  List.iteri
    (fun i k ->
      if k = key then Alcotest.failf "variant %d collides with base key" i)
    variants;
  Alcotest.(check string) "key is deterministic" key
    (Cache.key ~inner:None ~nest ~tiling ~m:2 ~kernel ~net ~overlap:false
       ~backend:"sim")

let sample_score =
  {
    Cache.completion = 0.125;
    speedup = 3.5;
    messages = 42;
    bytes = 1024;
    points_computed = 4096;
    tiles_executed = 64;
  }

(* a crashed writer, disk-full truncation or plain garbage must read as
   a miss — the daemon's tune jobs share one cache directory, and a
   lookup that raises would take the whole worker down *)
let test_cache_corrupt_entry_is_miss () =
  with_temp_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  let write_raw k bytes =
    let oc = open_out_bin (Filename.concat dir (k ^ ".score")) in
    output_string oc bytes;
    close_out oc
  in
  (* sanity: a good entry round-trips *)
  Cache.store c "good" sample_score;
  Alcotest.(check bool) "good entry found" true
    (Cache.find c "good" = Some sample_score);
  (* garbage bytes: not even a Marshal header *)
  write_raw "garbage" "this is not a marshalled score";
  Alcotest.(check bool) "garbage is a miss" true (Cache.find c "garbage" = None);
  (* truncation: a valid prefix of a real entry (killed mid-write) *)
  let full =
    let path = Filename.concat dir "good.score" in
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  in
  write_raw "truncated" (String.sub full 0 (String.length full / 2));
  Alcotest.(check bool) "truncated is a miss" true
    (Cache.find c "truncated" = None);
  write_raw "empty" "";
  Alcotest.(check bool) "empty is a miss" true (Cache.find c "empty" = None);
  (* a wrong-version entry (stale schema) is rejected, not decoded *)
  let oc = open_out_bin (Filename.concat dir "stale.score") in
  Marshal.to_channel oc ((-1, sample_score) : int * Cache.score) [];
  close_out oc;
  Alcotest.(check bool) "stale version is a miss" true
    (Cache.find c "stale" = None);
  (* and none of the bad entries disturbed the good one *)
  Alcotest.(check bool) "good entry still intact" true
    (Cache.find c "good" = Some sample_score)

(* many domains hammering one key and one directory: stores must never
   collide on a temp file or expose a half-written entry *)
let test_cache_concurrent_stores () =
  with_temp_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  let writers = 4 and rounds = 50 in
  let domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              Cache.store c "contended"
                { sample_score with Cache.messages = (w * 1000) + i };
              (* interleave reads: every observation is a complete entry *)
              match Cache.find c "contended" with
              | Some s ->
                if s.Cache.completion <> sample_score.Cache.completion then
                  failwith "partial entry observed"
              | None -> failwith "entry vanished mid-race"
            done))
  in
  List.iter Domain.join domains;
  (* last writer wins with some complete entry *)
  (match Cache.find c "contended" with
  | Some s ->
    Alcotest.(check bool) "final entry complete" true
      (s.Cache.completion = sample_score.Cache.completion)
  | None -> Alcotest.fail "no entry after the race");
  (* no temp litter left behind *)
  let tmp_files =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "no leaked temp files" [] tmp_files

let () =
  Alcotest.run "tiles_tune"
    [
      ( "candidate",
        [
          Alcotest.test_case "sor legal" `Quick test_candidates_legal_sor;
          Alcotest.test_case "jacobi legal" `Quick test_candidates_legal_jacobi;
          Alcotest.test_case "adi legal" `Quick test_candidates_legal_adi;
          Alcotest.test_case "budget" `Quick test_candidates_respect_budget;
          Alcotest.test_case "inner subtiles" `Quick test_inner_candidates;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "sor bounded" `Quick test_predictor_bounded_sor;
          Alcotest.test_case "jacobi bounded" `Quick
            test_predictor_bounded_jacobi;
          Alcotest.test_case "adi bounded" `Quick test_predictor_bounded_adi;
        ] );
      ( "search",
        [
          Alcotest.test_case "best is legal" `Slow test_tuner_best_is_legal;
          Alcotest.test_case "beats hand-picked" `Slow
            test_tuner_beats_hand_picked;
          Alcotest.test_case "sim best in predictor top 3" `Slow
            test_sim_best_in_predictor_top3;
          Alcotest.test_case "result invariants" `Slow
            test_simulated_sorted_and_scored;
          Alcotest.test_case "shm backend" `Slow test_shm_backend_search;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits identical" `Quick test_cache_hits_identical;
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "corrupt entries are misses" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "concurrent stores" `Quick
            test_cache_concurrent_stores;
        ] );
    ]
