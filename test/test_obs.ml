module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Stats = Tiles_obs.Stats
module Chrome = Tiles_obs.Chrome
module Json = Tiles_util.Json
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel
module Plan = Tiles_core.Plan
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor

let net = Netmodel.fast_ethernet_cluster

let sor_plan () =
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:16 in
  ( Plan.make ~m:2 (Tiles_apps.Sor.nest p) (Tiles_apps.Sor.nonrect ~x:3 ~y:4 ~z:4),
    Tiles_apps.Sor.kernel p )

let sim_run () =
  let plan, kernel = sor_plan () in
  Executor.run ~mode:Executor.Full ~trace:true ~plan ~kernel ~net ()

let shm_run () =
  let plan, kernel = sor_plan () in
  Shm_executor.run ~trace:true ~plan ~kernel ()

(* ---------------- recorder unit tests ---------------- *)

let test_recorder_counters () =
  let t = Recorder.create ~nprocs:2 () in
  let l0 = Recorder.log t ~rank:0 and l1 = Recorder.log t ~rank:1 in
  Recorder.message_sent l0 ~dst:1 ~tag:0 ~bytes:100 ();
  Recorder.message_sent l0 ~dst:1 ~tag:1 ~bytes:50 ();
  Recorder.message_received l1 ~src:0 ~tag:0 ~bytes:100 ();
  Recorder.message_sent l1 ~dst:0 ~tag:0 ~bytes:25 ();
  Alcotest.(check int) "messages" 3 (Recorder.messages t);
  Alcotest.(check int) "bytes" 175 (Recorder.bytes t);
  Alcotest.(check (list int)) "rank messages" [ 2; 1 ]
    (Array.to_list (Recorder.rank_messages t));
  Alcotest.(check (list int)) "rank bytes" [ 150; 25 ]
    (Array.to_list (Recorder.rank_bytes t));
  (* in-flight peaked at 150 before rank 1 drained 100 *)
  Alcotest.(check int) "high water" 150 (Recorder.max_inflight_bytes t)

let test_recorder_untraced_drops_spans () =
  let t = Recorder.create ~nprocs:1 () in
  let l = Recorder.log t ~rank:0 in
  Recorder.span l ~t0:0. ~t1:1. Span.Compute;
  Recorder.close l Span.Send;
  Alcotest.(check (list (float 0.))) "no spans" []
    (List.map Span.duration (Recorder.spans t))

let test_recorder_virtual_clock () =
  let now = ref 0. in
  let t = Recorder.create ~trace:true ~clock:(fun () -> !now) ~nprocs:1 () in
  let l = Recorder.log t ~rank:0 in
  Recorder.mark l;
  now := 2.;
  Recorder.close l Span.Compute;
  now := 3.5;
  Recorder.close l Span.Send;
  Recorder.span l ~t0:5. ~t1:4. Span.Wait (* reversed: dropped *);
  match Recorder.spans t with
  | [ a; b ] ->
    Alcotest.(check (float 1e-12)) "first closes [0,2]" 2. (Span.duration a);
    Alcotest.(check bool) "first is compute" true (a.Span.kind = Span.Compute);
    Alcotest.(check (float 1e-12)) "second closes [2,3.5]" 1.5 (Span.duration b);
    Alcotest.(check bool) "second is send" true (b.Span.kind = Span.Send)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* ---------------- span invariants on real traces ---------------- *)

let check_rank_spans_disjoint name spans ~nprocs =
  Array.iteri
    (fun rank spans ->
      let rec go = function
        | a :: (b :: _ as rest) ->
          if a.Span.t1 > b.Span.t0 +. 1e-9 then
            Alcotest.failf "%s: rank %d spans overlap: [%g,%g] then [%g,%g]"
              name rank a.Span.t0 a.Span.t1 b.Span.t0 b.Span.t1;
          go rest
        | _ -> ()
      in
      go spans)
    (Span.by_rank ~nprocs spans)

let test_sim_span_invariants () =
  let r = sim_run () in
  let stats = r.Executor.stats in
  let nprocs = Array.length stats.Sim.rank_clocks in
  Alcotest.(check bool) "trace nonempty" true (stats.Sim.trace <> []);
  check_rank_spans_disjoint "sim" stats.Sim.trace ~nprocs;
  (* every rank's span durations sum to at most its final clock *)
  Array.iteri
    (fun rank spans ->
      let total = List.fold_left (fun a s -> a +. Span.duration s) 0. spans in
      if total > stats.Sim.rank_clocks.(rank) +. 1e-9 then
        Alcotest.failf "rank %d: %g traced > %g clock" rank total
          stats.Sim.rank_clocks.(rank))
    (Span.by_rank ~nprocs stats.Sim.trace);
  (* the merged list is globally time-ordered *)
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Span.t0 <= b.Span.t0 && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "merged trace time-ordered" true
    (ordered stats.Sim.trace)

let test_shm_span_invariants () =
  let r = shm_run () in
  Alcotest.(check bool) "trace nonempty" true (r.Shm_executor.trace <> []);
  check_rank_spans_disjoint "shm" r.Shm_executor.trace
    ~nprocs:r.Shm_executor.nprocs;
  List.iter
    (fun s ->
      if Span.duration s < 0. then
        Alcotest.failf "negative span duration %g" (Span.duration s))
    r.Shm_executor.trace

(* both backends execute the same protocol, so their message and byte
   counts must agree exactly — globally and per rank *)
let test_sim_shm_counters_agree () =
  let sim = sim_run () and shm = shm_run () in
  let agg = Tiles_mpisim.Trace.aggregate sim.Executor.stats in
  Alcotest.(check int) "messages" agg.Stats.messages
    shm.Shm_executor.stats.Stats.messages;
  Alcotest.(check int) "bytes" agg.Stats.bytes
    shm.Shm_executor.stats.Stats.bytes;
  (* the in-flight high-water mark depends on the interleaving, so the
     wall-clock backend's is only bounded, not equal *)
  let shm_hw = shm.Shm_executor.stats.Stats.max_inflight_bytes in
  Alcotest.(check bool) "max in-flight positive and bounded" true
    (shm_hw > 0 && shm_hw <= agg.Stats.bytes);
  Array.iteri
    (fun i (a : Stats.rank) ->
      let b = shm.Shm_executor.stats.Stats.ranks.(i) in
      Alcotest.(check int)
        (Printf.sprintf "rank %d messages" i)
        a.Stats.messages b.Stats.messages;
      Alcotest.(check int)
        (Printf.sprintf "rank %d bytes" i)
        a.Stats.bytes b.Stats.bytes)
    agg.Stats.ranks;
  (* and the shm run really computed the right answer *)
  Alcotest.(check (float 1e-9)) "shm correct" 0. shm.Shm_executor.max_abs_err

(* ---------------- aggregate stats ---------------- *)

let test_stats_make () =
  let spans =
    [
      { Span.rank = 0; t0 = 0.; t1 = 2.; kind = Span.Compute };
      { Span.rank = 0; t0 = 2.; t1 = 3.; kind = Span.Send };
      { Span.rank = 1; t0 = 0.; t1 = 1.; kind = Span.Wait };
      { Span.rank = 1; t0 = 1.; t1 = 2.; kind = Span.Unpack };
      { Span.rank = 1; t0 = 2.; t1 = 2.5; kind = Span.Pack };
    ]
  in
  let s =
    Stats.make ~completion:4. ~nprocs:2 ~messages:3 ~bytes:120
      ~max_inflight_bytes:80 spans
  in
  Alcotest.(check (float 1e-12)) "rank0 busy" 3. s.Stats.ranks.(0).Stats.busy;
  Alcotest.(check (float 1e-12)) "rank0 busy fraction" 0.75
    s.Stats.ranks.(0).Stats.busy_fraction;
  Alcotest.(check (float 1e-12)) "rank1 wait not busy" 1.5
    s.Stats.ranks.(1).Stats.busy;
  Alcotest.(check (float 1e-12)) "total compute" 2. s.Stats.total_compute;
  Alcotest.(check (float 1e-12)) "total comm" 3.5 s.Stats.total_comm;
  Alcotest.(check (float 1e-12)) "ratio" 1.75 s.Stats.comm_compute_ratio;
  Alcotest.(check (float 1e-12)) "max rank busy" 3. s.Stats.max_rank_busy;
  Alcotest.(check (float 0.)) "no causal path without edges" 0.
    s.Stats.critical_path;
  (* json embeds per-rank busy fractions *)
  match Stats.to_json s with
  | Json.Obj kvs ->
    Alcotest.(check bool) "has ranks" true (List.mem_assoc "ranks" kvs);
    Alcotest.(check bool) "has mean_busy_fraction" true
      (List.mem_assoc "mean_busy_fraction" kvs)
  | _ -> Alcotest.fail "stats json not an object"

let test_stats_untraced () =
  let s =
    Stats.make ~completion:1. ~nprocs:2 ~messages:5 ~bytes:40
      ~max_inflight_bytes:16 []
  in
  Alcotest.(check int) "messages survive" 5 s.Stats.messages;
  Alcotest.(check (float 0.)) "no busy" 0. s.Stats.mean_busy_fraction

(* ---------------- chrome exporter ---------------- *)

let test_chrome_json_shape () =
  let spans =
    [
      { Span.rank = 0; t0 = 0.; t1 = 1e-3; kind = Span.Compute };
      { Span.rank = 1; t0 = 1e-3; t1 = 2e-3; kind = Span.Wait };
    ]
  in
  match Chrome.to_json ~process_name:"test" ~nprocs:2 spans with
  | Json.Obj kvs ->
    (match List.assoc_opt "traceEvents" kvs with
    | Some (Json.List events) ->
      (* 1 process_name + 2 thread_name metadata + 2 "X" events *)
      Alcotest.(check int) "event count" 5 (List.length events);
      let phases =
        List.filter_map
          (fun e ->
            match e with
            | Json.Obj fields ->
              (match List.assoc_opt "ph" fields with
              | Some (Json.Str p) -> Some p
              | _ -> None)
            | _ -> None)
          events
      in
      Alcotest.(check int) "metadata events" 3
        (List.length (List.filter (( = ) "M") phases));
      Alcotest.(check int) "complete events" 2
        (List.length (List.filter (( = ) "X") phases));
      (* an "X" event carries microsecond ts/dur *)
      let x =
        List.find
          (fun e ->
            match e with
            | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.Str "X")
            | _ -> false)
          events
      in
      (match x with
      | Json.Obj f ->
        (match (List.assoc_opt "ts" f, List.assoc_opt "dur" f) with
        | Some (Json.Float ts), Some (Json.Float dur) ->
          Alcotest.(check (float 1e-9)) "ts scaled" 0. ts;
          Alcotest.(check (float 1e-9)) "dur scaled" 1000. dur
        | _ -> Alcotest.fail "X event lacks ts/dur floats")
      | _ -> assert false)
    | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "chrome json not an object"

let test_chrome_write () =
  let path = Filename.temp_file "tiles_trace" ".json" in
  Chrome.write ~nprocs:1 ~path
    [ { Span.rank = 0; t0 = 0.; t1 = 1.; kind = Span.Send } ];
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "mentions traceEvents" true
    (Astring.String.is_infix ~affix:"traceEvents" s);
  Alcotest.(check bool) "displayTimeUnit" true
    (Astring.String.is_infix ~affix:"displayTimeUnit" s)

(* ---------------- metric distributions ---------------- *)

module Metric = Tiles_obs.Metric
module Baseline = Tiles_obs.Baseline
module Residual = Tiles_obs.Residual
module Runmeta = Tiles_obs.Runmeta

let test_metric_summary () =
  let s = Metric.of_values [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Metric.count;
  Alcotest.(check (float 1e-12)) "mean" 2.5 s.Metric.mean;
  (* sample stddev of 1..4 is sqrt(5/3) *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (5. /. 3.)) s.Metric.stddev;
  Alcotest.(check (float 0.)) "min" 1.0 s.Metric.min;
  Alcotest.(check (float 0.)) "max" 4.0 s.Metric.max;
  (* the geometric histogram estimates percentiles within ±2.5% *)
  Alcotest.(check bool) "p50 near 2" true
    (Float.abs (s.Metric.p50 -. 2.0) <= 0.05 *. 2.0);
  Alcotest.(check bool) "p99 near max" true
    (Float.abs (s.Metric.p99 -. 4.0) <= 0.1 *. 4.0);
  Alcotest.(check bool) "ordered" true
    (s.Metric.p50 <= s.Metric.p90 && s.Metric.p90 <= s.Metric.p99)

let test_metric_constant_samples () =
  (* a deterministic quantity must summarize exactly: percentiles are
     clamped into [min, max] so bucket midpoints cannot leak noise *)
  let s = Metric.of_values [ 0.125; 0.125; 0.125 ] in
  Alcotest.(check (float 0.)) "stddev" 0. s.Metric.stddev;
  Alcotest.(check (float 0.)) "p50 exact" 0.125 s.Metric.p50;
  Alcotest.(check (float 0.)) "p99 exact" 0.125 s.Metric.p99

let test_metric_empty () =
  let s = Metric.summarize (Metric.create ()) in
  Alcotest.(check int) "count" 0 s.Metric.count;
  Alcotest.(check (float 0.)) "mean" 0. s.Metric.mean;
  (* percentiles of an empty metric are 0, not the min/max sentinels
     (the clamp used to leak neg_infinity) *)
  Alcotest.(check (float 0.)) "p50" 0. s.Metric.p50;
  Alcotest.(check (float 0.)) "p99" 0. s.Metric.p99;
  Alcotest.(check (float 0.)) "min" 0. s.Metric.min;
  Alcotest.(check (float 0.)) "max" 0. s.Metric.max

let test_metric_rejects_nan () =
  let m = Metric.create () in
  Metric.add m 1.0;
  Metric.add m Float.nan;
  Metric.add m 3.0;
  Alcotest.(check int) "nan not counted" 2 (Metric.count m);
  Alcotest.(check int) "nan tallied" 1 (Metric.nans m);
  let s = Metric.summarize m in
  Alcotest.(check (float 1e-12)) "mean unpoisoned" 2.0 s.Metric.mean;
  Alcotest.(check (float 0.)) "min unpoisoned" 1.0 s.Metric.min;
  Alcotest.(check (float 0.)) "max unpoisoned" 3.0 s.Metric.max;
  (* a metric fed only NaN summarises like an empty one *)
  let n = Metric.create () in
  Metric.add n Float.nan;
  let s = Metric.summarize n in
  Alcotest.(check int) "count" 0 s.Metric.count;
  Alcotest.(check (float 0.)) "p99" 0. s.Metric.p99

let prop_finite_in_finite_out =
  QCheck.Test.make ~name:"finite samples in => finite summary out"
    ~count:200
    QCheck.(
      make
        ~print:Print.(list float)
        Gen.(list_size (int_range 0 40) (float_bound_exclusive 1e9)))
    (fun vs ->
      let s = Metric.of_values vs in
      List.for_all Float.is_finite
        [ s.Metric.mean; s.Metric.stddev; s.Metric.min; s.Metric.max;
          s.Metric.p50; s.Metric.p90; s.Metric.p99 ])

let test_metric_json_roundtrip () =
  let s = Metric.of_values [ 0.5; 0.75; 1.5 ] in
  match Metric.summary_of_json (Metric.summary_to_json s) with
  | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
  | Error e -> Alcotest.failf "summary json did not round-trip: %s" e

let mk_stats ~completion ?(messages = 10) ?(bytes = 100) () =
  Stats.make ~completion ~nprocs:1 ~messages ~bytes ~max_inflight_bytes:50 []

let test_stats_distributions () =
  let runs =
    [ mk_stats ~completion:9.9 (); mk_stats ~completion:1.0 ();
      mk_stats ~completion:1.2 () ]
  in
  let dist = Stats.distributions ~warmup:1 runs in
  let c = List.assoc "completion_s" dist in
  (* the warmup run (9.9) is dropped *)
  Alcotest.(check int) "count" 2 c.Metric.count;
  Alcotest.(check (float 1e-12)) "mean" 1.1 c.Metric.mean;
  Alcotest.(check bool) "all timed fields present" true
    (List.for_all
       (fun (k, _) -> List.mem_assoc k dist)
       (Stats.timed_fields (List.hd runs)));
  (* summary grows a distribution table only when dist is passed *)
  let plain = Stats.summary (List.hd runs) in
  let with_dist = Stats.summary ~dist (List.hd runs) in
  Alcotest.(check bool) "plain has no dist table" false
    (Astring.String.is_infix ~affix:"distributions" plain);
  Alcotest.(check bool) "dist table present" true
    (Astring.String.is_infix ~affix:"distributions" with_dist);
  Alcotest.(check bool) "p99 column" true
    (Astring.String.is_infix ~affix:"p99" with_dist);
  Alcotest.check_raises "empty after warmup"
    (Invalid_argument "Stats.distributions: warmup leaves no measured runs")
    (fun () -> ignore (Stats.distributions ~warmup:3 runs))

let test_dist_json_roundtrip () =
  let dist =
    Stats.distributions [ mk_stats ~completion:1.0 (); mk_stats ~completion:1.5 () ]
  in
  match Stats.dist_of_json (Stats.dist_to_json dist) with
  | Ok d -> Alcotest.(check bool) "roundtrip" true (d = dist)
  | Error e -> Alcotest.failf "dist json did not round-trip: %s" e

(* ---------------- baselines and the regression gate ---------------- *)

let meta ?(app = "sor") () =
  Runmeta.make ~app ~variant:"nonrect" ~size1:12 ~size2:16 ~tile:(3, 4, 4)
    ~nprocs:4 ~backend:"sim" ~netmodel:"fast_ethernet_cluster" ()

let baseline_of ~completions ?messages ?bytes () =
  let runs = List.map (fun c -> mk_stats ~completion:c ?messages ?bytes ()) completions in
  Baseline.make ~meta:(meta ())
    ~stats:(List.hd (List.rev runs))
    ~timings:(Stats.distributions runs)

let test_runmeta_roundtrip () =
  let m = meta () in
  match Runmeta.of_json (Runmeta.to_json m) with
  | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
  | Error e -> Alcotest.failf "runmeta did not round-trip: %s" e

(* the serve fields follow the overlap bit's absent-default discipline:
   present values round-trip, defaults are omitted from the JSON so
   pre-serve artifacts stay byte-identical and still parse *)
let test_runmeta_serve_fields () =
  let m =
    Runmeta.make ~app:"sor" ~variant:"nonrect" ~size1:12 ~size2:16
      ~tile:(3, 4, 4) ~nprocs:4 ~backend:"sim"
      ~netmodel:"fast_ethernet_cluster" ~job_id:"job-17" ~queued_s:0.25 ()
  in
  Alcotest.(check bool) "job_id stored" true
    (m.Runmeta.job_id = Some "job-17");
  (match Runmeta.of_json (Runmeta.to_json m) with
  | Ok m' -> Alcotest.(check bool) "roundtrip with serve fields" true (m = m')
  | Error e -> Alcotest.failf "did not round-trip: %s" e);
  (* defaults are omitted: the rendering without them equals the
     rendering of a meta that never had them *)
  let plain = meta () in
  Alcotest.(check bool) "no job_id by default" true
    (plain.Runmeta.job_id = None);
  (match Runmeta.to_json plain with
  | Tiles_util.Json.Obj fields ->
    Alcotest.(check bool) "job_id omitted at default" true
      (not (List.mem_assoc "job_id" fields));
    Alcotest.(check bool) "queued_s omitted at default" true
      (not (List.mem_assoc "queued_s" fields))
  | _ -> Alcotest.fail "runmeta json is not an object");
  (* old artifacts (no serve fields) parse with the defaults *)
  match Runmeta.of_json (Runmeta.to_json plain) with
  | Ok m' ->
    Alcotest.(check bool) "absent parses as None" true
      (m'.Runmeta.job_id = None && m'.Runmeta.queued_s = 0.0)
  | Error e -> Alcotest.failf "plain meta did not parse: %s" e

let test_baseline_roundtrip_and_load () =
  let b = baseline_of ~completions:[ 1.0; 1.1 ] () in
  (match Baseline.of_json (Baseline.to_json b) with
  | Ok b' -> Alcotest.(check bool) "json roundtrip" true (b = b')
  | Error e -> Alcotest.failf "baseline json did not round-trip: %s" e);
  let path = Filename.temp_file "tiles_baseline" ".json" in
  Baseline.save b ~path;
  (match Baseline.load ~path with
  | Ok b' -> Alcotest.(check bool) "save/load" true (b = b')
  | Error e -> Alcotest.failf "baseline save/load failed: %s" e);
  (* a corrupt file reports the parse position, prefixed by the path *)
  let oc = open_out path in
  output_string oc "{\n  \"schema\": oops\n}";
  close_out oc;
  (match Baseline.load ~path with
  | Ok _ -> Alcotest.fail "corrupt baseline unexpectedly loaded"
  | Error e ->
    Alcotest.(check bool) "error carries position" true
      (Astring.String.is_infix ~affix:"line 2" e));
  Sys.remove path

let test_baseline_refuses_newer_schema () =
  let b = baseline_of ~completions:[ 1.0 ] () in
  let bumped =
    match Baseline.to_json b with
    | Json.Obj kvs ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "schema_version" then
               (k, Json.Int (Baseline.schema_version + 1))
             else (k, v))
           kvs)
    | _ -> Alcotest.fail "baseline json not an object"
  in
  match Baseline.of_json bumped with
  | Ok _ -> Alcotest.fail "newer schema unexpectedly accepted"
  | Error e ->
    Alcotest.(check bool) "names the schema" true
      (Astring.String.is_infix ~affix:"schema" e)

let test_compare_noise_tolerated () =
  (* base is noisy (stddev 0.2); current is 8% slower — beyond the 5%
     relative threshold but well inside 3σ, so the gate stays green *)
  let base = baseline_of ~completions:[ 1.0; 1.2; 0.8 ] () in
  let cur = baseline_of ~completions:[ 1.08; 1.08; 1.08 ] () in
  let v = Baseline.compare ~baseline:base cur in
  Alcotest.(check bool) "ok" true v.Baseline.ok;
  Alcotest.(check int) "no regressions" 0 (List.length v.Baseline.regressions);
  Alcotest.(check bool) "fields were checked" true (v.Baseline.checked > 0);
  Alcotest.(check bool) "report says PASS" true
    (Astring.String.is_infix ~affix:"PASS" (Baseline.report v))

let test_compare_regression_fails () =
  (* deterministic base (stddev 0): a 30% slowdown gates on the
     relative threshold alone *)
  let base = baseline_of ~completions:[ 1.0; 1.0 ] () in
  let cur = baseline_of ~completions:[ 1.3; 1.3 ] () in
  let v = Baseline.compare ~baseline:base cur in
  Alcotest.(check bool) "not ok" false v.Baseline.ok;
  Alcotest.(check bool) "has regression" true (v.Baseline.regressions <> []);
  let d =
    List.find
      (fun (d : Baseline.delta) -> d.Baseline.field = "completion_s")
      v.Baseline.regressions
  in
  Alcotest.(check (float 1e-9)) "rel" 0.3 d.Baseline.rel;
  Alcotest.(check bool) "report says REGRESSION" true
    (Astring.String.is_infix ~affix:"REGRESSION" (Baseline.report v));
  (* the same delta in the other direction is an improvement, not a
     failure *)
  let v' = Baseline.compare ~baseline:cur base in
  Alcotest.(check bool) "improvement ok" true v'.Baseline.ok;
  Alcotest.(check bool) "has improvement" true (v'.Baseline.improvements <> [])

let test_compare_counter_mismatch () =
  let base = baseline_of ~completions:[ 1.0 ] ~messages:10 ~bytes:100 () in
  let cur = baseline_of ~completions:[ 1.0 ] ~messages:11 ~bytes:100 () in
  let v = Baseline.compare ~baseline:base cur in
  Alcotest.(check bool) "not ok" false v.Baseline.ok;
  (match v.Baseline.counter_mismatch with
  | [ (field, b, c) ] ->
    Alcotest.(check string) "field" "messages" field;
    Alcotest.(check int) "base" 10 b;
    Alcotest.(check int) "cur" 11 c
  | l -> Alcotest.failf "expected 1 counter mismatch, got %d" (List.length l));
  (* excluding the counter from the exact list (the shm high-water case)
     lets the comparison pass *)
  let v' = Baseline.compare ~exact:[ "bytes" ] ~baseline:base cur in
  Alcotest.(check bool) "excluded counter tolerated" true v'.Baseline.ok

let test_compare_meta_mismatch () =
  let base = baseline_of ~completions:[ 1.0 ] () in
  let cur = { base with Baseline.meta = meta ~app:"jacobi" () } in
  let v = Baseline.compare ~baseline:base cur in
  Alcotest.(check bool) "not ok" false v.Baseline.ok;
  Alcotest.(check bool) "names app" true
    (List.mem "app" v.Baseline.meta_mismatch)

(* ---------------- model residuals ---------------- *)

let test_residual_calibrate () =
  let e label source predicted observed =
    { Residual.label; source; field = "completion_s"; predicted; observed }
  in
  let entries =
    [
      e "a" "model" 1.5 1.0; (* +50% *)
      e "b" "model" 0.75 1.0; (* -25% *)
      e "a" "refine" 1.0 1.0; (* exact *)
    ]
  in
  Alcotest.(check (float 1e-12)) "rel_error" 0.5
    (Residual.rel_error (e "a" "model" 1.5 1.0));
  Alcotest.(check (float 0.)) "0/0" 0. (Residual.rel_error (e "z" "m" 0. 0.));
  Alcotest.(check bool) "x/0 infinite" true
    (Float.is_infinite (Residual.rel_error (e "z" "m" 2. 0.)));
  (match Residual.calibrate entries with
  | [ m; r ] ->
    Alcotest.(check string) "first source" "model" m.Residual.source;
    Alcotest.(check int) "count" 2 m.Residual.count;
    Alcotest.(check (float 1e-12)) "mean |err|" 0.375 m.Residual.mean_abs_rel;
    Alcotest.(check (float 1e-12)) "bias" 0.125 m.Residual.mean_rel;
    Alcotest.(check (float 1e-12)) "max |err|" 0.5 m.Residual.max_abs_rel;
    Alcotest.(check (float 0.)) "exact source" 0. r.Residual.mean_abs_rel
  | l -> Alcotest.failf "expected 2 calibration rows, got %d" (List.length l));
  let rendered = Residual.report entries in
  Alcotest.(check bool) "report has calibration" true
    (Astring.String.is_infix ~affix:"calibration" rendered);
  match Residual.to_json entries with
  | Json.Obj kvs ->
    Alcotest.(check bool) "json has entries" true (List.mem_assoc "entries" kvs);
    Alcotest.(check bool) "json has calibration" true
      (List.mem_assoc "calibration" kvs)
  | _ -> Alcotest.fail "residual json not an object"

(* ---------------- chrome metadata ---------------- *)

let test_chrome_metadata () =
  let spans = [ { Span.rank = 0; t0 = 0.; t1 = 1e-3; kind = Span.Compute } ] in
  (match Chrome.to_json ~meta:(meta ()) ~nprocs:1 spans with
  | Json.Obj kvs ->
    (match List.assoc_opt "metadata" kvs with
    | Some (Json.Obj m) ->
      Alcotest.(check bool) "has app" true (List.mem_assoc "app" m);
      Alcotest.(check bool) "has tilec_version" true
        (List.mem_assoc "tilec_version" m);
      Alcotest.(check bool) "has backend" true (List.mem_assoc "backend" m)
    | _ -> Alcotest.fail "metadata key missing or not an object")
  | _ -> Alcotest.fail "chrome json not an object");
  (* without meta the key is absent — old consumers see the old shape *)
  match Chrome.to_json ~nprocs:1 spans with
  | Json.Obj kvs ->
    Alcotest.(check bool) "no metadata by default" false
      (List.mem_assoc "metadata" kvs)
  | _ -> Alcotest.fail "chrome json not an object"

(* ---------------- shm mailbox ---------------- *)

let test_mailbox_leak_bounded () =
  let mb = Shm_executor.Mailbox.create () in
  for tag = 0 to 99 do
    Shm_executor.Mailbox.send mb ~tag
      (Tiles_util.Fbuf.of_array [| float_of_int tag |]);
    let got = Shm_executor.Mailbox.recv mb ~tag in
    Alcotest.(check (float 0.)) "payload" (float_of_int tag) got.{0}
  done;
  (* before the fix this table held one empty queue per tag ever used *)
  Alcotest.(check int) "drained queues removed" 0
    (Shm_executor.Mailbox.tag_count mb);
  Shm_executor.Mailbox.send mb ~tag:7 (Tiles_util.Fbuf.of_array [| 1. |]);
  Shm_executor.Mailbox.send mb ~tag:7 (Tiles_util.Fbuf.of_array [| 2. |]);
  Shm_executor.Mailbox.send mb ~tag:9 (Tiles_util.Fbuf.of_array [| 3. |]);
  Alcotest.(check int) "pending tags counted" 2
    (Shm_executor.Mailbox.tag_count mb);
  ignore (Shm_executor.Mailbox.recv mb ~tag:7);
  Alcotest.(check int) "partial drain keeps queue" 2
    (Shm_executor.Mailbox.tag_count mb);
  ignore (Shm_executor.Mailbox.recv mb ~tag:7);
  Alcotest.(check int) "full drain drops queue" 1
    (Shm_executor.Mailbox.tag_count mb)

let test_mailbox_recv_timeout () =
  let mb = Shm_executor.Mailbox.create () in
  (* nobody sends; a nudger stands in for the run's watchdog *)
  let stop = Atomic.make false in
  let nudger =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Unix.sleepf 0.01;
          Shm_executor.Mailbox.nudge mb
        done)
  in
  let raised =
    try
      ignore
        (Shm_executor.Mailbox.recv ~timeout:0.05
           ~diag:(fun () -> "rank 1 blocked (src=0, tag=42)")
           mb ~tag:42);
      None
    with Shm_executor.Recv_timeout msg -> Some msg
  in
  Atomic.set stop true;
  Domain.join nudger;
  match raised with
  | Some msg ->
    Alcotest.(check bool) "diagnostic names the channel" true
      (Astring.String.is_infix ~affix:"tag=42" msg)
  | None -> Alcotest.fail "recv did not time out"

(* timeout = 0. (and negative) used to silently mean "wait forever" —
   exactly the opposite of what the caller asked for; both must be
   rejected up front *)
let test_mailbox_rejects_nonpositive_timeout () =
  let mb = Shm_executor.Mailbox.create () in
  let expect t =
    Alcotest.check_raises
      (Printf.sprintf "timeout %g rejected" t)
      (Invalid_argument
         "Mailbox.recv: timeout must be positive (use infinity to wait \
          forever)")
      (fun () -> ignore (Shm_executor.Mailbox.recv ~timeout:t mb ~tag:0))
  in
  expect 0.;
  expect (-0.5);
  expect nan

(* ---------------- the overlapped send stage ---------------- *)

let test_send_stage_fifo_under_backpressure () =
  let module Stage = Shm_executor.Send_stage in
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Send_stage.create: capacity must be >= 1") (fun () ->
      ignore (Stage.create ~capacity:0));
  let stage = Stage.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Stage.capacity stage);
  let ran = ref [] and mu = Mutex.create () in
  let drainer = Domain.spawn (fun () -> Stage.drain stage) in
  let blocked = ref 0. in
  for i = 1 to 20 do
    blocked :=
      !blocked
      +. Stage.submit stage (fun () ->
             (* the producer outruns this sleep, so the 2-slot queue
                fills and submit must block (and report it) *)
             Unix.sleepf 0.002;
             Mutex.lock mu;
             ran := i :: !ran;
             Mutex.unlock mu)
  done;
  Shm_executor.Send_stage.close stage;
  Domain.join drainer;
  Alcotest.(check (list int)) "every job ran, in FIFO order"
    (List.init 20 (fun i -> i + 1))
    (List.rev !ran);
  Alcotest.(check int) "closed stage drained" 0 (Stage.pending stage);
  Alcotest.(check bool) "backpressure was visible" true (!blocked > 0.);
  Alcotest.check_raises "submit after close rejected"
    (Invalid_argument "Send_stage.submit: stage is closed") (fun () ->
      ignore (Stage.submit stage (fun () -> ())))

(* a deliberately stalled consumer: nobody drains, the bounded queue
   fills, and a finite-timeout submit must raise rather than deadlock *)
let test_send_stage_stalled_consumer_times_out () =
  let module Stage = Shm_executor.Send_stage in
  let stage = Stage.create ~capacity:1 in
  ignore (Stage.submit stage (fun () -> ()));
  Alcotest.(check int) "queue full" 1 (Stage.pending stage);
  (* the nudger stands in for the run's watchdog: Condition.wait has no
     timed variant, so deadlines are only noticed when woken *)
  let stop = Atomic.make false in
  let nudger =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Unix.sleepf 0.01;
          Stage.nudge stage
        done)
  in
  let raised =
    try
      ignore
        (Stage.submit ~timeout:0.05
           ~diag:(fun () -> "rank 3 send stage full (dst=1, tag=9)")
           stage
           (fun () -> ()));
      None
    with Shm_executor.Send_timeout msg -> Some msg
  in
  Atomic.set stop true;
  Domain.join nudger;
  (match raised with
  | Some msg ->
    Alcotest.(check bool) "diagnostic names the channel" true
      (Astring.String.is_infix ~affix:"tag=9" msg)
  | None -> Alcotest.fail "submit did not time out");
  Alcotest.(check int) "stalled job still queued" 1 (Stage.pending stage)

let () =
  Alcotest.run "tiles_obs"
    [
      ( "recorder",
        [
          Alcotest.test_case "counters" `Quick test_recorder_counters;
          Alcotest.test_case "untraced drops spans" `Quick
            test_recorder_untraced_drops_spans;
          Alcotest.test_case "virtual clock close" `Quick
            test_recorder_virtual_clock;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "sim spans" `Quick test_sim_span_invariants;
          Alcotest.test_case "shm spans" `Quick test_shm_span_invariants;
          Alcotest.test_case "sim vs shm counters" `Quick
            test_sim_shm_counters_agree;
        ] );
      ( "stats",
        [
          Alcotest.test_case "make" `Quick test_stats_make;
          Alcotest.test_case "untraced" `Quick test_stats_untraced;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "json shape" `Quick test_chrome_json_shape;
          Alcotest.test_case "write" `Quick test_chrome_write;
          Alcotest.test_case "run metadata" `Quick test_chrome_metadata;
        ] );
      ( "metric",
        [
          Alcotest.test_case "summary" `Quick test_metric_summary;
          Alcotest.test_case "constant samples" `Quick
            test_metric_constant_samples;
          Alcotest.test_case "empty" `Quick test_metric_empty;
          Alcotest.test_case "rejects nan" `Quick test_metric_rejects_nan;
          QCheck_alcotest.to_alcotest prop_finite_in_finite_out;
          Alcotest.test_case "json roundtrip" `Quick test_metric_json_roundtrip;
          Alcotest.test_case "stats distributions" `Quick
            test_stats_distributions;
          Alcotest.test_case "dist json roundtrip" `Quick
            test_dist_json_roundtrip;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "runmeta roundtrip" `Quick test_runmeta_roundtrip;
          Alcotest.test_case "runmeta serve fields" `Quick
            test_runmeta_serve_fields;
          Alcotest.test_case "save/load" `Quick test_baseline_roundtrip_and_load;
          Alcotest.test_case "newer schema refused" `Quick
            test_baseline_refuses_newer_schema;
          Alcotest.test_case "noise tolerated" `Quick
            test_compare_noise_tolerated;
          Alcotest.test_case "regression fails" `Quick
            test_compare_regression_fails;
          Alcotest.test_case "counter mismatch" `Quick
            test_compare_counter_mismatch;
          Alcotest.test_case "meta mismatch" `Quick test_compare_meta_mismatch;
        ] );
      ( "residual",
        [ Alcotest.test_case "calibrate" `Quick test_residual_calibrate ] );
      ( "mailbox",
        [
          Alcotest.test_case "leak bounded" `Quick test_mailbox_leak_bounded;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
          Alcotest.test_case "non-positive timeout rejected" `Quick
            test_mailbox_rejects_nonpositive_timeout;
        ] );
      ( "send-stage",
        [
          Alcotest.test_case "fifo under backpressure" `Quick
            test_send_stage_fifo_under_backpressure;
          Alcotest.test_case "stalled consumer times out" `Quick
            test_send_stage_stalled_consumer_times_out;
        ] );
    ]
