module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Stats = Tiles_obs.Stats
module Chrome = Tiles_obs.Chrome
module Json = Tiles_util.Json
module Sim = Tiles_mpisim.Sim
module Netmodel = Tiles_mpisim.Netmodel
module Plan = Tiles_core.Plan
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor

let net = Netmodel.fast_ethernet_cluster

let sor_plan () =
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:16 in
  ( Plan.make ~m:2 (Tiles_apps.Sor.nest p) (Tiles_apps.Sor.nonrect ~x:3 ~y:4 ~z:4),
    Tiles_apps.Sor.kernel p )

let sim_run () =
  let plan, kernel = sor_plan () in
  Executor.run ~mode:Executor.Full ~trace:true ~plan ~kernel ~net ()

let shm_run () =
  let plan, kernel = sor_plan () in
  Shm_executor.run ~trace:true ~plan ~kernel ()

(* ---------------- recorder unit tests ---------------- *)

let test_recorder_counters () =
  let t = Recorder.create ~nprocs:2 () in
  let l0 = Recorder.log t ~rank:0 and l1 = Recorder.log t ~rank:1 in
  Recorder.message_sent l0 ~bytes:100;
  Recorder.message_sent l0 ~bytes:50;
  Recorder.message_received l1 ~bytes:100;
  Recorder.message_sent l1 ~bytes:25;
  Alcotest.(check int) "messages" 3 (Recorder.messages t);
  Alcotest.(check int) "bytes" 175 (Recorder.bytes t);
  Alcotest.(check (list int)) "rank messages" [ 2; 1 ]
    (Array.to_list (Recorder.rank_messages t));
  Alcotest.(check (list int)) "rank bytes" [ 150; 25 ]
    (Array.to_list (Recorder.rank_bytes t));
  (* in-flight peaked at 150 before rank 1 drained 100 *)
  Alcotest.(check int) "high water" 150 (Recorder.max_inflight_bytes t)

let test_recorder_untraced_drops_spans () =
  let t = Recorder.create ~nprocs:1 () in
  let l = Recorder.log t ~rank:0 in
  Recorder.span l ~t0:0. ~t1:1. Span.Compute;
  Recorder.close l Span.Send;
  Alcotest.(check (list (float 0.))) "no spans" []
    (List.map Span.duration (Recorder.spans t))

let test_recorder_virtual_clock () =
  let now = ref 0. in
  let t = Recorder.create ~trace:true ~clock:(fun () -> !now) ~nprocs:1 () in
  let l = Recorder.log t ~rank:0 in
  Recorder.mark l;
  now := 2.;
  Recorder.close l Span.Compute;
  now := 3.5;
  Recorder.close l Span.Send;
  Recorder.span l ~t0:5. ~t1:4. Span.Wait (* reversed: dropped *);
  match Recorder.spans t with
  | [ a; b ] ->
    Alcotest.(check (float 1e-12)) "first closes [0,2]" 2. (Span.duration a);
    Alcotest.(check bool) "first is compute" true (a.Span.kind = Span.Compute);
    Alcotest.(check (float 1e-12)) "second closes [2,3.5]" 1.5 (Span.duration b);
    Alcotest.(check bool) "second is send" true (b.Span.kind = Span.Send)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* ---------------- span invariants on real traces ---------------- *)

let check_rank_spans_disjoint name spans ~nprocs =
  Array.iteri
    (fun rank spans ->
      let rec go = function
        | a :: (b :: _ as rest) ->
          if a.Span.t1 > b.Span.t0 +. 1e-9 then
            Alcotest.failf "%s: rank %d spans overlap: [%g,%g] then [%g,%g]"
              name rank a.Span.t0 a.Span.t1 b.Span.t0 b.Span.t1;
          go rest
        | _ -> ()
      in
      go spans)
    (Span.by_rank ~nprocs spans)

let test_sim_span_invariants () =
  let r = sim_run () in
  let stats = r.Executor.stats in
  let nprocs = Array.length stats.Sim.rank_clocks in
  Alcotest.(check bool) "trace nonempty" true (stats.Sim.trace <> []);
  check_rank_spans_disjoint "sim" stats.Sim.trace ~nprocs;
  (* every rank's span durations sum to at most its final clock *)
  Array.iteri
    (fun rank spans ->
      let total = List.fold_left (fun a s -> a +. Span.duration s) 0. spans in
      if total > stats.Sim.rank_clocks.(rank) +. 1e-9 then
        Alcotest.failf "rank %d: %g traced > %g clock" rank total
          stats.Sim.rank_clocks.(rank))
    (Span.by_rank ~nprocs stats.Sim.trace);
  (* the merged list is globally time-ordered *)
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Span.t0 <= b.Span.t0 && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "merged trace time-ordered" true
    (ordered stats.Sim.trace)

let test_shm_span_invariants () =
  let r = shm_run () in
  Alcotest.(check bool) "trace nonempty" true (r.Shm_executor.trace <> []);
  check_rank_spans_disjoint "shm" r.Shm_executor.trace
    ~nprocs:r.Shm_executor.nprocs;
  List.iter
    (fun s ->
      if Span.duration s < 0. then
        Alcotest.failf "negative span duration %g" (Span.duration s))
    r.Shm_executor.trace

(* both backends execute the same protocol, so their message and byte
   counts must agree exactly — globally and per rank *)
let test_sim_shm_counters_agree () =
  let sim = sim_run () and shm = shm_run () in
  let agg = Tiles_mpisim.Trace.aggregate sim.Executor.stats in
  Alcotest.(check int) "messages" agg.Stats.messages
    shm.Shm_executor.stats.Stats.messages;
  Alcotest.(check int) "bytes" agg.Stats.bytes
    shm.Shm_executor.stats.Stats.bytes;
  (* the in-flight high-water mark depends on the interleaving, so the
     wall-clock backend's is only bounded, not equal *)
  let shm_hw = shm.Shm_executor.stats.Stats.max_inflight_bytes in
  Alcotest.(check bool) "max in-flight positive and bounded" true
    (shm_hw > 0 && shm_hw <= agg.Stats.bytes);
  Array.iteri
    (fun i (a : Stats.rank) ->
      let b = shm.Shm_executor.stats.Stats.ranks.(i) in
      Alcotest.(check int)
        (Printf.sprintf "rank %d messages" i)
        a.Stats.messages b.Stats.messages;
      Alcotest.(check int)
        (Printf.sprintf "rank %d bytes" i)
        a.Stats.bytes b.Stats.bytes)
    agg.Stats.ranks;
  (* and the shm run really computed the right answer *)
  Alcotest.(check (float 1e-9)) "shm correct" 0. shm.Shm_executor.max_abs_err

(* ---------------- aggregate stats ---------------- *)

let test_stats_make () =
  let spans =
    [
      { Span.rank = 0; t0 = 0.; t1 = 2.; kind = Span.Compute };
      { Span.rank = 0; t0 = 2.; t1 = 3.; kind = Span.Send };
      { Span.rank = 1; t0 = 0.; t1 = 1.; kind = Span.Wait };
      { Span.rank = 1; t0 = 1.; t1 = 2.; kind = Span.Unpack };
      { Span.rank = 1; t0 = 2.; t1 = 2.5; kind = Span.Pack };
    ]
  in
  let s =
    Stats.make ~completion:4. ~nprocs:2 ~messages:3 ~bytes:120
      ~max_inflight_bytes:80 spans
  in
  Alcotest.(check (float 1e-12)) "rank0 busy" 3. s.Stats.ranks.(0).Stats.busy;
  Alcotest.(check (float 1e-12)) "rank0 busy fraction" 0.75
    s.Stats.ranks.(0).Stats.busy_fraction;
  Alcotest.(check (float 1e-12)) "rank1 wait not busy" 1.5
    s.Stats.ranks.(1).Stats.busy;
  Alcotest.(check (float 1e-12)) "total compute" 2. s.Stats.total_compute;
  Alcotest.(check (float 1e-12)) "total comm" 3.5 s.Stats.total_comm;
  Alcotest.(check (float 1e-12)) "ratio" 1.75 s.Stats.comm_compute_ratio;
  Alcotest.(check (float 1e-12)) "critical path" 3. s.Stats.critical_path;
  (* json embeds per-rank busy fractions *)
  match Stats.to_json s with
  | Json.Obj kvs ->
    Alcotest.(check bool) "has ranks" true (List.mem_assoc "ranks" kvs);
    Alcotest.(check bool) "has mean_busy_fraction" true
      (List.mem_assoc "mean_busy_fraction" kvs)
  | _ -> Alcotest.fail "stats json not an object"

let test_stats_untraced () =
  let s =
    Stats.make ~completion:1. ~nprocs:2 ~messages:5 ~bytes:40
      ~max_inflight_bytes:16 []
  in
  Alcotest.(check int) "messages survive" 5 s.Stats.messages;
  Alcotest.(check (float 0.)) "no busy" 0. s.Stats.mean_busy_fraction

(* ---------------- chrome exporter ---------------- *)

let test_chrome_json_shape () =
  let spans =
    [
      { Span.rank = 0; t0 = 0.; t1 = 1e-3; kind = Span.Compute };
      { Span.rank = 1; t0 = 1e-3; t1 = 2e-3; kind = Span.Wait };
    ]
  in
  match Chrome.to_json ~process_name:"test" ~nprocs:2 spans with
  | Json.Obj kvs ->
    (match List.assoc_opt "traceEvents" kvs with
    | Some (Json.List events) ->
      (* 1 process_name + 2 thread_name metadata + 2 "X" events *)
      Alcotest.(check int) "event count" 5 (List.length events);
      let phases =
        List.filter_map
          (fun e ->
            match e with
            | Json.Obj fields ->
              (match List.assoc_opt "ph" fields with
              | Some (Json.Str p) -> Some p
              | _ -> None)
            | _ -> None)
          events
      in
      Alcotest.(check int) "metadata events" 3
        (List.length (List.filter (( = ) "M") phases));
      Alcotest.(check int) "complete events" 2
        (List.length (List.filter (( = ) "X") phases));
      (* an "X" event carries microsecond ts/dur *)
      let x =
        List.find
          (fun e ->
            match e with
            | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.Str "X")
            | _ -> false)
          events
      in
      (match x with
      | Json.Obj f ->
        (match (List.assoc_opt "ts" f, List.assoc_opt "dur" f) with
        | Some (Json.Float ts), Some (Json.Float dur) ->
          Alcotest.(check (float 1e-9)) "ts scaled" 0. ts;
          Alcotest.(check (float 1e-9)) "dur scaled" 1000. dur
        | _ -> Alcotest.fail "X event lacks ts/dur floats")
      | _ -> assert false)
    | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "chrome json not an object"

let test_chrome_write () =
  let path = Filename.temp_file "tiles_trace" ".json" in
  Chrome.write ~nprocs:1 ~path
    [ { Span.rank = 0; t0 = 0.; t1 = 1.; kind = Span.Send } ];
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "mentions traceEvents" true
    (Astring.String.is_infix ~affix:"traceEvents" s);
  Alcotest.(check bool) "displayTimeUnit" true
    (Astring.String.is_infix ~affix:"displayTimeUnit" s)

(* ---------------- shm mailbox ---------------- *)

let test_mailbox_leak_bounded () =
  let mb = Shm_executor.Mailbox.create () in
  for tag = 0 to 99 do
    Shm_executor.Mailbox.send mb ~tag [| float_of_int tag |];
    let got = Shm_executor.Mailbox.recv mb ~tag in
    Alcotest.(check (float 0.)) "payload" (float_of_int tag) got.(0)
  done;
  (* before the fix this table held one empty queue per tag ever used *)
  Alcotest.(check int) "drained queues removed" 0
    (Shm_executor.Mailbox.tag_count mb);
  Shm_executor.Mailbox.send mb ~tag:7 [| 1. |];
  Shm_executor.Mailbox.send mb ~tag:7 [| 2. |];
  Shm_executor.Mailbox.send mb ~tag:9 [| 3. |];
  Alcotest.(check int) "pending tags counted" 2
    (Shm_executor.Mailbox.tag_count mb);
  ignore (Shm_executor.Mailbox.recv mb ~tag:7);
  Alcotest.(check int) "partial drain keeps queue" 2
    (Shm_executor.Mailbox.tag_count mb);
  ignore (Shm_executor.Mailbox.recv mb ~tag:7);
  Alcotest.(check int) "full drain drops queue" 1
    (Shm_executor.Mailbox.tag_count mb)

let test_mailbox_recv_timeout () =
  let mb = Shm_executor.Mailbox.create () in
  (* nobody sends; a nudger stands in for the run's watchdog *)
  let stop = Atomic.make false in
  let nudger =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Unix.sleepf 0.01;
          Shm_executor.Mailbox.nudge mb
        done)
  in
  let raised =
    try
      ignore
        (Shm_executor.Mailbox.recv ~timeout:0.05
           ~diag:(fun () -> "rank 1 blocked (src=0, tag=42)")
           mb ~tag:42);
      None
    with Shm_executor.Recv_timeout msg -> Some msg
  in
  Atomic.set stop true;
  Domain.join nudger;
  match raised with
  | Some msg ->
    Alcotest.(check bool) "diagnostic names the channel" true
      (Astring.String.is_infix ~affix:"tag=42" msg)
  | None -> Alcotest.fail "recv did not time out"

let () =
  Alcotest.run "tiles_obs"
    [
      ( "recorder",
        [
          Alcotest.test_case "counters" `Quick test_recorder_counters;
          Alcotest.test_case "untraced drops spans" `Quick
            test_recorder_untraced_drops_spans;
          Alcotest.test_case "virtual clock close" `Quick
            test_recorder_virtual_clock;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "sim spans" `Quick test_sim_span_invariants;
          Alcotest.test_case "shm spans" `Quick test_shm_span_invariants;
          Alcotest.test_case "sim vs shm counters" `Quick
            test_sim_shm_counters_agree;
        ] );
      ( "stats",
        [
          Alcotest.test_case "make" `Quick test_stats_make;
          Alcotest.test_case "untraced" `Quick test_stats_untraced;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "json shape" `Quick test_chrome_json_shape;
          Alcotest.test_case "write" `Quick test_chrome_write;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "leak bounded" `Quick test_mailbox_leak_bounded;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
        ] );
    ]
