(* The causal analysis layer: seq-id edge joining, the critical-path
   walk, streaming-vs-exact aggregation equivalence, and the cross-layer
   properties tying the causal path to completion on both backends. *)

module Span = Tiles_obs.Span
module Recorder = Tiles_obs.Recorder
module Critpath = Tiles_obs.Critpath
module Stats = Tiles_obs.Stats
module Chrome = Tiles_obs.Chrome
module Json = Tiles_util.Json
module Sim = Tiles_mpisim.Sim
module Plan = Tiles_core.Plan
module Executor = Tiles_runtime.Executor
module Shm_executor = Tiles_runtime.Shm_executor
module Netmodel = Tiles_mpisim.Netmodel

let net = Netmodel.fast_ethernet_cluster
let eps = 1e-9

let sor_plan () =
  let p = Tiles_apps.Sor.make ~m_steps:12 ~size:16 in
  ( Plan.make ~m:2 (Tiles_apps.Sor.nest p) (Tiles_apps.Sor.nonrect ~x:3 ~y:4 ~z:4),
    Tiles_apps.Sor.kernel p )

(* ---------------- edge joining ---------------- *)

let test_edge_seq_numbers () =
  let t = Recorder.create ~trace:true ~clock:(fun () -> 0.) ~nprocs:2 () in
  let l0 = Recorder.log t ~rank:0 and l1 = Recorder.log t ~rank:1 in
  (* two messages on the same (0,1,tag 5) channel, one on tag 9: the
     same-channel pair gets seq 0 then 1, the other channel restarts *)
  Recorder.message_sent l0 ~t:1.0 ~dst:1 ~tag:5 ~bytes:8 ();
  Recorder.message_sent l0 ~t:2.0 ~dst:1 ~tag:5 ~bytes:8 ();
  Recorder.message_sent l0 ~t:3.0 ~dst:1 ~tag:9 ~bytes:8 ();
  Recorder.message_received l1 ~t:1.5 ~posted:0.5 ~src:0 ~tag:5 ~bytes:8 ();
  Recorder.message_received l1 ~t:2.5 ~posted:1.5 ~src:0 ~tag:5 ~bytes:8 ();
  Recorder.message_received l1 ~t:3.5 ~posted:2.5 ~src:0 ~tag:9 ~bytes:8 ();
  match Recorder.edges t with
  | [ a; b; c ] ->
    Alcotest.(check int) "seq 0" 0 a.Recorder.e_seq;
    Alcotest.(check (float 0.)) "sent stamp joined" 1.0 a.Recorder.e_sent;
    Alcotest.(check int) "seq 1" 1 b.Recorder.e_seq;
    Alcotest.(check (float 0.)) "second sent" 2.0 b.Recorder.e_sent;
    Alcotest.(check int) "new channel restarts" 0 c.Recorder.e_seq;
    Alcotest.(check int) "tag carried" 9 c.Recorder.e_tag;
    Alcotest.(check (float 0.)) "posted" 2.5 c.Recorder.e_posted;
    Alcotest.(check (float 0.)) "ready" 3.5 c.Recorder.e_ready
  | l -> Alcotest.failf "expected 3 edges, got %d" (List.length l)

let test_streaming_retains_no_edges () =
  let t =
    Recorder.create ~mode:Recorder.Streaming ~trace:true
      ~clock:(fun () -> 0.)
      ~nprocs:2 ()
  in
  let l0 = Recorder.log t ~rank:0 and l1 = Recorder.log t ~rank:1 in
  Recorder.message_sent l0 ~t:1.0 ~dst:1 ~tag:0 ~bytes:8 ();
  Recorder.message_received l1 ~t:2.0 ~src:0 ~tag:0 ~bytes:8 ();
  Recorder.span l0 ~t0:0. ~t1:1. Span.Compute;
  Alcotest.(check int) "no edges" 0 (List.length (Recorder.edges t));
  Alcotest.(check int) "no spans" 0 (List.length (Recorder.spans t));
  (* but the counters and totals are still exact *)
  Alcotest.(check int) "messages" 1 (Recorder.messages t);
  Alcotest.(check (float 0.)) "compute total" 1.
    (Recorder.kind_seconds t).(0).(0)

(* ---------------- the walk on a hand-built trace ---------------- *)

(* rank 0: Compute [0,2], Send [2,3] — message leaves at 3
   rank 1: Wait [0,3] (bound by the edge), Unpack [3,4]
   The causal path must be Compute, Send, a zero-length flight, Unpack:
   4 seconds exactly, with the wait absorbed by the edge crossing. *)
let hand_trace () =
  let t = Recorder.create ~trace:true ~clock:(fun () -> 0.) ~nprocs:2 () in
  let l0 = Recorder.log t ~rank:0 and l1 = Recorder.log t ~rank:1 in
  Recorder.span l0 ~t0:0. ~t1:2. Span.Compute;
  Recorder.span l0 ~t0:2. ~t1:3. Span.Send;
  Recorder.message_sent l0 ~t:3. ~dst:1 ~tag:7 ~bytes:64 ();
  Recorder.span l1 ~t0:0. ~t1:3. Span.Wait;
  Recorder.message_received l1 ~t:3. ~posted:0. ~src:0 ~tag:7 ~bytes:64 ();
  Recorder.span l1 ~t0:3. ~t1:4. Span.Unpack;
  t

let test_walk_hand_trace () =
  let t = hand_trace () in
  let r =
    Critpath.analyze ~nprocs:2 ~edges:(Recorder.edges t) (Recorder.spans t)
  in
  Alcotest.(check (float eps)) "completion" 4. r.Critpath.completion;
  Alcotest.(check (float eps)) "path = completion" 4. r.Critpath.path_length;
  Alcotest.(check (float eps)) "coverage" 1. r.Critpath.coverage;
  Alcotest.(check int) "one edge crossed" 1 r.Critpath.edges_crossed;
  let kind k = List.assoc k r.Critpath.kind_seconds in
  Alcotest.(check (float eps)) "compute" 2. (kind "compute");
  Alcotest.(check (float eps)) "send" 1. (kind "send");
  Alcotest.(check (float eps)) "unpack" 1. (kind "unpack");
  Alcotest.(check (float eps)) "wait absorbed" 0. (kind "wait");
  Alcotest.(check (float eps)) "flight zero-length" 0. (kind "flight");
  Alcotest.(check (float eps)) "no idle" 0. (kind "idle");
  (* max_rank_busy is the old proxy: rank 0 is busy 3 s, rank 1 only 1 s
     (the wait doesn't count) — strictly below the causal value *)
  Alcotest.(check (float eps)) "max rank busy" 3. r.Critpath.max_rank_busy;
  Alcotest.(check bool) "causal > busy proxy" true
    (r.Critpath.path_length > r.Critpath.max_rank_busy +. 0.5);
  (* phase attribution: everything at or before the edge carries tag 7,
     the receiver's unpack after the crossing has no phase yet *)
  let phase p =
    match List.assoc_opt p r.Critpath.phase_seconds with
    | Some s -> s
    | None -> 0.
  in
  Alcotest.(check (float eps)) "tag-7 phase" 3. (phase (Some 7));
  Alcotest.(check (float eps)) "pre-edge phase" 1. (phase None);
  (* both ranks are tight: no slack anywhere on this trace *)
  Array.iteri
    (fun i s ->
      Alcotest.(check (float eps)) (Printf.sprintf "rank %d slack" i) 0. s)
    r.Critpath.slack;
  (* laggards: rank 0 carries 3 s of the path, rank 1 carries 1 s *)
  (match Critpath.laggards r with
  | [ (0, a); (1, b) ] ->
    Alcotest.(check (float eps)) "rank0 on path" 3. a;
    Alcotest.(check (float eps)) "rank1 on path" 1. b
  | l -> Alcotest.failf "expected 2 laggards, got %d" (List.length l));
  (* segments are chronological and contiguous from 0 to completion *)
  let rec contiguous t0 = function
    | [] -> Alcotest.(check (float eps)) "ends at completion" 4. t0
    | (sg : Critpath.segment) :: rest ->
      Alcotest.(check (float eps)) "contiguous" t0 sg.Critpath.sg_t0;
      contiguous sg.Critpath.sg_t1 rest
  in
  contiguous 0. r.Critpath.segments;
  match Critpath.to_json r with
  | Json.Obj kvs ->
    Alcotest.(check bool) "json has coverage" true
      (List.mem_assoc "coverage" kvs);
    Alcotest.(check bool) "json has segments" true
      (List.mem_assoc "segments" kvs)
  | _ -> Alcotest.fail "report json not an object"

let test_no_edges_degrades () =
  (* without edges the walk cannot hop ranks: it stays on the rank that
     finishes last and fills holes with idle — still a full partition *)
  let spans =
    [
      { Span.rank = 0; t0 = 0.; t1 = 1.; kind = Span.Compute };
      { Span.rank = 1; t0 = 2.; t1 = 3.; kind = Span.Compute };
    ]
  in
  let r = Critpath.analyze ~nprocs:2 ~edges:[] spans in
  Alcotest.(check (float eps)) "path still spans completion" 3.
    r.Critpath.path_length;
  Alcotest.(check (float eps)) "idle fills the hole" 2.
    (List.assoc "idle" r.Critpath.kind_seconds);
  Alcotest.(check int) "no edges crossed" 0 r.Critpath.edges_crossed

(* ---------------- streaming vs exact (QCheck) ---------------- *)

let kind_of_int i = List.nth Span.all_kinds i

let arb_trace nprocs =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 300)
        (let* rank = int_range 0 (nprocs - 1) in
         let* t0i = int_range 0 10_000 in
         let* duri = int_range 0 500 in
         let* k = int_range 0 4 in
         return (rank, float_of_int t0i /. 1000., float_of_int duri /. 1000., k)))
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (fun (r, t0, d, k) -> Printf.sprintf "(%d,%g,%g,%d)" r t0 d k)
           l))
    gen

let feed recorder spans =
  List.iter
    (fun (rank, t0, d, k) ->
      Recorder.span (Recorder.log recorder ~rank) ~t0 ~t1:(t0 +. d)
        (kind_of_int k))
    spans

let close_enough a b = Float.abs (a -. b) <= 1e-9 +. (1e-12 *. Float.abs a)

let prop_streaming_matches_exact =
  QCheck.Test.make ~name:"streaming per-rank per-kind totals = exact"
    ~count:100 (arb_trace 4) (fun spans ->
      let exact = Recorder.create ~trace:true ~clock:(fun () -> 0.) ~nprocs:4 () in
      let stream =
        Recorder.create ~mode:Recorder.Streaming ~trace:true
          ~clock:(fun () -> 0.)
          ~nprocs:4 ()
      in
      feed exact spans;
      feed stream spans;
      (* fold the retained spans the slow way and compare every cell *)
      let want = Array.make_matrix 4 5 0. in
      List.iter
        (fun (s : Span.t) ->
          let k =
            match
              List.find_index (fun x -> x = s.Span.kind) Span.all_kinds
            with
            | Some i -> i
            | None -> assert false
          in
          want.(s.Span.rank).(k) <- want.(s.Span.rank).(k) +. Span.duration s)
        (Recorder.spans exact);
      let got = Recorder.kind_seconds stream in
      let cells_ok = ref true in
      Array.iteri
        (fun r row ->
          Array.iteri
            (fun k w -> if not (close_enough w got.(r).(k)) then cells_ok := false)
            row)
        want;
      (* the wait reservoir holds exactly the longest waits *)
      let exact_waits =
        Recorder.spans exact
        |> List.filter (fun (s : Span.t) -> s.Span.kind = Span.Wait)
        |> List.map Span.duration
        |> List.sort (fun a b -> compare b a)
      in
      let keep = min 8 (List.length exact_waits) in
      let want_waits = List.filteri (fun i _ -> i < keep) exact_waits in
      let got_waits =
        List.map Span.duration (Recorder.longest_waits stream)
      in
      let waits_ok =
        List.length want_waits = List.length got_waits
        && List.for_all2 close_enough want_waits got_waits
      in
      (* Stats built from the streaming sums agrees with Stats.make *)
      let completion =
        List.fold_left (fun a (_, t0, d, _) -> Float.max a (t0 +. d)) 1. spans
      in
      let a =
        Stats.make ~completion ~nprocs:4 ~messages:0 ~bytes:0
          ~max_inflight_bytes:0 (Recorder.spans exact)
      in
      let b =
        Stats.of_kind_seconds ~completion ~nprocs:4 ~messages:0 ~bytes:0
          ~max_inflight_bytes:0
          (Recorder.kind_seconds stream)
      in
      let stats_ok =
        close_enough a.Stats.total_compute b.Stats.total_compute
        && close_enough a.Stats.total_comm b.Stats.total_comm
        && close_enough a.Stats.mean_busy_fraction b.Stats.mean_busy_fraction
        && close_enough a.Stats.max_rank_busy b.Stats.max_rank_busy
      in
      !cells_ok && waits_ok && stats_ok)

(* ---------------- backend properties ---------------- *)

let sim_stats () =
  let plan, kernel = sor_plan () in
  (Executor.run ~mode:Executor.Full ~trace:true ~plan ~kernel ~net ())
    .Executor.stats

let test_sim_path_equals_completion () =
  let stats = sim_stats () in
  let nprocs = Array.length stats.Sim.rank_clocks in
  Alcotest.(check bool) "edges recorded" true (stats.Sim.edges <> []);
  let r =
    Critpath.analyze ~completion:stats.Sim.completion ~nprocs
      ~edges:stats.Sim.edges stats.Sim.trace
  in
  (* the acceptance bound: segment times sum to completion within 1e-9
     virtual seconds, and the causal value dominates the busy proxy *)
  Alcotest.(check (float eps)) "path = completion" stats.Sim.completion
    r.Critpath.path_length;
  Alcotest.(check bool) "path >= max busy" true
    (r.Critpath.path_length +. eps >= r.Critpath.max_rank_busy);
  Alcotest.(check bool) "path <= completion" true
    (r.Critpath.path_length <= stats.Sim.completion +. eps);
  (* and Trace.aggregate carries the same causal value into Stats *)
  let agg = Tiles_mpisim.Trace.aggregate stats in
  Alcotest.(check (float eps)) "stats.critical_path is causal"
    r.Critpath.path_length agg.Stats.critical_path

let test_sim_shm_edges_agree () =
  let plan, kernel = sor_plan () in
  let sim = sim_stats () in
  let shm = Shm_executor.run ~trace:true ~plan ~kernel () in
  Alcotest.(check int) "edge counts agree" (List.length sim.Sim.edges)
    (List.length shm.Shm_executor.edges);
  Alcotest.(check int) "every message became an edge" sim.Sim.messages
    (List.length sim.Sim.edges);
  (* the causal identities agree exactly: same (src, dst, tag, seq)
     multiset on both backends, only the stamps differ *)
  let key (e : Recorder.edge) =
    (e.Recorder.e_src, e.Recorder.e_dst, e.Recorder.e_tag, e.Recorder.e_seq)
  in
  let ids l = List.sort compare (List.map key l) in
  Alcotest.(check bool) "identical edge identities" true
    (ids sim.Sim.edges = ids shm.Shm_executor.edges);
  (* the shm stats carry a causal critical path too, bounded by the
     wall-clock trace extent *)
  Alcotest.(check bool) "shm causal path positive" true
    (shm.Shm_executor.stats.Stats.critical_path > 0.)

let test_shm_path_covers_trace () =
  let plan, kernel = sor_plan () in
  let shm = Shm_executor.run ~trace:true ~plan ~kernel () in
  let r =
    Critpath.analyze ~nprocs:shm.Shm_executor.nprocs
      ~edges:shm.Shm_executor.edges shm.Shm_executor.trace
  in
  (* wall-clock traces also partition: the walk never loses time *)
  Alcotest.(check bool) "coverage ~ 1" true (r.Critpath.coverage > 0.999);
  Alcotest.(check bool) "some edges crossed" true (r.Critpath.edges_crossed >= 0)

(* ---------------- chrome flow-event roundtrip ---------------- *)

let test_chrome_edge_roundtrip () =
  let t = hand_trace () in
  let spans = Recorder.spans t and edges = Recorder.edges t in
  let j = Chrome.to_json ~nprocs:2 ~edges spans in
  match Chrome.of_json j with
  | Error e -> Alcotest.failf "reader rejected its own writer: %s" e
  | Ok a ->
    Alcotest.(check int) "nprocs" 2 a.Chrome.nprocs;
    Alcotest.(check int) "span count" (List.length spans)
      (List.length a.Chrome.spans);
    Alcotest.(check int) "edge count" (List.length edges)
      (List.length a.Chrome.edges);
    let e = List.hd a.Chrome.edges and e0 = List.hd edges in
    Alcotest.(check int) "src" e0.Recorder.e_src e.Recorder.e_src;
    Alcotest.(check int) "dst" e0.Recorder.e_dst e.Recorder.e_dst;
    Alcotest.(check int) "tag" e0.Recorder.e_tag e.Recorder.e_tag;
    Alcotest.(check int) "seq" e0.Recorder.e_seq e.Recorder.e_seq;
    Alcotest.(check int) "bytes" e0.Recorder.e_bytes e.Recorder.e_bytes;
    Alcotest.(check (float 1e-12)) "sent" e0.Recorder.e_sent e.Recorder.e_sent;
    Alcotest.(check (float 1e-12)) "ready" e0.Recorder.e_ready
      e.Recorder.e_ready;
    (* and the analysis of the roundtripped archive is unchanged *)
    let r0 = Critpath.analyze ~nprocs:2 ~edges spans in
    let r1 =
      Critpath.analyze ~nprocs:a.Chrome.nprocs ~edges:a.Chrome.edges
        a.Chrome.spans
    in
    Alcotest.(check (float 1e-12)) "same path" r0.Critpath.path_length
      r1.Critpath.path_length

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_critpath"
    [
      ( "edges",
        [
          Alcotest.test_case "seq numbers join" `Quick test_edge_seq_numbers;
          Alcotest.test_case "streaming drops edges" `Quick
            test_streaming_retains_no_edges;
        ] );
      ( "walk",
        [
          Alcotest.test_case "hand-built trace" `Quick test_walk_hand_trace;
          Alcotest.test_case "no edges degrades to idle-filled" `Quick
            test_no_edges_degrades;
        ] );
      ("streaming", [ q prop_streaming_matches_exact ]);
      ( "backends",
        [
          Alcotest.test_case "sim path = completion" `Quick
            test_sim_path_equals_completion;
          Alcotest.test_case "sim vs shm edge identities" `Quick
            test_sim_shm_edges_agree;
          Alcotest.test_case "shm path covers trace" `Quick
            test_shm_path_covers_trace;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "flow-event roundtrip" `Quick
            test_chrome_edge_roundtrip;
        ] );
    ]
