module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Tiling = Tiles_core.Tiling
module Plan = Tiles_core.Plan
module Schedule = Tiles_core.Schedule
module Kernel = Tiles_runtime.Kernel
module Grid = Tiles_runtime.Grid
module Seq_exec = Tiles_runtime.Seq_exec
module Executor = Tiles_runtime.Executor
module Netmodel = Tiles_mpisim.Netmodel
module Sim = Tiles_mpisim.Sim
module Sor = Tiles_apps.Sor
module Jacobi = Tiles_apps.Jacobi
module Adi = Tiles_apps.Adi
module Experiment = Tiles_apps.Experiment
module Vec = Tiles_util.Vec

let net = Netmodel.fast_ethernet_cluster

let check_equiv ~name ~nest ~kernel ~tiling ~m =
  let plan = Plan.make ~m nest tiling in
  let seq = Seq_exec.run ~space:nest.Nest.space ~kernel () in
  let r = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
  match r.Executor.grid with
  | None -> Alcotest.fail "no grid"
  | Some g ->
    Alcotest.(check (float 1e-6))
      (name ^ ": parallel = sequential")
      0.
      (Grid.max_abs_diff g seq nest.Nest.space);
    r

(* ---------- dependence / skew structure ---------- *)

let test_sor_skewed_deps () =
  let p = Sor.make ~m_steps:4 ~size:5 in
  let nest = Sor.nest p in
  Alcotest.(check bool) "nonneg" true
    (Dependence.all_nonnegative nest.Nest.deps);
  (* the paper's skewed SOR dependence columns *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "dep %s" (Vec.to_string d))
        true
        (List.exists (Vec.equal d) (Dependence.vectors nest.Nest.deps)))
    [ [| 1; 1; 2 |]; [| 0; 1; 0 |]; [| 1; 0; 2 |]; [| 1; 1; 1 |]; [| 0; 0; 1 |] ]

let test_jacobi_skewed_deps () =
  let p = Jacobi.make ~t_steps:3 ~size:4 in
  let nest = Jacobi.nest p in
  Alcotest.(check bool) "nonneg" true (Dependence.all_nonnegative nest.Nest.deps);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "dep %s" (Vec.to_string d))
        true
        (List.exists (Vec.equal d) (Dependence.vectors nest.Nest.deps)))
    [ [| 1; 1; 1 |]; [| 1; 2; 1 |]; [| 1; 0; 1 |]; [| 1; 1; 2 |]; [| 1; 1; 0 |] ]

let test_tilings_match_tiling_cone () =
  (* the non-rectangular rows the paper picks lie on the tiling cone of
     each algorithm (not in its interior) *)
  let check name nest rows =
    let cone = Nest.tiling_cone nest in
    List.iter
      (fun row ->
        Alcotest.(check bool)
          (Printf.sprintf "%s row %s in cone" name (Vec.to_string row))
          true
          (Tiles_poly.Cone.contains cone row))
      rows
  in
  check "sor" (Sor.nest (Sor.make ~m_steps:4 ~size:5))
    [ [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| -1; 0; 1 |] ];
  check "adi" (Adi.nest (Adi.make ~t_steps:4 ~size:5))
    [ [| 1; -1; -1 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] ]

(* ---------- end-to-end correctness, all apps, all variants ---------- *)

let test_sor_equivalence () =
  let p = Sor.make ~m_steps:6 ~size:8 in
  let nest = Sor.nest p and kernel = Sor.kernel p in
  ignore
    (check_equiv ~name:"sor-rect" ~nest ~kernel ~m:Sor.mapping_dim
       ~tiling:(Sor.rect ~x:3 ~y:4 ~z:4));
  ignore
    (check_equiv ~name:"sor-nonrect" ~nest ~kernel ~m:Sor.mapping_dim
       ~tiling:(Sor.nonrect ~x:3 ~y:4 ~z:4))

let test_jacobi_equivalence () =
  let p = Jacobi.make ~t_steps:4 ~size:7 in
  let nest = Jacobi.nest p and kernel = Jacobi.kernel p in
  ignore
    (check_equiv ~name:"jacobi-rect" ~nest ~kernel ~m:Jacobi.mapping_dim
       ~tiling:(Jacobi.rect ~x:2 ~y:4 ~z:4));
  (* the non-rectangular Jacobi tiling exercises strides (1,2,1) *)
  ignore
    (check_equiv ~name:"jacobi-nonrect" ~nest ~kernel ~m:Jacobi.mapping_dim
       ~tiling:(Jacobi.nonrect ~x:2 ~y:4 ~z:4))

let test_adi_equivalence () =
  let p = Adi.make ~t_steps:5 ~size:8 in
  let nest = Adi.nest p and kernel = Adi.kernel p in
  List.iter
    (fun (name, mk) ->
      ignore
        (check_equiv ~name:("adi-" ^ name) ~nest ~kernel ~m:Adi.mapping_dim
           ~tiling:(mk ~x:3 ~y:4 ~z:4)))
    Adi.variants

let test_adi_values_finite () =
  (* B must stay away from zero for the kernel to be well-conditioned *)
  let p = Adi.make ~t_steps:8 ~size:8 in
  let nest = Adi.nest p in
  let g = Seq_exec.run ~space:nest.Nest.space ~kernel:(Adi.kernel p) () in
  Polyhedron.iter_points nest.Nest.space (fun j ->
      let b = Grid.get g j 1 in
      Alcotest.(check bool) "B bounded" true (Float.is_finite b && b > 1.0))

(* ---------- triband: non-box (triangular) iteration space ---------- *)

let test_triband_space_shape () =
  let p = Tiles_apps.Triband.make ~size:10 in
  let nest = Tiles_apps.Triband.nest p in
  (* triangular number of points *)
  Alcotest.(check int) "points" (10 * 11 / 2)
    (Polyhedron.count_points nest.Nest.space)

let test_triband_equivalence () =
  let module Triband = Tiles_apps.Triband in
  let p = Triband.make ~size:20 in
  let nest = Triband.nest p and kernel = Triband.kernel p in
  List.iter
    (fun (name, mk) ->
      ignore
        (check_equiv ~name:("triband-" ^ name) ~nest ~kernel ~m:0
           ~tiling:(mk ~x:4 ~y:5)))
    Triband.variants

let test_triband_boundary_tiles_partial () =
  (* tiles crossing the diagonal must report fewer points than the tile
     size, and the fast counter must agree with enumeration *)
  let module Triband = Tiles_apps.Triband in
  let module Tile_space = Tiles_core.Tile_space in
  let p = Triband.make ~size:17 in
  let nest = Triband.nest p in
  let tiling = Triband.oblique ~x:4 ~y:5 in
  let ts = Tile_space.make nest.Nest.space tiling in
  let clipped = ref 0 in
  List.iter
    (fun s ->
      let pts = Tile_space.tile_iterations ts s in
      if pts < Tiles_core.Tiling.tile_size tiling then incr clipped;
      Alcotest.(check bool) "nonneg" true (pts >= 0))
    (Tile_space.candidates ts);
  Alcotest.(check bool) "some tiles clipped by the diagonal" true (!clipped > 0)

(* ---------- experiment specs ---------- *)

let test_sor_spec_grid () =
  (* skewed i' spans [0, 46]; y = 6 gives exactly 8 tile columns *)
  let spec = Experiment.sor ~procs:8 ~factors:[ 4; 8 ] ~m_steps:20 ~size:28 () in
  Alcotest.(check int) "8 procs" 8 spec.Experiment.procs;
  Alcotest.(check int) "m" 2 spec.Experiment.m

let test_jacobi_spec_grid () =
  let spec =
    Experiment.jacobi ~procs:16 ~factors:[ 4 ] ~t_steps:12 ~size:24 ()
  in
  Alcotest.(check int) "16 procs" 16 spec.Experiment.procs

let test_adi_spec_grid () =
  let spec = Experiment.adi ~procs:16 ~factors:[ 4 ] ~t_steps:12 ~size:24 () in
  Alcotest.(check int) "16 procs" 16 spec.Experiment.procs

let test_sweep_nonrect_wins () =
  (* the paper's headline: at equal tile size / comm volume / procs, the
     non-rectangular tiling is at least as fast at every factor, and
     strictly faster somewhere *)
  let spec = Experiment.sor ~procs:8 ~factors:[ 3; 5; 8 ] ~m_steps:24 ~size:24 () in
  let runs = Experiment.sweep spec ~net in
  let by_factor f v =
    List.find_opt (fun r -> r.Experiment.factor = f && r.Experiment.variant = v) runs
  in
  let strictly = ref false in
  List.iter
    (fun f ->
      match (by_factor f "rect", by_factor f "nonrect") with
      | Some r, Some nr ->
        Alcotest.(check bool)
          (Printf.sprintf "nonrect >= rect at z=%d" f)
          true
          (nr.Experiment.speedup >= r.Experiment.speedup -. 1e-9);
        if nr.Experiment.speedup > r.Experiment.speedup +. 1e-9 then
          strictly := true
      | _ -> ())
    [ 3; 5; 8 ];
  Alcotest.(check bool) "strictly better somewhere" true !strictly

let test_comm_stats_match_executor () =
  (* the analytic §3.2 communication statistics must equal what the
     simulated execution actually sends *)
  let p = Sor.make ~m_steps:12 ~size:16 in
  let nest = Sor.nest p and kernel = Sor.kernel p in
  List.iter
    (fun (_, mk) ->
      let plan = Plan.make ~m:Sor.mapping_dim nest (mk ~x:6 ~y:7 ~z:4) in
      let msgs, cells = Plan.comm_stats plan in
      let r = Executor.run ~mode:Executor.Timing ~plan ~kernel ~net () in
      Alcotest.(check int) "messages" msgs r.Executor.stats.Sim.messages;
      Alcotest.(check int) "bytes" (cells * 8) r.Executor.stats.Sim.bytes)
    Sor.variants

let test_sweep_same_comm_volume () =
  (* rect and nonrect exchange the same bytes (§4.1's controlled design) *)
  let spec = Experiment.sor ~procs:8 ~factors:[ 4 ] ~m_steps:24 ~size:24 () in
  let runs = Experiment.sweep spec ~net in
  match runs with
  | [ a; b ] ->
    Alcotest.(check int) "same bytes" a.Experiment.bytes b.Experiment.bytes;
    Alcotest.(check int) "same tile size" a.Experiment.tile_size b.Experiment.tile_size;
    Alcotest.(check int) "same procs" a.Experiment.nprocs b.Experiment.nprocs
  | _ -> Alcotest.fail "expected two runs"

let test_best_by_variant () =
  let spec = Experiment.adi ~procs:4 ~factors:[ 3; 6 ] ~t_steps:12 ~size:12 () in
  let runs = Experiment.sweep spec ~net in
  let best = Experiment.best_by_variant runs in
  Alcotest.(check int) "four variants" 4 (List.length best);
  List.iter
    (fun (v, b) ->
      List.iter
        (fun r ->
          if r.Experiment.variant = v then
            Alcotest.(check bool) "is max" true
              (b.Experiment.speedup >= r.Experiment.speedup))
        runs)
    best

let test_improvement_pct_positive () =
  let spec = Experiment.sor ~procs:8 ~factors:[ 3; 5; 8 ] ~m_steps:24 ~size:24 () in
  let runs = Experiment.sweep spec ~net in
  Alcotest.(check bool) "positive" true (Experiment.improvement_pct runs > 0.)

(* the §4.1 closed-form schedule-length argument, checked exactly *)
let test_schedule_gap_formula () =
  (* t_r − t_nr = (steps difference) should be close to M/z tiles for SOR *)
  let m_steps = 24 and size = 24 in
  let p = Sor.make ~m_steps ~size in
  let nest = Sor.nest p in
  let x = m_steps and y = 8 and z = 6 in
  let s_r =
    Schedule.steps (Plan.make ~m:2 nest (Sor.rect ~x ~y ~z))
  in
  let s_nr =
    Schedule.steps (Plan.make ~m:2 nest (Sor.nonrect ~x ~y ~z))
  in
  let gap = s_r - s_nr in
  let predicted = m_steps / z in
  Alcotest.(check bool)
    (Printf.sprintf "gap %d within 1 of predicted %d" gap predicted)
    true
    (abs (gap - predicted) <= 1)

let () =
  Alcotest.run "tiles_apps"
    [
      ( "structure",
        [
          Alcotest.test_case "sor skewed deps" `Quick test_sor_skewed_deps;
          Alcotest.test_case "jacobi skewed deps" `Quick test_jacobi_skewed_deps;
          Alcotest.test_case "rows on tiling cone" `Quick test_tilings_match_tiling_cone;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "sor" `Quick test_sor_equivalence;
          Alcotest.test_case "jacobi" `Quick test_jacobi_equivalence;
          Alcotest.test_case "adi" `Quick test_adi_equivalence;
          Alcotest.test_case "adi well-conditioned" `Quick test_adi_values_finite;
          Alcotest.test_case "triband space" `Quick test_triband_space_shape;
          Alcotest.test_case "triband (triangular space)" `Quick test_triband_equivalence;
          Alcotest.test_case "triband clipped tiles" `Quick test_triband_boundary_tiles_partial;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "sor grid" `Quick test_sor_spec_grid;
          Alcotest.test_case "jacobi grid" `Quick test_jacobi_spec_grid;
          Alcotest.test_case "adi grid" `Quick test_adi_spec_grid;
          Alcotest.test_case "nonrect wins" `Quick test_sweep_nonrect_wins;
          Alcotest.test_case "controlled comm volume" `Quick test_sweep_same_comm_volume;
          Alcotest.test_case "analytic comm stats" `Quick test_comm_stats_match_executor;
          Alcotest.test_case "best by variant" `Quick test_best_by_variant;
          Alcotest.test_case "improvement pct" `Quick test_improvement_pct_positive;
          Alcotest.test_case "schedule gap formula" `Quick test_schedule_gap_formula;
        ] );
    ]
