(* The compile service: admission control, coalescing, the plan cache
   and the protocol layer. All server tests run with [workers = 0] — a
   deliberately stalled pool — so admission and coalescing outcomes are
   exact (nothing drains the queue behind the test's back); [Server.step]
   then executes jobs one at a time on this thread, deterministically. *)

module Json = Tiles_util.Json
module Admission = Tiles_serve.Admission
module Plan_cache = Tiles_serve.Plan_cache
module Registry = Tiles_serve.Registry
module Job = Tiles_serve.Job
module Server = Tiles_serve.Server
module Metrics = Tiles_serve.Metrics
module Span = Tiles_obs.Span
module Netmodel = Tiles_mpisim.Netmodel

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let net = Netmodel.fast_ethernet_cluster

(* ---------- Admission ---------- *)

let test_admission_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Admission.create: capacity must be >= 1") (fun () ->
      ignore (Admission.create ~capacity:0))

let test_admission_reject_full () =
  let q = Admission.create ~capacity:3 in
  for i = 1 to 3 do
    match Admission.submit q ~priority:1.0 i with
    | Ok () -> ()
    | Error _ -> Alcotest.failf "job %d rejected below capacity" i
  done;
  (match Admission.submit q ~priority:1.0 4 with
  | Ok () -> Alcotest.fail "job 4 accepted above capacity"
  | Error r ->
    check_str "reason" "queue_full" r.Admission.reason;
    check_int "capacity" 3 r.Admission.capacity;
    check_int "depth" 3 r.Admission.depth);
  let s = Admission.stats q in
  check_int "accepted" 3 s.Admission.accepted;
  check_int "rejected_full" 1 s.Admission.rejected_full;
  check_int "high water" 3 s.Admission.high_water;
  (* popping one frees a slot: backpressure, not a permanent failure *)
  check_bool "pop" true (Admission.try_pop q <> None);
  match Admission.submit q ~priority:1.0 5 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "slot freed by pop not reusable"

let test_admission_priority_order () =
  let q = Admission.create ~capacity:8 in
  List.iter
    (fun (p, v) -> Result.get_ok (Admission.submit q ~priority:p v))
    [ (5.0, "e"); (1.0, "a"); (3.0, "c"); (1.0, "b") ];
  let rec drain acc =
    match Admission.try_pop q with
    | None -> List.rev acc
    | Some v -> drain (v :: acc)
  in
  (* lower priority value first; FIFO between the two 1.0 submissions *)
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c"; "e" ] (drain [])

let test_admission_close () =
  let q = Admission.create ~capacity:4 in
  Result.get_ok (Admission.submit q ~priority:1.0 "x");
  Admission.close q;
  (match Admission.submit q ~priority:1.0 "y" with
  | Ok () -> Alcotest.fail "accepted after close"
  | Error r -> check_str "reason" "shutting_down" r.Admission.reason);
  (* the backlog still drains after close; then pop signals exit *)
  check_bool "drains backlog" true (Admission.pop q = Some "x");
  check_bool "then None" true (Admission.pop q = None);
  let s = Admission.stats q in
  check_bool "closed" true s.Admission.closed;
  check_int "rejected_closed" 1 s.Admission.rejected_closed

let test_admission_blocking_pop () =
  let q = Admission.create ~capacity:4 in
  let d =
    Domain.spawn (fun () ->
        match Admission.pop q with Some v -> v | None -> -1)
  in
  (* the popper blocks until this submit arrives *)
  Unix.sleepf 0.02;
  Result.get_ok (Admission.submit q ~priority:1.0 42);
  check_int "handed off" 42 (Domain.join d)

(* ---------- Plan_cache ---------- *)

let resolved_exn ~app ?(size1 = 12) ?(size2 = 16) ?(variant = "nonrect")
    ?(tile = (3, 4, 4)) () =
  match Registry.resolve ~app ~size1 ~size2 ~variant ~tile with
  | Ok r -> r
  | Error e -> Alcotest.failf "resolve %s: %s" app e

let test_plan_cache_hits () =
  let c = Plan_cache.create ~capacity:4 in
  let r = resolved_exn ~app:"sor" () in
  let key =
    Plan_cache.key ~resolved:r ~net ~overlap:false ~backend:"sim"
      ~walker:"fast" ~inner:None
  in
  let compiles = ref 0 in
  let compile () =
    incr compiles;
    Tiles_core.Plan.make ~m:r.Registry.m r.Registry.nest r.Registry.tiling
  in
  let p1, s1 = Plan_cache.find_or_compile c ~key compile in
  let p2, s2 = Plan_cache.find_or_compile c ~key compile in
  check_bool "first misses" true (s1 = `Miss);
  check_bool "second hits" true (s2 = `Hit);
  check_int "one compile" 1 !compiles;
  check_bool "same plan value" true (p1 == p2);
  let s = Plan_cache.stats c in
  check_int "hits" 1 s.Plan_cache.hits;
  check_int "misses" 1 s.Plan_cache.misses;
  check_int "compiles" 1 s.Plan_cache.compiles

let test_plan_cache_key_discriminates () =
  let r = resolved_exn ~app:"sor" () in
  let k ?(inner = None) ~overlap ~backend ~walker () =
    Plan_cache.key ~resolved:r ~net ~overlap ~backend ~walker ~inner
  in
  let base = k ~overlap:false ~backend:"sim" ~walker:"fast" () in
  check_bool "overlap changes key" true
    (base <> k ~overlap:true ~backend:"sim" ~walker:"fast" ());
  check_bool "backend changes key" true
    (base <> k ~overlap:false ~backend:"shm" ~walker:"fast" ());
  check_bool "walker changes key" true
    (base <> k ~overlap:false ~backend:"sim" ~walker:"reference" ());
  check_bool "inner shape changes key" true
    (base
    <> k ~inner:(Some [| 2; 2; 2 |]) ~overlap:false ~backend:"sim"
         ~walker:"fast" ());
  let r2 = resolved_exn ~app:"jacobi" () in
  check_bool "app changes key" true
    (base
    <> Plan_cache.key ~resolved:r2 ~net ~overlap:false ~backend:"sim"
         ~walker:"fast" ~inner:None)

let test_plan_cache_eviction () =
  let c = Plan_cache.create ~capacity:2 in
  let r = resolved_exn ~app:"sor" () in
  let compile () =
    Tiles_core.Plan.make ~m:r.Registry.m r.Registry.nest r.Registry.tiling
  in
  ignore (Plan_cache.find_or_compile c ~key:"a" compile);
  ignore (Plan_cache.find_or_compile c ~key:"b" compile);
  ignore (Plan_cache.find_or_compile c ~key:"a" compile);
  (* "b" is now least-recently used; inserting "c" must evict it *)
  ignore (Plan_cache.find_or_compile c ~key:"c" compile);
  let s = Plan_cache.stats c in
  check_int "size capped" 2 s.Plan_cache.size;
  check_int "one eviction" 1 s.Plan_cache.evictions;
  let _, st = Plan_cache.find_or_compile c ~key:"a" compile in
  check_bool "recently-used survived" true (st = `Hit);
  let _, st = Plan_cache.find_or_compile c ~key:"b" compile in
  check_bool "LRU evicted" true (st = `Miss)

(* ---------- Registry ---------- *)

let test_registry_errors () =
  (match
     Registry.resolve ~app:"fft" ~size1:8 ~size2:8 ~variant:"nonrect"
       ~tile:(2, 2, 2)
   with
  | Ok _ -> Alcotest.fail "unknown app resolved"
  | Error e ->
    check_bool "names the app" true
      (Astring.String.is_infix ~affix:"fft" e));
  (match
     Registry.resolve ~app:"sor" ~size1:0 ~size2:8 ~variant:"nonrect"
       ~tile:(2, 2, 2)
   with
  | Ok _ -> Alcotest.fail "size 0 resolved"
  | Error _ -> ());
  match
    Registry.resolve ~app:"sor" ~size1:8 ~size2:8 ~variant:"nonrect"
      ~tile:(0, 2, 2)
  with
  | Ok _ -> Alcotest.fail "zero tile factor resolved"
  | Error _ -> ()

(* ---------- Job ---------- *)

let test_job_roundtrip () =
  let line =
    {|{"id":"j7","op":"execute","app":"jacobi","size1":10,"size2":14,
       "variant":"rect","tile":[2,3,4],"backend":"shm","overlap":true,
       "walker":"strength","priority":2.5,"procs":8,"factors":[2,4]}|}
  in
  let j =
    match Json.parse line with
    | Ok v -> (
      match Job.of_json v with
      | Ok j -> j
      | Error e -> Alcotest.failf "of_json: %s" e)
    | Error e -> Alcotest.failf "parse: %s" e
  in
  check_str "id" "j7" j.Job.id;
  check_bool "op" true (j.Job.op = Job.Execute);
  check_str "backend" "shm" j.Job.backend;
  check_bool "overlap" true j.Job.overlap;
  Alcotest.(check (float 0.0)) "priority" 2.5 j.Job.priority;
  (* to_json parses back to the same record *)
  match Job.of_json (Job.to_json j) with
  | Ok j2 -> check_bool "roundtrip" true (j = j2)
  | Error e -> Alcotest.failf "roundtrip: %s" e

let test_job_rejects_garbage () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok v -> (
      match Job.of_json v with
      | Ok _ -> Alcotest.failf "accepted %s" s
      | Error _ -> ())
  in
  bad {|{"op":"compile","app":"sor"}|};
  bad {|{"op":"plan"}|};
  bad {|{"op":"execute","app":"sor","backend":"mpi"}|};
  bad {|{"op":"plan","app":"sor","walker":"turbo"}|};
  bad {|{"op":"plan","app":"sor","tile":[1,2]}|};
  (* shm makes sense only where real data flows *)
  bad {|{"op":"simulate","app":"sor","backend":"shm"}|}

(* ---------- Server: stepped, deterministic ---------- *)

let stalled_config ?(capacity = 8) () =
  { Server.default_config with Server.capacity; workers = 0 }

let collector () =
  let lock = Mutex.create () in
  let acc = ref [] in
  let respond j =
    Mutex.lock lock;
    acc := j :: !acc;
    Mutex.unlock lock
  in
  let get () =
    Mutex.lock lock;
    let l = List.rev !acc in
    Mutex.unlock lock;
    l
  in
  (respond, get)

(* sor tolerates small custom tiles; jacobi/adi keep the CLI defaults
   (sizes 24/32, tile 6x8x8) — not every tile divides their skewed
   spaces into integer-origin tiles *)
let plan_job ?(id = "") ?(app = "sor") ?(priority = 10.0) () =
  let fields =
    [
      ("id", Json.Str id);
      ("op", Json.Str "plan");
      ("app", Json.Str app);
      ("priority", Json.Float priority);
    ]
    @ (if app = "sor" then
         [
           ("size1", Json.Int 12);
           ("size2", Json.Int 16);
           ("tile", Json.List [ Json.Int 3; Json.Int 4; Json.Int 4 ]);
         ]
       else [])
    (* "nonrect" is a sor/jacobi variant; ADI's non-rectangular tilings
       are named nr1..nr3 *)
    @ if app = "adi" then [ ("variant", Json.Str "nr1") ] else []
  in
  match Job.of_json (Json.Obj fields) with
  | Ok j -> j
  | Error e -> Alcotest.failf "plan_job: %s" e

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "response missing %S: %s" name (Json.to_line j)

(* the coalescing contract: identical payloads bit-for-bit. Strip the
   per-delivery fields (identity, latency, cache label) and compare the
   rest rendered to a string. *)
let payload_fingerprint j =
  match j with
  | Json.Obj fields ->
    Json.to_line
      (Json.Obj
         (List.filter
            (fun (k, _) ->
              not
                (List.mem k
                   [ "id"; "cache"; "queued_s"; "service_s"; "metadata" ]))
            fields))
  | _ -> Alcotest.failf "not an object: %s" (Json.to_line j)

let test_coalesce_single_compile () =
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  let n = 6 in
  for i = 1 to n do
    Server.submit t ~respond (plan_job ~id:(Printf.sprintf "c%d" i) ())
  done;
  (* identical requests coalesce onto one leader: a single queue slot,
     a single step, a single compile *)
  check_bool "one step serves all" true (Server.step t);
  check_bool "queue empty after" false (Server.step t);
  let rs = got () in
  check_int "every caller answered" n (List.length rs);
  List.iter
    (fun r -> check_str "status" "ok" (str_field "status" r))
    rs;
  let labels = List.map (str_field "cache") rs in
  check_int "one miss (the leader)" 1
    (List.length (List.filter (( = ) "miss") labels));
  check_int "N-1 coalesced" (n - 1)
    (List.length (List.filter (( = ) "coalesced") labels));
  (* bit-identical results for every member of the batch *)
  (match List.map payload_fingerprint rs with
  | [] -> Alcotest.fail "no responses"
  | fp :: rest ->
    List.iteri
      (fun i fp' ->
        check_str (Printf.sprintf "payload %d identical" (i + 1)) fp fp')
      rest);
  (* counters agree: one compile amortized over the batch *)
  let m = Server.metrics_json t in
  let get path =
    match
      List.fold_left
        (fun acc k -> Option.bind acc (Json.member k))
        (Some m) path
    with
    | Some (Json.Int i) -> i
    | _ -> Alcotest.failf "metrics missing %s" (String.concat "." path)
  in
  check_int "coalesce.batched" (n - 1) (get [ "coalesce"; "batched" ]);
  check_int "plan_cache.compiles" 1 (get [ "plan_cache"; "compiles" ]);
  check_int "queue.accepted" 1 (get [ "queue"; "accepted" ]);
  Server.shutdown t

let test_coalesce_matches_solo_run () =
  (* the batched payload must equal the payload of a lone request on a
     fresh server — coalescing may not change answers *)
  let solo =
    let t = Server.create ~config:(stalled_config ()) () in
    let respond, got = collector () in
    Server.submit t ~respond (plan_job ~id:"solo" ());
    ignore (Server.step t);
    Server.shutdown t;
    match got () with
    | [ r ] -> payload_fingerprint r
    | l -> Alcotest.failf "expected 1 response, got %d" (List.length l)
  in
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  Server.submit t ~respond (plan_job ~id:"b1" ());
  Server.submit t ~respond (plan_job ~id:"b2" ());
  ignore (Server.step t);
  Server.shutdown t;
  List.iter
    (fun r -> check_str "same as solo" solo (payload_fingerprint r))
    (got ())

let test_admission_reject_end_to_end () =
  (* capacity k with a stalled pool: requests 1..k are admitted, k+1 is
     answered "rejected" with a structured reason — and distinct
     configurations so coalescing cannot absorb them *)
  let k = 3 in
  let t = Server.create ~config:(stalled_config ~capacity:k ()) () in
  let respond, got = collector () in
  let apps = [ "sor"; "jacobi"; "adi" ] in
  List.iteri
    (fun i app ->
      Server.submit t ~respond (plan_job ~id:(Printf.sprintf "a%d" i) ~app ()))
    apps;
  check_int "none answered yet" 0 (List.length (got ()));
  Server.submit t ~respond
    (plan_job ~id:"overflow" ~app:"sor" ~priority:1.0 ());
  (* same app but different priority — still a distinct coalesce key?
     No: priority is not part of the key, so use a different size via a
     raw job instead *)
  let distinct =
    match
      Job.of_json
        (Json.Obj
           [
             ("id", Json.Str "overflow2");
             ("op", Json.Str "plan");
             ("app", Json.Str "sor");
             ("size1", Json.Int 18);
             ("size2", Json.Int 20);
           ])
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "distinct job: %s" e
  in
  Server.submit t ~respond distinct;
  let rejected =
    List.filter (fun r -> str_field "status" r = "rejected") (got ())
  in
  check_int "exactly one rejection" 1 (List.length rejected);
  let r = List.hd rejected in
  check_str "rejected the overflow job" "overflow2" (str_field "id" r);
  check_str "structured reason" "queue_full" (str_field "reason" r);
  (match Json.member "capacity" r with
  | Some (Json.Int c) -> check_int "capacity in reason" k c
  | _ -> Alcotest.fail "no capacity field");
  (* the "overflow" submission coalesced onto a0 (same configuration),
     which is why it did not trip admission *)
  let m = Server.metrics_json t in
  (match Json.member "queue" m with
  | Some q -> (
    match Json.member "rejected_full" q with
    | Some (Json.Int n) -> check_int "reject counter" 1 n
    | _ -> Alcotest.fail "no rejected_full counter")
  | None -> Alcotest.fail "no queue section");
  (* drain the backlog; every admitted job still completes *)
  while Server.step t do () done;
  Server.drain t;
  let ok =
    List.filter (fun r -> str_field "status" r = "ok") (got ())
  in
  check_int "admitted jobs all answered" 4 (List.length ok);
  Server.shutdown t

let test_priority_served_first () =
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  Server.submit t ~respond (plan_job ~id:"bulk" ~app:"sor" ~priority:10.0 ());
  Server.submit t ~respond
    (plan_job ~id:"urgent" ~app:"jacobi" ~priority:1.0 ());
  ignore (Server.step t);
  (match got () with
  | first :: _ -> check_str "urgent first" "urgent" (str_field "id" first)
  | [] -> Alcotest.fail "no response");
  while Server.step t do () done;
  Server.shutdown t

let test_unknown_app_is_error_response () =
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  Server.submit t ~respond (plan_job ~id:"bad" ~app:"fft" ());
  (match got () with
  | [ r ] ->
    check_str "status" "error" (str_field "status" r);
    check_str "id echoed" "bad" (str_field "id" r)
  | l -> Alcotest.failf "expected immediate error, got %d" (List.length l));
  (* a resolution failure consumes no queue slot *)
  let m = Server.metrics_json t in
  (match Json.member "queue" m with
  | Some q -> (
    match Json.member "accepted" q with
    | Some (Json.Int n) -> check_int "nothing admitted" 0 n
    | _ -> Alcotest.fail "no accepted counter")
  | None -> Alcotest.fail "no queue section");
  Server.shutdown t

let test_handle_line_protocol () =
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  (* parse failure: answered synchronously as an error *)
  check_bool "garbage handled" true
    (Server.handle_line t ~respond "{nope" = `Handled);
  (* metrics snapshot: synchronous, no job involved *)
  check_bool "metrics handled" true
    (Server.handle_line t ~respond {|{"op":"metrics"}|} = `Handled);
  (* a real job goes through submit *)
  check_bool "job handled" true
    (Server.handle_line t ~respond
       {|{"id":"p1","op":"plan","app":"sor","size1":12,"size2":16}|}
    = `Handled);
  ignore (Server.step t);
  (* shutdown is the caller's signal to stop reading *)
  check_bool "shutdown" true
    (Server.handle_line t ~respond {|{"op":"shutdown"}|} = `Shutdown);
  let rs = got () in
  check_int "three responses" 3 (List.length rs);
  (match rs with
  | [ e; m; p ] ->
    check_str "error status" "error" (str_field "status" e);
    check_str "metrics op" "metrics" (str_field "op" m);
    check_bool "metrics has queue section" true
      (Json.member "metrics" m <> None);
    check_str "plan ok" "ok" (str_field "status" p);
    check_str "plan id" "p1" (str_field "id" p)
  | _ -> Alcotest.fail "unexpected response shapes");
  Server.shutdown t

let test_simulate_deterministic_and_cached () =
  (* two identical simulate jobs, submitted sequentially (no coalescing
     window): second must hit the plan cache and produce the same
     numbers — the simulator is deterministic *)
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  let job id =
    match
      Job.of_json
        (Json.Obj
           [
             ("id", Json.Str id);
             ("op", Json.Str "simulate");
             ("app", Json.Str "jacobi");
             ("size1", Json.Int 16);
             ("size2", Json.Int 24);
           ])
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "job: %s" e
  in
  Server.submit t ~respond (job "s1");
  ignore (Server.step t);
  Server.submit t ~respond (job "s2");
  ignore (Server.step t);
  (match got () with
  | [ r1; r2 ] ->
    check_str "first misses" "miss" (str_field "cache" r1);
    check_str "second hits" "hit" (str_field "cache" r2);
    check_str "identical result" (payload_fingerprint r1)
      (payload_fingerprint r2);
    (* the response embeds Runmeta with the job id and queue latency *)
    (match Json.member "metadata" r1 with
    | Some meta -> (
      check_bool "job_id in metadata" true
        (Json.member "job_id" meta = Some (Json.Str "s1"));
      match Json.member "queued_s" meta with
      | Some (Json.Float q) -> check_bool "queued_s >= 0" true (q >= 0.0)
      | _ -> Alcotest.fail "no queued_s in metadata")
    | None -> Alcotest.fail "no metadata")
  | l -> Alcotest.failf "expected 2 responses, got %d" (List.length l));
  Server.shutdown t

(* the service-wide longest-wait reservoir: bounded, sorted, attributed *)
let test_metrics_wait_reservoir () =
  let m = Metrics.create () in
  let span rank d = { Span.rank; t0 = 0.; t1 = d; kind = Span.Wait } in
  Metrics.observe_waits m ~job_id:"a" [ span 0 25.0; span 1 7.5 ];
  Metrics.observe_waits m ~job_id:"b"
    (List.init 20 (fun i -> span i (float_of_int (i + 1))));
  (* 22 waits offered; the top 16 are a:25, b:20..7 with a:7.5 slotted in *)
  let w = Metrics.longest_waits m in
  check_int "bounded at 16" 16 (List.length w);
  (match w with
  | (job, rank, s) :: _ ->
    check_str "longest attributed to a" "a" job;
    check_int "its rank" 0 rank;
    check_bool "its duration" true (s = 25.0)
  | [] -> Alcotest.fail "empty reservoir");
  let rec sorted = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  check_bool "longest first" true (sorted w);
  check_bool "a's second wait survives the cut" true
    (List.exists (fun (j, _, s) -> j = "a" && s = 7.5) w);
  check_bool "b's shortest were evicted" true
    (not (List.exists (fun (_, _, s) -> s <= 6.0) w));
  match Metrics.snapshot_json m with
  | Json.Obj kvs -> (
    match List.assoc_opt "longest_waits" kvs with
    | Some (Json.List l) -> check_int "snapshot embeds reservoir" 16 (List.length l)
    | _ -> Alcotest.fail "snapshot lacks longest_waits")
  | _ -> Alcotest.fail "snapshot not an object"

(* a simulate job run by the server lands its waits in the metrics,
   attributed to the leader's job id *)
let test_server_folds_job_waits () =
  let t = Server.create ~config:(stalled_config ()) () in
  let respond, got = collector () in
  check_bool "job handled" true
    (Server.handle_line t ~respond
       {|{"id":"w1","op":"simulate","app":"jacobi","size1":16,"size2":24}|}
    = `Handled);
  ignore (Server.step t);
  check_bool "metrics handled" true
    (Server.handle_line t ~respond {|{"op":"metrics"}|} = `Handled);
  (match got () with
  | [ _job; m ] -> (
    match Option.bind (Json.member "metrics" m) (Json.member "jobs") with
    | Some (Json.Obj kvs) -> (
      match List.assoc_opt "longest_waits" kvs with
      | Some (Json.List (_ :: _ as l)) ->
        check_bool "attributed to the job" true
          (List.for_all
             (fun e -> Json.member "job_id" e = Some (Json.Str "w1"))
             l)
      | _ -> Alcotest.fail "no longest_waits in snapshot")
    | _ -> Alcotest.fail "no metrics object")
  | l -> Alcotest.failf "expected 2 responses, got %d" (List.length l));
  Server.shutdown t

let test_pooled_server_drain () =
  (* with a real pool: submit a burst, drain, every job answered *)
  let config =
    { Server.default_config with Server.capacity = 16; workers = 2 }
  in
  let t = Server.create ~config () in
  let respond, got = collector () in
  let apps = [ "sor"; "jacobi"; "adi" ] in
  for i = 0 to 8 do
    Server.submit t ~respond
      (plan_job ~id:(Printf.sprintf "p%d" i)
         ~app:(List.nth apps (i mod 3))
         ())
  done;
  Server.drain t;
  let rs = got () in
  check_int "all answered" 9 (List.length rs);
  List.iter (fun r -> check_str "ok" "ok" (str_field "status" r)) rs;
  Server.shutdown t;
  (* shutdown is idempotent *)
  Server.shutdown t

let test_socket_roundtrip () =
  let dir = Filename.temp_file "tilec-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "tilec.sock" in
  let server =
    Domain.spawn (fun () ->
        Server.serve_socket
          ~config:{ (stalled_config ()) with Server.workers = 1 }
          ~path ())
  in
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  let fd = connect 100 in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc
    "{\"id\":\"s1\",\"op\":\"plan\",\"app\":\"sor\",\"size1\":12,\"size2\":16}\n";
  output_string oc "{\"op\":\"shutdown\"}\n";
  flush oc;
  let l1 = input_line ic in
  (match Json.parse l1 with
  | Ok r ->
    check_str "ok over socket" "ok" (str_field "status" r);
    check_str "id" "s1" (str_field "id" r)
  | Error e -> Alcotest.failf "bad response line %S: %s" l1 e);
  let l2 = input_line ic in
  (match Json.parse l2 with
  | Ok r -> check_str "shutdown ack" "shutdown" (str_field "op" r)
  | Error e -> Alcotest.failf "bad shutdown line %S: %s" l2 e);
  Domain.join server;
  Unix.close fd;
  check_bool "socket unlinked" false (Sys.file_exists path);
  Unix.rmdir dir

(* a client that submits a job and disconnects before its response is
   written used to kill the daemon: the write to the dead socket
   delivered SIGPIPE (default disposition: terminate) before the
   per-connection error handler ran. The server must survive and keep
   answering later clients. *)
let test_socket_early_disconnect () =
  let dir = Filename.temp_file "tilec-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "tilec.sock" in
  let server =
    Domain.spawn (fun () ->
        Server.serve_socket
          ~config:{ (stalled_config ()) with Server.workers = 1 }
          ~path ())
  in
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  (* tenant 1: submit a real simulate job, then vanish mid-response *)
  let fd1 = connect 100 in
  let oc1 = Unix.out_channel_of_descr fd1 in
  output_string oc1
    "{\"id\":\"gone\",\"op\":\"simulate\",\"app\":\"jacobi\",\"size1\":24,\
     \"size2\":64}\n";
  flush oc1;
  Unix.close fd1;
  (* tenant 2: the server must still be alive and serving *)
  let fd2 = connect 100 in
  let oc2 = Unix.out_channel_of_descr fd2 in
  let ic2 = Unix.in_channel_of_descr fd2 in
  output_string oc2
    "{\"id\":\"s2\",\"op\":\"plan\",\"app\":\"sor\",\"size1\":12,\"size2\":16}\n";
  output_string oc2 "{\"op\":\"shutdown\"}\n";
  flush oc2;
  let l1 = input_line ic2 in
  (match Json.parse l1 with
  | Ok r ->
    check_str "second tenant answered" "ok" (str_field "status" r);
    check_str "id" "s2" (str_field "id" r)
  | Error e -> Alcotest.failf "bad response line %S: %s" l1 e);
  let l2 = input_line ic2 in
  (match Json.parse l2 with
  | Ok r -> check_str "shutdown ack" "shutdown" (str_field "op" r)
  | Error e -> Alcotest.failf "bad shutdown line %S: %s" l2 e);
  Domain.join server;
  Unix.close fd2;
  Unix.rmdir dir

(* equal last-use ticks cannot arise through the public API (ticks are
   unique), so manufacture them: the victim must be the smallest key,
   independent of insertion order / hash-table layout *)
let test_plan_cache_tie_break () =
  let r = resolved_exn ~app:"sor" () in
  let compile () =
    Tiles_core.Plan.make ~m:r.Registry.m r.Registry.nest r.Registry.tiling
  in
  (* one probe per fresh cache: probing with find_or_compile re-inserts
     on a miss and would cascade further evictions *)
  let missing order probe =
    let c = Plan_cache.create ~capacity:3 in
    List.iter
      (fun k -> ignore (Plan_cache.find_or_compile c ~key:k compile))
      order;
    List.iter
      (fun k -> Plan_cache.set_last_use_for_testing c ~key:k ~age:7)
      order;
    (* insert a fourth entry: one of the three tied entries must go *)
    ignore (Plan_cache.find_or_compile c ~key:"zz" compile);
    let _, st = Plan_cache.find_or_compile c ~key:probe compile in
    st = `Miss
  in
  List.iter
    (fun order ->
      let label k =
        Printf.sprintf "probe %s (order %s)" k (String.concat "," order)
      in
      check_bool (label "aa") true (missing order "aa");
      check_bool (label "bb") false (missing order "bb");
      check_bool (label "cc") false (missing order "cc"))
    [ [ "aa"; "bb"; "cc" ]; [ "cc"; "aa"; "bb" ]; [ "bb"; "cc"; "aa" ] ]

let () =
  Alcotest.run "tiles_serve"
    [
      ( "admission",
        [
          Alcotest.test_case "capacity >= 1" `Quick test_admission_capacity;
          Alcotest.test_case "reject when full" `Quick
            test_admission_reject_full;
          Alcotest.test_case "priority order" `Quick
            test_admission_priority_order;
          Alcotest.test_case "close" `Quick test_admission_close;
          Alcotest.test_case "blocking pop" `Quick
            test_admission_blocking_pop;
        ] );
      ( "plan_cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_plan_cache_hits;
          Alcotest.test_case "key discriminates" `Quick
            test_plan_cache_key_discriminates;
          Alcotest.test_case "LRU eviction" `Quick test_plan_cache_eviction;
          Alcotest.test_case "deterministic tie-break" `Quick
            test_plan_cache_tie_break;
        ] );
      ( "registry",
        [ Alcotest.test_case "errors" `Quick test_registry_errors ] );
      ( "job",
        [
          Alcotest.test_case "roundtrip" `Quick test_job_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_job_rejects_garbage;
        ] );
      ( "server",
        [
          Alcotest.test_case "coalesce: one compile" `Quick
            test_coalesce_single_compile;
          Alcotest.test_case "coalesce: equals solo run" `Quick
            test_coalesce_matches_solo_run;
          Alcotest.test_case "admission rejects k+1" `Quick
            test_admission_reject_end_to_end;
          Alcotest.test_case "priority served first" `Quick
            test_priority_served_first;
          Alcotest.test_case "unknown app errors" `Quick
            test_unknown_app_is_error_response;
          Alcotest.test_case "protocol lines" `Quick
            test_handle_line_protocol;
          Alcotest.test_case "simulate cached+deterministic" `Quick
            test_simulate_deterministic_and_cached;
          Alcotest.test_case "wait reservoir bounded" `Quick
            test_metrics_wait_reservoir;
          Alcotest.test_case "job waits fold into metrics" `Quick
            test_server_folds_job_waits;
          Alcotest.test_case "pooled drain" `Quick test_pooled_server_drain;
          Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip;
          Alcotest.test_case "socket early disconnect" `Quick
            test_socket_early_disconnect;
        ] );
    ]
