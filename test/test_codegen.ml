module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Plan = Tiles_core.Plan
module C_ast = Tiles_codegen.C_ast
module Ckernel = Tiles_codegen.Ckernel
module Seqgen = Tiles_codegen.Seqgen
module Mpigen = Tiles_codegen.Mpigen
module Kernel = Tiles_runtime.Kernel
module Grid = Tiles_runtime.Grid
module Seq_exec = Tiles_runtime.Seq_exec
module Sor = Tiles_apps.Sor
module Jacobi = Tiles_apps.Jacobi
module Adi = Tiles_apps.Adi

(* ---------- C AST ---------- *)

let expr_str e =
  let b = Buffer.create 64 in
  C_ast.pp_expr b e;
  Buffer.contents b

let test_expr_printing () =
  Alcotest.(check string) "add" "(x + 1)" (expr_str C_ast.(Add (Var "x", Int 1)));
  Alcotest.(check string) "floord" "floord(x, 2)"
    (expr_str C_ast.(FloorDiv (Var "x", Int 2)));
  Alcotest.(check string) "max" "imax(a, b)"
    (expr_str C_ast.(Max (Var "a", Var "b")));
  Alcotest.(check string) "neg int" "(-3)" (expr_str (C_ast.Int (-3)));
  Alcotest.(check string) "idx" "a[i][j]"
    (expr_str C_ast.(Idx ("a", [ Var "i"; Var "j" ])))

let test_simplify () =
  let s = C_ast.simplify in
  Alcotest.(check string) "x+0" "x" (expr_str (s C_ast.(Add (Var "x", Int 0))));
  Alcotest.(check string) "1*x" "x" (expr_str (s C_ast.(Mul (Int 1, Var "x"))));
  Alcotest.(check string) "0*x" "0" (expr_str (s C_ast.(Mul (Int 0, Var "x"))));
  Alcotest.(check string) "fold" "7" (expr_str (s C_ast.(Add (Int 3, Int 4))));
  Alcotest.(check string) "fdiv fold" "(-2)"
    (expr_str (s C_ast.(FloorDiv (Int (-7), Int 4))))

let test_balanced_braces src =
  let opens = ref 0 and closes = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr opens else if c = '}' then incr closes)
    src;
  Alcotest.(check int) "balanced braces" !opens !closes

(* ---------- compile & run helpers ---------- *)

let run_cmd cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let tmpdir = Filename.get_temp_dir_name ()

(* locate the vendored MPI stub: walk up from cwd (works both under
   `dune runtest`, where deps are staged at _build/default/vendor, and
   when running the test binary from the source tree) *)
let stub_dir =
  lazy
    (let rec search dir depth =
       let cand = Filename.concat dir "vendor/mpistub" in
       if Sys.file_exists (Filename.concat cand "mpi.h") then Some cand
       else if depth = 0 then None
       else search (Filename.dirname dir) (depth - 1)
     in
     match search (Sys.getcwd ()) 8 with
     | Some d -> d
     | None -> Alcotest.fail "vendor/mpistub not found from cwd")

let compile_and_run ?(nprocs = 1) ~mpi name src =
  let base = Filename.concat tmpdir ("tiles_" ^ name) in
  let cfile = base ^ ".c" and exe = base ^ ".exe" in
  let oc = open_out cfile in
  output_string oc src;
  close_out oc;
  let compile =
    if mpi then
      let stub = Lazy.force stub_dir in
      Printf.sprintf "gcc -O1 -std=c99 -I %s %s %s -lm -o %s 2>&1"
        (Filename.quote stub) (Filename.quote cfile)
        (Filename.quote (Filename.concat stub "mpi_stub.c"))
        (Filename.quote exe)
    else
      Printf.sprintf "gcc -O1 -std=c99 %s -lm -o %s 2>&1" (Filename.quote cfile)
        (Filename.quote exe)
  in
  let status, out = run_cmd compile in
  if status <> Unix.WEXITED 0 then
    Alcotest.failf "gcc failed for %s:\n%s" name out;
  let status, out =
    run_cmd (Printf.sprintf "TILES_MPI_NPROCS=%d %s 2>&1" nprocs (Filename.quote exe))
  in
  if status <> Unix.WEXITED 0 then Alcotest.failf "%s run failed:\n%s" name out;
  out

let parse_output out =
  let points = ref (-1) and checksum = ref Float.nan in
  List.iter
    (fun line ->
      (try Scanf.sscanf line "points %d" (fun p -> points := p) with _ -> ());
      try Scanf.sscanf line "checksum %e" (fun c -> checksum := c) with _ -> ())
    (String.split_on_char '\n' out);
  (!points, !checksum)

let rel_close a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* ---------- generated sequential code vs OCaml oracle ---------- *)

let check_seq ~name ~nest ~kernel ~ckernel ~reads ~skew ~tiling =
  let plan = Plan.make nest tiling in
  let src = Seqgen.generate ~plan ~kernel:ckernel ~reads ?skew () in
  test_balanced_braces src;
  let out = compile_and_run ~mpi:false name src in
  let points, checksum = parse_output out in
  let space = nest.Nest.space in
  Alcotest.(check int) (name ^ " points") (Polyhedron.count_points space) points;
  let oracle = Grid.checksum (Seq_exec.run ~space ~kernel ()) space in
  if not (rel_close checksum oracle) then
    Alcotest.failf "%s checksum %.12e vs oracle %.12e" name checksum oracle

let test_seqgen_sor () =
  let p = Sor.make ~m_steps:5 ~size:7 in
  check_seq ~name:"seq_sor" ~nest:(Sor.nest p) ~kernel:(Sor.kernel p)
    ~ckernel:Sor.ckernel ~reads:Sor.skewed_reads ~skew:(Some Sor.skew_matrix)
    ~tiling:(Sor.nonrect ~x:3 ~y:4 ~z:3)

let test_seqgen_jacobi () =
  let p = Jacobi.make ~t_steps:4 ~size:6 in
  check_seq ~name:"seq_jacobi" ~nest:(Jacobi.nest p) ~kernel:(Jacobi.kernel p)
    ~ckernel:Jacobi.ckernel ~reads:Jacobi.skewed_reads
    ~skew:(Some Jacobi.skew_matrix)
    ~tiling:(Jacobi.nonrect ~x:2 ~y:4 ~z:4)

let test_seqgen_adi () =
  let p = Adi.make ~t_steps:4 ~size:6 in
  check_seq ~name:"seq_adi" ~nest:(Adi.nest p) ~kernel:(Adi.kernel p)
    ~ckernel:Adi.ckernel ~reads:Adi.creads ~skew:None
    ~tiling:(Adi.nr3 ~x:2 ~y:3 ~z:3)

(* ---------- generated MPI code vs OCaml oracle ---------- *)

let check_mpi ?m ~name ~nest ~kernel ~ckernel ~reads ~skew ~tiling () =
  let plan = Plan.make ?m nest tiling in
  let src = Mpigen.generate ~plan ~kernel:ckernel ~reads ?skew () in
  test_balanced_braces src;
  Alcotest.(check bool) "has MPI_Send" true
    (Astring.String.is_infix ~affix:"MPI_Send" src);
  let out = compile_and_run ~mpi:true ~nprocs:(Plan.nprocs plan) name src in
  let points, checksum = parse_output out in
  let space = nest.Nest.space in
  Alcotest.(check int) (name ^ " points") (Polyhedron.count_points space) points;
  let oracle = Grid.checksum (Seq_exec.run ~space ~kernel ()) space in
  if not (rel_close checksum oracle) then
    Alcotest.failf "%s checksum %.12e vs oracle %.12e (procs=%d)" name checksum
      oracle (Plan.nprocs plan)

let test_mpigen_sor () =
  let p = Sor.make ~m_steps:6 ~size:8 in
  check_mpi ~m:2 ~name:"mpi_sor" ~nest:(Sor.nest p) ~kernel:(Sor.kernel p)
    ~ckernel:Sor.ckernel ~reads:Sor.skewed_reads ~skew:(Some Sor.skew_matrix)
    ~tiling:(Sor.nonrect ~x:3 ~y:4 ~z:4) ()

let test_mpigen_sor_rect () =
  let p = Sor.make ~m_steps:6 ~size:8 in
  check_mpi ~m:2 ~name:"mpi_sor_rect" ~nest:(Sor.nest p) ~kernel:(Sor.kernel p)
    ~ckernel:Sor.ckernel ~reads:Sor.skewed_reads ~skew:(Some Sor.skew_matrix)
    ~tiling:(Sor.rect ~x:3 ~y:4 ~z:4) ()

let test_mpigen_jacobi () =
  let p = Jacobi.make ~t_steps:4 ~size:7 in
  check_mpi ~m:0 ~name:"mpi_jacobi" ~nest:(Jacobi.nest p)
    ~kernel:(Jacobi.kernel p) ~ckernel:Jacobi.ckernel
    ~reads:Jacobi.skewed_reads ~skew:(Some Jacobi.skew_matrix)
    ~tiling:(Jacobi.nonrect ~x:2 ~y:4 ~z:4) ()

let test_mpigen_adi () =
  let p = Adi.make ~t_steps:5 ~size:8 in
  check_mpi ~m:0 ~name:"mpi_adi" ~nest:(Adi.nest p) ~kernel:(Adi.kernel p)
    ~ckernel:Adi.ckernel ~reads:Adi.creads ~skew:None
    ~tiling:(Adi.nr3 ~x:3 ~y:4 ~z:4) ()

(* ---------- Bounds ---------- *)

let test_bounds_exprs () =
  let module Constr = Tiles_poly.Constr in
  let module FM = Tiles_poly.Fourier_motzkin in
  (* x0 >= 2, x0 <= 9, x1 >= x0, 2*x1 <= 3*x0 + 5 *)
  let cs =
    [
      Constr.ge [| 1; 0 |] 2;
      Constr.le [| 1; 0 |] 9;
      Constr.ge [| -1; 1 |] 0;
      Constr.le [| -3; 2 |] 5;
    ]
  in
  let proj = FM.project cs ~dim:2 in
  let name k = Printf.sprintf "x%d" k in
  Alcotest.(check string) "x0 lower" "2"
    (expr_str (Tiles_codegen.Bounds.lower (FM.system proj ~var:0) ~var:0 ~name));
  Alcotest.(check string) "x0 upper" "9"
    (expr_str (Tiles_codegen.Bounds.upper (FM.system proj ~var:0) ~var:0 ~name));
  Alcotest.(check string) "x1 lower" "x0"
    (expr_str (Tiles_codegen.Bounds.lower (FM.system proj ~var:1) ~var:1 ~name));
  Alcotest.(check string) "x1 upper" "floord((5 + (3 * x0)), 2)"
    (expr_str (Tiles_codegen.Bounds.upper (FM.system proj ~var:1) ~var:1 ~name));
  (* passing the unprojected system is an error, not a silent wrong bound *)
  Alcotest.(check bool) "unprojected raises" true
    (try
       ignore (Tiles_codegen.Bounds.upper cs ~var:0 ~name);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unbounded raises" true
    (try
       ignore
         (Tiles_codegen.Bounds.upper [ Constr.ge [| 1 |] 0 ] ~var:0 ~name);
       false
     with Failure _ -> true)

let test_seqgen_rejects_read_mismatch () =
  let p = Adi.make ~t_steps:3 ~size:4 in
  let plan = Plan.make ~m:0 (Adi.nest p) (Adi.rect ~x:2 ~y:2 ~z:2) in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Seqgen.generate ~plan ~kernel:Adi.ckernel ~reads:[ [| 1; 0; 0 |] ] ());
       false
     with Invalid_argument _ -> true)

let test_mpigen_adi_rect () =
  let p = Adi.make ~t_steps:5 ~size:8 in
  check_mpi ~m:0 ~name:"mpi_adi_rect" ~nest:(Adi.nest p) ~kernel:(Adi.kernel p)
    ~ckernel:Adi.ckernel ~reads:Adi.creads ~skew:None
    ~tiling:(Adi.rect ~x:3 ~y:4 ~z:4) ()

let test_mpigen_single_process () =
  (* a plan whose grid collapses to one pid still generates and runs *)
  let p = Adi.make ~t_steps:6 ~size:4 in
  check_mpi ~m:0 ~name:"mpi_adi_1p" ~nest:(Adi.nest p) ~kernel:(Adi.kernel p)
    ~ckernel:Adi.ckernel ~reads:Adi.creads ~skew:None
    ~tiling:(Adi.rect ~x:2 ~y:4 ~z:4) ()

(* ---------- parametric sequential generation ---------- *)

let compile_parametric name src =
  let base = Filename.concat tmpdir ("tiles_" ^ name) in
  let cfile = base ^ ".c" and exe = base ^ ".exe" in
  let oc = open_out cfile in
  output_string oc src;
  close_out oc;
  let status, out =
    run_cmd
      (Printf.sprintf "gcc -O1 -std=c99 %s -lm -o %s 2>&1"
         (Filename.quote cfile) (Filename.quote exe))
  in
  if status <> Unix.WEXITED 0 then Alcotest.failf "gcc failed:\n%s" out;
  exe

let run_parametric exe args =
  let status, out =
    run_cmd (Printf.sprintf "%s %s 2>&1" (Filename.quote exe) args)
  in
  if status <> Unix.WEXITED 0 then Alcotest.failf "run failed:\n%s" out;
  parse_output out

let check_parametric ~name ~pspace ~tiling ~kernel_ml ~ckernel ~reads ~skew
    ~mk_nest sizes =
  let src =
    Tiles_codegen.Pseqgen.generate ~pspace ~tiling ~kernel:ckernel ~reads
      ?skew ()
  in
  test_balanced_braces src;
  (* one binary, several problem sizes *)
  let exe = compile_parametric name src in
  List.iter
    (fun (a, b) ->
      let points, checksum = run_parametric exe (Printf.sprintf "%d %d" a b) in
      let nest : Tiles_loop.Nest.t = mk_nest a b in
      Alcotest.(check int)
        (Printf.sprintf "%s points (%d,%d)" name a b)
        (Polyhedron.count_points nest.Nest.space)
        points;
      let oracle =
        Grid.checksum
          (Seq_exec.run ~space:nest.Nest.space ~kernel:kernel_ml ())
          nest.Nest.space
      in
      if not (rel_close checksum oracle) then
        Alcotest.failf "%s (%d,%d): checksum %.12e vs oracle %.12e" name a b
          checksum oracle)
    sizes

let test_pseqgen_sor () =
  check_parametric ~name:"pseq_sor" ~pspace:(Sor.pspace ())
    ~tiling:(Sor.nonrect ~x:3 ~y:4 ~z:3)
    ~kernel_ml:(Sor.kernel (Sor.make ~m_steps:2 ~size:2))
    ~ckernel:Sor.ckernel ~reads:Sor.skewed_reads ~skew:(Some Sor.skew_matrix)
    ~mk_nest:(fun m n -> Sor.nest (Sor.make ~m_steps:m ~size:n))
    [ (5, 7); (6, 9); (8, 8) ]

let test_pseqgen_adi () =
  check_parametric ~name:"pseq_adi" ~pspace:(Adi.pspace ())
    ~tiling:(Adi.nr3 ~x:2 ~y:3 ~z:3)
    ~kernel_ml:(Adi.kernel (Adi.make ~t_steps:2 ~size:2))
    ~ckernel:Adi.ckernel ~reads:Adi.creads ~skew:None
    ~mk_nest:(fun t n -> Adi.nest (Adi.make ~t_steps:t ~size:n))
    [ (4, 6); (5, 9); (7, 7) ]

let test_pseqgen_jacobi () =
  (* parametric + non-unimodular strides (1,2,1) together *)
  check_parametric ~name:"pseq_jacobi" ~pspace:(Jacobi.pspace ())
    ~tiling:(Jacobi.nonrect ~x:2 ~y:4 ~z:4)
    ~kernel_ml:(Jacobi.kernel (Jacobi.make ~t_steps:2 ~size:2))
    ~ckernel:Jacobi.ckernel ~reads:Jacobi.skewed_reads
    ~skew:(Some Jacobi.skew_matrix)
    ~mk_nest:(fun t n -> Jacobi.nest (Jacobi.make ~t_steps:t ~size:n))
    [ (4, 7); (6, 10) ]

let test_mpigen_triband () =
  (* a triangular iteration space through the generated-code path *)
  let module Triband = Tiles_apps.Triband in
  let p = Triband.make ~size:18 in
  check_mpi ~m:0 ~name:"mpi_triband" ~nest:(Triband.nest p)
    ~kernel:(Triband.kernel p) ~ckernel:Triband.ckernel ~reads:Triband.creads
    ~skew:None
    ~tiling:(Triband.oblique ~x:4 ~y:5) ()

let test_mpigen_structure () =
  let p = Adi.make ~t_steps:4 ~size:6 in
  let plan = Plan.make ~m:0 (Adi.nest p) (Adi.nr3 ~x:2 ~y:3 ~z:3) in
  let src = Mpigen.generate ~plan ~kernel:Adi.ckernel ~reads:Adi.creads () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %s" needle)
        true
        (Astring.String.is_infix ~affix:needle src))
    [
      "MPI_Init"; "MPI_Recv"; "MPI_Send"; "MPI_Reduce"; "MPI_Finalize";
      "minsucc_ts"; "valid("; "lds_coords"; "ttis_start";
    ]

let () =
  Alcotest.run "tiles_codegen"
    [
      ( "c-ast",
        [
          Alcotest.test_case "printing" `Quick test_expr_printing;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ("bounds", [ Alcotest.test_case "exprs" `Quick test_bounds_exprs ]);
      ( "seqgen",
        [
          Alcotest.test_case "sor" `Quick test_seqgen_sor;
          Alcotest.test_case "jacobi" `Quick test_seqgen_jacobi;
          Alcotest.test_case "adi" `Quick test_seqgen_adi;
          Alcotest.test_case "read mismatch" `Quick test_seqgen_rejects_read_mismatch;
          Alcotest.test_case "parametric sor" `Quick test_pseqgen_sor;
          Alcotest.test_case "parametric adi" `Quick test_pseqgen_adi;
          Alcotest.test_case "parametric jacobi" `Quick test_pseqgen_jacobi;
        ] );
      ( "mpigen",
        [
          Alcotest.test_case "structure" `Quick test_mpigen_structure;
          Alcotest.test_case "sor nonrect" `Quick test_mpigen_sor;
          Alcotest.test_case "sor rect" `Quick test_mpigen_sor_rect;
          Alcotest.test_case "jacobi" `Quick test_mpigen_jacobi;
          Alcotest.test_case "adi" `Quick test_mpigen_adi;
          Alcotest.test_case "adi rect" `Quick test_mpigen_adi_rect;
          Alcotest.test_case "single process" `Quick test_mpigen_single_process;
          Alcotest.test_case "triband triangular" `Quick test_mpigen_triband;
        ] );
    ]
