/* Minimal single-machine MPI substitute for testing generated programs.
 *
 * MPI_Init forks size-1 child processes (size from the TILES_MPI_NPROCS
 * environment variable); every pair of ranks is connected by a Unix
 * socketpair. Blocking MPI_Send is buffered by the socket (buffers are
 * enlarged at startup), MPI_Recv matches by (source, tag) with a stash
 * for out-of-order tags — the same eager-buffered semantics the paper's
 * generated code relies on and the OCaml simulator models.
 *
 * Supported: Init, Comm_rank, Comm_size, Send, Recv (MPI_DOUBLE),
 * Reduce (MPI_SUM over MPI_DOUBLE), Barrier, Finalize, Abort.
 */
#ifndef TILES_MPI_STUB_H
#define TILES_MPI_STUB_H

typedef int MPI_Comm;
typedef int MPI_Datatype;
typedef int MPI_Op;
typedef struct {
  int MPI_SOURCE;
  int MPI_TAG;
  int count;
} MPI_Status;

#define MPI_COMM_WORLD 0
#define MPI_DOUBLE 1
#define MPI_SUM 1
#define MPI_STATUS_IGNORE ((MPI_Status *)0)

int MPI_Init(int *argc, char ***argv);
int MPI_Comm_rank(MPI_Comm comm, int *rank);
int MPI_Comm_size(MPI_Comm comm, int *size);
int MPI_Send(const void *buf, int count, MPI_Datatype dt, int dest, int tag,
             MPI_Comm comm);
int MPI_Recv(void *buf, int count, MPI_Datatype dt, int source, int tag,
             MPI_Comm comm, MPI_Status *status);
int MPI_Reduce(const void *sendbuf, void *recvbuf, int count, MPI_Datatype dt,
               MPI_Op op, int root, MPI_Comm comm);
int MPI_Barrier(MPI_Comm comm);
int MPI_Finalize(void);
int MPI_Abort(MPI_Comm comm, int errorcode);

#endif
