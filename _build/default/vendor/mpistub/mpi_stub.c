#include "mpi.h"

#include <errno.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#define MAXP 64
#define TAG_REDUCE 0x7ffffff0
#define TAG_BARRIER 0x7ffffff1

static int g_rank = 0;
static int g_size = 1;
static int g_fd[MAXP][MAXP]; /* g_fd[me][peer], valid for peer != me */
static pid_t g_children[MAXP];
static int g_nchildren = 0;

typedef struct stash_msg {
  int tag;
  int count; /* doubles */
  double *data;
  struct stash_msg *next;
} stash_msg;

static stash_msg *g_stash[MAXP];

static void die(const char *what) {
  fprintf(stderr, "mpistub rank %d: %s: %s\n", g_rank, what, strerror(errno));
  exit(1);
}

static void write_all(int fd, const void *buf, size_t len) {
  const char *p = (const char *)buf;
  while (len > 0) {
    ssize_t w = write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      die("write");
    }
    p += w;
    len -= (size_t)w;
  }
}

static void read_all(int fd, void *buf, size_t len) {
  char *p = (char *)buf;
  while (len > 0) {
    ssize_t r = read(fd, p, len);
    if (r < 0) {
      if (errno == EINTR) continue;
      die("read");
    }
    if (r == 0) die("unexpected EOF from peer");
    p += r;
    len -= (size_t)r;
  }
}

int MPI_Init(int *argc, char ***argv) {
  const char *env = getenv("TILES_MPI_NPROCS");
  int i, j, r;
  (void)argc;
  (void)argv;
  g_size = env ? atoi(env) : 1;
  if (g_size < 1 || g_size > MAXP) {
    fprintf(stderr, "mpistub: bad TILES_MPI_NPROCS\n");
    exit(1);
  }
  if (g_size == 1) return 0;

  /* one socketpair per unordered rank pair, created before forking */
  static int pair_a[MAXP][MAXP], pair_b[MAXP][MAXP];
  for (i = 0; i < g_size; i++)
    for (j = i + 1; j < g_size; j++) {
      int sv[2];
      int bufsz = 8 << 20;
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) die("socketpair");
      setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof bufsz);
      setsockopt(sv[1], SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof bufsz);
      setsockopt(sv[0], SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof bufsz);
      setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof bufsz);
      pair_a[i][j] = sv[0];
      pair_b[i][j] = sv[1];
    }

  g_rank = 0;
  for (r = 1; r < g_size; r++) {
    pid_t pid = fork();
    if (pid < 0) die("fork");
    if (pid == 0) {
      g_rank = r;
      g_nchildren = 0;
      break;
    }
    g_children[g_nchildren++] = pid;
  }

  /* keep only the endpoints involving this rank */
  for (i = 0; i < g_size; i++)
    for (j = i + 1; j < g_size; j++) {
      if (i == g_rank) g_fd[g_rank][j] = pair_a[i][j];
      else if (j == g_rank) g_fd[g_rank][i] = pair_b[i][j];
      else {
        close(pair_a[i][j]);
        close(pair_b[i][j]);
      }
    }
  return 0;
}

int MPI_Comm_rank(MPI_Comm comm, int *rank) {
  (void)comm;
  *rank = g_rank;
  return 0;
}

int MPI_Comm_size(MPI_Comm comm, int *size) {
  (void)comm;
  *size = g_size;
  return 0;
}

static int send_raw(int dest, int tag, const double *data, int count) {
  int hdr[2];
  if (dest < 0 || dest >= g_size || dest == g_rank) {
    fprintf(stderr, "mpistub rank %d: bad destination %d\n", g_rank, dest);
    exit(1);
  }
  hdr[0] = tag;
  hdr[1] = count;
  write_all(g_fd[g_rank][dest], hdr, sizeof hdr);
  if (count > 0) write_all(g_fd[g_rank][dest], data, (size_t)count * sizeof(double));
  return 0;
}

int MPI_Send(const void *buf, int count, MPI_Datatype dt, int dest, int tag,
             MPI_Comm comm) {
  (void)dt;
  (void)comm;
  return send_raw(dest, tag, (const double *)buf, count);
}

static int recv_raw(int source, int tag, double *buf, int count) {
  stash_msg **link;
  if (source < 0 || source >= g_size || source == g_rank) {
    fprintf(stderr, "mpistub rank %d: bad source %d\n", g_rank, source);
    exit(1);
  }
  /* check the stash for an out-of-order earlier arrival */
  for (link = &g_stash[source]; *link; link = &(*link)->next) {
    if ((*link)->tag == tag) {
      stash_msg *m = *link;
      if (m->count != count) {
        fprintf(stderr, "mpistub rank %d: count mismatch (src=%d tag=%d)\n",
                g_rank, source, tag);
        exit(1);
      }
      memcpy(buf, m->data, (size_t)count * sizeof(double));
      *link = m->next;
      free(m->data);
      free(m);
      return 0;
    }
  }
  for (;;) {
    int hdr[2];
    read_all(g_fd[g_rank][source], hdr, sizeof hdr);
    if (hdr[0] == tag) {
      if (hdr[1] != count) {
        fprintf(stderr, "mpistub rank %d: count mismatch (src=%d tag=%d)\n",
                g_rank, source, tag);
        exit(1);
      }
      if (count > 0) read_all(g_fd[g_rank][source], buf, (size_t)count * sizeof(double));
      return 0;
    }
    else {
      stash_msg *m = (stash_msg *)malloc(sizeof *m);
      m->tag = hdr[0];
      m->count = hdr[1];
      m->data = (double *)malloc((size_t)(hdr[1] > 0 ? hdr[1] : 1) * sizeof(double));
      if (hdr[1] > 0) read_all(g_fd[g_rank][source], m->data, (size_t)hdr[1] * sizeof(double));
      m->next = g_stash[source];
      g_stash[source] = m;
    }
  }
}

int MPI_Recv(void *buf, int count, MPI_Datatype dt, int source, int tag,
             MPI_Comm comm, MPI_Status *status) {
  (void)dt;
  (void)comm;
  recv_raw(source, tag, (double *)buf, count);
  if (status != MPI_STATUS_IGNORE) {
    status->MPI_SOURCE = source;
    status->MPI_TAG = tag;
    status->count = count;
  }
  return 0;
}

int MPI_Reduce(const void *sendbuf, void *recvbuf, int count, MPI_Datatype dt,
               MPI_Op op, int root, MPI_Comm comm) {
  (void)dt;
  (void)op;
  (void)comm;
  if (g_size == 1) {
    memcpy(recvbuf, sendbuf, (size_t)count * sizeof(double));
    return 0;
  }
  if (g_rank == root) {
    int r, i;
    double *acc = (double *)recvbuf;
    double *tmp = (double *)malloc((size_t)count * sizeof(double));
    memcpy(acc, sendbuf, (size_t)count * sizeof(double));
    for (r = 0; r < g_size; r++) {
      if (r == root) continue;
      recv_raw(r, TAG_REDUCE, tmp, count);
      for (i = 0; i < count; i++) acc[i] += tmp[i];
    }
    free(tmp);
  }
  else
    send_raw(root, TAG_REDUCE, (const double *)sendbuf, count);
  return 0;
}

int MPI_Barrier(MPI_Comm comm) {
  double token = 0.;
  (void)comm;
  if (g_size == 1) return 0;
  if (g_rank == 0) {
    int r;
    for (r = 1; r < g_size; r++) recv_raw(r, TAG_BARRIER, &token, 1);
    for (r = 1; r < g_size; r++) send_raw(r, TAG_BARRIER, &token, 1);
  }
  else {
    send_raw(0, TAG_BARRIER, &token, 1);
    recv_raw(0, TAG_BARRIER, &token, 1);
  }
  return 0;
}

int MPI_Finalize(void) {
  int i;
  fflush(stdout);
  if (g_rank != 0) _exit(0); /* children leave; only rank 0 returns */
  for (i = 0; i < g_nchildren; i++) {
    int st;
    waitpid(g_children[i], &st, 0);
    if (!WIFEXITED(st) || WEXITSTATUS(st) != 0) {
      fprintf(stderr, "mpistub: child %d failed\n", i + 1);
      exit(1);
    }
  }
  return 0;
}

int MPI_Abort(MPI_Comm comm, int errorcode) {
  (void)comm;
  exit(errorcode);
}
