(** The Tile Space [J^S = {⌊H·j⌋ | j ∈ J^n}] and its loop bounds.

    Following ref [7], the exact characterisation
    [v_kk·j^S_k <= h'_k·j <= v_kk·j^S_k + v_kk − 1] is joined with the
    constraints of [J^n] in a [2n]-variable system and the [j] variables
    are eliminated by Fourier–Motzkin, leaving a polyhedron over [j^S]
    whose integer points are the candidate tiles. The projection is a
    rational relaxation, so a few boundary candidates may contain no
    iteration; they stay in the protocol (both communication end-points
    agree on the same candidate set) and simply execute zero iterations. *)

type t = private {
  tiling : Tiling.t;
  space : Tiles_poly.Polyhedron.t;  (** [J^n] *)
  poly : Tiles_poly.Polyhedron.t;   (** candidate tiles over [j^S] *)
  bbox : (int * int) array;         (** per-dimension tile index range *)
}

val make : Tiles_poly.Polyhedron.t -> Tiling.t -> t

val candidates : t -> Tiles_util.Vec.t list
(** All candidate tiles, lexicographic. *)

val contains : t -> Tiles_util.Vec.t -> bool
(** Candidate-tile membership — the paper's [valid()] predicate. *)

val trip_count : t -> int -> int
(** [trip_count t k] — number of tile indices along dimension [k]
    (bounding-box width); §3.1 maps the dimension with the maximum trip
    count to the same processor. *)

val tile_iterations : t -> Tiles_util.Vec.t -> int
(** Exact number of iterations [j ∈ J^n] inside a given tile (enumerates
    the TTIS and clips against [J^n]). *)

val is_interior : t -> Tiles_util.Vec.t -> bool
(** True iff the tile's closed parallelepiped hull (vertices
    [P·(j^S + ε)], [ε ∈ {0,1}^n], exact rational arithmetic) lies inside
    [J^n] — then every TTIS lattice point is an iteration and the tile
    contributes exactly [Tiling.tile_size] points without enumeration. *)

val iter_tile_points :
  t -> tile:Tiles_util.Vec.t -> (local:Tiles_util.Vec.t -> global:Tiles_util.Vec.t -> unit) -> unit
(** Enumerate the iterations of one tile: for each TTIS point [j'] whose
    global image [j] lies in [J^n], call the function with both (reused
    buffers). Lexicographic in [j']. *)

val iter_slab_points :
  t ->
  tile:Tiles_util.Vec.t ->
  lo:int array ->
  (local:Tiles_util.Vec.t -> global:Tiles_util.Vec.t -> unit) ->
  unit
(** Like {!iter_tile_points} but restricted to the slab
    [j'_k >= lo.(k)] — the §3.2 pack/unpack loops. Clipping against
    [J^n] is what makes the boundary-tile "corrected bounds" of the paper:
    only real iterations are communicated, so the rectangular and
    non-rectangular variants move exactly the same data. *)

val slab_points : t -> tile:Tiles_util.Vec.t -> lo:int array -> int
(** Number of points {!iter_slab_points} would visit; interior tiles
    short-circuit to the unclipped lattice count. *)
