lib/core/mapping.mli: Tile_space Tiles_util
