lib/core/tiling.mli: Format Tiles_linalg Tiles_loop Tiles_rat Tiles_util
