lib/core/shape.ml: Array List Tiles_linalg Tiles_loop Tiles_poly Tiles_rat Tiles_util Tiling
