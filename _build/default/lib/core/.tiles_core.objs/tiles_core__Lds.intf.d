lib/core/lds.mli: Comm Tiles_util Tiling
