lib/core/tile_space.ml: Array List Tiles_linalg Tiles_poly Tiles_rat Tiles_util Tiling Ttis
