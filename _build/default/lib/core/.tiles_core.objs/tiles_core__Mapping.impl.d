lib/core/mapping.ml: Array List Tile_space Tiles_poly Tiles_util
