lib/core/schedule.ml: Array List Plan Tile_space Tiles_loop Tiles_poly Tiles_util Tiling
