lib/core/ttis.ml: Array List Tiles_linalg Tiles_util Tiling
