lib/core/ttis.mli: Tiles_util Tiling
