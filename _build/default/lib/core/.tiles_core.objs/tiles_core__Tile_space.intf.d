lib/core/tile_space.mli: Tiles_poly Tiles_util Tiling
