lib/core/tiling.ml: Array Format List Printf Tiles_linalg Tiles_loop Tiles_rat Tiles_util
