lib/core/plan.mli: Comm Lds Mapping Tile_space Tiles_loop Tiles_util Tiling
