lib/core/comm.ml: Array Format Hashtbl List Printf Set String Tiles_util Tiling Ttis
