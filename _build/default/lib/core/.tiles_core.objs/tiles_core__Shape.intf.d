lib/core/shape.mli: Tiles_loop Tiles_util Tiling
