lib/core/plan.ml: Array Buffer Comm Lds List Mapping Printf String Tile_space Tiles_loop Tiles_poly Tiles_util Tiling
