lib/core/lds.ml: Array Comm Printf Tiles_linalg Tiles_util Tiling
