lib/core/comm.mli: Format Tiles_loop Tiles_util Tiling
