(** Communication structure (§3.2).

    From the transformed dependencies [D' = H'·D] we derive at compile
    time:
    - the communication vector [CC], [cc_k = v_kk − max_l d'_kl]: a TTIS
      point is a communication point along dimension [k] iff
      [j'_k >= cc_k];
    - the LDS halo offsets: [off_k = ⌈max_l d'_kl / c_k⌉] for [k ≠ m] and
      [off_m = v_mm / c_m];
    - the tile dependence matrix [D^S] (computed exactly, by sweeping the
      TTIS); every component must be 0 or 1 — i.e. the tile must be at
      least as large as the dependencies it cuts — otherwise construction
      fails with a clear error;
    - the processor dependencies [D^m] ([D^S] projected along [m], zero
      vector dropped) with, for each [d^m], the list of tile dependencies
      that generate it (the paper's [d^S(d^m)]). *)

type t = private {
  m : int;
  d' : Tiles_util.Vec.t list;
  max_d' : int array;
  cc : int array;
  off : int array;
  ds : Tiles_util.Vec.t list;                    (** [D^S], sorted *)
  dm : (Tiles_util.Vec.t * Tiles_util.Vec.t list) list;
      (** [(d^m, d^S(d^m))], non-zero [d^m] only, sorted *)
}

val make : Tiling.t -> Tiles_loop.Dependence.t -> m:int -> t

val dm_of_ds : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** The paper's [d^m(d^S)]: project a tile dependence along [m]. *)

val slab_lo : t -> dm:Tiles_util.Vec.t -> int array
(** Lower TTIS bounds of the pack/unpack slab for processor direction
    [dm]: [dm_k·cc_k] in the non-mapping dimensions, 0 along [m]. *)

val is_comm_point : t -> Tiles_util.Vec.t -> bool
(** Some dimension crosses: [∃k, j'_k >= cc_k]. *)

val minsucc_ds : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** Among the tile dependencies generating processor direction [d^m], the
    one reaching the lexicographically minimum successor tile — used by
    the receive-side pairing rule. *)

val pp : Format.formatter -> t -> unit
