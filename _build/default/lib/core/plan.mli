(** An end-to-end parallelisation plan: everything §3 derives at compile
    time, bundled. This is the object the code generator prints and the
    runtime executes. *)

type t = private {
  nest : Tiles_loop.Nest.t;
  tiling : Tiling.t;
  tspace : Tile_space.t;
  mapping : Mapping.t;
  comm : Comm.t;
}

val make : ?m:int -> Tiles_loop.Nest.t -> Tiling.t -> t
(** Raises [Invalid_argument] if the tiling is illegal for the nest's
    dependencies, or dimensions mismatch. [?m] overrides the mapping
    dimension. *)

val dim : t -> int
val nprocs : t -> int
val mapping_dim : t -> int

val lds_shape : t -> rank:int -> Lds.shape
(** Shape of the rank's local array (chain length dependent). *)

val loc : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t * Tiles_util.Vec.t
(** Table 1: [loc j = (pid, j'')] — which processor owns iteration [j]
    and where in its LDS the result lives. Chain-relative tile index uses
    the processor's own chain start. *)

val loc_inv : t -> pid:Tiles_util.Vec.t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** Table 2: [loc_inv ~pid j'' = j ∈ J^n]. *)

val total_iterations : t -> int
(** Iterations of [J^n] (exact). *)

val comm_stats : t -> int * int
(** [(messages, cells)] the §3.2 protocol will exchange: one message per
    (tile, processor-direction) pair with a valid successor, each
    carrying its boundary-clipped slab. Computed analytically; the tests
    check it equals what the executor actually sends, and it realises the
    paper's claim that variants with identical non-mapping tiling rows
    move identical data volumes. *)

val summary : t -> string
(** Human-readable multi-line description (tile size, strides, CC, D^S,
    processor count, chain lengths…). *)
