module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module FM = Tiles_poly.Fourier_motzkin
module Vec = Tiles_util.Vec

type t = {
  tspace : Tile_space.t;
  m : int;
  pids : Vec.t array;
  chains : (int * int) array;
}

let max_trip_dim (ts : Tile_space.t) =
  let n = Array.length ts.bbox in
  let best = ref 0 in
  for k = 1 to n - 1 do
    if Tile_space.trip_count ts k > Tile_space.trip_count ts !best then
      best := k
  done;
  !best

(* The tile polyhedron with coordinate m moved last, so that the standard
   lexicographic projection chain enumerates (pid, t^S). *)
let permuted_poly (ts : Tile_space.t) m =
  let n = Polyhedron.dim ts.poly in
  let cs =
    List.map
      (fun c ->
        let coeffs = Vec.permute_to_last (Array.init n (Constr.coeff c)) m in
        Constr.make ~coeffs ~const:(Constr.const c))
      (Polyhedron.constraints ts.poly)
  in
  Polyhedron.make ~dim:n cs

let make ?m tspace =
  let n = Polyhedron.dim tspace.Tile_space.poly in
  if n < 2 then invalid_arg "Mapping.make: need at least 2 dimensions";
  let m = match m with Some m -> m | None -> max_trip_dim tspace in
  if m < 0 || m >= n then invalid_arg "Mapping.make: bad mapping dimension";
  let poly = permuted_poly tspace m in
  let proj = Polyhedron.projection poly in
  let pids = ref [] and chains = ref [] in
  let prefix = Array.make n 0 in
  let rec go k =
    if k = n - 1 then begin
      match FM.bounds proj ~var:k ~prefix with
      | None -> ()
      | Some (lo, hi) ->
        pids := Array.sub prefix 0 (n - 1) :: !pids;
        chains := (lo, hi) :: !chains
    end
    else
      match FM.bounds proj ~var:k ~prefix with
      | None -> ()
      | Some (lo, hi) ->
        for v = lo to hi do
          prefix.(k) <- v;
          go (k + 1)
        done
  in
  go 0;
  {
    tspace;
    m;
    pids = Array.of_list (List.rev !pids);
    chains = Array.of_list (List.rev !chains);
  }

let nprocs t = Array.length t.pids

let rank_of_pid t pid =
  (* pids are sorted lexicographically by construction: binary search *)
  let lo = ref 0 and hi = ref (Array.length t.pids - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Vec.compare_lex pid t.pids.(mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let pid_of_rank t rank = Vec.copy t.pids.(rank)
let chain t rank = t.chains.(rank)

let to_schedule t s = Vec.permute_to_last s t.m

let of_schedule t s =
  let n = Array.length s in
  Array.init n (fun i ->
      if i < t.m then s.(i)
      else if i = t.m then s.(n - 1)
      else s.(i - 1))

let split t s =
  let sched = to_schedule t s in
  (Array.sub sched 0 (Array.length s - 1), sched.(Array.length s - 1))

let join t ~pid ~ts =
  of_schedule t (Array.append pid [| ts |])

let valid t ~pid ~ts = Tile_space.contains t.tspace (join t ~pid ~ts)

let tiles_of_rank t rank =
  let pid = t.pids.(rank) in
  let lo, hi = t.chains.(rank) in
  List.filter_map
    (fun ts ->
      if valid t ~pid ~ts then Some (join t ~pid ~ts) else None)
    (List.init (hi - lo + 1) (fun i -> lo + i))
