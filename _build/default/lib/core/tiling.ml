module Rat = Tiles_rat.Rat
module Ratmat = Tiles_linalg.Ratmat
module Intmat = Tiles_linalg.Intmat
module Hnf = Tiles_linalg.Hnf
module Lattice = Tiles_linalg.Lattice
module Vec = Tiles_util.Vec
module Ints = Tiles_util.Ints

type t = {
  n : int;
  h : Ratmat.t;
  p : Ratmat.t;
  v : int array;
  h' : Intmat.t;
  p' : Ratmat.t;
  hnf : Intmat.t;
  hnf_u : Intmat.t;
  c : int array;
  lattice : Lattice.t;
  tile_points : int;
}

let make h =
  let n = Ratmat.rows h in
  if Ratmat.cols h <> n then invalid_arg "Tiling.make: not square";
  if Rat.sign (Ratmat.det h) = 0 then invalid_arg "Tiling.make: singular H";
  let p = Ratmat.inverse h in
  (* Each tile's local lattice is L(H') − V·s; for the paper's uniform
     per-tile machinery (one TTIS, one LDS layout, Tables 1–2) these
     cosets must all coincide with L(H'), i.e. V·s ∈ L(H') for every
     integer s — equivalently P·s ∈ Z^n, i.e. P integral. All the paper's
     example tilings satisfy this (Jacobi's even-y requirement is exactly
     it); we make the assumption explicit. *)
  if not (Ratmat.is_integral p) then
    invalid_arg
      "Tiling.make: P = H^-1 is not an integer matrix, so tile origins do \
       not fall on iteration points and the uniform TTIS/LDS machinery \
       does not apply; rescale the tiling factors";
  let v = Array.init n (Ratmat.row_denominator_lcm h) in
  let h' =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let x = Rat.mul (Rat.of_int v.(i)) h.(i).(j) in
            Rat.to_int_exn x))
  in
  let p' = Ratmat.inverse (Ratmat.of_intmat h') in
  let { Hnf.h = hnf; u = hnf_u } = Hnf.compute h' in
  let c = Array.init n (fun k -> hnf.(k).(k)) in
  Array.iteri
    (fun k ck ->
      if v.(k) mod ck <> 0 then
        invalid_arg
          (Printf.sprintf
             "Tiling.make: stride c_%d = %d does not divide v_%d = %d \
              (dense LDS addressing undefined; pick different factors)"
             k ck k v.(k)))
    c;
  let lattice = Lattice.of_basis h' in
  let tile_points =
    Array.to_list (Array.mapi (fun k vk -> vk / c.(k)) v)
    |> List.fold_left Ints.mul_exn 1
  in
  { n; h; p; v; h'; p'; hnf; hnf_u; c; lattice; tile_points }

let rectangular sizes =
  let n = List.length sizes in
  if n = 0 then invalid_arg "Tiling.rectangular: empty";
  let rows =
    List.mapi
      (fun i x ->
        if x <= 0 then invalid_arg "Tiling.rectangular: size <= 0";
        List.init n (fun j -> if i = j then Rat.make 1 x else Rat.zero))
      sizes
  in
  make (Ratmat.of_rows rows)

let of_rows rows = make (Ratmat.of_rows rows)
let dim t = t.n
let tile_size t = t.tile_points

let legal_for t deps =
  List.for_all
    (fun d ->
      Array.for_all (fun x -> Rat.sign x >= 0) (Ratmat.apply_int t.h d))
    (Tiles_loop.Dependence.vectors deps)

let tile_of t j =
  (* ⌊H·j⌋ computed integrally: ⌊h_k·j⌋ = fdiv (h'_k·j) v_k *)
  Array.init t.n (fun k -> Ints.fdiv (Vec.dot t.h'.(k) j) t.v.(k))

let local_of t ~tile j =
  let j' = Array.init t.n (fun k -> Vec.dot t.h'.(k) j - (t.v.(k) * tile.(k))) in
  assert (Array.for_all2 (fun x vk -> x >= 0 && x < vk) j' t.v);
  j'

let global_of t ~tile j' =
  let scaled = Array.init t.n (fun k -> (t.v.(k) * tile.(k)) + j'.(k)) in
  let jr = Ratmat.apply_int t.p' scaled in
  if not (Array.for_all Rat.is_integer jr) then
    invalid_arg "Tiling.global_of: j' is not on the TTIS lattice";
  Array.map Rat.to_int_exn jr

let transformed_deps t deps =
  List.map (Intmat.apply t.h') (Tiles_loop.Dependence.vectors deps)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>tiling (n=%d, tile size %d)@ H =@ %a@ H' =@ %a@ HNF(H') =@ %a@ \
     strides c = %a@]"
    t.n t.tile_points Ratmat.pp t.h Intmat.pp t.h' Intmat.pp t.hnf Vec.pp t.c
