module Vec = Tiles_util.Vec
module Ints = Tiles_util.Ints
module Lattice = Tiles_linalg.Lattice

type shape = {
  n : int;
  m : int;
  ntiles : int;
  dims : int array;
  strides : int array;
  total : int;
}

let shape (tiling : Tiling.t) (comm : Comm.t) ~ntiles =
  if ntiles <= 0 then invalid_arg "Lds.shape: ntiles";
  let n = tiling.n and m = comm.Comm.m in
  let dims =
    Array.init n (fun k ->
        let per_tile = tiling.v.(k) / tiling.c.(k) in
        if k = m then comm.Comm.off.(k) + (ntiles * per_tile)
        else comm.Comm.off.(k) + per_tile)
  in
  let strides = Array.make n 1 in
  for k = n - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  { n; m; ntiles; dims; strides; total = strides.(0) * dims.(0) }

let map (tiling : Tiling.t) (comm : Comm.t) ~t j' =
  let n = tiling.n and m = comm.Comm.m in
  Array.init n (fun k ->
      if k = m then
        Ints.fdiv ((t * tiling.v.(k)) + j'.(k)) tiling.c.(k) + comm.Comm.off.(k)
      else Ints.fdiv j'.(k) tiling.c.(k) + comm.Comm.off.(k))

let map_index shape j'' =
  let idx = ref 0 in
  for k = 0 to shape.n - 1 do
    if j''.(k) < 0 || j''.(k) >= shape.dims.(k) then
      invalid_arg
        (Printf.sprintf "Lds.map_index: coordinate %d = %d out of [0, %d)" k
           j''.(k) shape.dims.(k));
    idx := !idx + (shape.strides.(k) * j''.(k))
  done;
  !idx

let map_inv (tiling : Tiling.t) (comm : Comm.t) j'' =
  let n = tiling.n and m = comm.Comm.m in
  let off = comm.Comm.off in
  Array.iteri
    (fun k x ->
      if x < off.(k) then
        invalid_arg "Lds.map_inv: halo cell, not a computation cell")
    j'';
  let t = Ints.fdiv ((j''.(m) - off.(m)) * tiling.c.(m)) tiling.v.(m) in
  let j' = Array.make n 0 in
  for k = 0 to n - 1 do
    (* residue of coordinate k on the TTIS lattice, given outer coords *)
    let rho = Lattice.first_in_residue tiling.lattice k j' in
    if k = m then
      j'.(k) <- (tiling.c.(k) * (j''.(k) - off.(k))) - (t * tiling.v.(k)) + rho
    else j'.(k) <- (tiling.c.(k) * (j''.(k) - off.(k))) + rho
  done;
  (t, j')
