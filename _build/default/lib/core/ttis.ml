module Vec = Tiles_util.Vec
module Lattice = Tiles_linalg.Lattice

let iter (t : Tiling.t) f =
  let n = t.n in
  let j' = Array.make n 0 in
  let rec go k =
    if k = n then f j'
    else begin
      let start = Lattice.first_in_residue t.lattice k j' in
      let x = ref start in
      while !x < t.v.(k) do
        j'.(k) <- !x;
        go (k + 1);
        x := !x + t.c.(k)
      done
    end
  in
  go 0

let points t =
  let acc = ref [] in
  iter t (fun j' -> acc := Vec.copy j' :: !acc);
  List.rev !acc

let count t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

let mem (t : Tiling.t) j' =
  Array.length j' = t.n
  && Array.for_all2 (fun x vk -> x >= 0 && x < vk) j' t.v
  && Lattice.member t.lattice j'

let start_offset (t : Tiling.t) k prefix =
  Lattice.first_in_residue t.lattice k prefix

(* The paper presents loop k's start as accumulating the incremental
   offsets a_kl = h'~_kl whenever outer loop l advances by one stride.
   That literal scheme is complete only when at most one sub-diagonal
   entry per row is non-zero (true of all the paper's examples): in
   general, advancing loop l also shifts the {e lattice coordinate} at
   which each intermediate loop starts, which feeds h'~-weighted into the
   deeper offsets. The robust incremental form below therefore carries the
   lattice coordinates t_l themselves: loop k's start offset is
   (Σ_{l<k} h'~_kl·t_l) mod c_k, updated with one multiply-add per outer
   level at loop entry and one increment per stride — still division-free
   in the steady state, and identical in output to {!iter} (checked by
   randomised tests; see the note in EXPERIMENTS.md). *)
let iter_incremental (t : Tiling.t) f =
  let n = t.n in
  let j' = Array.make n 0 in
  let tl = Array.make n 0 in
  let rec go k =
    if k = n then f j'
    else begin
      let base = ref 0 in
      for l = 0 to k - 1 do
        base := !base + (t.hnf.(k).(l) * tl.(l))
      done;
      let start = Tiles_util.Ints.fmod !base t.c.(k) in
      tl.(k) <- (start - !base) / t.c.(k);
      let x = ref start in
      while !x < t.v.(k) do
        j'.(k) <- !x;
        go (k + 1);
        tl.(k) <- tl.(k) + 1;
        x := !x + t.c.(k)
      done
    end
  in
  go 0

let iter_from (t : Tiling.t) ~lo f =
  let n = t.n in
  if Array.length lo <> n then invalid_arg "Ttis.iter_from: dimension";
  let j' = Array.make n 0 in
  let rec go k =
    if k = n then f j'
    else begin
      let residue = Lattice.first_in_residue t.lattice k j' in
      (* first value >= max(0, lo.(k)) congruent to residue mod c_k *)
      let lb = max 0 lo.(k) in
      let start =
        residue + (t.c.(k) * Tiles_util.Ints.cdiv (lb - residue) t.c.(k))
      in
      let x = ref start in
      while !x < t.v.(k) do
        j'.(k) <- !x;
        go (k + 1);
        x := !x + t.c.(k)
      done
    end
  in
  go 0

let count_from t ~lo =
  let n = ref 0 in
  iter_from t ~lo (fun _ -> incr n);
  !n

let iter_bruteforce (t : Tiling.t) f =
  let n = t.n in
  let j' = Array.make n 0 in
  let rec go k =
    if k = n then begin
      if Lattice.member t.lattice j' then f j'
    end
    else
      for x = 0 to t.v.(k) - 1 do
        j'.(k) <- x;
        go (k + 1)
      done
  in
  go 0
