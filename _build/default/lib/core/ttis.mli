(** Enumeration of the Transformed Tile Iteration Space (Fig. 1–2).

    The TTIS is [L(H') ∩ [0,v_11) × … × [0,v_nn)]. Its points are swept by
    [n] nested loops where loop [k] has stride [c_k] and a starting offset
    determined by the outer loop variables through the sub-diagonal entries
    of [H'~] — precisely the paper's strides/incremental-offsets scheme.
    Dimension [k] always contains exactly [v_kk / c_k] points per outer
    prefix, so a full tile has [Π v_kk / c_k = |det P|] points. *)

val iter : Tiling.t -> (Tiles_util.Vec.t -> unit) -> unit
(** Enumerate TTIS points in lexicographic order. The callback receives a
    reused buffer; copy it to keep it. *)

val points : Tiling.t -> Tiles_util.Vec.t list
(** Materialised, copied. *)

val count : Tiling.t -> int
(** Number of points by actual enumeration (tests check it equals
    [Tiling.tile_size]). *)

val mem : Tiling.t -> Tiles_util.Vec.t -> bool
(** Is [j'] a TTIS point (on the lattice and inside the box)? *)

val start_offset : Tiling.t -> int -> Tiles_util.Vec.t -> int
(** [start_offset t k prefix] — the smallest admissible value of
    coordinate [k] given outer coordinates [prefix] (the "incremental
    offset" of Fig. 2, computed by triangular solve against [H'~]). *)

val iter_incremental : Tiling.t -> (Tiles_util.Vec.t -> unit) -> unit
(** The paper's Fig. 2 scheme, literally: loop [k] keeps a running start
    offset that is bumped by the incremental offset [a_kl = h'~_kl]
    (mod [c_k]) each time the outer loop [l] advances — no per-prefix
    solve. Tests check it enumerates exactly the same sequence as
    {!iter}. *)

val iter_from : Tiling.t -> lo:int array -> (Tiles_util.Vec.t -> unit) -> unit
(** Like {!iter}, but dimension [k] starts at the first lattice-admissible
    value [>= lo.(k)] (still ending below [v_kk]). This enumerates the
    communication slabs of §3.2: [lo.(k) = d_k·cc_k]. *)

val count_from : Tiling.t -> lo:int array -> int

val iter_bruteforce : Tiling.t -> (Tiles_util.Vec.t -> unit) -> unit
(** Reference implementation: scan the whole box and filter by lattice
    membership. Quadratically slower; used by tests to validate [iter]. *)
