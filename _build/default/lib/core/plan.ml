module Vec = Tiles_util.Vec
module Nest = Tiles_loop.Nest
module Polyhedron = Tiles_poly.Polyhedron

type t = {
  nest : Nest.t;
  tiling : Tiling.t;
  tspace : Tile_space.t;
  mapping : Mapping.t;
  comm : Comm.t;
}

let make ?m nest tiling =
  if Nest.dim nest <> Tiling.dim tiling then
    invalid_arg "Plan.make: dimension mismatch";
  if not (Tiling.legal_for tiling nest.Nest.deps) then
    invalid_arg "Plan.make: tiling violates dependencies (H·d < 0)";
  let tspace = Tile_space.make nest.Nest.space tiling in
  let mapping = Mapping.make ?m tspace in
  let comm = Comm.make tiling nest.Nest.deps ~m:mapping.Mapping.m in
  { nest; tiling; tspace; mapping; comm }

let dim t = Tiling.dim t.tiling
let nprocs t = Mapping.nprocs t.mapping
let mapping_dim t = t.mapping.Mapping.m

let lds_shape t ~rank =
  let lo, hi = Mapping.chain t.mapping rank in
  Lds.shape t.tiling t.comm ~ntiles:(hi - lo + 1)

let loc t j =
  let tile = Tiling.tile_of t.tiling j in
  let j' = Tiling.local_of t.tiling ~tile j in
  let pid, ts = Mapping.split t.mapping tile in
  match Mapping.rank_of_pid t.mapping pid with
  | None -> invalid_arg "Plan.loc: iteration outside any processor's tiles"
  | Some rank ->
    let lo, _ = Mapping.chain t.mapping rank in
    (pid, Lds.map t.tiling t.comm ~t:(ts - lo) j')

let loc_inv t ~pid j'' =
  match Mapping.rank_of_pid t.mapping pid with
  | None -> invalid_arg "Plan.loc_inv: unknown pid"
  | Some rank ->
    let lo, _ = Mapping.chain t.mapping rank in
    let trel, j' = Lds.map_inv t.tiling t.comm j'' in
    let tile = Mapping.join t.mapping ~pid ~ts:(trel + lo) in
    Tiling.global_of t.tiling ~tile j'

let total_iterations t = Polyhedron.count_points t.nest.Nest.space

let comm_stats t =
  let messages = ref 0 and cells = ref 0 in
  for rank = 0 to Mapping.nprocs t.mapping - 1 do
    let pid = Mapping.pid_of_rank t.mapping rank in
    List.iter
      (fun tile ->
        let _, ts = Mapping.split t.mapping tile in
        List.iter
          (fun (dm, dss) ->
            let succ_pid = Tiles_util.Vec.add pid dm in
            let succ_exists =
              List.exists
                (fun dS ->
                  Mapping.valid t.mapping ~pid:succ_pid
                    ~ts:(ts + dS.(t.comm.Comm.m)))
                dss
            in
            if succ_exists then begin
              incr messages;
              cells :=
                !cells
                + Tile_space.slab_points t.tspace ~tile
                    ~lo:(Comm.slab_lo t.comm ~dm)
            end)
          t.comm.Comm.dm)
      (Mapping.tiles_of_rank t.mapping rank)
  done;
  (!messages, !cells)

let summary t =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "plan for %s\n" t.nest.Nest.name;
  pf "  dimensions        : %d\n" (dim t);
  pf "  tile size         : %d points\n" (Tiling.tile_size t.tiling);
  pf "  v (TTIS extents)  : %s\n" (Vec.to_string t.tiling.Tiling.v);
  pf "  c (strides)       : %s\n" (Vec.to_string t.tiling.Tiling.c);
  pf "  mapping dimension : %d\n" (mapping_dim t);
  pf "  processors        : %d\n" (nprocs t);
  pf "  CC vector         : %s\n" (Vec.to_string t.comm.Comm.cc);
  pf "  LDS halo offsets  : %s\n" (Vec.to_string t.comm.Comm.off);
  pf "  D^S               : %s\n"
    (String.concat "; " (List.map Vec.to_string t.comm.Comm.ds));
  pf "  D^m               : %s\n"
    (String.concat "; "
       (List.map (fun (d, _) -> Vec.to_string d) t.comm.Comm.dm));
  let lens =
    Array.to_list (Array.map (fun (lo, hi) -> hi - lo + 1) t.mapping.Mapping.chains)
  in
  pf "  chain lengths     : min %d, max %d\n"
    (List.fold_left min max_int lens)
    (List.fold_left max 0 lens);
  Buffer.contents b
