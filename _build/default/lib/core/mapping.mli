(** Computation distribution (§3.1).

    All tiles along the mapping dimension [m] — by default the one with
    the maximum trip count, following the UET-UCT optimality result the
    paper cites (ref [3]) — are executed by the same processor; the other
    [n−1] tile coordinates form the processor id [pid]. Tiles of one
    processor run in increasing [j^S_m] order ([t^S] in the paper), which
    together with the lexicographic [Foracross] order realises the linear
    schedule [Π = (1, …, 1)].

    Internally tiles are handled in {e schedule order}: the [n−1] pid
    coordinates first, [t^S] last (the loop-permutation step of §3.1; legal
    because tile dependencies are lexicographically positive). *)

type t = private {
  tspace : Tile_space.t;
  m : int;  (** mapping dimension (0-indexed in [j^S]) *)
  pids : Tiles_util.Vec.t array;  (** sorted, one per processor *)
  chains : (int * int) array;     (** per processor: [t^S] range (inclusive) *)
}

val make : ?m:int -> Tile_space.t -> t
(** [?m] overrides the mapping-dimension choice (for ablations). *)

val nprocs : t -> int
val rank_of_pid : t -> Tiles_util.Vec.t -> int option
val pid_of_rank : t -> int -> Tiles_util.Vec.t
val chain : t -> int -> int * int
(** [chain t rank] — the inclusive [t^S] range of this processor. *)

val tiles_of_rank : t -> int -> Tiles_util.Vec.t list
(** Tiles of one processor in execution order (schedule coordinates
    converted back to [j^S]). *)

val to_schedule : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [j^S → (pid…, t^S)]: move coordinate [m] last. *)

val of_schedule : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** Inverse of [to_schedule]. *)

val split : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t * int
(** [j^S → (pid, t^S)]. *)

val join : t -> pid:Tiles_util.Vec.t -> ts:int -> Tiles_util.Vec.t
(** [(pid, t^S) → j^S]. *)

val valid : t -> pid:Tiles_util.Vec.t -> ts:int -> bool
(** The paper's [valid()] — is [(pid, t^S)] a candidate tile? *)

val max_trip_dim : Tile_space.t -> int
(** The default mapping dimension: argmax of trip count (ties broken by
    the smaller index). *)
