module Poly = Tiles_poly
module Polyhedron = Tiles_poly.Polyhedron
module Constr = Tiles_poly.Constr
module Vec = Tiles_util.Vec
module Rat = Tiles_rat.Rat

type t = {
  tiling : Tiling.t;
  space : Polyhedron.t;
  poly : Polyhedron.t;
  bbox : (int * int) array;
}

(* Constraints over (j^S, j) ∈ Z^{2n}:  tile-membership band
   0 <= h'_k·j − v_k·j^S_k <= v_k − 1  plus J^n lifted onto the j part. *)
let combined_system space (tiling : Tiling.t) =
  let n = tiling.n in
  let lift c =
    let coeffs = Array.make (2 * n) 0 in
    for i = 0 to n - 1 do
      coeffs.(n + i) <- Constr.coeff c i
    done;
    Constr.make ~coeffs ~const:(Constr.const c)
  in
  let band k =
    let lo = Array.make (2 * n) 0 and hi = Array.make (2 * n) 0 in
    for i = 0 to n - 1 do
      lo.(n + i) <- tiling.h'.(k).(i);
      hi.(n + i) <- -tiling.h'.(k).(i)
    done;
    lo.(k) <- -tiling.v.(k);
    hi.(k) <- tiling.v.(k);
    [ Constr.make ~coeffs:lo ~const:0;
      Constr.make ~coeffs:hi ~const:(tiling.v.(k) - 1) ]
  in
  List.map lift (Polyhedron.constraints space)
  @ List.concat (List.init n band)

let make space tiling =
  let n = Tiling.dim tiling in
  if Polyhedron.dim space <> n then invalid_arg "Tile_space.make: dimension";
  let sys = combined_system space tiling in
  let projected =
    Poly.Fourier_motzkin.eliminate_all_but sys ~dim:(2 * n)
      ~keep:(List.init n (fun i -> i))
  in
  (* restrict constraints to the first n coordinates *)
  let cs =
    List.map
      (fun c ->
        let coeffs = Array.init n (Constr.coeff c) in
        Constr.make ~coeffs ~const:(Constr.const c))
      projected
  in
  let poly = Polyhedron.make ~dim:n cs in
  let bbox = Polyhedron.bounding_box poly in
  { tiling; space; poly; bbox }

let candidates t = Polyhedron.points t.poly
let contains t s = Polyhedron.member t.poly s
let trip_count t k =
  let lo, hi = t.bbox.(k) in
  hi - lo + 1

(* Fast exact P'-application: P' = Q / den with integer Q. *)
let global_applier (tiling : Tiling.t) =
  let n = tiling.n in
  let den =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc x -> Tiles_util.Ints.lcm acc (Rat.den x))
          acc row)
      1 tiling.p'
  in
  let q =
    Array.map (Array.map (fun x -> Rat.num x * (den / Rat.den x))) tiling.p'
  in
  fun (scaled : int array) (dst : int array) ->
    for i = 0 to n - 1 do
      let acc = ref 0 in
      for j = 0 to n - 1 do
        acc := !acc + (q.(i).(j) * scaled.(j))
      done;
      assert (!acc mod den = 0);
      dst.(i) <- !acc / den
    done

let iter_slab_points t ~tile ~lo f =
  let tiling = t.tiling in
  let n = tiling.n in
  let apply = global_applier tiling in
  let scaled = Array.make n 0 in
  let j = Array.make n 0 in
  let base = Array.init n (fun k -> tiling.v.(k) * tile.(k)) in
  Ttis.iter_from tiling ~lo (fun j' ->
      for k = 0 to n - 1 do
        scaled.(k) <- base.(k) + j'.(k)
      done;
      apply scaled j;
      if Polyhedron.member t.space j then f ~local:j' ~global:j)

let iter_tile_points t ~tile f =
  iter_slab_points t ~tile ~lo:(Array.make t.tiling.Tiling.n 0) f

let is_interior t tile =
  let module Constr = Tiles_poly.Constr in
  let tiling = t.tiling in
  let n = tiling.Tiling.n in
  let vertex eps =
    (* P·(j^S + ε) with exact rationals *)
    let s = Array.init n (fun k -> Rat.of_int (tile.(k) + eps.(k))) in
    Tiles_linalg.Ratmat.apply tiling.Tiling.p s
  in
  let holds_at x c =
    let acc = ref (Rat.of_int (Constr.const c)) in
    for i = 0 to n - 1 do
      acc := Rat.add !acc (Rat.mul (Rat.of_int (Constr.coeff c i)) x.(i))
    done;
    Rat.sign !acc >= 0
  in
  let cs = Polyhedron.constraints t.space in
  let eps = Array.make n 0 in
  let rec all_vertices k =
    if k = n then
      let x = vertex eps in
      List.for_all (holds_at x) cs
    else begin
      eps.(k) <- 0;
      let a = all_vertices (k + 1) in
      eps.(k) <- 1;
      let b = a && all_vertices (k + 1) in
      eps.(k) <- 0;
      b
    end
  in
  all_vertices 0

let tile_iterations t tile =
  let n = ref 0 in
  iter_tile_points t ~tile (fun ~local:_ ~global:_ -> incr n);
  !n

(* Exact clipped-slab point counting without enumerating points.

   The space constraints pull back to affine constraints over j': for a
   space constraint a·j + b >= 0 and j = P'(V·s + j') = Q(V·s + j')/den,
   the constraint becomes (a·Q)·j' + [(a·Q)·(V·s) + b·den] >= 0 — only the
   constant depends on the tile. We join these with the box/slab bounds,
   project with Fourier–Motzkin, and enumerate only the outer n-1
   dimensions (stride-aligned); the innermost dimension contributes an
   arithmetic range count. Exact because the innermost level uses the
   original (unprojected) constraints. *)
let count_clipped t ~tile ~lo =
  let module FM = Tiles_poly.Fourier_motzkin in
  let module Lattice = Tiles_linalg.Lattice in
  let module Ints = Tiles_util.Ints in
  let tiling = t.tiling in
  let n = tiling.Tiling.n in
  let den =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc x -> Ints.lcm acc (Rat.den x)) acc row)
      1 tiling.Tiling.p'
  in
  let q =
    Array.map (Array.map (fun x -> Rat.num x * (den / Rat.den x))) tiling.Tiling.p'
  in
  let vs = Array.init n (fun k -> tiling.Tiling.v.(k) * tile.(k)) in
  let pullback c =
    let a = Array.init n (Constr.coeff c) in
    let w =
      Array.init n (fun k ->
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + (a.(i) * q.(i).(k))
          done;
          !acc)
    in
    let const = Tiles_util.Vec.dot w vs + (Constr.const c * den) in
    Constr.make ~coeffs:w ~const
  in
  let box =
    List.concat
      (List.init n (fun k ->
           [
             Constr.lower_bound_var n k (max 0 lo.(k));
             Constr.upper_bound_var n k (tiling.Tiling.v.(k) - 1);
           ]))
  in
  let sys = List.map pullback (Polyhedron.constraints t.space) @ box in
  let proj = FM.project sys ~dim:n in
  let j' = Array.make n 0 in
  let rec go k acc =
    match FM.bounds proj ~var:k ~prefix:j' with
    | None -> acc
    | Some (blo, bhi) ->
      let residue = Lattice.first_in_residue tiling.Tiling.lattice k j' in
      let c = tiling.Tiling.c.(k) in
      let start = residue + (c * Ints.cdiv (blo - residue) c) in
      if start > bhi then acc
      else if k = n - 1 then acc + (((bhi - start) / c) + 1)
      else begin
        let acc = ref acc in
        let x = ref start in
        while !x <= bhi do
          j'.(k) <- !x;
          acc := go (k + 1) !acc;
          x := !x + c
        done;
        !acc
      end
  in
  go 0 0

let slab_points t ~tile ~lo =
  if is_interior t tile then Ttis.count_from t.tiling ~lo
  else count_clipped t ~tile ~lo
