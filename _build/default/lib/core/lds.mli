(** The Local Data Space (§3.1, Fig. 3).

    Each processor stores the data of its whole tile chain in one dense
    rectangular array: dimension [k ≠ m] has [off_k + v_kk/c_k] cells
    (halo + one tile's condensed points), dimension [m] has
    [off_m + |t|·v_mm/c_m] cells (halo + all [|t|] tiles of the chain).
    Condensing divides TTIS coordinates by the strides [c_k], so every
    cell of the computation region holds exactly one lattice point and no
    space is wasted on the lattice holes of the TTIS.

    [map]/[map_inv] are the functions of Tables 1–2. The floor divisions
    are genuine floor (not truncation): reads of halo data evaluate
    [map(j' − d', t)] where [j'_k − d'_k] may be negative. *)

type shape = private {
  n : int;
  m : int;
  ntiles : int;
  dims : int array;     (** cells per dimension *)
  strides : int array;  (** row-major linear strides *)
  total : int;          (** total cells *)
}

val shape : Tiling.t -> Comm.t -> ntiles:int -> shape

val map : Tiling.t -> Comm.t -> t:int -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [map tiling comm ~t j'] is [j'' ∈ LDS]; [t] is the chain-relative tile
    index ([j^S_m − l^S_m] of the processor's chain). Accepts halo
    coordinates (lattice points shifted by [−d']), which land at
    [j''_k < off_k]. *)

val map_index : shape -> Tiles_util.Vec.t -> int
(** Row-major linearisation; bounds-checked. *)

val map_inv : Tiling.t -> Comm.t -> Tiles_util.Vec.t -> int * Tiles_util.Vec.t
(** [map_inv tiling comm j''] recovers [(t, j')] for a computation cell
    (Table 2). Requires [j''_k >= off_k] for all [k]. *)
