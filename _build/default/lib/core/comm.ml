module Vec = Tiles_util.Vec
module Ints = Tiles_util.Ints

type t = {
  m : int;
  d' : Vec.t list;
  max_d' : int array;
  cc : int array;
  off : int array;
  ds : Vec.t list;
  dm : (Vec.t * Vec.t list) list;
}

(* D^S by exact TTIS sweep: for j in the origin tile at local coordinates
   j', iteration j + d lives in tile ⌊(j' + d')/V⌋ componentwise. *)
let tile_deps (tiling : Tiling.t) d's =
  let module S = Set.Make (struct
    type t = int array

    let compare = Vec.compare_lex
  end) in
  let acc = ref S.empty in
  Ttis.iter tiling (fun j' ->
      List.iter
        (fun d' ->
          let ds =
            Array.init tiling.n (fun k ->
                Ints.fdiv (j'.(k) + d'.(k)) tiling.v.(k))
          in
          if not (Vec.is_zero ds) then acc := S.add ds !acc)
        d's);
  S.elements !acc

let make tiling deps ~m =
  let n = Tiling.dim tiling in
  if m < 0 || m >= n then invalid_arg "Comm.make: bad mapping dimension";
  if not (Tiling.legal_for tiling deps) then
    invalid_arg "Comm.make: tiling is illegal for these dependencies (H·d < 0)";
  let d' = Tiling.transformed_deps tiling deps in
  let max_d' =
    Array.init n (fun k -> List.fold_left (fun acc v -> max acc v.(k)) 0 d')
  in
  Array.iteri
    (fun k md ->
      if md > tiling.v.(k) then
        invalid_arg
          (Printf.sprintf
             "Comm.make: dependence reach %d exceeds tile extent v_%d = %d \
              (tile too small: D^S components would exceed 1)"
             md k tiling.v.(k)))
    max_d';
  let cc = Array.init n (fun k -> tiling.v.(k) - max_d'.(k)) in
  let off =
    Array.init n (fun k ->
        if k = m then tiling.v.(k) / tiling.c.(k)
        else Ints.cdiv max_d'.(k) tiling.c.(k))
  in
  let ds = tile_deps tiling d' in
  List.iter
    (fun d ->
      if Array.exists (fun x -> x < 0 || x > 1) d then
        failwith
          (Printf.sprintf "Comm.make: tile dependence %s outside {0,1}^n"
             (Vec.to_string d)))
    ds;
  let dm =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun dS ->
        let dm = Vec.remove dS m in
        if not (Vec.is_zero dm) then
          Hashtbl.replace tbl dm
            (dS :: (try Hashtbl.find tbl dm with Not_found -> [])))
      ds;
    Hashtbl.fold (fun k v acc -> (k, List.sort Vec.compare_lex v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Vec.compare_lex a b)
  in
  { m; d'; max_d'; cc; off; ds; dm }

let dm_of_ds t ds = Vec.remove ds t.m

let slab_lo t ~dm =
  let n = Array.length t.cc in
  Array.init n (fun k ->
      if k = t.m then 0
      else
        let kk = if k < t.m then k else k - 1 in
        dm.(kk) * t.cc.(k))

let is_comm_point t j' =
  let crossing = ref false in
  Array.iteri (fun k x -> if x >= t.cc.(k) then crossing := true) j';
  !crossing

let minsucc_ds t dm =
  match List.assoc_opt dm t.dm with
  | None -> invalid_arg "Comm.minsucc_ds: unknown processor direction"
  | Some [] -> assert false
  | Some (first :: rest) ->
    (* the successor tiles s + d^S share every coordinate except m, so the
       lexicographically smallest successor comes from the smallest
       m-component *)
    List.fold_left
      (fun best d -> if d.(t.m) < best.(t.m) then d else best)
      first rest

let pp ppf t =
  Format.fprintf ppf
    "@[<v>comm (m=%d)@ D' = {%s}@ CC = %a@ off = %a@ D^S = {%s}@ D^m = {%s}@]"
    t.m
    (String.concat "; " (List.map Vec.to_string t.d'))
    Vec.pp t.cc Vec.pp t.off
    (String.concat "; " (List.map Vec.to_string t.ds))
    (String.concat "; " (List.map (fun (d, _) -> Vec.to_string d) t.dm))
