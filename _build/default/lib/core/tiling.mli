(** A general parallelepiped tiling transformation (§2.2–2.3).

    Defined by the non-singular rational matrix [H] whose rows are
    perpendicular to the tile-forming hyperplane families; [P = H⁻¹] holds
    the tile side vectors as columns. From [H] we derive, exactly as in the
    paper (and its SAC'02 predecessor, ref [7]):

    - [V]: diagonal, [v_kk] = lcm of the denominators of row [k] of [H],
      so that [H' = V·H] is integral (non-unimodular in general);
    - the column Hermite Normal Form [H'~] of [H'] with strides
      [c_k = h'~_kk] and incremental offsets [a_kl = h'~_kl];
    - the TTIS lattice [L(H')].

    Construction enforces [c_k | v_kk] for every [k]: this divisibility is
    what makes the dense LDS addressing of §3.1 well defined (each LDS cell
    along dimension [k] holds exactly one lattice point, and tile-relative
    shifts commute with the floor divisions in [map]). All the paper's
    example tilings satisfy it. *)

type t = private {
  n : int;
  h : Tiles_linalg.Ratmat.t;
  p : Tiles_linalg.Ratmat.t;
  v : int array;
  h' : Tiles_linalg.Intmat.t;
  p' : Tiles_linalg.Ratmat.t;
  hnf : Tiles_linalg.Intmat.t;    (** [H'~] *)
  hnf_u : Tiles_linalg.Intmat.t;  (** unimodular witness, [H'·U = H'~] *)
  c : int array;                   (** strides, the diagonal of [H'~] *)
  lattice : Tiles_linalg.Lattice.t;
  tile_points : int;               (** lattice points per full tile, [Π v_k / Π c_k = |det P|] *)
}

val make : Tiles_linalg.Ratmat.t -> t
(** Raises [Invalid_argument] if [h] is not square, is singular, or
    violates the [c_k | v_kk] divisibility requirement. *)

val rectangular : int list -> t
(** [rectangular [x; y; …]] is [H = diag(1/x, 1/y, …)]. *)

val of_rows : Tiles_rat.Rat.t list list -> t

val dim : t -> int
val tile_size : t -> int
(** Same as [tile_points]. *)

val legal_for : t -> Tiles_loop.Dependence.t -> bool
(** [H·d >= 0] componentwise for every dependence — the classic tiling
    legality condition (atomic tiles). *)

val tile_of : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [tile_of t j] is [⌊H·j⌋ ∈ J^S]. *)

val local_of : t -> tile:Tiles_util.Vec.t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [local_of t ~tile j] is the TTIS point [j' = H'·j − V·tile]; the
    caller promises [tile = tile_of t j] (checked by assertion), so
    [0 <= j'_k < v_kk]. *)

val global_of : t -> tile:Tiles_util.Vec.t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [global_of t ~tile j'] is [j = P·j^S + P'·j' ∈ J^n]. Raises
    [Invalid_argument] if [(tile, j')] does not correspond to an integer
    point (i.e. [j'] is not on the TTIS lattice). *)

val transformed_deps : t -> Tiles_loop.Dependence.t -> Tiles_util.Vec.t list
(** [D' = H'·D]. *)

val pp : Format.formatter -> t -> unit
