module Vec = Tiles_util.Vec

type t = {
  dim : int;
  cs : Constr.t list;
  mutable proj : Fourier_motzkin.projection option;
}

let make ~dim cs =
  if dim <= 0 then invalid_arg "Polyhedron.make: dim";
  List.iter
    (fun c -> if Constr.dim c <> dim then invalid_arg "Polyhedron.make: dim")
    cs;
  { dim; cs = List.sort_uniq Constr.compare cs; proj = None }

let dim p = p.dim
let constraints p = p.cs
let add p c = make ~dim:p.dim (c :: p.cs)

let inter a b =
  if a.dim <> b.dim then invalid_arg "Polyhedron.inter";
  make ~dim:a.dim (a.cs @ b.cs)

let box ranges =
  let n = List.length ranges in
  if n = 0 then invalid_arg "Polyhedron.box: empty";
  let cs =
    List.concat
      (List.mapi
         (fun k (l, u) ->
           [ Constr.lower_bound_var n k l; Constr.upper_bound_var n k u ])
         ranges)
  in
  make ~dim:n cs

let member p x = List.for_all (fun c -> Constr.holds c x) p.cs

let is_empty_rational p =
  let rec go cs var =
    if List.exists Constr.is_contradiction cs then true
    else if var < 0 then false
    else go (Fourier_motzkin.eliminate cs ~var) (var - 1)
  in
  go p.cs (p.dim - 1)

let var_range p k =
  let cs = Fourier_motzkin.eliminate_all_but p.cs ~dim:p.dim ~keep:[ k ] in
  let lo = ref None and hi = ref None in
  List.iter
    (fun c ->
      let a = Constr.coeff c k in
      let b = Constr.const c in
      if a > 0 then begin
        let v = Tiles_util.Ints.cdiv (-b) a in
        match !lo with Some l when l >= v -> () | _ -> lo := Some v
      end
      else if a < 0 then begin
        let v = Tiles_util.Ints.fdiv b (-a) in
        match !hi with Some h when h <= v -> () | _ -> hi := Some v
      end)
    cs;
  match (!lo, !hi) with
  | Some l, Some h -> (l, h)
  | _ -> failwith "Polyhedron.bounding_box: unbounded"

let bounding_box p = Array.init p.dim (var_range p)

let projection p =
  match p.proj with
  | Some pr -> pr
  | None ->
    let pr = Fourier_motzkin.project p.cs ~dim:p.dim in
    p.proj <- Some pr;
    pr

let iter_points p f =
  let pr = projection p in
  let x = Array.make p.dim 0 in
  let rec go k =
    if k = p.dim then f x
    else
      match Fourier_motzkin.bounds pr ~var:k ~prefix:x with
      | None -> ()
      | Some (lo, hi) ->
        for v = lo to hi do
          x.(k) <- v;
          go (k + 1)
        done
  in
  go 0

let fold_points p ~init ~f =
  let acc = ref init in
  iter_points p (fun x -> acc := f !acc x);
  !acc

let count_points p = fold_points p ~init:0 ~f:(fun n _ -> n + 1)

let points p =
  List.rev (fold_points p ~init:[] ~f:(fun acc x -> Vec.copy x :: acc))

let transform_unimodular t p =
  let module Intmat = Tiles_linalg.Intmat in
  let module Ratmat = Tiles_linalg.Ratmat in
  if not (Intmat.is_unimodular t) then
    invalid_arg "Polyhedron.transform_unimodular: not unimodular";
  if Intmat.rows t <> p.dim then
    invalid_arg "Polyhedron.transform_unimodular: dimension";
  let tinv = Ratmat.to_intmat_exn (Ratmat.inverse (Ratmat.of_intmat t)) in
  let cs =
    List.map
      (fun c ->
        let coeffs =
          Array.init p.dim (fun j ->
              let acc = ref 0 in
              for i = 0 to p.dim - 1 do
                acc := !acc + (Constr.coeff c i * tinv.(i).(j))
              done;
              !acc)
        in
        Constr.make ~coeffs ~const:(Constr.const c))
      p.cs
  in
  make ~dim:p.dim cs

let pp ppf p =
  Format.fprintf ppf "@[<v>{ dim = %d;@ " p.dim;
  List.iter (fun c -> Format.fprintf ppf "  %a@ " Constr.pp c) p.cs;
  Format.fprintf ppf "}@]"
