lib/poly/cone.mli: Tiles_linalg Tiles_util
