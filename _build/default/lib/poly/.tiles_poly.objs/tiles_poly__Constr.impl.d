lib/poly/constr.ml: Array Format Stdlib Tiles_util
