lib/poly/fourier_motzkin.mli: Constr Tiles_util
