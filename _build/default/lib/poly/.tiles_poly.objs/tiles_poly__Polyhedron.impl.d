lib/poly/polyhedron.ml: Array Constr Format Fourier_motzkin List Tiles_linalg Tiles_util
