lib/poly/constr.mli: Format Tiles_util
