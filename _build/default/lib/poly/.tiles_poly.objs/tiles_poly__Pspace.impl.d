lib/poly/pspace.ml: Array Constr Fourier_motzkin Hashtbl List Polyhedron Tiles_linalg Tiles_util
