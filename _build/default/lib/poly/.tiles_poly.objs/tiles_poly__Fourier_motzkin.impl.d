lib/poly/fourier_motzkin.ml: Array Constr List Tiles_util
