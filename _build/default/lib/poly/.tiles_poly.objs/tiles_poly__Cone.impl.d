lib/poly/cone.ml: Array List Tiles_linalg Tiles_rat Tiles_util
