lib/poly/pspace.mli: Constr Fourier_motzkin Polyhedron Tiles_linalg
