lib/poly/polyhedron.mli: Constr Format Fourier_motzkin Tiles_linalg Tiles_util
