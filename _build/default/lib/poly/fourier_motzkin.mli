(** Fourier–Motzkin elimination over integer affine constraint systems.

    Elimination keeps the ambient dimension (the eliminated variable's
    coefficient becomes zero everywhere), which makes it convenient to build
    the chain of projections used to derive loop bounds: the bounds of loop
    variable [x_k] must only mention [x_0 … x_(k-1)], so they are read off
    the system with [x_(k+1) … x_(n-1)] eliminated. *)

val eliminate : Constr.t list -> var:int -> Constr.t list
(** Eliminate one variable. Tautologies are dropped; a contradiction (the
    rational relaxation is empty) is kept so emptiness remains visible. *)

val eliminate_all_but : Constr.t list -> dim:int -> keep:int list -> Constr.t list
(** Eliminate every variable not listed in [keep]. *)

type projection
(** The chain [S_(n-1) ⊇ … ⊇ S_0] where [S_k] has variables
    [> k] eliminated. *)

val project : Constr.t list -> dim:int -> projection

val bounds : projection -> var:int -> prefix:Tiles_util.Vec.t -> (int * int) option
(** [bounds p ~var:k ~prefix] — numeric [lo, hi] range for [x_k] once
    [x_0 … x_(k-1)] are fixed to [prefix]. [None] if the range is empty;
    raises [Failure] if the variable is unbounded in that direction (the
    iteration spaces we handle are compact). *)

val system : projection -> var:int -> Constr.t list
(** The projected system [S_var] (for inspection / code generation). *)
