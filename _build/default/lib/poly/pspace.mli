(** Parameterized convex iteration spaces (§2.1: bounds are affine in
    symbolic size parameters such as M and N).

    A parametric space over [dim] iteration variables and [p] parameters
    is a constraint system over [p + dim] variables with the parameters
    occupying the leading indices. Because Fourier–Motzkin projections
    keep leading variables, all the loop-bound machinery works unchanged:
    the bounds of iteration variable [k] come out affine in the
    parameters and the outer iteration variables — exactly what a
    parametric code generator needs to print.

    [instantiate] substitutes concrete parameter values and yields an
    ordinary {!Polyhedron} for execution and verification. *)

type t = private {
  params : string array;
  dim : int;
  cs : Constr.t list;  (** over [nparams + dim] variables, parameters first *)
}

val make : params:string list -> dim:int -> Constr.t list -> t
(** Raises [Invalid_argument] on dimension mismatches or duplicate
    parameter names. *)

val nparams : t -> int

val param_coeff_ge : t -> var:int -> params:(string * int) list -> const:int -> Constr.t
(** Convenience constructor: the constraint
    [x_var >= const + Σ coeff·param] expressed in this space's variable
    numbering (iteration variable [var] is index [nparams + var]). *)

val param_coeff_le : t -> var:int -> params:(string * int) list -> const:int -> Constr.t

val add : t -> Constr.t -> t

val box :
  params:string list ->
  (((string * int) list * int) * ((string * int) list * int)) list ->
  t
(** [box ~params [ ((lo_params, lo_c), (hi_params, hi_c)); … ]] — one
    entry per iteration variable: [lo_c + Σ coeff·param <= x_k <= hi_c +
    Σ coeff·param]. *)

val instantiate : t -> int list -> Polyhedron.t
(** Substitute concrete parameter values (in declaration order). *)

val transform_unimodular : Tiles_linalg.Intmat.t -> t -> t
(** Skew the {e iteration} variables (parameters are untouched). *)

val projection : t -> Fourier_motzkin.projection
(** Projection chain over the full [nparams + dim] variable list;
    parameters are never eliminated, so iteration variable [k]'s system
    is at index [nparams + k]. *)

val var_bounds_system : t -> var:int -> Constr.t list
(** Constraints bounding iteration variable [var] in terms of the
    parameters only (all other iteration variables eliminated) — used to
    compute data-space extents at runtime in generated code. *)
