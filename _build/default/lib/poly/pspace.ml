module Vec = Tiles_util.Vec

type t = { params : string array; dim : int; cs : Constr.t list }

let total t = Array.length t.params + t.dim

let make ~params ~dim cs =
  let params = Array.of_list params in
  if dim <= 0 then invalid_arg "Pspace.make: dim";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then invalid_arg "Pspace.make: duplicate parameter";
      Hashtbl.add seen p ())
    params;
  let t = { params; dim; cs = [] } in
  List.iter
    (fun c ->
      if Constr.dim c <> total t then invalid_arg "Pspace.make: constraint dim")
    cs;
  { t with cs = List.sort_uniq Constr.compare cs }

let nparams t = Array.length t.params

let param_index t name =
  let rec go i =
    if i = Array.length t.params then
      invalid_arg ("Pspace: unknown parameter " ^ name)
    else if t.params.(i) = name then i
    else go (i + 1)
  in
  go 0

let coeffs_of t ~var ~params ~sign =
  let n = total t in
  let coeffs = Array.make n 0 in
  coeffs.(nparams t + var) <- sign;
  List.iter
    (fun (name, c) -> coeffs.(param_index t name) <- -sign * c)
    params;
  coeffs

let param_coeff_ge t ~var ~params ~const =
  (* x_var - Σ coeff·param - const >= 0 *)
  Constr.make ~coeffs:(coeffs_of t ~var ~params ~sign:1) ~const:(-const)

let param_coeff_le t ~var ~params ~const =
  Constr.make ~coeffs:(coeffs_of t ~var ~params ~sign:(-1)) ~const

let add t c =
  if Constr.dim c <> total t then invalid_arg "Pspace.add: dim";
  { t with cs = List.sort_uniq Constr.compare (c :: t.cs) }

let box ~params entries =
  let dim = List.length entries in
  let t0 = make ~params ~dim [] in
  List.fold_left
    (fun t (k, ((lop, loc), (hip, hic))) ->
      let t = add t (param_coeff_ge t0 ~var:k ~params:lop ~const:loc) in
      add t (param_coeff_le t0 ~var:k ~params:hip ~const:hic))
    t0
    (List.mapi (fun k e -> (k, e)) entries)

let instantiate t values =
  if List.length values <> nparams t then
    invalid_arg "Pspace.instantiate: value count";
  let values = Array.of_list values in
  let p = nparams t in
  let cs =
    List.map
      (fun c ->
        let const = ref (Constr.const c) in
        for i = 0 to p - 1 do
          const := !const + (Constr.coeff c i * values.(i))
        done;
        let coeffs = Array.init t.dim (fun k -> Constr.coeff c (p + k)) in
        Constr.make ~coeffs ~const:!const)
      t.cs
  in
  Polyhedron.make ~dim:t.dim cs

let transform_unimodular m t =
  let module Intmat = Tiles_linalg.Intmat in
  let module Ratmat = Tiles_linalg.Ratmat in
  if not (Intmat.is_unimodular m) then
    invalid_arg "Pspace.transform_unimodular: not unimodular";
  if Intmat.rows m <> t.dim then invalid_arg "Pspace.transform_unimodular: dim";
  let p = nparams t in
  let minv = Ratmat.to_intmat_exn (Ratmat.inverse (Ratmat.of_intmat m)) in
  let cs =
    List.map
      (fun c ->
        let coeffs =
          Array.init (total t) (fun idx ->
              if idx < p then Constr.coeff c idx
              else
                let j = idx - p in
                let acc = ref 0 in
                for i = 0 to t.dim - 1 do
                  acc := !acc + (Constr.coeff c (p + i) * minv.(i).(j))
                done;
                !acc)
        in
        Constr.make ~coeffs ~const:(Constr.const c))
      t.cs
  in
  { t with cs }

let projection t = Fourier_motzkin.project t.cs ~dim:(total t)

let var_bounds_system t ~var =
  let p = nparams t in
  let keep = List.init p (fun i -> i) @ [ p + var ] in
  Fourier_motzkin.eliminate_all_but t.cs ~dim:(total t) ~keep
