module Ints = Tiles_util.Ints

let eliminate cs ~var =
  let pos = ref [] and neg = ref [] and zero = ref [] in
  List.iter
    (fun c ->
      let a = Constr.coeff c var in
      if a > 0 then pos := c :: !pos
      else if a < 0 then neg := c :: !neg
      else zero := c :: !zero)
    cs;
  let combos =
    List.concat_map
      (fun p ->
        List.map
          (fun q ->
            let a = Constr.coeff p var and b = -Constr.coeff q var in
            (* b·p + a·q cancels x_var *)
            let coeffs =
              Array.init (Constr.dim p) (fun i ->
                  (b * Constr.coeff p i) + (a * Constr.coeff q i))
            in
            let const = (b * Constr.const p) + (a * Constr.const q) in
            Constr.make ~coeffs ~const)
          !neg)
      !pos
  in
  List.sort_uniq Constr.compare
    (List.filter (fun c -> not (Constr.is_tautology c)) (!zero @ combos))

let eliminate_all_but cs ~dim ~keep =
  let rec go cs var =
    if var < 0 then cs
    else if List.mem var keep then go cs (var - 1)
    else go (eliminate cs ~var) (var - 1)
  in
  go cs (dim - 1)

type projection = { dim : int; systems : Constr.t list array }

let project cs ~dim =
  let systems = Array.make (max dim 1) cs in
  for k = dim - 2 downto 0 do
    systems.(k) <- eliminate systems.(k + 1) ~var:(k + 1)
  done;
  { dim; systems }

let system p ~var =
  if var < 0 || var >= p.dim then invalid_arg "Fourier_motzkin.system";
  p.systems.(var)

let bounds p ~var ~prefix =
  if Array.length prefix < var then invalid_arg "Fourier_motzkin.bounds";
  let lo = ref None and hi = ref None in
  let update_lo v = match !lo with Some l when l >= v -> () | _ -> lo := Some v in
  let update_hi v = match !hi with Some h when h <= v -> () | _ -> hi := Some v in
  List.iter
    (fun c ->
      let a = Constr.coeff c var in
      (* rest = sum_{j<var} coeff_j * prefix_j + const; deeper variables have
         zero coefficients in S_var by construction. *)
      let rest = ref (Constr.const c) in
      for j = 0 to var - 1 do
        rest := !rest + (Constr.coeff c j * prefix.(j))
      done;
      if a > 0 then update_lo (Ints.cdiv (- !rest) a)
      else if a < 0 then update_hi (Ints.fdiv !rest (-a))
      else if !rest < 0 then begin
        (* a constant contradiction at this prefix: empty range *)
        update_lo 1;
        update_hi 0
      end)
    p.systems.(var);
  match (!lo, !hi) with
  | Some l, Some h -> if l <= h then Some (l, h) else None
  | None, _ -> failwith "Fourier_motzkin.bounds: variable unbounded below"
  | _, None -> failwith "Fourier_motzkin.bounds: variable unbounded above"
