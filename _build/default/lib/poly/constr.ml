module Ints = Tiles_util.Ints

type t = { coeffs : int array; const : int }

let make ~coeffs ~const =
  let g = Array.fold_left (fun acc c -> Ints.gcd acc c) 0 coeffs in
  if g = 0 then { coeffs = Array.copy coeffs; const = Ints.sign const }
  else
    { coeffs = Array.map (fun c -> c / g) coeffs;
      const = Ints.fdiv const g }

let dim c = Array.length c.coeffs
let coeff c k = c.coeffs.(k)
let const c = c.const
let equal a b = a.coeffs = b.coeffs && a.const = b.const

let compare a b =
  let c = Stdlib.compare a.coeffs b.coeffs in
  if c <> 0 then c else Stdlib.compare a.const b.const

let eval c x = Tiles_util.Vec.dot c.coeffs x + c.const
let holds c x = eval c x >= 0
let all_zero c = Array.for_all (fun v -> v = 0) c.coeffs
let is_tautology c = all_zero c && c.const >= 0
let is_contradiction c = all_zero c && c.const < 0
let ge a b = make ~coeffs:a ~const:(-b)
let le a b = make ~coeffs:(Array.map (fun x -> -x) a) ~const:b
let eq_pair a b = (ge a b, le a b)

let lower_bound_var n k b =
  let a = Array.make n 0 in
  a.(k) <- 1;
  ge a b

let upper_bound_var n k b =
  let a = Array.make n 0 in
  a.(k) <- 1;
  le a b

let insert_var c k =
  { c with coeffs = Tiles_util.Vec.insert c.coeffs k 0 }

let pp ppf c =
  let first = ref true in
  Array.iteri
    (fun i a ->
      if a <> 0 then begin
        if !first then begin
          if a < 0 then Format.fprintf ppf "-";
          first := false
        end
        else Format.fprintf ppf (if a < 0 then " - " else " + ");
        let a = abs a in
        if a = 1 then Format.fprintf ppf "x%d" i
        else Format.fprintf ppf "%d*x%d" a i
      end)
    c.coeffs;
  if !first then Format.fprintf ppf "0";
  Format.fprintf ppf " >= %d" (-c.const)
