module Vec = Tiles_util.Vec
module Intmat = Tiles_linalg.Intmat
module Rat = Tiles_rat.Rat

type t = { a : Intmat.t }

let of_constraints a = { a }
let tiling_cone d = { a = Intmat.transpose d }
let dim c = Intmat.cols c.a
let contains c x = Array.for_all (fun row -> Vec.dot row x >= 0) c.a

let contains_in_interior c x =
  Array.for_all (fun row -> Vec.dot row x > 0) c.a

(* Rational row echelon; returns (rank, rref matrix). *)
let rref rows ncols =
  let m = Array.map (fun r -> Array.map Rat.of_int r) rows in
  let nrows = Array.length m in
  let pivot_row = ref 0 in
  let pivots = ref [] in
  for col = 0 to ncols - 1 do
    if !pivot_row < nrows then begin
      let piv = ref (-1) in
      for i = !pivot_row to nrows - 1 do
        if !piv = -1 && Rat.sign m.(i).(col) <> 0 then piv := i
      done;
      if !piv >= 0 then begin
        let tmp = m.(!pivot_row) in
        m.(!pivot_row) <- m.(!piv);
        m.(!piv) <- tmp;
        let p = m.(!pivot_row).(col) in
        for j = 0 to ncols - 1 do
          m.(!pivot_row).(j) <- Rat.div m.(!pivot_row).(j) p
        done;
        for i = 0 to nrows - 1 do
          if i <> !pivot_row && Rat.sign m.(i).(col) <> 0 then begin
            let f = m.(i).(col) in
            for j = 0 to ncols - 1 do
              m.(i).(j) <- Rat.sub m.(i).(j) (Rat.mul f m.(!pivot_row).(j))
            done
          end
        done;
        pivots := (!pivot_row, col) :: !pivots;
        incr pivot_row
      end
    end
  done;
  (!pivot_row, m, List.rev !pivots)

let rank rows ncols =
  let r, _, _ = rref rows ncols in
  r

(* One-dimensional kernel of the system given by [rows]; None unless the
   rank is exactly ncols - 1. Result is a primitive integer vector. *)
let kernel_vector rows ncols =
  let r, m, pivots = rref rows ncols in
  if r <> ncols - 1 then None
  else begin
    let is_pivot_col = Array.make ncols false in
    List.iter (fun (_, c) -> is_pivot_col.(c) <- true) pivots;
    let free = ref (-1) in
    for j = 0 to ncols - 1 do
      if (not is_pivot_col.(j)) && !free = -1 then free := j
    done;
    let x = Array.make ncols Rat.zero in
    x.(!free) <- Rat.one;
    List.iter (fun (row, col) -> x.(col) <- Rat.neg m.(row).(!free)) pivots;
    (* clear denominators, make primitive *)
    let l =
      Array.fold_left (fun acc v -> Tiles_util.Ints.lcm acc (Rat.den v)) 1 x
    in
    let xi =
      Array.map (fun v -> Rat.num v * (l / Rat.den v)) x
    in
    let g = Array.fold_left (fun acc v -> Tiles_util.Ints.gcd acc v) 0 xi in
    Some (Array.map (fun v -> v / g) xi)
  end

let is_pointed c = rank c.a (dim c) = dim c

(* all subsets of size k of [0 .. m-1] *)
let rec subsets k lo m =
  if k = 0 then [ [] ]
  else if lo >= m then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) m)
    @ subsets k (lo + 1) m

let extreme_rays c =
  let n = dim c in
  if not (is_pointed c) then failwith "Cone.extreme_rays: cone is not pointed";
  let m = Intmat.rows c.a in
  let candidates =
    if n = 1 then [ [| 1 |]; [| -1 |] ]
    else
      List.filter_map
        (fun idxs ->
          let rows = Array.of_list (List.map (fun i -> c.a.(i)) idxs) in
          kernel_vector rows n)
        (subsets (n - 1) 0 m)
  in
  let oriented =
    List.concat_map
      (fun r ->
        let keep_pos = contains c r and keep_neg = contains c (Vec.neg r) in
        (if keep_pos then [ r ] else [])
        @ if keep_neg then [ Vec.neg r ] else [])
      candidates
  in
  List.sort_uniq Vec.compare_lex oriented
