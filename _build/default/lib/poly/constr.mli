(** A single affine inequality over [n] integer variables:

      [coeffs · x + const >= 0]

    Coefficients are integers; constraints are normalised by the gcd of the
    coefficient vector with the constant floored, which is an exact
    tightening for integer solution sets. *)

type t = private { coeffs : int array; const : int }

val make : coeffs:int array -> const:int -> t
(** Normalises. A constraint with an all-zero coefficient vector is legal
    (it is then trivially true or false; see {!is_tautology} /
    {!is_contradiction}). *)

val dim : t -> int
val coeff : t -> int -> int
val const : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val eval : t -> Tiles_util.Vec.t -> int
(** [coeffs · x + const]. *)

val holds : t -> Tiles_util.Vec.t -> bool

val is_tautology : t -> bool
(** All coefficients zero and [const >= 0]. *)

val is_contradiction : t -> bool
(** All coefficients zero and [const < 0]. *)

val ge : int array -> int -> t
(** [ge a b] is the constraint [a·x >= b]. *)

val le : int array -> int -> t
(** [le a b] is the constraint [a·x <= b]. *)

val eq_pair : int array -> int -> t * t
(** [a·x = b] as a pair of opposing inequalities. *)

val lower_bound_var : int -> int -> int -> t
(** [lower_bound_var n k b] is [x_k >= b] in dimension [n]. *)

val upper_bound_var : int -> int -> int -> t
(** [upper_bound_var n k b] is [x_k <= b] in dimension [n]. *)

val insert_var : t -> int -> t
(** Add a fresh variable (with zero coefficient) at position [k]. *)

val pp : Format.formatter -> t -> unit
