(** Convex polyhedra as conjunctions of affine inequalities — the iteration
    spaces [J^n] of the paper (always bounded in practice). *)

type t

val make : dim:int -> Constr.t list -> t
val dim : t -> int
val constraints : t -> Constr.t list
val add : t -> Constr.t -> t
val inter : t -> t -> t

val box : (int * int) list -> t
(** [box [(l1,u1); …]] is the rectangular space [l_i <= x_i <= u_i]. *)

val member : t -> Tiles_util.Vec.t -> bool

val is_empty_rational : t -> bool
(** Emptiness of the rational relaxation (Fourier–Motzkin to the ground).
    Sound for declaring integer emptiness; may report non-empty for systems
    with rational but no integer points. *)

val bounding_box : t -> (int * int) array
(** Per-variable [lo, hi] over the rational relaxation (integer-tightened).
    Raises [Failure] if some direction is unbounded. *)

val projection : t -> Fourier_motzkin.projection
(** Cached projection chain for loop-style enumeration. *)

val iter_points : t -> (Tiles_util.Vec.t -> unit) -> unit
(** Enumerate all integer points in lexicographic order. The callback
    receives a buffer that is reused between calls; copy it if you keep
    it. *)

val fold_points : t -> init:'a -> f:('a -> Tiles_util.Vec.t -> 'a) -> 'a
val count_points : t -> int
val points : t -> Tiles_util.Vec.t list
(** Materialised (copied) points, lexicographic order. *)

val transform_unimodular : Tiles_linalg.Intmat.t -> t -> t
(** [transform_unimodular t p] is the image [{t·x | x ∈ p}] for unimodular
    [t] (used for loop skewing). Raises [Invalid_argument] if [t] is not
    unimodular. *)

val pp : Format.formatter -> t -> unit
