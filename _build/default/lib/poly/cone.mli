(** Polyhedral cones [{x | A·x >= 0}] and their extreme rays.

    The {e tiling cone} of an algorithm with dependence matrix [D] is the
    cone of row vectors [h] with [h·d >= 0] for every dependence column [d];
    the paper (after refs [4,12,15] and Hodzic–Shang [10]) selects the rows
    of the tiling matrix [H] from (the surface of) this cone. Extreme rays
    are computed by the combinatorial variant of the double-description
    method: every extreme ray of a pointed [n]-dimensional cone is the
    one-dimensional kernel of some [n-1] linearly independent active
    constraints. Fine for the small dimensions of loop nests. *)

type t

val of_constraints : Tiles_linalg.Intmat.t -> t
(** [of_constraints a] is [{x | a·x >= 0}] (each row of [a] one
    inequality). *)

val tiling_cone : Tiles_linalg.Intmat.t -> t
(** [tiling_cone d] where the columns of [d] are the dependence vectors:
    the cone [{h | hᵀ·d_j >= 0 for all j}]. *)

val dim : t -> int
val contains : t -> Tiles_util.Vec.t -> bool

val is_pointed : t -> bool
(** True iff the lineality space is trivial (no line fits in the cone). *)

val extreme_rays : t -> Tiles_util.Vec.t list
(** Primitive integer representatives of the extreme rays, deduplicated,
    in lexicographic order. Raises [Failure] if the cone is not pointed
    (the ray description would then not be finite-positive-combination
    complete). *)

val contains_in_interior : t -> Tiles_util.Vec.t -> bool
(** Strictly inside: every defining inequality holds strictly. Hodzic–Shang
    optimality says a tiling row lying in the {e interior} of the tiling
    cone is never schedule-optimal. *)
