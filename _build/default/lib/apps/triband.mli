(** A dynamic-programming band over a {e triangular} iteration space —
    not one of the paper's benchmarks, but a direct test of its §2.1
    generality claim ("general and parameterized convex spaces"): the
    space is [{(i, j) | 0 <= i < n, 0 <= j <= i}] and the body is a
    three-point recurrence

    {v W[i,j] = a·W[i-1,j] + b·W[i-1,j-1] + c·W[i,j-1] + g(i,j) v}

    with dependencies (1,0), (1,1), (0,1) — legal for rectangular and
    oblique tilings without skewing. Every stage of the pipeline (tile
    space via Fourier–Motzkin on the triangle, boundary-clipped slabs,
    LDS, codegen) must cope with tiles cut by the diagonal. *)

type t = { size : int }

val make : size:int -> t
val nest : t -> Tiles_loop.Nest.t
val kernel : t -> Tiles_runtime.Kernel.t

val rect : x:int -> y:int -> Tiles_core.Tiling.t
val oblique : x:int -> y:int -> Tiles_core.Tiling.t
(** Rows [(1/x, 0); (1/y, 1/y)] — the second hyperplane family tilted
    along the anti-diagonal (the tiling cone here is the whole first
    quadrant, so any non-negative rows are legal). *)

val variants : (string * (x:int -> y:int -> Tiles_core.Tiling.t)) list
val ckernel : Tiles_codegen.Ckernel.t
val creads : Tiles_util.Vec.t list
