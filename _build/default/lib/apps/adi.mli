(** ADI integration (§4.3, Table 3). Two coupled arrays [X] and [B]
    (kernel width 2) with a static coefficient array [A(i,j)]:

    {v
    X[t,i,j] := X[t-1,i,j] + X[t-1,i,j-1]·A[i,j]/B[t-1,i,j-1]
                           - X[t-1,i-1,j]·A[i,j]/B[t-1,i-1,j]
    B[t,i,j] := B[t-1,i,j] - A[i,j]²/B[t-1,i,j-1] - A[i,j]²/B[t-1,i-1,j]
    v}

    No skewing is needed (all dependence components non-negative). Tiles
    map along the first dimension; the paper compares the rectangular
    tiling with three non-rectangular ones, of which [nr3] (both extra
    entries, parallel to the tiling cone) is schedule-optimal:
    speedups order [nr3 > nr1 ≈ nr2 > rect]. *)

type t = {
  t_steps : int;  (** T *)
  size : int;     (** N *)
}

val make : t_steps:int -> size:int -> t

val nest : t -> Tiles_loop.Nest.t
val kernel : t -> Tiles_runtime.Kernel.t
val mapping_dim : int
(** [0]. *)

val rect : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
val nr1 : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
(** Row 1 = [(1/x, -1/x, 0)]. *)

val nr2 : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
(** Row 1 = [(1/x, 0, -1/x)]. *)

val nr3 : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
(** Row 1 = [(1/x, -1/x, -1/x)] — parallel to the tiling cone. *)

val variants : (string * (x:int -> y:int -> z:int -> Tiles_core.Tiling.t)) list
(** rect, nr1, nr2, nr3 in that order. *)

val ckernel : Tiles_codegen.Ckernel.t
val creads : Tiles_util.Vec.t list
(** ADI needs no skewing, so these are the plain read offsets. *)

val pspace : unit -> Tiles_poly.Pspace.t
(** Symbolic-extent space (parameters T and N) for the parametric code
    generator. *)
