lib/apps/experiment.ml: Adi Array Float Hashtbl Jacobi List Printf Sor Tiles_core Tiles_loop Tiles_mpisim Tiles_poly Tiles_runtime Tiles_util
