lib/apps/adi.mli: Tiles_codegen Tiles_core Tiles_loop Tiles_poly Tiles_runtime Tiles_util
