lib/apps/jacobi.mli: Tiles_codegen Tiles_core Tiles_linalg Tiles_loop Tiles_poly Tiles_runtime Tiles_util
