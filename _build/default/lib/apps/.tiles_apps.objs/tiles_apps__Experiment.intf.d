lib/apps/experiment.mli: Tiles_core Tiles_loop Tiles_mpisim Tiles_runtime
