lib/apps/jacobi.ml: Array List Tiles_codegen Tiles_core Tiles_linalg Tiles_loop Tiles_poly Tiles_rat Tiles_runtime
