lib/apps/triband.ml: Array Tiles_codegen Tiles_core Tiles_loop Tiles_poly Tiles_rat Tiles_runtime
