lib/apps/triband.mli: Tiles_codegen Tiles_core Tiles_loop Tiles_runtime Tiles_util
