(** The Jacobi 5-point relaxation (§4.2).

    {v
    FOR t=1..T: FOR i=1..I: FOR j=1..J:
      A[t,i,j] := (A[t-1,i,j] + A[t-1,i-1,j] + A[t-1,i+1,j]
                   + A[t-1,i,j-1] + A[t-1,i,j+1]) / 5
    v}

    Skewed with the paper's [T = [[1,0,0],[1,1,0],[1,0,1]]]; tiles are
    mapped along the {e first} dimension ([m = 0]); the non-rectangular
    variant changes only the first row of [H] to [(1/x, -1/(2x), 0)], so
    rows 2–3 (hence tile size, communication volume and processor count)
    match the rectangular variant. This tiling exercises the general
    non-unimodular machinery: [v_1 = 2x] and the TTIS strides are
    [(1,2,1)] with incremental offset [a_21 = 1]. *)

type t = {
  t_steps : int;  (** T *)
  size : int;     (** I = J *)
}

val make : t_steps:int -> size:int -> t

val original_nest : t -> Tiles_loop.Nest.t
val skew_matrix : Tiles_linalg.Intmat.t
val nest : t -> Tiles_loop.Nest.t
val kernel : t -> Tiles_runtime.Kernel.t
val mapping_dim : int
(** [0]. *)

val rect : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
val nonrect : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
val variants : (string * (x:int -> y:int -> z:int -> Tiles_core.Tiling.t)) list
val ckernel : Tiles_codegen.Ckernel.t
val skewed_reads : Tiles_util.Vec.t list

val pspace : unit -> Tiles_poly.Pspace.t
(** Symbolic-extent skewed space (parameters T and N). *)
