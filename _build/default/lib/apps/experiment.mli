(** Experiment configurations reproducing §4.

    For each algorithm the paper fixes the tiling factors of the processor
    dimensions so that exactly 16 MPI processes are needed, then sweeps
    the factor of the mapped dimension to vary tile size. The exact
    iteration-space lists behind three of the four points per figure are
    only available as bitmaps, so the specs here take the space as a
    parameter (defaults in the bench bracket the one size each caption
    states); the processor-grid factor is found by searching for the value
    that yields the requested process count. *)

type spec = {
  name : string;
  space_label : string;
  nest : Tiles_loop.Nest.t;
  kernel : Tiles_runtime.Kernel.t;
  m : int;  (** mapping dimension *)
  variants : (string * (int -> Tiles_core.Tiling.t)) list;
      (** variant name, and the tiling as a function of the swept factor *)
  factors : int list;  (** the tile-size sweep of the mapped dimension *)
  procs : int;  (** process count actually achieved by the grid search *)
}

type run = {
  variant : string;
  factor : int;
  nprocs : int;
  tile_size : int;
  steps : int;  (** wavefront steps of the tile space *)
  completion : float;  (** simulated parallel time, seconds *)
  speedup : float;
  messages : int;
  bytes : int;
}

val sor : ?procs:int -> ?factors:int list -> m_steps:int -> size:int -> unit -> spec
val jacobi : ?procs:int -> ?factors:int list -> t_steps:int -> size:int -> unit -> spec
val adi : ?procs:int -> ?factors:int list -> t_steps:int -> size:int -> unit -> spec

val sweep : spec -> net:Tiles_mpisim.Netmodel.t -> run list
(** Run every (factor, variant) combination on the simulated cluster in
    timing mode. *)

val run_one :
  spec -> net:Tiles_mpisim.Netmodel.t -> variant:string -> factor:int -> run

val best_by_variant : run list -> (string * run) list
(** Per variant, the run with the highest speedup (the paper's
    "maximum speedups" figures 5/7/9). *)

val improvement_pct : run list -> float
(** Average percentage speedup improvement of the best non-rectangular
    variant over the rectangular one across the swept factors (the §4.4
    aggregate). *)
