(** Gauss Successive Over-Relaxation (§4.1).

    {v
    FOR t=1..M: FOR i=1..N: FOR j=1..N:
      A[t,i,j] := w/4·(A[t,i-1,j] + A[t,i,j-1] + A[t-1,i+1,j]
                       + A[t-1,i,j+1]) + (1-w)·A[t-1,i,j]
    v}

    Dependencies contain negative components, so the nest is skewed with
    the paper's [T = [[1,0,0],[1,1,0],[2,0,1]]] before tiling. Tiles are
    mapped along the {e third} dimension ([m = 2]); the first two tiling
    rows are common to the rectangular and non-rectangular variants, so
    tile size, communication volume and processor count coincide and only
    the schedule differs — the experimental design of §4.1. *)

type t = {
  m_steps : int;  (** M *)
  size : int;     (** N *)
}

val make : m_steps:int -> size:int -> t

val original_nest : t -> Tiles_loop.Nest.t
val skew_matrix : Tiles_linalg.Intmat.t
val nest : t -> Tiles_loop.Nest.t
(** The skewed nest (ready for rectangular tiling). *)

val kernel : t -> Tiles_runtime.Kernel.t
(** Kernel over the skewed space, matching [nest]. *)

val mapping_dim : int
(** [2] — the paper maps SOR tiles along the third dimension. *)

val rect : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
(** [H_r = diag(1/x, 1/y, 1/z)]. *)

val nonrect : x:int -> y:int -> z:int -> Tiles_core.Tiling.t
(** [H_nr]: rows [(1/x,0,0); (0,1/y,0); (-1/z,0,1/z)] — the first three
    tiling-cone directions. *)

val variants : (string * (x:int -> y:int -> z:int -> Tiles_core.Tiling.t)) list
(** [("rect", rect); ("nonrect", nonrect)]. *)

val ckernel : Tiles_codegen.Ckernel.t
(** The loop body as C source, for the code generators. *)

val skewed_reads : Tiles_util.Vec.t list
(** Read offsets in skewed coordinates, in the kernel's read order. *)

val pspace : unit -> Tiles_poly.Pspace.t
(** The skewed iteration space with symbolic parameters M and N, for the
    parametric code generator; [Pspace.instantiate _ [m; n]] equals
    [(nest (make ~m_steps:m ~size:n)).space]. *)
