module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Mapping = Tiles_core.Mapping
module Plan = Tiles_core.Plan
module Schedule = Tiles_core.Schedule
module Executor = Tiles_runtime.Executor
module Kernel = Tiles_runtime.Kernel
module Sim = Tiles_mpisim.Sim

type spec = {
  name : string;
  space_label : string;
  nest : Nest.t;
  kernel : Kernel.t;
  m : int;
  variants : (string * (int -> Tiling.t)) list;
  factors : int list;
  procs : int;
}

type run = {
  variant : string;
  factor : int;
  nprocs : int;
  tile_size : int;
  steps : int;
  completion : float;
  speedup : float;
  messages : int;
  bytes : int;
}

(* Number of processes a candidate grid factor yields, or None if some
   variant cannot even be constructed with it (stride divisibility). *)
let procs_for nest m tilings =
  match
    List.map
      (fun mk ->
        let tiling = mk () in
        let ts = Tile_space.make nest.Nest.space tiling in
        Mapping.nprocs (Mapping.make ~m ts))
      tilings
  with
  | counts -> (
    match counts with
    | [] -> None
    | first :: rest -> if List.for_all (( = ) first) rest then Some first else None)
  | exception Invalid_argument _ -> None
  | exception Failure _ -> None

(* Search grid factor g around g0 for an exact process-count hit;
   otherwise the closest not exceeding the target. *)
let search_grid ~nest ~m ~target ~g0 ~build =
  let candidates =
    List.filter (fun g -> g >= 1) (List.init 16 (fun i -> g0 - 6 + i))
  in
  let scored =
    List.filter_map
      (fun g ->
        match procs_for nest m (build g) with
        | Some p -> Some (g, p)
        | None -> None)
      candidates
  in
  let exact = List.filter (fun (_, p) -> p = target) scored in
  match exact with
  | (g, p) :: _ -> (g, p)
  | [] -> (
    (* closest below target, then closest overall *)
    let below = List.filter (fun (_, p) -> p <= target) scored in
    let best lst =
      List.fold_left
        (fun acc ((_, p) as cand) ->
          match acc with
          | None -> Some cand
          | Some (_, pb) -> if abs (target - p) < abs (target - pb) then Some cand else acc)
        None lst
    in
    match best (if below = [] then scored else below) with
    | Some (g, p) -> (g, p)
    | None ->
      failwith "Experiment.search_grid: no feasible grid factor found")

let dim_width nest k =
  let bbox = Polyhedron.bounding_box nest.Nest.space in
  let lo, hi = bbox.(k) in
  hi - lo + 1

let default_factors = [ 2; 4; 6; 10; 16; 25; 40 ]

let sor ?(procs = 16) ?(factors = default_factors) ~m_steps ~size () =
  let p = Sor.make ~m_steps ~size in
  let nest = Sor.nest p in
  let kernel = Sor.kernel p in
  let m = Sor.mapping_dim in
  (* a 2 × (procs/2) processor grid: two tile blocks along t', and the
     skewed i' dimension split so the total pid count hits [procs]. A flat
     1 × procs grid also works but pipelines poorly (each tile spans the
     whole time dimension), hiding the schedule effect under fill time. *)
  let rows = if procs >= 4 then 2 else 1 in
  let x = max 1 (m_steps / rows) in
  let g0 = Tiles_util.Ints.cdiv (dim_width nest 1) (procs / rows) in
  let z0 = List.hd factors in
  let build g =
    List.map (fun (_, mk) () -> mk ~x ~y:g ~z:z0) Sor.variants
  in
  let y, achieved = search_grid ~nest ~m ~target:procs ~g0 ~build in
  {
    name = "sor";
    space_label = Printf.sprintf "M=%d N=%d" m_steps size;
    nest;
    kernel;
    m;
    variants = List.map (fun (nm, mk) -> (nm, fun z -> mk ~x ~y ~z)) Sor.variants;
    factors;
    procs = achieved;
  }

let square_grid_spec ~name ~space_label ~nest ~kernel ~m ~variants ~factors
    ~procs ~per_dim_width =
  let side = int_of_float (Float.round (sqrt (float_of_int procs))) in
  let g0 = Tiles_util.Ints.cdiv per_dim_width side in
  let x0 = List.hd factors in
  let build g = List.map (fun (_, mk) () -> mk ~x:x0 ~y:g ~z:g) variants in
  let g, achieved = search_grid ~nest ~m ~target:procs ~g0 ~build in
  {
    name;
    space_label;
    nest;
    kernel;
    m;
    variants = List.map (fun (nm, mk) -> (nm, fun x -> mk ~x ~y:g ~z:g)) variants;
    factors;
    procs = achieved;
  }

let jacobi ?(procs = 16) ?(factors = default_factors) ~t_steps ~size () =
  let p = Jacobi.make ~t_steps ~size in
  let nest = Jacobi.nest p in
  square_grid_spec ~name:"jacobi"
    ~space_label:(Printf.sprintf "T=%d I=J=%d" t_steps size)
    ~nest ~kernel:(Jacobi.kernel p) ~m:Jacobi.mapping_dim
    ~variants:Jacobi.variants ~factors ~procs
    ~per_dim_width:(dim_width nest 1)

let adi ?(procs = 16) ?(factors = default_factors) ~t_steps ~size () =
  let p = Adi.make ~t_steps ~size in
  let nest = Adi.nest p in
  square_grid_spec ~name:"adi"
    ~space_label:(Printf.sprintf "T=%d N=%d" t_steps size)
    ~nest ~kernel:(Adi.kernel p) ~m:Adi.mapping_dim ~variants:Adi.variants
    ~factors ~procs ~per_dim_width:(dim_width nest 1)

let run_one spec ~net ~variant ~factor =
  let mk =
    match List.assoc_opt variant spec.variants with
    | Some mk -> mk
    | None -> invalid_arg "Experiment.run_one: unknown variant"
  in
  let tiling = mk factor in
  let plan = Plan.make ~m:spec.m spec.nest tiling in
  let r = Executor.run ~mode:Executor.Timing ~plan ~kernel:spec.kernel ~net () in
  {
    variant;
    factor;
    nprocs = Plan.nprocs plan;
    tile_size = Tiling.tile_size tiling;
    steps = Schedule.steps plan;
    completion = r.Executor.stats.Sim.completion;
    speedup = r.Executor.speedup;
    messages = r.Executor.stats.Sim.messages;
    bytes = r.Executor.stats.Sim.bytes;
  }

let sweep spec ~net =
  List.concat_map
    (fun factor ->
      List.filter_map
        (fun (variant, _) ->
          match run_one spec ~net ~variant ~factor with
          | r -> Some r
          | exception Invalid_argument _ ->
            (* this factor is infeasible for this variant (tile too small
               for the dependencies, or stride divisibility) *)
            None)
        spec.variants)
    spec.factors

let best_by_variant runs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.variant with
      | Some best when best.speedup >= r.speedup -> ()
      | _ -> Hashtbl.replace tbl r.variant r)
    runs;
  Hashtbl.fold (fun v r acc -> (v, r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let improvement_pct runs =
  (* pair rect and the best non-rect run at each factor *)
  let factors = List.sort_uniq compare (List.map (fun r -> r.factor) runs) in
  let pcts =
    List.filter_map
      (fun f ->
        let at_f = List.filter (fun r -> r.factor = f) runs in
        let rect = List.find_opt (fun r -> r.variant = "rect") at_f in
        let non_rect =
          List.filter (fun r -> r.variant <> "rect") at_f
          |> List.fold_left
               (fun acc r ->
                 match acc with
                 | Some b when b.speedup >= r.speedup -> acc
                 | _ -> Some r)
               None
        in
        match (rect, non_rect) with
        | Some r, Some nr -> Some (100. *. (nr.speedup -. r.speedup) /. r.speedup)
        | _ -> None)
      factors
  in
  match pcts with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. pcts /. float_of_int (List.length pcts)
