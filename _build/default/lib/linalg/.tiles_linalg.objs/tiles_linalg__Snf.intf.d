lib/linalg/snf.mli: Intmat
