lib/linalg/hnf.mli: Intmat
