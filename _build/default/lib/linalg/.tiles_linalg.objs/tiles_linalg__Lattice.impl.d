lib/linalg/lattice.ml: Array Hnf Intmat Tiles_util
