lib/linalg/intmat.ml: Array Format List String Tiles_util
