lib/linalg/intmat.mli: Format Tiles_util
