lib/linalg/snf.ml: Array Intmat List Tiles_util
