lib/linalg/lattice.mli: Intmat Tiles_util
