lib/linalg/hnf.ml: Array Intmat Tiles_util
