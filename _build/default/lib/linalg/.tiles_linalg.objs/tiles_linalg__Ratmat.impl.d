lib/linalg/ratmat.ml: Array Format List String Tiles_rat Tiles_util
