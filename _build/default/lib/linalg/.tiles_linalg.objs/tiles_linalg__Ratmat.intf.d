lib/linalg/ratmat.mli: Format Intmat Tiles_rat Tiles_util
