type t = { u : Intmat.t; v : Intmat.t; s : Intmat.t; diag : int list }

let swap_rows m i1 i2 =
  let t = m.(i1) in
  m.(i1) <- m.(i2);
  m.(i2) <- t

let add_row m ~src ~dst ~factor =
  for j = 0 to Intmat.cols m - 1 do
    m.(dst).(j) <- m.(dst).(j) + (factor * m.(src).(j))
  done

let neg_row m i =
  for j = 0 to Intmat.cols m - 1 do
    m.(i).(j) <- -m.(i).(j)
  done

(* Find the position (i, j) with i, j >= k of the entry of least non-zero
   magnitude, or None if the trailing block is all zero. *)
let find_pivot a n k =
  let best = ref None in
  for i = k to n - 1 do
    for j = k to n - 1 do
      if a.(i).(j) <> 0 then
        match !best with
        | Some (_, _, m) when abs a.(i).(j) >= m -> ()
        | _ -> best := Some (i, j, abs a.(i).(j))
    done
  done;
  !best

let compute a0 =
  if not (Intmat.is_square a0) then invalid_arg "Snf.compute: not square";
  let n = Intmat.rows a0 in
  let a = Intmat.copy a0 in
  let u = Intmat.identity n in
  let v = Intmat.identity n in
  let rec reduce k =
    if k >= n then ()
    else
      match find_pivot a n k with
      | None -> ()
      | Some (pi, pj, _) ->
        if pi <> k then begin
          swap_rows a pi k;
          swap_rows u pi k
        end;
        if pj <> k then begin
          Intmat.swap_cols a k pj;
          Intmat.swap_cols v k pj
        end;
        (* clear row k and column k *)
        let dirty = ref false in
        for i = k + 1 to n - 1 do
          if a.(i).(k) <> 0 then begin
            let q = Tiles_util.Ints.fdiv a.(i).(k) a.(k).(k) in
            add_row a ~src:k ~dst:i ~factor:(-q);
            add_row u ~src:k ~dst:i ~factor:(-q);
            if a.(i).(k) <> 0 then dirty := true
          end
        done;
        for j = k + 1 to n - 1 do
          if a.(k).(j) <> 0 then begin
            let q = Tiles_util.Ints.fdiv a.(k).(j) a.(k).(k) in
            Intmat.add_col a ~src:k ~dst:j ~factor:(-q);
            Intmat.add_col v ~src:k ~dst:j ~factor:(-q);
            if a.(k).(j) <> 0 then dirty := true
          end
        done;
        if !dirty then reduce k
        else begin
          (* enforce divisibility of the trailing block by a.(k).(k) *)
          let bad = ref None in
          for i = k + 1 to n - 1 do
            for j = k + 1 to n - 1 do
              if !bad = None && a.(i).(j) mod a.(k).(k) <> 0 then
                bad := Some i
            done
          done;
          match !bad with
          | Some i ->
            (* fold the offending row into row k and restart this step *)
            add_row a ~src:i ~dst:k ~factor:1;
            add_row u ~src:i ~dst:k ~factor:1;
            reduce k
          | None ->
            if a.(k).(k) < 0 then begin
              neg_row a k;
              neg_row u k
            end;
            reduce (k + 1)
        end
  in
  reduce 0;
  let diag = List.init n (fun i -> a.(i).(i)) in
  { u; v; s = a; diag }
