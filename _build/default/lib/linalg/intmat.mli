(** Dense integer matrices, stored row-major ([m.(i).(j)] is row [i],
    column [j]). Dimensions are validated on every binary operation. *)

type t = int array array

val make : rows:int -> cols:int -> int -> t
val of_rows : int list list -> t
val of_cols : int list list -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val is_square : t -> bool
val copy : t -> t
val equal : t -> t -> bool

val row : t -> int -> Tiles_util.Vec.t
val col : t -> int -> Tiles_util.Vec.t
val transpose : t -> t
val mul : t -> t -> t
val apply : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [apply m v] is the matrix-vector product [m · v]. *)

val add : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val det : t -> int
(** Determinant by the Bareiss fraction-free algorithm (exact, no rounding);
    square matrices only. *)

val is_unimodular : t -> bool
(** True iff square with determinant [±1]. *)

val is_lower_triangular : t -> bool

val swap_cols : t -> int -> int -> unit
val add_col : t -> src:int -> dst:int -> factor:int -> unit
(** [add_col m ~src ~dst ~factor] performs the column operation
    [col dst <- col dst + factor * col src] in place. *)

val neg_col : t -> int -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
