type t = int array array

let make ~rows ~cols x =
  if rows <= 0 || cols <= 0 then invalid_arg "Intmat.make";
  Array.init rows (fun _ -> Array.make cols x)

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Intmat.of_rows: empty"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 || List.exists (fun r -> List.length r <> cols) rows then
      invalid_arg "Intmat.of_rows: ragged rows";
    Array.of_list (List.map Array.of_list rows)

let rows m = Array.length m
let cols m = Array.length m.(0)

let of_cols columns =
  let m = of_rows columns in
  Array.init (cols m) (fun j -> Array.init (rows m) (fun i -> m.(i).(j)))

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

let is_square m = rows m = cols m
let copy m = Array.map Array.copy m
let equal (a : t) (b : t) = a = b
let row m i = Array.copy m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))

let transpose m =
  Array.init (cols m) (fun j -> Array.init (rows m) (fun i -> m.(i).(j)))

let mul a b =
  if cols a <> rows b then invalid_arg "Intmat.mul: dimension mismatch";
  Array.init (rows a) (fun i ->
      Array.init (cols b) (fun j ->
          let acc = ref 0 in
          for k = 0 to cols a - 1 do
            acc := !acc + (a.(i).(k) * b.(k).(j))
          done;
          !acc))

let apply m v =
  if cols m <> Array.length v then invalid_arg "Intmat.apply";
  Array.init (rows m) (fun i -> Tiles_util.Vec.dot m.(i) v)

let add a b =
  if rows a <> rows b || cols a <> cols b then invalid_arg "Intmat.add";
  Array.init (rows a) (fun i -> Array.init (cols a) (fun j -> a.(i).(j) + b.(i).(j)))

let neg m = Array.map (Array.map (fun x -> -x)) m
let scale s m = Array.map (Array.map (fun x -> s * x)) m

(* Bareiss fraction-free elimination: all intermediate divisions are exact,
   so the computation stays in the integers. *)
let det m =
  if not (is_square m) then invalid_arg "Intmat.det: not square";
  let n = rows m in
  let a = copy m in
  let sign = ref 1 in
  let prev = ref 1 in
  let result = ref None in
  (try
     for k = 0 to n - 2 do
       if a.(k).(k) = 0 then begin
         (* find a pivot row below *)
         let piv = ref (-1) in
         for i = k + 1 to n - 1 do
           if !piv = -1 && a.(i).(k) <> 0 then piv := i
         done;
         if !piv = -1 then begin
           result := Some 0;
           raise Exit
         end;
         let t = a.(k) in
         a.(k) <- a.(!piv);
         a.(!piv) <- t;
         sign := - !sign
       end;
       for i = k + 1 to n - 1 do
         for j = k + 1 to n - 1 do
           a.(i).(j) <- ((a.(i).(j) * a.(k).(k)) - (a.(i).(k) * a.(k).(j))) / !prev
         done;
         a.(i).(k) <- 0
       done;
       prev := a.(k).(k)
     done
   with Exit -> ());
  match !result with Some d -> d | None -> !sign * a.(n - 1).(n - 1)

let is_unimodular m = is_square m && abs (det m) = 1

let is_lower_triangular m =
  let ok = ref true in
  for i = 0 to rows m - 1 do
    for j = i + 1 to cols m - 1 do
      if m.(i).(j) <> 0 then ok := false
    done
  done;
  !ok

let swap_cols m j1 j2 =
  Array.iter
    (fun r ->
      let t = r.(j1) in
      r.(j1) <- r.(j2);
      r.(j2) <- t)
    m

let add_col m ~src ~dst ~factor =
  Array.iter (fun r -> r.(dst) <- r.(dst) + (factor * r.(src))) m

let neg_col m j = Array.iter (fun r -> r.(j) <- -r.(j)) m

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%s]"
        (String.concat " " (Array.to_list (Array.map string_of_int r))))
    m;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
