type t = { h : Intmat.t; u : Intmat.t }

(* Reduce row [i] of [a] to HNF shape using column operations mirrored on
   [u]. Classic gcd-style elimination: repeatedly pick the column (among
   i..n-1) whose row-i entry has the least non-zero magnitude, move it to
   position i, and reduce the others modulo it. *)
let eliminate_row a u n i =
  let find_min_col () =
    let best = ref (-1) in
    for j = i to n - 1 do
      if a.(i).(j) <> 0
         && (!best = -1 || abs a.(i).(j) < abs a.(i).(!best))
      then best := j
    done;
    !best
  in
  let rec loop () =
    let piv = find_min_col () in
    if piv = -1 then invalid_arg "Hnf.compute: singular matrix";
    if piv <> i then begin
      Intmat.swap_cols a i piv;
      Intmat.swap_cols u i piv
    end;
    let remaining = ref false in
    for j = i + 1 to n - 1 do
      if a.(i).(j) <> 0 then begin
        let q = Tiles_util.Ints.fdiv a.(i).(j) a.(i).(i) in
        Intmat.add_col a ~src:i ~dst:j ~factor:(-q);
        Intmat.add_col u ~src:i ~dst:j ~factor:(-q);
        if a.(i).(j) <> 0 then remaining := true
      end
    done;
    if !remaining then loop ()
  in
  loop ();
  if a.(i).(i) < 0 then begin
    Intmat.neg_col a i;
    Intmat.neg_col u i
  end;
  (* normalise the entries left of the diagonal into [0, a.(i).(i)) *)
  for l = 0 to i - 1 do
    let q = Tiles_util.Ints.fdiv a.(i).(l) a.(i).(i) in
    if q <> 0 then begin
      Intmat.add_col a ~src:i ~dst:l ~factor:(-q);
      Intmat.add_col u ~src:i ~dst:l ~factor:(-q)
    end
  done

let compute a0 =
  if not (Intmat.is_square a0) then invalid_arg "Hnf.compute: not square";
  let n = Intmat.rows a0 in
  let a = Intmat.copy a0 in
  let u = Intmat.identity n in
  for i = 0 to n - 1 do
    eliminate_row a u n i
  done;
  { h = a; u }

let is_hnf h =
  Intmat.is_square h
  && Intmat.is_lower_triangular h
  &&
  let n = Intmat.rows h in
  let ok = ref true in
  for i = 0 to n - 1 do
    if h.(i).(i) <= 0 then ok := false;
    for l = 0 to i - 1 do
      if h.(i).(l) < 0 || h.(i).(l) >= h.(i).(i) then ok := false
    done
  done;
  !ok
