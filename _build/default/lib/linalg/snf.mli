(** Smith Normal Form of an integer square matrix.

    [compute a] returns unimodular [u], [v] and diagonal [s] with
    [u · a · v = s] and each diagonal entry dividing the next. Used for
    lattice index computations (the number of TTIS lattice points in the
    [v_11 × … × v_nn] box equals the tile size [|det P|]) and as an
    independent cross-check of the HNF code in tests. *)

type t = {
  u : Intmat.t;
  v : Intmat.t;
  s : Intmat.t;
  diag : int list;  (** non-negative elementary divisors, in order *)
}

val compute : Intmat.t -> t
(** Works for any square integer matrix, including singular ones. *)
