(** Dense matrices over exact rationals. Tiling transformations [H] have
    rational rows (e.g. [1/x]); their inverses [P] carry the tile side
    vectors. Everything here is exact. *)

type t = Tiles_rat.Rat.t array array

val make : rows:int -> cols:int -> Tiles_rat.Rat.t -> t
val of_rows : Tiles_rat.Rat.t list list -> t
val of_int_rows : int list list -> t
val of_intmat : Intmat.t -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val equal : t -> t -> bool

val mul : t -> t -> t
val apply : t -> Tiles_rat.Rat.t array -> Tiles_rat.Rat.t array
val apply_int : t -> Tiles_util.Vec.t -> Tiles_rat.Rat.t array
(** Apply to an integer vector. *)

val transpose : t -> t
val scale : Tiles_rat.Rat.t -> t -> t

val det : t -> Tiles_rat.Rat.t
val inverse : t -> t
(** Gauss–Jordan with exact pivoting. Raises [Failure] on a singular
    matrix. *)

val to_intmat_exn : t -> Intmat.t
(** Raises [Invalid_argument] if any entry is non-integral. *)

val is_integral : t -> bool

val row_denominator_lcm : t -> int -> int
(** Least common multiple of the denominators of row [i]; this is the
    [v_kk] scaling factor of the paper's diagonal matrix [V]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
