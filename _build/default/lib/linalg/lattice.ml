module Ints = Tiles_util.Ints

type t = { basis : Intmat.t; index : int }

let of_basis g =
  if not (Intmat.is_square g) then invalid_arg "Lattice.of_basis: not square";
  let { Hnf.h; _ } = Hnf.compute g in
  let index = Intmat.det h in
  assert (index > 0);
  { basis = h; index }

let dim l = Intmat.rows l.basis
let hnf_basis l = Intmat.copy l.basis
let index l = l.index

(* Forward triangular solve of G·t = v over the integers. *)
let coords l v =
  let n = dim l in
  if Array.length v <> n then invalid_arg "Lattice.coords: dimension";
  let g = l.basis in
  let t = Array.make n 0 in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then begin
      let acc = ref v.(i) in
      for j = 0 to i - 1 do
        acc := !acc - (g.(i).(j) * t.(j))
      done;
      if !acc mod g.(i).(i) <> 0 then ok := false
      else t.(i) <- !acc / g.(i).(i)
    end
  done;
  if !ok then Some t else None

let member l v = coords l v <> None
let point_of_coords l t = Intmat.apply l.basis t

let first_in_residue l k prefix =
  let n = dim l in
  if k < 0 || k >= n || Array.length prefix < k then
    invalid_arg "Lattice.first_in_residue";
  let g = l.basis in
  (* recover t_0..t_{k-1} from the prefix, then the k-th coordinate of any
     lattice point extending the prefix is congruent to
     sum_{j<k} g_kj t_j  (mod g_kk). *)
  let t = Array.make k 0 in
  for i = 0 to k - 1 do
    let acc = ref prefix.(i) in
    for j = 0 to i - 1 do
      acc := !acc - (g.(i).(j) * t.(j))
    done;
    if !acc mod g.(i).(i) <> 0 then
      invalid_arg "Lattice.first_in_residue: prefix not on lattice";
    t.(i) <- !acc / g.(i).(i)
  done;
  let base = ref 0 in
  for j = 0 to k - 1 do
    base := !base + (g.(k).(j) * t.(j))
  done;
  Ints.fmod !base g.(k).(k)
