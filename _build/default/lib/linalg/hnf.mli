(** Column-style Hermite Normal Form.

    For a non-singular square integer matrix [a], [compute a] returns the
    unique matrix [h] and a unimodular witness [u] such that:
    - [a · u = h],
    - [h] is lower triangular with positive diagonal,
    - every off-diagonal entry satisfies [0 <= h.(i).(l) < h.(i).(i)] for
      [l < i].

    This is the form the paper calls [H'~]: its diagonal gives the loop
    strides [c_k = h'~_kk] and its sub-diagonal entries the incremental
    offsets [a_kl = h'~_kl] used to enumerate the TTIS lattice (Fig. 2). *)

type t = {
  h : Intmat.t;  (** the Hermite normal form *)
  u : Intmat.t;  (** unimodular column-operation witness, [a · u = h] *)
}

val compute : Intmat.t -> t
(** Raises [Invalid_argument] if the matrix is not square or is singular. *)

val is_hnf : Intmat.t -> bool
(** Check the three defining properties above. *)
