(** Integer lattices spanned by the columns of an integer matrix.

    The TTIS of the paper is exactly [L(H') ∩ box(0, V·1)]; all its
    addressing arithmetic reduces to membership / coordinate queries against
    the lower-triangular HNF basis. *)

type t
(** A full-rank lattice in Z^n with a lower-triangular (HNF) basis. *)

val of_basis : Intmat.t -> t
(** [of_basis g] builds the lattice spanned by the columns of the
    non-singular square matrix [g] (any basis; it is HNF-reduced
    internally). *)

val dim : t -> int
val hnf_basis : t -> Intmat.t
(** The canonical lower-triangular basis. *)

val index : t -> int
(** The index [Z^n : L], i.e. [det] of the basis (positive). *)

val coords : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t option
(** [coords l v] solves [G·t = v] for integer [t] against the HNF basis
    [G]; [None] if [v] is not a lattice point. *)

val member : t -> Tiles_util.Vec.t -> bool

val point_of_coords : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t
(** [point_of_coords l t] is [G·t]. *)

val first_in_residue : t -> int -> Tiles_util.Vec.t -> int
(** [first_in_residue l k prefix] — given the first [k] coordinates
    [prefix] (all lattice-consistent), return the smallest non-negative
    value admissible for coordinate [k]; subsequent admissible values
    differ by multiples of the stride [g_kk]. This is the "incremental
    offset" enumeration of the paper's Fig. 2 expressed as a triangular
    solve. *)
