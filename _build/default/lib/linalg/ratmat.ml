module Rat = Tiles_rat.Rat

type t = Rat.t array array

let make ~rows ~cols x =
  if rows <= 0 || cols <= 0 then invalid_arg "Ratmat.make";
  Array.init rows (fun _ -> Array.make cols x)

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Ratmat.of_rows: empty"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 || List.exists (fun r -> List.length r <> cols) rows then
      invalid_arg "Ratmat.of_rows: ragged rows";
    Array.of_list (List.map Array.of_list rows)

let of_int_rows rows = of_rows (List.map (List.map Rat.of_int) rows)
let of_intmat m = Array.map (Array.map Rat.of_int) m
let rows m = Array.length m
let cols m = Array.length m.(0)

let identity n =
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then Rat.one else Rat.zero))

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (fun ra rb -> Array.for_all2 Rat.equal ra rb) a b

let mul a b =
  if cols a <> rows b then invalid_arg "Ratmat.mul: dimension mismatch";
  Array.init (rows a) (fun i ->
      Array.init (cols b) (fun j ->
          let acc = ref Rat.zero in
          for k = 0 to cols a - 1 do
            acc := Rat.add !acc (Rat.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let apply m v =
  if cols m <> Array.length v then invalid_arg "Ratmat.apply";
  Array.init (rows m) (fun i ->
      let acc = ref Rat.zero in
      for k = 0 to cols m - 1 do
        acc := Rat.add !acc (Rat.mul m.(i).(k) v.(k))
      done;
      !acc)

let apply_int m v = apply m (Array.map Rat.of_int v)

let transpose m =
  Array.init (cols m) (fun j -> Array.init (rows m) (fun i -> m.(i).(j)))

let scale s m = Array.map (Array.map (Rat.mul s)) m

let with_elimination m k =
  (* Gauss-Jordan on [m | extra]; returns (det, inverse option). [k] chooses
     whether to build the inverse. *)
  let n = rows m in
  if n <> cols m then invalid_arg "Ratmat: not square";
  let a = Array.map Array.copy m in
  let inv = if k then identity n else [||] in
  let det = ref Rat.one in
  (try
     for c = 0 to n - 1 do
       (* pivot search *)
       let piv = ref (-1) in
       for i = c to n - 1 do
         if !piv = -1 && Rat.sign a.(i).(c) <> 0 then piv := i
       done;
       if !piv = -1 then begin
         det := Rat.zero;
         raise Exit
       end;
       if !piv <> c then begin
         let t = a.(c) in
         a.(c) <- a.(!piv);
         a.(!piv) <- t;
         if k then begin
           let t = inv.(c) in
           inv.(c) <- inv.(!piv);
           inv.(!piv) <- t
         end;
         det := Rat.neg !det
       end;
       let p = a.(c).(c) in
       det := Rat.mul !det p;
       let scale_row r =
         for j = 0 to n - 1 do
           r.(j) <- Rat.div r.(j) p
         done
       in
       scale_row a.(c);
       if k then scale_row inv.(c);
       for i = 0 to n - 1 do
         if i <> c && Rat.sign a.(i).(c) <> 0 then begin
           let f = a.(i).(c) in
           for j = 0 to n - 1 do
             a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(c).(j))
           done;
           if k then
             for j = 0 to n - 1 do
               inv.(i).(j) <- Rat.sub inv.(i).(j) (Rat.mul f inv.(c).(j))
             done
         end
       done
     done
   with Exit -> ());
  (!det, if k && Rat.sign !det <> 0 then Some inv else None)

let det m = fst (with_elimination m false)

let inverse m =
  match with_elimination m true with
  | _, Some inv -> inv
  | _, None -> failwith "Ratmat.inverse: singular matrix"

let is_integral m = Array.for_all (Array.for_all Rat.is_integer) m

let to_intmat_exn m =
  if not (is_integral m) then invalid_arg "Ratmat.to_intmat_exn";
  Array.map (Array.map Rat.to_int_exn) m

let row_denominator_lcm m i =
  Array.fold_left (fun acc x -> Tiles_util.Ints.lcm acc (Rat.den x)) 1 m.(i)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%s]"
        (String.concat " " (Array.to_list (Array.map Rat.to_string r))))
    m;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
