type t = {
  name : string;
  width : int;
  nreads : int;
  body : string list;
  boundary : string list;
}

let make ~name ?(width = 1) ~nreads ~body ~boundary () =
  if width <= 0 || nreads <= 0 then invalid_arg "Ckernel.make";
  { name; width; nreads; body; boundary }
