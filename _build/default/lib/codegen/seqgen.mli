(** Sequential tiled code generation (§2.3, after ref [7]).

    Emits a standalone C program that executes the kernel over the tiled
    iteration space as a [2n]-deep loop nest: [n] outer loops over tile
    coordinates with Fourier–Motzkin bounds, and [n] inner loops over the
    TTIS with strides [c_k] and lattice start offsets. Boundary tiles are
    handled by an [in_space] guard (the paper's "corrected bounds").

    The program prints [points <count>] and [checksum <sum>] so its
    output can be validated against the OCaml reference executor. *)

val generate :
  plan:Tiles_core.Plan.t ->
  kernel:Ckernel.t ->
  reads:Tiles_util.Vec.t list ->
  ?skew:Tiles_linalg.Intmat.t ->
  unit ->
  string
(** [reads] are the kernel's read offsets in {e nest (skewed) coordinates}
    and in the order the C body's [RD(i, _)] macros index them. [skew] is
    the skewing matrix that was applied to the nest (identity when
    absent); the kernel's C body addresses original coordinates. *)
