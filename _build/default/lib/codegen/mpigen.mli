(** Data-parallel MPI code generation (§3).

    Emits a complete SPMD C program implementing the paper's per-tile
    protocol: for every tile of the rank's chain, RECEIVE from
    predecessor tiles (minimum-successor pairing rule), sweep the TTIS
    computing the kernel into the rank's LDS, then SEND one aggregated
    message per processor direction. All compile-time artifacts — the
    processor table, chain bounds, tile-space constraints for [valid()],
    the communication vector and halo offsets, [D^S]/[D^m] and the slab
    bounds — are baked in as static tables, exactly what the paper's tool
    precomputed.

    The program runs under any MPI with [NP] ranks (the vendored
    fork-based [mpistub] works for single-machine testing) and prints
    [points] and [checksum] from rank 0 via [MPI_Reduce], so its output
    is directly comparable with the OCaml executors. *)

val generate :
  plan:Tiles_core.Plan.t ->
  kernel:Ckernel.t ->
  reads:Tiles_util.Vec.t list ->
  ?skew:Tiles_linalg.Intmat.t ->
  unit ->
  string
