module Plan = Tiles_core.Plan
module Tiling = Tiles_core.Tiling
module Tile_space = Tiles_core.Tile_space
module Polyhedron = Tiles_poly.Polyhedron
module FM = Tiles_poly.Fourier_motzkin
module Intmat = Tiles_linalg.Intmat
open C_ast

let generate ~plan ~kernel ~reads ?skew () =
  let tiling = plan.Plan.tiling in
  let n = Tiling.dim tiling in
  let skew = match skew with Some s -> s | None -> Intmat.identity n in
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let tpoly = plan.Plan.tspace.Tile_space.poly in
  let proj = Polyhedron.projection tpoly in
  let sname k = Printf.sprintf "s[%d]" k in
  if List.length reads <> kernel.Ckernel.nreads then
    invalid_arg "Seqgen.generate: reads count differs from kernel.nreads";
  let prelude =
    Emit_common.tables ~plan ~kernel ~skew ~reads
    @ Emit_common.bbox_tables space
    @ [
        "static double *DATA;";
        {|static double rd_seq(const int *j, int r, int f) {
  int src[NDIM], k;
  for (k = 0; k < NDIM; k++) src[k] = j[k] - D[r][k];
  return in_space(src) ? DATA[gidx(src) * W + f] : boundary(src, f);
}|};
        "#define RD(i, f) rd_seq(j, (i), (f))";
        "#define WR(f) out[(f)]";
        "#define J(k) jo[(k)]";
      ]
  in
  (* innermost body: reconstruct j, guard, run the kernel, store *)
  let body_store =
    List.init kernel.Ckernel.width (fun f ->
        Assign
          (Idx ("DATA", [ Add (Mul (Call ("gidx", [ Var "j" ]), Int kernel.Ckernel.width), Int f) ]),
           Idx ("out", [ Int f ])))
  in
  let kernel_body = List.map (fun l -> RawStmt l) kernel.Ckernel.body in
  let innermost =
    [
      Expr (Call ("global_of", [ Var "s"; Var "jp"; Var "j" ]));
      If
        ( Call ("in_space", [ Var "j" ]),
          [ Expr (Call ("orig", [ Var "j"; Var "jo" ])); Comment "loop body" ]
          @ kernel_body @ body_store
          @ [ RawStmt "npoints++;" ],
          [] );
    ]
  in
  (* n inner TTIS loops: stride c_k, start offset from the HNF lattice *)
  let rec inner k body =
    if k < 0 then body
    else
      inner (k - 1)
        [
          For
            {
              var = Printf.sprintf "jp[%d]" k;
              lo = Call ("ttis_start", [ Int k; Var "jp" ]);
              hi = Int (tiling.Tiling.v.(k) - 1);
              step = Int tiling.Tiling.c.(k);
              body;
            };
        ]
  in
  (* n outer tile loops with Fourier–Motzkin bounds *)
  let rec outer k body =
    if k < 0 then body
    else
      let cs = FM.system proj ~var:k in
      outer (k - 1)
        [
          For
            {
              var = sname k;
              lo = Bounds.lower cs ~var:k ~name:sname;
              hi = Bounds.upper cs ~var:k ~name:sname;
              step = Int 1;
              body;
            };
        ]
  in
  let checksum_loops =
    let rec go k body =
      if k < 0 then body
      else
        go (k - 1)
          [
            For
              {
                var = Printf.sprintf "jj[%d]" k;
                lo = Raw (Printf.sprintf "GLO[%d]" k);
                hi = Raw (Printf.sprintf "GLO[%d] + GDIMS[%d] - 1" k k);
                step = Int 1;
                body;
              };
          ]
    in
    go (n - 1)
      [
        If
          ( Call ("in_space", [ Var "jj" ]),
            [
              RawStmt
                "{ int f; for (f = 0; f < W; f++) sum += DATA[gidx(jj) * W + f]; }";
            ],
            [] );
      ]
  in
  let main =
    {
      ret = "int";
      name = "main";
      params = [];
      body =
        [
          Decl ("int", "s[NDIM]", None);
          Decl ("int", "jp[NDIM]", None);
          Decl ("int", "j[NDIM]", None);
          Decl ("int", "jo[NDIM]", None);
          Decl ("int", "jj[NDIM]", None);
          Decl ("double", "out[W]", None);
          Decl ("long", "npoints", Some (Int 0));
          Decl ("double", "sum", Some (Flt 0.));
          RawStmt "DATA = (double *)malloc((size_t)GTOT * W * sizeof(double));";
          Comment "tile loops (Fourier-Motzkin bounds), then TTIS loops";
        ]
        @ outer (n - 1) (inner (n - 1) innermost)
        @ [ Comment "verification output" ]
        @ checksum_loops
        @ [
            RawStmt "printf(\"points %ld\\n\", npoints);";
            RawStmt "printf(\"checksum %.10e\\n\", sum);";
            RawStmt "free(DATA);";
            Return (Some (Int 0));
          ];
    }
  in
  program ~includes:[ "stdio.h"; "stdlib.h"; "math.h" ] ~prelude [ main ]
