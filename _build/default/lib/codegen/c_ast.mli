(** A small C abstract syntax tree — just enough to print the tiled
    sequential and SPMD/MPI programs the framework generates. The printer
    produces standalone C99. *)

type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr          (** C division — use only when exact *)
  | FloorDiv of expr * expr     (** printed as a [floord] helper call *)
  | CeilDiv of expr * expr      (** printed as a [ceild] helper call *)
  | Mod of expr * expr          (** mathematical (non-negative) modulo *)
  | Neg of expr
  | Max of expr * expr
  | Min of expr * expr
  | Call of string * expr list
  | Idx of string * expr list   (** array subscript [a[e1][e2]…] *)
  | Cmp of string * expr * expr (** e.g. [Cmp ("<=", a, b)] *)
  | And of expr list
  | Or of expr list
  | Not of expr
  | Raw of string

type stmt =
  | Expr of expr
  | Assign of expr * expr
  | Decl of string * string * expr option  (** type, name, initialiser *)
  | DeclArr of string * string * expr      (** type, name, size (heap) *)
  | For of { var : string; lo : expr; hi : expr; step : expr; body : stmt list }
      (** [for (var = lo; var <= hi; var += step)] *)
  | If of expr * stmt list * stmt list
  | Block of stmt list
  | Return of expr option
  | Comment of string
  | RawStmt of string

type func = {
  ret : string;
  name : string;
  params : (string * string) list;  (** type, name *)
  body : stmt list;
}

val simplify : expr -> expr
(** Constant folding and neutral-element elimination — keeps the emitted
    bounds readable. *)

val pp_expr : Buffer.t -> expr -> unit
val pp_stmt : Buffer.t -> indent:int -> stmt -> unit
val pp_func : Buffer.t -> func -> unit

val helpers : string
(** The [floord]/[ceild]/[imod]/[imax]/[imin] helper definitions. *)

val program :
  ?includes:string list -> ?prelude:string list -> func list -> string
(** Assemble a complete compilation unit. [prelude] lines are emitted
    verbatim between the includes and the functions (helper macros,
    static tables). The [floord]/[ceild]/[imod] helpers are always
    emitted. *)
