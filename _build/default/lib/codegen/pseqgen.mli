(** Parametric sequential tiled code generation.

    Like {!Seqgen}, but the iteration space carries symbolic size
    parameters (§2.1's parameterized bounds): the emitted program takes
    the parameter values on its command line, computes the data-space
    extents and all tile-loop bounds at runtime from Fourier–Motzkin
    systems in which the parameters are ordinary leading variables, and
    runs the same tiled sweep. One compiled binary therefore serves every
    problem size — the behaviour an actual compiler's output must have.

    Prints [points]/[checksum] like {!Seqgen} for oracle comparison. *)

val generate :
  pspace:Tiles_poly.Pspace.t ->
  tiling:Tiles_core.Tiling.t ->
  kernel:Ckernel.t ->
  reads:Tiles_util.Vec.t list ->
  ?skew:Tiles_linalg.Intmat.t ->
  unit ->
  string
(** [pspace] is the (already skewed, if applicable) parametric iteration
    space; [reads] are in its coordinates; [skew] only affects how the
    kernel body's original-coordinate macros are computed. Raises
    [Invalid_argument] on dimension mismatches and [Failure] if a bound
    is unbounded. *)
