lib/codegen/bounds.ml: C_ast List Tiles_poly
