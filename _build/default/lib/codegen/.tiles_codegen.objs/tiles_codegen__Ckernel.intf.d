lib/codegen/ckernel.mli:
