lib/codegen/c_ast.ml: Buffer List Printf String Tiles_util
