lib/codegen/mpigen.mli: Ckernel Tiles_core Tiles_linalg Tiles_util
