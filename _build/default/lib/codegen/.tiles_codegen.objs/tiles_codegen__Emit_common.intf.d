lib/codegen/emit_common.mli: Ckernel Tiles_core Tiles_linalg Tiles_poly Tiles_util
