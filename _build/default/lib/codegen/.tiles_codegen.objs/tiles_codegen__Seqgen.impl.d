lib/codegen/seqgen.ml: Array Bounds C_ast Ckernel Emit_common List Printf Tiles_core Tiles_linalg Tiles_loop Tiles_poly
