lib/codegen/bounds.mli: C_ast Tiles_poly
