lib/codegen/ckernel.ml:
