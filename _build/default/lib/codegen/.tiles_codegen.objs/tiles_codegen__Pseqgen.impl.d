lib/codegen/pseqgen.ml: Array Bounds C_ast Ckernel Emit_common List Printf String Tiles_core Tiles_linalg Tiles_poly
