lib/codegen/emit_common.ml: Array Ckernel List Printf String Tiles_core Tiles_linalg Tiles_loop Tiles_poly Tiles_rat Tiles_util
