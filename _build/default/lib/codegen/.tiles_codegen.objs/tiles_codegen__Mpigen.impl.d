lib/codegen/mpigen.ml: Array Buffer C_ast Ckernel Emit_common List Printf String Tiles_core Tiles_linalg Tiles_poly Tiles_util
