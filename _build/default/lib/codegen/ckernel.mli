(** The C rendition of a loop body, supplied by the application so the
    code generators can emit a complete runnable program.

    Inside [body] statements these macros are in scope:
    - [J(k)] — the k-th {e original-space} iteration coordinate,
    - [RD(i, f)] — field [f] of the value at [j − reads.(i)],
    - [WR(f)] — lvalue of field [f] of the value being computed.

    [boundary] is the body of
    [double boundary(const int *j, int f)] giving initial/boundary values
    for points outside the iteration space (original coordinates). *)

type t = {
  name : string;
  width : int;
  nreads : int;
  body : string list;
  boundary : string list;
}

val make :
  name:string -> ?width:int -> nreads:int -> body:string list ->
  boundary:string list -> unit -> t
