(** Affine loop bounds as C expressions, read off a Fourier–Motzkin
    projection chain: loop variable [k]'s bounds mention only the outer
    variables [0 .. k-1]. *)

val lower : Tiles_poly.Constr.t list -> var:int -> name:(int -> string) -> C_ast.expr
(** [max] of the ceil-divided lower bounds. Raises [Failure] if the
    variable is unbounded below in the system. *)

val upper : Tiles_poly.Constr.t list -> var:int -> name:(int -> string) -> C_ast.expr
(** [min] of the floor-divided upper bounds. *)

val member_cond : Tiles_poly.Constr.t list -> name:(int -> string) -> C_ast.expr
(** Conjunction [∀c, c(x) >= 0] as a C condition. *)
