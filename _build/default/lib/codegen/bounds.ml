module Constr = Tiles_poly.Constr
open C_ast

(* const + sum coeff_j x_j restricted to j < upto (deeper coefficients are
   zero in a projected system) *)
let affine_part c ~upto ~name =
  let acc = ref (Int (Constr.const c)) in
  for j = 0 to upto - 1 do
    let a = Constr.coeff c j in
    if a <> 0 then acc := Add (!acc, Mul (Int a, Var (name j)))
  done;
  !acc

let bound_exprs cs ~var ~name ~pick =
  List.filter_map
    (fun c ->
      let a = Constr.coeff c var in
      (* bounds must come from the projected system: a constraint that
         still mentions a deeper variable cannot be turned into a bound *)
      if a <> 0 then
        for j = var + 1 to Constr.dim c - 1 do
          if Constr.coeff c j <> 0 then
            invalid_arg
              "Bounds: constraint mentions a variable deeper than the loop \
               being bounded; pass the Fourier-Motzkin projected system"
        done;
      pick a (affine_part c ~upto:var ~name))
    cs

let lower cs ~var ~name =
  let lbs =
    bound_exprs cs ~var ~name ~pick:(fun a rest ->
        if a > 0 then Some (CeilDiv (Neg rest, Int a)) else None)
  in
  match lbs with
  | [] -> failwith "Bounds.lower: variable unbounded below"
  | first :: rest -> simplify (List.fold_left (fun acc e -> Max (acc, e)) first rest)

let upper cs ~var ~name =
  let ubs =
    bound_exprs cs ~var ~name ~pick:(fun a rest ->
        if a < 0 then Some (FloorDiv (rest, Int (-a))) else None)
  in
  match ubs with
  | [] -> failwith "Bounds.upper: variable unbounded above"
  | first :: rest -> simplify (List.fold_left (fun acc e -> Min (acc, e)) first rest)

let member_cond cs ~name =
  simplify
    (And
       (List.map
          (fun c ->
            Cmp (">=", affine_part c ~upto:(Constr.dim c) ~name, Int 0))
          cs))
