type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | FloorDiv of expr * expr
  | CeilDiv of expr * expr
  | Mod of expr * expr
  | Neg of expr
  | Max of expr * expr
  | Min of expr * expr
  | Call of string * expr list
  | Idx of string * expr list
  | Cmp of string * expr * expr
  | And of expr list
  | Or of expr list
  | Not of expr
  | Raw of string

type stmt =
  | Expr of expr
  | Assign of expr * expr
  | Decl of string * string * expr option
  | DeclArr of string * string * expr
  | For of { var : string; lo : expr; hi : expr; step : expr; body : stmt list }
  | If of expr * stmt list * stmt list
  | Block of stmt list
  | Return of expr option
  | Comment of string
  | RawStmt of string

type func = {
  ret : string;
  name : string;
  params : (string * string) list;
  body : stmt list;
}

let rec simplify e =
  match e with
  | Add (a, b) -> (
    match (simplify a, simplify b) with
    | Int 0, x | x, Int 0 -> x
    | Int x, Int y -> Int (x + y)
    | a, b -> Add (a, b))
  | Sub (a, b) -> (
    match (simplify a, simplify b) with
    | x, Int 0 -> x
    | Int x, Int y -> Int (x - y)
    | a, b -> Sub (a, b))
  | Mul (a, b) -> (
    match (simplify a, simplify b) with
    | Int 0, _ | _, Int 0 -> Int 0
    | Int 1, x | x, Int 1 -> x
    | Int x, Int y -> Int (x * y)
    | Int (-1), x | x, Int (-1) -> Neg x
    | a, b -> Mul (a, b))
  | FloorDiv (a, b) -> (
    match (simplify a, simplify b) with
    | x, Int 1 -> x
    | Int x, Int y when y <> 0 -> Int (Tiles_util.Ints.fdiv x y)
    | a, b -> FloorDiv (a, b))
  | CeilDiv (a, b) -> (
    match (simplify a, simplify b) with
    | x, Int 1 -> x
    | Int x, Int y when y <> 0 -> Int (Tiles_util.Ints.cdiv x y)
    | a, b -> CeilDiv (a, b))
  | Mod (a, b) -> (
    match (simplify a, simplify b) with
    | _, Int 1 -> Int 0
    | Int x, Int y when y <> 0 -> Int (Tiles_util.Ints.fmod x y)
    | a, b -> Mod (a, b))
  | Div (a, b) -> (
    match (simplify a, simplify b) with
    | x, Int 1 -> x
    | a, b -> Div (a, b))
  | Neg e -> (
    match simplify e with Int x -> Int (-x) | Neg x -> x | e -> Neg e)
  | Max (a, b) -> (
    match (simplify a, simplify b) with
    | Int x, Int y -> Int (max x y)
    | a, b when a = b -> a
    | a, b -> Max (a, b))
  | Min (a, b) -> (
    match (simplify a, simplify b) with
    | Int x, Int y -> Int (min x y)
    | a, b when a = b -> a
    | a, b -> Min (a, b))
  | Not a -> Not (simplify a)
  | And es -> And (List.map simplify es)
  | Or es -> Or (List.map simplify es)
  | Cmp (op, a, b) -> Cmp (op, simplify a, simplify b)
  | Call (f, args) -> Call (f, List.map simplify args)
  | Idx (a, idxs) -> Idx (a, List.map simplify idxs)
  | Int _ | Flt _ | Var _ | Raw _ -> e

let rec pp_expr buf e =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let bin op a b =
    p "(";
    pp_expr buf a;
    p " %s " op;
    pp_expr buf b;
    p ")"
  in
  match e with
  | Int n -> if n < 0 then p "(%d)" n else p "%d" n
  | Flt f -> p "%.17g" f
  | Var v -> p "%s" v
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Div (a, b) -> bin "/" a b
  | FloorDiv (a, b) ->
    p "floord(";
    pp_expr buf a;
    p ", ";
    pp_expr buf b;
    p ")"
  | CeilDiv (a, b) ->
    p "ceild(";
    pp_expr buf a;
    p ", ";
    pp_expr buf b;
    p ")"
  | Mod (a, b) ->
    p "imod(";
    pp_expr buf a;
    p ", ";
    pp_expr buf b;
    p ")"
  | Neg a ->
    p "(-";
    pp_expr buf a;
    p ")"
  | Max (a, b) ->
    p "imax(";
    pp_expr buf a;
    p ", ";
    pp_expr buf b;
    p ")"
  | Min (a, b) ->
    p "imin(";
    pp_expr buf a;
    p ", ";
    pp_expr buf b;
    p ")"
  | Call (f, args) ->
    p "%s(" f;
    List.iteri
      (fun i a ->
        if i > 0 then p ", ";
        pp_expr buf a)
      args;
    p ")"
  | Idx (a, idxs) ->
    p "%s" a;
    List.iter
      (fun i ->
        p "[";
        pp_expr buf i;
        p "]")
      idxs
  | Cmp (op, a, b) -> bin op a b
  | And [] -> p "1"
  | And es ->
    p "(";
    List.iteri
      (fun i a ->
        if i > 0 then p " && ";
        pp_expr buf a)
      es;
    p ")"
  | Or [] -> p "0"
  | Or es ->
    p "(";
    List.iteri
      (fun i a ->
        if i > 0 then p " || ";
        pp_expr buf a)
      es;
    p ")"
  | Not a ->
    p "(!";
    pp_expr buf a;
    p ")"
  | Raw s -> p "%s" s

let rec pp_stmt buf ~indent s =
  let pad () = Buffer.add_string buf (String.make (2 * indent) ' ') in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match s with
  | Expr e ->
    pad ();
    pp_expr buf e;
    p ";\n"
  | Assign (lhs, rhs) ->
    pad ();
    pp_expr buf lhs;
    p " = ";
    pp_expr buf rhs;
    p ";\n"
  | Decl (ty, name, init) -> (
    pad ();
    p "%s %s" ty name;
    match init with
    | None -> p ";\n"
    | Some e ->
      p " = ";
      pp_expr buf e;
      p ";\n")
  | DeclArr (ty, name, size) ->
    pad ();
    p "%s *%s = (%s *)calloc(" ty name ty;
    pp_expr buf size;
    p ", sizeof(%s));\n" ty
  | For { var; lo; hi; step; body } ->
    pad ();
    p "for (%s = " var;
    pp_expr buf lo;
    p "; %s <= " var;
    pp_expr buf hi;
    p "; %s += " var;
    pp_expr buf step;
    p ") {\n";
    List.iter (pp_stmt buf ~indent:(indent + 1)) body;
    pad ();
    p "}\n"
  | If (cond, then_, else_) ->
    pad ();
    p "if (";
    pp_expr buf cond;
    p ") {\n";
    List.iter (pp_stmt buf ~indent:(indent + 1)) then_;
    pad ();
    if else_ = [] then p "}\n"
    else begin
      p "} else {\n";
      List.iter (pp_stmt buf ~indent:(indent + 1)) else_;
      pad ();
      p "}\n"
    end
  | Block body ->
    pad ();
    p "{\n";
    List.iter (pp_stmt buf ~indent:(indent + 1)) body;
    pad ();
    p "}\n"
  | Return None ->
    pad ();
    p "return;\n"
  | Return (Some e) ->
    pad ();
    p "return ";
    pp_expr buf e;
    p ";\n"
  | Comment c ->
    pad ();
    p "/* %s */\n" c
  | RawStmt s ->
    pad ();
    p "%s\n" s

let pp_func buf f =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "%s %s(%s)\n{\n" f.ret f.name
    (if f.params = [] then "void"
     else String.concat ", " (List.map (fun (ty, nm) -> ty ^ " " ^ nm) f.params));
  List.iter (pp_stmt buf ~indent:1) f.body;
  p "}\n\n"

let helpers =
  {|static inline int floord(int a, int b) { int q = a / b, r = a % b; return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q; }
static inline int ceild(int a, int b) { return -floord(-a, b); }
static inline int imod(int a, int b) { return a - b * floord(a, b); }
static inline int imax(int a, int b) { return a > b ? a : b; }
static inline int imin(int a, int b) { return a < b ? a : b; }|}

let program ?(includes = [ "stdio.h"; "stdlib.h" ]) ?(prelude = []) funcs =
  let buf = Buffer.create 4096 in
  List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "#include <%s>\n" i)) includes;
  Buffer.add_char buf '\n';
  Buffer.add_string buf helpers;
  Buffer.add_string buf "\n\n";
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    prelude;
  if prelude <> [] then Buffer.add_char buf '\n';
  List.iter (pp_func buf) funcs;
  Buffer.contents buf
