(** Shared pieces of the sequential and MPI code generators: the static
    tables (tiling matrices, dependence offsets, space constraints) and
    the runtime helper functions (lattice start offsets, space membership,
    global-coordinate reconstruction) that both emitted programs need. *)

val int_table1 : string -> int array -> string
val int_table2 : string -> int array array -> string

val constraint_tables : string -> Tiles_poly.Constr.t list -> int -> string list
(** [[prefix]NC] count define plus [[prefix]A]/[[prefix]B] coefficient and
    constant tables for a constraint system over [n] variables. *)

val core_tables :
  tiling:Tiles_core.Tiling.t ->
  kernel:Ckernel.t ->
  skew:Tiles_linalg.Intmat.t ->
  reads:Tiles_util.Vec.t list ->
  string list
(** Space-independent prelude: NDIM/W/NRD defines, V/C/HNF/Q/QDEN/D/DP/
    TINV tables, [ttis_start], [global_of], [orig] and [boundary] (from
    the kernel's C body). [boundary] calls [in_space]-independent code;
    the space-membership test itself comes from {!space_tables} or a
    parametric equivalent. *)

val space_tables : Tiles_poly.Polyhedron.t -> string list
(** Concrete-space constraint tables plus the [in_space] helper. *)

val tables :
  plan:Tiles_core.Plan.t ->
  kernel:Ckernel.t ->
  skew:Tiles_linalg.Intmat.t ->
  reads:Tiles_util.Vec.t list ->
  string list
(** [space_tables] + [core_tables] for a concrete plan. *)

val bbox_tables : Tiles_poly.Polyhedron.t -> string list
(** GLO/GDIMS/GTOT tables and [gidx] for a dense bounding-box data array
    (sequential generator / verification path). *)
