type t = {
  latency : float;
  bandwidth : float;
  send_overhead : float;
  recv_overhead : float;
  flop_time : float;
  pack_time : float;
}

let fast_ethernet_cluster =
  {
    latency = 70e-6;
    bandwidth = 12.5e6;
    send_overhead = 30e-6;
    recv_overhead = 30e-6;
    flop_time = 100e-9;
    pack_time = 20e-9;
  }

let ideal =
  {
    latency = 0.;
    bandwidth = infinity;
    send_overhead = 0.;
    recv_overhead = 0.;
    flop_time = 100e-9;
    pack_time = 0.;
  }

let transfer_time t ~bytes = float_of_int bytes /. t.bandwidth
let with_ratio t f = { t with flop_time = t.flop_time *. f }
