(** Cost model of the simulated cluster.

    The paper's testbed was 16 Pentium III 500 MHz nodes on switched
    FastEthernet under MPICH; we model it with the usual
    latency/bandwidth/overhead (α-β) point-to-point model plus a per-point
    computation cost and a per-element packing cost. The absolute numbers
    only set the computation-to-communication ratio; the experiments'
    qualitative shape (which tiling wins, where speedup peaks) is what the
    reproduction checks. *)

type t = {
  latency : float;  (** one-way message latency, seconds *)
  bandwidth : float;  (** bytes per second on the wire *)
  send_overhead : float;  (** CPU time consumed by the sender per message *)
  recv_overhead : float;  (** CPU time consumed by the receiver per message *)
  flop_time : float;  (** seconds of CPU per iteration point *)
  pack_time : float;  (** seconds of CPU per packed/unpacked element *)
}

val fast_ethernet_cluster : t
(** Defaults calibrated to the paper's testbed class: 100 Mbit/s wire,
    ~70 µs latency, ~100 ns per stencil point on a 500 MHz PIII. *)

val ideal : t
(** Zero-cost network, for ablations (pure scheduling effect). *)

val transfer_time : t -> bytes:int -> float
(** Wire time of one message: [bytes / bandwidth]. *)

val with_ratio : t -> float -> t
(** Scale [flop_time] so the computation-to-communication ratio changes by
    the given factor (> 1 = more compute-bound); used by the ablation
    bench. *)
