(** Post-mortem analysis of traced simulations. *)

type utilisation = {
  compute : float;  (** seconds spent computing *)
  send : float;     (** seconds in send overhead / wire occupancy *)
  wait : float;     (** seconds blocked in receives *)
  idle : float;     (** completion − (compute + send + wait) for this rank *)
}

val utilisation : Sim.stats -> utilisation array
(** Per-rank breakdown over the whole run (requires a trace; raises
    [Invalid_argument] otherwise). The idle component is the time between
    a rank's own finish and the global completion, plus any unaccounted
    gaps. *)

val efficiency : Sim.stats -> float
(** Mean compute fraction across ranks: [Σ compute / (nprocs ·
    completion)] — 1.0 means a perfectly busy machine. *)

val critical_rank : Sim.stats -> int
(** The rank that finished last. *)
