type utilisation = {
  compute : float;
  send : float;
  wait : float;
  idle : float;
}

let utilisation (stats : Sim.stats) =
  if stats.Sim.trace = [] then invalid_arg "Trace.utilisation: no trace";
  let nprocs = Array.length stats.Sim.rank_clocks in
  let compute = Array.make nprocs 0. in
  let send = Array.make nprocs 0. in
  let wait = Array.make nprocs 0. in
  List.iter
    (fun { Sim.rank; t0; t1; kind } ->
      let d = t1 -. t0 in
      match kind with
      | `Compute -> compute.(rank) <- compute.(rank) +. d
      | `Send -> send.(rank) <- send.(rank) +. d
      | `Wait -> wait.(rank) <- wait.(rank) +. d)
    stats.Sim.trace;
  Array.init nprocs (fun r ->
      {
        compute = compute.(r);
        send = send.(r);
        wait = wait.(r);
        idle =
          Float.max 0.
            (stats.Sim.completion -. compute.(r) -. send.(r) -. wait.(r));
      })

let efficiency stats =
  let u = utilisation stats in
  let total = Array.fold_left (fun acc x -> acc +. x.compute) 0. u in
  total
  /. (float_of_int (Array.length u) *. stats.Sim.completion)

let critical_rank (stats : Sim.stats) =
  let best = ref 0 in
  Array.iteri
    (fun r t -> if t > stats.Sim.rank_clocks.(!best) then best := r)
    stats.Sim.rank_clocks;
  !best
