lib/mpisim/netmodel.ml:
