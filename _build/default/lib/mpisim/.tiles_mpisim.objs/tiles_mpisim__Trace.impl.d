lib/mpisim/trace.ml: Array Float List Sim
