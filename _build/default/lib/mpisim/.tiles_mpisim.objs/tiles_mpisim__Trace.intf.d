lib/mpisim/trace.mli: Sim
