lib/mpisim/sim.ml: Array Effect Float Hashtbl List Netmodel Printf Queue String
