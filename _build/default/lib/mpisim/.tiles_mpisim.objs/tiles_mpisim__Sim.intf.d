lib/mpisim/sim.mli: Netmodel
