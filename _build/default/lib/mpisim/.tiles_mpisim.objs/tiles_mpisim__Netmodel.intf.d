lib/mpisim/netmodel.mli:
