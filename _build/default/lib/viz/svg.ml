type t = {
  width : float;
  height : float;
  mutable elems : string list;
  mutable count : int;
}

let create ~width ~height = { width; height; elems = []; count = 0 }

let add t s =
  t.elems <- s :: t.elems;
  t.count <- t.count + 1

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let f = Printf.sprintf "%.2f"

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "#444") ?(stroke_width = 1.0) ?dash () =
  let dash_attr =
    match dash with
    | None -> ""
    | Some d -> Printf.sprintf " stroke-dasharray=\"%s\"" d
  in
  add t
    (Printf.sprintf
       "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"%s\" \
        stroke-width=\"%s\"%s/>"
       (f x1) (f y1) (f x2) (f y2) stroke (f stroke_width) dash_attr)

let rect t ~x ~y ~w ~h ?(fill = "none") ?(stroke = "none") ?(opacity = 1.0) () =
  add t
    (Printf.sprintf
       "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"%s\" \
        stroke=\"%s\" opacity=\"%s\"/>"
       (f x) (f y) (f w) (f h) fill stroke (f opacity))

let circle t ~cx ~cy ~r ?(fill = "#000") ?(stroke = "none") () =
  add t
    (Printf.sprintf
       "<circle cx=\"%s\" cy=\"%s\" r=\"%s\" fill=\"%s\" stroke=\"%s\"/>"
       (f cx) (f cy) (f r) fill stroke)

let text t ~x ~y ?(size = 12.0) ?(fill = "#222") ?(anchor = "start") s =
  add t
    (Printf.sprintf
       "<text x=\"%s\" y=\"%s\" font-size=\"%s\" fill=\"%s\" \
        text-anchor=\"%s\" font-family=\"sans-serif\">%s</text>"
       (f x) (f y) (f size) fill anchor (escape s))

let render t =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %s %s\" \
     width=\"%s\" height=\"%s\">\n%s\n</svg>\n"
    (f t.width) (f t.height) (f t.width) (f t.height)
    (String.concat "\n" (List.rev t.elems))

let save t path =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc

let element_count t = t.count
