(** A minimal SVG document builder — just enough to draw the framework's
    diagrams (iteration spaces, TTIS lattices, LDS layouts, execution
    Gantt charts) without external dependencies. Coordinates are in user
    units; the document gets an explicit [viewBox]. *)

type t

val create : width:float -> height:float -> t

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float ->
  ?stroke:string -> ?stroke_width:float -> ?dash:string -> unit -> unit

val rect :
  t -> x:float -> y:float -> w:float -> h:float ->
  ?fill:string -> ?stroke:string -> ?opacity:float -> unit -> unit

val circle :
  t -> cx:float -> cy:float -> r:float ->
  ?fill:string -> ?stroke:string -> unit -> unit

val text :
  t -> x:float -> y:float -> ?size:float -> ?fill:string -> ?anchor:string ->
  string -> unit

val render : t -> string
(** The complete [<svg>…</svg>] document. *)

val save : t -> string -> unit
(** Write [render] to a file. *)

val element_count : t -> int
(** Number of shapes added so far (used by tests). *)
