lib/viz/figures.ml: Array Float List Printf Svg Tiles_core Tiles_mpisim Tiles_poly Tiles_rat Tiles_util
