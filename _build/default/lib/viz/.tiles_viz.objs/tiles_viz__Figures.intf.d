lib/viz/figures.mli: Svg Tiles_core Tiles_mpisim Tiles_poly
