lib/viz/svg.mli:
