module Polyhedron = Tiles_poly.Polyhedron
module Vec = Tiles_util.Vec

let run ~space ~kernel =
  let n = Polyhedron.dim space in
  if n <> kernel.Kernel.dim then invalid_arg "Seq_exec.run: dimension";
  let grid = Grid.create space ~width:kernel.Kernel.width in
  let reads = Array.of_list kernel.Kernel.reads in
  let src = Array.make n 0 in
  let out = Array.make kernel.Kernel.width 0. in
  Polyhedron.iter_points space (fun j ->
      let read i field =
        let d = reads.(i) in
        for k = 0 to n - 1 do
          src.(k) <- j.(k) - d.(k)
        done;
        if Polyhedron.member space src then Grid.get grid src field
        else kernel.Kernel.boundary src field
      in
      kernel.Kernel.compute ~read ~j ~out;
      for f = 0 to kernel.Kernel.width - 1 do
        Grid.set grid j f out.(f)
      done);
  grid

let modelled_time ~space ~net =
  float_of_int (Polyhedron.count_points space)
  *. net.Tiles_mpisim.Netmodel.flop_time
