lib/runtime/kernel.mli: Tiles_linalg Tiles_loop Tiles_util
