lib/runtime/shm_executor.mli: Grid Kernel Tiles_core
