lib/runtime/model.mli: Tiles_core Tiles_mpisim
