lib/runtime/seq_exec.mli: Grid Kernel Tiles_mpisim Tiles_poly
