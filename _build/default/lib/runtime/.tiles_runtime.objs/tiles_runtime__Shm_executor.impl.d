lib/runtime/shm_executor.ml: Array Atomic Condition Domain Grid Hashtbl List Mutex Protocol Queue Seq_exec Tiles_core Tiles_loop Tiles_poly Unix
