lib/runtime/seq_exec.ml: Array Grid Kernel Tiles_mpisim Tiles_poly Tiles_util
