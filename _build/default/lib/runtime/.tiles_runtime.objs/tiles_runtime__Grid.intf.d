lib/runtime/grid.mli: Tiles_poly Tiles_util
