lib/runtime/kernel.ml: List Tiles_linalg Tiles_loop Tiles_util
