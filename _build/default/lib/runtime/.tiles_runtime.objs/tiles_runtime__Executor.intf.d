lib/runtime/executor.mli: Grid Kernel Tiles_core Tiles_mpisim
