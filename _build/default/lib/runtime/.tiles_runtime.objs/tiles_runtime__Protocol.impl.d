lib/runtime/protocol.ml: Array Float Grid Kernel List Printf Tiles_core Tiles_linalg Tiles_loop Tiles_poly Tiles_util
