lib/runtime/executor.ml: Array Grid Protocol Seq_exec Tiles_core Tiles_loop Tiles_mpisim
