lib/runtime/model.ml: Array List Tiles_core Tiles_loop Tiles_mpisim Tiles_poly
