lib/runtime/protocol.mli: Grid Kernel Tiles_core
