lib/runtime/grid.ml: Array Float Tiles_poly
