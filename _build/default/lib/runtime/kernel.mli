(** The semantics of one loop body: what the compiler's input program
    actually computes. [reads] lists the uniform dependence offsets in the
    order the [compute] function indexes them (unlike
    [Tiles_loop.Dependence], which canonicalises order). A kernel may
    carry several scalar fields per iteration point ([width] — ADI updates
    both [X] and [B]). *)

type t = {
  name : string;
  dim : int;
  width : int;
  reads : Tiles_util.Vec.t list;
      (** read offsets: read [i] sees the value at [j − reads.(i)] *)
  boundary : Tiles_util.Vec.t -> int -> float;
      (** [boundary j field] — value of points outside the iteration space
          (initial data and spatial boundary conditions) *)
  compute : read:(int -> int -> float) -> j:Tiles_util.Vec.t -> out:float array -> unit;
      (** [compute ~read ~j ~out] evaluates the body at iteration [j];
          [read i f] is field [f] at [j − reads.(i)]; results go into
          [out.(0 .. width-1)]. *)
}

val deps : t -> Tiles_loop.Dependence.t
(** The canonical dependence set of the kernel. *)

val make :
  name:string ->
  dim:int ->
  ?width:int ->
  reads:Tiles_util.Vec.t list ->
  boundary:(Tiles_util.Vec.t -> int -> float) ->
  compute:(read:(int -> int -> float) -> j:Tiles_util.Vec.t -> out:float array -> unit) ->
  unit ->
  t

val skewed : t -> Tiles_linalg.Intmat.t -> t
(** [skewed k t] — the same computation over the skewed space [T·J^n]:
    read offsets become [T·d], and boundary lookups un-skew their argument
    before consulting the original boundary function. *)
