(** Real shared-memory execution of a plan on OCaml 5 domains.

    The paper's abstract machine is message passing over NUMA; this
    backend instantiates the {e same} per-tile protocol ({!Protocol}) with
    one domain per processor and blocking in-memory mailboxes instead of
    the simulator — so the compiled schedule actually runs in parallel on
    the host's cores and its output is compared against the sequential
    oracle like everything else. Wall-clock speedup is measured but
    depends on the host; correctness is the point.

    Use modest process counts (≲ number of cores); each rank is a real
    domain. *)

type result = {
  wall_seconds : float;       (** parallel wall-clock time *)
  seq_wall_seconds : float;   (** sequential oracle wall-clock time *)
  wall_speedup : float;
  grid : Grid.t;              (** the parallel result *)
  max_abs_err : float;        (** vs the sequential oracle *)
  nprocs : int;
  messages : int;
}

val run : plan:Tiles_core.Plan.t -> kernel:Kernel.t -> unit -> result
(** Always Full mode (the whole point is the real data flow). Raises like
    {!Protocol.prepare}. *)
