module Mapping = Tiles_core.Mapping
module Plan = Tiles_core.Plan
module Polyhedron = Tiles_poly.Polyhedron

type result = {
  wall_seconds : float;
  seq_wall_seconds : float;
  wall_speedup : float;
  grid : Grid.t;
  max_abs_err : float;
  nprocs : int;
  messages : int;
}

(* A blocking mailbox per (src, dst) channel, tag-matched. *)
module Mailbox = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    messages : (int, float array Queue.t) Hashtbl.t;
  }

  let create () =
    { mutex = Mutex.create (); cond = Condition.create ();
      messages = Hashtbl.create 8 }

  let send t ~tag data =
    Mutex.lock t.mutex;
    let q =
      match Hashtbl.find_opt t.messages tag with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.messages tag q;
        q
    in
    Queue.push data q;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let recv t ~tag =
    Mutex.lock t.mutex;
    let rec wait () =
      match Hashtbl.find_opt t.messages tag with
      | Some q when not (Queue.is_empty q) -> Queue.pop q
      | _ ->
        Condition.wait t.cond t.mutex;
        wait ()
    in
    let data = wait () in
    Mutex.unlock t.mutex;
    data
end

let run ~plan ~kernel () =
  let nprocs = Mapping.nprocs plan.Plan.mapping in
  let shared =
    Protocol.prepare ~mode:Protocol.Full ~plan ~kernel ~flop_time:0.
      ~pack_time:0. ()
  in
  let boxes =
    Array.init nprocs (fun _ -> Array.init nprocs (fun _ -> Mailbox.create ()))
  in
  let messages = Atomic.make 0 in
  let comms_for rank =
    {
      Protocol.send =
        (fun ~dst ~tag data ->
          Atomic.incr messages;
          Mailbox.send boxes.(rank).(dst) ~tag data);
      recv = (fun ~src ~tag -> Mailbox.recv boxes.(src).(rank) ~tag);
      compute = (fun _ -> ());
    }
  in
  let failure = Atomic.make None in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init nprocs (fun rank ->
        Domain.spawn (fun () ->
            try Protocol.rank_program shared (comms_for rank) rank
            with e -> Atomic.set failure (Some e)))
  in
  List.iter Domain.join domains;
  let wall = Unix.gettimeofday () -. t0 in
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let space = plan.Plan.nest.Tiles_loop.Nest.space in
  let t1 = Unix.gettimeofday () in
  let oracle = Seq_exec.run ~space ~kernel in
  let seq_wall = Unix.gettimeofday () -. t1 in
  let grid =
    match shared.Protocol.grid with
    | Some g -> g
    | None -> assert false
  in
  {
    wall_seconds = wall;
    seq_wall_seconds = seq_wall;
    wall_speedup = seq_wall /. wall;
    grid;
    max_abs_err = Grid.max_abs_diff grid oracle space;
    nprocs;
    messages = Atomic.get messages;
  }
