(** Reference sequential execution of a kernel over its iteration space in
    lexicographic order — the paper's "original program", both the
    correctness oracle for the distributed executor and the baseline of
    the speedup measurements. *)

val run : space:Tiles_poly.Polyhedron.t -> kernel:Kernel.t -> Grid.t

val modelled_time :
  space:Tiles_poly.Polyhedron.t -> net:Tiles_mpisim.Netmodel.t -> float
(** Virtual sequential execution time under the cluster's cost model:
    [|J^n| · flop_time]. *)
