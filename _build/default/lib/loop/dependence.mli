(** Uniform, constant dependence sets (the matrix [D] of the paper; each
    column one dependence vector). *)

type t
(** Invariant: no duplicate columns; dimension fixed. *)

val of_vectors : Tiles_util.Vec.t list -> t
(** Raises [Invalid_argument] on an empty list, mismatched dimensions, or a
    zero vector (a self-dependence is meaningless). *)

val of_matrix : Tiles_linalg.Intmat.t -> t
(** Columns are the dependence vectors. *)

val to_matrix : t -> Tiles_linalg.Intmat.t
val vectors : t -> Tiles_util.Vec.t list
val dim : t -> int
val count : t -> int

val all_lex_positive : t -> bool
(** Every dependence lexicographically positive — the legality condition
    for sequential execution order and for the loop permutations of
    §3.1. *)

val all_nonnegative : t -> bool
(** Every component of every dependence non-negative — the precondition for
    rectangular tiling. *)

val transform : Tiles_linalg.Intmat.t -> t -> t
(** [transform t d] maps every dependence through [t] (used by skewing). *)

val max_component : t -> int -> int
(** [max_component d k] is the largest [k]-th component over all
    dependence vectors. *)

val pp : Format.formatter -> t -> unit
