module Intmat = Tiles_linalg.Intmat
module Ints = Tiles_util.Ints

let is_valid_skew m =
  Intmat.is_square m
  && Intmat.is_lower_triangular m
  &&
  let n = Intmat.rows m in
  let unit_diag = ref true in
  for i = 0 to n - 1 do
    if m.(i).(i) <> 1 then unit_diag := false
  done;
  !unit_diag

let of_factors n factors =
  let m = Intmat.identity n in
  List.iter
    (fun (i, j, f) ->
      if i <= j || i >= n || j < 0 then invalid_arg "Skew.of_factors";
      m.(i).(j) <- f)
    factors;
  m

let suggest deps =
  let n = Dependence.dim deps in
  let vecs = Dependence.vectors deps in
  let factor k =
    (* smallest c >= 0 with d_k + c*d_0 >= 0 for all deps *)
    List.fold_left
      (fun acc d ->
        match acc with
        | None -> None
        | Some c ->
          if d.(k) >= 0 then Some c
          else if d.(0) <= 0 then None
          else Some (max c (Ints.cdiv (-d.(k)) d.(0))))
      (Some 0) vecs
  in
  let rec build k acc =
    if k = n then Some (of_factors n acc)
    else
      match factor k with
      | None -> None
      | Some 0 -> build (k + 1) acc
      | Some c -> build (k + 1) ((k, 0, c) :: acc)
  in
  (* dependencies with negative first component can never be fixed by this
     scheme *)
  if List.exists (fun d -> d.(0) < 0) vecs then None else build 1 []

let apply nest m =
  if not (is_valid_skew m) then invalid_arg "Skew.apply: not a valid skew";
  let skewed = Nest.skew nest m in
  if Nest.needs_skewing skewed then
    failwith "Skew.apply: skewed nest still has negative dependence components";
  skewed
