module Intmat = Tiles_linalg.Intmat
module Ratmat = Tiles_linalg.Ratmat
module Rat = Tiles_rat.Rat
module Vec = Tiles_util.Vec

type t = { m : Intmat.t; offset : Vec.t }

let make ~m ~offset =
  if Intmat.rows m <> Vec.dim offset then invalid_arg "Access.make: dimensions";
  { m; offset }

let identity n = { m = Intmat.identity n; offset = Vec.zero n }
let shifted n d =
  if Vec.dim d <> n then invalid_arg "Access.shifted";
  { m = Intmat.identity n; offset = Vec.neg d }

let apply a j = Vec.add (Intmat.apply a.m j) a.offset

let dependence_of_read ~write ~read =
  if not (Intmat.equal write.m read.m) then
    failwith
      "Access.dependence_of_read: non-uniform access (linear parts differ)";
  if not (Intmat.is_square write.m) || Intmat.det write.m = 0 then
    failwith "Access.dependence_of_read: write reference is not invertible";
  let minv = Ratmat.inverse (Ratmat.of_intmat write.m) in
  let diff = Vec.sub write.offset read.offset in
  let d = Ratmat.apply_int minv diff in
  if not (Array.for_all Rat.is_integer d) then
    failwith "Access.dependence_of_read: non-integral dependence";
  let d = Array.map Rat.to_int_exn d in
  if Vec.is_zero d then
    failwith "Access.dependence_of_read: read aliases the write (d = 0)";
  d

let dependencies ~write ~reads =
  Dependence.of_vectors
    (List.map (fun read -> dependence_of_read ~write ~read) reads)

let statement_nest ~name ~space ~write ~reads =
  Nest.make ~name ~space ~deps:(dependencies ~write ~reads)
