(** Affine array accesses and uniform-dependence extraction — the front
    half of §2.1: the input statements are
    [A[f_w(j)] := F(A[f_w(j − d_1)], …)], i.e. every read is the write
    reference composed with a constant shift. Given the write and read
    subscript functions as general affine maps, this module checks that
    shape and recovers the dependence vectors.

    An access is [f(j) = m·j + offset]. A read [r] induces the flow
    dependence [d] with [f_w(j − d) = f_r(j)] for all [j]; this has a
    constant solution iff the linear parts coincide, and then
    [d = m_w⁻¹·(offset_w − offset_r)] (which must be integral). *)

type t = {
  m : Tiles_linalg.Intmat.t;  (** linear part, [dim(array) × dim(space)] *)
  offset : Tiles_util.Vec.t;
}

val make : m:Tiles_linalg.Intmat.t -> offset:Tiles_util.Vec.t -> t
val identity : int -> t
val shifted : int -> Tiles_util.Vec.t -> t
(** [shifted n d] is [f(j) = j − d] — the classic uniform read. *)

val apply : t -> Tiles_util.Vec.t -> Tiles_util.Vec.t

val dependence_of_read : write:t -> read:t -> Tiles_util.Vec.t
(** Raises [Failure] if the read is not uniform with respect to the write
    (different linear parts, or a non-integral / zero shift). *)

val dependencies : write:t -> reads:t list -> Dependence.t

val statement_nest :
  name:string ->
  space:Tiles_poly.Polyhedron.t ->
  write:t ->
  reads:t list ->
  Nest.t
(** Build the nest of a single-statement loop from its accesses. *)
