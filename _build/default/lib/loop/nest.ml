module Polyhedron = Tiles_poly.Polyhedron

type t = {
  name : string;
  space : Polyhedron.t;
  deps : Dependence.t;
}

let make ~name ~space ~deps =
  if Polyhedron.dim space <> Dependence.dim deps then
    invalid_arg "Nest.make: dimension mismatch";
  if not (Dependence.all_lex_positive deps) then
    invalid_arg "Nest.make: dependence not lexicographically positive";
  { name; space; deps }

let dim t = Polyhedron.dim t.space
let tiling_cone t = Tiles_poly.Cone.tiling_cone (Dependence.to_matrix t.deps)
let needs_skewing t = not (Dependence.all_nonnegative t.deps)

let skew t m =
  make ~name:(t.name ^ "-skewed")
    ~space:(Polyhedron.transform_unimodular m t.space)
    ~deps:(Dependence.transform m t.deps)

let pp ppf t =
  Format.fprintf ppf "@[<v>nest %s (dim %d)@ deps %a@]" t.name (dim t)
    Dependence.pp t.deps
