lib/loop/access.ml: Array Dependence List Nest Tiles_linalg Tiles_rat Tiles_util
