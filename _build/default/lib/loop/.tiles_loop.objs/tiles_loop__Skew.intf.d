lib/loop/skew.mli: Dependence Nest Tiles_linalg
