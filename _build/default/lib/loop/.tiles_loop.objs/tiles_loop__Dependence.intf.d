lib/loop/dependence.mli: Format Tiles_linalg Tiles_util
