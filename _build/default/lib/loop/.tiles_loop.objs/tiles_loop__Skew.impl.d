lib/loop/skew.ml: Array Dependence List Nest Tiles_linalg Tiles_util
