lib/loop/access.mli: Dependence Nest Tiles_linalg Tiles_poly Tiles_util
