lib/loop/nest.mli: Dependence Format Tiles_linalg Tiles_poly
