lib/loop/dependence.ml: Array Format List String Tiles_linalg Tiles_util
