lib/loop/nest.ml: Dependence Format Tiles_poly
