(** A perfectly nested loop with uniform constant dependencies — the input
    class of the paper (§2.1). The loop body semantics live with the
    application (see [Tiles_apps]); here we keep what the compiler needs:
    the iteration space [J^n] and the dependence matrix [D]. *)

type t = private {
  name : string;
  space : Tiles_poly.Polyhedron.t;  (** the iteration space [J^n] *)
  deps : Dependence.t;
}

val make : name:string -> space:Tiles_poly.Polyhedron.t -> deps:Dependence.t -> t
(** Raises [Invalid_argument] on dimension mismatch or if some dependence
    is not lexicographically positive (illegal sequential program). *)

val dim : t -> int

val tiling_cone : t -> Tiles_poly.Cone.t
(** The cone [{h | h·d >= 0 ∀ d ∈ D}] from which tiling rows are drawn. *)

val needs_skewing : t -> bool
(** True iff some dependence has a negative component, so rectangular
    tiling is illegal without a preliminary skew. *)

val skew : t -> Tiles_linalg.Intmat.t -> t
(** Apply a unimodular skewing transformation [T]: space becomes [T·J^n],
    dependencies become [T·D]. Raises if the result has a dependence with
    a negative component that was meant to be fixed — callers check
    [needs_skewing] on the result. *)

val pp : Format.formatter -> t -> unit
