(** Skewing transformations.

    SOR and Jacobi have dependencies with negative components, so they must
    be skewed before any rectangular tiling is legal (§4.1–4.2). A skew is
    a unimodular lower-triangular matrix with unit diagonal that adds outer
    loop indices to inner ones. *)

val is_valid_skew : Tiles_linalg.Intmat.t -> bool
(** Lower triangular, unit diagonal (hence unimodular). *)

val of_factors : int -> (int * int * int) list -> Tiles_linalg.Intmat.t
(** [of_factors n [(i, j, f); …]] is the identity with entry [f] added at
    row [i], column [j] ([i > j]); e.g. the paper's SOR skew is
    [of_factors 3 [(1, 0, 1); (2, 0, 2)]]. *)

val suggest : Dependence.t -> Tiles_linalg.Intmat.t option
(** A minimal single-column skew [T = I + Σ_k c_k·E_(k,0)] making every
    dependence component non-negative, if one exists: requires every
    dependence with a negative component to have a positive first
    component. Returns [None] otherwise. *)

val apply : Nest.t -> Tiles_linalg.Intmat.t -> Nest.t
(** [Nest.skew] with validity checking: raises [Invalid_argument] if the
    matrix is not a valid skew, [Failure] if the skewed dependencies still
    have negative components. *)
